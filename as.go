package repro

import (
	"context"
	"net/http"

	"repro/internal/calibrate"
	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/dist"
	"repro/internal/domain"
	"repro/internal/multiwalk"
	"repro/internal/problems"
	"repro/internal/service"
)

// Problem is the permutation-CSP interface solved by the Adaptive
// Search engine. See internal/core for the full contract, including the
// optional SwapExecutor / ResetHandler / Tuner interfaces incremental
// encodings implement.
type Problem = core.Problem

// MoveEvaluator is the optional batched companion of CostIfSwap:
// problems implementing it serve a whole swap-cost row in one call and
// the engine's move selection skips per-candidate interface dispatch.
type MoveEvaluator = core.MoveEvaluator

// MaintainedErrorVector is the optional delta-maintenance fast path:
// problems implementing it keep their per-variable error vector current
// through ExecutedSwap/Cost, and the engine serves worst-variable
// selection from the live vector without invalidation or copying.
type MaintainedErrorVector = core.MaintainedErrorVector

// Options configures one Adaptive Search engine run.
type Options = core.Options

// Result reports a Solve outcome with full execution statistics.
type Result = core.Result

// Directive steers a run from an Options.Monitor callback.
type Directive = core.Directive

// MultiWalkOptions configures a parallel multi-walk run.
type MultiWalkOptions = multiwalk.Options

// MultiWalkResult aggregates a parallel multi-walk run.
type MultiWalkResult = multiwalk.Result

// ExchangeOptions tunes the dependent (communicating) multi-walk
// scheme, the paper's future-work extension.
type ExchangeOptions = multiwalk.ExchangeOptions

// MultiWalkBoard is the shared elite-configuration board of the
// dependent multi-walk scheme: publish-and-snapshot of the best
// (cost, configuration) pair seen by any walker. SolveParallel creates
// a private in-process board per exchange-enabled run; set
// MultiWalkOptions.Board to share one across sharded runs, or rely on
// a DistCoordinator to host a cross-worker board automatically.
type MultiWalkBoard = multiwalk.Board

// NewMultiWalkBoard returns the in-process board implementation, for
// driving sharded dependent runs by hand.
func NewMultiWalkBoard() MultiWalkBoard { return multiwalk.NewLocalBoard() }

// MultiWalkStat reports one walker's outcome within a multi-walk run,
// including dependent-scheme accounting (Adoptions, Yielded).
type MultiWalkStat = multiwalk.WalkerStat

// PortfolioEntry assigns engine options (typically a different search
// strategy) to a weighted share of the walkers of a multi-walk run;
// set MultiWalkOptions.Portfolio to run a heterogeneous portfolio.
type PortfolioEntry = multiwalk.PortfolioEntry

// Strategy bundles the engine's pluggable search behaviors: variable
// selection, move selection, and the restart/diversification policy.
// Select a registered strategy by name through Options.Strategy.
type Strategy = core.Strategy

// VariableSelector picks the variable to move each engine iteration.
type VariableSelector = core.VariableSelector

// MoveSelector picks the swap partner for the selected variable.
type MoveSelector = core.MoveSelector

// RestartPolicy owns freezes, probabilistic escapes and partial resets.
type RestartPolicy = core.RestartPolicy

// SearchState is the live engine state handed to strategy plug points.
type SearchState = core.State

// Built-in strategy names for Options.Strategy.
const (
	StrategyAdaptive   = core.StrategyAdaptive
	StrategyRandomWalk = core.StrategyRandomWalk
	StrategyMetropolis = core.StrategyMetropolis
)

// ProblemFactory builds fresh problem instances, one per walker.
type ProblemFactory = multiwalk.Factory

// Model is the declarative CSP builder: add constraints over a
// permutation, then Compile into a Problem.
type Model = csp.Model

// ProblemInfo describes a registered benchmark.
type ProblemInfo = problems.Info

// Solve runs the sequential Adaptive Search engine on p.
func Solve(ctx context.Context, p Problem, opts Options) (Result, error) {
	return core.Solve(ctx, p, opts)
}

// TunedOptions returns engine defaults with the problem's benchmark-
// specific tuning applied.
func TunedOptions(p Problem) Options { return core.TunedOptions(p) }

// DefaultOptions returns plain engine defaults for an n-variable
// problem.
func DefaultOptions(n int) Options { return core.DefaultOptions(n) }

// SolveParallel runs k independent walks concurrently and returns as
// soon as one finds a solution — the paper's parallel scheme.
func SolveParallel(ctx context.Context, factory ProblemFactory, opts MultiWalkOptions) (MultiWalkResult, error) {
	return multiwalk.Run(ctx, factory, opts)
}

// SolveParallelVirtual runs the same independent walks sequentially to
// completion, deterministically, declaring the fewest-iterations walker
// the winner. This is the hardware-independent view used by the
// experiment harness.
func SolveParallelVirtual(ctx context.Context, factory ProblemFactory, opts MultiWalkOptions) (MultiWalkResult, error) {
	return multiwalk.RunVirtual(ctx, factory, opts)
}

// NewProblem constructs a registered benchmark instance by name
// ("all-interval", "perfect-square", "magic-square", "costas", "queens",
// "alpha", "langford", "partition", "timetable"). size <= 0 selects the
// default.
func NewProblem(name string, size int) (Problem, error) {
	return problems.New(name, size)
}

// NewProblemFactory returns a factory of fresh instances of a
// registered benchmark, for SolveParallel.
func NewProblemFactory(name string, size int) (ProblemFactory, error) {
	f, err := problems.NewFactory(name, size)
	if err != nil {
		return nil, err
	}
	return ProblemFactory(f), nil
}

// NewProblemWithParams constructs a registered benchmark with
// benchmark-specific parameters (the finite-domain benchmarks' knobs,
// e.g. timetable's "slots", "rooms", "teachers"). Unknown keys or
// out-of-range values fail with a typed bad-parameter error; nil params
// is equivalent to NewProblem.
func NewProblemWithParams(name string, size int, params map[string]int) (Problem, error) {
	return problems.NewWithParams(name, size, params)
}

// NewProblemFactoryParams is the factory form of NewProblemWithParams.
func NewProblemFactoryParams(name string, size int, params map[string]int) (ProblemFactory, error) {
	f, err := problems.NewFactoryParams(name, size, params)
	if err != nil {
		return nil, err
	}
	return ProblemFactory(f), nil
}

// Benchmarks lists the registered benchmark names.
func Benchmarks() []string { return problems.Names() }

// DescribeBenchmark returns metadata for a registered benchmark.
func DescribeBenchmark(name string) (ProblemInfo, error) { return problems.Describe(name) }

// NewModel starts a declarative CSP over n variables whose values are
// cfg[i] + valueOffset.
func NewModel(n, valueOffset int) *Model { return csp.NewModel(n, valueOffset) }

// SolveService is the admission-controlled job scheduler serving many
// concurrent solve requests over a bounded walker-slot pool — the
// serving layer of the multi-walk solver (see DESIGN.md §7).
type SolveService = service.Scheduler

// ServiceConfig sizes a SolveService (slots, queue depth, deadlines,
// result TTL); the zero value selects defaults.
type ServiceConfig = service.Config

// SolveRequest describes one job submitted to a SolveService.
type SolveRequest = service.Request

// SolveExchangeSpec opts a SolveRequest into the dependent
// (communicating) multi-walk scheme; on a distributed backend the
// walkers cooperate across worker processes.
type SolveExchangeSpec = service.ExchangeSpec

// SolveJob is an immutable snapshot of a service job.
type SolveJob = service.Job

// JobState is a service job's lifecycle state (queued, running,
// solved, unsolved, cancelled, failed).
type JobState = service.State

// ServiceStats is the metrics snapshot a SolveService exposes.
type ServiceStats = service.Stats

// SolveAutoSizeSpec asks admission to choose a request's walker count
// from calibrated runtime distributions instead of a fixed Walkers
// value: set SolveRequest.AutoSize and give the service a
// CalibrationStore (ServiceConfig.Calibration). See DESIGN.md §15.
type SolveAutoSizeSpec = service.AutoSizeSpec

// CalibrationStore holds per-(problem, size, params, strategy) runtime
// observations: seeded from bench runs, kept fresh by solved jobs, and
// resolved into fitted runtime models for speedup prediction and
// auto-sizing.
type CalibrationStore = calibrate.Store

// NewCalibrationStore returns an empty calibration store.
func NewCalibrationStore() *CalibrationStore { return calibrate.NewStore() }

// LoadCalibration loads a calibration store saved with its Save
// method; a missing file yields an empty store.
func LoadCalibration(path string) (*CalibrationStore, error) { return calibrate.Load(path) }

// Typed service errors, for embedders of SolveService.
var (
	ErrQueueFull  = service.ErrQueueFull
	ErrBadRequest = service.ErrBadRequest
	ErrJobUnknown = service.ErrNotFound
	ErrClosed     = service.ErrClosed
	// ErrNoCalibration rejects an auto-sized request whose population has
	// no (or too little) calibration data (HTTP 409).
	ErrNoCalibration = service.ErrNoCalibration
	// ErrTargetUnsatisfiable rejects an auto-sized request whose latency
	// target is below the predicted P95 at every admissible walker count
	// (HTTP 422).
	ErrTargetUnsatisfiable = service.ErrUnsatisfiable
)

// ErrBadParams marks a benchmark construction request with unknown or
// out-of-range parameters (errors.Is-matchable).
var ErrBadParams = problems.ErrBadParams

// ErrUnsatisfiable marks a model whose pre-search domain reduction
// proved it has no solution (errors.Is-matchable); Solve and the
// serving layer surface it before any search is spent.
var ErrUnsatisfiable = domain.ErrUnsatisfiable

// NewSolveService starts an admission-controlled solve scheduler.
// Close it to cancel outstanding jobs and release every goroutine.
func NewSolveService(cfg ServiceConfig) *SolveService { return service.New(cfg) }

// NewServiceHandler exposes a SolveService over the HTTP JSON API
// served by cmd/serve (POST /v1/solve, GET /v1/jobs/{id}, ...).
func NewServiceHandler(s *SolveService) http.Handler { return service.NewHandler(s) }

// MultiWalkShard restricts a multi-walk run to a sub-range of a larger
// job's walkers while preserving global walker identity (seeds,
// portfolio entries, indices); set MultiWalkOptions.Shard. Shards of
// one job merged with CombineShards are bit-for-bit the whole-job run.
type MultiWalkShard = multiwalk.Shard

// CombineShards merges the shard results of one logical job into the
// whole-job result, recomputing the deterministic virtual winner.
func CombineShards(total int, shards ...MultiWalkResult) (MultiWalkResult, error) {
	return multiwalk.CombineShards(total, shards...)
}

// DistWorker executes walker shards on behalf of a coordinator; serve
// its Handler over HTTP (see cmd/worker).
type DistWorker = dist.Worker

// DistWorkerConfig sizes a DistWorker.
type DistWorkerConfig = dist.WorkerConfig

// DistCoordinator shards multi-walk jobs over a fleet of workers with
// the same determinism contract as SolveParallel/SolveParallelVirtual.
// It satisfies ServiceBackend, so a SolveService can run on a fleet.
type DistCoordinator = dist.Coordinator

// DistCoordinatorConfig configures a DistCoordinator (worker URLs).
type DistCoordinatorConfig = dist.CoordinatorConfig

// DistJobSpec describes one distributed multi-walk job.
type DistJobSpec = dist.JobSpec

// ServiceBackend executes a SolveService's admitted jobs: the
// in-process pool by default, or a DistCoordinator for a worker fleet
// (ServiceConfig.Backend).
type ServiceBackend = service.Backend

// NewDistWorker creates a worker process' execution core; expose it
// with its Handler method.
func NewDistWorker(cfg DistWorkerConfig) *DistWorker { return dist.NewWorker(cfg) }

// NewDistCoordinator enrolls a worker fleet, probing each worker's
// slot capacity.
func NewDistCoordinator(cfg DistCoordinatorConfig) (*DistCoordinator, error) {
	return dist.NewCoordinator(cfg)
}

// ServiceProgressEvent is one entry of a job's live event flow —
// lifecycle transitions, throttled per-walker (iterations, cost)
// milestones, and the terminal snapshot — consumed through
// SolveService.Watch.
type ServiceProgressEvent = service.ProgressEvent

// ServiceStreamServer serves job progress over the persistent binary
// transport (one multiplexed TCP connection per client, length-prefixed
// frames), replacing GET polling for clients that opt in; the HTTP API
// stays authoritative.
type ServiceStreamServer = service.StreamServer

// NewServiceStreamServer attaches a streaming progress listener to a
// SolveService ("" listens on 127.0.0.1:0). Advertise its Addr through
// SolveService.SetStreamAddr so /healthz exposes it for discovery.
func NewServiceStreamServer(s *SolveService, addr string) (*ServiceStreamServer, error) {
	return service.NewStreamServer(s, addr)
}

// RegisterStrategy adds a named strategy factory to the global
// registry, making it selectable through Options.Strategy (and thus
// multi-walk portfolios and the CLI). The factory runs once per Solve
// call, so strategies may carry per-run state.
func RegisterStrategy(name string, factory func() Strategy) {
	core.RegisterStrategy(name, factory)
}

// StrategyNames lists the registered strategy names.
func StrategyNames() []string { return core.StrategyNames() }
