package repro

import (
	"context"
	"errors"
	"slices"
	"testing"
)

// TestFacadeSequential exercises the public API end to end: construct a
// benchmark, solve it, check the statistics.
func TestFacadeSequential(t *testing.T) {
	p, err := NewProblem("queens", 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, TunedOptions(p))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Cost != 0 {
		t.Fatalf("queens unsolved: %v", res)
	}
}

func TestFacadeParallel(t *testing.T) {
	f, err := NewProblemFactory("costas", 10)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem("costas", 10)
	res, err := SolveParallel(context.Background(), f, MultiWalkOptions{
		Walkers: 3,
		Seed:    5,
		Engine:  TunedOptions(p),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("parallel costas unsolved: %+v", res)
	}
}

func TestFacadeVirtual(t *testing.T) {
	f, err := NewProblemFactory("costas", 9)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem("costas", 9)
	res, err := SolveParallelVirtual(context.Background(), f, MultiWalkOptions{
		Walkers: 4,
		Seed:    2,
		Engine:  TunedOptions(p),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Winner < 0 {
		t.Fatalf("virtual run failed: %+v", res)
	}
}

func TestFacadeRegistry(t *testing.T) {
	names := Benchmarks()
	if len(names) != 9 {
		t.Fatalf("expected 9 benchmarks, got %v", names)
	}
	if !slices.Contains(names, "timetable") {
		t.Fatalf("finite-domain benchmark missing from registry: %v", names)
	}
	info, err := DescribeBenchmark("costas")
	if err != nil || info.PaperSize != 22 {
		t.Fatalf("costas info: %+v, %v", info, err)
	}
	if _, err := NewProblem("bogus", 1); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
}

// TestFacadeFiniteDomain exercises the parameterized construction path:
// a solvable timetable instance solves through the plain facade Solve,
// an over-constrained parameter set is rejected by the pre-search
// domain reduction pass inside Solve, and unknown parameters fail
// construction with the typed bad-params error.
func TestFacadeFiniteDomain(t *testing.T) {
	p, err := NewProblemWithParams("timetable", 20, map[string]int{"slots": 6, "rooms": 4, "teachers": 4})
	if err != nil {
		t.Fatal(err)
	}
	opts := TunedOptions(p)
	opts.Seed = 7
	res, err := Solve(context.Background(), p, opts)
	if err != nil || !res.Solved {
		t.Fatalf("timetable solve failed: %+v %v", res, err)
	}
	if res.Assigns == 0 {
		t.Fatalf("finite-domain run executed no assign moves: %+v", res)
	}
	// Over-constrained parameters construct fine — unsatisfiability is
	// proven by the pre-search domain reduction pass inside Solve.
	unsat, err := NewProblemWithParams("timetable", 3, map[string]int{"rooms": 1, "slots": 2, "teachers": 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(context.Background(), unsat, TunedOptions(unsat)); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("unsatisfiable parameter set not rejected by reduction: %v", err)
	}
	if _, err := NewProblemWithParams("timetable", 20, map[string]int{"professors": 1}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("unknown parameter not rejected: %v", err)
	}
}

func TestFacadeModel(t *testing.T) {
	m := NewModel(3, 1)
	m.AddLinearSum("s", []int{0, 1, 2}, nil, 6)
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), c, DefaultOptions(3))
	if err != nil || !res.Solved {
		t.Fatalf("model solve failed: %v %v", res, err)
	}
}

func TestFacadeDefaultSizes(t *testing.T) {
	p, err := NewProblem("langford", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 64 { // default n=32 values -> 64 items
		t.Fatalf("langford default size = %d", p.Size())
	}
}

func TestFacadeSolveService(t *testing.T) {
	svc := NewSolveService(ServiceConfig{Slots: 2})
	defer svc.Close()
	job, err := svc.SubmitWait(context.Background(), SolveRequest{Problem: "costas", Size: 8, Seed: 1, TimeoutMS: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobState("solved") || job.Result == nil || !job.Result.Solved {
		t.Fatalf("service job: %+v", job)
	}
	if NewServiceHandler(svc) == nil {
		t.Fatal("nil HTTP handler")
	}
	if svc.Stats().JobsSolved != 1 {
		t.Fatalf("stats: %+v", svc.Stats())
	}
}
