package repro

import (
	"context"
	"testing"
)

// TestFacadeSequential exercises the public API end to end: construct a
// benchmark, solve it, check the statistics.
func TestFacadeSequential(t *testing.T) {
	p, err := NewProblem("queens", 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, TunedOptions(p))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Cost != 0 {
		t.Fatalf("queens unsolved: %v", res)
	}
}

func TestFacadeParallel(t *testing.T) {
	f, err := NewProblemFactory("costas", 10)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem("costas", 10)
	res, err := SolveParallel(context.Background(), f, MultiWalkOptions{
		Walkers: 3,
		Seed:    5,
		Engine:  TunedOptions(p),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("parallel costas unsolved: %+v", res)
	}
}

func TestFacadeVirtual(t *testing.T) {
	f, err := NewProblemFactory("costas", 9)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem("costas", 9)
	res, err := SolveParallelVirtual(context.Background(), f, MultiWalkOptions{
		Walkers: 4,
		Seed:    2,
		Engine:  TunedOptions(p),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Winner < 0 {
		t.Fatalf("virtual run failed: %+v", res)
	}
}

func TestFacadeRegistry(t *testing.T) {
	names := Benchmarks()
	if len(names) != 8 {
		t.Fatalf("expected 8 benchmarks, got %v", names)
	}
	info, err := DescribeBenchmark("costas")
	if err != nil || info.PaperSize != 22 {
		t.Fatalf("costas info: %+v, %v", info, err)
	}
	if _, err := NewProblem("bogus", 1); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
}

func TestFacadeModel(t *testing.T) {
	m := NewModel(3, 1)
	m.AddLinearSum("s", []int{0, 1, 2}, nil, 6)
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), c, DefaultOptions(3))
	if err != nil || !res.Solved {
		t.Fatalf("model solve failed: %v %v", res, err)
	}
}

func TestFacadeDefaultSizes(t *testing.T) {
	p, err := NewProblem("langford", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 64 { // default n=32 values -> 64 items
		t.Fatalf("langford default size = %d", p.Size())
	}
}

func TestFacadeSolveService(t *testing.T) {
	svc := NewSolveService(ServiceConfig{Slots: 2})
	defer svc.Close()
	job, err := svc.SubmitWait(context.Background(), SolveRequest{Problem: "costas", Size: 8, Seed: 1, TimeoutMS: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobState("solved") || job.Result == nil || !job.Result.Solved {
		t.Fatalf("service job: %+v", job)
	}
	if NewServiceHandler(svc) == nil {
		t.Fatal("nil HTTP handler")
	}
	if svc.Stats().JobsSolved != 1 {
		t.Fatalf("stats: %+v", svc.Stats())
	}
}
