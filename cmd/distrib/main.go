// Command distrib collects and analyzes the sequential runtime
// distribution of one benchmark: the measurement underlying every
// speedup prediction in the reproduction (EXP-D1 in DESIGN.md).
//
// Usage:
//
//	distrib -problem costas -size 14 -runs 300
//
// It prints summary statistics, the shifted-exponential fit, the
// exponentiality diagnostics, a histogram, and the predicted multi-walk
// speedups at the paper's core counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/problems"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distrib:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		problem = flag.String("problem", "costas", "benchmark name")
		size    = flag.Int("size", 0, "instance size (0 = default)")
		runs    = flag.Int("runs", 300, "number of sequential solves")
		seed    = flag.Uint64("seed", 7, "master seed")
		timeout = flag.Duration("timeout", 2*time.Hour, "overall deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	w := bench.Workload{Benchmark: *problem, Size: *size, Runs: *runs}
	if *size <= 0 {
		info, err := problems.Describe(*problem)
		if err != nil {
			return err
		}
		w.Size = info.DefaultSize
	}
	fmt.Printf("collecting %d sequential solves of %s...\n", *runs, *problem)
	start := time.Now()
	d, err := bench.Collect(ctx, w, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	it := d.Iters
	fmt.Printf("workload:          %s\n", d.Workload)
	fmt.Printf("runs:              %d\n", it.N())
	fmt.Printf("iterations:        mean=%.0f median=%.0f min=%.0f max=%.0f\n",
		it.Mean(), it.Median(), it.Min(), it.Max())
	fmt.Printf("wall seconds:      mean=%.4f median=%.4f\n", d.Seconds.Mean(), d.Seconds.Median())
	fmt.Printf("iteration rate:    %.0f iters/s on this machine\n", d.ItersPerSecond)
	fmt.Printf("CV:                %.3f (exponential = 1.0)\n", it.CV())
	fmt.Printf("QQ-exponential R2: %.3f\n", it.QQExponentialR2())
	sat := "+inf (ideal linear speedup)"
	if d.Model.Shift > 0 {
		sat = fmt.Sprintf("%.1f", d.Model.SaturationSpeedup())
	}
	fmt.Printf("shifted-exp fit:   shift=%.0f scale=%.0f -> saturation speedup %s\n\n",
		d.Model.Shift, d.Model.Scale, sat)

	printHistogram(it, 12, 48)

	fmt.Println("\npredicted multi-walk speedups (order statistics | shifted-exp model):")
	for _, k := range []int{16, 32, 64, 128, 256} {
		sp, err := it.Speedup(k)
		if err != nil {
			return err
		}
		fmt.Printf("  %4d cores: %7.1f | %7.1f\n", k, sp, d.Model.Speedup(k))
	}
	return nil
}

// printHistogram renders an ASCII histogram of the sample.
func printHistogram(s *stats.Sample, bins, width int) {
	xs, _ := s.ECDF()
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		fmt.Println("histogram: all observations identical")
		return
	}
	counts := make([]int, bins)
	for _, x := range xs {
		b := int(float64(bins) * (x - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	fmt.Println("histogram (iterations to solution):")
	for b, c := range counts {
		barLen := 0
		if maxC > 0 {
			barLen = c * width / maxC
		}
		fmt.Printf("  %9.0f |%s %d\n",
			lo+(hi-lo)*float64(b)/float64(bins),
			strings.Repeat("#", barLen), c)
	}
}
