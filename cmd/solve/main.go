// Command solve runs the Adaptive Search solver on one benchmark
// instance, sequentially or with parallel multi-walk, and prints the
// solution and execution statistics.
//
// Usage:
//
//	solve -problem costas -size 16 -walkers 8 -seed 42 -timeout 60s
//	solve -problem magic-square -size 10 -strategy metropolis
//	solve -problem costas -size 14 -walkers 6 -portfolio adaptive:2,metropolis:1
//	solve -problem timetable -size 20 -param slots=6 -param rooms=4 -param teachers=4
//	solve -list
//
// With -walkers > 1 the run uses the paper's independent multi-walk
// scheme (first solution wins); -exchange enables the dependent
// (communicating) variant; -virtual executes walks sequentially and
// reports the deterministic iteration-count winner. -strategy selects
// the search strategy for all walkers; -portfolio mixes strategies
// across walkers as weighted name:weight pairs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "solve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		problem   = flag.String("problem", "costas", "benchmark name (see -list)")
		size      = flag.Int("size", 0, "instance size (0 = benchmark default)")
		walkers   = flag.Int("walkers", 1, "parallel walkers (1 = sequential)")
		seed      = flag.Uint64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 2*time.Minute, "overall deadline")
		exchange  = flag.Bool("exchange", false, "enable dependent multi-walk communication")
		virtual   = flag.Bool("virtual", false, "deterministic virtual multi-walk (winner by iterations)")
		strategy  = flag.String("strategy", "", "search strategy for all walkers (see -list)")
		portfolio = flag.String("portfolio", "", "heterogeneous strategy portfolio as name:weight pairs, e.g. adaptive:2,metropolis:1 (requires -walkers > 1)")
		list      = flag.Bool("list", false, "list available benchmarks and strategies and exit")
		quiet     = flag.Bool("quiet", false, "suppress solution printing")
	)
	params := paramFlags{}
	flag.Var(&params, "param", "benchmark parameter as key=value (repeatable), e.g. -param slots=6 -param rooms=4")
	flag.Parse()

	if *list {
		for _, name := range problems.Names() {
			info, err := problems.Describe(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-15s default=%-5d paper=%-5d %s\n", info.Name, info.DefaultSize, info.PaperSize, info.Description)
		}
		fmt.Printf("strategies: %s\n", strings.Join(core.StrategyNames(), ", "))
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	p, err := problems.NewWithParams(*problem, *size, params)
	if err != nil {
		return err
	}
	opts := core.TunedOptions(p)
	opts.Seed = *seed
	opts.Strategy = *strategy

	if *portfolio != "" && *walkers <= 1 {
		return fmt.Errorf("-portfolio requires -walkers > 1")
	}
	if *portfolio != "" && *strategy != "" {
		return fmt.Errorf("-portfolio and -strategy are mutually exclusive")
	}

	if *walkers <= 1 {
		res, err := core.Solve(ctx, p, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s n=%d (sequential)\n%s\n", *problem, p.Size(), res)
		if res.Solved && !*quiet {
			printSolution(p, res.Solution)
		}
		return exitStatus(res.Solved)
	}

	factory, err := problems.NewFactoryParams(*problem, *size, params)
	if err != nil {
		return err
	}
	mopts := multiwalk.Options{Walkers: *walkers, Seed: *seed, Engine: opts}
	if *portfolio != "" {
		entries, err := parsePortfolio(*portfolio, opts)
		if err != nil {
			return err
		}
		mopts.Portfolio = entries
	}
	if *exchange {
		mopts.Exchange = multiwalk.ExchangeOptions{Enabled: true}
	}
	var res multiwalk.Result
	if *virtual {
		res, err = multiwalk.RunVirtual(ctx, factory, mopts)
	} else {
		res, err = multiwalk.Run(ctx, factory, mopts)
	}
	if err != nil {
		return err
	}
	mode := "independent multi-walk"
	if *exchange {
		mode = "dependent multi-walk"
	}
	if *portfolio != "" {
		mode += " portfolio [" + *portfolio + "]"
	}
	if *virtual {
		mode += " (virtual)"
	}
	fmt.Printf("%s n=%d, %d walkers, %s\n", *problem, p.Size(), *walkers, mode)
	if res.Solved {
		fmt.Printf("SOLVED by walker %d in %d iterations (total work %d iters) in %v\n",
			res.Winner, res.WinnerIterations, res.TotalIterations, res.Elapsed)
		if !*quiet {
			printSolution(p, res.Solution)
		}
	} else {
		fmt.Printf("UNSOLVED (total work %d iters) in %v\n", res.TotalIterations, res.Elapsed)
	}
	for _, w := range res.Walkers {
		status := "lost"
		if w.Result.Solved {
			status = "solved"
		} else if w.Result.Interrupted {
			status = "cancelled"
		}
		fmt.Printf("  walker %d: %-9s strategy=%-12s iters=%-10d restarts=%-3d adoptions=%d\n",
			w.Walker, status, w.Result.Strategy, w.Result.Iterations, w.Result.Restarts, w.Adoptions)
	}
	return exitStatus(res.Solved)
}

// paramFlags collects repeated -param key=value pairs into the
// problem-parameter map the finite-domain benchmarks consume.
type paramFlags map[string]int

func (p paramFlags) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	return strings.Join(parts, ",")
}

func (p paramFlags) Set(s string) error {
	key, valStr, ok := strings.Cut(s, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	v, err := strconv.Atoi(valStr)
	if err != nil {
		return fmt.Errorf("non-integer value in %q", s)
	}
	p[key] = v
	return nil
}

// parsePortfolio turns "adaptive:2,metropolis:1" into portfolio entries
// layered over the benchmark's tuned engine options. A bare name means
// weight 1.
func parsePortfolio(spec string, base core.Options) ([]multiwalk.PortfolioEntry, error) {
	var entries []multiwalk.PortfolioEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		if name == "" {
			return nil, fmt.Errorf("missing strategy name in portfolio entry %q", part)
		}
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad portfolio weight in %q", part)
			}
			weight = w
		}
		eng := base
		eng.Strategy = name
		entries = append(entries, multiwalk.PortfolioEntry{Weight: weight, Engine: eng})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("empty -portfolio spec %q", spec)
	}
	return entries, nil
}

func exitStatus(solved bool) error {
	if !solved {
		return fmt.Errorf("no solution found within the deadline")
	}
	return nil
}

// printSolution renders a solution with benchmark-specific formatting
// where it helps (grids for magic-square and costas, letter assignments
// for alpha).
func printSolution(p core.Problem, sol []int) {
	switch t := p.(type) {
	case *problems.MagicSquare:
		n := t.Side()
		for r := 0; r < n; r++ {
			var b strings.Builder
			for c := 0; c < n; c++ {
				fmt.Fprintf(&b, "%4d", sol[r*n+c]+1)
			}
			fmt.Println(b.String())
		}
	case *problems.Costas:
		n := len(sol)
		for row := n - 1; row >= 0; row-- {
			var b strings.Builder
			for col := 0; col < n; col++ {
				if sol[col] == row {
					b.WriteString(" X")
				} else {
					b.WriteString(" .")
				}
			}
			fmt.Println(b.String())
		}
	case *problems.Alpha:
		fmt.Println(t.Letters(sol))
	default:
		fmt.Println(sol)
	}
}
