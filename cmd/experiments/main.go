// Command experiments regenerates the paper's evaluation artifacts:
// every figure and table of "Performance Analysis of Parallel
// Constraint-Based Local Search" (PPoPP 2012), plus the extended
// diagnostics and ablations indexed in DESIGN.md §4.
//
// Usage:
//
//	experiments -exp all                  # everything, laptop scale
//	experiments -exp fig1,fig3 -scale tiny
//	experiments -exp summary -out results/
//
// Experiments: fig1, fig2, fig3, summary, times, distrib, validate,
// extended, ablation-comm, ablation-knobs, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids (fig1,fig2,fig3,summary,times,distrib,validate,ablation-comm,ablation-knobs,all)")
		scaleStr = flag.String("scale", "small", "instance scale: tiny|small|paper")
		seed     = flag.Uint64("seed", 2012, "master seed")
		outDir   = flag.String("out", "", "directory for .txt/.csv artifacts (optional)")
		timeout  = flag.Duration("timeout", 4*time.Hour, "overall deadline")

		benchJSON      = flag.String("bench-json", "", "measure per-benchmark iteration rates and write them to this JSON file (skips the experiment suite)")
		benchIters     = flag.Int64("bench-iters", 300_000, "minimum engine iterations timed per benchmark in -bench-json mode")
		benchCompare   = flag.String("bench-compare", "", "baseline BENCH_iter_rate.json to compare the fresh -bench-json measurement against; regressions beyond -bench-threshold fail the run")
		benchThreshold = flag.Float64("bench-threshold", 0.25, "allowed fractional iteration-rate drop vs the -bench-compare baseline")
		benchRelative  = flag.Bool("bench-relative", false, "normalize the -bench-compare ratios by their suite-wide median, cancelling machine-speed differences (for CI gating against a baseline measured elsewhere)")
		benchMarkdown  = flag.Bool("bench-md", false, "also print the -bench-json results as the README's markdown table")

		benchTail     = flag.String("bench-tail", "", "measure distributed job tail latency with and without straggler speculation and write the report to this JSON file (skips the experiment suite)")
		benchTailReps = flag.Int("bench-tail-reps", 15, "jobs timed per arm in -bench-tail mode")
		benchStraggle = flag.Duration("bench-straggle", 1200*time.Millisecond, "injected shard-dispatch delay on the straggler worker in -bench-tail mode")

		ftdcDecode = flag.String("ftdc-decode", "", "decode an FTDC-style telemetry file (cmd/serve -telemetry, cmd/worker -telemetry) to CSV on stdout (skips the experiment suite)")

		calibrateStore    = flag.String("calibrate", "", "seed (or append to) a runtime-calibration store at this path from sequential bench runs of -calibrate-problems (skips the experiment suite)")
		calibrateProblems = flag.String("calibrate-problems", "costas,magic-square,all-interval", "comma-separated paper workloads for the -calibrate and -bench-predict modes")
		predictStore      = flag.String("predict", "", "print predicted speedup curves with bootstrap bands for every population in this calibration store (skips the experiment suite)")
		whatifStore       = flag.String("whatif", "", "simulate every population in this calibration store on the -platform model and print predicted vs simulated speedups (skips the experiment suite)")
		platformName      = flag.String("platform", "local", "platform model for -whatif: "+strings.Join(cluster.PlatformNames(), "|"))

		benchPredict     = flag.String("bench-predict", "", "measure predicted-vs-actual multi-walk speedup and write the accuracy report to this JSON file (skips the experiment suite)")
		benchPredictReps = flag.Int("bench-predict-reps", 40, "multi-walk jobs measured per (benchmark, walker count) in -bench-predict mode")
	)
	flag.Parse()

	if *ftdcDecode != "" {
		return runFTDCDecode(*ftdcDecode)
	}

	scale, err := bench.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *benchJSON != "" {
		return runBenchJSON(ctx, *benchJSON, *seed, *benchIters, *benchCompare, *benchThreshold, *benchRelative, *benchMarkdown)
	}
	if *benchTail != "" {
		return runBenchTail(ctx, *benchTail, *seed, *benchTailReps, *benchStraggle)
	}
	if *calibrateStore != "" {
		return runCalibrate(ctx, *calibrateStore, *calibrateProblems, scale, *seed)
	}
	if *predictStore != "" {
		return runPredict(*predictStore, *seed)
	}
	if *whatifStore != "" {
		return runWhatIf(*whatifStore, *platformName, *seed)
	}
	if *benchPredict != "" {
		return runBenchPredict(ctx, *benchPredict, *calibrateProblems, scale, *benchPredictReps, *seed)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	needSuite := all || want["fig1"] || want["fig2"] || want["fig3"] ||
		want["summary"] || want["times"] || want["distrib"] || want["validate"]

	var suite *bench.Suite
	if needSuite {
		fmt.Printf("collecting runtime distributions (scale=%s)...\n", scale)
		start := time.Now()
		suite, err = bench.NewSuite(ctx, scale, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("collection done in %v\n\n", time.Since(start).Round(time.Second))
	}

	var tables []*bench.Table
	charts := map[string]map[string][]float64{}

	if all || want["fig1"] {
		t, series, err := suite.Fig1()
		if err != nil {
			return err
		}
		tables = append(tables, t)
		charts["fig1"] = series
	}
	if all || want["fig2"] {
		t, series, err := suite.Fig2()
		if err != nil {
			return err
		}
		tables = append(tables, t)
		charts["fig2"] = series
	}
	if all || want["fig3"] {
		t, err := suite.Fig3()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["summary"] {
		t, err := suite.SummaryTable()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["times"] {
		t, err := suite.TimesTable()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["distrib"] {
		t, err := suite.DistributionTable()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["validate"] {
		t, err := suite.ValidationTable(ctx, []int{2, 4, 8}, 10)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["ablation-comm"] {
		w := bench.PaperWorkloads(scale)["costas"]
		t, err := bench.AblationComm(ctx, w, []int{2, 4, 8}, 10, *seed)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["extended"] {
		t, err := bench.ExtendedTable(ctx, *seed)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["ablation-knobs"] {
		w := bench.PaperWorkloads(scale)["magic-square"]
		t, err := bench.AblationKnobs(ctx, w, 20, *seed)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		return fmt.Errorf("no experiments matched %q", *exps)
	}

	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		if series, ok := charts[t.ID]; ok {
			cores := coreLabels(t.ID)
			if err := bench.AsciiChart(os.Stdout, t.Title, cores, series, 14); err != nil {
				return err
			}
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, t := range tables {
			txt, err := os.Create(filepath.Join(*outDir, t.ID+".txt"))
			if err != nil {
				return err
			}
			if err := t.Render(txt); err != nil {
				txt.Close()
				return err
			}
			txt.Close()
			csv, err := os.Create(filepath.Join(*outDir, t.ID+".csv"))
			if err != nil {
				return err
			}
			if err := t.CSV(csv); err != nil {
				csv.Close()
				return err
			}
			csv.Close()
		}
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
	return nil
}

// runBenchTail is the -bench-tail mode: measure the distributed
// job-latency distribution under an injected straggler with and
// without speculative re-dispatch, and write BENCH_tail_latency.json.
// The job template is fixed (4 walkers of costas 18, a 5k-iteration
// budget — small enough that the injected delay, not engine work,
// dominates the baseline tail) so committed reports stay comparable.
func runBenchTail(ctx context.Context, outPath string, seed uint64, reps int, straggle time.Duration) error {
	const (
		walkers    = 4
		iterBudget = 5_000
	)
	w := bench.Workload{Benchmark: "costas", Size: 18}
	fmt.Printf("measuring straggler tail latency (%d reps per arm, %v injected delay)...\n", reps, straggle)
	report, err := bench.CollectSpeculationDist(ctx, w, walkers, reps, seed, iterBudget, straggle)
	if err != nil {
		return err
	}
	for _, arm := range []*bench.TailLatency{&report.Baseline, &report.Speculated} {
		name := "speculate-off"
		if arm.Speculate {
			name = "speculate-on "
		}
		fmt.Printf("%s p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms (backups launched=%d won=%d)\n",
			name, arm.P50MS, arm.P95MS, arm.P99MS, arm.MaxMS,
			arm.SpeculationsLaunched, arm.SpeculationsWon)
	}
	if err := report.WriteJSON(outPath); err != nil {
		return err
	}
	fmt.Printf("tail-latency report written to %s\n", outPath)
	return nil
}

// runBenchJSON is the -bench-json mode: measure the sequential hot-loop
// iteration rate of every benchmark, write the JSON report, and
// optionally gate against a committed baseline (the CI bench-smoke job).
func runBenchJSON(ctx context.Context, outPath string, seed uint64, minIters int64, comparePath string, threshold float64, relative, markdown bool) error {
	fmt.Printf("measuring iteration rates (>= %d iterations per benchmark)...\n", minIters)
	report, err := bench.CollectIterRates(ctx, seed, minIters)
	if err != nil {
		return err
	}
	if err := report.RenderTable(os.Stdout); err != nil {
		return err
	}
	if markdown {
		fmt.Println()
		if err := report.RenderMarkdown(os.Stdout); err != nil {
			return err
		}
	}
	if err := report.WriteJSON(outPath); err != nil {
		return err
	}
	fmt.Printf("iteration-rate report written to %s\n", outPath)
	if comparePath != "" {
		baseline, err := bench.ReadIterRateReport(comparePath)
		if err != nil {
			return err
		}
		var regressions []string
		if relative {
			var median float64
			regressions, median = bench.CompareIterRatesRelative(report, baseline, threshold)
			fmt.Printf("machine-speed factor vs %s baseline: %.2fx\n", comparePath, median)
			if median < 1-threshold {
				// A uniform suite-wide slowdown cancels out of the
				// relative gate by construction; surface it loudly so a
				// real engine-wide regression is not mistaken for a
				// slow runner.
				fmt.Fprintf(os.Stderr, "WARNING: whole suite runs at %.2fx of baseline — slower machine or uniform engine regression\n", median)
			}
		} else {
			regressions = bench.CompareIterRates(report, baseline, threshold)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			return fmt.Errorf("%d iteration-rate regression(s) vs %s", len(regressions), comparePath)
		}
		fmt.Printf("within %.0f%% of the %s baseline\n", threshold*100, comparePath)
	}
	return nil
}

func coreLabels(id string) []int {
	if id == "fig3" {
		return bench.CostasCoreCounts
	}
	return bench.CoreCounts
}
