// Command experiments regenerates the paper's evaluation artifacts:
// every figure and table of "Performance Analysis of Parallel
// Constraint-Based Local Search" (PPoPP 2012), plus the extended
// diagnostics and ablations indexed in DESIGN.md §4.
//
// Usage:
//
//	experiments -exp all                  # everything, laptop scale
//	experiments -exp fig1,fig3 -scale tiny
//	experiments -exp summary -out results/
//
// Experiments: fig1, fig2, fig3, summary, times, distrib, validate,
// extended, ablation-comm, ablation-knobs, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids (fig1,fig2,fig3,summary,times,distrib,validate,ablation-comm,ablation-knobs,all)")
		scaleStr = flag.String("scale", "small", "instance scale: tiny|small|paper")
		seed     = flag.Uint64("seed", 2012, "master seed")
		outDir   = flag.String("out", "", "directory for .txt/.csv artifacts (optional)")
		timeout  = flag.Duration("timeout", 4*time.Hour, "overall deadline")
	)
	flag.Parse()

	scale, err := bench.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	needSuite := all || want["fig1"] || want["fig2"] || want["fig3"] ||
		want["summary"] || want["times"] || want["distrib"] || want["validate"]

	var suite *bench.Suite
	if needSuite {
		fmt.Printf("collecting runtime distributions (scale=%s)...\n", scale)
		start := time.Now()
		suite, err = bench.NewSuite(ctx, scale, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("collection done in %v\n\n", time.Since(start).Round(time.Second))
	}

	var tables []*bench.Table
	charts := map[string]map[string][]float64{}

	if all || want["fig1"] {
		t, series, err := suite.Fig1()
		if err != nil {
			return err
		}
		tables = append(tables, t)
		charts["fig1"] = series
	}
	if all || want["fig2"] {
		t, series, err := suite.Fig2()
		if err != nil {
			return err
		}
		tables = append(tables, t)
		charts["fig2"] = series
	}
	if all || want["fig3"] {
		t, err := suite.Fig3()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["summary"] {
		t, err := suite.SummaryTable()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["times"] {
		t, err := suite.TimesTable()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["distrib"] {
		t, err := suite.DistributionTable()
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["validate"] {
		t, err := suite.ValidationTable(ctx, []int{2, 4, 8}, 10)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["ablation-comm"] {
		w := bench.PaperWorkloads(scale)["costas"]
		t, err := bench.AblationComm(ctx, w, []int{2, 4, 8}, 10, *seed)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["extended"] {
		t, err := bench.ExtendedTable(ctx, *seed)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if all || want["ablation-knobs"] {
		w := bench.PaperWorkloads(scale)["magic-square"]
		t, err := bench.AblationKnobs(ctx, w, 20, *seed)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		return fmt.Errorf("no experiments matched %q", *exps)
	}

	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		if series, ok := charts[t.ID]; ok {
			cores := coreLabels(t.ID)
			if err := bench.AsciiChart(os.Stdout, t.Title, cores, series, 14); err != nil {
				return err
			}
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, t := range tables {
			txt, err := os.Create(filepath.Join(*outDir, t.ID+".txt"))
			if err != nil {
				return err
			}
			if err := t.Render(txt); err != nil {
				txt.Close()
				return err
			}
			txt.Close()
			csv, err := os.Create(filepath.Join(*outDir, t.ID+".csv"))
			if err != nil {
				return err
			}
			if err := t.CSV(csv); err != nil {
				csv.Close()
				return err
			}
			csv.Close()
		}
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
	return nil
}

func coreLabels(id string) []int {
	if id == "fig3" {
		return bench.CostasCoreCounts
	}
	return bench.CoreCounts
}
