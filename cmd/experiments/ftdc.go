package main

import (
	"encoding/csv"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"

	"repro/internal/telemetry"
)

// runFTDCDecode expands an FTDC-style telemetry file (the
// schema-delta encoding of internal/telemetry, written by cmd/serve
// -telemetry and cmd/worker -telemetry) into CSV on stdout: one column
// per metric name ever observed, one row per sample, empty cells where
// a sample's schema lacked the column. A torn tail — the recorder was
// mid-frame when the process stopped — is normal for live captures;
// the complete prefix decodes and the tear is reported on stderr.
func runFTDCDecode(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	samples, derr := telemetry.Decode(f)
	if derr != nil && !errors.Is(derr, telemetry.ErrCorrupt) {
		return derr
	}

	names := make(map[string]bool)
	for _, s := range samples {
		for _, m := range s.Metrics {
			names[m.Name] = true
		}
	}
	cols := make([]string, 0, len(names))
	for n := range names {
		cols = append(cols, n)
	}
	sort.Strings(cols)
	idx := make(map[string]int, len(cols))
	for i, n := range cols {
		idx[n] = i
	}

	w := csv.NewWriter(os.Stdout)
	if err := w.Write(append([]string{"ts_unix_ms"}, cols...)); err != nil {
		return err
	}
	row := make([]string, len(cols)+1)
	for _, s := range samples {
		for i := range row {
			row[i] = ""
		}
		row[0] = strconv.FormatInt(s.TS.UnixMilli(), 10)
		for _, m := range s.Metrics {
			row[idx[m.Name]+1] = strconv.FormatInt(m.Value, 10)
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	if derr != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: torn tail after %d complete samples (live capture?)\n", path, len(samples))
	}
	return nil
}
