package main

// The capacity-planning modes: -calibrate seeds a calibration store
// from bench runs, -predict reads expected-speedup curves out of it,
// -whatif replays a calibrated workload on an exemplar platform model
// (HA8000, Grid'5000, or the local machine), and -bench-predict
// produces the committed predicted-vs-measured accuracy artifact.
// Together they wire the previously CLI-orphaned internal/cluster
// simulator to the same calibration store the serving layer's AutoSize
// mode reads, so "what would this workload do on N cores?" is answered
// from data the fleet already collected.

import (
	"context"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/calibrate"
	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/stats"
)

// predictCores is the walker/core grid of the -predict and -whatif
// tables.
var predictCores = []int{1, 2, 4, 8, 16, 32, 64}

// runCalibrate is the -calibrate mode: collect sequential runtime
// distributions for the named paper workloads and append them to the
// calibration store at path (created if absent), so cmd/serve
// -calibration and the -predict/-whatif modes have populations to
// resolve.
func runCalibrate(ctx context.Context, path, problemsCSV string, scale bench.Scale, seed uint64) error {
	st, err := calibrate.Load(path)
	if err != nil {
		return err
	}
	workloads := bench.PaperWorkloads(scale)
	for _, name := range strings.Split(problemsCSV, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, ok := workloads[name]
		if !ok {
			return fmt.Errorf("unknown paper workload %q (known: costas, magic-square, all-interval, perfect-square)", name)
		}
		fmt.Printf("calibrating %s (%d sequential runs)...\n", w, w.Runs)
		d, err := bench.SeedCalibration(ctx, st, w, seed)
		if err != nil {
			return err
		}
		fit := stats.FitBest(d.Iters)
		fmt.Printf("  %s: n=%d mean=%.0f iters, %.0f iters/sec, family=%s (KS %.3f)\n",
			w, d.Iters.N(), d.Iters.Mean(), d.ItersPerSecond, fit.Family, fit.KS)
	}
	if err := st.Save(path); err != nil {
		return err
	}
	fmt.Printf("calibration store written to %s (%d keys)\n", path, len(st.Keys()))
	return nil
}

// runPredict is the -predict mode: for every calibrated population,
// print the expected speedup at each walker count with its bootstrap
// band, plus the predicted P95 latency through the calibrated rate —
// the same numbers the service's AutoSize admission solves against.
func runPredict(path string, seed uint64) error {
	st, err := calibrate.Load(path)
	if err != nil {
		return err
	}
	keys := st.Keys()
	if len(keys) == 0 {
		return fmt.Errorf("calibration store %s is empty; run -calibrate first", path)
	}
	for _, key := range keys {
		res, err := st.Resolve(key)
		if err != nil {
			fmt.Printf("%s: %v\n", key, err)
			continue
		}
		fmt.Printf("%s: n=%d, family=%s, mean=%.0f iters, %.0f iters/sec\n",
			key, res.Samples, res.Fit.Family, res.Fit.Mean(), res.ItersPerSec)
		fmt.Printf("  %4s %10s %20s %12s\n", "k", "speedup", "band", "p95")
		for _, k := range predictCores {
			pred, err := stats.PredictSpeedup(res.Sample, k, 200, 0.95, rng.New(seed))
			if err != nil {
				return err
			}
			p95 := "-"
			if res.ItersPerSec > 0 {
				p95 = fmt.Sprintf("%.1fms", res.Fit.MinQuantile(k, 0.95)/res.ItersPerSec*1000)
			}
			fmt.Printf("  %4d %10.2f [%8.2f, %8.2f] %12s\n", k, pred.Speedup, pred.Lo, pred.Hi, p95)
		}
	}
	return nil
}

// runWhatIf is the -whatif mode: replay every calibrated population on
// a named platform model and print the platform-colored speedup curve
// beside the distribution-only prediction and any live-measured
// speedups the store holds — predicted vs. measured capacity planning
// from one file.
func runWhatIf(path, platformName string, seed uint64) error {
	st, err := calibrate.Load(path)
	if err != nil {
		return err
	}
	keys := st.Keys()
	if len(keys) == 0 {
		return fmt.Errorf("calibration store %s is empty; run -calibrate first", path)
	}
	platform, err := cluster.Named(platformName)
	if err != nil {
		return err
	}
	for _, key := range keys {
		res, err := st.Resolve(key)
		if err != nil {
			fmt.Printf("%s: %v\n", key, err)
			continue
		}
		sim, err := cluster.NewCalibratedSim(platform, res.Sample, res.ItersPerSec)
		if err != nil {
			return err
		}
		measured := map[int]calibrate.SpeedupObs{}
		if obs, err := st.ObservedSpeedups(key); err == nil {
			for _, o := range obs {
				measured[o.Walkers] = o
			}
		}
		ks := make([]int, 0, len(predictCores))
		for _, k := range predictCores {
			if k <= platform.Cores() {
				ks = append(ks, k)
			}
		}
		curve, err := sim.SpeedupCurve(ks, 200, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s on %s (%d cores, %.0f iters/sec/core): seq wall %.2fs\n",
			key, sim.Platform.Name, platform.Cores(), sim.Platform.IterationsPerSecond, curve.SeqWall)
		fmt.Printf("  %4s %10s %12s %12s\n", "k", "predicted", "simulated", "live")
		for i, pt := range curve.Points {
			live := "-"
			if o, ok := measured[pt.Cores]; ok {
				live = fmt.Sprintf("%.2f (n=%d)", o.Speedup, o.Runs)
			}
			fmt.Printf("  %4d %10.2f %12.2f %12s\n", ks[i], res.Fit.Speedup(pt.Cores), pt.Speedup, live)
		}
	}
	return nil
}

// runBenchPredict is the -bench-predict mode: regenerate the committed
// predicted-vs-measured speedup artifact (BENCH_predicted_speedup.json).
func runBenchPredict(ctx context.Context, outPath, problemsCSV string, scale bench.Scale, reps int, seed uint64) error {
	var names []string
	for _, name := range strings.Split(problemsCSV, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	fmt.Printf("measuring prediction accuracy for %v at k=%v (%d reps per point, scale=%s)...\n",
		names, bench.PredictCoreCounts, reps, scale)
	report, err := bench.CollectPredictReport(ctx, scale, names, bench.PredictCoreCounts, reps, seed)
	if err != nil {
		return err
	}
	if err := report.RenderTable(os.Stdout); err != nil {
		return err
	}
	if err := report.WriteJSON(outPath); err != nil {
		return err
	}
	fmt.Printf("prediction-accuracy report written to %s\n", outPath)
	for _, e := range report.Problems {
		if e.WithinCount < len(e.Points)-1 {
			fmt.Printf("NOTE: %s measured speedup left the predicted band at %d of %d walker counts\n",
				e.Benchmark, len(e.Points)-e.WithinCount, len(e.Points))
		}
	}
	return nil
}
