// Command serve runs the solve service: an HTTP JSON API over the
// admission-controlled multi-walk job scheduler (internal/service).
//
// Usage:
//
//	serve -addr :8080 -slots 8 -queue 256 -default-timeout 30s -ttl 10m
//	serve -addr :8080 -workers http://10.0.0.7:9101,http://10.0.0.8:9101
//	serve -addr :8080 -fleet
//	serve -addr :8080 -fleet -tenants batch=1:8,interactive=3
//
// With -workers, jobs are not executed in-process: the scheduler runs
// on a distributed backend (internal/dist) that shards each job's
// walkers over the given cmd/worker fleet, with per-worker slot
// accounting and cross-worker first-solution cancellation. The pool
// size becomes the fleet's total slot capacity (-slots is ignored).
// Dependent jobs ({"exchange": {"enabled": true}}) cooperate across
// workers through a coordinator-hosted elite board; -board-addr,
// -board-advertise and -board-sync tune where it listens, how workers
// reach it and how often their caches reconcile (see DESIGN.md §10).
//
// With -fleet, the worker set is dynamic instead of (or in addition
// to) the static -workers list: workers enroll themselves through
// /v1/fleet/register (cmd/worker -coordinator), heartbeat to stay
// healthy, and leave gracefully via deregister. The coordinator probes
// silent workers on -fleet-heartbeat, health-gates dispatch, and
// re-runs shards lost to a dead worker on the survivors — walker
// identity is global, so recovered runs are bit-for-bit what the lost
// worker would have produced — up to -recover-attempts rounds. The
// scheduler's admission pool resizes live as workers join and leave
// (see DESIGN.md §13).
//
// With -speculate, the coordinator also routes around *slow* workers:
// shards report progress, a detector flags any shard lagging more than
// -speculate-threshold behind the job's median, and the lagging range
// is re-dispatched on a free healthy worker — whichever copy finishes
// first wins, the loser is cancelled and its duplicate result dropped.
// Walker identity is global, so both copies are bit-for-bit identical
// and speculation trades spare slots for tail latency with no effect
// on results (see DESIGN.md §14).
//
// -tenants assigns weighted-fair shares and slot quotas per tenant
// (requests carry {"tenant": ..., "priority": ...}); unlisted tenants
// get weight 1 and no cap.
//
// Endpoints:
//
//	POST /v1/solve              submit a job ({"wait": true} for sync)
//	GET  /v1/jobs/{id}          job status / result
//	POST /v1/jobs/{id}/cancel   cancel a job
//	GET  /v1/problems           registered benchmarks and strategies
//	POST /v1/fleet/register     worker self-registration (with -fleet)
//	POST /v1/fleet/heartbeat    worker liveness push (with -fleet)
//	POST /v1/fleet/deregister   graceful worker leave (with -fleet)
//	GET  /v1/fleet              fleet membership table (with -fleet)
//	GET  /healthz               liveness + pool headroom
//	GET  /metrics               scheduler counters (JSON)
//	GET  /debug/vars            process-wide expvar (memstats etc.)
//
// With -stream, the server additionally opens the persistent binary
// streaming control plane (internal/wire): a job-progress stream
// listener clients discover through /healthz ("stream_addr") and
// subscribe to instead of polling GET /v1/jobs/{id}, and — under
// -workers — streaming board sync, where each worker holds one
// multiplexed TCP connection to the coordinator's board instead of
// the periodic POST loop. HTTP stays as the fallback transport either
// way (see DESIGN.md §11).
//
// With -calibration FILE, the server loads a runtime-calibration store
// (seed it offline with `experiments -calibrate FILE`), enabling
// requests that say {"autosize": {"target_p95": "500ms"}} instead of a
// fixed walker count: admission fits the problem's calibrated runtime
// distribution and picks the smallest walker count predicted to meet
// the target — or the marginal-speedup knee when no target is given.
// Solved jobs feed their iteration counts back into the store, which
// is saved on shutdown (see DESIGN.md §15).
//
// With -telemetry FILE, a background sampler appends FTDC-style
// schema-delta-encoded scheduler metrics (and, under -workers, board
// traffic counters) to FILE every -telemetry-interval; decode offline
// with `experiments -ftdc-decode FILE`.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener drains,
// then the scheduler cancels queued and running jobs and waits for
// every walker goroutine to exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/calibrate"
	"repro/internal/dist"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		slots          = flag.Int("slots", 0, "walker-slot pool size (0 = GOMAXPROCS)")
		queueDepth     = flag.Int("queue", 0, "admission queue depth (0 = 256)")
		defaultTimeout = flag.Duration("default-timeout", 0, "per-job deadline when the request sets none (0 = 30s)")
		maxTimeout     = flag.Duration("max-timeout", 0, "cap on request-supplied deadlines (0 = 5m)")
		ttl            = flag.Duration("ttl", 0, "finished-job retention (0 = 10m)")
		workers        = flag.String("workers", "", "comma-separated worker base URLs; empty runs jobs in-process")
		fleet          = flag.Bool("fleet", false, "accept dynamic worker registration on /v1/fleet/* (workers join and leave at runtime; may combine with -workers for a static seed)")
		fleetHeartbeat = flag.Duration("fleet-heartbeat", 0, "fleet health-monitor probe period for silent workers (0 = 2s)")
		recoverRounds  = flag.Int("recover-attempts", 0, "rounds of lost-shard re-execution on surviving workers before a job is truncated (0 = 2, negative disables recovery)")
		tenants        = flag.String("tenants", "", "per-tenant admission policy as name=weight[:maxslots],... (e.g. batch=1:8,interactive=3); unlisted tenants get weight 1, no cap")
		boardAddr      = flag.String("board-addr", "", "exchange-board listen address for distributed dependent runs (empty = 127.0.0.1:0; the server starts lazily on the first exchange job)")
		boardAdvertise = flag.String("board-advertise", "", "base URL workers use to reach the exchange board (empty = derived from the board listener; set it when workers are on other hosts)")
		boardSync      = flag.Duration("board-sync", 0, "worker board-cache sync period for dependent runs (0 = 50ms)")
		stream         = flag.Bool("stream", false, "enable the persistent binary streaming control plane: job-progress streaming plus, with -workers, streaming board sync")
		streamAddr     = flag.String("stream-addr", "", "job-progress stream listen address (empty = 127.0.0.1:0)")
		streamAdv      = flag.String("stream-advertise", "", "host:port clients use to reach the progress stream (empty = derived from the stream listener; set it when clients are on other hosts)")
		boardStream    = flag.String("board-stream-addr", "", "board stream listen address for -stream -workers fleets (empty = 127.0.0.1:0; started lazily on the first exchange job)")
		speculate      = flag.Bool("speculate", false, "re-dispatch straggling shards speculatively on free healthy workers and keep whichever copy finishes first (needs a distributed backend)")
		speculateThr   = flag.Float64("speculate-threshold", 0, "straggler threshold: a shard speculates when its per-walker progress x threshold < the job median (0 = 2, must be > 1)")
		telemetryPath  = flag.String("telemetry", "", "append FTDC-style telemetry frames to this file (empty = off)")
		telemetryEvery = flag.Duration("telemetry-interval", time.Second, "telemetry sampling period")
		calibration    = flag.String("calibration", "", "runtime-calibration store path: loaded at startup (missing file = empty store), fed by solved jobs, saved on shutdown; enables {\"autosize\": ...} requests (seed offline with `experiments -calibrate`)")
	)
	flag.Parse()

	streaming := *stream

	tenantPolicies, err := parseTenants(*tenants)
	if err != nil {
		return err
	}

	var backend service.Backend
	var coord *dist.Coordinator
	if *workers != "" || *fleet {
		var workerURLs []string
		if *workers != "" {
			workerURLs = strings.Split(*workers, ",")
		}
		coord, err = dist.NewCoordinator(dist.CoordinatorConfig{
			Workers:            workerURLs,
			Dynamic:            *fleet,
			HeartbeatInterval:  *fleetHeartbeat,
			RecoverAttempts:    *recoverRounds,
			BoardAddr:          *boardAddr,
			BoardAdvertise:     *boardAdvertise,
			BoardSync:          *boardSync,
			Stream:             streaming,
			StreamAddr:         *boardStream,
			Speculate:          *speculate,
			SpeculateThreshold: *speculateThr,
		})
		if err != nil {
			return err
		}
		if *speculate {
			log.Printf("serve: straggler speculation on (threshold %v)", *speculateThr)
		}
		for _, w := range coord.Workers() {
			log.Printf("serve: enrolled worker %s (%d slots)", w.URL, w.Slots)
		}
		if *fleet {
			log.Printf("serve: dynamic fleet registration open on /v1/fleet/*")
		}
		backend = coord
	}

	var calStore *calibrate.Store
	if *calibration != "" {
		calStore, err = calibrate.Load(*calibration)
		if err != nil {
			return err
		}
		log.Printf("serve: calibration store %s loaded (%d keys); auto-sizing enabled", *calibration, len(calStore.Keys()))
	}

	sched := service.New(service.Config{
		Slots:          *slots,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		ResultTTL:      *ttl,
		Backend:        backend,
		Tenants:        tenantPolicies,
		Calibration:    calStore,
	})
	expvar.Publish("scheduler", expvar.Func(func() any { return sched.Stats() }))

	if streaming {
		sv, err := service.NewStreamServer(sched, *streamAddr)
		if err != nil {
			sched.Close()
			return err
		}
		defer sv.Close()
		adv := *streamAdv
		if adv == "" {
			adv = sv.Addr()
		}
		sched.SetStreamAddr(adv)
		log.Printf("serve: progress stream on %s (advertised %s)", sv.Addr(), adv)
	}

	if *telemetryPath != "" {
		f, err := os.Create(*telemetryPath)
		if err != nil {
			sched.Close()
			return fmt.Errorf("telemetry: %w", err)
		}
		defer f.Close()
		stopTelem := startTelemetry(f, *telemetryEvery, sched, coord)
		defer stopTelem()
		log.Printf("serve: telemetry -> %s every %v", *telemetryPath, *telemetryEvery)
	}

	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(sched))
	mux.Handle("GET /debug/vars", expvar.Handler())
	if coord != nil && *fleet {
		// Specific patterns take precedence over the "/" catch-all, so
		// the fleet endpoints shadow the service handler here only.
		fh := coord.FleetHandler()
		mux.Handle("/v1/fleet", fh)
		mux.Handle("/v1/fleet/", fh)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// saveCalibration persists what live jobs taught the store; called
	// after the scheduler drains so the last solves are included.
	saveCalibration := func() {
		if calStore == nil {
			return
		}
		if err := calStore.Save(*calibration); err != nil {
			log.Printf("serve: saving calibration store: %v", err)
			return
		}
		log.Printf("serve: calibration store saved to %s (%d keys)", *calibration, len(calStore.Keys()))
	}

	errc := make(chan error, 1)
	go func() {
		cfg := sched.Config()
		log.Printf("serve: listening on %s (backend=%s slots=%d queue=%d default-timeout=%v ttl=%v)",
			*addr, cfg.Backend.Name(), cfg.Slots, cfg.QueueDepth, cfg.DefaultTimeout, cfg.ResultTTL)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		sched.Close()
		saveCalibration()
		return err
	case sig := <-stop:
		log.Printf("serve: %v — shutting down", sig)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("serve: listener shutdown: %v", err)
	}
	sched.Close()
	saveCalibration()
	log.Printf("serve: drained cleanly")
	return nil
}

// parseTenants parses the -tenants flag: a comma-separated list of
// name=weight or name=weight:maxslots entries.
func parseTenants(spec string) (map[string]service.TenantPolicy, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]service.TenantPolicy)
	for _, entry := range strings.Split(spec, ",") {
		name, policy, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants: entry %q is not name=weight[:maxslots]", entry)
		}
		weightStr, maxStr, capped := strings.Cut(policy, ":")
		weight, err := strconv.Atoi(weightStr)
		if err != nil || weight < 1 {
			return nil, fmt.Errorf("-tenants: %s: weight %q is not a positive integer", name, weightStr)
		}
		pol := service.TenantPolicy{Weight: weight}
		if capped {
			maxSlots, err := strconv.Atoi(maxStr)
			if err != nil || maxSlots < 1 {
				return nil, fmt.Errorf("-tenants: %s: maxslots %q is not a positive integer", name, maxStr)
			}
			pol.MaxSlots = maxSlots
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("-tenants: duplicate tenant %q", name)
		}
		out[name] = pol
	}
	return out, nil
}

// startTelemetry spawns the FTDC-style sampler: one schema-delta
// encoded sample of the scheduler's counters (plus the coordinator's
// board traffic, when distributed) per period. Names are sorted so
// the schema stays stable and samples delta-compress to a few bytes
// when the server idles.
func startTelemetry(f *os.File, every time.Duration, sched *service.Scheduler, coord *dist.Coordinator) (stop func()) {
	if every <= 0 {
		every = time.Second
	}
	rec := telemetry.NewRecorder(f)
	done := make(chan struct{})
	finished := make(chan struct{})
	sample := func() {
		st := sched.Stats()
		metrics := []telemetry.Metric{
			{Name: "adoptions_total", Value: st.Adoptions},
			{Name: "iterations_total", Value: st.Iterations},
			{Name: "jobs_running", Value: st.JobsRunning},
			{Name: "jobs_submitted", Value: st.JobsSubmitted},
			{Name: "queue_depth", Value: int64(st.QueueDepth)},
			{Name: "slots_busy", Value: int64(st.SlotsBusy)},
			{Name: "yielded_total", Value: st.Yielded},
		}
		if coord != nil {
			rx, tx := coord.BoardTraffic()
			metrics = append(metrics,
				telemetry.Metric{Name: "board_http_syncs", Value: coord.BoardHTTPSyncs()},
				telemetry.Metric{Name: "board_rx_bytes", Value: rx},
				telemetry.Metric{Name: "board_tx_bytes", Value: tx},
			)
			// Fleet gauges and counters come from the coordinator's fixed
			// metric set, so the FTDC schema stays stable across samples.
			for name, v := range coord.BackendMetrics() {
				metrics = append(metrics, telemetry.Metric{Name: name, Value: v})
			}
		}
		sort.Slice(metrics, func(i, j int) bool { return metrics[i].Name < metrics[j].Name })
		if err := rec.Record(time.Now(), metrics); err != nil {
			log.Printf("serve: telemetry: %v", err)
		}
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample() // final sample so short runs still record
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
