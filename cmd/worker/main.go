// Command worker runs one distributed-solve worker process: it
// executes walker shards on behalf of a coordinator (cmd/serve
// -workers, or a dist.Coordinator embedded elsewhere) over the small
// HTTP JSON protocol of internal/dist.
//
// Usage:
//
//	worker -addr :9101 -slots 4
//	worker -addr :9101 -slots 4 -stream -telemetry worker.ftdc
//	worker -addr :9101 -coordinator http://host:8080 -advertise http://me:9101
//
// With -coordinator, the worker enrolls itself in the coordinator's
// dynamic fleet: it registers at startup (retrying with backoff until
// the coordinator is up), heartbeats on -heartbeat so the coordinator's
// health monitor need not probe it, and deregisters — draining
// gracefully — on shutdown. -advertise is the URL the coordinator
// should dial back; it defaults to http://<hostname><addr port>.
//
// With -stream, dependent (exchange) shard runs negotiate streaming
// board sync: the worker keeps one persistent multiplexed binary
// connection to the coordinator's board and publishes deltas on
// change, instead of the periodic HTTP POST loop. A dead stream falls
// back to HTTP mid-run and re-dials on the next run. When a run
// request carries a progress feed (the coordinator's -speculate mode),
// the worker also reports per-shard iteration counts on the requested
// cadence — over the stream when one is up, HTTP otherwise — so the
// coordinator's straggler detector can see how far behind this shard
// is. With -telemetry
// FILE, per-walker iteration/cost samples are appended to FILE in the
// FTDC-style schema-delta encoding (decode with `experiments
// -ftdc-decode FILE`).
//
// Endpoints:
//
//	POST /v1/run              run a walker shard (blocks until done)
//	POST /v1/runs/{id}/cancel cancel an in-flight shard run
//	GET  /healthz             liveness + slot capacity and usage
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener drains,
// in-flight shard runs are cancelled, and their final (interrupted)
// statistics are delivered to the coordinator before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr           = flag.String("addr", ":9101", "listen address")
		slots          = flag.Int("slots", 0, "walker-slot capacity (0 = GOMAXPROCS)")
		boardSync      = flag.Duration("board-sync", 0, "fallback board-cache sync period for dependent (exchange) shard runs when the coordinator does not pin one (0 = 50ms)")
		stream         = flag.Bool("stream", false, "enable streaming board sync over the persistent binary transport (HTTP remains the fallback)")
		telemetryPath  = flag.String("telemetry", "", "append FTDC-style per-walker telemetry frames to this file (empty = off)")
		telemetryEvery = flag.Duration("telemetry-interval", time.Second, "telemetry sampling period")
		coordinator    = flag.String("coordinator", "", "coordinator base URL to register with for dynamic-fleet membership (empty = static fleet, no registration)")
		advertise      = flag.String("advertise", "", "worker base URL advertised to the coordinator (default http://<hostname><addr port>)")
		heartbeat      = flag.Duration("heartbeat", 0, "heartbeat period when registered with a coordinator (0 = 2s)")
	)
	flag.Parse()

	cfg := dist.WorkerConfig{Slots: *slots, BoardSync: *boardSync, Stream: *stream, TelemetryInterval: *telemetryEvery}
	if *telemetryPath != "" {
		f, err := os.Create(*telemetryPath)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		defer f.Close()
		cfg.Telemetry = telemetry.NewRecorder(f)
		log.Printf("worker: telemetry -> %s every %v", *telemetryPath, *telemetryEvery)
	}

	wk := dist.NewWorker(cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           wk.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("worker: listening on %s (slots=%d)", *addr, wk.Slots())
		errc <- srv.ListenAndServe()
	}()

	var agent *dist.FleetAgent
	if *coordinator != "" {
		adv, err := advertiseURL(*advertise, *addr)
		if err != nil {
			return err
		}
		agent, err = dist.NewFleetAgent(dist.AgentConfig{
			Coordinator: *coordinator,
			Advertise:   adv,
			Worker:      wk,
			Interval:    *heartbeat,
			Wire:        true,
			Logf:        log.Printf,
		})
		if err != nil {
			return fmt.Errorf("fleet agent: %w", err)
		}
		log.Printf("worker: enrolling with %s as %s", *coordinator, adv)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if agent != nil {
			agent.Close()
		}
		wk.Close()
		return err
	case sig := <-stop:
		log.Printf("worker: %v — shutting down", sig)
	}

	// Leave the fleet first (the coordinator marks us draining and stops
	// dispatching), then cancel in-flight runs so their handlers finish
	// (delivering interrupted stats), then drain the listener.
	if agent != nil {
		agent.Close()
	}
	wk.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("worker: listener shutdown: %v", err)
	}
	log.Printf("worker: drained cleanly")
	return nil
}

// advertiseURL resolves the base URL the coordinator dials back:
// -advertise verbatim when set, otherwise http://<hostname><addr port>
// (falling back to 127.0.0.1 when the hostname is unavailable).
func advertiseURL(advertise, addr string) (string, error) {
	if advertise != "" {
		return advertise, nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("cannot derive -advertise from -addr %q: %v", addr, err)
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		if h, err := os.Hostname(); err == nil && h != "" {
			host = h
		} else {
			host = "127.0.0.1"
		}
	}
	return "http://" + net.JoinHostPort(host, port), nil
}
