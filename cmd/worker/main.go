// Command worker runs one distributed-solve worker process: it
// executes walker shards on behalf of a coordinator (cmd/serve
// -workers, or a dist.Coordinator embedded elsewhere) over the small
// HTTP JSON protocol of internal/dist.
//
// Usage:
//
//	worker -addr :9101 -slots 4
//	worker -addr :9101 -slots 4 -stream -telemetry worker.ftdc
//
// With -stream, dependent (exchange) shard runs negotiate streaming
// board sync: the worker keeps one persistent multiplexed binary
// connection to the coordinator's board and publishes deltas on
// change, instead of the periodic HTTP POST loop. A dead stream falls
// back to HTTP mid-run and re-dials on the next run. With -telemetry
// FILE, per-walker iteration/cost samples are appended to FILE in the
// FTDC-style schema-delta encoding (decode with `experiments
// -ftdc-decode FILE`).
//
// Endpoints:
//
//	POST /v1/run              run a walker shard (blocks until done)
//	POST /v1/runs/{id}/cancel cancel an in-flight shard run
//	GET  /healthz             liveness + slot capacity and usage
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener drains,
// in-flight shard runs are cancelled, and their final (interrupted)
// statistics are delivered to the coordinator before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr           = flag.String("addr", ":9101", "listen address")
		slots          = flag.Int("slots", 0, "walker-slot capacity (0 = GOMAXPROCS)")
		boardSync      = flag.Duration("board-sync", 0, "fallback board-cache sync period for dependent (exchange) shard runs when the coordinator does not pin one (0 = 50ms)")
		stream         = flag.Bool("stream", false, "enable streaming board sync over the persistent binary transport (HTTP remains the fallback)")
		telemetryPath  = flag.String("telemetry", "", "append FTDC-style per-walker telemetry frames to this file (empty = off)")
		telemetryEvery = flag.Duration("telemetry-interval", time.Second, "telemetry sampling period")
	)
	flag.Parse()

	cfg := dist.WorkerConfig{Slots: *slots, BoardSync: *boardSync, Stream: *stream, TelemetryInterval: *telemetryEvery}
	if *telemetryPath != "" {
		f, err := os.Create(*telemetryPath)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		defer f.Close()
		cfg.Telemetry = telemetry.NewRecorder(f)
		log.Printf("worker: telemetry -> %s every %v", *telemetryPath, *telemetryEvery)
	}

	wk := dist.NewWorker(cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           wk.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("worker: listening on %s (slots=%d)", *addr, wk.Slots())
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		wk.Close()
		return err
	case sig := <-stop:
		log.Printf("worker: %v — shutting down", sig)
	}

	// Cancel in-flight runs first so their handlers finish (delivering
	// interrupted stats), then drain the listener.
	wk.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("worker: listener shutdown: %v", err)
	}
	log.Printf("worker: drained cleanly")
	return nil
}
