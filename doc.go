// Package repro is a Go reproduction of "Performance Analysis of
// Parallel Constraint-Based Local Search" (Abreu, Caniou, Codognet,
// Diaz, Richoux — PPoPP 2012): the Adaptive Search constraint solver,
// its CSPLib benchmark suite, the multiple independent-walk parallel
// execution scheme, and the performance-analysis toolchain that
// regenerates the paper's figures.
//
// The root package is a thin facade over the implementation packages:
//
//   - internal/core      — the sequential Adaptive Search engine
//   - internal/problems  — benchmark encodings (all-interval,
//     perfect-square, magic-square, Costas arrays, queens, alpha,
//     langford, partition)
//   - internal/multiwalk — parallel independent multi-walk execution
//     (plus the paper's future-work dependent scheme)
//   - internal/csp       — declarative constraint modeling
//   - internal/service   — admission-controlled solve scheduler
//     (cmd/serve exposes it over HTTP)
//   - internal/dist      — distributed coordinator/worker layer that
//     shards a job's walkers over worker processes (cmd/worker) with
//     bit-for-bit reproducibility against the single-process run
//   - internal/stats     — runtime-distribution analysis and the
//     order-statistics speedup estimator
//   - internal/cluster   — HA8000 / Grid'5000 platform simulation
//   - internal/bench     — the per-figure experiment harness
//
// # Quick start
//
//	p, err := repro.NewProblem("magic-square", 10)
//	if err != nil { ... }
//	res, err := repro.Solve(ctx, p, repro.TunedOptions(p))
//	fmt.Println(res.Solved, res.Iterations)
//
// Parallel multi-walk (the paper's contribution):
//
//	factory, _ := repro.NewProblemFactory("costas", 14)
//	mres, _ := repro.SolveParallel(ctx, factory, repro.MultiWalkOptions{
//		Walkers: 8,
//		Engine:  repro.TunedOptions(p),
//	})
//
// See the examples/ directory for runnable programs and cmd/experiments
// for the figure-regeneration harness.
package repro
