// Quickstart: solve a 10x10 magic square with the Adaptive Search
// engine through the public facade, then solve it faster with the
// paper's parallel independent multi-walk scheme.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// 1. Sequential Adaptive Search.
	p, err := repro.NewProblem("magic-square", 10)
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.TunedOptions(p)
	opts.Seed = 42
	res, err := repro.Solve(ctx, p, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %v\n", res)
	printGrid(res.Solution, 10)

	// 2. Parallel multi-walk: 4 independent walkers on a Costas array,
	// first solution wins ("no communication except completion" — the
	// paper's scheme). On a multicore machine the wall time shrinks
	// with the walker count; winner iterations shrink on any machine.
	factory, err := repro.NewProblemFactory("costas", 14)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := repro.NewProblem("costas", 14)
	if err != nil {
		log.Fatal(err)
	}
	mres, err := repro.SolveParallel(ctx, factory, repro.MultiWalkOptions{
		Walkers: 4,
		Seed:    42,
		Engine:  repro.TunedOptions(cp),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmulti-walk costas-14: solved=%v winner=walker-%d winner-iterations=%d wall=%v\n",
		mres.Solved, mres.Winner, mres.WinnerIterations, mres.Elapsed)
}

// printGrid renders the magic square with 1-based values.
func printGrid(sol []int, n int) {
	if sol == nil {
		return
	}
	magic := n * (n*n + 1) / 2
	fmt.Printf("magic constant: %d\n", magic)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			fmt.Printf("%4d", sol[r*n+c]+1)
		}
		fmt.Println()
	}
}
