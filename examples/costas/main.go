// Costas arrays: the paper's hardest benchmark (Fig. 3). Solves an
// order-16 Costas Array Problem with parallel independent multi-walk,
// prints the array, and then measures the multi-walk speedup at small
// walker counts with deterministic virtual runs — the laptop-scale
// version of the paper's "ideal speedup" observation.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
)

const order = 16

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	factory, err := repro.NewProblemFactory("costas", order)
	if err != nil {
		log.Fatal(err)
	}
	p, err := repro.NewProblem("costas", order)
	if err != nil {
		log.Fatal(err)
	}
	engine := repro.TunedOptions(p)

	// Solve with one walker per available core, first solution wins.
	walkers := runtime.GOMAXPROCS(0)
	if walkers < 2 {
		walkers = 2
	}
	res, err := repro.SolveParallel(ctx, factory, repro.MultiWalkOptions{
		Walkers: walkers,
		Seed:    7,
		Engine:  engine,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatalf("no Costas array of order %d found before the deadline", order)
	}
	fmt.Printf("Costas array of order %d (walker %d won after %d iterations, %v wall):\n\n",
		order, res.Winner, res.WinnerIterations, res.Elapsed)
	printCostas(res.Solution)

	// Multi-walk speedup at small k, measured in iterations (the
	// machine-independent runtime): the mean winner iteration count of
	// k independent walks shrinks close to 1/k because Costas runtimes
	// are near-memoryless — the mechanism behind the paper's Fig. 3.
	fmt.Println("virtual multi-walk speedup (mean winner iterations over 10 runs):")
	var base float64
	for _, k := range []int{1, 2, 4, 8} {
		mean := 0.0
		const reps = 10
		for rep := 0; rep < reps; rep++ {
			vres, err := repro.SolveParallelVirtual(ctx, factory, repro.MultiWalkOptions{
				Walkers: k,
				Seed:    uint64(100 + rep),
				Engine:  engine,
			})
			if err != nil {
				log.Fatal(err)
			}
			mean += float64(vres.WinnerIterations) / reps
		}
		if k == 1 {
			base = mean
		}
		fmt.Printf("  %2d walkers: %9.0f iterations  speedup %.2fx (ideal %d.00x)\n",
			k, mean, base/mean, k)
	}
}

// printCostas draws the n x n grid with one mark per column.
func printCostas(sol []int) {
	n := len(sol)
	for row := n - 1; row >= 0; row-- {
		for col := 0; col < n; col++ {
			if sol[col] == row {
				fmt.Print(" X")
			} else {
				fmt.Print(" .")
			}
		}
		fmt.Println()
	}
	fmt.Println()
}
