// Custommodel shows the declarative CSP layer on a problem that is not
// in the benchmark registry: the classic SEND + MORE = MONEY
// cryptarithm. Ten variables hold the digits 0-9 (a permutation); eight
// of them are the letters S,E,N,D,M,O,R,Y; the constraints are the
// column sum and the two leading-digit conditions. This is the "large
// class of constraints" genericity the paper claims for Adaptive
// Search, exercised through the same engine that solves the paper's
// benchmarks.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

// Variable indices: 0..7 are S,E,N,D,M,O,R,Y; 8 and 9 absorb the two
// unused digits so the model stays a permutation of 0..9.
const (
	S = iota
	E
	N
	D
	M
	O
	R
	Y
)

func main() {
	m := repro.NewModel(10, 0) // values are the digits 0..9

	// SEND + MORE - MONEY == 0, weighted so it dominates.
	m.AddCustom("send+more=money", []int{S, E, N, D, M, O, R, Y}, func(v []int) int {
		send := 1000*v[0] + 100*v[1] + 10*v[2] + v[3]
		more := 1000*v[4] + 100*v[5] + 10*v[6] + v[1]
		money := 10000*v[4] + 1000*v[5] + 100*v[2] + 10*v[1] + v[7]
		d := send + more - money
		if d < 0 {
			d = -d
		}
		return d
	})
	// Leading digits must not be zero; heavy weights keep the engine
	// out of degenerate regions.
	m.AddWeighted("S!=0", []int{S}, 5000, func(v []int) int {
		if v[0] == 0 {
			return 1
		}
		return 0
	})
	m.AddWeighted("M!=0", []int{M}, 5000, func(v []int) int {
		if v[0] == 0 {
			return 1
		}
		return 0
	})

	p, err := m.Compile()
	if err != nil {
		log.Fatal(err)
	}

	opts := repro.DefaultOptions(10)
	opts.Exhaustive = true // 10 variables: the full pair scan is cheap and strong
	opts.MaxIterations = 5000
	opts.Seed = 3

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := repro.Solve(ctx, p, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatalf("unsolved: %v", res)
	}
	v := res.Solution
	fmt.Printf("solved in %d iterations (%d restarts, %v)\n\n", res.Iterations, res.Restarts, res.Elapsed)
	fmt.Printf("  S=%d E=%d N=%d D=%d M=%d O=%d R=%d Y=%d\n\n",
		v[S], v[E], v[N], v[D], v[M], v[O], v[R], v[Y])
	send := 1000*v[S] + 100*v[E] + 10*v[N] + v[D]
	more := 1000*v[M] + 100*v[O] + 10*v[R] + v[E]
	money := 10000*v[M] + 1000*v[O] + 100*v[N] + 10*v[E] + v[Y]
	fmt.Printf("   %5d\n + %5d\n = %5d\n", send, more, money)
}
