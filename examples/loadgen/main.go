// Command loadgen hammers a solve service with a mixed
// problem/portfolio workload and reports throughput, latency
// percentiles and per-outcome counts. It is both a benchmarking tool
// and the serving-path smoke test run in CI.
//
// Usage:
//
//	loadgen -inprocess -jobs 200 -concurrency 32            # self-hosted smoke
//	loadgen -inprocess -dist-workers 3 -jobs 200            # in-process distributed fleet
//	loadgen -inprocess -dist-workers 3 -exchange -jobs 100  # dependent runs across the fleet
//	loadgen -addr http://localhost:8080 -jobs 1000          # against cmd/serve
//	loadgen -addr http://localhost:8080 -autosize costas:10 # predictor-sized jobs (serve -calibration)
//
// -dist-workers n stands up n in-process dist workers plus a
// coordinator backend behind the scheduler — the full distributed
// serving path (shard planning, worker HTTP protocol, cross-worker
// cancellation) in one race-detectable process.
//
// Every job must reach a terminal state; dropped results, failed jobs
// or unexpected HTTP statuses make the process exit non-zero. 429
// backpressure responses are retried with backoff — admission control
// rejecting excess load is correct behavior, losing an admitted job is
// not.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/service"
	"repro/internal/wire"
)

// scenario is one entry of the mixed workload.
type scenario struct {
	name string
	req  map[string]any
}

func scenarios(timeoutMS int64, exchange bool) []scenario {
	mix := []scenario{
		{"costas-8", map[string]any{"problem": "costas", "size": 8, "walkers": 1, "timeout_ms": timeoutMS}},
		{"costas-10x2", map[string]any{"problem": "costas", "size": 10, "walkers": 2, "timeout_ms": timeoutMS}},
		{"queens-32", map[string]any{"problem": "queens", "size": 32, "walkers": 1, "timeout_ms": timeoutMS}},
		{"all-interval-10", map[string]any{"problem": "all-interval", "size": 10, "walkers": 2, "timeout_ms": timeoutMS}},
		{"magic-square-5", map[string]any{"problem": "magic-square", "size": 5, "walkers": 1, "timeout_ms": timeoutMS}},
		// The finite-domain benchmark: exercises the assign/flip move
		// path and problem-parameter plumbing end to end.
		{"timetable-20", map[string]any{
			"problem": "timetable", "size": 20, "walkers": 2, "timeout_ms": timeoutMS,
			"params": map[string]any{"slots": 6, "rooms": 4, "teachers": 4},
		}},
		{"portfolio-costas-9", map[string]any{
			"problem": "costas", "size": 9, "walkers": 2, "timeout_ms": timeoutMS,
			"portfolio": []map[string]any{{"strategy": "adaptive", "weight": 1}, {"strategy": "metropolis", "weight": 1}},
		}},
	}
	if exchange {
		// Dependent mode: multi-walker scenarios cooperate through the
		// elite board — on a dist backend, across worker processes.
		for _, sc := range mix {
			if w, ok := sc.req["walkers"].(int); ok && w >= 2 {
				sc.req["exchange"] = map[string]any{"enabled": true, "period_iters": 256, "adopt_factor": 1.5}
			}
		}
	}
	return mix
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "", "target service base URL (empty with -inprocess)")
		inprocess   = flag.Bool("inprocess", false, "spin up the service in-process instead of targeting -addr")
		jobs        = flag.Int("jobs", 200, "total jobs to submit")
		concurrency = flag.Int("concurrency", 32, "concurrent client workers")
		timeoutMS   = flag.Int64("job-timeout-ms", 15_000, "per-job solver deadline")
		slots       = flag.Int("slots", 0, "in-process pool size (0 = GOMAXPROCS)")
		queueDepth  = flag.Int("queue", 0, "in-process queue depth (0 = 256)")
		distWorkers = flag.Int("dist-workers", 0, "with -inprocess: run jobs on this many in-process dist workers (0 = local backend)")
		distSlots   = flag.Int("dist-slots", 2, "slot capacity of each in-process dist worker")
		asyncEvery  = flag.Int("async-every", 5, "poll instead of wait for every n-th job (0 = always wait)")
		seed        = flag.Int64("seed", 1, "workload shuffle seed")
		exchange    = flag.Bool("exchange", false, "run multi-walker scenarios in dependent (exchange) mode — on a dist backend, walkers cooperate across worker processes")
		tenantsMix  = flag.String("tenants", "", "attribute jobs to tenants by weight, name=weight,... (e.g. batch=3,interactive=1); empty submits without tenant attribution")
		stream      = flag.Bool("stream", false, "await async jobs over the persistent binary progress stream instead of GET polling (with -inprocess, also stands the stream listener up; against -addr, discovered via /healthz stream_addr)")
		autosize    = flag.String("autosize", "", "replace the mixed workload with auto-sized jobs of this problem spec (\"problem\" or \"problem:size\"): requests carry {\"autosize\": {}} instead of a walker count, the server must hold calibration for the problem (serve -calibration), and every returned job must echo a predictor-chosen walker count >= 1")
	)
	flag.Parse()

	if *distWorkers > 0 && !*inprocess {
		return fmt.Errorf("-dist-workers builds an in-process fleet and requires -inprocess (to load-test a real fleet, point -addr at a serve -workers instance)")
	}
	base := *addr
	client := http.DefaultClient
	if *inprocess {
		var backend service.Backend
		var fleetDown func()
		if *distWorkers > 0 {
			var err error
			backend, fleetDown, err = inprocessFleet(*distWorkers, *distSlots)
			if err != nil {
				return err
			}
			fmt.Printf("in-process fleet: %d workers x %d slots\n", *distWorkers, *distSlots)
		}
		sched := service.New(service.Config{Slots: *slots, QueueDepth: *queueDepth, Backend: backend})
		var streamSrv *service.StreamServer
		if *stream {
			var err error
			streamSrv, err = service.NewStreamServer(sched, "")
			if err != nil {
				sched.Close()
				return err
			}
			sched.SetStreamAddr(streamSrv.Addr())
		}
		srv := httptest.NewServer(service.NewHandler(sched))
		defer func() {
			srv.Close()
			if streamSrv != nil {
				streamSrv.Close()
			}
			sched.Close() // closes the coordinator backend too
			if fleetDown != nil {
				fleetDown()
			}
			fmt.Println("clean shutdown: scheduler drained")
		}()
		base = srv.URL
		client = srv.Client()
	}
	if base == "" {
		return fmt.Errorf("need -addr or -inprocess")
	}

	// Clamp scenario walker counts to the server's pool size (a
	// k-walker job needs k slots) so the mix adapts to any machine —
	// single-core CI included.
	poolSlots, streamAddr, err := serverHealth(client, base)
	if err != nil {
		return fmt.Errorf("probing %s/healthz: %w", base, err)
	}

	// Streaming transport: one persistent multiplexed connection awaits
	// every async job's terminal event; polling stays the fallback if
	// the server does not advertise a stream or the connection dies.
	var streamCli *streamClient
	if *stream {
		if streamAddr == "" {
			return fmt.Errorf("-stream: server %s advertises no stream_addr (start serve with -stream)", base)
		}
		streamCli, err = dialStream(resolveStreamAddr(base, streamAddr))
		if err != nil {
			return fmt.Errorf("-stream: dialing %s: %w", streamAddr, err)
		}
		defer streamCli.close()
		fmt.Printf("progress stream connected: %s\n", streamAddr)
	}
	mix := scenarios(*timeoutMS, *exchange)
	if *autosize != "" {
		sc, err := autosizeScenario(*autosize, *timeoutMS)
		if err != nil {
			return err
		}
		mix = []scenario{sc}
	}
	for _, sc := range mix {
		w, ok := sc.req["walkers"].(int)
		if !ok {
			continue
		}
		if w > poolSlots {
			w = poolSlots
			sc.req["walkers"] = w
		}
		// A portfolio entry beyond the walker count is unreachable and
		// rejected at admission; trim the mix to fit.
		if pf, ok := sc.req["portfolio"].([]map[string]any); ok && len(pf) > w {
			sc.req["portfolio"] = pf[:w]
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	order := make([]int, *jobs)
	for i := range order {
		order[i] = rng.Intn(len(mix))
	}
	tenantPick, err := parseTenantMix(*tenantsMix)
	if err != nil {
		return err
	}
	tenantOf := make([]string, *jobs)
	if tenantPick != nil {
		for i := range tenantOf {
			tenantOf[i] = tenantPick(rng)
		}
	}

	var (
		mu         sync.Mutex
		latencies  []time.Duration
		outcomes   = map[service.State]int{}
		perScen    = map[string]int{}
		perTenant  = map[string]int{}
		perWalkers = map[int]int{}
		retries    atomic.Int64
		dropped    atomic.Int64
		failures   atomic.Int64
		transport  transportMix
	)

	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				sc := mix[order[i]]
				wait := *asyncEvery == 0 || i%*asyncEvery != 0
				t0 := time.Now()
				job, nRetries, err := submit(client, base, sc, tenantOf[i], uint64(i+1), wait, streamCli, &transport)
				lat := time.Since(t0)
				retries.Add(int64(nRetries))
				if err != nil {
					fmt.Fprintf(os.Stderr, "job %d (%s): %v\n", i, sc.name, err)
					dropped.Add(1)
					continue
				}
				if job.State == service.StateFailed {
					fmt.Fprintf(os.Stderr, "job %d (%s) failed: %s\n", i, sc.name, job.Error)
					failures.Add(1)
				}
				if *autosize != "" && job.Request.Walkers < 1 {
					// The request carried no walker count, so a sane echo
					// proves the predictor actually sized the job.
					fmt.Fprintf(os.Stderr, "job %d (%s): autosized job echoes walkers=%d\n", i, sc.name, job.Request.Walkers)
					failures.Add(1)
				}
				mu.Lock()
				latencies = append(latencies, lat)
				outcomes[job.State]++
				perScen[sc.name]++
				if *autosize != "" {
					perWalkers[job.Request.Walkers]++
				}
				if tenantOf[i] != "" {
					perTenant[tenantOf[i]]++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	var stats service.Stats
	if resp, err := client.Get(base + "/metrics"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
	}

	report(*jobs, elapsed, latencies, outcomes, perScen, perTenant, perWalkers, stats, retries.Load(), &transport)

	if d := dropped.Load(); d > 0 {
		return fmt.Errorf("%d of %d jobs dropped", d, *jobs)
	}
	if f := failures.Load(); f > 0 {
		return fmt.Errorf("%d of %d jobs failed", f, *jobs)
	}
	if got := len(latencies); got != *jobs {
		return fmt.Errorf("accounted for %d of %d jobs", got, *jobs)
	}
	return nil
}

// inprocessFleet stands up n dist workers behind httptest servers and
// a coordinator over them — the whole distributed serving path inside
// one process, which is what the race-enabled smoke runs exercise.
func inprocessFleet(n, slotsEach int) (service.Backend, func(), error) {
	workers := make([]*dist.Worker, 0, n)
	servers := make([]*httptest.Server, 0, n)
	urls := make([]string, 0, n)
	down := func() {
		for i := range servers {
			servers[i].Close()
			workers[i].Close()
		}
	}
	for i := 0; i < n; i++ {
		wk := dist.NewWorker(dist.WorkerConfig{Slots: slotsEach})
		srv := httptest.NewServer(wk.Handler())
		workers = append(workers, wk)
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
	}
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Workers: urls})
	if err != nil {
		down()
		return nil, nil, err
	}
	return coord, down, nil
}

// serverHealth reads the walker-slot pool size and the advertised
// progress-stream address (if any) from /healthz.
func serverHealth(client *http.Client, base string) (int, string, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var health struct {
		Slots      int    `json:"slots"`
		StreamAddr string `json:"stream_addr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, "", err
	}
	if health.Slots < 1 {
		return 0, "", fmt.Errorf("server reports %d slots", health.Slots)
	}
	return health.Slots, health.StreamAddr, nil
}

// resolveStreamAddr makes an advertised stream address dialable: a
// listener bound to a wildcard host advertises an unspecified address,
// which is rewritten to the host the HTTP base URL already reaches.
func resolveStreamAddr(base, addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		if u, err := url.Parse(base); err == nil && u.Hostname() != "" {
			return net.JoinHostPort(u.Hostname(), port)
		}
	}
	return addr
}

// transportMix counts how each job reached its terminal state.
type transportMix struct {
	waited   atomic.Int64 // synchronous {"wait": true}
	streamed atomic.Int64 // async, awaited over the progress stream
	polled   atomic.Int64 // async, GET polling (fallback or -stream off)
}

// submit runs one job to a terminal state: synchronously via
// {"wait": true}, or asynchronously — awaited over the progress stream
// when one is connected, with jittered-exponential-backoff GET polling
// as the fallback. 429 responses are retried with backoff and reported
// in the retry counter.
func submit(client *http.Client, base string, sc scenario, tenant string, seed uint64, wait bool, stream *streamClient, mix *transportMix) (service.Job, int, error) {
	req := make(map[string]any, len(sc.req)+3)
	for k, v := range sc.req {
		req[k] = v
	}
	req["seed"] = seed
	req["wait"] = wait
	if tenant != "" {
		req["tenant"] = tenant
	}
	body, err := json.Marshal(req)
	if err != nil {
		return service.Job{}, 0, err
	}

	retries := 0
	var job service.Job
	for {
		resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return service.Job{}, retries, err
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			retries++
			time.Sleep(time.Duration(min(retries, 50)) * 2 * time.Millisecond)
			continue
		}
		if decodeErr != nil {
			return service.Job{}, retries, decodeErr
		}
		if wait && resp.StatusCode == http.StatusOK {
			mix.waited.Add(1)
			return job, retries, nil
		}
		if !wait && resp.StatusCode == http.StatusAccepted {
			break
		}
		return service.Job{}, retries, fmt.Errorf("unexpected status %d: %+v", resp.StatusCode, job)
	}

	// Async path, streaming transport first: subscribe and block for
	// the terminal event — zero polling requests. A dead or missing
	// stream degrades to the polling loop below.
	if stream != nil {
		if final, err := stream.await(job.ID); err == nil {
			mix.streamed.Add(1)
			return final, retries, nil
		}
	}

	// Polling fallback: jittered exponential backoff, starting tight
	// (most jobs in the mix finish in milliseconds) and capping at
	// 250ms so long jobs do not hammer the server. The jitter factor in
	// [0.5, 1.5) de-synchronizes the concurrent client workers.
	mix.polled.Add(1)
	backoff := 2 * time.Millisecond
	const maxBackoff = 250 * time.Millisecond
	for {
		resp, err := client.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			return service.Job{}, retries, err
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if decodeErr != nil {
			return service.Job{}, retries, decodeErr
		}
		if resp.StatusCode != http.StatusOK {
			return service.Job{}, retries, fmt.Errorf("poll status %d", resp.StatusCode)
		}
		if job.State.Terminal() {
			return job, retries, nil
		}
		time.Sleep(time.Duration(float64(backoff) * (0.5 + rand.Float64())))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// streamClient is loadgen's end of the job-progress stream: one
// multiplexed connection shared by every client worker, a reader
// goroutine routing terminal frames to per-job waiters. Any failure
// marks the client dead and wakes every waiter with an error; their
// jobs (and all later ones) fall back to HTTP polling.
type streamClient struct {
	conn *wire.Conn

	mu      sync.Mutex
	waiters map[string]chan service.Job

	dead     chan struct{}
	deadOnce sync.Once
}

func dialStream(addr string) (*streamClient, error) {
	conn, err := wire.Dial(addr, "loadgen", 10*time.Second)
	if err != nil {
		return nil, err
	}
	sc := &streamClient{
		conn:    conn,
		waiters: make(map[string]chan service.Job),
		dead:    make(chan struct{}),
	}
	go sc.readLoop()
	return sc, nil
}

func (sc *streamClient) readLoop() {
	for {
		typ, payload, err := sc.conn.ReadFrame()
		if err != nil {
			sc.fail()
			return
		}
		if typ != wire.TypeProgress {
			continue
		}
		p, err := wire.DecodeProgress(payload)
		if err != nil {
			sc.fail()
			return
		}
		if !p.Terminal {
			continue // milestone events; loadgen only needs the outcome
		}
		sc.mu.Lock()
		ch := sc.waiters[p.Job]
		delete(sc.waiters, p.Job)
		sc.mu.Unlock()
		if ch != nil {
			ch <- service.JobFromProgress(&p)
		}
	}
}

// await subscribes to one job and blocks until its terminal event.
func (sc *streamClient) await(jobID string) (service.Job, error) {
	ch := make(chan service.Job, 1)
	sc.mu.Lock()
	sc.waiters[jobID] = ch
	sc.mu.Unlock()
	if err := sc.conn.WriteSubscribe(jobID); err != nil {
		sc.fail()
		return service.Job{}, err
	}
	select {
	case job := <-ch:
		if !job.State.Terminal() {
			// A terminal error frame without a state (unknown/evicted
			// job): let the caller poll for the authoritative answer.
			return service.Job{}, fmt.Errorf("stream: %s", job.Error)
		}
		return job, nil
	case <-sc.dead:
		return service.Job{}, fmt.Errorf("stream connection lost")
	}
}

func (sc *streamClient) fail() {
	sc.deadOnce.Do(func() { close(sc.dead) })
	_ = sc.conn.Close()
	sc.mu.Lock()
	sc.waiters = make(map[string]chan service.Job)
	sc.mu.Unlock()
}

func (sc *streamClient) close() { sc.fail() }

// parseTenantMix parses -tenants (name=weight,...) into a weighted
// random picker over tenant names; nil when the flag is unset.
func parseTenantMix(spec string) (func(*rand.Rand) string, error) {
	if spec == "" {
		return nil, nil
	}
	type tw struct {
		name   string
		weight int
	}
	var mix []tw
	total := 0
	for _, entry := range strings.Split(spec, ",") {
		name, wstr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants: entry %q is not name=weight", entry)
		}
		w, err := strconv.Atoi(wstr)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenants: %s: weight %q is not a positive integer", name, wstr)
		}
		mix = append(mix, tw{name, w})
		total += w
	}
	return func(rng *rand.Rand) string {
		n := rng.Intn(total)
		for _, t := range mix {
			if n -= t.weight; n < 0 {
				return t.name
			}
		}
		return mix[len(mix)-1].name
	}, nil
}

// autosizeScenario builds the single-scenario auto-sizing workload
// from a "problem" or "problem:size" spec: jobs carry {"autosize": {}}
// (knee mode — no latency target) and no walker count, so the server's
// predictor must size every one of them.
func autosizeScenario(spec string, timeoutMS int64) (scenario, error) {
	problem, sizeStr, sized := strings.Cut(spec, ":")
	if problem == "" {
		return scenario{}, fmt.Errorf("-autosize: empty problem in %q", spec)
	}
	req := map[string]any{"problem": problem, "autosize": map[string]any{}, "timeout_ms": timeoutMS}
	name := "autosize-" + problem
	if sized {
		size, err := strconv.Atoi(sizeStr)
		if err != nil || size < 1 {
			return scenario{}, fmt.Errorf("-autosize: size %q is not a positive integer", sizeStr)
		}
		req["size"] = size
		name += "-" + sizeStr
	}
	return scenario{name, req}, nil
}

func report(jobs int, elapsed time.Duration, lats []time.Duration, outcomes map[service.State]int, perScen, perTenant map[string]int, perWalkers map[int]int, stats service.Stats, retries int64, mix *transportMix) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	fmt.Printf("loadgen: %d jobs in %v (%.1f jobs/s), %d backpressure retries\n",
		jobs, elapsed.Round(time.Millisecond), float64(len(lats))/elapsed.Seconds(), retries)
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("transport: %d waited, %d streamed, %d polled\n",
		mix.waited.Load(), mix.streamed.Load(), mix.polled.Load())
	states := make([]string, 0, len(outcomes))
	for s := range outcomes {
		states = append(states, string(s))
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Printf("outcome %-10s %d\n", s, outcomes[service.State(s)])
	}
	scens := make([]string, 0, len(perScen))
	for s := range perScen {
		scens = append(scens, s)
	}
	sort.Strings(scens)
	for _, s := range scens {
		fmt.Printf("scenario %-18s %d\n", s, perScen[s])
	}
	tenants := make([]string, 0, len(perTenant))
	for t := range perTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		line := fmt.Sprintf("tenant %-12s %d jobs", t, perTenant[t])
		if ts, ok := stats.Tenants[t]; ok {
			line += fmt.Sprintf(" (server: weight=%d dispatched=%d charge=%.2f)", ts.Weight, ts.Dispatched, ts.Charge)
		}
		fmt.Println(line)
	}
	ks := make([]int, 0, len(perWalkers))
	for k := range perWalkers {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Printf("autosized walkers=%d        %d jobs\n", k, perWalkers[k])
	}
	if stats.JobsSubmitted > 0 {
		fmt.Printf("server: %d iterations total (%.0f iters/s), peak pool %d slots\n",
			stats.Iterations, stats.IterationsPerSec, stats.Slots)
	}
	if stats.AutoSized > 0 || stats.AutoRejected > 0 {
		fmt.Printf("server: %d autosize predictions, %d autosize rejections\n",
			stats.AutoSized, stats.AutoRejected)
	}
	if n := stats.Fleet["speculations_launched"]; n > 0 {
		fmt.Printf("speculation: %d launched, %d won, %d lost, %d cancelled\n",
			n, stats.Fleet["speculations_won"], stats.Fleet["speculations_lost"],
			stats.Fleet["speculations_cancelled"])
	}
}
