// Portfolio: run a heterogeneous multi-walk — walkers mixing classic
// Adaptive Search with the Metropolis and random-walk strategies — on a
// Costas array, then replay the same portfolio deterministically with
// the virtual scheme to show the run is reproducible given a seed.
//
// Heterogeneous portfolios extend the paper's independent multi-walk
// scheme along the diversity axis: the min-of-k runtime the speedup
// feeds on improves when the per-walker runtime distributions differ,
// not just their seeds (see DESIGN.md §5).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	p, err := repro.NewProblem("costas", 14)
	if err != nil {
		log.Fatal(err)
	}
	factory, err := repro.NewProblemFactory("costas", 14)
	if err != nil {
		log.Fatal(err)
	}

	// Weighted portfolio: half the walkers run classic Adaptive Search,
	// the rest split between the Metropolis and random-walk strategies.
	tuned := repro.TunedOptions(p)
	entry := func(strategy string, weight int) repro.PortfolioEntry {
		eng := tuned
		eng.Strategy = strategy
		return repro.PortfolioEntry{Weight: weight, Engine: eng}
	}
	opts := repro.MultiWalkOptions{
		Walkers: 8,
		Seed:    2012,
		Portfolio: []repro.PortfolioEntry{
			entry(repro.StrategyAdaptive, 2),
			entry(repro.StrategyMetropolis, 1),
			entry(repro.StrategyRandomWalk, 1),
		},
	}

	// 1. Wall-clock run: first solution wins, losers are cancelled.
	res, err := repro.SolveParallel(ctx, factory, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel portfolio: solved=%v winner=walker-%d (%s) in %v\n",
		res.Solved, res.Winner, winnerStrategy(res), res.Elapsed)

	// 2. Virtual replays: deterministic, hardware-independent — the
	// same seed must reproduce the same winner and iteration counts.
	a, err := repro.SolveParallelVirtual(ctx, factory, opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := repro.SolveParallelVirtual(ctx, factory, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual replay 1: winner=walker-%d (%s) iterations=%d\n",
		a.Winner, winnerStrategy(a), a.WinnerIterations)
	fmt.Printf("virtual replay 2: winner=walker-%d (%s) iterations=%d\n",
		b.Winner, winnerStrategy(b), b.WinnerIterations)
	if a.Winner != b.Winner || a.WinnerIterations != b.WinnerIterations {
		log.Fatal("virtual portfolio replay was not deterministic")
	}
	for _, w := range a.Walkers {
		fmt.Printf("  walker %d: strategy=%-12s iterations=%d\n",
			w.Walker, w.Result.Strategy, w.Result.Iterations)
	}
}

// winnerStrategy names the winning walker's strategy, or "-" when the
// run is unsolved.
func winnerStrategy(res repro.MultiWalkResult) string {
	if res.Winner < 0 {
		return "-"
	}
	return res.Walkers[res.Winner].Result.Strategy
}
