// Speedupstudy reproduces the paper's Fig. 3 pipeline end to end at
// laptop scale: collect the sequential runtime distribution of a Costas
// instance, verify it is near-exponential (memoryless), and predict the
// multi-walk speedup up to 256 cores with the order-statistics
// estimator and the simulated HA8000 platform — the substitution
// DESIGN.md §2 documents for the paper's hardware.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	w := bench.Workload{Benchmark: "costas", Size: 13, Runs: 600}
	fmt.Printf("collecting %d sequential solves of %s...\n", w.Runs, w)
	d, err := bench.Collect(ctx, w, 2012)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean %.0f iterations, CV %.2f (exponential = 1.0), QQ-exp R2 %.3f\n\n",
		d.Iters.Mean(), d.Iters.CV(), d.Iters.QQExponentialR2())

	// Order-statistics prediction: E[T] / E[min_k].
	fmt.Println("cores  speedup(orderstat)  speedup(model)  ideal")
	fmt.Println("(orderstat estimates at k within ~n/10 of the sample size are exact; beyond, the fitted model extrapolates)")
	for _, k := range []int{1, 16, 32, 64, 128, 256} {
		sp, err := d.Iters.Speedup(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %18.1f  %14.1f  %5d\n", k, sp, d.Model.Speedup(k), k)
	}

	// Platform simulation: the same jobs on the HA8000 model, wall
	// times in (simulated) seconds — Fig. 3's log-log view w.r.t. 32
	// cores.
	platform := cluster.HA8000()
	// Dilate simulated time to the paper's duration scale: Costas-22
	// takes hours sequentially, so HA8000's half-second job launch is
	// negligible there — it must stay negligible in the simulation too.
	platform.IterationsPerSecond = d.SimItersPerSecond()
	src, err := cluster.NewEmpiricalSource(d.Iters)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := cluster.NewSim(platform, src)
	if err != nil {
		log.Fatal(err)
	}
	curve, err := sim.SpeedupCurve([]int{32, 64, 128, 256}, 400, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated HA8000, speedup w.r.t. 32 cores (paper Fig. 3):")
	base := curve.Points[0]
	for _, pt := range curve.Points {
		fmt.Printf("%5d cores  wall %.3fs  speedup-vs-32 %.2fx (ideal %.2fx)\n",
			pt.Cores, pt.MeanWall, base.MeanWall/pt.MeanWall, float64(pt.Cores)/32)
	}
}
