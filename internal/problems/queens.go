package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "queens",
		description: "N-Queens: place n queens on an n x n board with no two attacking (CSPLib prob054)",
		defaultSize: 100,
		paperSize:   100,
		build:       func(n int) (core.Problem, error) { return NewQueens(n) },
	})
}

// Queens encodes the N-Queens problem. The configuration is a
// permutation: cfg[r] is the column of the queen in row r, so rows and
// columns are all-different by construction and only diagonal conflicts
// contribute to the cost. The encoding maintains occupancy counters for
// the 2n-1 ascending and 2n-1 descending diagonals, giving O(1)
// CostIfSwap — the same structure as the C library's queens benchmark —
// plus a delta-maintained per-row error vector: intrusive membership
// lists record which rows sit on each diagonal, so ExecutedSwap
// refreshes only the rows on the (at most eight) diagonals a swap
// touches instead of invalidating anything.
type Queens struct {
	n    int
	up   []int // up[r+c] = queens on the ascending diagonal r+c
	down []int // down[r-c+n-1] = queens on the descending diagonal

	// errVec[r] = (up[r+c]-1) + (down[r-c+n-1]-1), the number of queens
	// attacking row r's queen — always current (MaintainedErrorVector).
	errVec []int
	// Intrusive doubly-linked membership lists: upHead[s] is the first
	// row on ascending diagonal s (-1 when empty), upNext/upPrev chain
	// the rows; likewise for descending diagonals. Each row is on
	// exactly one diagonal of each family, so one next/prev slot per
	// row suffices.
	upHead, downHead   []int32
	upNext, upPrev     []int32
	downNext, downPrev []int32
}

// NewQueens returns an n-queens instance. n must be at least 1.
func NewQueens(n int) (*Queens, error) {
	if n < 1 {
		return nil, fmt.Errorf("queens: size must be >= 1, got %d", n)
	}
	return &Queens{
		n:        n,
		up:       make([]int, 2*n-1),
		down:     make([]int, 2*n-1),
		errVec:   make([]int, n),
		upHead:   make([]int32, 2*n-1),
		downHead: make([]int32, 2*n-1),
		upNext:   make([]int32, n),
		upPrev:   make([]int32, n),
		downNext: make([]int32, n),
		downPrev: make([]int32, n),
	}, nil
}

var (
	_ core.SwapExecutor          = (*Queens)(nil)
	_ core.MaintainedErrorVector = (*Queens)(nil)
	_ core.MoveEvaluator         = (*Queens)(nil)
)

// Name implements core.Namer.
func (q *Queens) Name() string { return "queens" }

// Size implements core.Problem.
func (q *Queens) Size() int { return q.n }

// Cost implements core.Problem: the number of attacking pairs. It
// rebuilds the diagonal counters, membership lists and error vector
// from scratch.
func (q *Queens) Cost(cfg []int) int {
	for i := range q.up {
		q.up[i] = 0
		q.down[i] = 0
		q.upHead[i] = -1
		q.downHead[i] = -1
	}
	n1 := q.n - 1
	for r, c := range cfg {
		q.up[r+c]++
		q.down[r-c+n1]++
		q.linkUp(r, r+c)
		q.linkDown(r, r-c+n1)
	}
	cost := 0
	for i := range q.up {
		cost += pairs(q.up[i]) + pairs(q.down[i])
	}
	for r, c := range cfg {
		q.errVec[r] = (q.up[r+c] - 1) + (q.down[r-c+n1] - 1)
	}
	return cost
}

// linkUp pushes row r onto ascending diagonal s's membership list.
func (q *Queens) linkUp(r, s int) {
	h := q.upHead[s]
	q.upNext[r] = h
	q.upPrev[r] = -1
	if h >= 0 {
		q.upPrev[h] = int32(r)
	}
	q.upHead[s] = int32(r)
}

// unlinkUp removes row r from ascending diagonal s's membership list.
func (q *Queens) unlinkUp(r, s int) {
	p, nx := q.upPrev[r], q.upNext[r]
	if p >= 0 {
		q.upNext[p] = nx
	} else {
		q.upHead[s] = nx
	}
	if nx >= 0 {
		q.upPrev[nx] = p
	}
}

func (q *Queens) linkDown(r, s int) {
	h := q.downHead[s]
	q.downNext[r] = h
	q.downPrev[r] = -1
	if h >= 0 {
		q.downPrev[h] = int32(r)
	}
	q.downHead[s] = int32(r)
}

func (q *Queens) unlinkDown(r, s int) {
	p, nx := q.downPrev[r], q.downNext[r]
	if p >= 0 {
		q.downNext[p] = nx
	} else {
		q.downHead[s] = nx
	}
	if nx >= 0 {
		q.downPrev[nx] = p
	}
}

// pairs returns k choose 2: the number of conflicting pairs among k
// queens sharing a diagonal.
func pairs(k int) int { return k * (k - 1) / 2 }

// CostOnVariable implements core.Problem: the number of queens attacking
// the queen of row i.
func (q *Queens) CostOnVariable(cfg []int, i int) int {
	c := cfg[i]
	return (q.up[i+c] - 1) + (q.down[i-c+q.n-1] - 1)
}

// CostIfSwap implements core.Problem with an O(1) delta: remove the two
// queens from their diagonals, re-add them with swapped columns.
func (q *Queens) CostIfSwap(cfg []int, cost, i, j int) int {
	n1 := q.n - 1
	ci, cj := cfg[i], cfg[j]
	// Remove queen i and queen j from their four diagonals.
	cost -= q.up[i+ci] - 1
	q.up[i+ci]--
	cost -= q.down[i-ci+n1] - 1
	q.down[i-ci+n1]--
	cost -= q.up[j+cj] - 1
	q.up[j+cj]--
	cost -= q.down[j-cj+n1] - 1
	q.down[j-cj+n1]--
	// Re-add with swapped columns.
	cost += q.up[i+cj]
	q.up[i+cj]++
	cost += q.down[i-cj+n1]
	q.down[i-cj+n1]++
	cost += q.up[j+ci]
	q.up[j+ci]++
	cost += q.down[j-ci+n1]
	q.down[j-ci+n1]++
	// Roll back: CostIfSwap must not change observable state.
	q.up[i+cj]--
	q.down[i-cj+n1]--
	q.up[j+ci]--
	q.down[j-ci+n1]--
	q.up[i+ci]++
	q.down[i-ci+n1]++
	q.up[j+cj]++
	q.down[j-cj+n1]++
	return cost
}

// diagDelta accumulates the net queen-count change of up to four
// diagonals of one family; duplicate ids merge so shared diagonals
// cancel naturally.
type diagDelta struct {
	ids    [4]int
	deltas [4]int
	n      int
}

func (dd *diagDelta) add(id, delta int) {
	for k := 0; k < dd.n; k++ {
		if dd.ids[k] == id {
			dd.deltas[k] += delta
			return
		}
	}
	dd.ids[dd.n] = id
	dd.deltas[dd.n] = delta
	dd.n++
}

// ExecutedSwap implements core.SwapExecutor: cfg has already been
// swapped, so cfg[i] holds the old cfg[j] and vice versa. Counters,
// membership lists and the error vector are updated in place; only the
// rows sitting on a diagonal whose occupancy changed are refreshed.
func (q *Queens) ExecutedSwap(cfg []int, i, j int) {
	n1 := q.n - 1
	newCi, newCj := cfg[i], cfg[j] // post-swap columns
	oldUpI, oldDownI := i+newCj, i-newCj+n1
	oldUpJ, oldDownJ := j+newCi, j-newCi+n1
	newUpI, newDownI := i+newCi, i-newCi+n1
	newUpJ, newDownJ := j+newCj, j-newCj+n1

	// Remove the queens from their pre-swap diagonals...
	q.up[oldUpI]--
	q.down[oldDownI]--
	q.up[oldUpJ]--
	q.down[oldDownJ]--
	// ...and add them at their new positions.
	q.up[newUpI]++
	q.down[newDownI]++
	q.up[newUpJ]++
	q.down[newDownJ]++

	// Move the two rows between membership lists.
	q.unlinkUp(i, oldUpI)
	q.unlinkDown(i, oldDownI)
	q.unlinkUp(j, oldUpJ)
	q.unlinkDown(j, oldDownJ)
	q.linkUp(i, newUpI)
	q.linkDown(i, newDownI)
	q.linkUp(j, newUpJ)
	q.linkDown(j, newDownJ)

	// A row's error is a sum of its two diagonals' occupancies, so a
	// diagonal whose count moved by delta shifts every member row's
	// error by delta. The moved rows themselves are recomputed exactly
	// below, overwriting whatever the sweeps added.
	var du, dn diagDelta
	du.add(oldUpI, -1)
	du.add(oldUpJ, -1)
	du.add(newUpI, 1)
	du.add(newUpJ, 1)
	dn.add(oldDownI, -1)
	dn.add(oldDownJ, -1)
	dn.add(newDownI, 1)
	dn.add(newDownJ, 1)
	for k := 0; k < du.n; k++ {
		if d := du.deltas[k]; d != 0 {
			for r := q.upHead[du.ids[k]]; r >= 0; r = q.upNext[r] {
				q.errVec[r] += d
			}
		}
	}
	for k := 0; k < dn.n; k++ {
		if d := dn.deltas[k]; d != 0 {
			for r := q.downHead[dn.ids[k]]; r >= 0; r = q.downNext[r] {
				q.errVec[r] += d
			}
		}
	}
	q.errVec[i] = (q.up[newUpI] - 1) + (q.down[newDownI] - 1)
	q.errVec[j] = (q.up[newUpJ] - 1) + (q.down[newDownJ] - 1)
}

// LiveErrors implements core.MaintainedErrorVector: the vector is kept
// current by Cost and ExecutedSwap, so there is nothing to rebuild.
func (q *Queens) LiveErrors(cfg []int) []int { return q.errVec }

// ErrorsOnVariables implements core.ErrorVector.
func (q *Queens) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, q.errVec)
}

// CostsIfSwapAll implements core.MoveEvaluator. Queen i's own diagonal
// contributions are removed once, outside the partner loop, leaving an
// O(1) body per candidate: remove queen j, re-add both queens with
// swapped columns, correcting for the one diagonal of each family the
// re-added queens can share.
func (q *Queens) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	n1 := q.n - 1
	up, down := q.up, q.down
	ci := cfg[i]
	upI, downI := i+ci, i-ci+n1
	base := cost - (up[upI] - 1) - (down[downI] - 1)
	up[upI]--
	down[downI]--
	for j, cj := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		c := base
		// Remove queen j (queen i is already out of the counters).
		c -= (up[j+cj] - 1) + (down[j-cj+n1] - 1)
		// Re-add queen i at column cj: it cannot share a diagonal with
		// the removed queen j (that would need i == j).
		c += up[i+cj] + down[i-cj+n1]
		// Re-add queen j at column ci: it sees queen i's new position
		// when both land on the same diagonal.
		u := up[j+ci]
		if j+ci == i+cj {
			u++
		}
		d := down[j-ci+n1]
		if j-ci == i-cj {
			d++
		}
		c += u + d
		out[j] = c
	}
	up[upI]++
	down[downI]++
}

// Tune implements core.Tuner with settings matching the C benchmark:
// queens needs no restarts and benefits from a large reset threshold.
func (q *Queens) Tune(o *core.Options) {
	o.FreezeLocMin = 2
	o.ResetLimit = q.n / 5
	if o.ResetLimit < 2 {
		o.ResetLimit = 2
	}
}

// Verify reports whether cfg is a valid n-queens solution, checked
// independently of the incremental machinery (used by tests and the
// solution validators in the harness).
func (q *Queens) Verify(cfg []int) bool {
	if len(cfg) != q.n {
		return false
	}
	seen := make(map[int]bool, q.n)
	for _, v := range cfg {
		if v < 0 || v >= q.n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for i := 0; i < q.n; i++ {
		for j := i + 1; j < q.n; j++ {
			if abs(cfg[i]-cfg[j]) == j-i {
				return false
			}
		}
	}
	return true
}
