package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "queens",
		description: "N-Queens: place n queens on an n x n board with no two attacking (CSPLib prob054)",
		defaultSize: 100,
		paperSize:   100,
		build:       func(n int) (core.Problem, error) { return NewQueens(n) },
	})
}

// Queens encodes the N-Queens problem. The configuration is a
// permutation: cfg[r] is the column of the queen in row r, so rows and
// columns are all-different by construction and only diagonal conflicts
// contribute to the cost. The encoding maintains occupancy counters for
// the 2n-1 ascending and 2n-1 descending diagonals, giving O(1)
// CostIfSwap — the same structure as the C library's queens benchmark.
type Queens struct {
	n    int
	up   []int // up[r+c] = queens on the ascending diagonal r+c
	down []int // down[r-c+n-1] = queens on the descending diagonal
}

// NewQueens returns an n-queens instance. n must be at least 1.
func NewQueens(n int) (*Queens, error) {
	if n < 1 {
		return nil, fmt.Errorf("queens: size must be >= 1, got %d", n)
	}
	return &Queens{
		n:    n,
		up:   make([]int, 2*n-1),
		down: make([]int, 2*n-1),
	}, nil
}

// Name implements core.Namer.
func (q *Queens) Name() string { return "queens" }

// Size implements core.Problem.
func (q *Queens) Size() int { return q.n }

// Cost implements core.Problem: the number of attacking pairs. It
// rebuilds the diagonal counters from scratch.
func (q *Queens) Cost(cfg []int) int {
	for i := range q.up {
		q.up[i] = 0
		q.down[i] = 0
	}
	for r, c := range cfg {
		q.up[r+c]++
		q.down[r-c+q.n-1]++
	}
	cost := 0
	for i := range q.up {
		cost += pairs(q.up[i]) + pairs(q.down[i])
	}
	return cost
}

// pairs returns k choose 2: the number of conflicting pairs among k
// queens sharing a diagonal.
func pairs(k int) int { return k * (k - 1) / 2 }

// CostOnVariable implements core.Problem: the number of queens attacking
// the queen of row i.
func (q *Queens) CostOnVariable(cfg []int, i int) int {
	c := cfg[i]
	return (q.up[i+c] - 1) + (q.down[i-c+q.n-1] - 1)
}

// CostIfSwap implements core.Problem with an O(1) delta: remove the two
// queens from their diagonals, re-add them with swapped columns.
func (q *Queens) CostIfSwap(cfg []int, cost, i, j int) int {
	n1 := q.n - 1
	ci, cj := cfg[i], cfg[j]
	// Remove queen i and queen j from their four diagonals.
	cost -= q.up[i+ci] - 1
	q.up[i+ci]--
	cost -= q.down[i-ci+n1] - 1
	q.down[i-ci+n1]--
	cost -= q.up[j+cj] - 1
	q.up[j+cj]--
	cost -= q.down[j-cj+n1] - 1
	q.down[j-cj+n1]--
	// Re-add with swapped columns.
	cost += q.up[i+cj]
	q.up[i+cj]++
	cost += q.down[i-cj+n1]
	q.down[i-cj+n1]++
	cost += q.up[j+ci]
	q.up[j+ci]++
	cost += q.down[j-ci+n1]
	q.down[j-ci+n1]++
	// Roll back: CostIfSwap must not change observable state.
	q.up[i+cj]--
	q.down[i-cj+n1]--
	q.up[j+ci]--
	q.down[j-ci+n1]--
	q.up[i+ci]++
	q.down[i-ci+n1]++
	q.up[j+cj]++
	q.down[j-cj+n1]++
	return cost
}

// ExecutedSwap implements core.SwapExecutor: cfg has already been
// swapped, so cfg[i] holds the old cfg[j] and vice versa.
func (q *Queens) ExecutedSwap(cfg []int, i, j int) {
	n1 := q.n - 1
	newCi, newCj := cfg[i], cfg[j] // post-swap columns
	// Remove the queens from their pre-swap diagonals...
	q.up[i+newCj]-- // queen i previously held newCj
	q.down[i-newCj+n1]--
	q.up[j+newCi]--
	q.down[j-newCi+n1]--
	// ...and add them at their new positions.
	q.up[i+newCi]++
	q.down[i-newCi+n1]++
	q.up[j+newCj]++
	q.down[j-newCj+n1]++
}

// Tune implements core.Tuner with settings matching the C benchmark:
// queens needs no restarts and benefits from a large reset threshold.
func (q *Queens) Tune(o *core.Options) {
	o.FreezeLocMin = 2
	o.ResetLimit = q.n / 5
	if o.ResetLimit < 2 {
		o.ResetLimit = 2
	}
}

// Verify reports whether cfg is a valid n-queens solution, checked
// independently of the incremental machinery (used by tests and the
// solution validators in the harness).
func (q *Queens) Verify(cfg []int) bool {
	if len(cfg) != q.n {
		return false
	}
	seen := make(map[int]bool, q.n)
	for _, v := range cfg {
		if v < 0 || v >= q.n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for i := 0; i < q.n; i++ {
		for j := i + 1; j < q.n; j++ {
			if abs(cfg[i]-cfg[j]) == j-i {
				return false
			}
		}
	}
	return true
}
