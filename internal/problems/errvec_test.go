package problems

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/rng"
)

// errVecProblem is the intersection the hot-path consistency tests
// exercise: the full engine contract plus the delta-maintained error
// vector and the batched move evaluator.
type errVecProblem interface {
	core.Problem
	core.SwapExecutor
	core.MaintainedErrorVector
	core.MoveEvaluator
}

// hotPathBuilders constructs one instance of every incremental encoding
// — all eight registered benchmarks plus a mixed linear/custom csp
// model — for the equivalence suites.
func hotPathBuilders(t *testing.T) map[string]func() errVecProblem {
	t.Helper()
	return map[string]func() errVecProblem{
		"magic-square":   func() errVecProblem { p, _ := NewMagicSquare(5); return p },
		"costas":         func() errVecProblem { p, _ := NewCostas(9); return p },
		"all-interval":   func() errVecProblem { p, _ := NewAllInterval(12); return p },
		"queens":         func() errVecProblem { p, _ := NewQueens(11); return p },
		"langford":       func() errVecProblem { p, _ := NewLangford(8); return p },
		"partition":      func() errVecProblem { p, _ := NewPartition(16); return p },
		"perfect-square": func() errVecProblem { p, _ := NewPerfectSquare(7); return p },
		"alpha":          func() errVecProblem { p, _ := NewAlpha(); return p },
		"csp-mixed": func() errVecProblem {
			// A model mixing weighted linear sums (with a repeated
			// variable) and a custom constraint, covering the compiler's
			// cached-sum fast path and its fn fallback side by side.
			m := csp.NewModel(8, 1)
			m.AddLinearSum("lin", []int{0, 1, 2, 1}, nil, 12)
			m.AddLinearSum("coef", []int{2, 3, 4}, []int{2, -1, 3}, 9)
			m.AddWeighted("spread", []int{5, 6, 7}, 2, func(vals []int) int {
				d := vals[0] - vals[2]
				if d < 0 {
					d = -d
				}
				if d > 3 {
					return d - 3
				}
				return 0
			})
			p, err := m.Compile()
			if err != nil {
				t.Fatalf("csp-mixed: %v", err)
			}
			return p
		},
	}
}

// checkErrVecAgainstScan verifies the error-vector contract at the
// current configuration: both ErrorsOnVariables and LiveErrors must
// report exactly what a per-variable CostOnVariable scan reports.
func checkErrVecAgainstScan(t *testing.T, p errVecProblem, cfg []int, step string) {
	t.Helper()
	n := p.Size()
	out := make([]int, n)
	p.ErrorsOnVariables(cfg, out)
	live := p.LiveErrors(cfg)
	for i := 0; i < n; i++ {
		want := p.CostOnVariable(cfg, i)
		if out[i] != want {
			t.Fatalf("%s: ErrorsOnVariables[%d] = %d, CostOnVariable = %d (cfg %v)",
				step, i, out[i], want, cfg)
		}
		if live[i] != want {
			t.Fatalf("%s: LiveErrors[%d] = %d, CostOnVariable = %d (cfg %v)",
				step, i, live[i], want, cfg)
		}
	}
}

// checkBulkAgainstPerCall verifies the MoveEvaluator contract at the
// current configuration: CostsIfSwapAll must report exactly what n-1
// individual CostIfSwap calls report (and the stay-put entry the
// current cost), for every variable, without disturbing state — the
// per-call reference is evaluated after the bulk fill so corruption
// would surface as a mismatch on a later variable or in the caller's
// next delta check.
func checkBulkAgainstPerCall(t *testing.T, p errVecProblem, cfg []int, cost int, step string) {
	t.Helper()
	n := p.Size()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		p.CostsIfSwapAll(cfg, cost, i, out)
		if out[i] != cost {
			t.Fatalf("%s: CostsIfSwapAll(%d) stay-put entry = %d, want current cost %d", step, i, out[i], cost)
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if want := p.CostIfSwap(cfg, cost, i, j); out[j] != want {
				t.Fatalf("%s: CostsIfSwapAll(%d)[%d] = %d, CostIfSwap = %d (cfg %v)",
					step, i, j, out[j], want, cfg)
			}
		}
	}
}

// driveHotPath walks a problem through the engine's exact mutation
// pattern — Cost at run start, random swaps through ExecutedSwap,
// repeated queries, periodic full rebuilds — invoking check at every
// step.
func driveHotPath(t *testing.T, p errVecProblem, steps int, check func(cfg []int, cost int, step string)) {
	t.Helper()
	n := p.Size()
	r := rng.New(2012)
	cfg := r.Perm(n)
	cost := p.Cost(cfg)
	check(cfg, cost, "initial")
	for step := 0; step < steps; step++ {
		i := r.Intn(n)
		j := r.Intn(n - 1)
		if j >= i {
			j++
		}
		cost = p.CostIfSwap(cfg, cost, i, j)
		cfg[i], cfg[j] = cfg[j], cfg[i]
		p.ExecutedSwap(cfg, i, j)
		check(cfg, cost, "after swap")
		// Interleave repeated queries (a frozen iteration) and
		// periodic full rebuilds (a partial reset).
		check(cfg, cost, "repeat query")
		if step%37 == 0 {
			if rebuilt := p.Cost(cfg); rebuilt != cost {
				t.Fatalf("step %d: incremental cost %d != rebuilt cost %d", step, cost, rebuilt)
			}
			check(cfg, cost, "after Cost rebuild")
		}
	}
}

// TestErrorVectorConsistency drives each incremental encoding through a
// random walk of swaps (mirroring the engine's Cost / ExecutedSwap
// call pattern, including occasional full Cost rebuilds) and checks the
// delta-maintained error vector against the per-variable scan at every
// step.
func TestErrorVectorConsistency(t *testing.T) {
	for name, build := range hotPathBuilders(t) {
		t.Run(name, func(t *testing.T) {
			p := build()
			driveHotPath(t, p, 200, func(cfg []int, cost int, step string) {
				checkErrVecAgainstScan(t, p, cfg, step)
			})
		})
	}
}

// TestMoveEvaluatorConsistency drives the same walk and checks the
// batched CostsIfSwapAll row against per-call CostIfSwap for every
// variable at every step, so the bulk fast path can never drift from
// the reference — and, via the incremental-vs-rebuilt cost assertion in
// the driver, that neither evaluator corrupts cached state.
func TestMoveEvaluatorConsistency(t *testing.T) {
	for name, build := range hotPathBuilders(t) {
		t.Run(name, func(t *testing.T) {
			p := build()
			driveHotPath(t, p, 60, func(cfg []int, cost int, step string) {
				checkBulkAgainstPerCall(t, p, cfg, cost, step)
			})
		})
	}
}

// TestErrorVectorSolveTraceUnchanged pins the fast path to the slow
// path end to end: hiding the ErrorVector interface from the engine
// must not change the search trace for a fixed seed.
func TestErrorVectorSolveTraceUnchanged(t *testing.T) {
	cases := []struct {
		name string
		size int
	}{
		{"magic-square", 5},
		{"costas", 10},
		{"all-interval", 14},
		{"queens", 10},
		{"langford", 8},
		{"partition", 16},
		{"perfect-square", 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := New(tc.name, tc.size)
			if err != nil {
				t.Fatal(err)
			}
			slowBase, err := New(tc.name, tc.size)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.TunedOptions(fast)
			opts.Seed = 77
			a, err := core.Solve(context.Background(), fast, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Solve(context.Background(), hideErrVec{slowBase}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if a.Iterations != b.Iterations || a.Swaps != b.Swaps ||
				a.LocalMinima != b.LocalMinima || a.Resets != b.Resets {
				t.Fatalf("fast path changed the trace:\nfast: %v\nslow: %v", a, b)
			}
		})
	}
}

// hideErrVec forwards the engine contract but hides ErrorVector,
// forcing the per-variable CostOnVariable path.
type hideErrVec struct{ p core.Problem }

func (h hideErrVec) Size() int                             { return h.p.Size() }
func (h hideErrVec) Cost(cfg []int) int                    { return h.p.Cost(cfg) }
func (h hideErrVec) CostOnVariable(cfg []int, i int) int   { return h.p.CostOnVariable(cfg, i) }
func (h hideErrVec) CostIfSwap(cfg []int, c, i, j int) int { return h.p.CostIfSwap(cfg, c, i, j) }
func (h hideErrVec) ExecutedSwap(cfg []int, i, j int) {
	if sw, ok := h.p.(core.SwapExecutor); ok {
		sw.ExecutedSwap(cfg, i, j)
	}
}
