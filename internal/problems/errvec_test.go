package problems

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// errVecProblem is the intersection the ErrorVector consistency tests
// exercise: the full engine contract plus the batched error fast path.
type errVecProblem interface {
	core.Problem
	core.SwapExecutor
	core.ErrorVector
}

// checkErrVecAgainstScan verifies the ErrorVector contract at the
// current configuration: ErrorsOnVariables must report exactly what a
// per-variable CostOnVariable scan reports.
func checkErrVecAgainstScan(t *testing.T, p errVecProblem, cfg []int, step string) {
	t.Helper()
	n := p.Size()
	out := make([]int, n)
	p.ErrorsOnVariables(cfg, out)
	for i := 0; i < n; i++ {
		if want := p.CostOnVariable(cfg, i); out[i] != want {
			t.Fatalf("%s: ErrorsOnVariables[%d] = %d, CostOnVariable = %d (cfg %v)",
				step, i, out[i], want, cfg)
		}
	}
}

// TestErrorVectorConsistency drives each incremental encoding through a
// random walk of swaps (mirroring the engine's Cost / ExecutedSwap
// call pattern, including occasional full Cost rebuilds) and checks the
// batched error vector against the per-variable scan at every step.
func TestErrorVectorConsistency(t *testing.T) {
	builders := map[string]func() errVecProblem{
		"magic-square": func() errVecProblem { p, _ := NewMagicSquare(5); return p },
		"costas":       func() errVecProblem { p, _ := NewCostas(9); return p },
		"all-interval": func() errVecProblem { p, _ := NewAllInterval(12); return p },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			p := build()
			n := p.Size()
			r := rng.New(2012)
			cfg := r.Perm(n)
			p.Cost(cfg)
			checkErrVecAgainstScan(t, p, cfg, "initial")
			for step := 0; step < 200; step++ {
				i := r.Intn(n)
				j := r.Intn(n - 1)
				if j >= i {
					j++
				}
				cfg[i], cfg[j] = cfg[j], cfg[i]
				p.ExecutedSwap(cfg, i, j)
				checkErrVecAgainstScan(t, p, cfg, "after swap")
				// Interleave repeated queries (a frozen iteration) and
				// periodic full rebuilds (a partial reset).
				checkErrVecAgainstScan(t, p, cfg, "repeat query")
				if step%37 == 0 {
					p.Cost(cfg)
					checkErrVecAgainstScan(t, p, cfg, "after Cost rebuild")
				}
			}
		})
	}
}

// TestErrorVectorSolveTraceUnchanged pins the fast path to the slow
// path end to end: hiding the ErrorVector interface from the engine
// must not change the search trace for a fixed seed.
func TestErrorVectorSolveTraceUnchanged(t *testing.T) {
	cases := []struct {
		name string
		size int
	}{
		{"magic-square", 5},
		{"costas", 10},
		{"all-interval", 14},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := New(tc.name, tc.size)
			if err != nil {
				t.Fatal(err)
			}
			slowBase, err := New(tc.name, tc.size)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.TunedOptions(fast)
			opts.Seed = 77
			a, err := core.Solve(context.Background(), fast, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Solve(context.Background(), hideErrVec{slowBase}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if a.Iterations != b.Iterations || a.Swaps != b.Swaps ||
				a.LocalMinima != b.LocalMinima || a.Resets != b.Resets {
				t.Fatalf("fast path changed the trace:\nfast: %v\nslow: %v", a, b)
			}
		})
	}
}

// hideErrVec forwards the engine contract but hides ErrorVector,
// forcing the per-variable CostOnVariable path.
type hideErrVec struct{ p core.Problem }

func (h hideErrVec) Size() int                             { return h.p.Size() }
func (h hideErrVec) Cost(cfg []int) int                    { return h.p.Cost(cfg) }
func (h hideErrVec) CostOnVariable(cfg []int, i int) int   { return h.p.CostOnVariable(cfg, i) }
func (h hideErrVec) CostIfSwap(cfg []int, c, i, j int) int { return h.p.CostIfSwap(cfg, c, i, j) }
func (h hideErrVec) ExecutedSwap(cfg []int, i, j int) {
	if sw, ok := h.p.(core.SwapExecutor); ok {
		sw.ExecutedSwap(cfg, i, j)
	}
}
