package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "all-interval",
		description: "All-Interval Series: order 0..n-1 so the n-1 adjacent differences are all distinct (CSPLib prob007)",
		defaultSize: 24,
		paperSize:   700,
		build:       func(n int) (core.Problem, error) { return NewAllInterval(n) },
	})
}

// AllInterval encodes CSPLib prob007: find a permutation s of {0..n-1}
// such that the absolute differences |s[i+1]-s[i]| form a permutation of
// {1..n-1} (an "all-interval series" in musical composition). Following
// the C benchmark, the cost weights each missing difference by its
// magnitude: cost = Σ_{d: occ(d)=0} d, which is 0 exactly when all n-1
// differences are distinct and steers the search toward realizing the
// scarce large distances first (an unweighted surplus count leaves the
// engine directionless — see DESIGN.md §6). The encoding caches the
// occurrence table; a swap touches at most four adjacent differences,
// giving O(1) deltas.
type AllInterval struct {
	n   int
	occ []int // occ[d] = number of adjacent pairs with difference d

	// errVec[i] = number of variable i's adjacent differences that are
	// duplicated — always current (MaintainedErrorVector). A swap can
	// flip the duplicated-ness of edges away from the swapped positions
	// (when a difference's occurrence count crosses the 1<->2
	// threshold), so intrusive membership lists track which edges
	// realize each difference: head[d] chains the edges with difference
	// d through next/prev (indexed by edge, -1 terminates), and the
	// edge that flips is found in O(1) instead of an O(n) edge rescan.
	errVec     []int
	head       []int32
	next, prev []int32
}

// NewAllInterval returns an instance with n variables; n must be >= 2.
func NewAllInterval(n int) (*AllInterval, error) {
	if n < 2 {
		return nil, fmt.Errorf("all-interval: size must be >= 2, got %d", n)
	}
	return &AllInterval{
		n:      n,
		occ:    make([]int, n),
		errVec: make([]int, n),
		head:   make([]int32, n),
		next:   make([]int32, n),
		prev:   make([]int32, n),
	}, nil
}

var (
	_ core.SwapExecutor          = (*AllInterval)(nil)
	_ core.MaintainedErrorVector = (*AllInterval)(nil)
	_ core.MoveEvaluator         = (*AllInterval)(nil)
)

// link pushes edge e onto difference d's membership list.
func (a *AllInterval) link(d, e int) {
	h := a.head[d]
	a.next[e] = h
	a.prev[e] = -1
	if h >= 0 {
		a.prev[h] = int32(e)
	}
	a.head[d] = int32(e)
}

// unlink removes edge e from difference d's membership list.
func (a *AllInterval) unlink(d, e int) {
	p, nx := a.prev[e], a.next[e]
	if p >= 0 {
		a.next[p] = nx
	} else {
		a.head[d] = nx
	}
	if nx >= 0 {
		a.prev[nx] = p
	}
}

// addEdge registers edge e (the adjacent pair (e, e+1)) under
// difference d, maintaining the occurrence count, the membership list
// and the error vector.
func (a *AllInterval) addEdge(d, e int) {
	cnt := a.occ[d]
	if cnt >= 1 {
		a.errVec[e]++
		a.errVec[e+1]++
		if cnt == 1 {
			// The difference's previously unique edge becomes duplicated.
			m := a.head[d]
			a.errVec[m]++
			a.errVec[m+1]++
		}
	}
	a.occ[d] = cnt + 1
	a.link(d, e)
}

// removeEdge is addEdge's inverse.
func (a *AllInterval) removeEdge(d, e int) {
	cnt := a.occ[d]
	if cnt >= 2 {
		a.errVec[e]--
		a.errVec[e+1]--
	}
	a.unlink(d, e)
	if cnt == 2 {
		// The remaining edge with this difference becomes unique again.
		m := a.head[d]
		a.errVec[m]--
		a.errVec[m+1]--
	}
	a.occ[d] = cnt - 1
}

// Name implements core.Namer.
func (a *AllInterval) Name() string { return "all-interval" }

// Size implements core.Problem.
func (a *AllInterval) Size() int { return a.n }

// Cost implements core.Problem, rebuilding the occurrence table, the
// membership lists and the error vector.
func (a *AllInterval) Cost(cfg []int) int {
	for d := range a.occ {
		a.occ[d] = 0
		a.head[d] = -1
		a.errVec[d] = 0
	}
	for e := 0; e+1 < len(cfg); e++ {
		a.addEdge(abs(cfg[e+1]-cfg[e]), e)
	}
	cost := 0
	for d := 1; d < a.n; d++ {
		if a.occ[d] == 0 {
			cost += d
		}
	}
	return cost
}

// CostOnVariable implements core.Problem: a variable's error is the
// number of its adjacent differences that are duplicated.
func (a *AllInterval) CostOnVariable(cfg []int, i int) int {
	e := 0
	if i > 0 {
		if a.occ[abs(cfg[i]-cfg[i-1])] > 1 {
			e++
		}
	}
	if i+1 < len(cfg) {
		if a.occ[abs(cfg[i+1]-cfg[i])] > 1 {
			e++
		}
	}
	return e
}

// edgesOf collects the distinct difference-edge indices adjacent to
// positions i and j into buf (an edge e is the pair (e, e+1)). Returns
// the number of edges written.
func (a *AllInterval) edgesOf(i, j int, buf *[4]int) int {
	n := 0
	add := func(e int) {
		if e < 0 || e+1 >= a.n {
			return
		}
		for k := 0; k < n; k++ {
			if buf[k] == e {
				return
			}
		}
		buf[n] = e
		n++
	}
	add(i - 1)
	add(i)
	add(j - 1)
	add(j)
	return n
}

// CostIfSwap implements core.Problem. It temporarily mutates the cached
// occurrence table and rolls it back before returning; instances are
// never shared across goroutines (see the package comment), so the
// transient mutation is invisible to callers.
func (a *AllInterval) CostIfSwap(cfg []int, cost, i, j int) int {
	var edges [4]int
	ne := a.edgesOf(i, j, &edges)
	var olds, news [4]int
	// Remove the old differences of all affected edges: a difference
	// whose count drops to zero adds its magnitude to the cost.
	for k := 0; k < ne; k++ {
		e := edges[k]
		d := abs(cfg[e+1] - cfg[e])
		olds[k] = d
		a.occ[d]--
		if a.occ[d] == 0 {
			cost += d
		}
	}
	cfg[i], cfg[j] = cfg[j], cfg[i]
	// Add the new differences: realizing a missing difference removes
	// its magnitude from the cost.
	for k := 0; k < ne; k++ {
		e := edges[k]
		d := abs(cfg[e+1] - cfg[e])
		news[k] = d
		if a.occ[d] == 0 {
			cost -= d
		}
		a.occ[d]++
	}
	cfg[i], cfg[j] = cfg[j], cfg[i]
	// Roll back the occurrence table.
	for k := 0; k < ne; k++ {
		a.occ[news[k]]--
		a.occ[olds[k]]++
	}
	return cost
}

// ExecutedSwap implements core.SwapExecutor: cfg is already swapped;
// the affected edges migrate between difference lists through
// removeEdge/addEdge, which keep the error vector exact as a side
// effect. The pre-swap configuration is recovered by swapping back
// temporarily.
func (a *AllInterval) ExecutedSwap(cfg []int, i, j int) {
	var edges [4]int
	ne := a.edgesOf(i, j, &edges)
	cfg[i], cfg[j] = cfg[j], cfg[i] // back to pre-swap
	for k := 0; k < ne; k++ {
		e := edges[k]
		a.removeEdge(abs(cfg[e+1]-cfg[e]), e)
	}
	cfg[i], cfg[j] = cfg[j], cfg[i] // forward again
	for k := 0; k < ne; k++ {
		e := edges[k]
		a.addEdge(abs(cfg[e+1]-cfg[e]), e)
	}
}

// CostsIfSwapAll implements core.MoveEvaluator: one devirtualized pass
// over the partners (each candidate is O(1) through the edge deltas).
func (a *AllInterval) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	for j := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		out[j] = a.CostIfSwap(cfg, cost, i, j)
	}
}

// LiveErrors implements core.MaintainedErrorVector: the vector is kept
// exact by Cost/ExecutedSwap, so there is nothing to rebuild.
func (a *AllInterval) LiveErrors(cfg []int) []int { return a.errVec }

// ErrorsOnVariables implements core.ErrorVector.
func (a *AllInterval) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, a.errVec)
}

// Tune implements core.Tuner with the C benchmark's character: a strong
// probabilistic plateau escape works well on this very plateau-heavy
// landscape.
func (a *AllInterval) Tune(o *core.Options) {
	o.ProbSelectLocMin = 0.66
	o.FreezeLocMin = 1
	o.ResetLimit = a.n / 6
	if o.ResetLimit < 2 {
		o.ResetLimit = 2
	}
	o.ResetFraction = 0.25
	o.MaxIterations = int64(a.n) * int64(a.n) * 20
}

// Verify independently checks cfg: a permutation whose n-1 adjacent
// absolute differences are pairwise distinct.
func (a *AllInterval) Verify(cfg []int) bool {
	if len(cfg) != a.n {
		return false
	}
	seenV := make([]bool, a.n)
	for _, v := range cfg {
		if v < 0 || v >= a.n || seenV[v] {
			return false
		}
		seenV[v] = true
	}
	seenD := make([]bool, a.n)
	for i := 0; i+1 < a.n; i++ {
		d := abs(cfg[i+1] - cfg[i])
		if d == 0 || seenD[d] {
			return false
		}
		seenD[d] = true
	}
	return true
}
