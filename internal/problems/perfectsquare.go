package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "perfect-square",
		description: "Perfect Square placement: tile a master rectangle exactly with the given set of squares (CSPLib prob009)",
		defaultSize: 9,
		paperSize:   21,
		build:       func(n int) (core.Problem, error) { return NewPerfectSquare(n) },
	})
}

// bouwkamp21 is the order-21 simple perfect squared square (Duijvestijn
// 1978): 21 distinct squares tiling a 112 x 112 master square, listed in
// Bouwkamp order (the order in which a greedy lowest-leftmost filler
// reproduces the tiling). This is the classic CSPLib prob009 instance.
var bouwkamp21 = []int{50, 35, 27, 8, 19, 15, 17, 11, 6, 24, 29, 25, 9, 2, 7, 18, 16, 42, 4, 37, 33}

const bouwkampMaster = 112

// moron9 is Moroń's order-9 perfect squared rectangle (1925): nine
// distinct squares tiling 33 x 32, listed in the order a greedy
// lowest-leftmost filler reproduces the tiling. It is the smallest
// classical instance of the family and the default for laptop-scale
// experiments (the paper-scale Bouwkamp square takes far longer per
// solve; see EXPERIMENTS.md).
var moron9 = []int{18, 15, 7, 8, 14, 4, 10, 1, 9}

const (
	moronWidth  = 33
	moronHeight = 32
)

// PerfectSquare encodes CSPLib prob009 as a permutation-plus-decoder
// problem: the configuration orders the squares, and a greedy skyline
// decoder places each square in turn at the lowest-leftmost free corner
// of the master square. Orderings that recreate the tiling produce no
// holes and no overflow; the cost is the total misplaced area (holes
// created under squares + volume above the master + uncovered area), so
// cost 0 is exactly a perfect tiling.
//
// The paper's C library encodes prob009 natively; the decoder encoding
// is this reproduction's documented substitution (DESIGN.md §6): it
// preserves the permutation search space and swap neighborhood that
// Adaptive Search requires.
type PerfectSquare struct {
	sizes   []int // square edge lengths, indexed by square id
	width   int   // master width W (skyline length)
	height  int   // master height H (target skyline level)
	heights []int // skyline scratch, length W
	stepErr []int // cached per-step misplacement, updated by Cost/ExecutedSwap
	scratch []int // second skyline for CostIfSwap decodes
}

// NewPerfectSquare returns an instance with n squares. n = 21 selects
// the classic Bouwkamp squared square; n = 9 selects Moroń's squared
// rectangle; other values of n (of the form 3k+1) build a synthetic
// exactly-tileable instance by recursive subdivision, used for scale
// sweeps and tests. Any other n is rejected.
func NewPerfectSquare(n int) (*PerfectSquare, error) {
	switch {
	case n == 21:
		return NewPerfectSquareInstance(bouwkamp21, bouwkampMaster, bouwkampMaster)
	case n == 9:
		return NewPerfectSquareInstance(moron9, moronWidth, moronHeight)
	case n >= 4 && n%3 == 1:
		sizes, master := subdivisionInstance(n)
		return NewPerfectSquareInstance(sizes, master, master)
	default:
		return nil, fmt.Errorf("perfect-square: size must be 21 (Bouwkamp), 9 (Moroń) or 3k+1 >= 4 (synthetic), got %d", n)
	}
}

// NewPerfectSquareInstance builds an instance from explicit square
// sizes and a master width x height rectangle; the squares' total area
// must equal the master's (otherwise no perfect tiling can exist).
func NewPerfectSquareInstance(sizes []int, width, height int) (*PerfectSquare, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("perfect-square: master %dx%d must be positive", width, height)
	}
	area := 0
	for _, s := range sizes {
		if s < 1 || s > width || s > height {
			return nil, fmt.Errorf("perfect-square: square size %d does not fit the %dx%d master", s, width, height)
		}
		area += s * s
	}
	if area != width*height {
		return nil, fmt.Errorf("perfect-square: total area %d != master area %d — no perfect tiling exists", area, width*height)
	}
	own := make([]int, len(sizes))
	copy(own, sizes)
	return &PerfectSquare{
		sizes:   own,
		width:   width,
		height:  height,
		heights: make([]int, width),
		stepErr: make([]int, len(sizes)),
		scratch: make([]int, width),
	}, nil
}

// subdivisionInstance builds n = 3k+1 squares exactly tiling a power-of-
// two master by repeatedly splitting the largest square into four
// halves.
func subdivisionInstance(n int) (sizes []int, master int) {
	master = 64
	sizes = []int{master}
	for len(sizes) < n {
		// Split the largest splittable square (edge > 1).
		best := -1
		for i, s := range sizes {
			if s > 1 && (best < 0 || s > sizes[best]) {
				best = i
			}
		}
		s := sizes[best]
		h := s / 2
		sizes[best] = h
		sizes = append(sizes, h, h, h)
	}
	return sizes, master
}

// Name implements core.Namer.
func (p *PerfectSquare) Name() string { return "perfect-square" }

// Master returns the master rectangle dimensions.
func (p *PerfectSquare) Master() (width, height int) { return p.width, p.height }

// Sizes returns a copy of the square edge lengths.
func (p *PerfectSquare) Sizes() []int {
	out := make([]int, len(p.sizes))
	copy(out, p.sizes)
	return out
}

// Size implements core.Problem: the number of squares to order.
func (p *PerfectSquare) Size() int { return len(p.sizes) }

// decode places the squares in cfg order with the greedy skyline filler
// and returns the total cost. When stepErr is non-nil it also records
// the per-step misplacement (holes created plus overflow volume).
func (p *PerfectSquare) decode(cfg []int, heights []int, stepErr []int) int {
	w := p.width
	for x := range heights {
		heights[x] = 0
	}
	holes := 0
	for step, sq := range cfg {
		s := p.sizes[sq]
		// Lowest-leftmost corner.
		h0, x0 := heights[0], 0
		for x := 1; x < w; x++ {
			if heights[x] < h0 {
				h0, x0 = heights[x], x
			}
		}
		// Width of the flat gap at h0 starting at x0.
		gap := 0
		for x := x0; x < w && heights[x] == h0; x++ {
			gap++
		}
		stepCost := 0
		if s <= gap {
			// Fits flush: no holes.
			for x := x0; x < x0+s; x++ {
				heights[x] = h0 + s
			}
			if top := h0 + s - p.height; top > 0 {
				stepCost += top * s // overflow volume above the master
			}
		} else {
			// Penalty placement: sit on the maximum height of the
			// covered span, creating holes underneath.
			if x0 > w-s {
				x0 = w - s
			}
			hMax := 0
			for x := x0; x < x0+s; x++ {
				if heights[x] > hMax {
					hMax = heights[x]
				}
			}
			for x := x0; x < x0+s; x++ {
				stepCost += hMax - heights[x]
				heights[x] = hMax + s
			}
			if top := hMax + s - p.height; top > 0 {
				stepCost += top * s
			}
		}
		holes += stepCost
		if stepErr != nil {
			stepErr[step] = stepCost
		}
	}
	// Terminal deficit/excess: uncovered columns and columns above H.
	deficitExcess := 0
	for x := 0; x < w; x++ {
		d := heights[x] - p.height
		if d < 0 {
			d = -d
		}
		deficitExcess += d
	}
	return holes + deficitExcess
}

// Cost implements core.Problem and refreshes the per-step error cache.
func (p *PerfectSquare) Cost(cfg []int) int {
	return p.decode(cfg, p.heights, p.stepErr)
}

// CostOnVariable implements core.Problem: the cached misplacement
// attributed to placement step i.
func (p *PerfectSquare) CostOnVariable(cfg []int, i int) int {
	return p.stepErr[i]
}

// CostIfSwap implements core.Problem with a full scratch decode of the
// swapped ordering (O(n·W); n and W are small for every instance).
func (p *PerfectSquare) CostIfSwap(cfg []int, cost, i, j int) int {
	cfg[i], cfg[j] = cfg[j], cfg[i]
	c := p.decode(cfg, p.scratch, nil)
	cfg[i], cfg[j] = cfg[j], cfg[i]
	return c
}

// CostsIfSwapAll implements core.MoveEvaluator: one devirtualized pass
// of scratch decodes (the decoder is inherently global, so each
// candidate still pays a full decode).
func (p *PerfectSquare) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	for j := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		cfg[i], cfg[j] = cfg[j], cfg[i]
		out[j] = p.decode(cfg, p.scratch, nil)
		cfg[i], cfg[j] = cfg[j], cfg[i]
	}
}

// ExecutedSwap implements core.SwapExecutor by re-decoding to refresh
// the per-step error cache.
func (p *PerfectSquare) ExecutedSwap(cfg []int, i, j int) {
	p.decode(cfg, p.heights, p.stepErr)
}

// LiveErrors implements core.MaintainedErrorVector: the per-step error
// cache IS the error vector, and Cost/ExecutedSwap keep it current.
func (p *PerfectSquare) LiveErrors(cfg []int) []int { return p.stepErr }

// ErrorsOnVariables implements core.ErrorVector.
func (p *PerfectSquare) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, p.stepErr)
}

var (
	_ core.SwapExecutor          = (*PerfectSquare)(nil)
	_ core.MaintainedErrorVector = (*PerfectSquare)(nil)
	_ core.MoveEvaluator         = (*PerfectSquare)(nil)
)

// Tune implements core.Tuner: the decoder landscape is plateau-rich, so
// a substantial probabilistic escape and frequent small resets help.
func (p *PerfectSquare) Tune(o *core.Options) {
	o.ProbSelectLocMin = 0.25
	o.FreezeLocMin = 2
	o.ResetLimit = 3
	o.ResetFraction = 0.3
	o.MaxIterations = 20_000
}

// Verify reports whether cfg decodes to a perfect tiling, independently
// of the cached state.
func (p *PerfectSquare) Verify(cfg []int) bool {
	if len(cfg) != len(p.sizes) {
		return false
	}
	seen := make([]bool, len(cfg))
	for _, v := range cfg {
		if v < 0 || v >= len(cfg) || seen[v] {
			return false
		}
		seen[v] = true
	}
	h := make([]int, p.width)
	return p.decode(cfg, h, nil) == 0
}
