package problems

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/rng"
)

func init() {
	register(builder{
		name:        "timetable",
		description: "Session timetabling: assign each session a time slot from its finite domain with no room or teacher double-booked (first non-permutation benchmark)",
		defaultSize: 60,
		paperSize:   60,
		build:       func(n int) (core.Problem, error) { return NewTimetable(n, nil) },
		buildParams: func(n int, params map[string]int) (core.Problem, error) { return NewTimetable(n, params) },
	})
}

// Timetable is the repository's first finite-domain benchmark: n
// sessions, each pre-assigned a room and a teacher, must be placed into
// time slots drawn from per-session domains so that no room and no
// teacher hosts two sessions in the same slot — the resource-assignment
// shape of real scheduling traffic, not expressible as a permutation.
//
// The configuration is cfg[i] = slot of session i, a value from
// Domain(i). The cost counts double-bookings: for every resource and
// slot, each occupant beyond the first adds 1. The encoding keeps a
// resource-by-slot occupancy table for O(1) CostIfAssign, a static
// session list per resource for O(sessions-per-resource) delta
// maintenance of the per-session error vector (MaintainedErrorVector),
// and a batched AssignEvaluator that hoists the removal term out of the
// per-value loop.
//
// Instances are generated deterministically from (size, params): a
// hidden conflict-free assignment guarantees solvability whenever the
// room/teacher capacity admits one, every session's domain contains its
// hidden slot, and roughly one session in eight is pinned to a
// singleton domain so the pre-search reduction pass has real
// propagation to do. Parameters ("slots", "rooms", "teachers") override
// the derived defaults; a capacity below sessions-per-slot drops the
// hidden-solution guarantee and widens every domain to all slots, which
// is how the unsatisfiable configurations used by the reduction tests
// are built (e.g. size 3 with rooms=1, slots=2).
type Timetable struct {
	n     int
	slots int
	rooms int
	teach int

	idA []int // idA[i] = resource id of session i's room
	idB []int // idB[i] = resource id of session i's teacher

	occ         []int     // occ[res*slots+s] = sessions of resource res in slot s
	resSessions [][]int32 // static: sessions using each resource
	domains     [][]int   // sorted per-session slot domains
	errVec      []int     // errVec[i] = double-bookings session i participates in
}

// timetableParams are the recognized params keys.
var timetableParams = map[string]bool{"slots": true, "rooms": true, "teachers": true}

// NewTimetable builds an n-session instance. Recognized params:
// "slots", "rooms", "teachers" (each >= 1); unknown keys or
// out-of-range values return an error wrapping ErrBadParams.
func NewTimetable(n int, params map[string]int) (*Timetable, error) {
	if n < 1 {
		return nil, fmt.Errorf("timetable: size must be >= 1, got %d", n)
	}
	for k, v := range params {
		if !timetableParams[k] {
			return nil, fmt.Errorf("%w: timetable has no parameter %q (known: rooms, slots, teachers)", ErrBadParams, k)
		}
		if v < 1 {
			return nil, fmt.Errorf("%w: timetable parameter %q must be >= 1, got %d", ErrBadParams, k, v)
		}
	}
	slots := (n + 3) / 4
	if slots < 2 {
		slots = 2
	}
	if v, ok := params["slots"]; ok {
		slots = v
	}
	// Exact default capacity: as many rooms and teachers as co-scheduled
	// sessions, so the hidden solution exists but random assignments
	// rarely do — the search has real work.
	perSlot := (n + slots - 1) / slots
	rooms := perSlot
	if v, ok := params["rooms"]; ok {
		rooms = v
	}
	teach := perSlot
	if v, ok := params["teachers"]; ok {
		teach = v
	}

	t := &Timetable{
		n:           n,
		slots:       slots,
		rooms:       rooms,
		teach:       teach,
		idA:         make([]int, n),
		idB:         make([]int, n),
		occ:         make([]int, (rooms+teach)*slots),
		resSessions: make([][]int32, rooms+teach),
		domains:     make([][]int, n),
		errVec:      make([]int, n),
	}

	// Deterministic generation: the instance depends only on the
	// (size, slots, rooms, teachers) tuple.
	seed := uint64(n)*0x9e3779b97f4a7c15 ^ uint64(slots)*0x85ebca6b ^
		uint64(rooms)*0xc2b2ae35 ^ uint64(teach)*0x27d4eb2f
	r := rng.New(seed ^ 0x74696d6574616265)

	// feasible: the round-robin hidden solution (session i in slot i %
	// slots) can give every co-scheduled session a distinct room and
	// teacher.
	feasible := rooms >= perSlot && teach >= perSlot
	for i := 0; i < n; i++ {
		s, a := i%slots, i/slots
		t.idA[i] = a % rooms
		t.idB[i] = rooms + (a+s)%teach
		if feasible {
			// Domains contain the hidden slot plus a random half of the
			// others; ~1/8 of the sessions are pinned to a singleton.
			if r.Intn(8) == 0 {
				t.domains[i] = []int{s}
			} else {
				d := make([]int, 0, slots)
				for v := 0; v < slots; v++ {
					if v == s || r.Intn(2) == 0 {
						d = append(d, v)
					}
				}
				t.domains[i] = d
			}
		} else {
			// Over-committed capacity: full domains, no guarantee — the
			// shape the reduction pass exists to reject.
			d := make([]int, slots)
			for v := range d {
				d[v] = v
			}
			t.domains[i] = d
		}
	}
	for i := 0; i < n; i++ {
		t.resSessions[t.idA[i]] = append(t.resSessions[t.idA[i]], int32(i))
		t.resSessions[t.idB[i]] = append(t.resSessions[t.idB[i]], int32(i))
	}
	return t, nil
}

var (
	_ core.FDProblem             = (*Timetable)(nil)
	_ core.AssignExecutor        = (*Timetable)(nil)
	_ core.AssignEvaluator       = (*Timetable)(nil)
	_ core.DomainReducer         = (*Timetable)(nil)
	_ core.SwapExecutor          = (*Timetable)(nil)
	_ core.MaintainedErrorVector = (*Timetable)(nil)
)

// Name implements core.Namer.
func (t *Timetable) Name() string { return "timetable" }

// Size implements core.Problem.
func (t *Timetable) Size() int { return t.n }

// Domain implements core.FDProblem.
func (t *Timetable) Domain(i int) []int { return t.domains[i] }

// ReduceDomains implements core.DomainReducer: each resource's sessions
// form an all-different group over their slot domains (a resource hosts
// at most one session per slot), so singleton propagation narrows
// neighbours of pinned sessions and the pigeonhole check proves
// over-committed resources unsatisfiable before any iteration runs.
func (t *Timetable) ReduceDomains() error {
	doms := make([]domain.Domain, t.n)
	for i, d := range t.domains {
		doms[i] = d
	}
	props := make([]domain.Propagator, 0, len(t.resSessions))
	for _, group := range t.resSessions {
		if len(group) < 2 {
			continue
		}
		vars := make([]int, len(group))
		for k, s := range group {
			vars[k] = int(s)
		}
		props = append(props, domain.Distinct{Vars: vars})
	}
	if err := domain.Fixpoint(doms, props); err != nil {
		return fmt.Errorf("timetable: %w", err)
	}
	for i := range t.domains {
		t.domains[i] = doms[i]
	}
	return nil
}

// Cost implements core.Problem: the number of double-bookings. It
// rebuilds the occupancy table and the error vector from scratch.
func (t *Timetable) Cost(cfg []int) int {
	clear(t.occ)
	S := t.slots
	for i, s := range cfg {
		t.occ[t.idA[i]*S+s]++
		t.occ[t.idB[i]*S+s]++
	}
	cost := 0
	for _, o := range t.occ {
		if o > 1 {
			cost += o - 1
		}
	}
	for i, s := range cfg {
		t.errVec[i] = (t.occ[t.idA[i]*S+s] - 1) + (t.occ[t.idB[i]*S+s] - 1)
	}
	return cost
}

// CostOnVariable implements core.Problem: the occupancy excess of the
// session's room and teacher in its slot.
func (t *Timetable) CostOnVariable(cfg []int, i int) int {
	s := cfg[i]
	return (t.occ[t.idA[i]*t.slots+s] - 1) + (t.occ[t.idB[i]*t.slots+s] - 1)
}

// CostIfAssign implements core.FDProblem with an O(1) delta: moving
// session i out of its slot removes up to two double-bookings, landing
// in v adds one per already-occupied resource.
func (t *Timetable) CostIfAssign(cfg []int, cost, i, v int) int {
	cur := cfg[i]
	if v == cur {
		return cost
	}
	a, b := t.idA[i]*t.slots, t.idB[i]*t.slots
	if t.occ[a+cur] >= 2 {
		cost--
	}
	if t.occ[b+cur] >= 2 {
		cost--
	}
	if t.occ[a+v] >= 1 {
		cost++
	}
	if t.occ[b+v] >= 1 {
		cost++
	}
	return cost
}

// CostsIfAssignAll implements core.AssignEvaluator: the removal term of
// leaving the current slot is hoisted out of the per-value loop.
func (t *Timetable) CostsIfAssignAll(cfg []int, cost, i int, out []int) {
	cur := cfg[i]
	a, b := t.idA[i]*t.slots, t.idB[i]*t.slots
	base := cost
	if t.occ[a+cur] >= 2 {
		base--
	}
	if t.occ[b+cur] >= 2 {
		base--
	}
	for k, v := range t.domains[i] {
		if v == cur {
			out[k] = cost
			continue
		}
		c := base
		if t.occ[a+v] >= 1 {
			c++
		}
		if t.occ[b+v] >= 1 {
			c++
		}
		out[k] = c
	}
}

// CostIfSwap implements core.Problem honestly (harnesses and exchange
// probes evaluate swap perturbations on any encoding): both sessions
// trade slots, via temporary occupancy mutations that are rolled back.
func (t *Timetable) CostIfSwap(cfg []int, cost, i, j int) int {
	si, sj := cfg[i], cfg[j]
	if i == j || si == sj {
		return cost
	}
	ai, bi := t.idA[i]*t.slots, t.idB[i]*t.slots
	aj, bj := t.idA[j]*t.slots, t.idB[j]*t.slots
	// Remove session i from si, session j from sj...
	for _, idx := range [4]int{ai + si, bi + si, aj + sj, bj + sj} {
		if t.occ[idx] >= 2 {
			cost--
		}
		t.occ[idx]--
	}
	// ...and add them back with traded slots.
	for _, idx := range [4]int{ai + sj, bi + sj, aj + si, bj + si} {
		if t.occ[idx] >= 1 {
			cost++
		}
		t.occ[idx]++
	}
	// Roll back: CostIfSwap must not change observable state.
	for _, idx := range [4]int{ai + sj, bi + sj, aj + si, bj + si} {
		t.occ[idx]--
	}
	for _, idx := range [4]int{ai + si, bi + si, aj + sj, bj + sj} {
		t.occ[idx]++
	}
	return cost
}

// ExecutedAssign implements core.AssignExecutor: cfg[i] already holds
// the new slot. The occupancy cells move, and only the sessions sharing
// a resource with i in the vacated or entered slot have their error
// entries adjusted; session i's own entry is recomputed exactly.
func (t *Timetable) ExecutedAssign(cfg []int, i, old int) {
	v := cfg[i]
	if v == old {
		return
	}
	S := t.slots
	for _, res := range [2]int{t.idA[i], t.idB[i]} {
		t.occ[res*S+old]--
		t.occ[res*S+v]++
		for _, j32 := range t.resSessions[res] {
			j := int(j32)
			if j == i {
				continue
			}
			if s := cfg[j]; s == old {
				t.errVec[j]--
			} else if s == v {
				t.errVec[j]++
			}
		}
	}
	t.errVec[i] = (t.occ[t.idA[i]*S+v] - 1) + (t.occ[t.idB[i]*S+v] - 1)
}

// ExecutedSwap implements core.SwapExecutor for harness use (the FD
// engine never swaps): a swap touches up to four resource/slot cells in
// a pattern the assign delta does not cover, so the incremental state
// is simply rebuilt.
func (t *Timetable) ExecutedSwap(cfg []int, i, j int) {
	t.Cost(cfg)
}

// LiveErrors implements core.MaintainedErrorVector: the vector is kept
// current by Cost and ExecutedAssign.
func (t *Timetable) LiveErrors(cfg []int) []int { return t.errVec }

// ErrorsOnVariables implements core.ErrorVector.
func (t *Timetable) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, t.errVec)
}

// Verify reports whether cfg is a conflict-free timetable with every
// session inside its domain, checked independently of the incremental
// machinery.
func (t *Timetable) Verify(cfg []int) bool {
	if len(cfg) != t.n {
		return false
	}
	for i, s := range cfg {
		in := false
		for _, v := range t.domains[i] {
			if v == s {
				in = true
				break
			}
		}
		if !in {
			return false
		}
	}
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			if cfg[i] != cfg[j] {
				continue
			}
			if t.idA[i] == t.idA[j] || t.idB[i] == t.idB[j] {
				return false
			}
		}
	}
	return true
}
