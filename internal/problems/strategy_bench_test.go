package problems

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// Hot-loop micro-benchmarks for the engine's two selection primitives
// on the paper's benchmarks, with and without the ErrorVector fast
// path. The "errvec" variants serve worst-variable selection from the
// incrementally maintained error cache; the "scan" variants hide the
// ErrorVector interface (via hideErrVec) and fall back to one
// CostOnVariable call per variable per selection, which is what every
// iteration paid before the cache existed. Each benchmark iteration
// also executes a random swap through ExecutedSwap so the cache's
// invalidation/update cost is charged to the fast path honestly.

// benchProblem builds the instance, optionally hiding ErrorVector.
func benchProblem(b *testing.B, name string, size int, hide bool) core.Problem {
	b.Helper()
	p, err := New(name, size)
	if err != nil {
		b.Fatal(err)
	}
	if hide {
		return hideErrVec{p}
	}
	return p
}

// randomSwap executes one random swap on the state, keeping the
// problem's incremental caches in sync — the engine's doSwap without
// the bookkeeping.
func randomSwap(st *core.State, p core.Problem, r *rng.Rand) {
	n := len(st.Cfg)
	i := r.Intn(n)
	j := r.Intn(n - 1)
	if j >= i {
		j++
	}
	c := p.CostIfSwap(st.Cfg, st.Cost, i, j)
	st.Cfg[i], st.Cfg[j] = st.Cfg[j], st.Cfg[i]
	if sw, ok := p.(core.SwapExecutor); ok {
		sw.ExecutedSwap(st.Cfg, i, j)
	}
	st.Cost = c
	st.Iter++
	st.InvalidateErrors()
}

func benchmarkSelectWorstVariable(b *testing.B, name string, size int, hide bool) {
	p := benchProblem(b, name, size, hide)
	st := core.NewState(p, core.Options{}, 1, nil)
	r := rng.New(7)
	sel := core.AdaptiveVariable{}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		_ = sel.SelectVariable(st)
		randomSwap(st, p, r)
	}
}

func benchmarkSelectBestSwap(b *testing.B, name string, size int, hide bool) {
	p := benchProblem(b, name, size, hide)
	st := core.NewState(p, core.Options{}, 1, nil)
	r := rng.New(7)
	varSel := core.AdaptiveVariable{}
	moveSel := core.MinConflictMove{}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		i := varSel.SelectVariable(st)
		_, _ = moveSel.SelectMove(st, i)
		randomSwap(st, p, r)
	}
}

func BenchmarkSelectWorstVariableMagicSquare10Scan(b *testing.B) {
	benchmarkSelectWorstVariable(b, "magic-square", 10, true)
}

func BenchmarkSelectWorstVariableMagicSquare10ErrVec(b *testing.B) {
	benchmarkSelectWorstVariable(b, "magic-square", 10, false)
}

func BenchmarkSelectWorstVariableCostas14Scan(b *testing.B) {
	benchmarkSelectWorstVariable(b, "costas", 14, true)
}

func BenchmarkSelectWorstVariableCostas14ErrVec(b *testing.B) {
	benchmarkSelectWorstVariable(b, "costas", 14, false)
}

func BenchmarkSelectBestSwapMagicSquare10Scan(b *testing.B) {
	benchmarkSelectBestSwap(b, "magic-square", 10, true)
}

func BenchmarkSelectBestSwapMagicSquare10ErrVec(b *testing.B) {
	benchmarkSelectBestSwap(b, "magic-square", 10, false)
}

func BenchmarkSelectBestSwapCostas14Scan(b *testing.B) {
	benchmarkSelectBestSwap(b, "costas", 14, true)
}

func BenchmarkSelectBestSwapCostas14ErrVec(b *testing.B) {
	benchmarkSelectBestSwap(b, "costas", 14, false)
}

// The Solve benchmarks measure the end-to-end iteration rate with the
// fast path on vs off — the acceptance bar for the error cache. The
// microbenchmarks above charge a swap to every selection; a real search
// also has freeze iterations (local minima that do not move), which the
// cache serves for free, so the end-to-end delta is the honest number.
func BenchmarkSolveMagicSquare10ErrVec(b *testing.B) {
	benchmarkSolveIterRate(b, "magic-square", 10, false)
}

func BenchmarkSolveMagicSquare10Scan(b *testing.B) {
	benchmarkSolveIterRate(b, "magic-square", 10, true)
}

func BenchmarkSolveCostas14ErrVec(b *testing.B) {
	benchmarkSolveIterRate(b, "costas", 14, false)
}

func BenchmarkSolveCostas14Scan(b *testing.B) {
	benchmarkSolveIterRate(b, "costas", 14, true)
}

func BenchmarkSolveAllInterval24ErrVec(b *testing.B) {
	benchmarkSolveIterRate(b, "all-interval", 24, false)
}

func BenchmarkSolveAllInterval24Scan(b *testing.B) {
	benchmarkSolveIterRate(b, "all-interval", 24, true)
}

func benchmarkSolveIterRate(b *testing.B, name string, size int, hide bool) {
	var iters int64
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		raw, err := New(name, size)
		if err != nil {
			b.Fatal(err)
		}
		// Tune from the raw problem so both variants run identical
		// engine options (hideErrVec does not forward the Tuner hook).
		opts := core.TunedOptions(raw)
		opts.Seed = uint64(k) + 1
		p := raw
		if hide {
			p = hideErrVec{raw}
		}
		res, err := core.Solve(nil, p, opts) //nolint:staticcheck // nil ctx is part of the API
		if err != nil || !res.Solved {
			b.Fatalf("%v %v", res, err)
		}
		iters += res.Iterations
	}
	b.ReportMetric(float64(iters)/b.Elapsed().Seconds(), "iters/s")
}
