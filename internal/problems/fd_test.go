package problems

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/domain"
	"repro/internal/rng"
)

// fdHotPathProblem is the FD intersection the consistency suites
// exercise: the finite-domain engine contract plus the incremental
// executor, the batched assign evaluator and the maintained error
// vector.
type fdHotPathProblem interface {
	core.FDProblem
	core.AssignExecutor
	core.AssignEvaluator
	core.MaintainedErrorVector
}

// fdHotPathBuilders constructs one instance of every incremental FD
// encoding: the timetable benchmark and a mixed linear/custom csp model
// compiled onto the FD path (with a binary domain so flip moves are
// exercised too). Domains are reduced before the walk, matching the
// engine's pre-search pass.
func fdHotPathBuilders(t *testing.T) map[string]func() fdHotPathProblem {
	t.Helper()
	return map[string]func() fdHotPathProblem{
		"timetable": func() fdHotPathProblem {
			p, err := NewTimetable(20, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.ReduceDomains(); err != nil {
				t.Fatal(err)
			}
			return p
		},
		"csp-fd-mixed": func() fdHotPathProblem {
			m := csp.NewModel(6, 1)
			m.AddLinearSum("lin", []int{0, 1, 2, 1}, nil, 14)
			m.AddLinearSum("coef", []int{2, 3, 4}, []int{2, -1, 3}, 11)
			m.AddWeighted("spread", []int{3, 4, 5}, 2, func(vals []int) int {
				d := vals[0] - vals[2]
				if d < 0 {
					d = -d
				}
				if d > 3 {
					return d - 3
				}
				return 0
			})
			m.SetDomainRange(0, 0, 7)
			m.SetDomain(1, 1, 3, 5)
			m.SetDomainRange(2, 0, 7)
			m.SetDomain(3, 0, 1) // binary: assigns on it are flips
			m.SetDomainRange(4, 0, 7)
			m.SetDomainRange(5, 2, 6)
			p, err := m.CompileFD()
			if err != nil {
				t.Fatalf("csp-fd-mixed: %v", err)
			}
			if err := p.ReduceDomains(); err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
}

// driveFDHotPath walks an FD problem through the engine's exact
// mutation pattern — Cost at run start, random in-domain assignments
// through ExecutedAssign, repeated queries, periodic full rebuilds —
// invoking check at every step.
func driveFDHotPath(t *testing.T, p fdHotPathProblem, steps int, check func(cfg []int, cost int, step string)) {
	t.Helper()
	n := p.Size()
	r := rng.New(2012)
	cfg := make([]int, n)
	for i := range cfg {
		d := p.Domain(i)
		cfg[i] = d[r.Intn(len(d))]
	}
	cost := p.Cost(cfg)
	check(cfg, cost, "initial")
	for step := 0; step < steps; step++ {
		i := r.Intn(n)
		d := p.Domain(i)
		v := d[r.Intn(len(d))]
		cost = p.CostIfAssign(cfg, cost, i, v)
		old := cfg[i]
		cfg[i] = v
		p.ExecutedAssign(cfg, i, old)
		check(cfg, cost, "after assign")
		check(cfg, cost, "repeat query")
		if step%37 == 0 {
			if rebuilt := p.Cost(cfg); rebuilt != cost {
				t.Fatalf("step %d: incremental cost %d != rebuilt cost %d", step, cost, rebuilt)
			}
			check(cfg, cost, "after Cost rebuild")
		}
	}
}

// TestFDMoveEvaluatorConsistency is the assign-move counterpart of
// TestMoveEvaluatorConsistency: at every step of a random assignment
// walk, the batched CostsIfAssignAll row must report exactly what
// per-call CostIfAssign reports for every (variable, value), with the
// current value's entry holding the current cost — so the batched fast
// path can never drift from the reference.
func TestFDMoveEvaluatorConsistency(t *testing.T) {
	for name, build := range fdHotPathBuilders(t) {
		t.Run(name, func(t *testing.T) {
			p := build()
			n := p.Size()
			row := make([]int, 64)
			driveFDHotPath(t, p, 60, func(cfg []int, cost int, step string) {
				for i := 0; i < n; i++ {
					d := p.Domain(i)
					out := row[:len(d)]
					p.CostsIfAssignAll(cfg, cost, i, out)
					for k, v := range d {
						want := p.CostIfAssign(cfg, cost, i, v)
						if v == cfg[i] && want != cost {
							t.Fatalf("%s: CostIfAssign(%d, current %d) = %d, want current cost %d", step, i, v, want, cost)
						}
						if out[k] != want {
							t.Fatalf("%s: CostsIfAssignAll(%d)[%d] = %d, CostIfAssign(v=%d) = %d (cfg %v)",
								step, i, k, out[k], v, want, cfg)
						}
					}
				}
			})
		})
	}
}

// TestFDErrorVectorConsistency drives the same walk and checks the
// delta-maintained error vector against the per-variable scan at every
// step.
func TestFDErrorVectorConsistency(t *testing.T) {
	for name, build := range fdHotPathBuilders(t) {
		t.Run(name, func(t *testing.T) {
			p := build()
			n := p.Size()
			out := make([]int, n)
			driveFDHotPath(t, p, 200, func(cfg []int, cost int, step string) {
				p.ErrorsOnVariables(cfg, out)
				live := p.LiveErrors(cfg)
				for i := 0; i < n; i++ {
					want := p.CostOnVariable(cfg, i)
					if out[i] != want || live[i] != want {
						t.Fatalf("%s: errVec[%d] out=%d live=%d, CostOnVariable=%d (cfg %v)",
							step, i, out[i], live[i], want, cfg)
					}
				}
			})
		})
	}
}

// TestFDCostIfSwapHonest checks the retained swap evaluator against a
// from-scratch Cost on a swapped copy: exchange probes and harnesses
// still evaluate swap perturbations on FD encodings.
func TestFDCostIfSwapHonest(t *testing.T) {
	p, err := NewTimetable(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReduceDomains(); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewTimetable(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.ReduceDomains(); err != nil {
		t.Fatal(err)
	}
	n := p.Size()
	r := rng.New(99)
	cfg := make([]int, n)
	for i := range cfg {
		d := p.Domain(i)
		cfg[i] = d[r.Intn(len(d))]
	}
	cost := p.Cost(cfg)
	scratch := make([]int, n)
	for trial := 0; trial < 200; trial++ {
		i, j := r.Intn(n), r.Intn(n)
		got := p.CostIfSwap(cfg, cost, i, j)
		copy(scratch, cfg)
		scratch[i], scratch[j] = scratch[j], scratch[i]
		if want := fresh.Cost(scratch); got != want {
			t.Fatalf("CostIfSwap(%d,%d) = %d, fresh Cost = %d", i, j, got, want)
		}
		if again := p.Cost(cfg); again != cost {
			t.Fatalf("CostIfSwap corrupted caches: cost %d -> %d", cost, again)
		}
	}
}

// TestTimetableParams covers the params-aware constructor: unknown and
// invalid parameters fail with the typed error, and valid overrides
// shape the instance.
func TestTimetableParams(t *testing.T) {
	if _, err := NewTimetable(10, map[string]int{"professors": 3}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("unknown param: err = %v, want ErrBadParams", err)
	}
	if _, err := NewTimetable(10, map[string]int{"rooms": 0}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("non-positive param: err = %v, want ErrBadParams", err)
	}
	if _, err := NewWithParams("timetable", 10, map[string]int{"slots": -1}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("registry non-positive param: err = %v, want ErrBadParams", err)
	}
	if _, err := NewWithParams("queens", 8, map[string]int{"slots": 2}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("params on a permutation benchmark: err = %v, want ErrBadParams", err)
	}
	p, err := NewTimetable(12, map[string]int{"slots": 4, "rooms": 3, "teachers": 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Size(); i++ {
		for _, v := range p.Domain(i) {
			if v < 0 || v >= 4 {
				t.Fatalf("Domain(%d) contains slot %d outside [0,4)", i, v)
			}
		}
	}
}

// TestTimetableUnsatisfiable pins the empty-domain proof: one room and
// two slots cannot host three sessions sharing that room, and the
// pigeonhole check in the all-different reduction proves it before
// search. The typed error must surface through core.Solve.
func TestTimetableUnsatisfiable(t *testing.T) {
	p, err := NewTimetable(3, map[string]int{"rooms": 1, "slots": 2, "teachers": 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReduceDomains(); !errors.Is(err, domain.ErrUnsatisfiable) {
		t.Fatalf("ReduceDomains = %v, want ErrUnsatisfiable", err)
	}

	p2, err := NewTimetable(3, map[string]int{"rooms": 1, "slots": 2, "teachers": 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Solve(context.Background(), p2, core.DefaultOptions(p2.Size()))
	if !errors.Is(err, domain.ErrUnsatisfiable) {
		t.Fatalf("Solve = %v, want ErrUnsatisfiable", err)
	}
}

// TestTimetableSolveVerify runs the full engine on the default instance
// and cross-checks the solution with the independent Verify scan.
func TestTimetableSolveVerify(t *testing.T) {
	p, err := NewTimetable(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.TunedOptions(p)
	opts.Seed = 42
	opts.MaxIterations = 50000
	res, err := core.Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("default timetable(20) unsolved: %v", res)
	}
	if !p.Verify(res.Solution) {
		t.Fatalf("Verify rejected the engine's solution %v", res.Solution)
	}
	if err := core.ValidateFDConfig(p, res.Solution); err != nil {
		t.Fatalf("solution outside domains: %v", err)
	}
	if res.Assigns == 0 || res.Swaps != 0 {
		t.Fatalf("FD counters off: assigns=%d swaps=%d", res.Assigns, res.Swaps)
	}
}
