package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "langford",
		description: "Langford pairs L(2,n): arrange two copies of 1..n so the copies of k are k+1 apart (CSPLib prob024)",
		defaultSize: 32,
		paperSize:   32,
		build:       func(n int) (core.Problem, error) { return NewLangford(n) },
	})
}

// Langford encodes L(2,n) (CSPLib prob024). There are 2n items: items
// 2k and 2k+1 are the two copies of the value k+1 (0-based k). The
// configuration maps items to sequence positions: cfg[item] = position.
// The constraint for value v = k+1 is that its two copies sit exactly
// v+1 positions apart (v values between them is the classical phrasing
// with v-1... this library follows the CSPLib convention: the two
// occurrences of v are separated by exactly v other numbers, i.e.
// |pos1-pos2| = v+1). The cost sums each value's deviation from its
// required separation, with O(1) swap deltas.
type Langford struct {
	n    int   // number of values; 2n items
	dev  []int // dev[k] = | |p1-p2| - (k+2) | cached per value
	cost int   // cached total (kept consistent by Cost/ExecutedSwap)

	// errVec[2k] = errVec[2k+1] = dev[k]: the per-item projection of
	// the value deviations, delta-maintained by ExecutedSwap (a swap
	// touches at most two values, so at most four entries).
	errVec []int
}

var (
	_ core.SwapExecutor          = (*Langford)(nil)
	_ core.MaintainedErrorVector = (*Langford)(nil)
	_ core.MoveEvaluator         = (*Langford)(nil)
)

// NewLangford returns an L(2,n) instance. Solutions exist only for
// n ≡ 0 or 3 (mod 4); other n are rejected so searches cannot run
// forever on unsatisfiable instances.
func NewLangford(n int) (*Langford, error) {
	if n < 3 {
		return nil, fmt.Errorf("langford: n must be >= 3, got %d", n)
	}
	if m := n % 4; m != 0 && m != 3 {
		return nil, fmt.Errorf("langford: L(2,%d) has no solutions (n must be 0 or 3 mod 4)", n)
	}
	return &Langford{n: n, dev: make([]int, n), errVec: make([]int, 2*n)}, nil
}

// Name implements core.Namer.
func (l *Langford) Name() string { return "langford" }

// Values returns n, the number of distinct values.
func (l *Langford) Values() int { return l.n }

// Size implements core.Problem: 2n items.
func (l *Langford) Size() int { return 2 * l.n }

// deviation computes value k's separation error under cfg.
func (l *Langford) deviation(cfg []int, k int) int {
	d := cfg[2*k] - cfg[2*k+1]
	if d < 0 {
		d = -d
	}
	return abs(d - (k + 2))
}

// Cost implements core.Problem, rebuilding the per-value deviations and
// the error vector.
func (l *Langford) Cost(cfg []int) int {
	total := 0
	for k := 0; k < l.n; k++ {
		d := l.deviation(cfg, k)
		l.dev[k] = d
		l.errVec[2*k] = d
		l.errVec[2*k+1] = d
		total += d
	}
	l.cost = total
	return total
}

// CostOnVariable implements core.Problem: an item's error is its
// value's deviation.
func (l *Langford) CostOnVariable(cfg []int, i int) int {
	return l.dev[i/2]
}

// CostIfSwap implements core.Problem: swapping the positions of items i
// and j affects only their two values.
func (l *Langford) CostIfSwap(cfg []int, cost, i, j int) int {
	ki, kj := i/2, j/2
	cfg[i], cfg[j] = cfg[j], cfg[i]
	cost += l.deviation(cfg, ki) - l.dev[ki]
	if kj != ki {
		cost += l.deviation(cfg, kj) - l.dev[kj]
	}
	cfg[i], cfg[j] = cfg[j], cfg[i]
	return cost
}

// ExecutedSwap implements core.SwapExecutor: only the (at most two)
// values owning the swapped items change, so only their deviations and
// error-vector entries are refreshed.
func (l *Langford) ExecutedSwap(cfg []int, i, j int) {
	ki, kj := i/2, j/2
	l.cost -= l.dev[ki]
	d := l.deviation(cfg, ki)
	l.dev[ki] = d
	l.errVec[2*ki] = d
	l.errVec[2*ki+1] = d
	l.cost += d
	if kj != ki {
		l.cost -= l.dev[kj]
		d = l.deviation(cfg, kj)
		l.dev[kj] = d
		l.errVec[2*kj] = d
		l.errVec[2*kj+1] = d
		l.cost += d
	}
}

// CostsIfSwapAll implements core.MoveEvaluator. Item i's value and
// current deviation are hoisted; each candidate costs two deviation
// recomputes at most.
func (l *Langford) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	ki := i / 2
	devKi := l.dev[ki]
	pi := cfg[i]
	for j, pj := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		kj := j / 2
		cfg[i], cfg[j] = pj, pi
		c := cost + l.deviation(cfg, ki) - devKi
		if kj != ki {
			c += l.deviation(cfg, kj) - l.dev[kj]
		}
		cfg[i], cfg[j] = pi, pj
		out[j] = c
	}
}

// LiveErrors implements core.MaintainedErrorVector: the vector is kept
// current by Cost and ExecutedSwap.
func (l *Langford) LiveErrors(cfg []int) []int { return l.errVec }

// ErrorsOnVariables implements core.ErrorVector.
func (l *Langford) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, l.errVec)
}

// Tune implements core.Tuner (settings in the spirit of the C
// benchmark: moderate tabu with value-scaled reset threshold).
func (l *Langford) Tune(o *core.Options) {
	o.FreezeLocMin = 2
	o.ResetLimit = l.n / 2
	if o.ResetLimit < 2 {
		o.ResetLimit = 2
	}
	o.ResetFraction = 0.1
	o.MaxIterations = int64(l.n) * 4_000
}

// Verify independently checks that cfg solves L(2,n).
func (l *Langford) Verify(cfg []int) bool {
	if len(cfg) != 2*l.n {
		return false
	}
	seen := make([]bool, 2*l.n)
	for _, v := range cfg {
		if v < 0 || v >= 2*l.n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for k := 0; k < l.n; k++ {
		d := cfg[2*k] - cfg[2*k+1]
		if d < 0 {
			d = -d
		}
		if d != k+2 {
			return false
		}
	}
	return true
}
