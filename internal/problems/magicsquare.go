package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "magic-square",
		description: "Magic Square: fill an n x n grid with 1..n^2 so rows, columns and diagonals share one sum (CSPLib prob019)",
		defaultSize: 10,
		paperSize:   100,
		build:       func(n int) (core.Problem, error) { return NewMagicSquare(n) },
	})
}

// MagicSquare encodes CSPLib prob019. The configuration is a permutation
// of [0, n*n); cell k of the row-major grid holds value cfg[k]+1. The
// constraints require every row, every column and both main diagonals to
// sum to the magic constant M = n(n^2+1)/2. The cost is the sum of the
// absolute deviations of all 2n+2 line sums, and the encoding caches the
// line sums for O(1) swap deltas, as the C benchmark does.
type MagicSquare struct {
	side int // n: the side of the grid; Size() is n*n
	m    int // magic constant
	row  []int
	col  []int
	d1   int // main diagonal (r == c)
	d2   int // anti-diagonal (r + c == n-1)

	// errVec caches the per-cell projected errors (the ErrorVector
	// fast path). ExecutedSwap refreshes only the cells on lines whose
	// sum changed — O(side) work instead of the O(side^2) per-iteration
	// scan — and Cost invalidates it for a lazy rebuild.
	errVec   []int
	errValid bool
}

// NewMagicSquare returns an instance with side n (n*n variables).
// n must be at least 1; n = 2 has no solution and is rejected.
func NewMagicSquare(n int) (*MagicSquare, error) {
	if n < 1 {
		return nil, fmt.Errorf("magic-square: side must be >= 1, got %d", n)
	}
	if n == 2 {
		return nil, fmt.Errorf("magic-square: no 2x2 magic square exists")
	}
	return &MagicSquare{
		side:   n,
		m:      n * (n*n + 1) / 2,
		row:    make([]int, n),
		col:    make([]int, n),
		errVec: make([]int, n*n),
	}, nil
}

var (
	_ core.SwapExecutor          = (*MagicSquare)(nil)
	_ core.MaintainedErrorVector = (*MagicSquare)(nil)
	_ core.MoveEvaluator         = (*MagicSquare)(nil)
)

// Name implements core.Namer.
func (ms *MagicSquare) Name() string { return "magic-square" }

// Side returns the grid side n.
func (ms *MagicSquare) Side() int { return ms.side }

// Size implements core.Problem: the number of cells, n*n.
func (ms *MagicSquare) Size() int { return ms.side * ms.side }

// Cost implements core.Problem, rebuilding all line sums.
func (ms *MagicSquare) Cost(cfg []int) int {
	n := ms.side
	for i := 0; i < n; i++ {
		ms.row[i] = 0
		ms.col[i] = 0
	}
	ms.d1, ms.d2 = 0, 0
	for k, raw := range cfg {
		v := raw + 1
		r, c := k/n, k%n
		ms.row[r] += v
		ms.col[c] += v
		if r == c {
			ms.d1 += v
		}
		if r+c == n-1 {
			ms.d2 += v
		}
	}
	cost := abs(ms.d1-ms.m) + abs(ms.d2-ms.m)
	for i := 0; i < n; i++ {
		cost += abs(ms.row[i]-ms.m) + abs(ms.col[i]-ms.m)
	}
	ms.errValid = false
	return cost
}

// CostOnVariable implements core.Problem: the error projected on cell i
// is the deviation of the lines through it.
func (ms *MagicSquare) CostOnVariable(cfg []int, i int) int {
	n := ms.side
	r, c := i/n, i%n
	e := abs(ms.row[r]-ms.m) + abs(ms.col[c]-ms.m)
	if r == c {
		e += abs(ms.d1 - ms.m)
	}
	if r+c == n-1 {
		e += abs(ms.d2 - ms.m)
	}
	return e
}

// lineDelta accumulates the swap's net value change per line. Lines are
// identified as: 0..n-1 rows, n..2n-1 columns, 2n main diagonal, 2n+1
// anti-diagonal. A swap touches at most 8 line incidences; shared lines
// cancel naturally through summation.
type lineDelta struct {
	ids    [8]int
	deltas [8]int
	n      int
}

func (ld *lineDelta) add(id, delta int) {
	for k := 0; k < ld.n; k++ {
		if ld.ids[k] == id {
			ld.deltas[k] += delta
			return
		}
	}
	ld.ids[ld.n] = id
	ld.deltas[ld.n] = delta
	ld.n++
}

// cellLines feeds the lines through cell k (row-major) into ld.
func (ms *MagicSquare) cellLines(ld *lineDelta, k, delta int) {
	n := ms.side
	r, c := k/n, k%n
	ld.add(r, delta)
	ld.add(n+c, delta)
	if r == c {
		ld.add(2*n, delta)
	}
	if r+c == n-1 {
		ld.add(2*n+1, delta)
	}
}

// lineSum returns the cached sum of the identified line.
func (ms *MagicSquare) lineSum(id int) int {
	n := ms.side
	switch {
	case id < n:
		return ms.row[id]
	case id < 2*n:
		return ms.col[id-n]
	case id == 2*n:
		return ms.d1
	default:
		return ms.d2
	}
}

// CostIfSwap implements core.Problem with an O(1) delta over the at most
// eight affected line incidences.
func (ms *MagicSquare) CostIfSwap(cfg []int, cost, i, j int) int {
	dv := cfg[j] - cfg[i] // value change at cell i; cell j gets -dv
	var ld lineDelta
	ms.cellLines(&ld, i, dv)
	ms.cellLines(&ld, j, -dv)
	for k := 0; k < ld.n; k++ {
		if ld.deltas[k] == 0 {
			continue
		}
		s := ms.lineSum(ld.ids[k])
		cost += abs(s+ld.deltas[k]-ms.m) - abs(s-ms.m)
	}
	return cost
}

// ExecutedSwap implements core.SwapExecutor: cfg is already swapped, so
// the value now at cell i moved in from cell j.
func (ms *MagicSquare) ExecutedSwap(cfg []int, i, j int) {
	dv := cfg[i] - cfg[j] // post-swap: cell i gained cfg[i]-cfg[j]... see below
	// Pre-swap values: cell i held cfg[j], cell j held cfg[i]. The net
	// change at cell i is cfg[i]-cfg[j] = dv; at cell j it is -dv.
	var ld lineDelta
	ms.cellLines(&ld, i, dv)
	ms.cellLines(&ld, j, -dv)
	n := ms.side
	for k := 0; k < ld.n; k++ {
		id, d := ld.ids[k], ld.deltas[k]
		switch {
		case id < n:
			ms.row[id] += d
		case id < 2*n:
			ms.col[id-n] += d
		case id == 2*n:
			ms.d1 += d
		default:
			ms.d2 += d
		}
	}
	if ms.errValid {
		// A cell's projected error is a sum of its lines' deviations,
		// so only cells on lines whose sum changed need refreshing.
		for k := 0; k < ld.n; k++ {
			if ld.deltas[k] != 0 {
				ms.refreshLineErrors(ld.ids[k])
			}
		}
	}
}

// refreshLineErrors recomputes the cached error of every cell on the
// identified line from the current line-sum deviations.
func (ms *MagicSquare) refreshLineErrors(id int) {
	n := ms.side
	switch {
	case id < n: // row id
		for c := 0; c < n; c++ {
			ms.refreshCellError(id*n + c)
		}
	case id < 2*n: // column id-n
		for r := 0; r < n; r++ {
			ms.refreshCellError(r*n + (id - n))
		}
	case id == 2*n: // main diagonal
		for r := 0; r < n; r++ {
			ms.refreshCellError(r*n + r)
		}
	default: // anti-diagonal
		for r := 0; r < n; r++ {
			ms.refreshCellError(r*n + (n - 1 - r))
		}
	}
}

// refreshCellError recomputes errVec[k] from the cached line sums; the
// value matches CostOnVariable exactly (it depends only on the lines
// through the cell, not on the cell's value).
func (ms *MagicSquare) refreshCellError(k int) {
	n := ms.side
	r, c := k/n, k%n
	e := abs(ms.row[r]-ms.m) + abs(ms.col[c]-ms.m)
	if r == c {
		e += abs(ms.d1 - ms.m)
	}
	if r+c == n-1 {
		e += abs(ms.d2 - ms.m)
	}
	ms.errVec[k] = e
}

// LiveErrors implements core.MaintainedErrorVector: ExecutedSwap keeps
// the vector current by refreshing only the cells on changed lines;
// after a full Cost recompute (run start, partial reset, teleport) the
// vector is rebuilt here once, lazily.
func (ms *MagicSquare) LiveErrors(cfg []int) []int {
	if !ms.errValid {
		for k := range ms.errVec {
			ms.refreshCellError(k)
		}
		ms.errValid = true
	}
	return ms.errVec
}

// ErrorsOnVariables implements core.ErrorVector.
func (ms *MagicSquare) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, ms.LiveErrors(cfg))
}

// CostsIfSwapAll implements core.MoveEvaluator. Cell i's lines are
// resolved once outside the partner loop; each candidate then costs a
// handful of additions and branches, with shared-line cancellation
// handled explicitly instead of through the lineDelta accumulator.
func (ms *MagicSquare) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	n := ms.side
	m := ms.m
	r1, c1 := i/n, i%n
	row1, col1 := ms.row[r1], ms.col[c1]
	row1Dev, col1Dev := abs(row1-m), abs(col1-m)
	d1, d2 := ms.d1, ms.d2
	d1Dev, d2Dev := abs(d1-m), abs(d2-m)
	onD1 := r1 == c1
	onD2 := r1+c1 == n-1
	vi := cfg[i]
	for j, vj := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		dv := vj - vi // value change at cell i; cell j gets -dv
		c := cost
		r2, c2 := j/n, j%n
		if r2 != r1 {
			s := ms.row[r2]
			c += abs(row1+dv-m) - row1Dev + abs(s-dv-m) - abs(s-m)
		}
		if c2 != c1 {
			s := ms.col[c2]
			c += abs(col1+dv-m) - col1Dev + abs(s-dv-m) - abs(s-m)
		}
		dd := 0
		if onD1 {
			dd += dv
		}
		if r2 == c2 {
			dd -= dv
		}
		if dd != 0 {
			c += abs(d1+dd-m) - d1Dev
		}
		dd = 0
		if onD2 {
			dd += dv
		}
		if r2+c2 == n-1 {
			dd -= dv
		}
		if dd != 0 {
			c += abs(d2+dd-m) - d2Dev
		}
		out[j] = c
	}
}

// Tune implements core.Tuner following the C benchmark's settings: magic
// squares profit from the probabilistic local-minimum escape and a reset
// threshold scaling with the side.
func (ms *MagicSquare) Tune(o *core.Options) {
	n := ms.side
	o.ProbSelectLocMin = 0.06
	o.FreezeLocMin = 1
	o.ResetLimit = n*n/20 + 2
	o.ResetFraction = 0.05
	o.MaxIterations = int64(n) * int64(n) * 1000
}

// Verify independently checks that cfg solves the instance.
func (ms *MagicSquare) Verify(cfg []int) bool {
	n := ms.side
	if len(cfg) != n*n {
		return false
	}
	seen := make([]bool, n*n)
	for _, v := range cfg {
		if v < 0 || v >= n*n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for r := 0; r < n; r++ {
		s := 0
		for c := 0; c < n; c++ {
			s += cfg[r*n+c] + 1
		}
		if s != ms.m {
			return false
		}
	}
	for c := 0; c < n; c++ {
		s := 0
		for r := 0; r < n; r++ {
			s += cfg[r*n+c] + 1
		}
		if s != ms.m {
			return false
		}
	}
	s1, s2 := 0, 0
	for r := 0; r < n; r++ {
		s1 += cfg[r*n+r] + 1
		s2 += cfg[r*n+(n-1-r)] + 1
	}
	return s1 == ms.m && s2 == ms.m
}
