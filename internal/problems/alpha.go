package problems

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/csp"
)

func init() {
	register(builder{
		name:        "alpha",
		description: "The alphacipher: assign 1..26 to letters so 20 word-sum equations hold (rec.puzzles classic)",
		defaultSize: 26,
		paperSize:   26,
		build: func(n int) (core.Problem, error) {
			if n != 26 {
				return nil, fmt.Errorf("alpha: the alphacipher has exactly 26 variables, got size %d", n)
			}
			return NewAlpha()
		},
	})
}

// alphaEquations is the classic rec.puzzles instance shipped with the C
// Adaptive Search library and the GNU Prolog examples: the sum of the
// letter values of each word must equal the given target.
var alphaEquations = map[string]int{
	"ballet":    45,
	"cello":     43,
	"concert":   74,
	"flute":     30,
	"fugue":     50,
	"glee":      66,
	"jazz":      58,
	"lyre":      47,
	"oboe":      53,
	"opera":     65,
	"polka":     59,
	"quartet":   50,
	"saxophone": 134,
	"scale":     51,
	"solo":      37,
	"song":      61,
	"soprano":   82,
	"theme":     72,
	"violin":    100,
	"waltz":     34,
}

// Alpha is the alphacipher benchmark, built on the declarative modeling
// layer (internal/csp): variable i is the letter 'a'+i, its value is
// cfg[i]+1, and each word contributes one linear-sum constraint.
type Alpha struct {
	*csp.Compiled
}

// NewAlpha constructs the classic 26-letter, 20-equation instance.
func NewAlpha() (*Alpha, error) {
	return newAlphaFromEquations(alphaEquations)
}

// NewAlphaFromEquations builds an alphacipher-style instance from
// arbitrary word-sum equations over lowercase words. Used by tests to
// create synthetic satisfiable instances.
func NewAlphaFromEquations(eqs map[string]int) (*Alpha, error) {
	return newAlphaFromEquations(eqs)
}

func newAlphaFromEquations(eqs map[string]int) (*Alpha, error) {
	m := csp.NewModel(26, 1)
	for word, target := range eqs {
		vars := make([]int, 0, len(word))
		for _, r := range strings.ToLower(word) {
			if r < 'a' || r > 'z' {
				return nil, fmt.Errorf("alpha: word %q contains non-letter %q", word, r)
			}
			vars = append(vars, int(r-'a'))
		}
		if len(vars) == 0 {
			return nil, fmt.Errorf("alpha: empty word")
		}
		m.AddLinearSum(word, vars, nil, target)
	}
	compiled, err := m.Compile()
	if err != nil {
		return nil, fmt.Errorf("alpha: %w", err)
	}
	return &Alpha{Compiled: compiled}, nil
}

// Name implements core.Namer.
func (a *Alpha) Name() string { return "alpha" }

// Tune implements core.Tuner: alpha is small (26 variables) and densely
// constrained, so the exhaustive pair scan pays for itself; plateau
// cycling is broken by bounded runs with unlimited restarts.
func (a *Alpha) Tune(o *core.Options) {
	o.Exhaustive = true
	o.MaxIterations = 10_000
	o.ProbSelectLocMin = 0.1
	o.ResetLimit = 2
	o.ResetFraction = 0.2
}

// Letters renders a configuration as letter=value assignments, for CLI
// output.
func (a *Alpha) Letters(cfg []int) string {
	var b strings.Builder
	for i, v := range cfg {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%c=%d", 'a'+i, v+1)
	}
	return b.String()
}
