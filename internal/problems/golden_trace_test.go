package problems

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
)

// -update-golden regenerates testdata/golden_traces.json from the
// current engine. Run it deliberately, diff the result, and commit:
// any change means the engine's search trace moved for some
// (problem, strategy, seed), which is exactly what this suite exists
// to catch.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden trace file from the current engine")

// goldenTrace pins the deterministic outcome of one seeded
// whole-search run: every engine counter plus a hash of the solution
// (when solved). Wall-clock fields are deliberately absent.
type goldenTrace struct {
	Size           int    `json:"size"`
	Solved         bool   `json:"solved"`
	Cost           int    `json:"cost"`
	Iterations     int64  `json:"iterations"`
	Swaps          int64  `json:"swaps"`
	LocalMinima    int64  `json:"local_minima"`
	PlateauEscapes int64  `json:"plateau_escapes"`
	Resets         int64  `json:"resets"`
	Restarts       int    `json:"restarts"`
	SolutionFNV    uint64 `json:"solution_fnv,omitempty"`
	// Finite-domain move counters: omitempty keeps the permutation
	// entries byte-identical to the pre-FD golden file (their assign
	// counts are always 0).
	Assigns int64 `json:"assigns,omitempty"`
	Flips   int64 `json:"flips,omitempty"`
}

// goldenSizes picks a small, valid instance per registered benchmark
// (langford needs n % 4 in {0, 3}, partition n % 8 == 0,
// perfect-square a known instance family).
var goldenSizes = map[string]int{
	"all-interval":   10,
	"alpha":          26,
	"costas":         9,
	"langford":       8,
	"magic-square":   4,
	"partition":      16,
	"perfect-square": 7,
	"queens":         12,
	"timetable":      20,
}

const (
	goldenSeed     = 2012
	goldenMaxIters = 1200
	goldenMaxRuns  = 2
)

func goldenPath() string {
	return filepath.Join("testdata", "golden_traces.json")
}

func solutionFNV(sol []int) uint64 {
	if sol == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range sol {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(v) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// runGoldenCase executes the pinned (problem, strategy) run: tuned
// options, fixed seed, bounded budget, one deterministic trace.
func runGoldenCase(t *testing.T, problem, strategy string) goldenTrace {
	t.Helper()
	size := goldenSizes[problem]
	if size == 0 {
		t.Fatalf("no golden size for %q — add it to goldenSizes", problem)
	}
	p, err := New(problem, size)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.TunedOptions(p)
	opts.Strategy = strategy
	opts.Seed = goldenSeed
	opts.MaxIterations = goldenMaxIters
	opts.MaxRuns = goldenMaxRuns
	res, err := core.Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return goldenTrace{
		Size:           size,
		Solved:         res.Solved,
		Cost:           res.Cost,
		Iterations:     res.Iterations,
		Swaps:          res.Swaps,
		LocalMinima:    res.LocalMinima,
		PlateauEscapes: res.PlateauEscapes,
		Resets:         res.Resets,
		Restarts:       res.Restarts,
		SolutionFNV:    solutionFNV(res.Solution),
		Assigns:        res.Assigns,
		Flips:          res.Flips,
	}
}

// TestGoldenTraces pins seeded whole-search traces for every
// registered strategy across every registered problem, extending
// errvec_test.go's trace-equality idea from one refactor boundary to
// the engine as a whole: any future change to selection, restart
// policy, RNG consumption or cost accounting that silently shifts a
// search trace fails here, loudly, with the drifted counters.
func TestGoldenTraces(t *testing.T) {
	keys := make([]string, 0, len(Names())*len(core.StrategyNames()))
	got := make(map[string]goldenTrace)
	for _, problem := range Names() {
		for _, strategy := range core.StrategyNames() {
			key := problem + "/" + strategy
			keys = append(keys, key)
			parts := [2]string{problem, strategy}
			t.Run(key, func(t *testing.T) {
				got[key] = runGoldenCase(t, parts[0], parts[1])
			})
		}
	}
	sort.Strings(keys)

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden traces to %s", len(got), goldenPath())
		return
	}

	blob, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create it): %v", err)
	}
	var want map[string]goldenTrace
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(keys) {
		t.Errorf("golden file pins %d cases, registry yields %d — regenerate with -update-golden", len(want), len(keys))
	}
	for _, key := range keys {
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: no golden entry (new problem or strategy? regenerate with -update-golden)", key)
			continue
		}
		if g := got[key]; g != w {
			t.Errorf("%s: trace drifted:\n got %s\nwant %s", key, formatTrace(g), formatTrace(w))
		}
	}
}

func formatTrace(tr goldenTrace) string {
	return fmt.Sprintf("{size=%d solved=%v cost=%d iters=%d swaps=%d locmin=%d plateau=%d resets=%d restarts=%d fnv=%#x}",
		tr.Size, tr.Solved, tr.Cost, tr.Iterations, tr.Swaps, tr.LocalMinima,
		tr.PlateauEscapes, tr.Resets, tr.Restarts, tr.SolutionFNV)
}
