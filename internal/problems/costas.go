package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "costas",
		description: "Costas Array Problem: n marks, one per row/column, with all n(n-1)/2 displacement vectors distinct",
		defaultSize: 14,
		paperSize:   22,
		build:       func(n int) (core.Problem, error) { return NewCostas(n) },
	})
}

// Costas encodes the Costas Array Problem. The configuration is the
// permutation view of the array: cfg[i] is the row of the mark in
// column i. A Costas array requires that within every horizontal
// distance d (1 <= d < n) the differences cfg[i+d]-cfg[i] are pairwise
// distinct — equivalently, all displacement vectors between marks are
// distinct. The cost counts surplus equal differences per distance:
//
//	cost = Σ_d Σ_v max(0, occ_d(v) - 1)
//
// The encoding caches the (n-1) x (2n-1) difference-occurrence table;
// a swap touches the O(n) pairs involving the two swapped columns.
// This mirrors the error function of the Diaz et al. Costas study the
// paper cites as [4].
//
// The per-column error vector (number of duplicated displacement
// vectors involving a column) is delta-maintained: intrusive membership
// lists record which pairs occupy each (distance, difference) cell, so
// when a pair moves between cells only the columns whose duplicated-
// ness actually changed are touched — including the one *other* pair
// that flips between unique and duplicated when a cell's occupancy
// crosses the 1<->2 threshold, which the lists locate in O(1) instead
// of a half-matrix rescan.
type Costas struct {
	n   int
	occ [][]int16 // occ[d-1][diff+n-1] for d in 1..n-1

	// errVec[i] = number of duplicated displacement vectors involving
	// column i. Always current (MaintainedErrorVector): Cost rebuilds
	// it and ExecutedSwap maintains it through addPair/removePair.
	errVec []int
	// Membership lists: a pair is identified by (dIdx, lo) with
	// hi = lo + dIdx + 1. head[dIdx][v] chains the lo indices of the
	// pairs currently occupying cell (dIdx, v); next/prev are indexed
	// by dIdx*n + lo. -1 terminates.
	head       [][]int32
	next, prev []int32
}

// NewCostas returns a Costas instance of order n; n must be >= 1.
// (Orders 32 and 33 are famously unsolvable, but no small order the
// solver is used on lacks solutions.)
func NewCostas(n int) (*Costas, error) {
	if n < 1 {
		return nil, fmt.Errorf("costas: order must be >= 1, got %d", n)
	}
	occ := make([][]int16, n-1)
	head := make([][]int32, n-1)
	for d := range occ {
		occ[d] = make([]int16, 2*n-1)
		head[d] = make([]int32, 2*n-1)
	}
	return &Costas{
		n:      n,
		occ:    occ,
		errVec: make([]int, n),
		head:   head,
		next:   make([]int32, (n-1)*n),
		prev:   make([]int32, (n-1)*n),
	}, nil
}

var (
	_ core.SwapExecutor          = (*Costas)(nil)
	_ core.MaintainedErrorVector = (*Costas)(nil)
	_ core.MoveEvaluator         = (*Costas)(nil)
)

// Name implements core.Namer.
func (c *Costas) Name() string { return "costas" }

// Size implements core.Problem.
func (c *Costas) Size() int { return c.n }

// link pushes pair (dIdx, lo) onto cell (dIdx, v)'s membership list.
func (c *Costas) link(dIdx, v, lo int) {
	base := dIdx * c.n
	h := c.head[dIdx][v]
	c.next[base+lo] = h
	c.prev[base+lo] = -1
	if h >= 0 {
		c.prev[base+int(h)] = int32(lo)
	}
	c.head[dIdx][v] = int32(lo)
}

// unlink removes pair (dIdx, lo) from cell (dIdx, v)'s membership list.
func (c *Costas) unlink(dIdx, v, lo int) {
	base := dIdx * c.n
	p, nx := c.prev[base+lo], c.next[base+lo]
	if p >= 0 {
		c.next[base+int(p)] = nx
	} else {
		c.head[dIdx][v] = nx
	}
	if nx >= 0 {
		c.prev[base+int(nx)] = p
	}
}

// addPair registers pair (lo, hi) in cell (dIdx, v), maintaining the
// occurrence count, the membership list and the error vector. It
// returns 1 when the pair lands in an occupied cell (one new surplus
// difference, the pair's cost contribution), 0 otherwise.
func (c *Costas) addPair(dIdx, v, lo, hi int) int {
	cnt := int(c.occ[dIdx][v])
	dup := 0
	if cnt >= 1 {
		c.errVec[lo]++
		c.errVec[hi]++
		dup = 1
		if cnt == 1 {
			// The cell's previously unique pair becomes duplicated.
			m := int(c.head[dIdx][v])
			c.errVec[m]++
			c.errVec[m+dIdx+1]++
		}
	}
	c.occ[dIdx][v] = int16(cnt + 1)
	c.link(dIdx, v, lo)
	return dup
}

// removePair is addPair's inverse.
func (c *Costas) removePair(dIdx, v, lo, hi int) {
	cnt := int(c.occ[dIdx][v])
	if cnt >= 2 {
		c.errVec[lo]--
		c.errVec[hi]--
	}
	c.unlink(dIdx, v, lo)
	if cnt == 2 {
		// The remaining pair in the cell becomes unique again.
		m := int(c.head[dIdx][v])
		c.errVec[m]--
		c.errVec[m+dIdx+1]--
	}
	c.occ[dIdx][v] = int16(cnt - 1)
}

// Cost implements core.Problem, rebuilding the difference table, the
// membership lists and the error vector.
func (c *Costas) Cost(cfg []int) int {
	for d := range c.occ {
		row := c.occ[d]
		for v := range row {
			row[v] = 0
		}
		hr := c.head[d]
		for v := range hr {
			hr[v] = -1
		}
	}
	for i := range c.errVec {
		c.errVec[i] = 0
	}
	cost := 0
	n := c.n
	for lo := 0; lo < n; lo++ {
		for hi := lo + 1; hi < n; hi++ {
			dIdx := hi - lo - 1
			cost += c.addPair(dIdx, cfg[hi]-cfg[lo]+n-1, lo, hi)
		}
	}
	return cost
}

// CostOnVariable implements core.Problem: the number of duplicated
// displacement vectors involving column i.
func (c *Costas) CostOnVariable(cfg []int, i int) int {
	e := 0
	n := c.n
	for q := 0; q < n; q++ {
		if q == i {
			continue
		}
		lo, hi := i, q
		if lo > hi {
			lo, hi = hi, lo
		}
		if c.occ[hi-lo-1][cfg[hi]-cfg[lo]+n-1] > 1 {
			e++
		}
	}
	return e
}

// dropPairs removes every pair involving column x (optionally skipping
// column skip) from the occurrence table only — lists and error vector
// untouched — returning the cost decrease. It is the building block of
// the hypothetical-swap evaluators, which must not disturb the
// delta-maintained structures; the caller restores the table with
// raisePairs before returning.
func (c *Costas) dropPairs(cfg []int, x, skip int) int {
	n := c.n
	dec := 0
	for q := 0; q < n; q++ {
		if q == x || q == skip {
			continue
		}
		lo, hi := x, q
		if lo > hi {
			lo, hi = hi, lo
		}
		dIdx := hi - lo - 1
		v := cfg[hi] - cfg[lo] + n - 1
		if c.occ[dIdx][v] > 1 {
			dec++
		}
		c.occ[dIdx][v]--
	}
	return dec
}

// raisePairs re-adds every pair involving column x (optionally skipping
// column skip) to the occurrence table, returning the cost increase.
func (c *Costas) raisePairs(cfg []int, x, skip int) int {
	n := c.n
	inc := 0
	for q := 0; q < n; q++ {
		if q == x || q == skip {
			continue
		}
		lo, hi := x, q
		if lo > hi {
			lo, hi = hi, lo
		}
		dIdx := hi - lo - 1
		v := cfg[hi] - cfg[lo] + n - 1
		if c.occ[dIdx][v] > 0 {
			inc++
		}
		c.occ[dIdx][v]++
	}
	return inc
}

// CostIfSwap implements core.Problem by a remove/re-add pass over the
// O(n) affected pairs, rolled back before returning. Instances are
// single-goroutine (see package comment), so the transient mutation of
// the cached table is invisible to callers.
func (c *Costas) CostIfSwap(cfg []int, cost, i, j int) int {
	cost -= c.dropPairs(cfg, i, -1)
	cost -= c.dropPairs(cfg, j, i)
	cfg[i], cfg[j] = cfg[j], cfg[i]
	cost += c.raisePairs(cfg, i, -1)
	cost += c.raisePairs(cfg, j, i)
	newCost := cost
	// Roll everything back.
	c.dropPairs(cfg, i, -1)
	c.dropPairs(cfg, j, i)
	cfg[i], cfg[j] = cfg[j], cfg[i]
	c.raisePairs(cfg, i, -1)
	c.raisePairs(cfg, j, i)
	return newCost
}

// CostsIfSwapAll implements core.MoveEvaluator. Column i's pairs are
// removed from the occurrence table once, outside the partner loop;
// each candidate j then pays only its own remove/re-add/rollback
// passes, roughly halving the table traffic of n-1 independent
// CostIfSwap calls on top of the devirtualization.
func (c *Costas) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	base := cost - c.dropPairs(cfg, i, -1)
	vi := cfg[i]
	for j := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		cst := base
		vj := cfg[j]
		cst -= c.dropPairs(cfg, j, i)
		cfg[i], cfg[j] = vj, vi
		cst += c.raisePairs(cfg, i, -1)
		cst += c.raisePairs(cfg, j, i)
		out[j] = cst
		// Roll back to the "column i removed" state.
		c.dropPairs(cfg, i, -1)
		c.dropPairs(cfg, j, i)
		cfg[i], cfg[j] = vi, vj
		c.raisePairs(cfg, j, i)
	}
	c.raisePairs(cfg, i, -1)
}

// ExecutedSwap implements core.SwapExecutor: cfg arrives already
// swapped; the affected pairs migrate between cells through
// removePair/addPair, which keep the error vector exact as a side
// effect.
func (c *Costas) ExecutedSwap(cfg []int, i, j int) {
	n := c.n
	// Undo to the pre-swap view to remove the old pairs.
	cfg[i], cfg[j] = cfg[j], cfg[i]
	for q := 0; q < n; q++ {
		if q == i {
			continue
		}
		lo, hi := i, q
		if lo > hi {
			lo, hi = hi, lo
		}
		c.removePair(hi-lo-1, cfg[hi]-cfg[lo]+n-1, lo, hi)
	}
	for q := 0; q < n; q++ {
		if q == i || q == j {
			continue
		}
		lo, hi := j, q
		if lo > hi {
			lo, hi = hi, lo
		}
		c.removePair(hi-lo-1, cfg[hi]-cfg[lo]+n-1, lo, hi)
	}
	cfg[i], cfg[j] = cfg[j], cfg[i]
	for q := 0; q < n; q++ {
		if q == i {
			continue
		}
		lo, hi := i, q
		if lo > hi {
			lo, hi = hi, lo
		}
		c.addPair(hi-lo-1, cfg[hi]-cfg[lo]+n-1, lo, hi)
	}
	for q := 0; q < n; q++ {
		if q == i || q == j {
			continue
		}
		lo, hi := j, q
		if lo > hi {
			lo, hi = hi, lo
		}
		c.addPair(hi-lo-1, cfg[hi]-cfg[lo]+n-1, lo, hi)
	}
}

// LiveErrors implements core.MaintainedErrorVector: the vector is kept
// exact by Cost/ExecutedSwap, so frozen (no-move) iterations and moved
// iterations alike serve it with zero work.
func (c *Costas) LiveErrors(cfg []int) []int { return c.errVec }

// ErrorsOnVariables implements core.ErrorVector.
func (c *Costas) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, c.errVec)
}

// Tune implements core.Tuner. Costas landscapes reward frequent resets
// of a small magnitude (the settings follow the C benchmark's spirit).
func (c *Costas) Tune(o *core.Options) {
	o.FreezeLocMin = 1
	o.ResetLimit = 1
	o.ResetFraction = 0.05
	o.MaxIterations = int64(c.n) * 10_000
}

// Verify independently checks that cfg is a Costas array of order n.
func (c *Costas) Verify(cfg []int) bool {
	if len(cfg) != c.n {
		return false
	}
	seen := make([]bool, c.n)
	for _, v := range cfg {
		if v < 0 || v >= c.n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for d := 1; d < c.n; d++ {
		diffs := map[int]bool{}
		for i := 0; i+d < c.n; i++ {
			v := cfg[i+d] - cfg[i]
			if diffs[v] {
				return false
			}
			diffs[v] = true
		}
	}
	return true
}
