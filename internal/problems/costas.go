package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "costas",
		description: "Costas Array Problem: n marks, one per row/column, with all n(n-1)/2 displacement vectors distinct",
		defaultSize: 14,
		paperSize:   22,
		build:       func(n int) (core.Problem, error) { return NewCostas(n) },
	})
}

// Costas encodes the Costas Array Problem. The configuration is the
// permutation view of the array: cfg[i] is the row of the mark in
// column i. A Costas array requires that within every horizontal
// distance d (1 <= d < n) the differences cfg[i+d]-cfg[i] are pairwise
// distinct — equivalently, all displacement vectors between marks are
// distinct. The cost counts surplus equal differences per distance:
//
//	cost = Σ_d Σ_v max(0, occ_d(v) - 1)
//
// The encoding caches the (n-1) x (2n-1) difference-occurrence table;
// a swap touches the O(n) pairs involving the two swapped columns.
// This mirrors the error function of the Diaz et al. Costas study the
// paper cites as [4].
type Costas struct {
	n   int
	occ [][]int16 // occ[d-1][diff+n-1] for d in 1..n-1

	// errVec caches the per-column projected errors (the ErrorVector
	// fast path). A swap can flip the duplicated-ness of pairs that do
	// not involve the swapped columns (whenever an occurrence count
	// crosses the >1 threshold), so the cache is invalidated by
	// ExecutedSwap/Cost and rebuilt lazily in one half-matrix pass —
	// visiting each pair once instead of twice as the per-variable
	// CostOnVariable scan does, and serving frozen (no-move) iterations
	// for free.
	errVec   []int
	errValid bool
}

// NewCostas returns a Costas instance of order n; n must be >= 1.
// (Orders 32 and 33 are famously unsolvable, but no small order the
// solver is used on lacks solutions.)
func NewCostas(n int) (*Costas, error) {
	if n < 1 {
		return nil, fmt.Errorf("costas: order must be >= 1, got %d", n)
	}
	occ := make([][]int16, n-1)
	for d := range occ {
		occ[d] = make([]int16, 2*n-1)
	}
	return &Costas{n: n, occ: occ, errVec: make([]int, n)}, nil
}

var (
	_ core.SwapExecutor = (*Costas)(nil)
	_ core.ErrorVector  = (*Costas)(nil)
)

// Name implements core.Namer.
func (c *Costas) Name() string { return "costas" }

// Size implements core.Problem.
func (c *Costas) Size() int { return c.n }

// Cost implements core.Problem, rebuilding the difference table.
func (c *Costas) Cost(cfg []int) int {
	for d := range c.occ {
		row := c.occ[d]
		for v := range row {
			row[v] = 0
		}
	}
	cost := 0
	n := c.n
	for lo := 0; lo < n; lo++ {
		for hi := lo + 1; hi < n; hi++ {
			d := hi - lo - 1
			v := cfg[hi] - cfg[lo] + n - 1
			if c.occ[d][v] > 0 {
				cost++
			}
			c.occ[d][v]++
		}
	}
	c.errValid = false
	return cost
}

// CostOnVariable implements core.Problem: the number of duplicated
// displacement vectors involving column i.
func (c *Costas) CostOnVariable(cfg []int, i int) int {
	e := 0
	n := c.n
	for q := 0; q < n; q++ {
		if q == i {
			continue
		}
		lo, hi := i, q
		if lo > hi {
			lo, hi = hi, lo
		}
		if c.occ[hi-lo-1][cfg[hi]-cfg[lo]+n-1] > 1 {
			e++
		}
	}
	return e
}

// forEachAffectedPair visits every column pair involving i or j exactly
// once as (lo, hi) with lo < hi.
func (c *Costas) forEachAffectedPair(i, j int, f func(lo, hi int)) {
	for q := 0; q < c.n; q++ {
		if q == i {
			continue
		}
		if q < i {
			f(q, i)
		} else {
			f(i, q)
		}
	}
	for q := 0; q < c.n; q++ {
		if q == j || q == i {
			continue
		}
		if q < j {
			f(q, j)
		} else {
			f(j, q)
		}
	}
}

// CostIfSwap implements core.Problem by a remove/re-add pass over the
// O(n) affected pairs, rolled back before returning. Instances are
// single-goroutine (see package comment), so the transient mutation of
// the cached table is invisible to callers.
func (c *Costas) CostIfSwap(cfg []int, cost, i, j int) int {
	n := c.n
	// Remove the affected pairs' current differences.
	c.forEachAffectedPair(i, j, func(lo, hi int) {
		d, v := hi-lo-1, cfg[hi]-cfg[lo]+n-1
		if c.occ[d][v] > 1 {
			cost--
		}
		c.occ[d][v]--
	})
	cfg[i], cfg[j] = cfg[j], cfg[i]
	// Add the post-swap differences.
	c.forEachAffectedPair(i, j, func(lo, hi int) {
		d, v := hi-lo-1, cfg[hi]-cfg[lo]+n-1
		if c.occ[d][v] > 0 {
			cost++
		}
		c.occ[d][v]++
	})
	newCost := cost
	// Roll everything back.
	c.forEachAffectedPair(i, j, func(lo, hi int) {
		c.occ[hi-lo-1][cfg[hi]-cfg[lo]+n-1]--
	})
	cfg[i], cfg[j] = cfg[j], cfg[i]
	c.forEachAffectedPair(i, j, func(lo, hi int) {
		c.occ[hi-lo-1][cfg[hi]-cfg[lo]+n-1]++
	})
	return newCost
}

// ExecutedSwap implements core.SwapExecutor: cfg arrives already
// swapped; rebuild the table entries of the affected pairs.
func (c *Costas) ExecutedSwap(cfg []int, i, j int) {
	// Undo to the pre-swap view to remove the old differences.
	cfg[i], cfg[j] = cfg[j], cfg[i]
	c.forEachAffectedPair(i, j, func(lo, hi int) {
		c.occ[hi-lo-1][cfg[hi]-cfg[lo]+c.n-1]--
	})
	cfg[i], cfg[j] = cfg[j], cfg[i]
	c.forEachAffectedPair(i, j, func(lo, hi int) {
		c.occ[hi-lo-1][cfg[hi]-cfg[lo]+c.n-1]++
	})
	c.errValid = false
}

// ErrorsOnVariables implements core.ErrorVector. The vector is rebuilt
// lazily after an invalidating swap by one pass over the pair
// half-matrix; iterations that froze a variable instead of moving reuse
// the cached vector unchanged.
func (c *Costas) ErrorsOnVariables(cfg []int, out []int) {
	if !c.errValid {
		n := c.n
		for i := range c.errVec {
			c.errVec[i] = 0
		}
		// Walk distance by distance so each occurrence row is hoisted
		// out of the inner loop.
		for d1 := range c.occ {
			row := c.occ[d1]
			for lo, hi := 0, d1+1; hi < n; lo, hi = lo+1, hi+1 {
				if row[cfg[hi]-cfg[lo]+n-1] > 1 {
					c.errVec[lo]++
					c.errVec[hi]++
				}
			}
		}
		c.errValid = true
	}
	copy(out, c.errVec)
}

// Tune implements core.Tuner. Costas landscapes reward frequent resets
// of a small magnitude (the settings follow the C benchmark's spirit).
func (c *Costas) Tune(o *core.Options) {
	o.FreezeLocMin = 1
	o.ResetLimit = 1
	o.ResetFraction = 0.05
	o.MaxIterations = int64(c.n) * 10_000
}

// Verify independently checks that cfg is a Costas array of order n.
func (c *Costas) Verify(cfg []int) bool {
	if len(cfg) != c.n {
		return false
	}
	seen := make([]bool, c.n)
	for _, v := range cfg {
		if v < 0 || v >= c.n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for d := 1; d < c.n; d++ {
		diffs := map[int]bool{}
		for i := 0; i+d < c.n; i++ {
			v := cfg[i+d] - cfg[i]
			if diffs[v] {
				return false
			}
			diffs[v] = true
		}
	}
	return true
}
