package problems

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/rng"
)

// fixtures lists one small instance per benchmark plus the factory to
// build independent copies (the ground-truth oracle needs a second
// instance because encodings cache incremental state).
type fixture struct {
	name string
	make func(t *testing.T) core.Problem
}

func fixtures() []fixture {
	return []fixture{
		{"queens-12", mk(func() (core.Problem, error) { return NewQueens(12) })},
		{"magic-square-5", mk(func() (core.Problem, error) { return NewMagicSquare(5) })},
		{"all-interval-12", mk(func() (core.Problem, error) { return NewAllInterval(12) })},
		{"costas-9", mk(func() (core.Problem, error) { return NewCostas(9) })},
		{"langford-8", mk(func() (core.Problem, error) { return NewLangford(8) })},
		{"partition-16", mk(func() (core.Problem, error) { return NewPartition(16) })},
		{"alpha", mk(func() (core.Problem, error) { return NewAlpha() })},
		{"perfect-square-7", mk(func() (core.Problem, error) { return NewPerfectSquare(7) })},
		{"perfect-square-21", mk(func() (core.Problem, error) { return NewPerfectSquare(21) })},
	}
}

func mk(f func() (core.Problem, error)) func(t *testing.T) core.Problem {
	return func(t *testing.T) core.Problem {
		t.Helper()
		p, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

// verifier is the per-problem independent solution check.
type verifier interface{ Verify([]int) bool }

// TestCostIfSwapMatchesGroundTruth cross-validates every encoding's
// incremental CostIfSwap against a from-scratch Cost on the swapped
// configuration, over many random configurations and swap pairs.
func TestCostIfSwapMatchesGroundTruth(t *testing.T) {
	for _, fx := range fixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			oracle := fx.make(t)
			r := rng.New(42)
			n := p.Size()
			for trial := 0; trial < 60; trial++ {
				cfg := r.Perm(n)
				cost := p.Cost(cfg)
				i := r.Intn(n)
				j := r.Intn(n - 1)
				if j >= i {
					j++
				}
				got := p.CostIfSwap(cfg, cost, i, j)
				swapped := perm.Copy(cfg)
				swapped[i], swapped[j] = swapped[j], swapped[i]
				want := oracle.Cost(swapped)
				if got != want {
					t.Fatalf("trial %d: CostIfSwap(%v, i=%d, j=%d) = %d, ground truth = %d",
						trial, cfg, i, j, got, want)
				}
				// CostIfSwap must not corrupt cached state: the same
				// query must repeat identically.
				if again := p.CostIfSwap(cfg, cost, i, j); again != got {
					t.Fatalf("trial %d: CostIfSwap is not repeatable: %d then %d", trial, got, again)
				}
			}
		})
	}
}

// TestExecutedSwapKeepsStateConsistent walks a random swap sequence
// through each encoding, applying ExecutedSwap, and checks after every
// step that cached CostOnVariable and the running cost agree with a
// fresh instance.
func TestExecutedSwapKeepsStateConsistent(t *testing.T) {
	for _, fx := range fixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			oracle := fx.make(t)
			se, hasSwap := p.(core.SwapExecutor)
			if !hasSwap {
				t.Skipf("%s does not implement SwapExecutor", fx.name)
			}
			r := rng.New(7)
			n := p.Size()
			cfg := r.Perm(n)
			cost := p.Cost(cfg)
			for step := 0; step < 40; step++ {
				i := r.Intn(n)
				j := r.Intn(n - 1)
				if j >= i {
					j++
				}
				cost = p.CostIfSwap(cfg, cost, i, j)
				cfg[i], cfg[j] = cfg[j], cfg[i]
				se.ExecutedSwap(cfg, i, j)
				want := oracle.Cost(cfg)
				if cost != want {
					t.Fatalf("step %d: running cost %d diverged from ground truth %d", step, cost, want)
				}
				for v := 0; v < n; v++ {
					if got, want := p.CostOnVariable(cfg, v), oracle.CostOnVariable(cfg, v); got != want {
						t.Fatalf("step %d: CostOnVariable(%d) = %d, fresh instance says %d", step, v, got, want)
					}
				}
			}
		})
	}
}

// TestCostNonNegativeProperty checks costs are never negative across
// random configurations.
func TestCostNonNegativeProperty(t *testing.T) {
	for _, fx := range fixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			r := rng.New(11)
			for trial := 0; trial < 50; trial++ {
				cfg := r.Perm(p.Size())
				if c := p.Cost(cfg); c < 0 {
					t.Fatalf("negative cost %d for %v", c, cfg)
				}
			}
		})
	}
}

// TestZeroCostAgreesWithVerify: whenever the engine claims a solution,
// the independent verifier must agree (checked on solved benchmarks in
// TestSolveBenchmarks); here we check the converse on random configs —
// Verify=true implies Cost=0.
func TestZeroCostAgreesWithVerify(t *testing.T) {
	for _, fx := range fixtures() {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			p := fx.make(t)
			v, ok := p.(verifier)
			if !ok {
				t.Skip("no Verify")
			}
			r := rng.New(13)
			for trial := 0; trial < 40; trial++ {
				cfg := r.Perm(p.Size())
				if v.Verify(cfg) && p.Cost(cfg) != 0 {
					t.Fatalf("Verify accepted %v but cost = %d", cfg, p.Cost(cfg))
				}
			}
		})
	}
}

// TestSolveBenchmarks runs the full engine on a small instance of every
// benchmark and verifies the solutions independently. This is the
// integration test of engine + encodings.
func TestSolveBenchmarks(t *testing.T) {
	cases := []struct {
		name string
		make func(t *testing.T) core.Problem
	}{
		{"queens", mk(func() (core.Problem, error) { return NewQueens(30) })},
		{"magic-square", mk(func() (core.Problem, error) { return NewMagicSquare(5) })},
		{"all-interval", mk(func() (core.Problem, error) { return NewAllInterval(14) })},
		{"costas", mk(func() (core.Problem, error) { return NewCostas(10) })},
		{"langford", mk(func() (core.Problem, error) { return NewLangford(8) })},
		{"partition", mk(func() (core.Problem, error) { return NewPartition(16) })},
		{"perfect-square-synth", mk(func() (core.Problem, error) { return NewPerfectSquare(7) })},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := tc.make(t)
			opts := core.TunedOptions(p)
			opts.Seed = 2024
			res, err := core.Solve(context.Background(), p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("engine failed to solve: %v", res)
			}
			if v, ok := p.(verifier); ok && !v.Verify(res.Solution) {
				t.Fatalf("engine solution rejected by independent verifier: %v", res.Solution)
			}
		})
	}
}

// TestBouwkampOrderTilesPerfectly checks the decoder against the known
// Bouwkamp sequence: the identity permutation over the stored order must
// tile the 112x112 master exactly (cost 0).
func TestBouwkampOrderTilesPerfectly(t *testing.T) {
	p, err := NewPerfectSquare(21)
	if err != nil {
		t.Fatal(err)
	}
	id := perm.Identity(21)
	if c := p.Cost(id); c != 0 {
		t.Fatalf("Bouwkamp order decodes with cost %d, want 0", c)
	}
	if !p.Verify(id) {
		t.Fatal("Verify rejects the Bouwkamp order")
	}
}

// TestMoronOrderTilesPerfectly checks the rectangle decoder against
// Moroń's order-9 squared rectangle: the stored order must tile 33x32
// exactly.
func TestMoronOrderTilesPerfectly(t *testing.T) {
	p, err := NewPerfectSquare(9)
	if err != nil {
		t.Fatal(err)
	}
	id := perm.Identity(9)
	if c := p.Cost(id); c != 0 {
		t.Fatalf("Moron order decodes with cost %d, want 0", c)
	}
	if !p.Verify(id) {
		t.Fatal("Verify rejects the Moron order")
	}
}

func TestPerfectSquareRejectsBadInstances(t *testing.T) {
	if _, err := NewPerfectSquare(5); err == nil {
		t.Fatal("accepted size 5 (not 3k+1, not 21)")
	}
	if _, err := NewPerfectSquareInstance([]int{3, 3}, 5, 5); err == nil {
		t.Fatal("accepted instance with area mismatch")
	}
	if _, err := NewPerfectSquareInstance([]int{6}, 5, 5); err == nil {
		t.Fatal("accepted square larger than the master")
	}
	if _, err := NewPerfectSquareInstance([]int{0, 5}, 5, 5); err == nil {
		t.Fatal("accepted non-positive square size")
	}
	if _, err := NewPerfectSquareInstance([]int{2}, 0, 4); err == nil {
		t.Fatal("accepted non-positive master width")
	}
}

func TestSubdivisionInstancesAreSolvableByConstruction(t *testing.T) {
	for _, n := range []int{4, 7, 10, 13} {
		p, err := NewPerfectSquare(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.Size() != n {
			t.Fatalf("n=%d: got %d squares", n, p.Size())
		}
		area := 0
		for _, s := range p.Sizes() {
			area += s * s
		}
		w, h := p.Master()
		if area != w*h {
			t.Fatalf("n=%d: area %d != master area %d", n, area, w*h)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewQueens(0); err == nil {
		t.Error("queens accepted size 0")
	}
	if _, err := NewMagicSquare(2); err == nil {
		t.Error("magic-square accepted impossible side 2")
	}
	if _, err := NewMagicSquare(0); err == nil {
		t.Error("magic-square accepted side 0")
	}
	if _, err := NewAllInterval(1); err == nil {
		t.Error("all-interval accepted size 1")
	}
	if _, err := NewCostas(0); err == nil {
		t.Error("costas accepted order 0")
	}
	if _, err := NewLangford(5); err == nil {
		t.Error("langford accepted unsolvable n=5 (5 mod 4 == 1)")
	}
	if _, err := NewLangford(2); err == nil {
		t.Error("langford accepted n=2")
	}
	if _, err := NewPartition(12); err == nil {
		t.Error("partition accepted n=12 (not a multiple of 8)")
	}
	if _, err := NewPartition(4); err == nil {
		t.Error("partition accepted n=4")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"all-interval", "alpha", "costas", "langford", "magic-square", "partition", "perfect-square", "queens", "timetable"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for _, n := range names {
		info, err := Describe(n)
		if err != nil {
			t.Fatalf("Describe(%q): %v", n, err)
		}
		if info.DefaultSize <= 0 || info.PaperSize <= 0 || info.Description == "" {
			t.Fatalf("Describe(%q) incomplete: %+v", n, info)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("Describe accepted unknown name")
	}
	if _, err := New("nope", 5); err == nil {
		t.Fatal("New accepted unknown name")
	}
	p, err := New("queens", 0) // default size
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 100 {
		t.Fatalf("default queens size = %d, want 100", p.Size())
	}
}

func TestFactoryInstancesAreIndependent(t *testing.T) {
	f, err := NewFactory("costas", 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := f()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	cfgA := r.Perm(8)
	cfgB := r.Perm(8)
	costA := a.Cost(cfgA)
	_ = b.Cost(cfgB) // mutates b's cache only
	if again := a.Cost(cfgA); again != costA {
		t.Fatalf("sibling instance state leaked: %d then %d", costA, again)
	}
	if _, err := NewFactory("nope", 1); err == nil {
		t.Fatal("NewFactory accepted unknown name")
	}
	if _, err := NewFactory("langford", 5); err == nil {
		t.Fatal("NewFactory did not validate size eagerly")
	}
}

func TestNamersAndAccessors(t *testing.T) {
	for _, fx := range fixtures() {
		p := fx.make(t)
		if nm, ok := p.(core.Namer); ok {
			if nm.Name() == "" {
				t.Errorf("%s: empty Name()", fx.name)
			}
		} else {
			t.Errorf("%s: does not implement Namer", fx.name)
		}
	}
	ms, _ := NewMagicSquare(5)
	if ms.Side() != 5 || ms.Size() != 25 {
		t.Error("magic-square accessors wrong")
	}
	lf, _ := NewLangford(8)
	if lf.Values() != 8 || lf.Size() != 16 {
		t.Error("langford accessors wrong")
	}
	ps, _ := NewPerfectSquare(21)
	if pw, ph := ps.Master(); pw != 112 || ph != 112 || len(ps.Sizes()) != 21 {
		t.Error("perfect-square accessors wrong")
	}
}

func TestAlphaLetters(t *testing.T) {
	a, err := NewAlpha()
	if err != nil {
		t.Fatal(err)
	}
	s := a.Letters(perm.Identity(26))
	if !strings.HasPrefix(s, "a=1 b=2") || !strings.Contains(s, "z=26") {
		t.Fatalf("unexpected Letters output: %q", s)
	}
}

func TestAlphaRejectsBadWords(t *testing.T) {
	if _, err := NewAlphaFromEquations(map[string]int{"bad word": 3}); err == nil {
		t.Fatal("accepted word with space")
	}
	if _, err := NewAlphaFromEquations(map[string]int{"": 3}); err == nil {
		t.Fatal("accepted empty word")
	}
}

// TestSyntheticAlphaSolvable builds a word-sum instance from a known
// assignment, guaranteeing satisfiability, and solves it.
func TestSyntheticAlphaSolvable(t *testing.T) {
	// Ground-truth assignment: letter i has value i+1 reversed. Twenty
	// equations (like the classic instance) keep the constraint graph
	// dense enough for the exhaustive engine to solve in well under a
	// second; a sparser set was measured ~100x slower.
	val := func(r rune) int { return 26 - int(r-'a') }
	words := []string{
		"go", "parallel", "search", "adaptive", "costas", "walk",
		"speedup", "cluster", "bench", "quartz", "fjord", "vex", "my",
		"jukebox", "wavy", "fizz", "hymn", "croquet", "blimp", "dozen",
	}
	eqs := map[string]int{}
	for _, w := range words {
		s := 0
		for _, r := range w {
			s += val(r)
		}
		eqs[w] = s
	}
	a, err := NewAlphaFromEquations(eqs)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.TunedOptions(a)
	opts.Seed = 5
	res, err := core.Solve(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("synthetic alpha unsolved: %v", res)
	}
}
