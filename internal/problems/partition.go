package problems

import (
	"fmt"

	"repro/internal/core"
)

func init() {
	register(builder{
		name:        "partition",
		description: "Number partitioning: split 1..n into two halves with equal sums and equal sums of squares (CSPLib prob049 flavour)",
		defaultSize: 64,
		paperSize:   2600,
		build:       func(n int) (core.Problem, error) { return NewPartition(n) },
	})
}

// Partition encodes the numbers benchmark of the C library ("partit"):
// split {1..n} into two sets of n/2 numbers such that both sets have the
// same sum and the same sum of squares. The configuration is a
// permutation of [0, n); positions 0..n/2-1 form set A (value at
// position i is cfg[i]+1). The cost is |sumA - S/2| + |sqA - Q/2| where
// S and Q are the total sum and sum of squares. Swaps within a half are
// cost-neutral; swaps across halves have O(1) deltas.
type Partition struct {
	n         int
	half      int
	targetSum int
	targetSq  int
	sumA, sqA int // cached first-half aggregates

	// errVec caches the per-position projected errors. An entry depends
	// only on the position's half, its value and the *signs* of the two
	// aggregate deviations, so a swap that leaves both signs unchanged
	// touches only the two swapped entries; a sign flip invalidates the
	// vector for a lazy O(n) rebuild (no worse than the per-variable
	// scan it replaces, and rare once the search settles near balance).
	errVec        []int
	errValid      bool
	sgnSum, sgnSq int // signs of sumA-targetSum / sqA-targetSq at the last rebuild
}

// NewPartition returns an instance for n numbers. Solutions require n a
// multiple of 8 (so that both targets are integral and a partition
// exists); other n are rejected.
func NewPartition(n int) (*Partition, error) {
	if n < 8 {
		return nil, fmt.Errorf("partition: n must be >= 8, got %d", n)
	}
	if n%8 != 0 {
		return nil, fmt.Errorf("partition: n must be a multiple of 8, got %d (otherwise no equal-sum/equal-squares split exists)", n)
	}
	s := n * (n + 1) / 2
	q := n * (n + 1) * (2*n + 1) / 6
	return &Partition{
		n:         n,
		half:      n / 2,
		targetSum: s / 2,
		targetSq:  q / 2,
		errVec:    make([]int, n),
	}, nil
}

var (
	_ core.SwapExecutor          = (*Partition)(nil)
	_ core.MaintainedErrorVector = (*Partition)(nil)
	_ core.MoveEvaluator         = (*Partition)(nil)
)

// sign returns -1, 0 or 1.
func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// Name implements core.Namer.
func (p *Partition) Name() string { return "partition" }

// Size implements core.Problem.
func (p *Partition) Size() int { return p.n }

// Cost implements core.Problem, rebuilding the first-half aggregates.
func (p *Partition) Cost(cfg []int) int {
	sum, sq := 0, 0
	for i := 0; i < p.half; i++ {
		v := cfg[i] + 1
		sum += v
		sq += v * v
	}
	p.sumA, p.sqA = sum, sq
	p.errValid = false
	return abs(sum-p.targetSum) + abs(sq-p.targetSq)
}

// CostOnVariable implements core.Problem. The error projected on a
// position is the pressure to move its value to the other half: values
// that enlarge their half's surplus get errors proportional to their
// magnitude, so the engine targets big offenders first.
func (p *Partition) CostOnVariable(cfg []int, i int) int {
	ds := p.sumA - p.targetSum // >0 when A is over-full
	dq := p.sqA - p.targetSq
	v := cfg[i] + 1
	inA := i < p.half
	e := 0
	if (inA && ds > 0) || (!inA && ds < 0) {
		e += v
	}
	if (inA && dq > 0) || (!inA && dq < 0) {
		e += v * v / p.n // scale squares down to the values' magnitude
	}
	return e
}

// CostIfSwap implements core.Problem: only cross-half swaps change the
// aggregates.
func (p *Partition) CostIfSwap(cfg []int, cost, i, j int) int {
	iInA, jInA := i < p.half, j < p.half
	if iInA == jInA {
		return cost
	}
	if !iInA {
		i, j = j, i // ensure i in A, j in B
	}
	vi, vj := cfg[i]+1, cfg[j]+1
	sum := p.sumA - vi + vj
	sq := p.sqA - vi*vi + vj*vj
	return abs(sum-p.targetSum) + abs(sq-p.targetSq)
}

// ExecutedSwap implements core.SwapExecutor. The cached error vector is
// delta-maintained: an in-half swap only exchanges two values, and a
// cross-half swap that leaves both aggregate-deviation signs unchanged
// perturbs only the two swapped entries; a sign flip schedules a lazy
// full rebuild.
func (p *Partition) ExecutedSwap(cfg []int, i, j int) {
	iInA, jInA := i < p.half, j < p.half
	if iInA == jInA {
		if p.errValid {
			p.errVec[i] = p.CostOnVariable(cfg, i)
			p.errVec[j] = p.CostOnVariable(cfg, j)
		}
		return
	}
	if !iInA {
		i, j = j, i
	}
	// cfg is already swapped: position i now holds the value that moved
	// into A, and j the value that left A.
	vIn, vOut := cfg[i]+1, cfg[j]+1
	p.sumA += vIn - vOut
	p.sqA += vIn*vIn - vOut*vOut
	if p.errValid {
		if sign(p.sumA-p.targetSum) != p.sgnSum || sign(p.sqA-p.targetSq) != p.sgnSq {
			p.errValid = false
		} else {
			p.errVec[i] = p.CostOnVariable(cfg, i)
			p.errVec[j] = p.CostOnVariable(cfg, j)
		}
	}
}

// CostsIfSwapAll implements core.MoveEvaluator. Position i's half and
// value are hoisted; same-half candidates are cost-neutral by
// construction and cross-half candidates cost O(1) arithmetic.
func (p *Partition) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	iInA := i < p.half
	vi := cfg[i] + 1
	for j, raw := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		if (j < p.half) == iInA {
			out[j] = cost
			continue
		}
		vj := raw + 1
		var sum, sq int
		if iInA {
			sum = p.sumA - vi + vj
			sq = p.sqA - vi*vi + vj*vj
		} else {
			sum = p.sumA - vj + vi
			sq = p.sqA - vj*vj + vi*vi
		}
		out[j] = abs(sum-p.targetSum) + abs(sq-p.targetSq)
	}
}

// LiveErrors implements core.MaintainedErrorVector, rebuilding the
// vector lazily after a full Cost recompute or a sign flip.
func (p *Partition) LiveErrors(cfg []int) []int {
	if !p.errValid {
		for k := range p.errVec {
			p.errVec[k] = p.CostOnVariable(cfg, k)
		}
		p.sgnSum = sign(p.sumA - p.targetSum)
		p.sgnSq = sign(p.sqA - p.targetSq)
		p.errValid = true
	}
	return p.errVec
}

// ErrorsOnVariables implements core.ErrorVector.
func (p *Partition) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, p.LiveErrors(cfg))
}

// Tune implements core.Tuner: partition landscapes are dominated by
// plateaus; the C benchmark runs with a strong probabilistic escape and
// tiny resets.
func (p *Partition) Tune(o *core.Options) {
	o.ProbSelectLocMin = 0.8
	o.FreezeLocMin = 1
	o.ResetLimit = 2
	o.ResetFraction = 0.05
	o.MaxIterations = int64(p.n) * 2_000
}

// Verify independently checks that cfg is a valid equal-sum/equal-
// squares split.
func (p *Partition) Verify(cfg []int) bool {
	if len(cfg) != p.n {
		return false
	}
	seen := make([]bool, p.n)
	for _, v := range cfg {
		if v < 0 || v >= p.n || seen[v] {
			return false
		}
		seen[v] = true
	}
	sum, sq := 0, 0
	for i := 0; i < p.half; i++ {
		v := cfg[i] + 1
		sum += v
		sq += v * v
	}
	return sum == p.targetSum && sq == p.targetSq
}
