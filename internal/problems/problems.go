// Package problems provides the CSP benchmark encodings used in the
// PPoPP 2012 parallel Adaptive Search study and in the original C
// library it builds on:
//
//   - all-interval  (CSPLib prob007)  — used in the paper's Figs. 1–2
//   - perfect-square (CSPLib prob009) — used in the paper's Figs. 1–2
//   - magic-square  (CSPLib prob019)  — used in the paper's Figs. 1–2
//   - costas         (Costas Array Problem) — the paper's Fig. 3
//
// plus the remaining benchmarks shipped with the C Adaptive Search
// distribution (queens, alpha, langford, partition), which round out the
// library for downstream users and appear in the extended experiments.
//
// Every encoding implements core.Problem; the ones with cheap
// incremental deltas also implement core.SwapExecutor, mirroring the
// Cost_If_Swap / Executed_Swap structure of the C code. Encodings that
// maintain cached state are NOT safe for concurrent use: the multi-walk
// engine constructs one instance per walker via the Factory type.
package problems

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Factory builds a fresh, independent Problem instance. Multi-walk
// execution requires one instance per walker because encodings cache
// incremental state.
type Factory func() (core.Problem, error)

// ErrBadParams marks a construction request with unknown or invalid
// problem parameters (the params map of finite-domain benchmarks).
// Callers match it with errors.Is; the service layer maps it onto its
// own typed bad-request error.
var ErrBadParams = errors.New("problems: invalid problem parameters")

// builder couples a constructor validating its size parameter with
// registry metadata.
type builder struct {
	name        string
	description string
	defaultSize int
	paperSize   int // instance size used in the paper's experiments
	build       func(n int) (core.Problem, error)
	// buildParams, when non-nil, is the params-aware constructor used by
	// finite-domain benchmarks (build must then wrap it with nil
	// params). Benchmarks without it reject any non-empty params map.
	buildParams func(n int, params map[string]int) (core.Problem, error)
}

// registry holds all known benchmark encodings, keyed by name.
var registry = map[string]builder{}

func register(b builder) {
	if _, dup := registry[b.name]; dup {
		panic("problems: duplicate registration of " + b.name)
	}
	registry[b.name] = b
}

// Names returns the sorted list of registered benchmark names.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info describes a registered benchmark.
type Info struct {
	Name        string
	Description string
	// DefaultSize is the laptop-scale instance parameter used by the
	// experiment harness; PaperSize is the size the paper ran on its
	// clusters (see DESIGN.md §2 for the scaling substitution).
	DefaultSize int
	PaperSize   int
}

// Describe returns metadata for a registered benchmark name.
func Describe(name string) (Info, error) {
	b, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("problems: unknown benchmark %q (known: %v)", name, Names())
	}
	return Info{Name: b.name, Description: b.description, DefaultSize: b.defaultSize, PaperSize: b.paperSize}, nil
}

// New constructs a single instance of the named benchmark with the given
// size parameter. size <= 0 selects the benchmark's default size.
func New(name string, size int) (core.Problem, error) {
	return NewWithParams(name, size, nil)
}

// NewWithParams constructs a single instance of the named benchmark
// with the given size and additional problem parameters (the
// finite-domain benchmarks' knobs, e.g. timetable's slots/rooms/
// teachers). A nil or empty map selects the benchmark's defaults;
// benchmarks that take no parameters reject a non-empty map with an
// error wrapping ErrBadParams.
func NewWithParams(name string, size int, params map[string]int) (core.Problem, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("problems: unknown benchmark %q (known: %v)", name, Names())
	}
	if size <= 0 {
		size = b.defaultSize
	}
	if b.buildParams != nil {
		return b.buildParams(size, params)
	}
	if len(params) > 0 {
		return nil, fmt.Errorf("%w: benchmark %q takes no parameters", ErrBadParams, name)
	}
	return b.build(size)
}

// NewFactory returns a Factory producing fresh instances of the named
// benchmark; the size parameter is validated once, eagerly.
func NewFactory(name string, size int) (Factory, error) {
	return NewFactoryParams(name, size, nil)
}

// NewFactoryParams is the params-aware NewFactory: size and params are
// validated once, eagerly, and every Factory call builds a fresh
// instance with the same settings.
func NewFactoryParams(name string, size int, params map[string]int) (Factory, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("problems: unknown benchmark %q (known: %v)", name, Names())
	}
	if size <= 0 {
		size = b.defaultSize
	}
	if _, err := NewWithParams(name, size, params); err != nil {
		return nil, err
	}
	n := size
	return func() (core.Problem, error) { return NewWithParams(name, n, params) }, nil
}

// abs is the integer absolute value used throughout the encodings.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
