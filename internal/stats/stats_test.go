package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustSample(t *testing.T, xs ...float64) *Sample {
	t.Helper()
	s, err := New(xs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := New([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := New([]float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
	if _, err := New([]float64{-1}); err == nil {
		t.Error("negative accepted")
	}
}

func TestNewCopiesInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := mustSample(t, xs...)
	xs[0] = 99
	if s.Max() == 99 {
		t.Fatal("Sample aliases caller slice")
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("unexpected min/max: %v %v", s.Min(), s.Max())
	}
}

func TestFromInts(t *testing.T) {
	s, err := FromInts([]int64{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("FromInts wrong: n=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
}

func TestBasicMoments(t *testing.T) {
	s := mustSample(t, 2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, 32.0/7)
	}
	if got := s.Median(); got != 4.5 {
		t.Errorf("Median = %v, want 4.5", got)
	}
	one := mustSample(t, 3)
	if one.Var() != 0 || one.Std() != 0 {
		t.Error("single-observation variance must be 0")
	}
}

func TestQuantile(t *testing.T) {
	s := mustSample(t, 1, 2, 3, 4, 5)
	cases := []struct{ q, want float64 }{
		{-1, 1}, {0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {2, 5},
		{0.1, 1.4},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestECDF(t *testing.T) {
	s := mustSample(t, 3, 1, 2)
	xs, ps := s.ECDF()
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("ECDF xs = %v", xs)
	}
	if ps[0] <= 0 || ps[2] != 1 {
		t.Fatalf("ECDF ps = %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatal("ECDF not strictly increasing")
		}
	}
}

func TestExpectedMinSmallCases(t *testing.T) {
	s := mustSample(t, 1, 2, 3, 4, 5)
	em1, err := s.ExpectedMin(1)
	if err != nil || math.Abs(em1-3) > 1e-12 {
		t.Fatalf("E[min_1] = %v (%v), want mean 3", em1, err)
	}
	em2, _ := s.ExpectedMin(2)
	if math.Abs(em2-2.0) > 1e-12 {
		t.Fatalf("E[min_2] = %v, want 2.0", em2)
	}
	em5, _ := s.ExpectedMin(5)
	if em5 != 1 {
		t.Fatalf("E[min_n] = %v, want the minimum 1", em5)
	}
	em9, _ := s.ExpectedMin(9) // k > n degenerates to the minimum
	if em9 != 1 {
		t.Fatalf("E[min_{k>n}] = %v, want 1", em9)
	}
	if _, err := s.ExpectedMin(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestExpectedMinMatchesBruteForce enumerates all k-subsets for small
// samples and compares the closed-form estimator against the exact
// subset average.
func TestExpectedMinMatchesBruteForce(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = math.Floor(r.Float64() * 100)
	}
	s := mustSample(t, xs...)
	for k := 1; k <= 10; k++ {
		want := bruteForceMinMean(s.xs, k)
		got, err := s.ExpectedMin(k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d: ExpectedMin = %v, brute force = %v", k, got, want)
		}
	}
}

// bruteForceMinMean averages min(S) over all k-subsets of xs.
func bruteForceMinMean(xs []float64, k int) float64 {
	n := len(xs)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	total, count := 0.0, 0
	for {
		m := math.Inf(1)
		for _, i := range idx {
			if xs[i] < m {
				m = xs[i]
			}
		}
		total += m
		count++
		// next combination
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return total / float64(count)
}

func TestExpectedMinMonteCarloAgrees(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 100
	}
	s := mustSample(t, xs...)
	for _, k := range []int{2, 8, 32} {
		exact, _ := s.ExpectedMin(k)
		mc, err := s.MonteCarloMin(k, 20000, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-mc)/exact > 0.1 {
			t.Fatalf("k=%d: exact %v vs Monte Carlo %v differ by >10%%", k, exact, mc)
		}
	}
	if _, err := s.MonteCarloMin(0, 10, r); err == nil {
		t.Fatal("MonteCarloMin k=0 accepted")
	}
}

func TestSpeedupMonotone(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 10 + r.ExpFloat64()*90
	}
	s := mustSample(t, xs...)
	prev := 0.0
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		sp, err := s.Speedup(k)
		if err != nil {
			t.Fatal(err)
		}
		if sp < prev {
			t.Fatalf("speedup not monotone at k=%d: %v < %v", k, sp, prev)
		}
		prev = sp
	}
	sp1, _ := s.Speedup(1)
	if math.Abs(sp1-1) > 1e-12 {
		t.Fatalf("Speedup(1) = %v, want 1", sp1)
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	s := mustSample(t, 0, 0, 0)
	if _, err := s.Speedup(2); err == nil {
		t.Fatal("degenerate all-zero sample accepted")
	}
}

// TestExponentialSpeedupNearIdeal is the statistical heart of Fig. 3:
// exponential runtimes give speedup(k) ~ k.
func TestExponentialSpeedupNearIdeal(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 1000
	}
	s := mustSample(t, xs...)
	for _, k := range []int{2, 4, 8, 16} {
		sp, _ := s.Speedup(k)
		if math.Abs(sp-float64(k))/float64(k) > 0.15 {
			t.Fatalf("exponential speedup at k=%d is %v, want ~%d", k, sp, k)
		}
	}
}

// TestShiftedSpeedupSaturates is the heart of Figs. 1-2: a runtime
// floor caps the speedup at mean/shift.
func TestShiftedSpeedupSaturates(t *testing.T) {
	r := rng.New(4)
	const shift, scale = 100.0, 100.0
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = shift + r.ExpFloat64()*scale
	}
	s := mustSample(t, xs...)
	sp64, _ := s.Speedup(64)
	sp128, _ := s.Speedup(128)
	// Saturation limit = (shift+scale)/shift = 2.
	if sp64 > 2.1 || sp128 > 2.1 {
		t.Fatalf("speedup exceeded saturation limit: %v %v", sp64, sp128)
	}
	if sp64 < 1.6 {
		t.Fatalf("speedup at 64 cores = %v, expected close to the limit 2", sp64)
	}
	if sp128 < sp64 {
		t.Fatalf("speedup decreased: %v -> %v", sp64, sp128)
	}
}

func TestFitShiftedExp(t *testing.T) {
	r := rng.New(6)
	const shift, scale = 500.0, 250.0
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = shift + r.ExpFloat64()*scale
	}
	s := mustSample(t, xs...)
	m := FitShiftedExp(s)
	if math.Abs(m.Shift-shift)/shift > 0.05 {
		t.Fatalf("fitted shift %v, want ~%v", m.Shift, shift)
	}
	if math.Abs(m.Scale-scale)/scale > 0.05 {
		t.Fatalf("fitted scale %v, want ~%v", m.Scale, scale)
	}
	// Saturation = (shift+scale)/shift = 750/500 = 1.5.
	if sat := m.SaturationSpeedup(); math.Abs(sat-1.5) > 0.1 {
		t.Fatalf("saturation speedup %v, want ~1.5", sat)
	}
}

func TestFitShiftedExpPureExponential(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 800
	}
	s := mustSample(t, xs...)
	m := FitShiftedExp(s)
	if m.Shift > 0.05*m.Mean() {
		t.Fatalf("pure exponential fitted with shift %v (mean %v)", m.Shift, m.Mean())
	}
	if !math.IsInf(ShiftedExp{Shift: 0, Scale: 1}.SaturationSpeedup(), 1) {
		t.Fatal("zero-shift saturation should be +Inf")
	}
	// Model speedup ~ k for small shift.
	if sp := m.Speedup(64); sp < 40 {
		t.Fatalf("near-exponential model speedup at 64 = %v, want ~64", sp)
	}
}

func TestFitShiftedExpDegenerate(t *testing.T) {
	s := mustSample(t, 5)
	m := FitShiftedExp(s)
	if m.Shift != 5 || m.Scale != 0 {
		t.Fatalf("single-point fit: %+v", m)
	}
	if m.ExpectedMin(10) != 5 {
		t.Fatal("deterministic model must have constant min")
	}
}

func TestCVDiagnostic(t *testing.T) {
	r := rng.New(8)
	exp := make([]float64, 3000)
	shifted := make([]float64, 3000)
	for i := range exp {
		exp[i] = r.ExpFloat64() * 100
		shifted[i] = 300 + r.ExpFloat64()*100
	}
	se := mustSample(t, exp...)
	ss := mustSample(t, shifted...)
	if cv := se.CV(); math.Abs(cv-1) > 0.1 {
		t.Fatalf("exponential CV = %v, want ~1", cv)
	}
	if cv := ss.CV(); cv > 0.5 {
		t.Fatalf("shifted CV = %v, want well below 1", cv)
	}
	zero := mustSample(t, 0, 0)
	if zero.CV() != 0 {
		t.Fatal("all-zero CV should be 0")
	}
}

func TestQQExponentialR2(t *testing.T) {
	r := rng.New(10)
	exp := make([]float64, 2000)
	bimodal := make([]float64, 2000)
	for i := range exp {
		exp[i] = r.ExpFloat64() * 50
		if i%2 == 0 {
			bimodal[i] = 10 + r.Float64()
		} else {
			bimodal[i] = 1000 + r.Float64()
		}
	}
	se := mustSample(t, exp...)
	sb := mustSample(t, bimodal...)
	if got := se.QQExponentialR2(); got < 0.98 {
		t.Fatalf("exponential QQ R2 = %v, want > 0.98", got)
	}
	if got := sb.QQExponentialR2(); got > 0.9 {
		t.Fatalf("bimodal QQ R2 = %v, want < 0.9", got)
	}
	tiny := mustSample(t, 1, 2)
	if tiny.QQExponentialR2() != 0 {
		t.Fatal("n<3 QQ R2 should be 0")
	}
}

func TestBootstrap(t *testing.T) {
	r := rng.New(11)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 50 + r.ExpFloat64()*10
	}
	s := mustSample(t, xs...)
	mean := s.Mean()
	lo, hi, err := s.Bootstrap(func(b *Sample) float64 { return b.Mean() }, 500, 0.95, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if lo > mean || hi < mean {
		t.Fatalf("bootstrap CI [%v, %v] excludes the point estimate %v", lo, hi, mean)
	}
	if hi <= lo {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if _, _, err := s.Bootstrap(func(b *Sample) float64 { return 0 }, 5, 0.95, r); err == nil {
		t.Fatal("iters<10 accepted")
	}
	if _, _, err := s.Bootstrap(func(b *Sample) float64 { return 0 }, 100, 1.5, r); err == nil {
		t.Fatal("conf>1 accepted")
	}
}

// TestBootstrapPercentileRanks replays the resampling loop with the
// same deterministic seed and pins both CI endpoints to the symmetric
// order-statistic ranks floor(alpha*iters) and ceil((1-alpha)*iters)-1.
// The pre-fix code selected int((1-alpha)*iters) for the upper endpoint
// — one rank too high (index 975 of 1000 for a 95% interval) — which
// this test rejects.
func TestBootstrapPercentileRanks(t *testing.T) {
	base := rng.New(7)
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = base.ExpFloat64() * 100
	}
	s := mustSample(t, xs...)

	const iters = 1000
	const conf = 0.95
	const seed = 42
	lo, hi, err := s.Bootstrap(func(b *Sample) float64 { return b.Mean() }, iters, conf, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}

	// Replay the exact resampling sequence to recover the sorted
	// bootstrap distribution Bootstrap drew from.
	r := rng.New(seed)
	n := s.N()
	vals := make([]float64, iters)
	buf := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range buf {
			buf[i] = s.xs[r.Intn(n)]
		}
		bs, err := New(buf)
		if err != nil {
			t.Fatal(err)
		}
		vals[it] = bs.Mean()
	}
	sort.Float64s(vals)

	// alpha = 0.025: 25 values below the lower endpoint, 25 above the
	// upper one.
	wantLo, wantHi := vals[25], vals[974]
	if lo != wantLo {
		t.Errorf("lower endpoint = %v, want vals[25] = %v", lo, wantLo)
	}
	if hi != wantHi {
		t.Errorf("upper endpoint = %v, want vals[974] = %v (pre-fix code returns vals[975] = %v)", hi, wantHi, vals[975])
	}
	if below, above := rankCount(vals, lo, hi); below != 25 || above != 25 {
		t.Errorf("asymmetric interval: %d values below lo, %d above hi", below, above)
	}
}

// rankCount counts bootstrap values strictly below lo and strictly
// above hi.
func rankCount(vals []float64, lo, hi float64) (below, above int) {
	for _, v := range vals {
		if v < lo {
			below++
		}
		if v > hi {
			above++
		}
	}
	return below, above
}

func TestLogLogSlope(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x // slope 2, intercept log(3)
	}
	slope, intercept, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-9 {
		t.Fatalf("slope = %v, want 2", slope)
	}
	if math.Abs(intercept-math.Log(3)) > 1e-9 {
		t.Fatalf("intercept = %v, want log 3", intercept)
	}
	if _, _, err := LogLogSlope([]float64{1}, []float64{1}); err == nil {
		t.Fatal("short series accepted")
	}
	if _, _, err := LogLogSlope([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("negative x accepted")
	}
	if _, _, err := LogLogSlope([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Fatal("constant x accepted")
	}
}

// TestExpectedMinScaleInvariance: Ê[min_k] is linear in the data.
func TestExpectedMinScaleInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		s1, _ := New(xs)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = 3 * xs[i]
		}
		s3, _ := New(scaled)
		a, _ := s1.ExpectedMin(7)
		b, _ := s3.ExpectedMin(7)
		return math.Abs(3*a-b) < 1e-9*(1+math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestExpectedMinInvariants: Ê[min_k] is nonincreasing in k, bounded
// below by the sample minimum, and speedup is always >= 1. (Note that
// speedup <= k is NOT an invariant: bimodal runtime distributions give
// superlinear expected speedup, a classic result of the restart
// literature that the multi-walk scheme inherits.)
func TestExpectedMinInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = 1 + r.Float64()*1000
		}
		s, _ := New(xs)
		prev := math.Inf(1)
		for _, k := range []int{1, 2, 5, 13, 59} {
			em, err := s.ExpectedMin(k)
			if err != nil || em > prev+1e-9 || em < s.Min()-1e-9 {
				return false
			}
			sp, err := s.Speedup(k)
			if err != nil || sp < 1-1e-9 {
				return false
			}
			prev = em
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSuperlinearSpeedupPossible documents the bimodal counterexample:
// a 90%-fast / 10%-slow mixture yields speedup above k.
func TestSuperlinearSpeedupPossible(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		if i < 90 {
			xs[i] = 1
		} else {
			xs[i] = 10000
		}
	}
	s := mustSample(t, xs...)
	sp, err := s.Speedup(2)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 2 {
		t.Fatalf("bimodal speedup at k=2 is %v, expected superlinear (> 2)", sp)
	}
}
