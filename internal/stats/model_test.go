package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestShiftedExpClosedForm pins the predictor's closed-form arithmetic
// to hand-computed values: T = 2 + Exp(mean 6) has E[min_k] = 2 + 6/k,
// so speedup(k) = 8/(2+6/k), saturating at 4.
func TestShiftedExpClosedForm(t *testing.T) {
	m := ShiftedExp{Shift: 2, Scale: 6}
	cases := []struct {
		k       int
		wantMin float64
		wantSpd float64
	}{
		{1, 8, 1},
		{2, 5, 1.6},
		{3, 4, 2},
		{4, 3.5, 8.0 / 3.5},
		{8, 2.75, 8.0 / 2.75},
	}
	for _, c := range cases {
		if got := m.ExpectedMin(c.k); math.Abs(got-c.wantMin) > 1e-12 {
			t.Errorf("ExpectedMin(%d) = %v, want %v", c.k, got, c.wantMin)
		}
		if got := m.Speedup(c.k); math.Abs(got-c.wantSpd) > 1e-12 {
			t.Errorf("Speedup(%d) = %v, want %v", c.k, got, c.wantSpd)
		}
	}
	if got := m.SaturationSpeedup(); math.Abs(got-4) > 1e-12 {
		t.Errorf("SaturationSpeedup = %v, want 4", got)
	}
	// Median of Exp(6)+2 is 2 + 6*ln 2.
	if got, want := m.Quantile(0.5), 2+6*math.Log(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	// P95 of the min of 4 draws: min_4 ~ 2 + Exp(6/4).
	want := 2 + 1.5*math.Log(20)
	f := Fit{Family: FamilyShiftedExp, Exp: m}
	if got := f.MinQuantile(4, 0.95); math.Abs(got-want) > 1e-9 {
		t.Errorf("MinQuantile(4, 0.95) = %v, want %v", got, want)
	}
	if got := f.RuntimeFloor(); got != 2 {
		t.Errorf("RuntimeFloor = %v, want 2", got)
	}
}

// TestLogNormalMoments pins the lognormal model against its closed
// forms where they exist and against Monte Carlo where they do not.
func TestLogNormalMoments(t *testing.T) {
	m := LogNormal{Mu: 3, Sigma: 0.8}
	if got, want := m.Mean(), math.Exp(3+0.32); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := m.Quantile(0.5), math.Exp(3.0); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("median = %v, want %v", got, want)
	}
	// E[min_1] must agree with the closed-form mean through the k<=1
	// fast path AND the numeric integral must agree when forced.
	if got, want := m.ExpectedMin(1), m.Mean(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("ExpectedMin(1) = %v, want mean %v", got, want)
	}
	// CDF/Quantile are inverses.
	for _, p := range []float64{0.05, 0.5, 0.95, 0.999} {
		if got := m.CDF(m.Quantile(p)); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	// E[min_k] against Monte Carlo for k in {2, 4, 8}.
	r := rng.New(7)
	const draws = 400_000
	for _, k := range []int{2, 4, 8} {
		var sum float64
		for i := 0; i < draws; i++ {
			m1 := math.Inf(1)
			for j := 0; j < k; j++ {
				x := math.Exp(3 + 0.8*r.NormFloat64())
				if x < m1 {
					m1 = x
				}
			}
			sum += m1
		}
		mc := sum / draws
		got := m.ExpectedMin(k)
		if math.Abs(got-mc)/mc > 0.02 {
			t.Errorf("ExpectedMin(%d) = %v, Monte Carlo %v (diff > 2%%)", k, got, mc)
		}
		if spd := m.Speedup(k); spd <= 1 || spd > float64(k) {
			t.Errorf("Speedup(%d) = %v outside (1, k]", k, spd)
		}
	}
}

// TestFitShiftedExpRoundTrip draws a large sample from a known shifted
// exponential and requires the moment fit to recover its parameters
// within tolerance — the round-trip that justifies trusting fitted
// parameters from calibration data.
func TestFitShiftedExpRoundTrip(t *testing.T) {
	const (
		shift = 500.0
		scale = 2500.0
		n     = 4000
	)
	r := rng.New(42)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = shift + scale*r.ExpFloat64()
	}
	s, err := New(xs)
	if err != nil {
		t.Fatal(err)
	}
	m := FitShiftedExp(s)
	if math.Abs(m.Shift-shift)/shift > 0.05 {
		t.Errorf("recovered shift %v, want %v within 5%%", m.Shift, shift)
	}
	if math.Abs(m.Scale-scale)/scale > 0.05 {
		t.Errorf("recovered scale %v, want %v within 5%%", m.Scale, scale)
	}
	// The speedup predicted from the fit must track the true model's.
	truth := ShiftedExp{Shift: shift, Scale: scale}
	for _, k := range []int{2, 4, 8, 16} {
		if got, want := m.Speedup(k), truth.Speedup(k); math.Abs(got-want)/want > 0.05 {
			t.Errorf("fitted Speedup(%d) = %v, true %v", k, got, want)
		}
	}
}

// TestFitLogNormalRoundTrip is the same round trip for the lognormal
// family.
func TestFitLogNormalRoundTrip(t *testing.T) {
	r := rng.New(11)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = math.Exp(5 + 1.2*r.NormFloat64())
	}
	s, err := New(xs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitLogNormal(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mu-5) > 0.1 {
		t.Errorf("recovered mu %v, want 5 +- 0.1", m.Mu)
	}
	if math.Abs(m.Sigma-1.2) > 0.1 {
		t.Errorf("recovered sigma %v, want 1.2 +- 0.1", m.Sigma)
	}
}

// TestFitBestSelectsFamily checks that the KS selector picks the
// generating family on clean synthetic data from each.
func TestFitBestSelectsFamily(t *testing.T) {
	r := rng.New(3)
	// A strongly shifted exponential: lognormal cannot express the hard
	// floor at 1000.
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 1000 + 50*r.ExpFloat64()
	}
	s, _ := New(xs)
	if f := FitBest(s); f.Family != FamilyShiftedExp {
		t.Errorf("shifted-exp data selected %s (KS %v vs alt %v)", f.Family, f.KS, f.AltKS)
	}
	// A wide lognormal: the exponential's memoryless tail misses badly.
	for i := range xs {
		xs[i] = math.Exp(4 + 1.5*r.NormFloat64())
	}
	s, _ = New(xs)
	f := FitBest(s)
	if f.Family != FamilyLogNormal {
		t.Errorf("lognormal data selected %s (KS %v vs alt %v)", f.Family, f.KS, f.AltKS)
	}
	if f.KS > f.AltKS {
		t.Errorf("selected family's KS %v exceeds alternative's %v", f.KS, f.AltKS)
	}
	// Data with zeros can only be shifted-exp.
	zs := append([]float64{0, 0}, xs[:100]...)
	s, _ = New(zs)
	if f := FitBest(s); f.Family != FamilyShiftedExp {
		t.Errorf("zero-containing data selected %s", f.Family)
	}
}

// TestPredictSpeedup checks the full predictor: on shifted-exp data the
// point estimate tracks the closed form and the bootstrap band covers
// it.
func TestPredictSpeedup(t *testing.T) {
	truth := ShiftedExp{Shift: 200, Scale: 1800}
	r := rng.New(99)
	xs := make([]float64, 1500)
	for i := range xs {
		xs[i] = truth.Shift + truth.Scale*r.ExpFloat64()
	}
	s, err := New(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		p, err := PredictSpeedup(s, k, 200, 0.95, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		want := truth.Speedup(k)
		if math.Abs(p.Speedup-want)/want > 0.1 {
			t.Errorf("k=%d: predicted %v, true %v", k, p.Speedup, want)
		}
		if !(p.Lo <= p.Speedup && p.Speedup <= p.Hi) {
			t.Errorf("k=%d: point %v outside band [%v, %v]", k, p.Speedup, p.Lo, p.Hi)
		}
		if p.Lo > want || p.Hi < want {
			t.Errorf("k=%d: true %v outside band [%v, %v]", k, want, p.Lo, p.Hi)
		}
		if p.Walkers != k {
			t.Errorf("k echo = %d", p.Walkers)
		}
	}
	if _, err := PredictSpeedup(s, 0, 100, 0.95, rng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
}
