// Package stats provides the runtime-distribution statistics behind the
// paper's performance analysis.
//
// The key quantity: with k independent walks, the parallel runtime is
// the minimum of k i.i.d. draws from the sequential runtime
// distribution, so the expected speedup on k cores is
//
//	speedup(k) = E[T] / E[min(T_1, ..., T_k)].
//
// This package estimates E[min_k] two ways:
//
//   - nonparametrically, with the exact unbiased order-statistics
//     estimator over an observed sample (ExpectedMin), and
//   - parametrically, by fitting a shifted exponential model
//     (FitShiftedExp), which explains the paper's two regimes: a shift
//     near zero gives ideal linear speedup (the Costas array of Fig. 3),
//     while a positive shift — a floor every walk must pay — saturates
//     the curve (the CSPLib benchmarks of Figs. 1–2).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Sample holds a non-empty collection of non-negative observations
// (runtimes, in iterations or seconds), kept sorted ascending.
type Sample struct {
	xs []float64
}

// New copies xs into a Sample. It rejects empty input and NaN, infinite
// or negative values.
func New(xs []float64) (*Sample, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: empty sample")
	}
	own := make([]float64, len(xs))
	copy(own, xs)
	for _, x := range own {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return nil, fmt.Errorf("stats: invalid observation %v", x)
		}
	}
	sort.Float64s(own)
	return &Sample{xs: own}, nil
}

// FromInts builds a Sample from integer observations (typically
// iteration counts).
func FromInts(xs []int64) (*Sample, error) {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return New(fs)
}

// N returns the sample size.
func (s *Sample) N() int { return len(s.xs) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.xs[0] }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.xs[len(s.xs)-1] }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance (0 for n = 1).
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// CV returns the coefficient of variation (std/mean). An exponential
// distribution has CV = 1; CV well below 1 signals a runtime floor
// (shifted distribution) and hence saturating multi-walk speedup.
// Returns 0 when the mean is 0.
func (s *Sample) CV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Std() / m
}

// Quantile returns the q-th empirical quantile (0 <= q <= 1) with
// linear interpolation between order statistics.
func (s *Sample) Quantile(q float64) float64 {
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// ECDF returns the empirical CDF as parallel slices: values and
// cumulative probabilities.
func (s *Sample) ECDF() (xs, ps []float64) {
	n := len(s.xs)
	xs = make([]float64, n)
	ps = make([]float64, n)
	copy(xs, s.xs)
	for i := range ps {
		ps[i] = float64(i+1) / float64(n)
	}
	return xs, ps
}

// ExpectedMin returns the exact unbiased estimator of E[min of k
// i.i.d. draws] from the sample:
//
//	Ê[min_k] = Σ_i x_(i) · C(n-i, k-1) / C(n, k)      (i = 1..n, sorted)
//
// i.e. the average of min(S) over all C(n, k) subsets S of size k.
// For k >= n it degenerates to the sample minimum; accuracy requires
// n substantially larger than k (the experiment harness enforces this).
// k must be >= 1.
func (s *Sample) ExpectedMin(k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("stats: ExpectedMin needs k >= 1, got %d", k)
	}
	n := len(s.xs)
	if k >= n {
		return s.xs[0], nil
	}
	// w_1 = C(n-1, k-1)/C(n, k) = k/n;
	// w_{i+1} = w_i * (n-i-k+1)/(n-i).
	w := float64(k) / float64(n)
	sum := 0.0
	for i := 1; i <= n-k+1; i++ {
		sum += w * s.xs[i-1]
		w *= float64(n-i-k+1) / float64(n-i)
	}
	return sum, nil
}

// Speedup returns Mean / Ê[min_k]: the predicted multi-walk speedup on
// k cores. Returns an error for invalid k or a degenerate (all-zero)
// sample.
func (s *Sample) Speedup(k int) (float64, error) {
	em, err := s.ExpectedMin(k)
	if err != nil {
		return 0, err
	}
	if em == 0 {
		return 0, errors.New("stats: zero expected minimum — degenerate sample")
	}
	return s.Mean() / em, nil
}

// MonteCarloMin estimates E[min_k] by Monte Carlo: it draws reps
// random k-element samples — each element picked uniformly from the
// data with replacement, since under the i.i.d. runtime model the
// estimator targets, distinct-index draws would change nothing — and
// averages the per-draw minima. It serves as a cross-check of the
// exact ExpectedMin estimator in tests.
func (s *Sample) MonteCarloMin(k, reps int, r *rng.Rand) (float64, error) {
	if k < 1 || reps < 1 {
		return 0, fmt.Errorf("stats: MonteCarloMin needs k >= 1 and reps >= 1")
	}
	n := len(s.xs)
	total := 0.0
	for rep := 0; rep < reps; rep++ {
		m := math.Inf(1)
		for j := 0; j < k; j++ {
			x := s.xs[r.Intn(n)]
			if x < m {
				m = x
			}
		}
		total += m
	}
	return total / float64(reps), nil
}

// Bootstrap returns a (lo, hi) percentile confidence interval at the
// given confidence level for an arbitrary statistic, by resampling the
// sample with replacement iters times.
func (s *Sample) Bootstrap(stat func(*Sample) float64, iters int, conf float64, r *rng.Rand) (lo, hi float64, err error) {
	if iters < 10 {
		return 0, 0, errors.New("stats: Bootstrap needs iters >= 10")
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %v outside (0,1)", conf)
	}
	n := len(s.xs)
	vals := make([]float64, iters)
	buf := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range buf {
			buf[i] = s.xs[r.Intn(n)]
		}
		bs := &Sample{xs: buf}
		sort.Float64s(bs.xs)
		vals[it] = stat(bs)
	}
	sort.Float64s(vals)
	alpha := (1 - conf) / 2
	// Symmetric percentile ranks: floor(alpha*iters) values below the
	// lower endpoint and the same number above the upper one. The naive
	// int((1-alpha)*iters) picks one rank too high (e.g. index 975 of
	// 1000 for a 95% interval, leaving only 24 values above it).
	loIdx := int(alpha * float64(iters))
	hiIdx := int(math.Ceil((1-alpha)*float64(iters))) - 1
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	if hiIdx < loIdx {
		hiIdx = loIdx
	}
	return vals[loIdx], vals[hiIdx], nil
}

// ShiftedExp is the parametric runtime model T = Shift + Exp(mean
// Scale): a deterministic floor plus a memoryless search phase. Its
// multi-walk speedup saturates at (Shift+Scale)/Shift; with Shift = 0
// the speedup is exactly k (the paper's "ideal" Costas regime).
type ShiftedExp struct {
	Shift float64
	Scale float64
}

// FitShiftedExp fits the model by moments: Shift from the sample
// minimum (shrunk by the exponential's expected minimum gap so the
// estimator is not systematically high), Scale from the residual mean.
func FitShiftedExp(s *Sample) ShiftedExp {
	n := float64(s.N())
	m := s.Mean()
	mn := s.Min()
	// E[min of n exp(scale)] = scale/n: correct the shift accordingly.
	// Solve shift = mn - scale/n, scale = m - shift.
	scale := (m - mn) * n / (n - 1)
	if s.N() == 1 || scale < 0 {
		scale = 0
	}
	shift := m - scale
	if shift < 0 {
		shift = 0
		scale = m
	}
	return ShiftedExp{Shift: shift, Scale: scale}
}

// Mean returns the model mean.
func (m ShiftedExp) Mean() float64 { return m.Shift + m.Scale }

// ExpectedMin returns E[min_k] = Shift + Scale/k under the model.
func (m ShiftedExp) ExpectedMin(k int) float64 {
	return m.Shift + m.Scale/float64(k)
}

// Speedup returns the model speedup on k cores.
func (m ShiftedExp) Speedup(k int) float64 {
	em := m.ExpectedMin(k)
	if em == 0 {
		return float64(k)
	}
	return m.Mean() / em
}

// SaturationSpeedup returns the asymptotic speedup limit
// (Shift+Scale)/Shift, or +Inf when Shift = 0.
func (m ShiftedExp) SaturationSpeedup() float64 {
	if m.Shift == 0 {
		return math.Inf(1)
	}
	return m.Mean() / m.Shift
}

// QQExponentialR2 returns the squared correlation of the sample
// quantiles against exponential quantiles. Values near 1 indicate an
// exponential-like distribution (the memoryless regime with ideal
// multi-walk speedup).
func (s *Sample) QQExponentialR2() float64 {
	n := len(s.xs)
	if n < 3 {
		return 0
	}
	theo := make([]float64, n)
	for i := range theo {
		p := (float64(i) + 0.5) / float64(n)
		theo[i] = -math.Log(1 - p)
	}
	return r2(theo, s.xs)
}

// r2 returns the squared Pearson correlation of x and y.
func r2(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov * cov / (vx * vy)
}

// LogLogSlope fits log(y) = slope*log(x) + intercept by least squares.
// The paper's Fig. 3 plots CAP speedups on a log-log scale against an
// ideal line; a slope of 1 is linear speedup. All inputs must be
// positive and the slices of equal length >= 2.
func LogLogSlope(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, errors.New("stats: LogLogSlope needs two equal-length series of >= 2 points")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, fmt.Errorf("stats: LogLogSlope needs positive values, got (%v, %v)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := sxx - sx*sx/n
	if den == 0 {
		return 0, 0, errors.New("stats: LogLogSlope x values are all equal")
	}
	slope = (sxy - sx*sy/n) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}
