package stats

// This file is the parametric side of the speedup predictor: the
// lognormal runtime model beside the shifted exponential, a
// goodness-of-fit selector between the two, and the expected-speedup
// and latency-quantile machinery the adaptive-parallelism stack
// (internal/calibrate, the service's AutoSize admission mode) builds
// on. Arbelaez/Truchet/Codognet (arXiv 2403.08790) showed that local
// search runtime distributions are well captured by exactly these two
// families and that fitting one sequential sample predicts multi-walk
// speedup at any walker count before the cores are spent; the
// shifted-exp case is the paper's own two-regime analysis in closed
// form, the lognormal covers the heavy-tailed benchmarks.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// normQuantile is the standard normal quantile function Phi^-1.
func normQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// normCDF is the standard normal CDF Phi.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// CDF returns the shifted-exponential distribution function.
func (m ShiftedExp) CDF(x float64) float64 {
	if x <= m.Shift {
		return 0
	}
	if m.Scale == 0 {
		return 1
	}
	return 1 - math.Exp(-(x-m.Shift)/m.Scale)
}

// Quantile returns the shifted-exponential quantile function:
// Shift - Scale*ln(1-p) for p in [0,1).
func (m ShiftedExp) Quantile(p float64) float64 {
	if p <= 0 {
		return m.Shift
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return m.Shift - m.Scale*math.Log(1-p)
}

// LogNormal is the heavy-tailed runtime model T = exp(Mu + Sigma*Z),
// Z standard normal. Unlike the shifted exponential its multi-walk
// speedup never saturates at a finite limit — E[min_k] tends to zero —
// but it approaches that limit slowly (sub-linearly in k), which is
// the intermediate regime between the paper's ideal-Costas and
// hard-floor extremes.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// FitLogNormal fits by maximum likelihood: Mu and Sigma are the mean
// and (population) standard deviation of the log-observations.
// Non-positive observations are rejected — a runtime of zero
// iterations has no lognormal likelihood.
func FitLogNormal(s *Sample) (LogNormal, error) {
	n := float64(s.N())
	var sum float64
	for _, x := range s.xs {
		if x <= 0 {
			return LogNormal{}, fmt.Errorf("stats: lognormal fit needs positive observations, got %v", x)
		}
		sum += math.Log(x)
	}
	mu := sum / n
	var ss float64
	for _, x := range s.xs {
		d := math.Log(x) - mu
		ss += d * d
	}
	return LogNormal{Mu: mu, Sigma: math.Sqrt(ss / n)}, nil
}

// Mean returns the model mean exp(Mu + Sigma^2/2).
func (m LogNormal) Mean() float64 {
	return math.Exp(m.Mu + m.Sigma*m.Sigma/2)
}

// CDF returns the lognormal distribution function.
func (m LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if m.Sigma == 0 {
		if math.Log(x) < m.Mu {
			return 0
		}
		return 1
	}
	return normCDF((math.Log(x) - m.Mu) / m.Sigma)
}

// Quantile returns the lognormal quantile exp(Mu + Sigma*Phi^-1(p)).
func (m LogNormal) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Exp(m.Mu + m.Sigma*normQuantile(p))
}

// minQuadPoints is the Simpson-rule resolution of the numeric
// E[min_k] integral; 4096 panels put the relative error well below
// the bootstrap bands any prediction carries.
const minQuadPoints = 4096

// ExpectedMin returns E[min of k i.i.d. draws] under the model. There
// is no closed form; the integral
//
//	E[min_k] = Integral k*phi(t)*(1-Phi(t))^(k-1) * exp(Mu+Sigma*t) dt
//
// (the order-statistic density pushed through t = (ln x - Mu)/Sigma)
// is evaluated by composite Simpson over t in [-12, Sigma+12], where
// the integrand has decayed below any representable contribution.
func (m LogNormal) ExpectedMin(k int) float64 {
	if k <= 1 {
		return m.Mean()
	}
	if m.Sigma == 0 {
		return math.Exp(m.Mu)
	}
	lo, hi := -12.0, m.Sigma+12
	h := (hi - lo) / minQuadPoints
	f := func(t float64) float64 {
		phi := math.Exp(-t*t/2) / math.Sqrt(2*math.Pi)
		surv := 1 - normCDF(t)
		if surv <= 0 {
			return 0
		}
		return float64(k) * phi * math.Pow(surv, float64(k-1)) * math.Exp(m.Mu+m.Sigma*t)
	}
	sum := f(lo) + f(hi)
	for i := 1; i < minQuadPoints; i++ {
		w := 4.0
		if i%2 == 0 {
			w = 2.0
		}
		sum += w * f(lo+float64(i)*h)
	}
	return sum * h / 3
}

// Speedup returns the model's multi-walk speedup on k cores.
func (m LogNormal) Speedup(k int) float64 {
	em := m.ExpectedMin(k)
	if em == 0 {
		return float64(k)
	}
	return m.Mean() / em
}

// Family names a fitted runtime-distribution family.
type Family string

const (
	// FamilyShiftedExp is the paper's two-regime model: a deterministic
	// floor plus a memoryless phase. Speedup saturates at Mean/Shift.
	FamilyShiftedExp Family = "shifted-exp"
	// FamilyLogNormal is the heavy-tailed model of arXiv 2403.08790.
	FamilyLogNormal Family = "lognormal"
)

// KSDistance returns the Kolmogorov-Smirnov statistic of the sample
// against an arbitrary model CDF: the largest absolute gap between the
// empirical and model distribution functions.
func (s *Sample) KSDistance(cdf func(float64) float64) float64 {
	n := float64(len(s.xs))
	d := 0.0
	for i, x := range s.xs {
		fx := cdf(x)
		if gap := math.Abs(fx - float64(i+1)/n); gap > d {
			d = gap
		}
		if gap := math.Abs(fx - float64(i)/n); gap > d {
			d = gap
		}
	}
	return d
}

// Fit is a fitted runtime model with the goodness-of-fit evidence that
// selected its family. The non-selected family's parameters are kept
// so callers can report both candidates.
type Fit struct {
	// Family is the selected model family.
	Family Family
	// Exp and LN are the fitted candidates (LN is the zero value when
	// the sample had non-positive observations).
	Exp ShiftedExp
	LN  LogNormal
	// KS is the selected family's Kolmogorov-Smirnov distance to the
	// sample, AltKS the rejected family's (AltKS >= KS; equal on ties).
	KS    float64
	AltKS float64
}

// FitBest fits both parametric families to the sample and selects the
// one with the smaller Kolmogorov-Smirnov distance. Samples containing
// non-positive observations (a solve at zero iterations) can only be
// shifted-exponential.
func FitBest(s *Sample) Fit {
	f := Fit{Exp: FitShiftedExp(s)}
	ksExp := s.KSDistance(f.Exp.CDF)
	ln, err := FitLogNormal(s)
	if err != nil {
		f.Family = FamilyShiftedExp
		f.KS = ksExp
		f.AltKS = math.Inf(1)
		return f
	}
	f.LN = ln
	ksLN := s.KSDistance(ln.CDF)
	if ksLN < ksExp {
		f.Family, f.KS, f.AltKS = FamilyLogNormal, ksLN, ksExp
	} else {
		f.Family, f.KS, f.AltKS = FamilyShiftedExp, ksExp, ksLN
	}
	return f
}

// refit re-estimates the fit's parameters on a new sample, keeping the
// family fixed — the bootstrap resamples a family choice made once on
// the full sample, so the bands measure parameter uncertainty, not
// family-selection flapping.
func (f Fit) refit(s *Sample) Fit {
	out := f
	out.Exp = FitShiftedExp(s)
	if f.Family == FamilyLogNormal {
		if ln, err := FitLogNormal(s); err == nil {
			out.LN = ln
		}
	}
	return out
}

// Mean returns the selected model's mean.
func (f Fit) Mean() float64 {
	if f.Family == FamilyLogNormal {
		return f.LN.Mean()
	}
	return f.Exp.Mean()
}

// ExpectedMin returns the selected model's E[min of k draws].
func (f Fit) ExpectedMin(k int) float64 {
	if f.Family == FamilyLogNormal {
		return f.LN.ExpectedMin(k)
	}
	return f.Exp.ExpectedMin(k)
}

// Speedup returns the selected model's expected speedup at k walkers.
func (f Fit) Speedup(k int) float64 {
	if f.Family == FamilyLogNormal {
		return f.LN.Speedup(k)
	}
	return f.Exp.Speedup(k)
}

// Quantile returns the selected model's p-quantile.
func (f Fit) Quantile(p float64) float64 {
	if f.Family == FamilyLogNormal {
		return f.LN.Quantile(p)
	}
	return f.Exp.Quantile(p)
}

// MinQuantile returns the p-quantile of the minimum of k i.i.d. draws:
// P(min_k <= t) = p iff F(t) = 1-(1-p)^(1/k). This is the predicted
// job-latency quantile at k walkers — the quantity a target-P95
// auto-sizing request is solved against.
func (f Fit) MinQuantile(k int, p float64) float64 {
	if k < 1 {
		k = 1
	}
	if p <= 0 {
		return f.Quantile(0)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return f.Quantile(1 - math.Pow(1-p, 1/float64(k)))
}

// RuntimeFloor returns the model's essential minimum runtime — the
// latency no amount of parallelism gets under: Shift for the shifted
// exponential, 0 for the lognormal.
func (f Fit) RuntimeFloor() float64 {
	if f.Family == FamilyLogNormal {
		return 0
	}
	return f.Exp.Shift
}

// Prediction is an expected-speedup estimate at k walkers with a
// bootstrap confidence band.
type Prediction struct {
	// Walkers is k.
	Walkers int `json:"walkers"`
	// Speedup is the selected model's point estimate, Lo/Hi the
	// bootstrap percentile band at the requested confidence.
	Speedup float64 `json:"speedup"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	// ExpectedMin is the point estimate of E[min_k] in sample units.
	ExpectedMin float64 `json:"expected_min"`
	// Family names the selected model.
	Family Family `json:"family"`
}

// PredictSpeedup fits the best family to the sample and returns the
// expected speedup at k walkers with a bootstrap percentile confidence
// band: the sample is resampled with replacement iters times, the
// selected family refitted on each replicate (the family choice itself
// is held fixed), and the band read from the speedup percentiles.
func PredictSpeedup(s *Sample, k, iters int, conf float64, r *rng.Rand) (Prediction, error) {
	if k < 1 {
		return Prediction{}, fmt.Errorf("stats: PredictSpeedup needs k >= 1, got %d", k)
	}
	fit := FitBest(s)
	p := Prediction{
		Walkers:     k,
		Speedup:     fit.Speedup(k),
		ExpectedMin: fit.ExpectedMin(k),
		Family:      fit.Family,
	}
	lo, hi, err := s.Bootstrap(func(bs *Sample) float64 {
		return fit.refit(bs).Speedup(k)
	}, iters, conf, r)
	if err != nil {
		return Prediction{}, err
	}
	p.Lo, p.Hi = lo, hi
	return p, nil
}

// ErrDegenerate reports a sample too flat to predict from (zero mean).
var ErrDegenerate = errors.New("stats: degenerate sample")
