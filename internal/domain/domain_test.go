package domain

import (
	"errors"
	"testing"
)

func TestDomainBasics(t *testing.T) {
	d := New(5, 1, 3, 3, 1)
	want := []int{1, 3, 5}
	if len(d) != len(want) {
		t.Fatalf("New deduplication failed: %v", d)
	}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("New = %v, want %v", []int(d), want)
		}
	}
	if !d.Contains(3) || d.Contains(2) {
		t.Errorf("Contains wrong on %v", d)
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Errorf("Min/Max = %d/%d", d.Min(), d.Max())
	}
	d, removed := d.Remove(3)
	if !removed || d.Contains(3) || len(d) != 2 {
		t.Errorf("Remove(3) = %v, removed=%v", d, removed)
	}
	if _, removed := d.Remove(42); removed {
		t.Error("Remove of absent value reported removal")
	}
	r := Range(2, 4)
	if len(r) != 3 || r[0] != 2 || r[2] != 4 {
		t.Errorf("Range(2,4) = %v", r)
	}
	if len(Range(4, 2)) != 0 {
		t.Error("inverted Range not empty")
	}
}

func TestFixpointEmptyDomain(t *testing.T) {
	doms := []Domain{Range(0, 2), nil}
	err := Fixpoint(doms, nil)
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("empty domain not reported unsatisfiable: %v", err)
	}
}

func TestLinearReduces(t *testing.T) {
	// x + y == 3, x in [0,5], y in [0,1]: x must be in [2,3].
	doms := []Domain{Range(0, 5), Range(0, 1)}
	err := Fixpoint(doms, []Propagator{Linear{Vars: []int{0, 1}, Coeffs: []int{1, 1}, Target: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(doms[0]) != 2 || doms[0][0] != 2 || doms[0][1] != 3 {
		t.Errorf("x domain = %v, want [2 3]", doms[0])
	}
	if len(doms[1]) != 2 {
		t.Errorf("y domain = %v, want [0 1]", doms[1])
	}
}

func TestLinearUnsatisfiable(t *testing.T) {
	// 2x == 7 has no integer solution in [0,3].
	doms := []Domain{Range(0, 3)}
	err := Fixpoint(doms, []Propagator{Linear{Vars: []int{0}, Coeffs: []int{2}, Target: 7}})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("want ErrUnsatisfiable, got %v", err)
	}
}

func TestDistinctSingletonPropagation(t *testing.T) {
	// x fixed to 1 removes 1 from y and z; z collapses to 2, which then
	// leaves y = {0} at the fixpoint.
	doms := []Domain{New(1), New(0, 1, 2), New(1, 2)}
	err := Fixpoint(doms, []Propagator{Distinct{Vars: []int{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(doms[2]) != 1 || doms[2][0] != 2 {
		t.Errorf("z domain = %v, want [2]", doms[2])
	}
	if len(doms[1]) != 1 || doms[1][0] != 0 {
		t.Errorf("y domain = %v, want [0]", doms[1])
	}
}

func TestDistinctCapacity(t *testing.T) {
	// Three variables over two values: pigeonhole unsatisfiable.
	doms := []Domain{Range(0, 1), Range(0, 1), Range(0, 1)}
	err := Fixpoint(doms, []Propagator{Distinct{Vars: []int{0, 1, 2}}})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("want ErrUnsatisfiable, got %v", err)
	}
}

func TestDistinctDuplicateVars(t *testing.T) {
	// A duplicated entry must not make x "conflict with itself".
	doms := []Domain{New(1), Range(0, 2)}
	err := Fixpoint(doms, []Propagator{Distinct{Vars: []int{0, 0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(doms[0]) != 1 {
		t.Errorf("x domain = %v, want [1]", doms[0])
	}
}

// fuzzModel is a small random FD model decoded from fuzz bytes: a few
// variables with small domains, linear equations and one optional
// all-different group.
type fuzzModel struct {
	doms     []Domain
	linear   []Linear
	distinct []Distinct
}

// decodeFuzzModel derives a model deterministically from data. It
// returns ok=false for inputs too short to describe one.
func decodeFuzzModel(data []byte) (fuzzModel, bool) {
	if len(data) < 4 {
		return fuzzModel{}, false
	}
	next := func() byte {
		b := data[0]
		data = data[1:]
		return b
	}
	rem := func() int { return len(data) }

	n := int(next())%4 + 1 // 1..4 variables
	m := fuzzModel{}
	for i := 0; i < n; i++ {
		if rem() == 0 {
			return fuzzModel{}, false
		}
		// Each variable's domain is a non-empty subset of [0,5] from a
		// 6-bit mask; an empty mask selects {bits % 6}.
		bits := next()
		var d Domain
		for v := 0; v < 6; v++ {
			if bits&(1<<v) != 0 {
				d = append(d, v)
			}
		}
		if len(d) == 0 {
			d = Domain{int(bits) % 6}
		}
		m.doms = append(m.doms, d)
	}
	if rem() == 0 {
		return fuzzModel{}, false
	}
	ncons := int(next()) % 3 // 0..2 linear equations
	for c := 0; c < ncons; c++ {
		var l Linear
		for i := 0; i < n; i++ {
			if rem() == 0 {
				return fuzzModel{}, false
			}
			coef := int(next())%5 - 2 // -2..2, 0 drops the term
			if coef == 0 {
				continue
			}
			l.Vars = append(l.Vars, i)
			l.Coeffs = append(l.Coeffs, coef)
		}
		if len(l.Vars) == 0 {
			continue
		}
		if rem() == 0 {
			return fuzzModel{}, false
		}
		l.Target = int(next())%21 - 10 // -10..10
		m.linear = append(m.linear, l)
	}
	if rem() > 0 && next()%2 == 1 {
		// One all-different group over a prefix of the variables.
		if rem() == 0 {
			return fuzzModel{}, false
		}
		k := int(next())%n + 1
		g := Distinct{}
		for i := 0; i < k; i++ {
			g.Vars = append(g.Vars, i)
		}
		m.distinct = append(m.distinct, g)
	}
	return m, true
}

// satisfies checks an assignment exactly (no relaxation).
func (m fuzzModel) satisfies(asn []int) bool {
	for _, l := range m.linear {
		sum := 0
		for k, vi := range l.Vars {
			sum += l.Coeffs[k] * asn[vi]
		}
		if sum != l.Target {
			return false
		}
	}
	for _, g := range m.distinct {
		for a := 0; a < len(g.Vars); a++ {
			for b := a + 1; b < len(g.Vars); b++ {
				if asn[g.Vars[a]] != asn[g.Vars[b]] {
					continue
				}
				if g.Vars[a] != g.Vars[b] {
					return false
				}
			}
		}
	}
	return true
}

// forEachAssignment enumerates the cross product of doms.
func forEachAssignment(doms []Domain, fn func(asn []int)) {
	asn := make([]int, len(doms))
	var rec func(i int)
	rec = func(i int) {
		if i == len(doms) {
			fn(asn)
			return
		}
		for _, v := range doms[i] {
			asn[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// FuzzReduceDomain cross-checks the reduction pass against brute force
// on small random models: reduction must never remove a value any
// satisfying assignment uses (soundness), and an ErrUnsatisfiable
// verdict must be a proof — brute force must agree no solution exists.
func FuzzReduceDomain(f *testing.F) {
	f.Add([]byte{2, 0x3f, 0x07, 1, 1, 2, 5, 1, 2})
	f.Add([]byte{3, 0x03, 0x03, 0x03, 0, 1, 3})
	f.Add([]byte{1, 0x0f, 1, 2, 7, 0})
	f.Add([]byte{4, 0x3f, 0x1f, 0x0f, 0x07, 2, 1, 1, 1, 1, 4, 2, 2, 2, 2, 0, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, ok := decodeFuzzModel(data)
		if !ok {
			t.Skip()
		}
		// Brute-force ground truth over the ORIGINAL domains.
		var solutions [][]int
		forEachAssignment(m.doms, func(asn []int) {
			if m.satisfies(asn) {
				solutions = append(solutions, append([]int(nil), asn...))
			}
		})

		reduced := make([]Domain, len(m.doms))
		for i, d := range m.doms {
			reduced[i] = d.Clone()
		}
		props := make([]Propagator, 0, len(m.linear)+len(m.distinct))
		for _, l := range m.linear {
			props = append(props, l)
		}
		for _, g := range m.distinct {
			props = append(props, g)
		}
		err := Fixpoint(reduced, props)

		if err != nil {
			if !errors.Is(err, ErrUnsatisfiable) {
				t.Fatalf("reduction failed with a non-unsat error: %v", err)
			}
			if len(solutions) > 0 {
				t.Fatalf("reduction claimed unsatisfiable but %v solves the model (e.g. %v)", solutions[0], m)
			}
			return
		}
		for _, sol := range solutions {
			for i, v := range sol {
				if !reduced[i].Contains(v) {
					t.Fatalf("reduction removed value %d from variable %d, used by solution %v", v, i, sol)
				}
			}
		}
	})
}
