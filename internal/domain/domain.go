// Package domain provides per-variable finite domains and a pre-search
// domain-reduction pass for the finite-domain (FD) encoding layer.
//
// The permutation benchmarks of the PPoPP 2012 study never need this:
// their configurations are permutations of [0, n) by construction. The
// general Adaptive Search formulation of the same research program
// (the Cell/BE and X10 lines) runs over arbitrary finite domains, and
// production CP solvers always reduce domains before search: values no
// assignment can use are removed up front, and a variable whose domain
// empties proves the model unsatisfiable before any walker spends an
// iteration.
//
// The package is deliberately small: a Domain is a sorted slice of
// distinct ints, a Propagator filters domains, and Fixpoint drives a
// set of propagators to quiescence. Propagators must be SOUND — they
// may only remove values that no satisfying assignment uses — so
// reduction never changes the solution set, and ErrUnsatisfiable is a
// proof, not a heuristic.
package domain

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnsatisfiable reports that domain reduction proved the model has
// no solution (some variable's domain emptied, or a structural check
// like all-different capacity failed). Callers match it with errors.Is.
var ErrUnsatisfiable = errors.New("domain: model is unsatisfiable")

// Domain is the finite domain of one variable: a sorted slice of
// distinct ints. The zero value (nil) is the empty domain.
type Domain []int

// New builds a domain from arbitrary values, sorting and deduplicating.
func New(vals ...int) Domain {
	d := append(Domain(nil), vals...)
	sort.Ints(d)
	out := d[:0]
	for i, v := range d {
		if i == 0 || v != d[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Range returns the domain {lo, ..., hi}; an inverted range is empty.
func Range(lo, hi int) Domain {
	if hi < lo {
		return nil
	}
	d := make(Domain, hi-lo+1)
	for i := range d {
		d[i] = lo + i
	}
	return d
}

// Index returns the position of v in d, or -1.
func (d Domain) Index(v int) int {
	i := sort.SearchInts(d, v)
	if i < len(d) && d[i] == v {
		return i
	}
	return -1
}

// Contains reports whether v is in d.
func (d Domain) Contains(v int) bool { return d.Index(v) >= 0 }

// Remove deletes v from d in place, returning the shrunk domain and
// whether v was present.
func (d Domain) Remove(v int) (Domain, bool) {
	i := d.Index(v)
	if i < 0 {
		return d, false
	}
	return append(d[:i], d[i+1:]...), true
}

// Clone returns an independent copy of d.
func (d Domain) Clone() Domain { return append(Domain(nil), d...) }

// Min returns the smallest value; d must be non-empty.
func (d Domain) Min() int { return d[0] }

// Max returns the largest value; d must be non-empty.
func (d Domain) Max() int { return d[len(d)-1] }

// Propagator filters domains. Reduce removes values from doms that no
// satisfying assignment can use, reports whether anything changed, and
// returns an error wrapping ErrUnsatisfiable when it proves the model
// has no solution. Implementations mutate doms entries in place
// (reassigning shrunk slices) and must be sound: a value used by some
// satisfying assignment is never removed.
type Propagator interface {
	Reduce(doms []Domain) (changed bool, err error)
}

// Fixpoint runs the propagators over doms until none changes anything
// (domains only shrink, so the loop terminates). It returns an error
// wrapping ErrUnsatisfiable if any domain is empty on entry or a
// propagator proves unsatisfiability; on success every domain is
// non-empty and reduced.
func Fixpoint(doms []Domain, props []Propagator) error {
	for i, d := range doms {
		if len(d) == 0 {
			return fmt.Errorf("variable %d has an empty domain: %w", i, ErrUnsatisfiable)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range props {
			ch, err := p.Reduce(doms)
			if err != nil {
				return err
			}
			if ch {
				changed = true
			}
		}
	}
	return nil
}

// Linear propagates bounds consistency over the linear equation
//
//	sum_k Coeffs[k] * x[Vars[k]] == Target.
//
// For each variable it computes the interval the other terms can reach
// from their current domain bounds and removes every value whose own
// contribution cannot complete the sum. This is a relaxation (it
// reasons with intervals, not exact sums), so it is sound by
// construction; it reports unsatisfiability only when a domain empties.
type Linear struct {
	Vars   []int
	Coeffs []int
	Target int
}

// Reduce implements Propagator.
func (l Linear) Reduce(doms []Domain) (bool, error) {
	if len(l.Vars) != len(l.Coeffs) {
		return false, fmt.Errorf("domain: Linear has %d vars but %d coefficients", len(l.Vars), len(l.Coeffs))
	}
	if len(l.Vars) == 0 {
		if l.Target != 0 {
			return false, fmt.Errorf("empty linear equation with target %d: %w", l.Target, ErrUnsatisfiable)
		}
		return false, nil
	}
	// Per-term contribution bounds under the current domains.
	los := make([]int, len(l.Vars))
	his := make([]int, len(l.Vars))
	sumLo, sumHi := 0, 0
	for k, vi := range l.Vars {
		d := doms[vi]
		if len(d) == 0 {
			return false, fmt.Errorf("variable %d has an empty domain: %w", vi, ErrUnsatisfiable)
		}
		c := l.Coeffs[k]
		lo, hi := c*d.Min(), c*d.Max()
		if c < 0 {
			lo, hi = hi, lo
		}
		los[k], his[k] = lo, hi
		sumLo += lo
		sumHi += hi
	}
	changed := false
	for k, vi := range l.Vars {
		othersLo := sumLo - los[k]
		othersHi := sumHi - his[k]
		c := l.Coeffs[k]
		d := doms[vi]
		out := d[:0]
		for _, v := range d {
			// Keep v iff the remaining terms can still reach Target.
			need := l.Target - c*v
			if need >= othersLo && need <= othersHi {
				out = append(out, v)
			}
		}
		if len(out) != len(d) {
			changed = true
			doms[vi] = out
			if len(out) == 0 {
				return true, fmt.Errorf("variable %d has an empty domain: %w", vi, ErrUnsatisfiable)
			}
		}
	}
	return changed, nil
}

// Distinct propagates an all-different constraint over Vars: every
// listed variable must take a distinct value. It applies singleton
// propagation (an assigned variable's value is removed from its peers)
// and the pigeonhole capacity check — more variables than distinct
// values across their domains proves unsatisfiability. Duplicate
// entries in Vars are ignored.
type Distinct struct {
	Vars []int
}

// Reduce implements Propagator.
func (c Distinct) Reduce(doms []Domain) (bool, error) {
	// Deduplicate the group so repeated registration of a variable
	// neither miscounts capacity nor empties its own domain.
	group := make([]int, 0, len(c.Vars))
	seen := make(map[int]bool, len(c.Vars))
	for _, vi := range c.Vars {
		if !seen[vi] {
			seen[vi] = true
			group = append(group, vi)
		}
	}
	// Pigeonhole capacity: |group| distinct values must exist.
	union := make(map[int]struct{})
	for _, vi := range group {
		if len(doms[vi]) == 0 {
			return false, fmt.Errorf("variable %d has an empty domain: %w", vi, ErrUnsatisfiable)
		}
		for _, v := range doms[vi] {
			union[v] = struct{}{}
		}
	}
	if len(group) > len(union) {
		return false, fmt.Errorf("all-different over %d variables with only %d values: %w", len(group), len(union), ErrUnsatisfiable)
	}
	changed := false
	for _, vi := range group {
		if len(doms[vi]) != 1 {
			continue
		}
		v := doms[vi][0]
		for _, vj := range group {
			if vj == vi {
				continue
			}
			d, removed := doms[vj].Remove(v)
			if !removed {
				continue
			}
			changed = true
			doms[vj] = d
			if len(d) == 0 {
				return true, fmt.Errorf("variable %d has an empty domain: %w", vj, ErrUnsatisfiable)
			}
		}
	}
	return changed, nil
}
