package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// defaultWriteTimeout bounds one frame write. A peer that cannot drain
// a few-hundred-byte frame in this window is effectively dead; callers
// drop the connection on error and fall back to HTTP.
const defaultWriteTimeout = 10 * time.Second

// Conn is a framed stream connection: a net.Conn plus buffered frame
// reads, mutex-serialized frame writes (so several subscriptions can
// share one multiplexed connection), reusable encode/read buffers and
// rx/tx byte counters for telemetry.
//
// Reads are single-consumer: exactly one goroutine may call ReadFrame,
// and the returned payload is only valid until the next call. Writes
// are safe for concurrent use.
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	rbuf []byte // read buffer, reused across frames

	wmu          sync.Mutex
	enc          Encoder
	wbuf         []byte
	writeTimeout time.Duration

	rx atomic.Int64
	tx atomic.Int64
}

// NewConn wraps an established net.Conn. The caller still owes the
// handshake (Handshake client-side, AcceptHandshake server-side).
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, br: bufio.NewReaderSize(c, 32<<10), writeTimeout: defaultWriteTimeout}
}

// Dial connects to addr and performs the client side of the handshake.
func Dial(addr, role string, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = defaultWriteTimeout
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	if err := c.Handshake(role, timeout); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// Handshake runs the client side: send Hello, await the peer's Hello.
func (c *Conn) Handshake(role string, timeout time.Duration) error {
	if err := c.writeFrame(func(e *Encoder, dst []byte) ([]byte, error) {
		return e.HelloFrame(dst, &Hello{Role: role})
	}); err != nil {
		return err
	}
	return c.awaitHello(timeout)
}

// AcceptHandshake runs the server side: await the client's Hello, then
// answer with ours. It returns the client's Hello.
func (c *Conn) AcceptHandshake(role string, timeout time.Duration) (Hello, error) {
	h, err := c.readHello(timeout)
	if err != nil {
		return Hello{}, err
	}
	if err := c.writeFrame(func(e *Encoder, dst []byte) ([]byte, error) {
		return e.HelloFrame(dst, &Hello{Role: role})
	}); err != nil {
		return Hello{}, err
	}
	return h, nil
}

func (c *Conn) awaitHello(timeout time.Duration) error {
	_, err := c.readHello(timeout)
	return err
}

func (c *Conn) readHello(timeout time.Duration) (Hello, error) {
	if timeout > 0 {
		_ = c.c.SetReadDeadline(time.Now().Add(timeout))
		defer c.c.SetReadDeadline(time.Time{})
	}
	typ, payload, err := c.ReadFrame()
	if err != nil {
		return Hello{}, fmt.Errorf("wire: handshake: %w", err)
	}
	if typ != TypeHello {
		return Hello{}, fmt.Errorf("%w: handshake expected hello, got frame type %#x", ErrMalformed, typ)
	}
	h, err := DecodeHello(payload)
	if err != nil {
		return Hello{}, fmt.Errorf("wire: handshake: %w", err)
	}
	return h, nil
}

// ReadFrame blocks for the next frame and returns its type and
// payload. The payload aliases an internal buffer reused by the next
// call; decode it (or copy it) before reading again. A cleanly closed
// peer surfaces io.EOF.
func (c *Conn) ReadFrame() (byte, []byte, error) {
	n, err := binary.ReadUvarint(c.br)
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading frame length: %v", ErrTruncated, err)
	}
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: empty frame", ErrMalformed)
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooBig
	}
	if uint64(cap(c.rbuf)) < n {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: reading %d-byte frame: %v", ErrTruncated, n, err)
	}
	c.rx.Add(int64(n))
	return buf[0], buf[1:], nil
}

// writeFrame serializes one frame through the shared encoder and
// writes it under the write deadline.
func (c *Conn) writeFrame(build func(*Encoder, []byte) ([]byte, error)) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	out, err := build(&c.enc, c.wbuf[:0])
	if err != nil {
		return err
	}
	c.wbuf = out[:0]
	if c.writeTimeout > 0 {
		_ = c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	}
	_, err = c.c.Write(out)
	if err == nil {
		c.tx.Add(int64(len(out)))
	}
	return err
}

// WriteSubscribe sends a Subscribe frame.
func (c *Conn) WriteSubscribe(job string) error {
	return c.writeFrame(func(e *Encoder, dst []byte) ([]byte, error) {
		return e.SubscribeFrame(dst, &Subscribe{Job: job})
	})
}

// WriteBoardSync sends a BoardSync frame.
func (c *Conn) WriteBoardSync(m *BoardSync) error {
	return c.writeFrame(func(e *Encoder, dst []byte) ([]byte, error) {
		return e.BoardSyncFrame(dst, m)
	})
}

// WriteProgress sends a Progress frame.
func (c *Conn) WriteProgress(p *Progress) error {
	return c.writeFrame(func(e *Encoder, dst []byte) ([]byte, error) {
		return e.ProgressFrame(dst, p)
	})
}

// WriteShardProgress sends a ShardProgress frame.
func (c *Conn) WriteShardProgress(p *ShardProgress) error {
	return c.writeFrame(func(e *Encoder, dst []byte) ([]byte, error) {
		return e.ShardProgressFrame(dst, p)
	})
}

// WriteRunSpec sends a RunSpec frame.
func (c *Conn) WriteRunSpec(r *RunSpec) error {
	return c.writeFrame(func(e *Encoder, dst []byte) ([]byte, error) {
		return e.RunSpecFrame(dst, r)
	})
}

// Close closes the underlying connection. Safe to call concurrently
// with reads and writes; both then fail and the caller unwinds.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address for diagnostics.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// BytesRead returns the cumulative payload bytes received.
func (c *Conn) BytesRead() int64 { return c.rx.Load() }

// BytesWritten returns the cumulative frame bytes sent.
func (c *Conn) BytesWritten() int64 { return c.tx.Load() }
