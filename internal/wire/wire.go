// Package wire is the streaming control plane's binary codec: a
// length-prefixed frame format and hand-rolled encoders/decoders for
// the hot control-plane messages (board sync deltas, shard run specs,
// job progress events). It exists because the HTTP/JSON paths
// re-marshal whole structs per tick; the binary layout is a few
// percent of the JSON size and encodes with zero allocations through a
// reusable Encoder (see BenchmarkBoardSyncCodec in internal/dist).
//
// The package is stdlib-only and imports nothing from this repository,
// so every layer (dist, service, cmds, examples) can speak it without
// cycles. HTTP/JSON remains the fallback and compatibility surface —
// wire messages mirror the JSON structs; internal/dist and
// internal/service own the conversions.
//
// # Frame format
//
//	frame   := uvarint(length) byte(type) payload
//	length  := len(payload) + 1           (the type byte is counted)
//
// Varints are unsigned LEB128 (little-endian base-128, low 7 bits
// first — encoding/binary's format); signed fields use zigzag. Strings
// are uvarint length + UTF-8 bytes. Fixed-width fields (the handshake
// magic, packed configuration values, float64 bits) are explicitly
// little-endian. Configurations — the bulk of board traffic — are
// packed as fixed-width little-endian values sized to the largest
// element (1, 2 or 4 bytes), falling back to zigzag varints when a
// value is negative:
//
//	ints := byte(width) uvarint(count) values...   width ∈ {0,1,2,4}; 0 = zigzag varints
//
// Frames are capped at MaxFrame; every decode error is (or wraps) one
// of the typed errors, and decoders never panic on adversarial input
// (FuzzWireDecode pins this).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Protocol identity, exchanged in the Hello handshake.
const (
	// Magic is the first four bytes on every stream connection,
	// little-endian "RPW1".
	Magic uint32 = 0x31575052
	// Version is the protocol version; peers with mismatched versions
	// fail the handshake and fall back to HTTP/JSON.
	Version byte = 1
)

// MaxFrame caps one frame (type byte + payload). It matches the HTTP
// paths' board-sync body cap: it must hold one configuration of any
// protocol-legal instance.
const MaxFrame = 16 << 20

// Frame types.
const (
	// TypeHello opens a connection in both directions.
	TypeHello byte = 0x01
	// TypeBoardSync carries one elite-board delta (either direction).
	TypeBoardSync byte = 0x02
	// TypeSubscribe attaches the connection to a job's event flow
	// (board deltas on a dist stream, progress events on a service
	// stream).
	TypeSubscribe byte = 0x03
	// TypeProgress carries one job progress event.
	TypeProgress byte = 0x04
	// TypeRunSpec carries one shard run request (binary dispatch).
	TypeRunSpec byte = 0x05
	// TypeRegister carries one fleet-membership announcement (worker →
	// coordinator).
	TypeRegister byte = 0x06
	// TypeHeartbeat carries one fleet liveness refresh (worker →
	// coordinator).
	TypeHeartbeat byte = 0x07
	// TypeShardProgress carries one in-flight shard's progress report
	// (worker → coordinator), feeding the straggler detector.
	TypeShardProgress byte = 0x08
)

// Structural caps applied at decode time, before any allocation.
const (
	maxString = 4096
	maxElems  = 1 << 20
	maxSpecs  = 4096
	maxParams = 256
)

// Typed decode errors.
var (
	// ErrFrameTooBig reports a frame length above MaxFrame (or a
	// message that would encode above it).
	ErrFrameTooBig = errors.New("wire: frame exceeds size cap")
	// ErrTruncated reports input that ended mid-frame or mid-field.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrMalformed reports structurally invalid bytes: bad varints,
	// out-of-cap strings or slices, unknown layout modes.
	ErrMalformed = errors.New("wire: malformed payload")
)

// Hello is the connection handshake, sent first by both peers.
type Hello struct {
	// Role names the peer ("coordinator", "worker", "client",
	// "service") for diagnostics; it carries no protocol meaning.
	Role string
}

// Subscribe attaches the connection to one job's event flow.
type Subscribe struct {
	Job string
}

// BoardSync is one elite-board delta: the publisher's current best
// (Valid false when it has none), stamped with the board generation
// the publisher last saw. Gen lets the receiver answer "unchanged"
// instead of re-sending a configuration the peer already holds.
type BoardSync struct {
	Job   string
	Valid bool
	Cost  int64
	Gen   uint64
	Cfg   []int
}

// Progress is one job progress event: a lifecycle transition
// (queued→running→terminal) or a per-walker milestone (Walker >= 0).
// Terminal events carry the condensed result so a streaming client
// needs no follow-up status poll.
type Progress struct {
	Job        string
	State      string
	Walker     int64 // -1 for lifecycle events
	Iterations int64
	Cost       int64
	Terminal   bool
	Error      string
	Result     *ProgressResult // non-nil only on terminal events
}

// ProgressResult condenses a terminal job result for the stream.
// BestCost is the best known final cost across walkers that actually
// ran, or -1 when no walker reported one — the unknown-cost sentinel
// (core.CostUnknown, math.MaxInt) never crosses the wire as a cost.
type ProgressResult struct {
	Solved           bool
	Winner           int64
	WinnerStrategy   string
	WinnerIterations int64
	TotalIterations  int64
	Completed        int64
	Truncated        bool
	ElapsedMS        int64
	Adoptions        int64
	Yielded          int64
	BestCost         int64
	Solution         []int
}

// RunSpec mirrors the dist run request for binary dispatch: run the
// global walkers [Start, Start+Count) of a TotalWalkers-walker job.
// internal/dist owns the conversion to and from its JSON struct (and
// all semantic validation); this layer checks structure only.
type RunSpec struct {
	ID           string
	Mode         string
	Problem      string
	Size         int64
	Seed         uint64
	TotalWalkers int64
	Start        int64
	Count        int64
	Engine       EngineSpec
	Portfolio    []PortfolioSpec
	DeadlineMS   int64
	Exchange     ExchangeSpec
	Board        string
	BoardStream  string
	BoardJob     string
	// Params carries benchmark-specific problem parameters (the
	// finite-domain benchmarks' knobs). Encoded sorted by key so equal
	// specs produce identical bytes.
	Params map[string]int64
	// ProgressURL/ProgressStream/ProgressMS negotiate per-shard progress
	// reporting (the straggler detector's feed): the HTTP fallback
	// endpoint, the coordinator's stream hub address, and the report
	// period in milliseconds. All empty/zero when the coordinator does
	// not speculate.
	ProgressURL    string
	ProgressStream string
	ProgressMS     int64
}

// EngineSpec is the binary form of the dist engine spec.
type EngineSpec struct {
	MaxIterations    int64
	MaxRuns          int64
	FreezeLocMin     int64
	FreezeSwap       int64
	ResetLimit       int64
	ResetFraction    float64
	ProbSelectLocMin float64
	Strategy         string
	FirstBest        bool
	Exhaustive       bool
	CheckEvery       int64
	InitialConfig    []int
}

// PortfolioSpec is the binary form of one portfolio entry.
type PortfolioSpec struct {
	Weight int64
	Engine EngineSpec
}

// ExchangeSpec is the binary form of the dist exchange spec.
type ExchangeSpec struct {
	Enabled      bool
	Period       int64
	AdoptFactor  float64
	PerturbSwaps int64
	SyncMS       int64
}

// Register announces a worker to the coordinator's fleet registry. URL
// is the worker's advertised base URL (the coordinator probes it back
// before enrolling); Slots/Wire/Stream describe the worker's claimed
// capability, re-verified by the probe.
type Register struct {
	URL    string
	Slots  int64
	Wire   bool
	Stream bool
}

// ShardProgress is one in-flight shard run's progress report: the
// cumulative iteration count across the shard's walkers, sampled
// periodically by the worker and fed to the coordinator's straggler
// detector. Best is the lowest current cost across walkers that have
// reported at least one iteration, or -1 when none have — the
// unknown-cost sentinel never crosses the wire.
type ShardProgress struct {
	Run     string
	Iters   int64
	Walkers int64
	Best    int64
}

// Heartbeat refreshes a registered worker's liveness and capability.
// Busy is the worker's own busy-slot count (diagnostic; the coordinator
// keeps its own reservation ledger). Draining announces a graceful
// leave: the coordinator stops dispatching to the worker but lets
// in-flight shards finish.
type Heartbeat struct {
	URL      string
	Slots    int64
	Busy     int64
	Draining bool
}

// ---------------------------------------------------------------------
// Append-style primitives (encode side).

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// appendInts packs an int slice as fixed-width little-endian values
// sized to the largest element, or zigzag varints when any value is
// negative (or absurdly large).
func appendInts(dst []byte, v []int) []byte {
	width := byte(1)
	for _, x := range v {
		if x < 0 || uint64(x) > math.MaxUint32 {
			width = 0
			break
		}
		switch {
		case x > math.MaxUint16 && width < 4:
			width = 4
		case x > math.MaxUint8 && width < 2:
			width = 2
		}
	}
	dst = append(dst, width)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	switch width {
	case 0:
		for _, x := range v {
			dst = binary.AppendVarint(dst, int64(x))
		}
	case 1:
		for _, x := range v {
			dst = append(dst, byte(x))
		}
	case 2:
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(x))
		}
	default:
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
		}
	}
	return dst
}

// ---------------------------------------------------------------------
// Cursor-style decoder. Every accessor records the first failure and
// returns zero values afterwards, so message decoders read linearly
// and check d.err once.

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(fmt.Errorf("%w: uvarint overflow", ErrMalformed))
		}
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(fmt.Errorf("%w: varint overflow", ErrMalformed))
		}
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail(ErrTruncated)
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: bool out of range", ErrMalformed))
		return false
	}
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return f
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxString {
		d.fail(fmt.Errorf("%w: string of %d bytes exceeds %d", ErrMalformed, n, maxString))
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail(ErrTruncated)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) ints() []int {
	width := d.byte()
	count := d.uvarint()
	if d.err != nil {
		return nil
	}
	if count > maxElems {
		d.fail(fmt.Errorf("%w: %d values exceed %d", ErrMalformed, count, maxElems))
		return nil
	}
	// Every value occupies at least one byte in every mode, so a count
	// above the remaining bytes is malformed — checked before the
	// allocation, keeping adversarial counts cheap.
	if count > uint64(len(d.buf)) {
		d.fail(ErrTruncated)
		return nil
	}
	if count == 0 {
		return nil
	}
	out := make([]int, count)
	switch width {
	case 0:
		for i := range out {
			out[i] = int(d.varint())
		}
	case 1:
		for i := range out {
			out[i] = int(d.byte())
		}
	case 2:
		if uint64(len(d.buf)) < 2*count {
			d.fail(ErrTruncated)
			return nil
		}
		for i := range out {
			out[i] = int(binary.LittleEndian.Uint16(d.buf[2*i:]))
		}
		d.buf = d.buf[2*count:]
	case 4:
		if uint64(len(d.buf)) < 4*count {
			d.fail(ErrTruncated)
			return nil
		}
		for i := range out {
			out[i] = int(binary.LittleEndian.Uint32(d.buf[4*i:]))
		}
		d.buf = d.buf[4*count:]
	default:
		d.fail(fmt.Errorf("%w: unknown int width %d", ErrMalformed, width))
		return nil
	}
	if d.err != nil {
		return nil
	}
	return out
}

// finish asserts the payload was consumed exactly.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.buf))
	}
	return nil
}

// ---------------------------------------------------------------------
// Message payloads. AppendX produces the payload only (no frame
// header); DecodeX parses exactly one payload.

// AppendHello appends a Hello payload: fixed little-endian magic,
// version byte, role.
func AppendHello(dst []byte, h *Hello) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = append(dst, Version)
	return appendString(dst, h.Role)
}

// DecodeHello parses a Hello payload, verifying magic and version.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) < 5 {
		return Hello{}, ErrTruncated
	}
	if got := binary.LittleEndian.Uint32(p); got != Magic {
		return Hello{}, fmt.Errorf("%w: bad magic %#x", ErrMalformed, got)
	}
	if p[4] != Version {
		return Hello{}, fmt.Errorf("%w: protocol version %d (want %d)", ErrMalformed, p[4], Version)
	}
	d := decoder{buf: p[5:]}
	h := Hello{Role: d.string()}
	return h, d.finish()
}

// AppendSubscribe appends a Subscribe payload.
func AppendSubscribe(dst []byte, s *Subscribe) []byte {
	return appendString(dst, s.Job)
}

// DecodeSubscribe parses a Subscribe payload.
func DecodeSubscribe(p []byte) (Subscribe, error) {
	d := decoder{buf: p}
	s := Subscribe{Job: d.string()}
	return s, d.finish()
}

// AppendBoardSync appends a BoardSync payload.
func AppendBoardSync(dst []byte, m *BoardSync) []byte {
	dst = appendString(dst, m.Job)
	dst = appendBool(dst, m.Valid)
	dst = binary.AppendVarint(dst, m.Cost)
	dst = binary.AppendUvarint(dst, m.Gen)
	return appendInts(dst, m.Cfg)
}

// DecodeBoardSync parses a BoardSync payload.
func DecodeBoardSync(p []byte) (BoardSync, error) {
	d := decoder{buf: p}
	m := BoardSync{
		Job:   d.string(),
		Valid: d.bool(),
		Cost:  d.varint(),
		Gen:   d.uvarint(),
		Cfg:   d.ints(),
	}
	return m, d.finish()
}

// AppendProgress appends a Progress payload.
func AppendProgress(dst []byte, p *Progress) []byte {
	dst = appendString(dst, p.Job)
	dst = appendString(dst, p.State)
	dst = binary.AppendVarint(dst, p.Walker)
	dst = binary.AppendVarint(dst, p.Iterations)
	dst = binary.AppendVarint(dst, p.Cost)
	dst = appendBool(dst, p.Terminal)
	dst = appendString(dst, p.Error)
	dst = appendBool(dst, p.Result != nil)
	if r := p.Result; r != nil {
		dst = appendBool(dst, r.Solved)
		dst = binary.AppendVarint(dst, r.Winner)
		dst = appendString(dst, r.WinnerStrategy)
		dst = binary.AppendVarint(dst, r.WinnerIterations)
		dst = binary.AppendVarint(dst, r.TotalIterations)
		dst = binary.AppendVarint(dst, r.Completed)
		dst = appendBool(dst, r.Truncated)
		dst = binary.AppendVarint(dst, r.ElapsedMS)
		dst = binary.AppendVarint(dst, r.Adoptions)
		dst = binary.AppendVarint(dst, r.Yielded)
		dst = binary.AppendVarint(dst, r.BestCost)
		dst = appendInts(dst, r.Solution)
	}
	return dst
}

// DecodeProgress parses a Progress payload.
func DecodeProgress(p []byte) (Progress, error) {
	d := decoder{buf: p}
	ev := Progress{
		Job:        d.string(),
		State:      d.string(),
		Walker:     d.varint(),
		Iterations: d.varint(),
		Cost:       d.varint(),
		Terminal:   d.bool(),
		Error:      d.string(),
	}
	if d.bool() {
		ev.Result = &ProgressResult{
			Solved:           d.bool(),
			Winner:           d.varint(),
			WinnerStrategy:   d.string(),
			WinnerIterations: d.varint(),
			TotalIterations:  d.varint(),
			Completed:        d.varint(),
			Truncated:        d.bool(),
			ElapsedMS:        d.varint(),
			Adoptions:        d.varint(),
			Yielded:          d.varint(),
			BestCost:         d.varint(),
			Solution:         d.ints(),
		}
	}
	return ev, d.finish()
}

func appendEngineSpec(dst []byte, e *EngineSpec) []byte {
	dst = binary.AppendVarint(dst, e.MaxIterations)
	dst = binary.AppendVarint(dst, e.MaxRuns)
	dst = binary.AppendVarint(dst, e.FreezeLocMin)
	dst = binary.AppendVarint(dst, e.FreezeSwap)
	dst = binary.AppendVarint(dst, e.ResetLimit)
	dst = appendFloat(dst, e.ResetFraction)
	dst = appendFloat(dst, e.ProbSelectLocMin)
	dst = appendString(dst, e.Strategy)
	dst = appendBool(dst, e.FirstBest)
	dst = appendBool(dst, e.Exhaustive)
	dst = binary.AppendVarint(dst, e.CheckEvery)
	return appendInts(dst, e.InitialConfig)
}

func (d *decoder) engineSpec() EngineSpec {
	return EngineSpec{
		MaxIterations:    d.varint(),
		MaxRuns:          d.varint(),
		FreezeLocMin:     d.varint(),
		FreezeSwap:       d.varint(),
		ResetLimit:       d.varint(),
		ResetFraction:    d.float(),
		ProbSelectLocMin: d.float(),
		Strategy:         d.string(),
		FirstBest:        d.bool(),
		Exhaustive:       d.bool(),
		CheckEvery:       d.varint(),
		InitialConfig:    d.ints(),
	}
}

// AppendRunSpec appends a RunSpec payload.
func AppendRunSpec(dst []byte, r *RunSpec) []byte {
	dst = appendString(dst, r.ID)
	dst = appendString(dst, r.Mode)
	dst = appendString(dst, r.Problem)
	dst = binary.AppendVarint(dst, r.Size)
	dst = binary.AppendUvarint(dst, r.Seed)
	dst = binary.AppendVarint(dst, r.TotalWalkers)
	dst = binary.AppendVarint(dst, r.Start)
	dst = binary.AppendVarint(dst, r.Count)
	dst = appendEngineSpec(dst, &r.Engine)
	dst = binary.AppendUvarint(dst, uint64(len(r.Portfolio)))
	for i := range r.Portfolio {
		dst = binary.AppendVarint(dst, r.Portfolio[i].Weight)
		dst = appendEngineSpec(dst, &r.Portfolio[i].Engine)
	}
	dst = binary.AppendVarint(dst, r.DeadlineMS)
	dst = appendBool(dst, r.Exchange.Enabled)
	dst = binary.AppendVarint(dst, r.Exchange.Period)
	dst = appendFloat(dst, r.Exchange.AdoptFactor)
	dst = binary.AppendVarint(dst, r.Exchange.PerturbSwaps)
	dst = binary.AppendVarint(dst, r.Exchange.SyncMS)
	dst = appendString(dst, r.Board)
	dst = appendString(dst, r.BoardStream)
	dst = appendString(dst, r.BoardJob)
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = binary.AppendVarint(dst, r.Params[k])
	}
	dst = appendString(dst, r.ProgressURL)
	dst = appendString(dst, r.ProgressStream)
	return binary.AppendVarint(dst, r.ProgressMS)
}

// DecodeRunSpec parses a RunSpec payload.
func DecodeRunSpec(p []byte) (RunSpec, error) {
	d := decoder{buf: p}
	r := RunSpec{
		ID:           d.string(),
		Mode:         d.string(),
		Problem:      d.string(),
		Size:         d.varint(),
		Seed:         d.uvarint(),
		TotalWalkers: d.varint(),
		Start:        d.varint(),
		Count:        d.varint(),
		Engine:       d.engineSpec(),
	}
	n := d.uvarint()
	if n > maxSpecs {
		d.fail(fmt.Errorf("%w: portfolio of %d entries exceeds %d", ErrMalformed, n, maxSpecs))
	}
	if d.err == nil {
		for i := uint64(0); i < n && d.err == nil; i++ {
			r.Portfolio = append(r.Portfolio, PortfolioSpec{
				Weight: d.varint(),
				Engine: d.engineSpec(),
			})
		}
	}
	r.DeadlineMS = d.varint()
	r.Exchange = ExchangeSpec{
		Enabled:      d.bool(),
		Period:       d.varint(),
		AdoptFactor:  d.float(),
		PerturbSwaps: d.varint(),
		SyncMS:       d.varint(),
	}
	r.Board = d.string()
	r.BoardStream = d.string()
	r.BoardJob = d.string()
	pn := d.uvarint()
	if pn > maxParams {
		d.fail(fmt.Errorf("%w: %d problem parameters exceed %d", ErrMalformed, pn, maxParams))
	}
	if d.err == nil && pn > 0 {
		r.Params = make(map[string]int64, pn)
		for i := uint64(0); i < pn && d.err == nil; i++ {
			k := d.string()
			r.Params[k] = d.varint()
		}
	}
	r.ProgressURL = d.string()
	r.ProgressStream = d.string()
	r.ProgressMS = d.varint()
	return r, d.finish()
}

// AppendRegister appends a Register payload.
func AppendRegister(dst []byte, r *Register) []byte {
	dst = appendString(dst, r.URL)
	dst = binary.AppendVarint(dst, r.Slots)
	dst = appendBool(dst, r.Wire)
	return appendBool(dst, r.Stream)
}

// DecodeRegister parses a Register payload.
func DecodeRegister(p []byte) (Register, error) {
	d := decoder{buf: p}
	r := Register{
		URL:    d.string(),
		Slots:  d.varint(),
		Wire:   d.bool(),
		Stream: d.bool(),
	}
	return r, d.finish()
}

// AppendShardProgress appends a ShardProgress payload.
func AppendShardProgress(dst []byte, p *ShardProgress) []byte {
	dst = appendString(dst, p.Run)
	dst = binary.AppendVarint(dst, p.Iters)
	dst = binary.AppendVarint(dst, p.Walkers)
	return binary.AppendVarint(dst, p.Best)
}

// DecodeShardProgress parses a ShardProgress payload.
func DecodeShardProgress(p []byte) (ShardProgress, error) {
	d := decoder{buf: p}
	sp := ShardProgress{
		Run:     d.string(),
		Iters:   d.varint(),
		Walkers: d.varint(),
		Best:    d.varint(),
	}
	return sp, d.finish()
}

// AppendHeartbeat appends a Heartbeat payload.
func AppendHeartbeat(dst []byte, h *Heartbeat) []byte {
	dst = appendString(dst, h.URL)
	dst = binary.AppendVarint(dst, h.Slots)
	dst = binary.AppendVarint(dst, h.Busy)
	return appendBool(dst, h.Draining)
}

// DecodeHeartbeat parses a Heartbeat payload.
func DecodeHeartbeat(p []byte) (Heartbeat, error) {
	d := decoder{buf: p}
	h := Heartbeat{
		URL:      d.string(),
		Slots:    d.varint(),
		Busy:     d.varint(),
		Draining: d.bool(),
	}
	return h, d.finish()
}

// ---------------------------------------------------------------------
// Framing.

// Encoder frames messages with a reusable scratch buffer: steady-state
// encodes allocate nothing once the scratch has grown to the working
// set. An Encoder is not safe for concurrent use.
type Encoder struct {
	scratch []byte
}

// frame appends uvarint(len(scratch)+1), the type byte and the scratch
// payload to dst.
func (e *Encoder) frame(dst []byte, typ byte) ([]byte, error) {
	if len(e.scratch)+1 > MaxFrame {
		return dst, ErrFrameTooBig
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.scratch)+1))
	dst = append(dst, typ)
	return append(dst, e.scratch...), nil
}

// HelloFrame appends a framed Hello to dst.
func (e *Encoder) HelloFrame(dst []byte, h *Hello) ([]byte, error) {
	e.scratch = AppendHello(e.scratch[:0], h)
	return e.frame(dst, TypeHello)
}

// SubscribeFrame appends a framed Subscribe to dst.
func (e *Encoder) SubscribeFrame(dst []byte, s *Subscribe) ([]byte, error) {
	e.scratch = AppendSubscribe(e.scratch[:0], s)
	return e.frame(dst, TypeSubscribe)
}

// BoardSyncFrame appends a framed BoardSync to dst.
func (e *Encoder) BoardSyncFrame(dst []byte, m *BoardSync) ([]byte, error) {
	e.scratch = AppendBoardSync(e.scratch[:0], m)
	return e.frame(dst, TypeBoardSync)
}

// ProgressFrame appends a framed Progress to dst.
func (e *Encoder) ProgressFrame(dst []byte, p *Progress) ([]byte, error) {
	e.scratch = AppendProgress(e.scratch[:0], p)
	return e.frame(dst, TypeProgress)
}

// RunSpecFrame appends a framed RunSpec to dst.
func (e *Encoder) RunSpecFrame(dst []byte, r *RunSpec) ([]byte, error) {
	e.scratch = AppendRunSpec(e.scratch[:0], r)
	return e.frame(dst, TypeRunSpec)
}

// RegisterFrame appends a framed Register to dst.
func (e *Encoder) RegisterFrame(dst []byte, r *Register) ([]byte, error) {
	e.scratch = AppendRegister(e.scratch[:0], r)
	return e.frame(dst, TypeRegister)
}

// HeartbeatFrame appends a framed Heartbeat to dst.
func (e *Encoder) HeartbeatFrame(dst []byte, h *Heartbeat) ([]byte, error) {
	e.scratch = AppendHeartbeat(e.scratch[:0], h)
	return e.frame(dst, TypeHeartbeat)
}

// ShardProgressFrame appends a framed ShardProgress to dst.
func (e *Encoder) ShardProgressFrame(dst []byte, p *ShardProgress) ([]byte, error) {
	e.scratch = AppendShardProgress(e.scratch[:0], p)
	return e.frame(dst, TypeShardProgress)
}

// DecodeFrame splits one frame off data, returning its type, payload
// and the remaining bytes. io.ErrUnexpectedEOF-style partial input is
// ErrTruncated; a clean empty input is reported as (0, nil, nil, nil)
// rest with zero length — callers detect end-of-input by len(data).
func DecodeFrame(data []byte) (typ byte, payload, rest []byte, err error) {
	if len(data) == 0 {
		return 0, nil, nil, nil
	}
	n, w := binary.Uvarint(data)
	if w <= 0 {
		if w == 0 {
			return 0, nil, nil, ErrTruncated
		}
		return 0, nil, nil, fmt.Errorf("%w: frame length overflow", ErrMalformed)
	}
	if n == 0 {
		return 0, nil, nil, fmt.Errorf("%w: empty frame", ErrMalformed)
	}
	if n > MaxFrame {
		return 0, nil, nil, ErrFrameTooBig
	}
	data = data[w:]
	if uint64(len(data)) < n {
		return 0, nil, nil, ErrTruncated
	}
	return data[0], data[1:n], data[n:], nil
}
