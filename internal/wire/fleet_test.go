package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestRegisterRoundTrip(t *testing.T) {
	cases := []Register{
		{},
		{URL: "http://10.0.0.7:9101", Slots: 8, Wire: true, Stream: true},
		{URL: "https://worker.example:443/base", Slots: 1},
	}
	for _, in := range cases {
		buf := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) { return e.RegisterFrame(dst, &in) })
		typ, payload, rest, err := DecodeFrame(buf)
		if err != nil || typ != TypeRegister || len(rest) != 0 {
			t.Fatalf("DecodeFrame: typ=%#x rest=%d err=%v", typ, len(rest), err)
		}
		out, err := DecodeRegister(payload)
		if err != nil {
			t.Fatalf("DecodeRegister(%+v): %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	cases := []Heartbeat{
		{},
		{URL: "http://10.0.0.7:9101", Slots: 8, Busy: 3},
		{URL: "http://w:1", Slots: 2, Busy: 2, Draining: true},
	}
	for _, in := range cases {
		buf := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) { return e.HeartbeatFrame(dst, &in) })
		typ, payload, rest, err := DecodeFrame(buf)
		if err != nil || typ != TypeHeartbeat || len(rest) != 0 {
			t.Fatalf("DecodeFrame: typ=%#x rest=%d err=%v", typ, len(rest), err)
		}
		out, err := DecodeHeartbeat(payload)
		if err != nil {
			t.Fatalf("DecodeHeartbeat(%+v): %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	}
}

// TestFleetDecodeErrorsAreTyped: truncated fleet payloads surface a
// typed decode error, never a panic or a zero-value message taken as
// valid.
func TestFleetDecodeErrorsAreTyped(t *testing.T) {
	reg := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) {
		return e.RegisterFrame(dst, &Register{URL: "http://w:9", Slots: 4, Wire: true})
	})
	_, payload, _, err := DecodeFrame(reg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeRegister(payload[:cut]); !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated register at %d: err = %v, want a typed decode error", cut, err)
		}
	}

	hb := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) {
		return e.HeartbeatFrame(dst, &Heartbeat{URL: "http://w:9", Slots: 4, Busy: 1, Draining: true})
	})
	_, payload, _, err = DecodeFrame(hb)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeHeartbeat(payload[:cut]); !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated heartbeat at %d: err = %v, want a typed decode error", cut, err)
		}
	}
}
