package wire

import (
	"errors"
	"math"
	"net"
	"reflect"
	"testing"
	"time"
)

func frameOf(t *testing.T, build func(*Encoder, []byte) ([]byte, error)) []byte {
	t.Helper()
	var e Encoder
	out, err := build(&e, nil)
	if err != nil {
		t.Fatalf("encoding frame: %v", err)
	}
	return out
}

func TestBoardSyncRoundTrip(t *testing.T) {
	cases := []BoardSync{
		{},
		{Job: "job000001", Valid: true, Cost: 42, Gen: 7, Cfg: []int{3, 1, 4, 1, 5}},
		{Job: "j", Valid: true, Cost: -9, Gen: math.MaxUint64, Cfg: []int{-1, 70000, 2}},
		{Job: "wide", Valid: true, Cost: 1 << 40, Cfg: []int{0, 255, 256, 65535, 65536, 1 << 20}},
	}
	for _, in := range cases {
		buf := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) { return e.BoardSyncFrame(dst, &in) })
		typ, payload, rest, err := DecodeFrame(buf)
		if err != nil || typ != TypeBoardSync || len(rest) != 0 {
			t.Fatalf("DecodeFrame: typ=%#x rest=%d err=%v", typ, len(rest), err)
		}
		out, err := DecodeBoardSync(payload)
		if err != nil {
			t.Fatalf("DecodeBoardSync(%+v): %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	}
}

func TestProgressRoundTrip(t *testing.T) {
	cases := []Progress{
		{Job: "j000001", State: "queued", Walker: -1},
		{Job: "j000002", State: "running", Walker: 3, Iterations: 123456, Cost: 9},
		{
			Job: "j000003", State: "solved", Walker: -1, Terminal: true,
			Result: &ProgressResult{
				Solved: true, Winner: 2, WinnerStrategy: "adaptive", WinnerIterations: 999,
				TotalIterations: 4321, Completed: 4, ElapsedMS: 17, Adoptions: 3, Yielded: 1,
				Solution: []int{2, 0, 3, 1},
			},
		},
		{Job: "j000004", State: "failed", Walker: -1, Terminal: true, Error: "bad request"},
	}
	for _, in := range cases {
		buf := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) { return e.ProgressFrame(dst, &in) })
		typ, payload, _, err := DecodeFrame(buf)
		if err != nil || typ != TypeProgress {
			t.Fatalf("DecodeFrame: typ=%#x err=%v", typ, err)
		}
		out, err := DecodeProgress(payload)
		if err != nil {
			t.Fatalf("DecodeProgress(%+v): %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	}
}

func TestRunSpecRoundTrip(t *testing.T) {
	in := RunSpec{
		ID: "job000009-s1", Mode: "run", Problem: "magic-square", Size: 14,
		Seed: 20260729, TotalWalkers: 3, Start: 1, Count: 2,
		Engine: EngineSpec{
			MaxIterations: 300000, MaxRuns: 1, FreezeLocMin: 2, FreezeSwap: 3,
			ResetLimit: 4, ResetFraction: 0.25, ProbSelectLocMin: 0.5,
			Strategy: "adaptive", FirstBest: true, CheckEvery: 64,
			InitialConfig: []int{1, 0, 2},
		},
		Portfolio: []PortfolioSpec{
			{Weight: 1, Engine: EngineSpec{Strategy: "adaptive"}},
			{Weight: 2, Engine: EngineSpec{Strategy: "random-walk", Exhaustive: true}},
		},
		DeadlineMS:     5000,
		Exchange:       ExchangeSpec{Enabled: true, Period: 64, AdoptFactor: 1.0, PerturbSwaps: 2, SyncMS: 2},
		Board:          "http://127.0.0.1:1234/v1/runs/job000009/board",
		BoardStream:    "127.0.0.1:5678",
		BoardJob:       "job000009",
		ProgressURL:    "http://127.0.0.1:1234/v1/runs/job000009-s1/progress",
		ProgressStream: "127.0.0.1:5678",
		ProgressMS:     250,
	}
	buf := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) { return e.RunSpecFrame(dst, &in) })
	typ, payload, _, err := DecodeFrame(buf)
	if err != nil || typ != TypeRunSpec {
		t.Fatalf("DecodeFrame: typ=%#x err=%v", typ, err)
	}
	out, err := DecodeRunSpec(payload)
	if err != nil {
		t.Fatalf("DecodeRunSpec: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestShardProgressRoundTrip(t *testing.T) {
	cases := []ShardProgress{
		{Run: "job000001-s0", Best: -1},
		{Run: "job000001-s1", Iters: 123456, Walkers: 3, Best: 42},
		{Run: "job000002-b1-s0", Iters: 1 << 40, Walkers: 8, Best: 0},
	}
	for _, in := range cases {
		buf := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) { return e.ShardProgressFrame(dst, &in) })
		typ, payload, rest, err := DecodeFrame(buf)
		if err != nil || typ != TypeShardProgress || len(rest) != 0 {
			t.Fatalf("DecodeFrame: typ=%#x rest=%d err=%v", typ, len(rest), err)
		}
		out, err := DecodeShardProgress(payload)
		if err != nil {
			t.Fatalf("DecodeShardProgress(%+v): %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	}
}

func TestHelloSubscribeRoundTrip(t *testing.T) {
	hbuf := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) { return e.HelloFrame(dst, &Hello{Role: "worker"}) })
	typ, payload, _, err := DecodeFrame(hbuf)
	if err != nil || typ != TypeHello {
		t.Fatalf("DecodeFrame(hello): typ=%#x err=%v", typ, err)
	}
	h, err := DecodeHello(payload)
	if err != nil || h.Role != "worker" {
		t.Fatalf("DecodeHello: %+v err=%v", h, err)
	}

	sbuf := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) {
		return e.SubscribeFrame(dst, &Subscribe{Job: "job000001"})
	})
	typ, payload, _, err = DecodeFrame(sbuf)
	if err != nil || typ != TypeSubscribe {
		t.Fatalf("DecodeFrame(subscribe): typ=%#x err=%v", typ, err)
	}
	s, err := DecodeSubscribe(payload)
	if err != nil || s.Job != "job000001" {
		t.Fatalf("DecodeSubscribe: %+v err=%v", s, err)
	}
}

func TestDecodeErrorsAreTyped(t *testing.T) {
	valid := frameOf(t, func(e *Encoder, dst []byte) ([]byte, error) {
		return e.BoardSyncFrame(dst, &BoardSync{Job: "j", Valid: true, Cost: 3, Cfg: []int{1, 0, 2}})
	})

	// Truncation at every prefix must yield ErrTruncated (or parse a
	// strictly shorter frame — impossible here, there is only one).
	for cut := 1; cut < len(valid); cut++ {
		_, _, _, err := DecodeFrame(valid[:cut])
		if err == nil {
			// The length prefix itself may be complete while the payload
			// is short — DecodeFrame reports that as ErrTruncated too, so
			// reaching here means the cut fell inside the varint and
			// still parsed. Not possible for this frame size.
			t.Fatalf("cut=%d: no error", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrMalformed) {
			t.Errorf("cut=%d: error %v is neither ErrTruncated nor ErrMalformed", cut, err)
		}
	}

	// Oversized length prefix.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized frame: got %v, want ErrFrameTooBig", err)
	}

	// Declared string longer than the payload.
	typ, payload, _, _ := DecodeFrame(valid)
	if typ != TypeBoardSync {
		t.Fatalf("typ=%#x", typ)
	}
	corrupt := append([]byte{0xff, 0x7f}, payload[1:]...)
	if _, err := DecodeBoardSync(corrupt); !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrTruncated) {
		t.Errorf("corrupt string length: got %v", err)
	}

	// Trailing garbage after a complete message.
	if _, err := DecodeBoardSync(append(append([]byte(nil), payload...), 0xAA)); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing bytes: got %v, want ErrMalformed", err)
	}

	// Encoder must refuse messages that would exceed the frame cap.
	var e Encoder
	if _, err := e.BoardSyncFrame(nil, &BoardSync{Cfg: make([]int, MaxFrame)}); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized encode: got %v, want ErrFrameTooBig", err)
	}
}

// TestEncoderReuseIsStable pins that a reused Encoder produces
// identical bytes across calls (the zero-alloc fast path must not
// leak state between messages).
func TestEncoderReuseIsStable(t *testing.T) {
	m := BoardSync{Job: "job000001", Valid: true, Cost: 11, Gen: 3, Cfg: []int{5, 4, 3, 2, 1, 0}}
	var e Encoder
	first, err := e.BoardSyncFrame(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		again, err := e.BoardSyncFrame(nil, &m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("encode %d differs from first", i)
		}
	}
}

// TestConnHandshakeAndFrames drives a real TCP pair through the
// handshake and a multiplexed write/read exchange, including the byte
// counters the telemetry layer samples.
func TestConnHandshakeAndFrames(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type serverResult struct {
		hello Hello
		sub   Subscribe
		sync  BoardSync
		err   error
	}
	done := make(chan serverResult, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- serverResult{err: err}
			return
		}
		c := NewConn(nc)
		defer c.Close()
		h, err := c.AcceptHandshake("hub", 5*time.Second)
		if err != nil {
			done <- serverResult{err: err}
			return
		}
		var out serverResult
		out.hello = h
		typ, payload, err := c.ReadFrame()
		if err != nil || typ != TypeSubscribe {
			done <- serverResult{err: err}
			return
		}
		out.sub, _ = DecodeSubscribe(payload)
		typ, payload, err = c.ReadFrame()
		if err != nil || typ != TypeBoardSync {
			done <- serverResult{err: err}
			return
		}
		out.sync, _ = DecodeBoardSync(payload)
		// Answer with the "global best" so the client read path is
		// exercised too.
		out.err = c.WriteBoardSync(&BoardSync{Job: out.sync.Job, Valid: true, Cost: 1, Gen: 1, Cfg: []int{1, 0}})
		done <- out
	}()

	c, err := Dial(ln.Addr().String(), "worker", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteSubscribe("job000001"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBoardSync(&BoardSync{Job: "job000001", Valid: true, Cost: 5, Cfg: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := c.ReadFrame()
	if err != nil || typ != TypeBoardSync {
		t.Fatalf("client read: typ=%#x err=%v", typ, err)
	}
	global, err := DecodeBoardSync(payload)
	if err != nil || global.Cost != 1 || global.Gen != 1 {
		t.Fatalf("global = %+v err=%v", global, err)
	}

	srv := <-done
	if srv.err != nil {
		t.Fatalf("server: %v", srv.err)
	}
	if srv.hello.Role != "worker" || srv.sub.Job != "job000001" || srv.sync.Cost != 5 {
		t.Errorf("server saw hello=%+v sub=%+v sync=%+v", srv.hello, srv.sub, srv.sync)
	}
	if c.BytesWritten() == 0 || c.BytesRead() == 0 {
		t.Errorf("byte counters not maintained: tx=%d rx=%d", c.BytesWritten(), c.BytesRead())
	}
}
