package wire

import (
	"errors"
	"testing"
)

// FuzzWireDecode hammers every decoder with arbitrary bytes. The
// contract it pins: decoders never panic, never allocate past the
// structural caps, and every failure is (or wraps) one of the typed
// errors — ErrTruncated, ErrMalformed, ErrFrameTooBig.
func FuzzWireDecode(f *testing.F) {
	var e Encoder
	seed := [][]byte{
		{},
		{0x01},
		{0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	if b, err := e.BoardSyncFrame(nil, &BoardSync{Job: "job000001", Valid: true, Cost: 7, Gen: 2, Cfg: []int{2, 0, 1}}); err == nil {
		seed = append(seed, b)
	}
	if b, err := e.ProgressFrame(nil, &Progress{Job: "j1", State: "solved", Walker: -1, Terminal: true, Result: &ProgressResult{Solved: true, Solution: []int{0, 1}}}); err == nil {
		seed = append(seed, b)
	}
	if b, err := e.RunSpecFrame(nil, &RunSpec{ID: "r", Mode: "run", Problem: "queens", TotalWalkers: 1, Count: 1}); err == nil {
		seed = append(seed, b)
	}
	if b, err := e.HelloFrame(nil, &Hello{Role: "fuzz"}); err == nil {
		seed = append(seed, b)
	}
	for _, s := range seed {
		f.Add(s)
	}

	typed := func(t *testing.T, what string, err error) {
		if err == nil {
			return
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrFrameTooBig) {
			t.Errorf("%s: untyped error %v", what, err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the input as a frame sequence, decoding each payload by
		// its declared type — the exact loop a stream reader runs.
		rest := data
		for len(rest) > 0 {
			typ, payload, next, err := DecodeFrame(rest)
			typed(t, "DecodeFrame", err)
			if err != nil {
				break
			}
			switch typ {
			case TypeHello:
				_, err = DecodeHello(payload)
			case TypeBoardSync:
				_, err = DecodeBoardSync(payload)
			case TypeSubscribe:
				_, err = DecodeSubscribe(payload)
			case TypeProgress:
				_, err = DecodeProgress(payload)
			case TypeRunSpec:
				_, err = DecodeRunSpec(payload)
			}
			typed(t, "payload decode", err)
			rest = next
		}

		// Raw payloads against every decoder, independent of framing.
		_, err := DecodeBoardSync(data)
		typed(t, "DecodeBoardSync", err)
		_, err = DecodeProgress(data)
		typed(t, "DecodeProgress", err)
		_, err = DecodeRunSpec(data)
		typed(t, "DecodeRunSpec", err)
		_, err = DecodeHello(data)
		typed(t, "DecodeHello", err)
		_, err = DecodeSubscribe(data)
		typed(t, "DecodeSubscribe", err)
	})
}
