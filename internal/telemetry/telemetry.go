// Package telemetry is an FTDC-style append-only metrics recorder:
// periodic integer samples (per-walker iteration counts, adoption and
// yield totals, queue depth, board sync bytes) written as
// schema-delta-encoded frames to a compact log that cmd/experiments
// -ftdc-decode parses offline.
//
// The encoding borrows the two ideas that make MongoDB-style full-time
// diagnostic data capture cheap: (1) metric names are written once per
// schema, not per sample — a schema frame is emitted only when the
// name set changes; (2) samples carry only *changed* values, as a
// bitmask over the schema's fields plus one zigzag varint delta per
// set bit. An idle server's sample is a timestamp delta and a bitmask
// of zeros — a few bytes — while a hot one still only pays for the
// counters that moved.
//
// # Layout
//
// The file is a sequence of frames sharing internal/wire's framing
// discipline (uvarint length prefix counting the kind byte):
//
//	frame  := uvarint(length) byte(kind) payload
//	schema := uvarint(n) n × (uvarint(len) name-bytes)
//	sample := varint(ts_delta_ms) bitmask(ceil(n/8)) deltas...
//
// The first sample after a schema frame is its own baseline: its
// timestamp delta is relative to zero (absolute Unix milliseconds)
// and its values are deltas against zero (absolute values), with every
// bit set. Later samples are deltas against the previous sample. The
// bitmask is little-endian: bit i of byte i/8 covers schema field i.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Frame kinds.
const (
	kindSchema byte = 0x01
	kindSample byte = 0x02
)

// maxFrame caps one telemetry frame on the read side; a schema or
// sample larger than this is corruption, not data.
const maxFrame = 1 << 20

// maxMetrics caps the schema width.
const maxMetrics = 1 << 16

// ErrCorrupt reports a telemetry log that failed structural decoding.
var ErrCorrupt = errors.New("telemetry: corrupt log")

// Metric is one named integer observation.
type Metric struct {
	Name  string
	Value int64
}

// Sample is one decoded observation row.
type Sample struct {
	TS      time.Time
	Metrics []Metric
}

// Recorder appends schema-delta-encoded samples to w. It is safe for
// concurrent use; writes are serialized. The recorder never fails a
// caller on a short write — Record returns the error, but the next
// call proceeds from consistent state (the frame either landed whole
// or the decoder stops at the tear).
type Recorder struct {
	mu     sync.Mutex
	w      io.Writer
	schema []string
	prev   []int64
	prevTS int64
	buf    []byte
}

// NewRecorder writes frames to w. The caller owns w's lifecycle
// (typically an *os.File it closes after the last Record).
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w}
}

// Record appends one sample. The metric name set (in order) is the
// schema; when it differs from the previous call's, a schema frame is
// emitted first and the delta baseline resets. Callers should keep a
// stable order (sorted names) to avoid spurious schema churn.
func (r *Recorder) Record(ts time.Time, metrics []Metric) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	if len(metrics) > maxMetrics {
		return fmt.Errorf("telemetry: %d metrics exceed %d", len(metrics), maxMetrics)
	}
	if !r.sameSchema(metrics) {
		if err := r.writeSchema(metrics); err != nil {
			return err
		}
	}

	ms := ts.UnixMilli()
	nbits := (len(metrics) + 7) / 8
	r.buf = r.buf[:0]
	r.buf = binary.AppendVarint(r.buf, ms-r.prevTS)
	maskAt := len(r.buf)
	for i := 0; i < nbits; i++ {
		r.buf = append(r.buf, 0)
	}
	for i, m := range metrics {
		d := m.Value - r.prev[i]
		if d == 0 {
			continue
		}
		r.buf[maskAt+i/8] |= 1 << (i % 8)
		r.buf = binary.AppendVarint(r.buf, d)
	}
	if err := r.writeFrame(kindSample, r.buf); err != nil {
		return err
	}
	r.prevTS = ms
	for i, m := range metrics {
		r.prev[i] = m.Value
	}
	return nil
}

func (r *Recorder) sameSchema(metrics []Metric) bool {
	if len(metrics) != len(r.schema) {
		return false
	}
	for i, m := range metrics {
		if m.Name != r.schema[i] {
			return false
		}
	}
	return true
}

// writeSchema emits a schema frame and resets the delta baseline.
func (r *Recorder) writeSchema(metrics []Metric) error {
	r.buf = r.buf[:0]
	r.buf = binary.AppendUvarint(r.buf, uint64(len(metrics)))
	for _, m := range metrics {
		r.buf = binary.AppendUvarint(r.buf, uint64(len(m.Name)))
		r.buf = append(r.buf, m.Name...)
	}
	if err := r.writeFrame(kindSchema, r.buf); err != nil {
		return err
	}
	r.schema = r.schema[:0]
	for _, m := range metrics {
		r.schema = append(r.schema, m.Name)
	}
	r.prev = make([]int64, len(metrics))
	r.prevTS = 0
	return nil
}

func (r *Recorder) writeFrame(kind byte, payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)+1))
	hdr[n] = kind
	if _, err := r.w.Write(hdr[:n+1]); err != nil {
		return err
	}
	_, err := r.w.Write(payload)
	return err
}

// Decode reads a telemetry log back into samples. A log torn mid-frame
// (process killed between Write calls) yields the complete prefix plus
// ErrCorrupt; callers that expect tearing can use the samples anyway.
func Decode(rd io.Reader) ([]Sample, error) {
	br := newByteReader(rd)
	var (
		out    []Sample
		schema []string
		prev   []int64
		prevTS int64
	)
	for {
		length, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("%w: frame length: %v", ErrCorrupt, err)
		}
		if length == 0 || length > maxFrame {
			return out, fmt.Errorf("%w: frame of %d bytes", ErrCorrupt, length)
		}
		frame := make([]byte, length)
		if _, err := io.ReadFull(br, frame); err != nil {
			return out, fmt.Errorf("%w: torn frame: %v", ErrCorrupt, err)
		}
		kind, payload := frame[0], frame[1:]
		switch kind {
		case kindSchema:
			schema, err = decodeSchema(payload)
			if err != nil {
				return out, err
			}
			prev = make([]int64, len(schema))
			prevTS = 0
		case kindSample:
			if schema == nil {
				return out, fmt.Errorf("%w: sample before schema", ErrCorrupt)
			}
			s, err := decodeSample(payload, schema, prev, &prevTS)
			if err != nil {
				return out, err
			}
			out = append(out, s)
		default:
			return out, fmt.Errorf("%w: unknown frame kind %#x", ErrCorrupt, kind)
		}
	}
}

func decodeSchema(p []byte) ([]string, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > maxMetrics {
		return nil, fmt.Errorf("%w: schema header", ErrCorrupt)
	}
	p = p[w:]
	names := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, w := binary.Uvarint(p)
		if w <= 0 || uint64(len(p[w:])) < l {
			return nil, fmt.Errorf("%w: schema name %d", ErrCorrupt, i)
		}
		names = append(names, string(p[w:w+int(l)]))
		p = p[w+int(l):]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing schema bytes", ErrCorrupt, len(p))
	}
	return names, nil
}

// decodeSample reconstructs one row, mutating prev and prevTS to carry
// the running absolute values forward.
func decodeSample(p []byte, schema []string, prev []int64, prevTS *int64) (Sample, error) {
	dts, w := binary.Varint(p)
	if w <= 0 {
		return Sample{}, fmt.Errorf("%w: sample timestamp", ErrCorrupt)
	}
	p = p[w:]
	nbits := (len(schema) + 7) / 8
	if len(p) < nbits {
		return Sample{}, fmt.Errorf("%w: sample bitmask", ErrCorrupt)
	}
	mask := p[:nbits]
	p = p[nbits:]
	for i := range schema {
		if mask[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		d, w := binary.Varint(p)
		if w <= 0 {
			return Sample{}, fmt.Errorf("%w: sample delta for %s", ErrCorrupt, schema[i])
		}
		prev[i] += d
		p = p[w:]
	}
	if len(p) != 0 {
		return Sample{}, fmt.Errorf("%w: %d trailing sample bytes", ErrCorrupt, len(p))
	}
	*prevTS += dts
	s := Sample{TS: time.UnixMilli(*prevTS), Metrics: make([]Metric, len(schema))}
	for i, name := range schema {
		s.Metrics[i] = Metric{Name: name, Value: prev[i]}
	}
	return s, nil
}

// byteReader adapts any reader for binary.ReadUvarint without
// double-buffering files that are already in memory.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func newByteReader(r io.Reader) *byteReader {
	return &byteReader{r: r}
}

func (b *byteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(b.r, b.one[:])
	return b.one[0], err
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
