package telemetry

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	base := time.UnixMilli(1_700_000_000_000)

	rows := [][]Metric{
		{{"iterations_total", 0}, {"queue_depth", 3}},
		{{"iterations_total", 1000}, {"queue_depth", 3}}, // one unchanged field
		{{"iterations_total", 2500}, {"queue_depth", 0}},
		// Schema change: a walker appears.
		{{"iterations_total", 4000}, {"queue_depth", 0}, {"w0001_iter", 10}},
		{{"iterations_total", 4000}, {"queue_depth", 0}, {"w0001_iter", 20}}, // idle totals
	}
	for i, row := range rows {
		if err := r.Record(base.Add(time.Duration(i)*time.Second), row); err != nil {
			t.Fatalf("Record(%d): %v", i, err)
		}
	}

	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(rows))
	}
	for i, row := range rows {
		s := got[i]
		if want := base.Add(time.Duration(i) * time.Second); !s.TS.Equal(want) {
			t.Errorf("sample %d: ts %v, want %v", i, s.TS, want)
		}
		if len(s.Metrics) != len(row) {
			t.Fatalf("sample %d: %d metrics, want %d", i, len(s.Metrics), len(row))
		}
		for j, m := range row {
			if s.Metrics[j] != m {
				t.Errorf("sample %d metric %d: %+v, want %+v", i, j, s.Metrics[j], m)
			}
		}
	}
}

// TestDeltaCompression pins the encoding's point: unchanged counters
// cost zero value bytes, so an idle sample is a handful of bytes no
// matter how wide the schema is.
func TestDeltaCompression(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	wide := make([]Metric, 64)
	for i := range wide {
		wide[i] = Metric{Name: "metric_" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Value: int64(i * 1000)}
	}
	ts := time.UnixMilli(1_700_000_000_000)
	if err := r.Record(ts, wide); err != nil {
		t.Fatal(err)
	}
	afterFirst := buf.Len()
	// Idle tick: nothing moved.
	if err := r.Record(ts.Add(time.Second), wide); err != nil {
		t.Fatal(err)
	}
	idleBytes := buf.Len() - afterFirst
	// length prefix + kind + ts delta (2 bytes for 1000ms) + 8 mask
	// bytes = well under 16.
	if idleBytes > 16 {
		t.Errorf("idle sample of %d-metric schema cost %d bytes, want <= 16", len(wide), idleBytes)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 2 {
		t.Fatalf("Decode: %d samples, err %v", len(got), err)
	}
}

func TestTornLogYieldsPrefix(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	ts := time.UnixMilli(1_700_000_000_000)
	row := []Metric{{"a", 1}, {"b", 2}}
	for i := 0; i < 3; i++ {
		row[0].Value += int64(i)
		if err := r.Record(ts.Add(time.Duration(i)*time.Second), row); err != nil {
			t.Fatal(err)
		}
	}
	whole := buf.Bytes()
	torn := whole[:len(whole)-2]
	got, err := Decode(bytes.NewReader(torn))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn log: err = %v, want ErrCorrupt", err)
	}
	if len(got) != 2 {
		t.Errorf("torn log yielded %d complete samples, want 2", len(got))
	}
}

func TestDecodeGarbage(t *testing.T) {
	cases := [][]byte{
		{0x05, 0x02, 0x00, 0x00, 0x00, 0x00}, // sample before schema
		{0x03, 0x7f, 0x00, 0x00},             // unknown kind
		{0xff, 0xff, 0xff, 0xff, 0x7f},       // absurd length
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}
