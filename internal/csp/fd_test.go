package csp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/rng"
)

// fdTestModel is a small mixed model: two linear constraints (one with
// coefficients and a repeated variable) plus a custom constraint, over
// heterogeneous explicit domains.
func fdTestModel(t *testing.T) *CompiledFD {
	t.Helper()
	m := NewModel(5, 1)
	m.AddLinearSum("sum", []int{0, 1, 2}, nil, 9)
	m.AddLinearSum("coef", []int{2, 3, 0, 3}, []int{2, -1, 1, -1}, 1)
	m.AddCustom("near", []int{3, 4}, func(vals []int) int {
		d := vals[0] - vals[1]
		if d < 0 {
			d = -d
		}
		if d > 2 {
			return d - 2
		}
		return 0
	})
	m.SetDomainRange(0, 0, 4)
	m.SetDomain(1, 3, 1, 1, 5) // unsorted, duplicated: New must canonicalize
	m.SetDomainRange(3, 0, 6)
	m.SetDomain(4, 0, 2, 4, 6)
	// Variable 2 keeps the default domain [0, 5).
	p, err := m.CompileFD()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileFDDomains(t *testing.T) {
	p := fdTestModel(t)
	wantDoms := [][]int{
		{0, 1, 2, 3, 4},
		{1, 3, 5},
		{0, 1, 2, 3, 4},
		{0, 1, 2, 3, 4, 5, 6},
		{0, 2, 4, 6},
	}
	for i, want := range wantDoms {
		got := p.Domain(i)
		if len(got) != len(want) {
			t.Fatalf("Domain(%d) = %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Domain(%d) = %v, want %v", i, got, want)
			}
		}
	}
}

func TestCompileFDRejectsEmptyAndOutOfRange(t *testing.T) {
	m := NewModel(3, 0)
	m.AddLinearSum("s", []int{0, 1, 2}, nil, 3)
	m.SetDomainRange(1, 5, 2) // inverted: empty
	if _, err := m.CompileFD(); !errors.Is(err, ErrModel) {
		t.Fatalf("empty domain: err = %v, want ErrModel", err)
	}

	m2 := NewModel(3, 0)
	m2.AddLinearSum("s", []int{0, 1, 2}, nil, 3)
	m2.SetDomain(7, 1, 2)
	if _, err := m2.CompileFD(); !errors.Is(err, ErrModel) {
		t.Fatalf("out-of-range variable: err = %v, want ErrModel", err)
	}
}

// TestReduceDomainsPropagates checks the offset folding: with
// ValueOffset = 1, x+y == 4 over engine domains [0,4] means engine
// values must satisfy x+y == 2, so reduction clamps both to [0,2].
func TestReduceDomainsPropagates(t *testing.T) {
	m := NewModel(2, 1)
	m.AddLinearSum("s", []int{0, 1}, nil, 4)
	m.SetDomainRange(0, 0, 4)
	m.SetDomainRange(1, 0, 4)
	p, err := m.CompileFD()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReduceDomains(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		d := p.Domain(i)
		if len(d) != 3 || d[0] != 0 || d[2] != 2 {
			t.Fatalf("Domain(%d) = %v after reduction, want [0 1 2]", i, d)
		}
	}
}

// TestReduceDomainsUnsatisfiable: 2x == 7 has no integer solution; the
// typed proof must surface through ReduceDomains.
func TestReduceDomainsUnsatisfiable(t *testing.T) {
	m := NewModel(1, 0)
	m.AddLinearSum("odd", []int{0}, []int{2}, 7)
	m.SetDomainRange(0, 0, 10)
	p, err := m.CompileFD()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReduceDomains(); !errors.Is(err, domain.ErrUnsatisfiable) {
		t.Fatalf("ReduceDomains = %v, want ErrUnsatisfiable", err)
	}
}

// driveFDWalk walks the compiled FD problem through the engine's exact
// mutation pattern — Cost at run start, random in-domain assignments
// through ExecutedAssign, periodic full rebuilds — invoking check at
// every step.
func driveFDWalk(t *testing.T, p *CompiledFD, steps int, check func(cfg []int, cost int, step string)) {
	t.Helper()
	n := p.Size()
	r := rng.New(2012)
	cfg := make([]int, n)
	for i := range cfg {
		d := p.Domain(i)
		cfg[i] = d[r.Intn(len(d))]
	}
	cost := p.Cost(cfg)
	check(cfg, cost, "initial")
	for step := 0; step < steps; step++ {
		i := r.Intn(n)
		d := p.Domain(i)
		v := d[r.Intn(len(d))]
		cost = p.CostIfAssign(cfg, cost, i, v)
		old := cfg[i]
		cfg[i] = v
		p.ExecutedAssign(cfg, i, old)
		check(cfg, cost, "after assign")
		if step%37 == 0 {
			if rebuilt := p.Cost(cfg); rebuilt != cost {
				t.Fatalf("step %d: incremental cost %d != rebuilt cost %d", step, cost, rebuilt)
			}
			check(cfg, cost, "after Cost rebuild")
		}
	}
}

// TestFDAssignConsistency drives a random assignment walk and checks,
// at every step, the batched row against per-call CostIfAssign, the
// per-call delta against a from-scratch Cost of the mutated copy, and
// the maintained error vector against the per-variable scan.
func TestFDAssignConsistency(t *testing.T) {
	p := fdTestModel(t)
	n := p.Size()
	scratch := make([]int, n)
	row := make([]int, 16)
	// Reference instance over the same model: Cost recomputes every
	// constraint from scratch, so it never depends on p's caches.
	fresh, err := p.model.Compile()
	if err != nil {
		t.Fatal(err)
	}
	driveFDWalk(t, p, 150, func(cfg []int, cost int, step string) {
		for i := 0; i < n; i++ {
			d := p.Domain(i)
			p.CostsIfAssignAll(cfg, cost, i, row[:len(d)])
			for k, v := range d {
				want := p.CostIfAssign(cfg, cost, i, v)
				if row[k] != want {
					t.Fatalf("%s: CostsIfAssignAll(%d)[%d] = %d, CostIfAssign = %d (cfg %v)",
						step, i, k, row[k], want, cfg)
				}
				copy(scratch, cfg)
				scratch[i] = v
				if got := fresh.Cost(scratch); got != want {
					t.Fatalf("%s: CostIfAssign(%d, %d) = %d, fresh Cost = %d (cfg %v)",
						step, i, v, want, got, cfg)
				}
			}
		}
		live := p.LiveErrors(cfg)
		out := make([]int, n)
		p.ErrorsOnVariables(cfg, out)
		for i := 0; i < n; i++ {
			if want := p.CostOnVariable(cfg, i); live[i] != want || out[i] != want {
				t.Fatalf("%s: errVec[%d] live=%d out=%d, CostOnVariable=%d", step, i, live[i], out[i], want)
			}
		}
	})
}

// TestFDSolveEndToEnd runs the full engine over a compiled FD model and
// checks the solution satisfies every constraint, for each strategy.
func TestFDSolveEndToEnd(t *testing.T) {
	for _, strat := range core.StrategyNames() {
		t.Run(strat, func(t *testing.T) {
			m := NewModel(4, 1)
			m.AddLinearSum("sum", []int{0, 1, 2, 3}, nil, 14)
			m.AddLinearSum("pair", []int{0, 3}, nil, 7)
			m.SetDomainRange(0, 0, 5)
			m.SetDomainRange(1, 0, 5)
			m.SetDomainRange(2, 0, 5)
			m.SetDomainRange(3, 0, 5)
			p, err := m.CompileFD()
			if err != nil {
				t.Fatal(err)
			}
			opts := core.DefaultOptions(p.Size())
			opts.Strategy = strat
			opts.Seed = 7
			opts.MaxIterations = 20000
			res, err := core.Solve(context.Background(), p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Solved {
				t.Fatalf("unsolved: %v", res)
			}
			if res.Assigns == 0 {
				t.Fatalf("FD run reported zero assigns: %v", res)
			}
			if res.Swaps != 0 {
				t.Fatalf("FD run reported %d swaps, want 0", res.Swaps)
			}
			sum := 0
			for _, v := range res.Solution {
				sum += v + 1
			}
			if sum != 14 {
				t.Fatalf("solution %v sums to %d, want 14", res.Solution, sum)
			}
			if got := res.Solution[0] + res.Solution[3] + 2; got != 7 {
				t.Fatalf("solution %v: pair sums to %d, want 7", res.Solution, got)
			}
			if err := core.ValidateFDConfig(p, res.Solution); err != nil {
				t.Fatalf("solution outside domains: %v", err)
			}
		})
	}
}

// TestFDSolveUnsatisfiableSurfacesTypedError: the engine must run
// reduction pre-search and abort with the typed proof.
func TestFDSolveUnsatisfiableSurfacesTypedError(t *testing.T) {
	m := NewModel(2, 0)
	m.AddLinearSum("odd", []int{0, 1}, []int{2, 2}, 5)
	m.SetDomainRange(0, 0, 9)
	m.SetDomainRange(1, 0, 9)
	p, err := m.CompileFD()
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Solve(context.Background(), p, core.DefaultOptions(p.Size()))
	if !errors.Is(err, domain.ErrUnsatisfiable) {
		t.Fatalf("Solve = %v, want ErrUnsatisfiable", err)
	}
}
