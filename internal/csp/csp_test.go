package csp

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/rng"
)

// tinyModel: permutation of [0,4), values 1..4; constraints force a
// unique-ish structure: v(0)+v(1) == 3 and v(2)*v(3) == 12 (only {3,4}
// in some order), plus a custom all-even-position constraint.
func tinyModel(t *testing.T) *Compiled {
	t.Helper()
	m := NewModel(4, 1)
	m.AddLinearSum("sum01", []int{0, 1}, nil, 3)
	m.AddCustom("prod23", []int{2, 3}, func(vals []int) int {
		d := vals[0]*vals[1] - 12
		if d < 0 {
			d = -d
		}
		return d
	})
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileValidation(t *testing.T) {
	if _, err := NewModel(0, 0).Compile(); err == nil {
		t.Error("0 variables accepted")
	}
	if _, err := NewModel(3, 0).Compile(); err == nil {
		t.Error("no constraints accepted")
	}
	m := NewModel(3, 0)
	m.AddLinearSum("empty", nil, nil, 5)
	if _, err := m.Compile(); err == nil {
		t.Error("constraint without variables accepted")
	}
	m2 := NewModel(3, 0)
	m2.AddLinearSum("badvar", []int{5}, nil, 5)
	if _, err := m2.Compile(); err == nil {
		t.Error("out-of-range variable accepted")
	}
	m3 := NewModel(3, 0)
	m3.AddLinearSum("badcoeffs", []int{0, 1}, []int{1}, 5)
	if _, err := m3.Compile(); err == nil {
		t.Error("coeffs length mismatch accepted")
	}
	m4 := NewModel(3, 0)
	m4.AddWeighted("badweight", []int{0}, 0, func([]int) int { return 0 })
	if _, err := m4.Compile(); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestCostSemantics(t *testing.T) {
	c := tinyModel(t)
	// cfg = [0,1,2,3] -> values [1,2,3,4]: sum01 = 3 ok; prod23 = 12 ok.
	if got := c.Cost([]int{0, 1, 2, 3}); got != 0 {
		t.Fatalf("satisfying assignment has cost %d", got)
	}
	// cfg = [3,2,1,0] -> values [4,3,2,1]: sum01 = 7 (viol 4),
	// prod23 = 2 (viol 10).
	if got := c.Cost([]int{3, 2, 1, 0}); got != 14 {
		t.Fatalf("cost = %d, want 14", got)
	}
	// CostOnVariable: var 0 touches only sum01.
	if got := c.CostOnVariable([]int{3, 2, 1, 0}, 0); got != 4 {
		t.Fatalf("CostOnVariable(0) = %d, want 4", got)
	}
	if got := c.CostOnVariable([]int{3, 2, 1, 0}, 3); got != 10 {
		t.Fatalf("CostOnVariable(3) = %d, want 10", got)
	}
}

func TestValueOffset(t *testing.T) {
	m := NewModel(2, 10) // values are cfg[i]+10
	m.AddLinearSum("s", []int{0, 1}, nil, 21)
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Cost([]int{0, 1}); got != 0 {
		t.Fatalf("offset values 10+11 should sum to 21, cost %d", got)
	}
}

func TestCoefficientsAndWeights(t *testing.T) {
	m := NewModel(3, 0)
	m.AddLinearSum("lin", []int{0, 1, 2}, []int{2, -1, 3}, 4)
	m.AddWeighted("w", []int{0}, 5, func(vals []int) int { return vals[0] })
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// cfg [0,1,2]: lin = 0-1+6-4 = 1 -> 1; w = 5*0 = 0.
	if got := c.Cost([]int{0, 1, 2}); got != 1 {
		t.Fatalf("cost = %d, want 1", got)
	}
	// cfg [2,0,1]: lin = 4-0+3-4 = 3; w = 5*2 = 10.
	if got := c.Cost([]int{2, 0, 1}); got != 13 {
		t.Fatalf("cost = %d, want 13", got)
	}
}

func TestRepeatedVariables(t *testing.T) {
	// Double letters: variable 0 appears twice.
	m := NewModel(2, 1)
	m.AddLinearSum("dd", []int{0, 0, 1}, nil, 5)
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// values [1,2]: 1+1+2 = 4, viol 1.
	if got := c.Cost([]int{0, 1}); got != 1 {
		t.Fatalf("cost = %d, want 1", got)
	}
	// values [2,1]: 2+2+1 = 5, viol 0.
	if got := c.Cost([]int{1, 0}); got != 0 {
		t.Fatalf("cost = %d, want 0", got)
	}
}

func TestIncrementalConsistency(t *testing.T) {
	c := tinyModel(t)
	oracle := tinyModel(t)
	r := rng.New(3)
	cfg := r.Perm(4)
	cost := c.Cost(cfg)
	for step := 0; step < 200; step++ {
		i := r.Intn(4)
		j := r.Intn(3)
		if j >= i {
			j++
		}
		pred := c.CostIfSwap(cfg, cost, i, j)
		// Repeatability (no state corruption).
		if again := c.CostIfSwap(cfg, cost, i, j); again != pred {
			t.Fatalf("CostIfSwap not repeatable: %d vs %d", pred, again)
		}
		cfg[i], cfg[j] = cfg[j], cfg[i]
		c.ExecutedSwap(cfg, i, j)
		cost = pred
		if want := oracle.Cost(cfg); cost != want {
			t.Fatalf("step %d: incremental cost %d != ground truth %d", step, cost, want)
		}
	}
}

func TestSolveThroughEngine(t *testing.T) {
	c := tinyModel(t)
	res, err := core.Solve(context.Background(), c, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("tiny model unsolved: %v", res)
	}
	if !perm.IsPermutation(res.Solution) {
		t.Fatalf("solution not a permutation: %v", res.Solution)
	}
	fresh := tinyModel(t)
	if fresh.Cost(res.Solution) != 0 {
		t.Fatalf("engine solution does not satisfy the model: %v", res.Solution)
	}
}

func TestViolationsDiagnostic(t *testing.T) {
	c := tinyModel(t)
	c.Cost([]int{3, 2, 1, 0})
	v := c.Violations()
	if v["sum01"] != 4 || v["prod23"] != 10 {
		t.Fatalf("Violations = %v", v)
	}
}

func TestModelAccessors(t *testing.T) {
	m := NewModel(7, 1)
	if m.N() != 7 {
		t.Fatal("N wrong")
	}
	m.AddLinearSum("a", []int{0}, nil, 1)
	m.AddCustom("b", []int{1}, func([]int) int { return 0 })
	if m.Constraints() != 2 {
		t.Fatal("Constraints wrong")
	}
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 7 || c.Name() != "csp-model" {
		t.Fatal("Compiled accessors wrong")
	}
}

// TestCompiledMatchesNaiveEvaluation property-checks the compiled
// incremental problem against naive full evaluation over random walks.
func TestCompiledMatchesNaiveEvaluation(t *testing.T) {
	build := func() *Compiled {
		m := NewModel(8, 1)
		m.AddLinearSum("s1", []int{0, 1, 2}, nil, 12)
		m.AddLinearSum("s2", []int{2, 3, 4}, []int{1, 2, 1}, 15)
		m.AddCustom("c1", []int{5, 6}, func(v []int) int {
			if v[0] > v[1] {
				return v[0] - v[1]
			}
			return 0
		})
		m.AddWeighted("w1", []int{7, 0}, 3, func(v []int) int {
			d := v[0] - v[1]
			if d < 0 {
				d = -d
			}
			return d % 3
		})
		c, err := m.Compile()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := build()
	oracle := build()
	r := rng.New(17)
	cfg := r.Perm(8)
	cost := c.Cost(cfg)
	for step := 0; step < 300; step++ {
		i, j := r.Intn(8), r.Intn(7)
		if j >= i {
			j++
		}
		cost = c.CostIfSwap(cfg, cost, i, j)
		cfg[i], cfg[j] = cfg[j], cfg[i]
		c.ExecutedSwap(cfg, i, j)
		if want := oracle.Cost(cfg); cost != want {
			t.Fatalf("step %d: %d != %d", step, cost, want)
		}
		for v := 0; v < 8; v++ {
			if got, want := c.CostOnVariable(cfg, v), oracle.CostOnVariable(cfg, v); got != want {
				t.Fatalf("step %d var %d: %d != %d", step, v, got, want)
			}
		}
	}
}

// TestErrorVectorConsistency drives the compiled model through the
// engine's Cost / ExecutedSwap call pattern and checks the incremental
// error vector (the core.ErrorVector fast path) against the
// per-variable CostOnVariable scan at every step.
func TestErrorVectorConsistency(t *testing.T) {
	// A model with overlapping constraints so swaps push deltas onto
	// shared variables.
	build := func() *Compiled {
		m := NewModel(8, 1)
		m.AddLinearSum("sum012", []int{0, 1, 2}, nil, 12)
		m.AddLinearSum("sum234", []int{2, 3, 4}, []int{1, 2, 1}, 15)
		m.AddCustom("even56", []int{5, 6}, func(vals []int) int {
			return (vals[0] + vals[1]) % 2
		})
		m.AddWeighted("spread07", []int{0, 7}, 3, func(vals []int) int {
			d := vals[0] - vals[1]
			if d < 0 {
				d = -d
			}
			if d < 3 {
				return 3 - d
			}
			return 0
		})
		c, err := m.Compile()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	p := build()
	n := p.Size()
	r := rng.New(2012)
	cfg := r.Perm(n)
	p.Cost(cfg)
	out := make([]int, n)
	check := func(step string) {
		t.Helper()
		p.ErrorsOnVariables(cfg, out)
		for i := 0; i < n; i++ {
			if want := p.CostOnVariable(cfg, i); out[i] != want {
				t.Fatalf("%s: ErrorsOnVariables[%d] = %d, CostOnVariable = %d",
					step, i, out[i], want)
			}
		}
	}
	check("initial")
	for step := 0; step < 300; step++ {
		i := r.Intn(n)
		j := r.Intn(n - 1)
		if j >= i {
			j++
		}
		cfg[i], cfg[j] = cfg[j], cfg[i]
		p.ExecutedSwap(cfg, i, j)
		check("after swap")
		check("repeat query")
		if step%41 == 0 {
			p.Cost(cfg)
			check("after Cost rebuild")
		}
	}
}
