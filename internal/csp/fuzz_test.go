package csp

import (
	"errors"
	"testing"

	"repro/internal/perm"
	"repro/internal/rng"
)

// buildFuzzModel interprets raw bytes as a model-construction program:
// a header picks the variable count and value offset, then each chunk
// adds one constraint whose variable indices, coefficients, target and
// weight come straight from the input — deliberately unvalidated, so
// out-of-range variables, negative weights and coeff/var mismatches
// all reach Compile.
func buildFuzzModel(data []byte) *Model {
	if len(data) == 0 {
		return NewModel(0, 0)
	}
	n := int(int8(data[0])) % 12 // may be negative or zero, on purpose
	offset := 0
	if len(data) > 1 {
		offset = int(int8(data[1]))
		data = data[2:]
	} else {
		data = nil
	}
	m := NewModel(n, offset)
	for len(data) >= 3 {
		kind := data[0] % 4
		nvars := int(data[1] % 8)
		data = data[2:]
		vars := make([]int, 0, nvars)
		for i := 0; i < nvars && len(data) > 0; i++ {
			vars = append(vars, int(int8(data[0])))
			data = data[1:]
		}
		switch kind {
		case 0:
			m.AddLinearSum("lin", vars, nil, offset)
		case 1:
			coeffs := make([]int, 0, nvars)
			for i := 0; i < nvars && len(data) > 0; i++ {
				coeffs = append(coeffs, int(int8(data[0])))
				data = data[1:]
			}
			m.AddLinearSum("lin-coeff", vars, coeffs, 7)
		case 2:
			m.AddCustom("custom", vars, func(vals []int) int {
				s := 0
				for _, v := range vals {
					if v < 0 {
						s -= v
					} else {
						s += v
					}
				}
				return s % 97
			})
		default:
			w := 0
			if len(data) > 0 {
				w = int(int8(data[0]))
				data = data[1:]
			}
			m.AddWeighted("weighted", vars, w, func(vals []int) int { return len(vals) })
		}
	}
	return m
}

// FuzzCompile feeds arbitrary model programs through Compile and, when
// compilation succeeds, through the full engine call pattern. The
// properties: no panics anywhere, every compile failure wraps the
// typed ErrModel, and a compiled model keeps its incremental caches
// consistent with a from-scratch recount.
func FuzzCompile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 1, 0, 3, 0, 1, 2})
	f.Add([]byte{6, 0, 1, 2, 0, 1, 5, 3, 3, 2, 0, 1})
	f.Add([]byte{10, 1, 2, 4, 0, 1, 2, 3, 3, 2, 9, 8, 7})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := buildFuzzModel(data)
		p, err := m.Compile()
		if err != nil {
			if !errors.Is(err, ErrModel) {
				t.Fatalf("Compile error %v does not wrap ErrModel", err)
			}
			return
		}
		// A compiled model must survive the engine's call pattern
		// without panicking and with consistent caches.
		n := p.Size()
		r := rng.New(42)
		cfg := perm.Identity(n)
		cost := p.Cost(cfg)
		if cost < 0 {
			t.Fatalf("negative total cost %d", cost)
		}
		for step := 0; step < 8 && n >= 2; step++ {
			i := r.Intn(n)
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			_ = p.CostIfSwap(cfg, cost, i, j)
			cfg[i], cfg[j] = cfg[j], cfg[i]
			p.ExecutedSwap(cfg, i, j)
			for v := 0; v < n; v++ {
				_ = p.CostOnVariable(cfg, v)
			}
			out := make([]int, n)
			p.ErrorsOnVariables(cfg, out)
			for v := 0; v < n; v++ {
				if want := p.CostOnVariable(cfg, v); out[v] != want {
					t.Fatalf("errVec[%d] = %d, CostOnVariable = %d", v, out[v], want)
				}
			}
			cost = p.Cost(cfg)
		}
		_ = p.Violations()
	})
}
