// Package csp provides a small declarative modeling layer on top of the
// Adaptive Search engine: users state constraints over a permutation of
// [0, n) and the package compiles them into a core.Problem with cached
// per-constraint violations and incremental swap deltas.
//
// Adaptive Search is advertised in the paper as a generic method
// applicable to "a large class of constraints (e.g., linear and
// non-linear arithmetic constraints, symbolic constraints)"; this
// package is that generic front end. The alpha benchmark
// (internal/problems) and the custommodel example are built on it.
package csp

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrModel marks every model-validation failure reported by Compile,
// so embedders (and the fuzz suite) can separate ill-formed models
// from programming errors with errors.Is.
var ErrModel = errors.New("csp: invalid model")

// Model is a CSP over a permutation of [0, n). Variable i takes the
// value cfg[i] + ValueOffset. Add constraints with the Add* methods,
// then Compile into a core.Problem.
type Model struct {
	n           int
	valueOffset int
	cons        []constraint
	// domains holds the explicit per-variable finite domains set via
	// SetDomain/SetDomainRange; consulted only by CompileFD.
	domains map[int][]int
}

// constraint is the internal representation: linear when fn is nil.
type constraint struct {
	name   string
	vars   []int
	coeffs []int
	target int
	fn     func(vals []int) int
	weight int
}

// NewModel returns an empty model over n variables whose values are
// cfg[i] + valueOffset (use valueOffset=1 for 1-based puzzles).
func NewModel(n, valueOffset int) *Model {
	return &Model{n: n, valueOffset: valueOffset}
}

// N returns the number of variables.
func (m *Model) N() int { return m.n }

// AddLinearSum adds the constraint Σ coeffs[k]*value(vars[k]) == target.
// Variables may repeat (e.g. double letters in a word puzzle); coeffs
// may be nil, meaning all ones. The violation is the absolute deviation.
func (m *Model) AddLinearSum(name string, vars []int, coeffs []int, target int) {
	m.cons = append(m.cons, constraint{name: name, vars: vars, coeffs: coeffs, target: target, weight: 1})
}

// AddCustom adds a constraint whose violation is computed by fn from the
// values of vars (in order, repetition allowed). fn must return 0 when
// satisfied and a positive error otherwise, and must not retain vals.
func (m *Model) AddCustom(name string, vars []int, fn func(vals []int) int) {
	m.cons = append(m.cons, constraint{name: name, vars: vars, fn: fn, weight: 1})
}

// AddWeighted is AddCustom with a violation multiplier, letting models
// prioritize constraints.
func (m *Model) AddWeighted(name string, vars []int, weight int, fn func(vals []int) int) {
	m.cons = append(m.cons, constraint{name: name, vars: vars, fn: fn, weight: weight})
}

// Constraints returns the number of constraints added so far.
func (m *Model) Constraints() int { return len(m.cons) }

// Compile validates the model and returns a core.Problem with cached
// violations and incremental swap deltas. The compiled problem keeps
// mutable caches and must not be shared between goroutines; compile one
// instance per walker.
func (m *Model) Compile() (*Compiled, error) {
	if m.n < 1 {
		return nil, fmt.Errorf("%w: needs at least 1 variable, has %d", ErrModel, m.n)
	}
	if len(m.cons) == 0 {
		return nil, fmt.Errorf("%w: no constraints", ErrModel)
	}
	byVar := make([][]int32, m.n)
	byVarCoef := make([][]int, m.n)
	conVars := make([][]int32, len(m.cons))
	maxVars := 0
	for ci, c := range m.cons {
		if len(c.vars) == 0 {
			return nil, fmt.Errorf("%w: constraint %q has no variables", ErrModel, c.name)
		}
		if c.fn == nil && c.coeffs != nil && len(c.coeffs) != len(c.vars) {
			return nil, fmt.Errorf("%w: constraint %q has %d coeffs for %d vars", ErrModel, c.name, len(c.coeffs), len(c.vars))
		}
		if c.weight <= 0 {
			return nil, fmt.Errorf("%w: constraint %q has non-positive weight %d", ErrModel, c.name, c.weight)
		}
		// Effective (summed-over-occurrences) coefficient per distinct
		// variable: the O(1) ingredient of the linear delta paths. A
		// repeated variable (double letters in a word puzzle) folds its
		// occurrences into one entry.
		coefOf := map[int]int{}
		for k, v := range c.vars {
			if v < 0 || v >= m.n {
				return nil, fmt.Errorf("%w: constraint %q references variable %d outside [0,%d)", ErrModel, c.name, v, m.n)
			}
			coef := 1
			if c.coeffs != nil {
				coef = c.coeffs[k]
			}
			if _, dup := coefOf[v]; !dup {
				conVars[ci] = append(conVars[ci], int32(v))
			}
			coefOf[v] += coef
		}
		for _, v := range conVars[ci] {
			byVar[v] = append(byVar[v], int32(ci))
			byVarCoef[v] = append(byVarCoef[v], coefOf[int(v)])
		}
		if len(c.vars) > maxVars {
			maxVars = len(c.vars)
		}
	}
	return &Compiled{
		model:     m,
		byVar:     byVar,
		byVarCoef: byVarCoef,
		conVars:   conVars,
		viol:      make([]int, len(m.cons)),
		sums:      make([]int, len(m.cons)),
		errVec:    make([]int, m.n),
		stamp:     make([]int64, len(m.cons)),
		stamp2:    make([]int64, len(m.cons)),
		coefJ:     make([]int, len(m.cons)),
		vals:      make([]int, maxVars),
	}, nil
}

// Compiled is a core.Problem produced by Model.Compile. It caches one
// violation (and, for linear constraints, the current sum) per
// constraint and updates only the constraints touching a swapped
// variable. Hypothetical swaps of linear constraints are evaluated in
// O(1) per affected constraint from the cached sums and the compiled
// per-variable effective coefficients — no constraint is ever
// re-summed on the hot path; only custom (fn) constraints fall back to
// full re-evaluation.
type Compiled struct {
	model *Model
	byVar [][]int32
	// byVarCoef mirrors byVar: the effective (occurrence-summed)
	// coefficient of the variable in each of its constraints.
	byVarCoef [][]int
	// conVars lists the distinct variables of each constraint, the
	// transpose of byVar, used to push violation deltas onto errVec.
	conVars [][]int32
	viol    []int
	// sums caches each linear constraint's current Σ coeff*value;
	// meaningless for custom constraints. Maintained by Cost and
	// ExecutedSwap alongside viol.
	sums []int

	// errVec caches the per-variable projected errors (the sum of
	// cached violations over each variable's constraints). It is
	// updated incrementally by ExecutedSwap and rebuilt lazily after a
	// full Cost recompute; errValid tracks whether it matches viol.
	errVec   []int
	errValid bool

	// stamp implements allocation-free dedup of the constraints
	// affected by a swap; gen increments per query. stamp2/coefJ are a
	// second generation-stamped scratch used by the swap evaluators to
	// mark one endpoint's constraints and remember its coefficient in
	// them.
	stamp  []int64
	gen    int64
	stamp2 []int64
	coefJ  []int
	gen2   int64

	vals []int
}

var _ core.Problem = (*Compiled)(nil)
var _ core.SwapExecutor = (*Compiled)(nil)
var _ core.MaintainedErrorVector = (*Compiled)(nil)
var _ core.MoveEvaluator = (*Compiled)(nil)

// Size implements core.Problem.
func (p *Compiled) Size() int { return p.model.n }

// Name implements core.Namer.
func (p *Compiled) Name() string { return "csp-model" }

// sumOf computes the linear sum Σ coeff*value of constraint ci under
// cfg. Only meaningful when the constraint is linear (fn == nil).
func (p *Compiled) sumOf(ci int, cfg []int) int {
	c := &p.model.cons[ci]
	sum := 0
	if c.coeffs == nil {
		for _, v := range c.vars {
			sum += cfg[v] + p.model.valueOffset
		}
	} else {
		for k, v := range c.vars {
			sum += c.coeffs[k] * (cfg[v] + p.model.valueOffset)
		}
	}
	return sum
}

// violationOf computes the violation of constraint ci under cfg from
// scratch.
func (p *Compiled) violationOf(ci int, cfg []int) int {
	c := &p.model.cons[ci]
	if c.fn != nil {
		vals := p.vals[:len(c.vars)]
		for k, v := range c.vars {
			vals[k] = cfg[v] + p.model.valueOffset
		}
		return c.weight * c.fn(vals)
	}
	d := p.sumOf(ci, cfg) - c.target
	if d < 0 {
		d = -d
	}
	return c.weight * d
}

// Cost implements core.Problem, rebuilding every cached violation and
// linear sum. The cached error vector is invalidated and rebuilt lazily
// on the next LiveErrors/ErrorsOnVariables call.
func (p *Compiled) Cost(cfg []int) int {
	total := 0
	for ci := range p.model.cons {
		c := &p.model.cons[ci]
		var v int
		if c.fn == nil {
			s := p.sumOf(ci, cfg)
			p.sums[ci] = s
			d := s - c.target
			if d < 0 {
				d = -d
			}
			v = c.weight * d
		} else {
			v = p.violationOf(ci, cfg)
		}
		p.viol[ci] = v
		total += v
	}
	p.errValid = false
	return total
}

// CostOnVariable implements core.Problem: the sum of cached violations
// of the constraints mentioning variable i.
func (p *Compiled) CostOnVariable(cfg []int, i int) int {
	e := 0
	for _, ci := range p.byVar[i] {
		e += p.viol[ci]
	}
	return e
}

// markI stamps the constraints touching variable i with a fresh
// generation, so the second pass of a swap evaluation can skip the
// overlap in O(1).
func (p *Compiled) markI(i int) {
	p.gen++
	for _, ci := range p.byVar[i] {
		p.stamp[ci] = p.gen
	}
}

// markJ stamps variable j's constraints with a fresh second-family
// generation and records j's effective coefficient in each, letting the
// pass over variable i's constraints fold in j's contribution in O(1)
// when a constraint contains both endpoints.
func (p *Compiled) markJ(j int) {
	p.gen2++
	coefs := p.byVarCoef[j]
	for k, ci := range p.byVar[j] {
		p.stamp2[ci] = p.gen2
		p.coefJ[ci] = coefs[k]
	}
}

// swapDelta returns the total violation change of hypothetically
// swapping positions i and j. Linear constraints are evaluated in O(1)
// each from the cached sums and compiled coefficients; custom (fn)
// constraints re-evaluate under a transient swap. The caller must have
// called markI(i) and markJ(j) first (markI may be hoisted across many
// j's — it depends only on i).
func (p *Compiled) swapDelta(cfg []int, i, j int) int {
	dv := cfg[j] - cfg[i] // value change at position i; position j gets -dv
	delta := 0
	cons := p.model.cons
	coefs := p.byVarCoef[i]
	for k, ci := range p.byVar[i] {
		c := &cons[ci]
		if c.fn != nil {
			cfg[i], cfg[j] = cfg[j], cfg[i]
			delta += p.violationOf(int(ci), cfg) - p.viol[ci]
			cfg[i], cfg[j] = cfg[j], cfg[i]
			continue
		}
		ds := coefs[k] * dv
		if p.stamp2[ci] == p.gen2 {
			ds -= p.coefJ[ci] * dv
		}
		d := p.sums[ci] + ds - c.target
		if d < 0 {
			d = -d
		}
		delta += c.weight*d - p.viol[ci]
	}
	coefs = p.byVarCoef[j]
	for k, ci := range p.byVar[j] {
		if p.stamp[ci] == p.gen {
			continue // contains i too: handled above
		}
		c := &cons[ci]
		if c.fn != nil {
			cfg[i], cfg[j] = cfg[j], cfg[i]
			delta += p.violationOf(int(ci), cfg) - p.viol[ci]
			cfg[i], cfg[j] = cfg[j], cfg[i]
			continue
		}
		d := p.sums[ci] - coefs[k]*dv - c.target
		if d < 0 {
			d = -d
		}
		delta += c.weight*d - p.viol[ci]
	}
	return delta
}

// CostIfSwap implements core.Problem in O(affected constraints), with
// O(1) work per affected linear constraint.
func (p *Compiled) CostIfSwap(cfg []int, cost, i, j int) int {
	p.markI(i)
	p.markJ(j)
	return cost + p.swapDelta(cfg, i, j)
}

// CostsIfSwapAll implements core.MoveEvaluator: the full cost row for
// variable i. The stamping of variable i's constraints is hoisted out
// of the partner loop; each candidate then pays O(1) per affected
// linear constraint, never re-summing anything.
func (p *Compiled) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	p.markI(i)
	for j := range cfg {
		if j == i {
			out[i] = cost
			continue
		}
		p.markJ(j)
		out[j] = cost + p.swapDelta(cfg, i, j)
	}
}

// ExecutedSwap implements core.SwapExecutor: cfg is already swapped;
// refresh the cached sums and violations of the affected constraints
// and push the deltas onto the cached error vector, keeping the
// error-vector fast path valid without a rebuild.
func (p *Compiled) ExecutedSwap(cfg []int, i, j int) {
	dv := cfg[i] - cfg[j] // value change at position i (post- minus pre-swap)
	p.markI(i)
	p.markJ(j)
	cons := p.model.cons
	coefs := p.byVarCoef[i]
	for k, ci := range p.byVar[i] {
		c := &cons[ci]
		var v int
		if c.fn != nil {
			v = p.violationOf(int(ci), cfg)
		} else {
			ds := coefs[k] * dv
			if p.stamp2[ci] == p.gen2 {
				ds -= p.coefJ[ci] * dv
			}
			p.sums[ci] += ds
			d := p.sums[ci] - c.target
			if d < 0 {
				d = -d
			}
			v = c.weight * d
		}
		p.applyViolation(int(ci), v)
	}
	coefs = p.byVarCoef[j]
	for k, ci := range p.byVar[j] {
		if p.stamp[ci] == p.gen {
			continue // contains i too: handled above
		}
		c := &cons[ci]
		var v int
		if c.fn != nil {
			v = p.violationOf(int(ci), cfg)
		} else {
			p.sums[ci] -= coefs[k] * dv
			d := p.sums[ci] - c.target
			if d < 0 {
				d = -d
			}
			v = c.weight * d
		}
		p.applyViolation(int(ci), v)
	}
}

// applyViolation commits a refreshed violation, pushing the delta onto
// the cached error vector when it is valid.
func (p *Compiled) applyViolation(ci, v int) {
	if p.errValid {
		if delta := v - p.viol[ci]; delta != 0 {
			for _, vr := range p.conVars[ci] {
				p.errVec[vr] += delta
			}
		}
	}
	p.viol[ci] = v
}

// LiveErrors implements core.MaintainedErrorVector: the engine's
// batched fast path for worst-variable selection. The vector is
// maintained incrementally by ExecutedSwap (only constraints touching a
// swapped variable push deltas) and rebuilt from the cached violations
// lazily after a full Cost recompute, so the per-iteration O(n)
// CostOnVariable scan never recomputes constraint sums from scratch —
// and the engine serves it without invalidation or copying.
func (p *Compiled) LiveErrors(cfg []int) []int {
	if !p.errValid {
		for i := range p.errVec {
			p.errVec[i] = 0
		}
		for ci, v := range p.viol {
			if v == 0 {
				continue
			}
			for _, vr := range p.conVars[ci] {
				p.errVec[vr] += v
			}
		}
		p.errValid = true
	}
	return p.errVec
}

// ErrorsOnVariables implements core.ErrorVector.
func (p *Compiled) ErrorsOnVariables(cfg []int, out []int) {
	copy(out, p.LiveErrors(cfg))
}

// Violations returns a copy of the per-constraint violations as of the
// last Cost/ExecutedSwap, labelled by constraint name. Diagnostic: used
// by the CLI's -explain flag and by tests.
func (p *Compiled) Violations() map[string]int {
	out := make(map[string]int, len(p.viol))
	for ci, v := range p.viol {
		out[p.model.cons[ci].name] = v
	}
	return out
}
