// Package csp provides a small declarative modeling layer on top of the
// Adaptive Search engine: users state constraints over a permutation of
// [0, n) and the package compiles them into a core.Problem with cached
// per-constraint violations and incremental swap deltas.
//
// Adaptive Search is advertised in the paper as a generic method
// applicable to "a large class of constraints (e.g., linear and
// non-linear arithmetic constraints, symbolic constraints)"; this
// package is that generic front end. The alpha benchmark
// (internal/problems) and the custommodel example are built on it.
package csp

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrModel marks every model-validation failure reported by Compile,
// so embedders (and the fuzz suite) can separate ill-formed models
// from programming errors with errors.Is.
var ErrModel = errors.New("csp: invalid model")

// Model is a CSP over a permutation of [0, n). Variable i takes the
// value cfg[i] + ValueOffset. Add constraints with the Add* methods,
// then Compile into a core.Problem.
type Model struct {
	n           int
	valueOffset int
	cons        []constraint
}

// constraint is the internal representation: linear when fn is nil.
type constraint struct {
	name   string
	vars   []int
	coeffs []int
	target int
	fn     func(vals []int) int
	weight int
}

// NewModel returns an empty model over n variables whose values are
// cfg[i] + valueOffset (use valueOffset=1 for 1-based puzzles).
func NewModel(n, valueOffset int) *Model {
	return &Model{n: n, valueOffset: valueOffset}
}

// N returns the number of variables.
func (m *Model) N() int { return m.n }

// AddLinearSum adds the constraint Σ coeffs[k]*value(vars[k]) == target.
// Variables may repeat (e.g. double letters in a word puzzle); coeffs
// may be nil, meaning all ones. The violation is the absolute deviation.
func (m *Model) AddLinearSum(name string, vars []int, coeffs []int, target int) {
	m.cons = append(m.cons, constraint{name: name, vars: vars, coeffs: coeffs, target: target, weight: 1})
}

// AddCustom adds a constraint whose violation is computed by fn from the
// values of vars (in order, repetition allowed). fn must return 0 when
// satisfied and a positive error otherwise, and must not retain vals.
func (m *Model) AddCustom(name string, vars []int, fn func(vals []int) int) {
	m.cons = append(m.cons, constraint{name: name, vars: vars, fn: fn, weight: 1})
}

// AddWeighted is AddCustom with a violation multiplier, letting models
// prioritize constraints.
func (m *Model) AddWeighted(name string, vars []int, weight int, fn func(vals []int) int) {
	m.cons = append(m.cons, constraint{name: name, vars: vars, fn: fn, weight: weight})
}

// Constraints returns the number of constraints added so far.
func (m *Model) Constraints() int { return len(m.cons) }

// Compile validates the model and returns a core.Problem with cached
// violations and incremental swap deltas. The compiled problem keeps
// mutable caches and must not be shared between goroutines; compile one
// instance per walker.
func (m *Model) Compile() (*Compiled, error) {
	if m.n < 1 {
		return nil, fmt.Errorf("%w: needs at least 1 variable, has %d", ErrModel, m.n)
	}
	if len(m.cons) == 0 {
		return nil, fmt.Errorf("%w: no constraints", ErrModel)
	}
	byVar := make([][]int32, m.n)
	conVars := make([][]int32, len(m.cons))
	maxVars := 0
	for ci, c := range m.cons {
		if len(c.vars) == 0 {
			return nil, fmt.Errorf("%w: constraint %q has no variables", ErrModel, c.name)
		}
		if c.fn == nil && c.coeffs != nil && len(c.coeffs) != len(c.vars) {
			return nil, fmt.Errorf("%w: constraint %q has %d coeffs for %d vars", ErrModel, c.name, len(c.coeffs), len(c.vars))
		}
		if c.weight <= 0 {
			return nil, fmt.Errorf("%w: constraint %q has non-positive weight %d", ErrModel, c.name, c.weight)
		}
		seen := map[int]bool{}
		for _, v := range c.vars {
			if v < 0 || v >= m.n {
				return nil, fmt.Errorf("%w: constraint %q references variable %d outside [0,%d)", ErrModel, c.name, v, m.n)
			}
			if !seen[v] {
				seen[v] = true
				byVar[v] = append(byVar[v], int32(ci))
				conVars[ci] = append(conVars[ci], int32(v))
			}
		}
		if len(c.vars) > maxVars {
			maxVars = len(c.vars)
		}
	}
	return &Compiled{
		model:   m,
		byVar:   byVar,
		conVars: conVars,
		viol:    make([]int, len(m.cons)),
		errVec:  make([]int, m.n),
		stamp:   make([]int64, len(m.cons)),
		touched: make([]int32, 0, len(m.cons)),
		vals:    make([]int, maxVars),
	}, nil
}

// Compiled is a core.Problem produced by Model.Compile. It caches one
// violation per constraint and updates only the constraints touching a
// swapped variable, so CostIfSwap costs O(size of affected constraints).
type Compiled struct {
	model *Model
	byVar [][]int32
	// conVars lists the distinct variables of each constraint, the
	// transpose of byVar, used to push violation deltas onto errVec.
	conVars [][]int32
	viol    []int

	// errVec caches the per-variable projected errors (the sum of
	// cached violations over each variable's constraints). It is
	// updated incrementally by ExecutedSwap and rebuilt lazily after a
	// full Cost recompute; errValid tracks whether it matches viol.
	errVec   []int
	errValid bool

	// stamp/touched implement allocation-free dedup of the constraints
	// affected by a swap; gen increments per query.
	stamp   []int64
	touched []int32
	gen     int64

	vals []int
}

var _ core.Problem = (*Compiled)(nil)
var _ core.SwapExecutor = (*Compiled)(nil)
var _ core.ErrorVector = (*Compiled)(nil)

// Size implements core.Problem.
func (p *Compiled) Size() int { return p.model.n }

// Name implements core.Namer.
func (p *Compiled) Name() string { return "csp-model" }

// violationOf computes the violation of constraint ci under cfg.
func (p *Compiled) violationOf(ci int, cfg []int) int {
	c := &p.model.cons[ci]
	if c.fn != nil {
		vals := p.vals[:len(c.vars)]
		for k, v := range c.vars {
			vals[k] = cfg[v] + p.model.valueOffset
		}
		return c.weight * c.fn(vals)
	}
	sum := 0
	if c.coeffs == nil {
		for _, v := range c.vars {
			sum += cfg[v] + p.model.valueOffset
		}
	} else {
		for k, v := range c.vars {
			sum += c.coeffs[k] * (cfg[v] + p.model.valueOffset)
		}
	}
	d := sum - c.target
	if d < 0 {
		d = -d
	}
	return c.weight * d
}

// Cost implements core.Problem, rebuilding every cached violation. The
// cached error vector is invalidated and rebuilt lazily on the next
// ErrorsOnVariables call.
func (p *Compiled) Cost(cfg []int) int {
	total := 0
	for ci := range p.model.cons {
		v := p.violationOf(ci, cfg)
		p.viol[ci] = v
		total += v
	}
	p.errValid = false
	return total
}

// CostOnVariable implements core.Problem: the sum of cached violations
// of the constraints mentioning variable i.
func (p *Compiled) CostOnVariable(cfg []int, i int) int {
	e := 0
	for _, ci := range p.byVar[i] {
		e += p.viol[ci]
	}
	return e
}

// affected collects the distinct constraints touching i or j into
// p.touched using the generation-stamp trick.
func (p *Compiled) affected(i, j int) []int32 {
	p.gen++
	p.touched = p.touched[:0]
	for _, ci := range p.byVar[i] {
		if p.stamp[ci] != p.gen {
			p.stamp[ci] = p.gen
			p.touched = append(p.touched, ci)
		}
	}
	for _, ci := range p.byVar[j] {
		if p.stamp[ci] != p.gen {
			p.stamp[ci] = p.gen
			p.touched = append(p.touched, ci)
		}
	}
	return p.touched
}

// CostIfSwap implements core.Problem. It swaps cfg temporarily; the
// compiled problem is documented as single-goroutine, so the transient
// mutation is invisible.
func (p *Compiled) CostIfSwap(cfg []int, cost, i, j int) int {
	cfg[i], cfg[j] = cfg[j], cfg[i]
	for _, ci := range p.affected(i, j) {
		cost += p.violationOf(int(ci), cfg) - p.viol[ci]
	}
	cfg[i], cfg[j] = cfg[j], cfg[i]
	return cost
}

// ExecutedSwap implements core.SwapExecutor: cfg is already swapped;
// refresh the cached violations of the affected constraints and push
// the deltas onto the cached error vector, keeping the ErrorVector fast
// path valid without a rebuild.
func (p *Compiled) ExecutedSwap(cfg []int, i, j int) {
	for _, ci := range p.affected(i, j) {
		v := p.violationOf(int(ci), cfg)
		if p.errValid {
			if delta := v - p.viol[ci]; delta != 0 {
				for _, vr := range p.conVars[ci] {
					p.errVec[vr] += delta
				}
			}
		}
		p.viol[ci] = v
	}
}

// ErrorsOnVariables implements core.ErrorVector: the engine's batched
// fast path for worst-variable selection. The vector is maintained
// incrementally by ExecutedSwap (only constraints touching a swapped
// variable push deltas) and rebuilt from the cached violations after a
// full Cost recompute, so the per-iteration O(n) CostOnVariable scan
// never recomputes constraint sums from scratch.
func (p *Compiled) ErrorsOnVariables(cfg []int, out []int) {
	if !p.errValid {
		for i := range p.errVec {
			p.errVec[i] = 0
		}
		for ci, v := range p.viol {
			if v == 0 {
				continue
			}
			for _, vr := range p.conVars[ci] {
				p.errVec[vr] += v
			}
		}
		p.errValid = true
	}
	copy(out, p.errVec)
}

// Violations returns a copy of the per-constraint violations as of the
// last Cost/ExecutedSwap, labelled by constraint name. Diagnostic: used
// by the CLI's -explain flag and by tests.
func (p *Compiled) Violations() map[string]int {
	out := make(map[string]int, len(p.viol))
	for ci, v := range p.viol {
		out[p.model.cons[ci].name] = v
	}
	return out
}
