package csp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/domain"
)

// This file is the finite-domain side of the compiler: the same Model,
// compiled onto the engine's FD encoding instead of the permutation
// one. Variable i draws its values from a per-variable finite domain
// (SetDomain / SetDomainRange; default [0, n)), the move is an
// assignment cfg[i] = v, and the cached-linear-sum machinery of the
// permutation compiler is reused unchanged: an assignment changes one
// variable, so every affected linear constraint updates in O(1) from
// its cached sum and the variable's effective coefficient.

// SetDomain restricts variable i to the given engine values (the raw
// cfg values, before ValueOffset is added). Values are sorted and
// deduplicated at CompileFD time; variables without an explicit domain
// default to [0, n). Only CompileFD consults domains — Compile ignores
// them, because the permutation encoding fixes the value set.
func (m *Model) SetDomain(i int, values ...int) {
	if m.domains == nil {
		m.domains = make(map[int][]int)
	}
	m.domains[i] = append([]int(nil), values...)
}

// SetDomainRange restricts variable i to the contiguous engine values
// {lo, ..., hi}. An inverted range yields an empty domain, which
// CompileFD rejects.
func (m *Model) SetDomainRange(i, lo, hi int) {
	m.SetDomain(i, domain.Range(lo, hi)...)
}

// CompileFD validates the model and compiles it onto the engine's
// finite-domain encoding: the returned problem implements
// core.FDProblem (assign moves over per-variable domains) with the same
// cached violations, incremental deltas and maintained error vector as
// the permutation Compile path, plus a pre-search domain-reduction pass
// built from the model's linear constraints (custom fn constraints are
// opaque and do not propagate). Like Compile, the result keeps mutable
// caches and must not be shared between goroutines.
func (m *Model) CompileFD() (*CompiledFD, error) {
	base, err := m.Compile()
	if err != nil {
		return nil, err
	}
	for i := range m.domains {
		if i < 0 || i >= m.n {
			return nil, fmt.Errorf("%w: domain set for variable %d outside [0,%d)", ErrModel, i, m.n)
		}
	}
	doms := make([]domain.Domain, m.n)
	for i := 0; i < m.n; i++ {
		if vs, ok := m.domains[i]; ok {
			doms[i] = domain.New(vs...)
			if len(doms[i]) == 0 {
				return nil, fmt.Errorf("%w: variable %d has an empty domain", ErrModel, i)
			}
		} else {
			doms[i] = domain.Range(0, m.n-1)
		}
	}
	// One bounds-consistency propagator per linear constraint. The
	// model's constraints relate values (cfg[i] + ValueOffset) while
	// domains hold engine values, so the offset's total contribution
	// folds into the propagator target:
	//   Σ c_k (x_k + off) == T  ⇔  Σ c_k x_k == T - off·Σ c_k.
	var props []domain.Propagator
	for ci := range m.cons {
		c := &m.cons[ci]
		if c.fn != nil {
			continue
		}
		coeffs := c.coeffs
		coefSum := 0
		if coeffs == nil {
			coeffs = make([]int, len(c.vars))
			for k := range coeffs {
				coeffs[k] = 1
			}
			coefSum = len(c.vars)
		} else {
			for _, co := range coeffs {
				coefSum += co
			}
		}
		props = append(props, domain.Linear{
			Vars:   append([]int(nil), c.vars...),
			Coeffs: append([]int(nil), coeffs...),
			Target: c.target - m.valueOffset*coefSum,
		})
	}
	return &CompiledFD{Compiled: base, doms: doms, props: props}, nil
}

// CompiledFD is a finite-domain core.Problem produced by
// Model.CompileFD. It shares the permutation compiler's caches (one
// violation and, for linear constraints, one running sum per
// constraint; a delta-maintained error vector) and serves the FD move
// contract on top: hypothetical and executed assignments update each
// affected linear constraint in O(1) from its cached sum and the
// variable's compiled effective coefficient, with only custom (fn)
// constraints falling back to re-evaluation.
type CompiledFD struct {
	*Compiled
	doms  []domain.Domain
	props []domain.Propagator
}

var _ core.FDProblem = (*CompiledFD)(nil)
var _ core.AssignExecutor = (*CompiledFD)(nil)
var _ core.AssignEvaluator = (*CompiledFD)(nil)
var _ core.DomainReducer = (*CompiledFD)(nil)
var _ core.MaintainedErrorVector = (*CompiledFD)(nil)

// Name implements core.Namer.
func (p *CompiledFD) Name() string { return "csp-fd-model" }

// Domain implements core.FDProblem. The returned slice is owned by the
// problem; ReduceDomains shrinks it in place before search starts.
func (p *CompiledFD) Domain(i int) []int { return p.doms[i] }

// ReduceDomains implements core.DomainReducer: one bounds-consistency
// propagator per linear constraint, driven to fixpoint. An error wraps
// domain.ErrUnsatisfiable and proves the model has no solution.
func (p *CompiledFD) ReduceDomains() error {
	if err := domain.Fixpoint(p.doms, p.props); err != nil {
		return fmt.Errorf("csp: %w", err)
	}
	return nil
}

// assignDelta returns the total violation change of hypothetically
// setting cfg[i] = v. Linear constraints are evaluated in O(1) each
// from the cached sums and the compiled effective coefficients; custom
// (fn) constraints re-evaluate under a transient assignment.
func (p *CompiledFD) assignDelta(cfg []int, i, v int) int {
	dv := v - cfg[i]
	delta := 0
	cons := p.model.cons
	coefs := p.byVarCoef[i]
	for k, ci := range p.byVar[i] {
		c := &cons[ci]
		if c.fn != nil {
			old := cfg[i]
			cfg[i] = v
			delta += p.violationOf(int(ci), cfg) - p.viol[ci]
			cfg[i] = old
			continue
		}
		d := p.sums[ci] + coefs[k]*dv - c.target
		if d < 0 {
			d = -d
		}
		delta += c.weight*d - p.viol[ci]
	}
	return delta
}

// CostIfAssign implements core.FDProblem in O(affected constraints),
// with O(1) work per affected linear constraint.
func (p *CompiledFD) CostIfAssign(cfg []int, cost, i, v int) int {
	if v == cfg[i] {
		return cost
	}
	return cost + p.assignDelta(cfg, i, v)
}

// CostsIfAssignAll implements core.AssignEvaluator: the full cost row
// of variable i, indexed by domain position.
func (p *CompiledFD) CostsIfAssignAll(cfg []int, cost, i int, out []int) {
	cur := cfg[i]
	for k, v := range p.doms[i] {
		if v == cur {
			out[k] = cost
			continue
		}
		out[k] = cost + p.assignDelta(cfg, i, v)
	}
}

// ExecutedAssign implements core.AssignExecutor: cfg[i] already holds
// the new value; refresh the cached sums and violations of the
// constraints touching i and push the deltas onto the cached error
// vector, exactly as ExecutedSwap does on the permutation path.
func (p *CompiledFD) ExecutedAssign(cfg []int, i, old int) {
	dv := cfg[i] - old
	if dv == 0 {
		return
	}
	cons := p.model.cons
	coefs := p.byVarCoef[i]
	for k, ci := range p.byVar[i] {
		c := &cons[ci]
		var v int
		if c.fn != nil {
			v = p.violationOf(int(ci), cfg)
		} else {
			p.sums[ci] += coefs[k] * dv
			d := p.sums[ci] - c.target
			if d < 0 {
				d = -d
			}
			v = c.weight * d
		}
		p.applyViolation(int(ci), v)
	}
}
