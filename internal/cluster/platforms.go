package cluster

// This file joins the platform simulator to live calibration. The
// original package simulated the paper's machines from bench-harness
// distributions only; with the calibration store (internal/calibrate)
// feeding fitted runtime models and measured iteration rates, the same
// Source/Platform machinery becomes a capacity planner: "what would
// this calibrated workload's speedup curve look like on Grid'5000, or
// on a fleet of N local cores?" (cmd/experiments -whatif). Two pieces
// make that possible: a name registry so CLIs can select exemplar
// platforms, and sources constructed from calibration output — the
// resolved empirical sample (NewCalibratedSim) or the fitted model
// beyond the sample's resolution (FitSource).

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Local models the machine the process runs on: one node, the given
// core count, negligible launch overheads, and a unit iteration rate
// awaiting calibration. cores <= 0 selects GOMAXPROCS.
func Local(cores int) Platform {
	if cores <= 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	return Platform{
		Name:                 "local",
		Nodes:                1,
		CoresPerNode:         cores,
		IterationsPerSecond:  1,
		LaunchOverheadSec:    0.001,
		CompletionLatencySec: 0.0001,
	}
}

// platformRegistry maps CLI-friendly names onto the exemplar
// platforms. Local is registered under a fixed default width; callers
// needing a different local core count use Local directly.
var platformRegistry = map[string]func() Platform{
	"ha8000":          HA8000,
	"grid5000-suno":   Grid5000Suno,
	"grid5000-helios": Grid5000Helios,
	"local":           func() Platform { return Local(0) },
}

// PlatformNames lists the registered platform names, sorted.
func PlatformNames() []string {
	names := make([]string, 0, len(platformRegistry))
	for n := range platformRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Named returns a registered exemplar platform by CLI name.
func Named(name string) (Platform, error) {
	f, ok := platformRegistry[name]
	if !ok {
		return Platform{}, fmt.Errorf("cluster: unknown platform %q (known: %v)", name, PlatformNames())
	}
	return f(), nil
}

// Calibrated returns a copy of the platform with its per-core
// iteration rate set from calibration. Non-positive rates leave the
// platform unchanged (the exemplars' unit rate then flags the output
// as uncalibrated rather than silently producing nonsense).
func (p Platform) Calibrated(itersPerSec float64) Platform {
	if itersPerSec > 0 {
		p.IterationsPerSecond = itersPerSec
	}
	return p
}

// FitSource draws walk runtimes from a fitted parametric model
// (stats.FitBest output) by inverse-CDF sampling — the extrapolating
// counterpart of EmpiricalSource: an empirical source can never draw
// below its smallest observation, while simulating thousands of cores
// is exactly the regime where the unobserved left tail decides the
// winner.
type FitSource struct {
	Fit stats.Fit
}

// Draw implements Source.
func (f FitSource) Draw(r *rng.Rand) float64 { return f.Fit.Quantile(r.Float64()) }

// Mean implements Source.
func (f FitSource) Mean() float64 { return f.Fit.Mean() }

// NewCalibratedSim builds a simulator for a platform directly from
// calibration-store output: the resolved sequential sample becomes the
// empirical runtime source and the calibrated iteration rate replaces
// the platform's placeholder. This is the unification the calibration
// layer was built for — one store resolution feeds both the service's
// auto-sizing and the capacity-planning simulation.
func NewCalibratedSim(p Platform, sample *stats.Sample, itersPerSec float64) (*Sim, error) {
	src, err := NewEmpiricalSource(sample)
	if err != nil {
		return nil, err
	}
	return NewSim(p.Calibrated(itersPerSec), src)
}
