package cluster

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/rng"
	"repro/internal/stats"
)

func expSource(t *testing.T, mean float64, n int) *EmpiricalSource {
	t.Helper()
	r := rng.New(1)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.ExpFloat64() * mean
	}
	s, err := stats.New(xs)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewEmpiricalSource(s)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestPlatformGeometry(t *testing.T) {
	ha := HA8000()
	if ha.Cores() != 952*16 {
		t.Fatalf("HA8000 cores = %d, want %d", ha.Cores(), 952*16)
	}
	suno := Grid5000Suno()
	if suno.Cores() != 360 {
		t.Fatalf("Suno cores = %d, want 360 (45 x 8, as in the paper)", suno.Cores())
	}
	helios := Grid5000Helios()
	if helios.Cores() != 224 {
		t.Fatalf("Helios cores = %d, want 224 (56 x 4, as in the paper)", helios.Cores())
	}
	for _, p := range []Platform{ha, suno, helios} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestPlatformValidation(t *testing.T) {
	bad := Platform{Name: "x", Nodes: 0, CoresPerNode: 4, IterationsPerSecond: 1}
	if err := bad.Validate(); err == nil {
		t.Error("0 nodes accepted")
	}
	bad = Platform{Name: "x", Nodes: 1, CoresPerNode: 1, IterationsPerSecond: 0}
	if err := bad.Validate(); err == nil {
		t.Error("0 iteration rate accepted")
	}
	bad = Platform{Name: "x", Nodes: 1, CoresPerNode: 1, IterationsPerSecond: 1, NodeJitter: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestEmpiricalSource(t *testing.T) {
	s, _ := stats.New([]float64{10, 20, 30})
	src, err := NewEmpiricalSource(s)
	if err != nil {
		t.Fatal(err)
	}
	if src.Mean() != 20 {
		t.Fatalf("Mean = %v, want 20", src.Mean())
	}
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		d := src.Draw(r)
		if d != 10 && d != 20 && d != 30 {
			t.Fatalf("Draw returned %v, not an observation", d)
		}
	}
	if src.Sample().N() != 3 {
		t.Fatal("Sample accessor broken")
	}
	if _, err := NewEmpiricalSource(nil); err == nil {
		t.Fatal("nil sample accepted")
	}
}

func TestModelSource(t *testing.T) {
	m := ModelSource{Model: stats.ShiftedExp{Shift: 100, Scale: 50}}
	if m.Mean() != 150 {
		t.Fatalf("Mean = %v, want 150", m.Mean())
	}
	r := rng.New(3)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		d := m.Draw(r)
		if d < 100 {
			t.Fatalf("draw %v below the shift", d)
		}
		sum += d
	}
	if got := sum / n; math.Abs(got-150) > 2 {
		t.Fatalf("empirical mean %v, want ~150", got)
	}
}

func TestNewSimValidation(t *testing.T) {
	src := expSource(t, 100, 50)
	if _, err := NewSim(Platform{}, src); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := NewSim(HA8000(), nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestJobDeterministicAndBounded(t *testing.T) {
	sim, err := NewSim(HA8000(), expSource(t, 1000, 500))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Job(64, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Job(64, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different jobs: %+v vs %+v", a, b)
	}
	if a.WallSeconds <= 0 {
		t.Fatalf("non-positive wall time: %+v", a)
	}
	if a.NodesUsed != 4 {
		t.Fatalf("64 walkers on 16-core nodes should span 4 nodes, got %d", a.NodesUsed)
	}
}

func TestJobValidation(t *testing.T) {
	sim, _ := NewSim(Grid5000Helios(), expSource(t, 100, 50))
	if _, err := sim.Job(0, rng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := sim.Job(225, rng.New(1)); err == nil {
		t.Error("k beyond Helios's 224 cores accepted")
	}
}

func TestJobNoJitterNoOverheadIsExactMin(t *testing.T) {
	p := Platform{
		Name: "ideal", Nodes: 8, CoresPerNode: 8,
		IterationsPerSecond: 10,
	}
	s, _ := stats.New([]float64{100, 200, 300, 400})
	src, _ := NewEmpiricalSource(s)
	sim, _ := NewSim(p, src)
	r := rng.New(4)
	jr, err := sim.Job(16, r)
	if err != nil {
		t.Fatal(err)
	}
	// With no jitter/overhead, wall = winner iterations / rate exactly.
	if math.Abs(jr.WallSeconds-jr.WinnerIterations/10) > 1e-12 {
		t.Fatalf("wall %v != winner/rate %v", jr.WallSeconds, jr.WinnerIterations/10)
	}
}

func TestSpeedupCurveShapeExponential(t *testing.T) {
	// Exponential runtimes + negligible overheads: speedup ~ k.
	p := HA8000()
	p.LaunchOverheadSec = 0
	p.CompletionLatencySec = 0
	p.LaunchStaggerSec = 0
	p.NodeJitter = 0
	sim, _ := NewSim(p, expSource(t, 100_000, 3000))
	curve, err := sim.SpeedupCurve([]int{1, 2, 4, 8, 16, 32}, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 6 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	for _, pt := range curve.Points {
		rel := pt.Speedup / float64(pt.Cores)
		if rel < 0.7 || rel > 1.4 {
			t.Fatalf("exponential speedup at k=%d is %.2f, want ~k", pt.Cores, pt.Speedup)
		}
	}
	// Monotone increasing.
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Speedup < curve.Points[i-1].Speedup {
			t.Fatalf("speedup curve not monotone: %+v", curve.Points)
		}
	}
}

func TestSpeedupCurveSaturatesWithFloor(t *testing.T) {
	// Runtime floor at 80% of the mean: speedup must saturate near
	// mean/shift = 1.25, far from linear.
	p := HA8000()
	r := rng.New(5)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 80_000 + r.ExpFloat64()*20_000
	}
	s, _ := stats.New(xs)
	src, _ := NewEmpiricalSource(s)
	sim, _ := NewSim(p, src)
	curve, err := sim.SpeedupCurve([]int{1, 16, 64, 256}, 300, 12)
	if err != nil {
		t.Fatal(err)
	}
	last := curve.Points[len(curve.Points)-1]
	if last.Speedup > 1.5 {
		t.Fatalf("floored distribution speedup at 256 cores = %.2f, should saturate near 1.25", last.Speedup)
	}
}

func TestSpeedupCurveValidation(t *testing.T) {
	sim, _ := NewSim(HA8000(), expSource(t, 100, 50))
	if _, err := sim.SpeedupCurve(nil, 100, 1); err == nil {
		t.Error("empty ks accepted")
	}
	if _, err := sim.SpeedupCurve([]int{1}, 1, 1); err == nil {
		t.Error("reps=1 accepted")
	}
	if _, err := sim.SpeedupCurve([]int{1 << 30}, 10, 1); err == nil {
		t.Error("k over capacity accepted")
	}
}

func TestLaunchOverheadHurtsSmallJobs(t *testing.T) {
	// With tiny sequential runtimes, the Grid's launch overhead must
	// depress speedups relative to the supercomputer — the paper's
	// perfect-square anomaly at 128/256 cores, in reverse.
	fast := expSource(t, 0.5, 2000) // ~0.5s sequential at rate 1
	ha := HA8000()
	suno := Grid5000Suno()
	simHA, _ := NewSim(ha, fast)
	simSuno, _ := NewSim(suno, fast)
	cHA, err := simHA.SpeedupCurve([]int{64}, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	cSuno, err := simSuno.SpeedupCurve([]int{64}, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Suno's 2s launch overhead dominates a 0.5s job; HA8000's 0.5s
	// overhead dominates less.
	if cSuno.Points[0].Speedup >= cHA.Points[0].Speedup {
		t.Fatalf("expected overhead to depress Suno speedup: HA=%v Suno=%v",
			cHA.Points[0].Speedup, cSuno.Points[0].Speedup)
	}
}

func TestInstanceValidation(t *testing.T) {
	cases := []struct {
		in Instance
		ok bool
	}{
		{Instance{}, true},
		{Instance{Encoding: EncodingPermutation, Size: 16}, true},
		{Instance{Encoding: EncodingFiniteDomain, Size: 20, DomainSize: 6}, true},
		{Instance{Encoding: "simplex", Size: 4}, false},
		{Instance{Encoding: EncodingPermutation, Size: 0}, false},
		{Instance{Size: 8}, false}, // size without encoding
		{Instance{Encoding: EncodingFiniteDomain, Size: 8, DomainSize: -1}, false},
	}
	for _, c := range cases {
		if err := c.in.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.in, err, c.ok)
		}
	}
}

// TestEffectiveIterationRate pins the encoding-aware rate scaling: a
// finite-domain iteration scans |D| candidates where a permutation
// iteration scans n, so at equal measured iteration counts the FD
// instance with small domains runs proportionally faster wall-clock.
func TestEffectiveIterationRate(t *testing.T) {
	p := HA8000()
	p.IterationsPerSecond = 1000
	if got := p.EffectiveIterationsPerSecond(Instance{}); got != 1000 {
		t.Fatalf("zero instance scaled the rate: %v", got)
	}
	perm := Instance{Encoding: EncodingPermutation, Size: 32}
	fd := Instance{Encoding: EncodingFiniteDomain, Size: 32, DomainSize: 8}
	rp, rf := p.EffectiveIterationsPerSecond(perm), p.EffectiveIterationsPerSecond(fd)
	if want := 1000 * 16.0 / 32.0; math.Abs(rp-want) > 1e-9 {
		t.Fatalf("permutation rate = %v, want %v", rp, want)
	}
	if want := rp * 32.0 / 8.0; math.Abs(rf-want) > 1e-9 {
		t.Fatalf("FD rate = %v, want %v (n/|D| faster than permutation)", rf, want)
	}
	// DomainSize 0 defaults to Size: same cost as the permutation scan.
	fdFull := Instance{Encoding: EncodingFiniteDomain, Size: 32}
	if got := p.EffectiveIterationsPerSecond(fdFull); math.Abs(got-rp) > 1e-9 {
		t.Fatalf("defaulted FD rate = %v, want %v", got, rp)
	}
}

// TestSimulateFDBenchmark runs the platform model on the finite-domain
// timetable benchmark end to end: measure a real iteration
// distribution from seeded sequential solves, wrap it in an empirical
// source, and simulate the paper's multi-walk speedup on HA8000 with
// the instance's encoding shape priced in.
func TestSimulateFDBenchmark(t *testing.T) {
	const size, runs = 20, 40
	params := map[string]int{"slots": 6, "rooms": 4, "teachers": 4}
	iters := make([]float64, 0, runs)
	var meanDom float64
	for run := 0; run < runs; run++ {
		p, err := problems.NewWithParams("timetable", size, params)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			fd := p.(core.FDProblem)
			total := 0
			for i := 0; i < p.Size(); i++ {
				total += len(fd.Domain(i))
			}
			meanDom = float64(total) / float64(p.Size())
		}
		opts := core.TunedOptions(p)
		opts.Seed = 7777 + uint64(run)
		res, err := core.Solve(context.Background(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Fatalf("run %d unsolved: %+v", run, res)
		}
		iters = append(iters, float64(res.Iterations))
	}
	sample, err := stats.New(iters)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewEmpiricalSource(sample)
	if err != nil {
		t.Fatal(err)
	}
	inst := Instance{Encoding: EncodingFiniteDomain, Size: size, DomainSize: int(meanDom + 0.5)}
	pf := HA8000()
	pf.IterationsPerSecond = sample.Mean() // dilate: sequential mean ~= 1s
	sim, err := NewInstanceSim(pf, src, inst)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := sim.SpeedupCurve([]int{1, 4, 16}, 40, 99)
	if err != nil {
		t.Fatal(err)
	}
	if curve.SeqWall <= 0 {
		t.Fatalf("non-positive sequential wall %v", curve.SeqWall)
	}
	last := 0.0
	for _, pt := range curve.Points {
		if pt.MeanWall <= 0 || pt.Speedup <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
		if pt.Speedup < last*0.8 {
			t.Fatalf("speedup collapsed at %d cores: %+v after %v", pt.Cores, pt, last)
		}
		last = pt.Speedup
	}

	// The encoding shape must actually price the simulation: the same
	// source on the reference instance shape runs slower per iteration
	// (domain scan 6 < reference scan 16), so FD wall time is shorter.
	ref, err := NewSim(pf, src)
	if err != nil {
		t.Fatal(err)
	}
	refCurve, err := ref.SpeedupCurve([]int{1}, 40, 99)
	if err != nil {
		t.Fatal(err)
	}
	if curve.SeqWall >= refCurve.SeqWall {
		t.Fatalf("FD instance (domain %d) not cheaper than reference: %v vs %v",
			inst.DomainSize, curve.SeqWall, refCurve.SeqWall)
	}
}
