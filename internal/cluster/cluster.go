// Package cluster simulates the parallel platforms of the paper's
// evaluation — the Hitachi HA8000 supercomputer and the Grid'5000 Suno
// and Helios clusters — so the multi-walk speedup experiments can be
// regenerated on any machine (see DESIGN.md §2 for the substitution
// argument).
//
// The simulation is deliberately faithful to what actually determines
// multi-walk wall time: because walks are fully independent ("no
// communication except completion"), a k-core job finishes at
//
//	min over walkers of (launch stagger + walk iterations / core speed)
//	+ completion-detection latency,
//
// where walk iteration counts are drawn from the benchmark's measured
// sequential runtime distribution. Platform-specific parameters are the
// node geometry, per-node clock jitter, launch overheads and the
// iteration rate of one core.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Platform describes a parallel machine.
type Platform struct {
	// Name labels the platform in harness output.
	Name string
	// Nodes is the number of compute nodes.
	Nodes int
	// CoresPerNode is the number of cores per node.
	CoresPerNode int
	// ClockGHz is the nominal core clock, informational.
	ClockGHz float64
	// IterationsPerSecond is the calibrated rate at which one core
	// executes solver iterations; it converts iteration draws into
	// seconds. Benchmark harnesses calibrate it from real local runs.
	IterationsPerSecond float64
	// LaunchOverheadSec is the fixed job launch cost (process spawn,
	// binary distribution).
	LaunchOverheadSec float64
	// LaunchStaggerSec is the additional per-node launch delay: node i
	// starts its walkers i*LaunchStaggerSec after the job begins,
	// modelling sequential process placement.
	LaunchStaggerSec float64
	// NodeJitter is the standard deviation of the per-node relative
	// speed factor (1 + jitter*N(0,1), clamped to [0.5, 1.5]),
	// modelling clock and memory heterogeneity.
	NodeJitter float64
	// CompletionLatencySec is the time for the winning walker's
	// completion signal to terminate the job (the paper's only
	// communication).
	CompletionLatencySec float64
}

// Cores returns the platform's total core count.
func (p Platform) Cores() int { return p.Nodes * p.CoresPerNode }

// Encoding names the move encoding a simulated benchmark runs on; the
// per-iteration work — and hence the effective per-core iteration rate
// — differs between them.
type Encoding string

const (
	// EncodingPermutation is the swap-move encoding: one iteration
	// scans O(n) candidate transpositions of the worst variable.
	EncodingPermutation Encoding = "permutation"
	// EncodingFiniteDomain is the assign/flip-move encoding: one
	// iteration scans the worst variable's domain, O(|D|) candidates.
	EncodingFiniteDomain Encoding = "finite-domain"
)

// Instance describes the shape of the simulated workload — the
// encoding and problem size that determine how much work one solver
// iteration costs relative to the platform's calibrated rate. The zero
// Instance means "the instance the rate was calibrated on" (factor 1),
// which keeps the pre-instance simulations unchanged.
type Instance struct {
	// Encoding selects the move encoding.
	Encoding Encoding
	// Size is the variable count n.
	Size int
	// DomainSize is the mean domain cardinality |D| (finite-domain
	// encodings only); 0 defaults to Size.
	DomainSize int
}

// Validate reports malformed instance descriptions.
func (in Instance) Validate() error {
	switch in.Encoding {
	case "", EncodingPermutation, EncodingFiniteDomain:
	default:
		return fmt.Errorf("cluster: unknown encoding %q", in.Encoding)
	}
	if in.Encoding == "" && (in.Size != 0 || in.DomainSize != 0) {
		return errors.New("cluster: instance with a size needs an encoding")
	}
	if in.Encoding != "" && in.Size < 1 {
		return fmt.Errorf("cluster: instance needs a positive size, got %d", in.Size)
	}
	if in.DomainSize < 0 {
		return fmt.Errorf("cluster: negative domain size %d", in.DomainSize)
	}
	return nil
}

// costFactor is the per-iteration work of this instance relative to
// the calibration reference (a size-referenceSize permutation scan).
// Permutation iterations scan n swap candidates; finite-domain
// iterations scan the worst variable's |D| assignment candidates.
func (in Instance) costFactor() float64 {
	if in.Encoding == "" {
		return 1
	}
	candidates := float64(in.Size)
	if in.Encoding == EncodingFiniteDomain {
		candidates = float64(in.DomainSize)
		if in.DomainSize == 0 {
			candidates = float64(in.Size)
		}
	}
	return candidates / referenceSize
}

// referenceSize is the candidate-scan width the platform iteration
// rates are calibrated against. Harnesses that calibrate per benchmark
// (bench.Distribution.SimItersPerSecond) fold the real cost into the
// rate itself and leave the Instance zero.
const referenceSize = 16.0

// EffectiveIterationsPerSecond scales the platform's calibrated
// per-core rate to an instance's per-iteration cost.
func (p Platform) EffectiveIterationsPerSecond(in Instance) float64 {
	return p.IterationsPerSecond / in.costFactor()
}

// Validate reports malformed platform descriptions.
func (p Platform) Validate() error {
	if p.Nodes < 1 || p.CoresPerNode < 1 {
		return fmt.Errorf("cluster: platform %q needs at least one node and one core", p.Name)
	}
	if p.IterationsPerSecond <= 0 {
		return fmt.Errorf("cluster: platform %q needs a positive iteration rate", p.Name)
	}
	if p.LaunchOverheadSec < 0 || p.LaunchStaggerSec < 0 || p.CompletionLatencySec < 0 || p.NodeJitter < 0 {
		return fmt.Errorf("cluster: platform %q has negative overheads", p.Name)
	}
	return nil
}

// HA8000 models the University of Tokyo Hitachi HA8000 used in the
// paper: 952 nodes x 16 cores (4x quad-core AMD Opteron 8356, 2.3 GHz).
// Supercomputer interconnect: low launch overheads, little jitter.
func HA8000() Platform {
	return Platform{
		Name:                 "HA8000",
		Nodes:                952,
		CoresPerNode:         16,
		ClockGHz:             2.3,
		IterationsPerSecond:  1, // calibrated by the harness
		LaunchOverheadSec:    0.5,
		LaunchStaggerSec:     0.001,
		NodeJitter:           0.01,
		CompletionLatencySec: 0.005,
	}
}

// Grid5000Suno models the Sophia-Antipolis Suno cluster: 45 Dell
// PowerEdge R410 nodes x 8 cores. Grid middleware: heavier launch
// overheads and more heterogeneity than the supercomputer.
func Grid5000Suno() Platform {
	return Platform{
		Name:                 "Grid5000/Suno",
		Nodes:                45,
		CoresPerNode:         8,
		ClockGHz:             2.27,
		IterationsPerSecond:  1,
		LaunchOverheadSec:    2.0,
		LaunchStaggerSec:     0.01,
		NodeJitter:           0.03,
		CompletionLatencySec: 0.02,
	}
}

// Grid5000Helios models the Sophia-Antipolis Helios cluster: 56 Sun
// Fire X4100 nodes x 4 cores.
func Grid5000Helios() Platform {
	return Platform{
		Name:                 "Grid5000/Helios",
		Nodes:                56,
		CoresPerNode:         4,
		ClockGHz:             2.2,
		IterationsPerSecond:  1,
		LaunchOverheadSec:    2.0,
		LaunchStaggerSec:     0.01,
		NodeJitter:           0.03,
		CompletionLatencySec: 0.02,
	}
}

// Source supplies per-walk sequential runtimes in iterations.
type Source interface {
	// Draw samples the iteration count of one independent walk.
	Draw(r *rng.Rand) float64
	// Mean returns the source's mean iteration count (the sequential
	// expected runtime).
	Mean() float64
}

// EmpiricalSource resamples a measured runtime distribution.
type EmpiricalSource struct {
	sample *stats.Sample
	xs     []float64
	mean   float64
}

// NewEmpiricalSource wraps a measured sample of sequential runtimes.
func NewEmpiricalSource(s *stats.Sample) (*EmpiricalSource, error) {
	if s == nil || s.N() == 0 {
		return nil, errors.New("cluster: empty sample")
	}
	xs, _ := s.ECDF()
	return &EmpiricalSource{sample: s, xs: xs, mean: s.Mean()}, nil
}

// Draw implements Source by uniform resampling.
func (e *EmpiricalSource) Draw(r *rng.Rand) float64 { return e.xs[r.Intn(len(e.xs))] }

// Mean implements Source.
func (e *EmpiricalSource) Mean() float64 { return e.mean }

// Sample returns the wrapped sample (for estimator-based predictions).
func (e *EmpiricalSource) Sample() *stats.Sample { return e.sample }

// ModelSource draws from a fitted shifted-exponential model; useful
// when extrapolating beyond the measured sample's resolution.
type ModelSource struct {
	Model stats.ShiftedExp
}

// Draw implements Source.
func (m ModelSource) Draw(r *rng.Rand) float64 {
	return m.Model.Shift + m.Model.Scale*r.ExpFloat64()
}

// Mean implements Source.
func (m ModelSource) Mean() float64 { return m.Model.Mean() }

// Sim couples a platform with a runtime source and, optionally, the
// shape of the instance being solved (Instance scales the per-core
// iteration rate by the encoding's per-iteration cost).
type Sim struct {
	Platform Platform
	Source   Source
	Instance Instance
}

// NewSim validates and builds a simulator for the calibration-reference
// instance shape.
func NewSim(p Platform, src Source) (*Sim, error) {
	return NewInstanceSim(p, src, Instance{})
}

// NewInstanceSim validates and builds a simulator for a specific
// instance shape — how the finite-domain benchmarks enter the platform
// model: the same measured iteration distribution, but each iteration
// priced at the encoding's candidate-scan width.
func NewInstanceSim(p Platform, src Source, in Instance) (*Sim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("cluster: nil source")
	}
	return &Sim{Platform: p, Source: src, Instance: in}, nil
}

// JobResult reports one simulated multi-walk job.
type JobResult struct {
	// Walkers is the job's core count k.
	Walkers int
	// WallSeconds is the job's completion time: min over walkers plus
	// overheads.
	WallSeconds float64
	// WinnerIterations is the winning walk's drawn iteration count.
	WinnerIterations float64
	// NodesUsed is the number of nodes the job spanned.
	NodesUsed int
}

// Job simulates one k-walker job. Walkers fill nodes in order; each
// node gets a speed factor and a launch stagger; the job completes when
// the fastest walker finishes.
func (s *Sim) Job(k int, r *rng.Rand) (JobResult, error) {
	p := s.Platform
	if k < 1 {
		return JobResult{}, fmt.Errorf("cluster: need at least 1 walker, got %d", k)
	}
	if k > p.Cores() {
		return JobResult{}, fmt.Errorf("cluster: %d walkers exceed %s's %d cores", k, p.Name, p.Cores())
	}
	rate := p.EffectiveIterationsPerSecond(s.Instance)
	nodes := (k + p.CoresPerNode - 1) / p.CoresPerNode
	best := -1.0
	bestIters := 0.0
	w := 0
	for node := 0; node < nodes; node++ {
		speed := 1 + p.NodeJitter*r.NormFloat64()
		if speed < 0.5 {
			speed = 0.5
		}
		if speed > 1.5 {
			speed = 1.5
		}
		stagger := float64(node) * p.LaunchStaggerSec
		coresHere := p.CoresPerNode
		if remaining := k - w; remaining < coresHere {
			coresHere = remaining
		}
		for c := 0; c < coresHere; c++ {
			iters := s.Source.Draw(r)
			t := stagger + iters/(rate*speed)
			if best < 0 || t < best {
				best = t
				bestIters = iters
			}
			w++
		}
	}
	wall := p.LaunchOverheadSec + best + p.CompletionLatencySec
	return JobResult{Walkers: k, WallSeconds: wall, WinnerIterations: bestIters, NodesUsed: nodes}, nil
}

// CurvePoint is one (cores, speedup) measurement with a bootstrap-style
// spread from the replication.
type CurvePoint struct {
	Cores     int
	MeanWall  float64
	Speedup   float64
	SpeedupLo float64
	SpeedupHi float64
}

// Curve is a simulated speedup curve: the reproduction of one line of
// the paper's Figs. 1-3.
type Curve struct {
	Platform string
	SeqWall  float64 // mean 1-core wall time (the speedup reference)
	Points   []CurvePoint
}

// SpeedupCurve simulates reps jobs per core count and returns mean
// speedups relative to the platform's sequential (1-core) mean wall
// time, with 95% percentile spreads over replications.
func (s *Sim) SpeedupCurve(ks []int, reps int, seed uint64) (Curve, error) {
	if reps < 2 {
		return Curve{}, errors.New("cluster: need reps >= 2")
	}
	if len(ks) == 0 {
		return Curve{}, errors.New("cluster: empty core list")
	}
	r := rng.New(seed)
	// Sequential reference: mean source runtime on one jitter-free core
	// plus the same overheads a 1-core job pays.
	p := s.Platform
	seq := p.LaunchOverheadSec + s.Source.Mean()/p.EffectiveIterationsPerSecond(s.Instance) + p.CompletionLatencySec

	curve := Curve{Platform: p.Name, SeqWall: seq}
	walls := make([]float64, reps)
	for _, k := range ks {
		sum := 0.0
		for rep := 0; rep < reps; rep++ {
			jr, err := s.Job(k, r)
			if err != nil {
				return Curve{}, err
			}
			walls[rep] = jr.WallSeconds
			sum += jr.WallSeconds
		}
		mean := sum / float64(reps)
		ws, err := stats.New(walls)
		if err != nil {
			return Curve{}, err
		}
		lo := ws.Quantile(0.975) // slower wall -> lower speedup
		hi := ws.Quantile(0.025)
		pt := CurvePoint{
			Cores:    k,
			MeanWall: mean,
			Speedup:  seq / mean,
		}
		if lo > 0 {
			pt.SpeedupLo = seq / lo
		}
		if hi > 0 {
			pt.SpeedupHi = seq / hi
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}
