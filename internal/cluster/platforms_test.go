package cluster

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestNamedRegistry(t *testing.T) {
	for _, name := range PlatformNames() {
		p, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%q invalid: %v", name, err)
		}
	}
	if _, err := Named("beowulf"); err == nil {
		t.Fatal("unknown platform accepted")
	}
	ha, _ := Named("ha8000")
	if ha.Cores() != 952*16 {
		t.Fatalf("named ha8000 cores = %d", ha.Cores())
	}
	if p := Local(4); p.Cores() != 4 || p.Nodes != 1 {
		t.Fatalf("Local(4) = %+v", p)
	}
	if p := Local(0); p.Cores() < 1 {
		t.Fatalf("Local(0) has no cores: %+v", p)
	}
}

func TestCalibratedRate(t *testing.T) {
	p := HA8000()
	if got := p.Calibrated(250_000).IterationsPerSecond; got != 250_000 {
		t.Fatalf("Calibrated rate = %v", got)
	}
	if got := p.Calibrated(0).IterationsPerSecond; got != p.IterationsPerSecond {
		t.Fatalf("zero rate should leave the platform unchanged, got %v", got)
	}
	if p.IterationsPerSecond != 1 {
		t.Fatal("Calibrated mutated its receiver")
	}
}

func TestFitSource(t *testing.T) {
	fit := stats.Fit{Family: stats.FamilyShiftedExp, Exp: stats.ShiftedExp{Shift: 100, Scale: 50}}
	src := FitSource{Fit: fit}
	if src.Mean() != 150 {
		t.Fatalf("Mean = %v, want 150", src.Mean())
	}
	r := rng.New(8)
	sum := 0.0
	const n = 50_000
	for i := 0; i < n; i++ {
		d := src.Draw(r)
		if d < 100 {
			t.Fatalf("draw %v below the model floor", d)
		}
		sum += d
	}
	if got := sum / n; math.Abs(got-150) > 2 {
		t.Fatalf("empirical mean %v, want ~150", got)
	}
	// Lognormal fits sample through the same inverse-CDF path.
	ln := stats.Fit{Family: stats.FamilyLogNormal, LN: stats.LogNormal{Mu: 5, Sigma: 0.5}}
	lsrc := FitSource{Fit: ln}
	sum = 0
	for i := 0; i < n; i++ {
		sum += lsrc.Draw(r)
	}
	if got, want := sum/n, lsrc.Mean(); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("lognormal empirical mean %v, want ~%v", got, want)
	}
}

func TestNewCalibratedSim(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 1000 + 9000*r.ExpFloat64()
	}
	sample, err := stats.New(xs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewCalibratedSim(Grid5000Suno(), sample, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Platform.IterationsPerSecond != 40_000 {
		t.Fatalf("sim rate = %v", sim.Platform.IterationsPerSecond)
	}
	curve, err := sim.SpeedupCurve([]int{1, 4, 16}, 100, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 3 || curve.Points[2].Speedup <= curve.Points[0].Speedup {
		t.Fatalf("degenerate calibrated curve: %+v", curve.Points)
	}
	if _, err := NewCalibratedSim(HA8000(), nil, 1); err == nil {
		t.Fatal("nil sample accepted")
	}
}
