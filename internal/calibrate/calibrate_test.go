package calibrate

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/stats"
)

func seqBatch(t *testing.T, iters []float64, rate float64, at time.Time) Batch {
	t.Helper()
	return Batch{
		Source:      "bench",
		RecordedAt:  at,
		Sequential:  true,
		Walkers:     1,
		Iters:       iters,
		ItersPerSec: rate,
	}
}

func drawShiftedExp(r *rng.Rand, shift, scale float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = shift + scale*r.ExpFloat64()
	}
	return xs
}

func TestRecordResolveFit(t *testing.T) {
	st := NewStore()
	key := Key{Problem: "costas", Size: 18, Strategy: "adaptive"}
	now := time.Now()
	r := rng.New(1)
	// Two sequential feeds pool into one sample.
	if err := st.Record(key, seqBatch(t, drawShiftedExp(r, 300, 4000, 200), 1e5, now)); err != nil {
		t.Fatal(err)
	}
	if err := st.Record(key, seqBatch(t, drawShiftedExp(r, 300, 4000, 200), 3e5, now)); err != nil {
		t.Fatal(err)
	}
	res, err := st.Resolve(key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 400 {
		t.Fatalf("Samples = %d, want 400", res.Samples)
	}
	if got, want := res.ItersPerSec, 2e5; math.Abs(got-want) > 1 {
		t.Fatalf("ItersPerSec = %v, want weighted mean %v", got, want)
	}
	if res.Fit.Family != stats.FamilyShiftedExp {
		t.Fatalf("fit selected %s on shifted-exp data", res.Fit.Family)
	}
	if s := res.Fit.Speedup(4); s < 1 || s > 4 {
		t.Fatalf("Speedup(4) = %v out of range", s)
	}
}

func TestResolveInsufficient(t *testing.T) {
	st := NewStore()
	key := Key{Problem: "queens", Size: 64}
	if _, err := st.Resolve(key); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("unknown key: err = %v, want ErrInsufficient", err)
	}
	// Multi-walker evidence alone never satisfies a fit: those draws
	// are min-of-k-biased.
	b := Batch{Source: "live", RecordedAt: time.Now(), Walkers: 4, Iters: drawShiftedExp(rng.New(2), 10, 100, 50)}
	if err := st.Record(key, b); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Resolve(key); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("biased-only key: err = %v, want ErrInsufficient", err)
	}
}

func TestRecordValidation(t *testing.T) {
	st := NewStore()
	key := Key{Problem: "costas", Size: 10}
	bad := []Batch{
		{Walkers: 0, Iters: []float64{1}},
		{Walkers: 1, Iters: nil},
		{Walkers: 1, Iters: []float64{math.NaN()}},
		{Walkers: 1, Iters: []float64{-1}},
		{Walkers: 1, Iters: []float64{1}, ItersPerSec: math.Inf(1)},
		{Walkers: 2, Sequential: true, Iters: []float64{1}},
	}
	for i, b := range bad {
		if err := st.Record(key, b); !errors.Is(err, ErrBadStore) {
			t.Errorf("bad[%d]: err = %v, want ErrBadStore", i, err)
		}
	}
	if err := st.Record(Key{}, Batch{Walkers: 1, Iters: []float64{1}}); !errors.Is(err, ErrBadStore) {
		t.Errorf("empty key accepted: %v", err)
	}
	// Record must copy the caller's slice.
	xs := []float64{5, 6, 7, 8, 9, 10, 11, 12}
	if err := st.Record(key, Batch{Source: "bench", Sequential: true, Walkers: 1, Iters: xs, RecordedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	xs[0] = 1e9
	res, err := st.Resolve(key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sample.Mean() > 100 {
		t.Error("store aliased the caller's observation slice")
	}
}

func TestObservedSpeedups(t *testing.T) {
	st := NewStore()
	key := Key{Problem: "magic-square", Size: 6}
	now := time.Now()
	// Sequential mean 100.
	seq := make([]float64, 50)
	for i := range seq {
		seq[i] = 100
	}
	if err := st.Record(key, seqBatch(t, seq, 0, now)); err != nil {
		t.Fatal(err)
	}
	// Winner efforts at k=4 average 25 -> measured speedup 4.
	if err := st.Record(key, Batch{Source: "live", RecordedAt: now, Walkers: 4, Iters: []float64{20, 30, 25, 25}}); err != nil {
		t.Fatal(err)
	}
	// And at k=2 average 50 -> speedup 2.
	if err := st.Record(key, Batch{Source: "live", RecordedAt: now, Walkers: 2, Iters: []float64{40, 60}}); err != nil {
		t.Fatal(err)
	}
	obs, err := st.ObservedSpeedups(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 || obs[0].Walkers != 2 || obs[1].Walkers != 4 {
		t.Fatalf("obs = %+v", obs)
	}
	if math.Abs(obs[0].Speedup-2) > 1e-9 || math.Abs(obs[1].Speedup-4) > 1e-9 {
		t.Fatalf("speedups = %v, %v; want 2, 4", obs[0].Speedup, obs[1].Speedup)
	}
	if obs[1].Runs != 4 {
		t.Fatalf("Runs = %d, want 4", obs[1].Runs)
	}
}

func TestEvictBefore(t *testing.T) {
	st := NewStore()
	key := Key{Problem: "costas", Size: 12}
	old := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	fresh := old.Add(48 * time.Hour)
	if err := st.Record(key, seqBatch(t, []float64{1, 2, 3, 4, 5, 6, 7, 8}, 0, old)); err != nil {
		t.Fatal(err)
	}
	if err := st.Record(key, seqBatch(t, []float64{9, 10, 11, 12, 13, 14, 15, 16}, 0, fresh)); err != nil {
		t.Fatal(err)
	}
	if n := st.EvictBefore(old.Add(time.Hour)); n != 1 {
		t.Fatalf("dropped %d batches, want 1", n)
	}
	res, err := st.Resolve(key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 8 || res.Sample.Mean() != 12.5 {
		t.Fatalf("post-evict sample n=%d mean=%v", res.Samples, res.Sample.Mean())
	}
	// Evicting the rest removes the key entirely.
	if n := st.EvictBefore(fresh.Add(time.Hour)); n != 1 {
		t.Fatalf("dropped %d, want 1", n)
	}
	if got := st.Keys(); len(got) != 0 {
		t.Fatalf("keys after full eviction: %v", got)
	}
}

func TestBatchCapKeepsFresh(t *testing.T) {
	st := NewStore()
	key := Key{Problem: "costas", Size: 9}
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < maxBatchesPerEntry+10; i++ {
		b := seqBatch(t, []float64{float64(i)}, 0, base.Add(time.Duration(i)*time.Second))
		if err := st.Record(key, b); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Resolve(key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != maxBatchesPerEntry {
		t.Fatalf("Samples = %d, want cap %d", res.Samples, maxBatchesPerEntry)
	}
	// The oldest observations (0..9) were the ones evicted.
	if min := res.Sample.Quantile(0); min != 10 {
		t.Fatalf("oldest surviving observation = %v, want 10", min)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st := NewStore()
	now := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	k1 := Key{Problem: "costas", Size: 14, Strategy: "adaptive"}
	k2 := Key{Problem: "timetable", Size: 20, Params: "rooms=4,slots=8"}
	if err := st.Record(k1, seqBatch(t, drawShiftedExp(rng.New(5), 50, 500, 64), 2e5, now)); err != nil {
		t.Fatal(err)
	}
	if err := st.Record(k2, Batch{Source: "live", RecordedAt: now, Walkers: 4, Iters: []float64{5, 6, 7}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "calibration.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Keys()) != 2 {
		t.Fatalf("loaded keys: %v", got.Keys())
	}
	want, _ := st.Resolve(k1)
	res, err := got.Resolve(k1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != want.Samples || res.ItersPerSec != want.ItersPerSec {
		t.Fatalf("round trip changed resolution: %+v vs %+v", res, want)
	}
	if res.Sample.Mean() != want.Sample.Mean() {
		t.Fatalf("round trip changed sample mean")
	}
}

func TestLoadMissingIsEmpty(t *testing.T) {
	st, err := Load(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Keys()) != 0 {
		t.Fatal("missing file should load as empty store")
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"wrong version": `{"schema_version":2,"entries":[]}`,
		"zero version":  `{"entries":[]}`,
		"bad batch":     `{"schema_version":1,"entries":[{"key":{"problem":"x","size":1},"batches":[{"walkers":0,"iters":[1]}]}]}`,
		"nan smuggling": `{"schema_version":1,"entries":[{"key":{"problem":"x","size":1},"batches":[{"walkers":1,"iters":[1e999]}]}]}`,
		"missing":       `null`,
		"keyless entry": `{"schema_version":1,"entries":[{"key":{"size":1},"batches":[{"walkers":1,"iters":[1]}]}]}`,
	}
	for name, doc := range cases {
		if _, err := Decode([]byte(doc)); !errors.Is(err, ErrBadStore) {
			t.Errorf("%s: err = %v, want ErrBadStore", name, err)
		}
	}
	if _, err := Decode(make([]byte, maxDecodeBytes+1)); !errors.Is(err, ErrBadStore) {
		t.Error("oversized input accepted")
	}
	st, err := Decode([]byte(`{"schema_version":1}`))
	if err != nil || len(st.Keys()) != 0 {
		t.Errorf("empty document: %v, %v", st, err)
	}
}

func TestCanonicalParams(t *testing.T) {
	if got := CanonicalParams(nil); got != "" {
		t.Errorf("nil params -> %q", got)
	}
	got := CanonicalParams(map[string]int{"slots": 8, "rooms": 4, "teachers": 6})
	if got != "rooms=4,slots=8,teachers=6" {
		t.Errorf("canonical form = %q", got)
	}
}
