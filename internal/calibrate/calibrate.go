// Package calibrate is the runtime-distribution calibration store
// behind adaptive parallelism: an append-only record of observed
// solve effort per (problem, size, params, strategy), fed from bench
// runs and from live job telemetry, and resolved on demand into a
// fitted runtime model (stats.FitBest) plus an iteration-rate
// estimate. The service's AutoSize admission mode and the
// capacity-planning CLI (experiments -whatif/-predict) both read
// predictions out of this store rather than re-measuring.
//
// Only *sequential* observations — bench collections and live jobs
// that ran with a single walker — feed the distribution fit: the
// winner iterations of a k-walker first-wins job are a draw of
// min-of-k, not of the sequential distribution, and folding them in
// would bias the fit optimistic. Multi-walker batches still
// contribute to rate calibration and provide measured-speedup
// observations for predicted-vs-measured comparison.
package calibrate

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// SchemaVersion is the store's on-disk schema version. Load drops
// entries recorded under any other version (versioned eviction): a
// schema change invalidates old calibration rather than misreading it.
const SchemaVersion = 1

// maxDecodeBytes caps the serialized store size Decode accepts.
const maxDecodeBytes = 16 << 20

// Bounds on stored volume. Batches are append-only up to the cap;
// past it the oldest batches of the entry are dropped first.
const (
	maxBatchesPerEntry = 512
	maxObsPerBatch     = 100_000
	maxEntries         = 4096
)

// minFitSamples is the smallest sequential-sample count Resolve will
// fit a model to. Below it predictions would be dominated by noise and
// Resolve returns ErrInsufficient instead.
const minFitSamples = 8

// Typed errors. ErrBadStore marks undecodable or schema-violating
// persisted data; ErrInsufficient marks a key that exists (or not)
// but lacks the sequential observations a fit needs.
var (
	ErrBadStore     = errors.New("calibrate: bad calibration store")
	ErrInsufficient = errors.New("calibrate: insufficient calibration data")
)

// Key identifies one calibration population. Params is the canonical
// string encoding of the request's parameter map (see CanonicalParams)
// so that map ordering never splits a population.
type Key struct {
	Problem  string `json:"problem"`
	Size     int    `json:"size"`
	Params   string `json:"params,omitempty"`
	Strategy string `json:"strategy,omitempty"`
}

func (k Key) String() string {
	s := fmt.Sprintf("%s/%d", k.Problem, k.Size)
	if k.Params != "" {
		s += "?" + k.Params
	}
	if k.Strategy != "" {
		s += "#" + k.Strategy
	}
	return s
}

// CanonicalParams encodes a parameter map as "k=v,..." with sorted
// keys — the canonical Key.Params form.
func CanonicalParams(params map[string]int) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, params[k])
	}
	return b.String()
}

// Batch is one append-only calibration record: the per-run solve
// efforts observed by one bench collection or one live job.
type Batch struct {
	// Source names the feed ("bench", "live").
	Source string `json:"source"`
	// RecordedAt timestamps the batch for staleness eviction.
	RecordedAt time.Time `json:"recorded_at"`
	// Sequential marks the iteration counts as unbiased draws of the
	// sequential runtime distribution (bench runs; live jobs with one
	// walker). Only sequential batches feed the model fit.
	Sequential bool `json:"sequential,omitempty"`
	// Walkers is the walker count the observations ran under (1 for
	// sequential batches).
	Walkers int `json:"walkers"`
	// Iters are the observed solve efforts in iterations (winner
	// iterations for multi-walker jobs).
	Iters []float64 `json:"iters"`
	// ItersPerSec is the observed per-walker iteration rate, 0 if the
	// feed could not measure it.
	ItersPerSec float64 `json:"iters_per_sec,omitempty"`
}

func (b *Batch) validate() error {
	if b.Walkers < 1 {
		return fmt.Errorf("%w: batch walkers %d < 1", ErrBadStore, b.Walkers)
	}
	if len(b.Iters) == 0 {
		return fmt.Errorf("%w: empty batch", ErrBadStore)
	}
	if len(b.Iters) > maxObsPerBatch {
		return fmt.Errorf("%w: batch holds %d observations (cap %d)", ErrBadStore, len(b.Iters), maxObsPerBatch)
	}
	for _, x := range b.Iters {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return fmt.Errorf("%w: invalid observation %v", ErrBadStore, x)
		}
	}
	if math.IsNaN(b.ItersPerSec) || math.IsInf(b.ItersPerSec, 0) || b.ItersPerSec < 0 {
		return fmt.Errorf("%w: invalid iteration rate %v", ErrBadStore, b.ItersPerSec)
	}
	if b.Sequential && b.Walkers != 1 {
		return fmt.Errorf("%w: sequential batch with %d walkers", ErrBadStore, b.Walkers)
	}
	return nil
}

// Entry is one key's batch history.
type Entry struct {
	Key     Key     `json:"key"`
	Batches []Batch `json:"batches"`
}

// Store is the in-memory calibration store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	entries map[Key]*Entry
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: make(map[Key]*Entry)}
}

// Record appends a batch under key. Invalid batches are rejected; once
// the entry is at its batch cap the oldest batch is evicted to make
// room (the store favors fresh evidence). Recording into a full store
// (max distinct keys) fails rather than evicting another population.
func (s *Store) Record(key Key, b Batch) error {
	if err := b.validate(); err != nil {
		return err
	}
	if key.Problem == "" {
		return fmt.Errorf("%w: key missing problem", ErrBadStore)
	}
	b.Iters = append([]float64(nil), b.Iters...)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		if len(s.entries) >= maxEntries {
			return fmt.Errorf("%w: store holds %d keys (cap)", ErrBadStore, maxEntries)
		}
		e = &Entry{Key: key}
		s.entries[key] = e
	}
	if len(e.Batches) >= maxBatchesPerEntry {
		e.Batches = e.Batches[1:]
	}
	e.Batches = append(e.Batches, b)
	return nil
}

// Keys returns the stored keys, sorted by String form.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]Key, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// EvictBefore drops batches recorded before cutoff (staleness
// eviction) and removes entries left empty. It returns the number of
// batches dropped.
func (s *Store) EvictBefore(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for k, e := range s.entries {
		kept := e.Batches[:0]
		for _, b := range e.Batches {
			if b.RecordedAt.Before(cutoff) {
				dropped++
				continue
			}
			kept = append(kept, b)
		}
		e.Batches = kept
		if len(e.Batches) == 0 {
			delete(s.entries, k)
		}
	}
	return dropped
}

// Resolved is the prediction-ready view of one key: the pooled
// sequential sample, its fitted model, and the pooled iteration rate.
type Resolved struct {
	Key Key
	// Sample pools every sequential observation; Samples is its size.
	Sample  *stats.Sample
	Samples int
	// Fit is the best-family fit of the sequential sample.
	Fit stats.Fit
	// ItersPerSec is the observation-weighted mean iteration rate over
	// every batch that measured one (sequential or not), 0 if none did.
	ItersPerSec float64
}

// Resolve pools the key's sequential observations and fits the runtime
// model. It fails with ErrInsufficient when the key is unknown or has
// fewer than minFitSamples sequential observations.
func (s *Store) Resolve(key Key) (*Resolved, error) {
	s.mu.Lock()
	e := s.entries[key]
	var seq []float64
	var rateSum, rateWeight float64
	if e != nil {
		for _, b := range e.Batches {
			if b.Sequential {
				seq = append(seq, b.Iters...)
			}
			if b.ItersPerSec > 0 {
				w := float64(len(b.Iters))
				rateSum += b.ItersPerSec * w
				rateWeight += w
			}
		}
	}
	s.mu.Unlock()
	if len(seq) < minFitSamples {
		return nil, fmt.Errorf("%w: %s has %d sequential observations (need %d)",
			ErrInsufficient, key, len(seq), minFitSamples)
	}
	sample, err := stats.New(seq)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrInsufficient, key, err)
	}
	r := &Resolved{Key: key, Sample: sample, Samples: len(seq), Fit: stats.FitBest(sample)}
	if rateWeight > 0 {
		r.ItersPerSec = rateSum / rateWeight
	}
	return r, nil
}

// SpeedupObs is one measured multi-walk speedup observation: mean
// winner effort at Walkers versus the key's sequential mean.
type SpeedupObs struct {
	Walkers int     `json:"walkers"`
	Runs    int     `json:"runs"`
	Speedup float64 `json:"speedup"`
}

// ObservedSpeedups derives measured speedups from the key's
// multi-walker batches: for each walker count with recorded winner
// efforts, speedup = (sequential mean) / (mean winner effort at k).
// Returns observations sorted by walker count; empty (not an error)
// when the key has no multi-walker evidence. The sequential mean comes
// from the same pooling as Resolve, so predicted and measured curves
// share a baseline.
func (s *Store) ObservedSpeedups(key Key) ([]SpeedupObs, error) {
	r, err := s.Resolve(key)
	if err != nil {
		return nil, err
	}
	seqMean := r.Sample.Mean()
	if seqMean <= 0 {
		return nil, fmt.Errorf("%w: %s: zero sequential mean", ErrInsufficient, key)
	}
	s.mu.Lock()
	sums := map[int]float64{}
	counts := map[int]int{}
	if e := s.entries[key]; e != nil {
		for _, b := range e.Batches {
			if b.Sequential || b.Walkers < 2 {
				continue
			}
			for _, x := range b.Iters {
				sums[b.Walkers] += x
				counts[b.Walkers]++
			}
		}
	}
	s.mu.Unlock()
	obs := make([]SpeedupObs, 0, len(sums))
	for k, n := range counts {
		mean := sums[k] / float64(n)
		if mean <= 0 {
			continue
		}
		obs = append(obs, SpeedupObs{Walkers: k, Runs: n, Speedup: seqMean / mean})
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].Walkers < obs[j].Walkers })
	return obs, nil
}

// persisted is the on-disk shape.
type persisted struct {
	SchemaVersion int     `json:"schema_version"`
	Entries       []Entry `json:"entries"`
}

// Encode serializes the store (stable entry order, indented, trailing
// newline — the artifact convention of the repo's other JSON outputs).
func (s *Store) Encode() ([]byte, error) {
	p := persisted{SchemaVersion: SchemaVersion}
	for _, k := range s.Keys() {
		s.mu.Lock()
		e := s.entries[k]
		cp := Entry{Key: e.Key, Batches: append([]Batch(nil), e.Batches...)}
		s.mu.Unlock()
		p.Entries = append(p.Entries, cp)
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses and validates a persisted store. Oversized input,
// unknown schema versions, and malformed batches all fail with errors
// wrapping ErrBadStore; a valid but empty document yields an empty
// store.
func Decode(data []byte) (*Store, error) {
	if len(data) > maxDecodeBytes {
		return nil, fmt.Errorf("%w: %d bytes exceeds cap %d", ErrBadStore, len(data), maxDecodeBytes)
	}
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if p.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: schema version %d (want %d)", ErrBadStore, p.SchemaVersion, SchemaVersion)
	}
	if len(p.Entries) > maxEntries {
		return nil, fmt.Errorf("%w: %d entries exceeds cap %d", ErrBadStore, len(p.Entries), maxEntries)
	}
	st := NewStore()
	for i := range p.Entries {
		e := &p.Entries[i]
		if len(e.Batches) > maxBatchesPerEntry {
			return nil, fmt.Errorf("%w: entry %s holds %d batches (cap %d)", ErrBadStore, e.Key, len(e.Batches), maxBatchesPerEntry)
		}
		for j := range e.Batches {
			if err := st.Record(e.Key, e.Batches[j]); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// Save writes the store atomically (temp file + rename in the target
// directory), so a crash mid-write never truncates the previous
// calibration.
func (s *Store) Save(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".calibration-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a store saved by Save. A missing file is not an error —
// it yields an empty store, so cold starts and warmed restarts share
// one code path.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewStore(), nil
	}
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
