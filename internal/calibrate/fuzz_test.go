package calibrate

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeCalibration hammers the calibration-store decoder with
// arbitrary bytes, mirroring the service's FuzzDecodeRequest contract:
// no panics, every rejection wraps the typed ErrBadStore, and anything
// that decodes must re-encode and decode again cleanly (the store a
// warmed restart reads back is as valid as the one it saved).
func FuzzDecodeCalibration(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"schema_version":1,"entries":[]}`))
	f.Add([]byte(`{"schema_version":1,"entries":[{"key":{"problem":"costas","size":18,"strategy":"adaptive"},"batches":[{"source":"bench","recorded_at":"2026-08-01T00:00:00Z","sequential":true,"walkers":1,"iters":[100,220,85],"iters_per_sec":250000}]}]}`))
	f.Add([]byte(`{"schema_version":2,"entries":[]}`))
	f.Add([]byte(`{"schema_version":1,"entries":[{"key":{"problem":"x","size":1},"batches":[{"walkers":-1,"iters":[1]}]}]}`))
	f.Add([]byte(`{"schema_version":1,"entries":[{"key":{"problem":"x","size":1},"batches":[{"walkers":1,"iters":[-5]}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadStore) {
				t.Fatalf("decode error %v does not wrap ErrBadStore", err)
			}
			return
		}
		out, err := st.Encode()
		if err != nil {
			t.Fatalf("accepted store failed to encode: %v", err)
		}
		rt, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode of encoded store failed: %v", err)
		}
		out2, err := rt.Encode()
		if err != nil {
			t.Fatalf("round-tripped store failed to encode: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("encode/decode round trip is not a fixed point")
		}
	})
}
