package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/problems"
)

// This file is the iteration-rate measurement layer: the sequential
// hot-loop speedometer behind `cmd/experiments -bench-json` and the CI
// bench-smoke job. The paper's speedup model multiplies the number of
// walkers by the *sequential* iteration rate, so this harness measures
// exactly that — engine iterations per second per benchmark, plus heap
// allocations per iteration (the hot loop is expected to allocate
// nothing). Results are committed as BENCH_iter_rate.json so every
// future PR has a trajectory to compare against.

// IterRate is the measured hot-loop rate of one benchmark.
type IterRate struct {
	// Benchmark is the registry name, Size the instance parameter used.
	Benchmark string `json:"benchmark"`
	Size      int    `json:"size"`
	// Iterations is the total number of engine iterations timed and
	// Seconds the wall-clock time they took.
	Iterations int64   `json:"iterations"`
	Seconds    float64 `json:"seconds"`
	// ItersPerSec is Iterations/Seconds — the headline number.
	ItersPerSec float64 `json:"iters_per_sec"`
	// AllocsPerIter is heap allocations amortized per iteration,
	// including the constant per-Solve setup (so ~0.01, not exactly 0,
	// is the healthy reading).
	AllocsPerIter float64 `json:"allocs_per_iter"`
}

// IterRateReport is the JSON document committed as BENCH_iter_rate.json.
type IterRateReport struct {
	// Note records how the report was produced.
	Note string `json:"note"`
	// GoVersion is the toolchain that produced the numbers; rates are
	// only comparable within the same major toolchain and machine class.
	GoVersion string `json:"go_version"`
	// Results is keyed by benchmark name.
	Results map[string]IterRate `json:"results"`
}

// IterRateSizes returns the per-benchmark instance sizes the harness
// measures: the registry default sizes, which are the laptop-scale
// instances every other experiment uses.
func IterRateSizes() map[string]int {
	sizes := make(map[string]int, len(problems.Names()))
	for _, name := range problems.Names() {
		info, err := problems.Describe(name)
		if err != nil {
			continue
		}
		sizes[name] = info.DefaultSize
	}
	return sizes
}

// MeasureIterRate runs the sequential engine on the named benchmark
// until at least minIters iterations have been executed (across as many
// seeded Solve calls as that takes) and reports the iteration rate.
// The engine runs with tuned options and a Monitor that stops each
// Solve once the remaining budget is consumed, so the measurement is
// bounded even on instances the engine would solve slowly.
func MeasureIterRate(ctx context.Context, name string, size int, seed uint64, minIters int64) (IterRate, error) {
	p, err := problems.New(name, size)
	if err != nil {
		return IterRate{}, err
	}
	res := IterRate{Benchmark: name, Size: size}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var total int64
	for run := uint64(0); total < minIters; run++ {
		if err := ctx.Err(); err != nil {
			return IterRate{}, err
		}
		opts := core.TunedOptions(p)
		opts.Seed = seed + run
		remaining := minIters - total
		opts.Monitor = func(iter int64, cost int, cfg []int) core.Directive {
			if iter >= remaining {
				return core.Directive{Stop: true}
			}
			return core.Directive{}
		}
		r, err := core.Solve(ctx, p, opts)
		if err != nil {
			return IterRate{}, err
		}
		total += r.Iterations
		if r.Iterations == 0 {
			// Degenerate instance (solved at size < 2): avoid spinning.
			break
		}
	}
	res.Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&ms1)
	res.Iterations = total
	if res.Seconds > 0 {
		res.ItersPerSec = float64(total) / res.Seconds
	}
	if total > 0 {
		res.AllocsPerIter = float64(ms1.Mallocs-ms0.Mallocs) / float64(total)
	}
	return res, nil
}

// CollectIterRates measures every registered benchmark at its default
// size and assembles the committed report.
func CollectIterRates(ctx context.Context, seed uint64, minIters int64) (*IterRateReport, error) {
	report := &IterRateReport{
		Note:      fmt.Sprintf("go run ./cmd/experiments -bench-json BENCH_iter_rate.json -bench-iters %d", minIters),
		GoVersion: runtime.Version(),
		Results:   make(map[string]IterRate),
	}
	sizes := IterRateSizes()
	for _, name := range problems.Names() {
		r, err := MeasureIterRate(ctx, name, sizes[name], seed, minIters)
		if err != nil {
			return nil, fmt.Errorf("bench: iteration rate of %s: %w", name, err)
		}
		report.Results[name] = r
	}
	return report, nil
}

// WriteJSON writes the report to path, indentated and newline-terminated
// so it diffs cleanly when committed.
func (r *IterRateReport) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadIterRateReport loads a report written by WriteJSON.
func ReadIterRateReport(path string) (*IterRateReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r IterRateReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// sortedBenchmarks returns the report's benchmark names, sorted.
func (r *IterRateReport) sortedBenchmarks() []string {
	names := make([]string, 0, len(r.Results))
	for n := range r.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RenderTable writes the report as an aligned text table.
func (r *IterRateReport) RenderTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-16s %8s %14s %14s %12s\n", "benchmark", "size", "iterations", "iters/sec", "allocs/iter"); err != nil {
		return err
	}
	for _, name := range r.sortedBenchmarks() {
		e := r.Results[name]
		if _, err := fmt.Fprintf(w, "%-16s %8d %14d %14.0f %12.4f\n",
			e.Benchmark, e.Size, e.Iterations, e.ItersPerSec, e.AllocsPerIter); err != nil {
			return err
		}
	}
	return nil
}

// RenderMarkdown writes the report as the GitHub-flavoured markdown
// table embedded in the README's performance section.
func (r *IterRateReport) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| Benchmark | Size | Iterations/sec | Allocs/iteration |\n|---|---:|---:|---:|\n"); err != nil {
		return err
	}
	for _, name := range r.sortedBenchmarks() {
		e := r.Results[name]
		if _, err := fmt.Fprintf(w, "| %s | %d | %.0f | %.4f |\n",
			e.Benchmark, e.Size, e.ItersPerSec, e.AllocsPerIter); err != nil {
			return err
		}
	}
	return nil
}

// CompareIterRates checks a fresh measurement against a committed
// baseline and returns one message per regression: a benchmark whose
// iteration rate dropped by more than threshold (e.g. 0.25 = fail below
// 75% of baseline), or a baseline benchmark that was not measured at
// all. An empty slice means the run is within budget. The comparison is
// absolute, so it is only meaningful between runs on the same machine
// class; for cross-machine gating use CompareIterRatesRelative.
func CompareIterRates(fresh, baseline *IterRateReport, threshold float64) []string {
	var regressions []string
	for _, name := range baseline.sortedBenchmarks() {
		base := baseline.Results[name]
		got, ok := fresh.Results[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline but not measured", name))
			continue
		}
		floor := base.ItersPerSec * (1 - threshold)
		if got.ItersPerSec < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f iters/sec is below the regression floor %.0f (baseline %.0f, threshold -%.0f%%)",
					name, got.ItersPerSec, floor, base.ItersPerSec, threshold*100))
		}
	}
	return regressions
}

// CompareIterRatesRelative checks a fresh measurement against a
// baseline with machine speed factored out: each benchmark's
// fresh/baseline rate ratio is normalized by the median ratio across
// all benchmarks, so a run on a uniformly slower (or faster) machine
// compares clean and only benchmarks that regressed *relative to the
// rest of the suite* — the signature of a structural hot-path
// regression — trip the threshold. The returned median is the measured
// machine-speed factor (1.0 = same speed as the baseline box); a
// uniform engine-wide slowdown shows up there, not in the regression
// list, so gates should surface it to humans. Missing benchmarks are
// regressions as in CompareIterRates.
func CompareIterRatesRelative(fresh, baseline *IterRateReport, threshold float64) (regressions []string, median float64) {
	ratios := make([]float64, 0, len(baseline.Results))
	for _, name := range baseline.sortedBenchmarks() {
		base := baseline.Results[name]
		if got, ok := fresh.Results[name]; ok && base.ItersPerSec > 0 {
			ratios = append(ratios, got.ItersPerSec/base.ItersPerSec)
		}
	}
	if len(ratios) == 0 {
		return []string{"no overlapping benchmarks between fresh measurement and baseline"}, 0
	}
	sort.Float64s(ratios)
	median = ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	for _, name := range baseline.sortedBenchmarks() {
		base := baseline.Results[name]
		got, ok := fresh.Results[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline but not measured", name))
			continue
		}
		if base.ItersPerSec <= 0 {
			continue
		}
		ratio := got.ItersPerSec / base.ItersPerSec
		if ratio < median*(1-threshold) {
			regressions = append(regressions,
				fmt.Sprintf("%s: rate ratio %.2f vs baseline is below %.0f%% of the suite median %.2f (%.0f vs %.0f iters/sec)",
					name, ratio, (1-threshold)*100, median, got.ItersPerSec, base.ItersPerSec))
		}
	}
	return regressions, median
}
