package bench

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/calibrate"
)

func TestSeedCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sequential searches")
	}
	st := calibrate.NewStore()
	w := Workload{Benchmark: "costas", Size: 8, Runs: 12}
	d, err := SeedCalibration(context.Background(), st, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Resolve(calibrate.Key{Problem: "costas", Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 12 || res.Sample.N() != 12 {
		t.Fatalf("resolved %d samples, want 12", res.Samples)
	}
	if res.ItersPerSec != d.ItersPerSecond {
		t.Fatalf("rate %v not carried from the collection's %v", res.ItersPerSec, d.ItersPerSecond)
	}
	if res.Sample.Mean() != d.Iters.Mean() {
		t.Fatalf("store mean %v != collected mean %v", res.Sample.Mean(), d.Iters.Mean())
	}
	// A second seeding appends rather than replaces.
	if _, err := SeedCalibration(context.Background(), st, w, 6); err != nil {
		t.Fatal(err)
	}
	res, err = st.Resolve(calibrate.Key{Problem: "costas", Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 24 {
		t.Fatalf("after re-seeding: %d samples, want 24", res.Samples)
	}
}

func TestCollectPredictReportTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sequential and multi-walk searches")
	}
	report, err := CollectPredictReport(context.Background(), ScaleTiny, []string{"costas"}, []int{1, 2, 4}, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Problems) != 1 {
		t.Fatalf("%d problems, want 1", len(report.Problems))
	}
	e := report.Problems[0]
	if e.Benchmark != "costas" || len(e.Points) != 3 {
		t.Fatalf("entry %+v", e)
	}
	p1 := e.Points[0]
	if p1.Walkers != 1 || p1.Predicted != 1 || p1.Measured != 1 || !p1.Within {
		t.Fatalf("k=1 point must be exactly 1/1/within: %+v", p1)
	}
	for _, pt := range e.Points[1:] {
		if pt.Predicted <= 1 || pt.Measured <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
		if pt.Lo > pt.Predicted || pt.Hi < pt.Predicted {
			t.Fatalf("band [%v, %v] excludes its own point prediction %v", pt.Lo, pt.Hi, pt.Predicted)
		}
		if pt.MeasureSE <= 0 {
			t.Fatalf("k=%d has no measurement-noise estimate", pt.Walkers)
		}
	}
	// Speedup predictions must grow with k (min-of-k is monotone).
	if e.Points[2].Predicted <= e.Points[1].Predicted {
		t.Fatalf("predicted speedup not monotone: %v then %v", e.Points[1].Predicted, e.Points[2].Predicted)
	}
	if !strings.Contains(report.Note, "-bench-predict") {
		t.Fatalf("note %q lacks the regeneration command", report.Note)
	}

	// Round-trips through the committed-artifact JSON form.
	path := filepath.Join(t.TempDir(), "pred.json")
	if err := report.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPredictReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Problems) != 1 || back.Problems[0].Points[2].Predicted != e.Points[2].Predicted {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
	var sb strings.Builder
	if err := back.RenderTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "costas") {
		t.Fatalf("rendered table lacks the benchmark:\n%s", sb.String())
	}
}

func TestCollectPredictReportValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := CollectPredictReport(ctx, ScaleTiny, []string{"costas"}, []int{1}, 1, 1); err == nil {
		t.Fatal("reps=1 accepted")
	}
	if _, err := CollectPredictReport(ctx, ScaleTiny, []string{"sudoku"}, []int{1}, 5, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
