package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: one of the paper's tables,
// or the tabular form of one of its figures.
type Table struct {
	// ID is the experiment id from DESIGN.md (e.g. "fig1").
	ID string
	// Title is the human-readable caption.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, stringified.
	Rows [][]string
	// Notes carries caveats and paper-vs-measured commentary, printed
	// under the table.
	Notes []string
}

// Render writes an aligned ASCII table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (quotes are not needed
// for the harness's numeric/label content; commas in cells are replaced
// by semicolons defensively).
func (t *Table) CSV(w io.Writer) error {
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cells := make([]string, 0, len(t.Header))
	for _, h := range t.Header {
		cells = append(cells, clean(h))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, clean(c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// AsciiChart renders series as a crude log-x speedup chart, the
// harness's stand-in for the paper's figure plots. xs must be positive
// and shared across series.
func AsciiChart(w io.Writer, title string, xs []int, series map[string][]float64, height int) error {
	if height < 4 {
		height = 12
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	maxY := 0.0
	for _, ys := range series {
		for _, y := range ys {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	// Stable marker assignment by sorted name.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	markers := "*o+x#@%&"
	cols := len(xs)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*6))
	}
	for si, name := range names {
		m := markers[si%len(markers)]
		for ci, y := range series[name] {
			if ci >= cols {
				break
			}
			row := height - 1 - int(y/maxY*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := ci*6 + 2
			grid[row][col] = m
		}
	}
	for r, rowBytes := range grid {
		label := "      "
		if r == 0 {
			label = fmt.Sprintf("%5.0f ", maxY)
		}
		if r == height-1 {
			label = "    0 "
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(rowBytes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "      +%s\n       ", strings.Repeat("-", cols*6)); err != nil {
		return err
	}
	for _, x := range xs {
		fmt.Fprintf(w, "%-6d", x)
	}
	fmt.Fprintln(w)
	for si, name := range names {
		fmt.Fprintf(w, "       %c = %s\n", markers[si%len(markers)], name)
	}
	_, err := fmt.Fprintln(w)
	return err
}
