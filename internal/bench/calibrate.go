package bench

import (
	"context"
	"time"

	"repro/internal/calibrate"
)

// SeedCalibration collects a workload's sequential runtime
// distribution and records it into the calibration store as one bench
// batch — the cold-start path for the service's AutoSize mode and the
// capacity-planning CLI: run it once per workload, persist the store,
// and live job telemetry keeps it fresh from there. Returns the
// collected distribution so callers can report or reuse it.
func SeedCalibration(ctx context.Context, st *calibrate.Store, w Workload, seed uint64) (*Distribution, error) {
	d, err := Collect(ctx, w, seed)
	if err != nil {
		return nil, err
	}
	xs, _ := d.Iters.ECDF()
	key := calibrate.Key{Problem: w.Benchmark, Size: w.Size}
	err = st.Record(key, calibrate.Batch{
		Source:      "bench",
		RecordedAt:  time.Now(),
		Sequential:  true,
		Walkers:     1,
		Iters:       xs,
		ItersPerSec: d.ItersPerSecond,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}
