package bench

import (
	"context"
	"testing"
	"time"
)

func TestCollectSpeculationDist(t *testing.T) {
	w := Workload{Benchmark: "costas", Size: 18}
	const straggle = 600 * time.Millisecond
	rep, err := CollectSpeculationDist(context.Background(), w, 4, 3, 99, 200, straggle)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline arm cannot beat the injected delay: its straggler
	// shard is held for the full straggle before it even starts.
	if rep.Baseline.P50MS < float64(straggle.Milliseconds()) {
		t.Errorf("baseline P50 %.1fms beat the %v injected delay", rep.Baseline.P50MS, straggle)
	}
	if rep.Baseline.SpeculationsLaunched != 0 {
		t.Errorf("speculation-off arm launched %d backups", rep.Baseline.SpeculationsLaunched)
	}
	// The speculated arm should detect the stalled shard and finish on
	// the backup well before the hold expires.
	if rep.Speculated.SpeculationsLaunched < 1 || rep.Speculated.SpeculationsWon < 1 {
		t.Errorf("speculated arm: launched=%d won=%d, want both >= 1",
			rep.Speculated.SpeculationsLaunched, rep.Speculated.SpeculationsWon)
	}
	if rep.Speculated.P95MS >= rep.Baseline.P50MS {
		t.Errorf("speculation did not cut the tail: speculated P95 %.1fms vs baseline P50 %.1fms",
			rep.Speculated.P95MS, rep.Baseline.P50MS)
	}

	// Misuse guards.
	if _, err := CollectSpeculationDist(context.Background(), w, 1, 1, 1, 100, straggle); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CollectSpeculationDist(context.Background(), w, 4, 1, 1, 0, straggle); err == nil {
		t.Error("zero iteration budget accepted")
	}
	if _, err := CollectSpeculationDist(context.Background(), w, 4, 1, 1, 100, 0); err == nil {
		t.Error("zero straggle delay accepted")
	}
}
