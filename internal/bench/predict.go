package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"repro/internal/rng"
	"repro/internal/stats"
)

// This file is the prediction-accuracy surface behind `cmd/experiments
// -bench-predict` and the committed BENCH_predicted_speedup.json: for
// each benchmark it fits the sequential runtime distribution
// (stats.FitBest), predicts expected speedup at each walker count with
// a bootstrap confidence band, then actually runs multi-walk jobs at
// those counts and records the measured speedup beside the prediction.
// The committed artifact is the repo's standing answer to "how far can
// the auto-sizer be trusted?" — a future fit or predictor regression
// shows up as measured speedups drifting out of the bands.

// PredictPoint is one walker count's predicted-vs-measured comparison.
type PredictPoint struct {
	// Walkers is k.
	Walkers int `json:"walkers"`
	// Predicted is the fitted model's expected speedup at k, with
	// [Lo, Hi] the bootstrap confidence band (see PredictConfidence).
	Predicted float64 `json:"predicted"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	// Measured is the observed speedup: sequential mean iterations over
	// the mean winner iterations of the measured multi-walk runs.
	Measured float64 `json:"measured"`
	// MeasureSE is the estimated relative standard error of Measured —
	// sequential-mean noise (observed CV over sqrt n) plus winner-mean
	// noise (conservatively one relative sd over sqrt reps), combined in
	// quadrature. The bootstrap band covers only model-fit uncertainty;
	// Measured is an independent finite-sample estimate, so the coverage
	// check must allow for its noise too.
	MeasureSE float64 `json:"measure_se"`
	// Within reports Lo - m <= Measured <= Hi + m, where the margin
	// m = 2*MeasureSE*Predicted is the measurement-noise allowance.
	Within bool `json:"within"`
}

// PredictEntry is one benchmark's prediction-accuracy record.
type PredictEntry struct {
	Benchmark string `json:"benchmark"`
	Size      int    `json:"size"`
	// Family is the selected runtime-model family, Samples the
	// sequential sample size it was fitted on, KS its goodness of fit.
	Family  string         `json:"family"`
	Samples int            `json:"samples"`
	KS      float64        `json:"ks"`
	Points  []PredictPoint `json:"points"`
	// WithinCount summarizes Points: at how many walker counts the
	// measured speedup fell inside the predicted band.
	WithinCount int `json:"within_count"`
}

// PredictReport is the JSON document committed as
// BENCH_predicted_speedup.json.
type PredictReport struct {
	Note      string `json:"note"`
	GoVersion string `json:"go_version"`
	Scale     string `json:"scale"`
	// Reps is the number of multi-walk jobs measured per (benchmark,
	// k); BootstrapIters/Confidence parameterize the predicted bands.
	Reps           int            `json:"reps"`
	BootstrapIters int            `json:"bootstrap_iters"`
	Confidence     float64        `json:"confidence"`
	Problems       []PredictEntry `json:"problems"`
}

// Prediction-report defaults: the walker counts of the committed
// artifact and the bootstrap parameters of its bands.
var PredictCoreCounts = []int{1, 2, 4, 8}

const (
	// PredictBootstrapIters resamples per band; PredictConfidence is
	// the band's nominal coverage of the *model parameter* uncertainty
	// (measured speedups carry their own sampling noise on top, so
	// bands are necessarily approximate at finite reps).
	PredictBootstrapIters = 400
	PredictConfidence     = 0.98
)

// CollectPredictReport builds the prediction-accuracy report for the
// named benchmarks of the scale's paper workloads: fit on a fresh
// sequential collection, predict at each k in ks, then measure reps
// multi-walk runs per k.
func CollectPredictReport(ctx context.Context, scale Scale, names []string, ks []int, reps int, seed uint64) (*PredictReport, error) {
	if reps < 2 {
		return nil, fmt.Errorf("bench: predict report needs reps >= 2, got %d", reps)
	}
	workloads := PaperWorkloads(scale)
	report := &PredictReport{
		Note: fmt.Sprintf("go run ./cmd/experiments -bench-predict BENCH_predicted_speedup.json -scale %s -bench-predict-reps %d -seed %d",
			scale, reps, seed),
		GoVersion:      runtime.Version(),
		Scale:          scale.String(),
		Reps:           reps,
		BootstrapIters: PredictBootstrapIters,
		Confidence:     PredictConfidence,
	}
	for _, name := range names {
		w, ok := workloads[name]
		if !ok {
			return nil, fmt.Errorf("bench: %q is not a paper workload", name)
		}
		entry, err := collectPredictEntry(ctx, w, ks, reps, seed)
		if err != nil {
			return nil, err
		}
		report.Problems = append(report.Problems, *entry)
	}
	return report, nil
}

// collectPredictEntry measures one benchmark: sequential fit, per-k
// prediction with bands, per-k measured speedup.
func collectPredictEntry(ctx context.Context, w Workload, ks []int, reps int, seed uint64) (*PredictEntry, error) {
	d, err := Collect(ctx, w, seed)
	if err != nil {
		return nil, err
	}
	fit := stats.FitBest(d.Iters)
	entry := &PredictEntry{
		Benchmark: w.Benchmark,
		Size:      w.Size,
		Family:    string(fit.Family),
		Samples:   d.Iters.N(),
		KS:        fit.KS,
	}
	seqMean := d.Iters.Mean()
	for _, k := range ks {
		pred, err := stats.PredictSpeedup(d.Iters, k, PredictBootstrapIters, PredictConfidence, rng.New(seed^uint64(k)*0x9e3779b97f4a7c15))
		if err != nil {
			return nil, fmt.Errorf("bench: predicting %s at k=%d: %w", w, k, err)
		}
		pt := PredictPoint{Walkers: k, Predicted: pred.Speedup, Lo: pred.Lo, Hi: pred.Hi}
		if k == 1 {
			// Speedup at one walker is 1 by definition on both sides; a
			// measured run would only re-estimate the sequential mean.
			pt.Measured = 1
		} else {
			meanWinner, err := CollectVirtualSpeedup(ctx, w, k, reps, seed+uint64(1000*k))
			if err != nil {
				return nil, fmt.Errorf("bench: measuring %s at k=%d: %w", w, k, err)
			}
			if meanWinner <= 0 {
				return nil, fmt.Errorf("bench: degenerate winner mean for %s at k=%d", w, k)
			}
			pt.Measured = seqMean / meanWinner
			// Delta-method relative SE of the measured ratio: the
			// numerator's noise from the sequential sample's own spread,
			// the denominator's conservatively taken as one relative
			// standard deviation (exponential-like winner runtimes have
			// CV near 1) shrunk by the measurement reps.
			seqRelSE := d.Iters.CV() / math.Sqrt(float64(d.Iters.N()))
			pt.MeasureSE = math.Sqrt(seqRelSE*seqRelSE + 1/float64(reps))
		}
		margin := 2 * pt.MeasureSE * pt.Predicted
		pt.Within = pt.Lo-margin <= pt.Measured && pt.Measured <= pt.Hi+margin
		if pt.Within {
			entry.WithinCount++
		}
		entry.Points = append(entry.Points, pt)
	}
	return entry, nil
}

// WriteJSON writes the report indented and newline-terminated so it
// diffs cleanly when committed.
func (r *PredictReport) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// ReadPredictReport loads a report written by WriteJSON.
func ReadPredictReport(path string) (*PredictReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PredictReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// RenderTable writes the report as an aligned text table.
func (r *PredictReport) RenderTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-16s %6s %12s %4s %10s %20s %10s %7s\n",
		"benchmark", "size", "family", "k", "predicted", "band", "measured", "within"); err != nil {
		return err
	}
	for _, e := range r.Problems {
		for _, pt := range e.Points {
			band := fmt.Sprintf("[%6.2f, %6.2f]", pt.Lo, pt.Hi)
			if _, err := fmt.Fprintf(w, "%-16s %6d %12s %4d %10.2f %20s %10.2f %7v\n",
				e.Benchmark, e.Size, e.Family, pt.Walkers, pt.Predicted, band, pt.Measured, pt.Within); err != nil {
				return err
			}
		}
	}
	return nil
}
