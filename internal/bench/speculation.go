package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/problems"
)

// This file measures what speculative re-dispatch buys: the tail of
// the distributed job-latency distribution. A job's latency is the
// latency of its slowest shard (min-order statistics over walker
// completion, DESIGN.md §14), so one straggling worker drags P95/P99
// to its own pace even when every other shard finished long ago. The
// collector stands up an in-process fleet with one injected straggler
// — a reverse proxy that holds every shard dispatch to that worker for
// a fixed delay before forwarding — and runs the same budget-bounded
// job stream twice, with speculation off and on. Results are committed
// as BENCH_tail_latency.json so the tail-latency claim has a pinned
// artifact.

// TailLatency is the measured job-latency distribution of one arm of
// the comparison (speculation off or on) plus the arm's speculation
// counters.
type TailLatency struct {
	// Speculate records whether the coordinator ran with speculative
	// re-dispatch enabled.
	Speculate bool `json:"speculate"`
	// Jobs is the number of timed jobs behind the percentiles.
	Jobs int `json:"jobs"`
	// P50MS/P95MS/P99MS/MaxMS are job-latency percentiles in
	// milliseconds. With a straggler on the primary path and
	// speculation off, P50 already sits near the injected delay; with
	// speculation on the whole distribution collapses toward the
	// detection time plus one shard's work.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// SpeculationsLaunched/SpeculationsWon are the coordinator's
	// counters after the arm: in the off arm both are zero, in the on
	// arm launches should track jobs and wins launches.
	SpeculationsLaunched int64 `json:"speculations_launched"`
	SpeculationsWon      int64 `json:"speculations_won"`
}

// TailLatencyReport is the JSON document committed as
// BENCH_tail_latency.json.
type TailLatencyReport struct {
	// Note records how the report was produced.
	Note string `json:"note"`
	// GoVersion is the toolchain that produced the numbers.
	GoVersion string `json:"go_version"`
	// Benchmark/Size/Walkers/IterBudget describe the job template:
	// every job runs Walkers walkers of Benchmark at Size for exactly
	// IterBudget iterations each (MaxRuns 1, budget chosen so the
	// instance stays unsolved and every shard runs to completion —
	// which puts the straggler's shard on the critical path).
	Benchmark  string `json:"benchmark"`
	Size       int    `json:"size"`
	Walkers    int    `json:"walkers"`
	IterBudget int64  `json:"iter_budget"`
	// StraggleMS is the injected dispatch delay on the straggler
	// worker.
	StraggleMS int64 `json:"straggle_ms"`
	// Baseline is the speculation-off arm, Speculated the
	// speculation-on arm, over the same fleet shape, job template and
	// seed schedule.
	Baseline   TailLatency `json:"baseline"`
	Speculated TailLatency `json:"speculated"`
}

// WriteJSON writes the report to path, indented and newline-terminated
// so it diffs cleanly when committed.
func (r *TailLatencyReport) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// CollectSpeculationDist measures the distributed job-latency
// distribution with and without speculative re-dispatch under an
// injected straggler. The fleet is three workers with ceil(k/2) slots
// each, so a k-walker job lands as two primary shards on the first two
// workers and the third stays free to host backups; worker 0 is the
// straggler (every POST /v1/run to it is held for straggle before
// being forwarded). Jobs are budget-bounded (iterBudget iterations per
// walker, one run) so they complete rather than solve, keeping the
// straggler's shard on the critical path; because walker identity is
// global, the speculated arm's results are bit-for-bit those of the
// baseline arm for the same seed — only the latency changes.
func CollectSpeculationDist(ctx context.Context, w Workload, k, reps int, seed uint64, iterBudget int64, straggle time.Duration) (*TailLatencyReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 2 || reps < 1 {
		return nil, fmt.Errorf("bench: CollectSpeculationDist needs k >= 2 and reps >= 1, got k=%d reps=%d", k, reps)
	}
	if iterBudget < 1 {
		return nil, fmt.Errorf("bench: CollectSpeculationDist needs a positive iteration budget, got %d", iterBudget)
	}
	if straggle <= 0 {
		return nil, fmt.Errorf("bench: CollectSpeculationDist needs a positive straggle delay, got %v", straggle)
	}
	probe, err := problems.New(w.Benchmark, w.Size)
	if err != nil {
		return nil, err
	}
	engine := core.TunedOptions(probe)
	engine.MaxIterations = iterBudget
	engine.MaxRuns = 1
	report := &TailLatencyReport{
		Note:       fmt.Sprintf("go run ./cmd/experiments -bench-tail BENCH_tail_latency.json (straggle %v, %d reps)", straggle, reps),
		GoVersion:  runtime.Version(),
		Benchmark:  w.Benchmark,
		Size:       w.Size,
		Walkers:    k,
		IterBudget: iterBudget,
		StraggleMS: straggle.Milliseconds(),
	}
	if report.Baseline, err = speculationArm(ctx, w, k, reps, seed, engine, straggle, false); err != nil {
		return nil, fmt.Errorf("bench: speculation-off arm: %w", err)
	}
	if report.Speculated, err = speculationArm(ctx, w, k, reps, seed, engine, straggle, true); err != nil {
		return nil, fmt.Errorf("bench: speculation-on arm: %w", err)
	}
	return report, nil
}

// speculationArm runs one arm of the comparison and reports its
// latency distribution and counters. Every rep gets a fresh fleet: a
// speculated-around straggler ends the job marked suspect (its severed
// loser connection looks like a transport loss, which is the fleet
// doing its job), and reusing it would hand later reps a straggler-free
// topology — the arm must measure speculation, not suspicion.
func speculationArm(ctx context.Context, w Workload, k, reps int, seed uint64, engine core.Options, straggle time.Duration, speculate bool) (TailLatency, error) {
	cfg := dist.CoordinatorConfig{
		BoardSync:         2 * time.Millisecond,
		HeartbeatInterval: -1,
	}
	if speculate {
		cfg.Speculate = true
		cfg.SpeculateAfter = maxDuration(straggle/10, 20*time.Millisecond)
		cfg.SpeculateInterval = maxDuration(straggle/20, 10*time.Millisecond)
		cfg.ProgressInterval = 10 * time.Millisecond
	}
	lats := make([]float64, 0, reps)
	arm := TailLatency{Speculate: speculate, Jobs: reps}
	for rep := 0; rep < reps; rep++ {
		coord, cleanup, err := stragglerFleet(3, (k+1)/2, 0, straggle, cfg)
		if err != nil {
			return TailLatency{}, err
		}
		t0 := time.Now()
		res, err := coord.Run(ctx, dist.JobSpec{
			Problem: w.Benchmark,
			Size:    w.Size,
			Walkers: k,
			Seed:    seed + uint64(rep)*7919,
			Engine:  engine,
		})
		lat := float64(time.Since(t0).Microseconds()) / 1000
		m := coord.BackendMetrics()
		cleanup()
		if err != nil {
			return TailLatency{}, err
		}
		if res.Truncated {
			return TailLatency{}, fmt.Errorf("bench: straggler rep %d truncated", rep)
		}
		lats = append(lats, lat)
		arm.SpeculationsLaunched += m["speculations_launched"]
		arm.SpeculationsWon += m["speculations_won"]
	}
	sort.Float64s(lats)
	pct := func(p float64) float64 { return lats[int(p*float64(len(lats)-1))] }
	arm.P50MS, arm.P95MS, arm.P99MS, arm.MaxMS = pct(0.50), pct(0.95), pct(0.99), lats[len(lats)-1]
	return arm, nil
}

// stragglerFleet stands up n in-process dist workers on real listeners
// — worker straggler fronted by a holdRuns proxy with the given delay
// — and a coordinator over them with cfg's policy fields. The returned
// cleanup tears everything down in reverse order.
func stragglerFleet(n, slotsEach, straggler int, delay time.Duration, cfg dist.CoordinatorConfig) (*dist.Coordinator, func(), error) {
	var closers []func()
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	serve := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln)
		closers = append(closers, func() { srv.Close() })
		return "http://" + ln.Addr().String(), nil
	}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		wk := dist.NewWorker(dist.WorkerConfig{Slots: slotsEach})
		closers = append(closers, func() { wk.Close() })
		base, err := serve(wk.Handler())
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		if i == straggler {
			target, err := url.Parse(base)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			if base, err = serve(holdRuns(target, delay)); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
		urls = append(urls, base)
	}
	cfg.Workers = urls
	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	closers = append(closers, coord.Close)
	return coord, cleanup, nil
}

// holdRuns fronts a worker with a reverse proxy that holds every shard
// dispatch (POST /v1/run) for delay before forwarding. That is the
// straggler shape speculation targets: the worker looks healthy —
// health probes, cancels and progress traffic pass straight through —
// but every shard placed on it starts late, and until it starts it
// reports no progress, which is exactly what the coordinator's
// detector sees from a stalled process.
func holdRuns(target *url.URL, delay time.Duration) http.Handler {
	px := httputil.NewSingleHostReverseProxy(target)
	px.ErrorHandler = func(w http.ResponseWriter, _ *http.Request, _ error) {
		// The coordinator severing a cancelled loser mid-forward is
		// the normal path here, not worth logging.
		w.WriteHeader(http.StatusBadGateway)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/run" {
			// Drain the body before holding: the net/http server only
			// watches for client disconnects once the request body is
			// consumed, and a cancelled loser's dispatch must abort when
			// the coordinator severs it, not sleep out the full hold.
			body, err := io.ReadAll(r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
		}
		px.ServeHTTP(w, r)
	})
}

// maxDuration returns the larger of two durations.
func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
