// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (see DESIGN.md §4 for the
// experiment index). The pipeline for the speedup figures is:
//
//  1. Collect — run R sequential Adaptive Search solves of a benchmark
//     and record the runtime distribution (in iterations, the
//     machine-independent work unit, and in seconds for calibration).
//  2. Predict — the order-statistics estimator E[min_k] from
//     internal/stats gives the hardware-independent speedup curve.
//  3. Simulate — internal/cluster replays the multi-walk jobs on the
//     paper's platform models (HA8000, Grid'5000) including launch
//     overheads and node jitter, giving the platform-colored curves.
//
// The paper's instances take CPU-hours sequentially; the default Scale
// uses smaller instances of the same benchmarks whose runtime
// distributions belong to the same family (EXPERIMENTS.md quantifies
// this), so every figure regenerates in minutes on a laptop.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
	"repro/internal/stats"
)

// Scale selects instance sizes for the experiment suite.
type Scale int

const (
	// ScaleSmall uses laptop-friendly instances (default).
	ScaleSmall Scale = iota
	// ScaleTiny uses the smallest meaningful instances; used by `go
	// test` benches so the full suite stays fast.
	ScaleTiny
	// ScalePaper uses the paper's instance sizes (CPU-hours; only for
	// a real cluster or very patient users).
	ScalePaper
)

// ParseScale converts a CLI string into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small", "":
		return ScaleSmall, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("bench: unknown scale %q (tiny|small|paper)", s)
	}
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Workload is one benchmark instance plus the sample size used to
// estimate its runtime distribution.
type Workload struct {
	// Benchmark is the registry name (problems.Names).
	Benchmark string
	// Size is the instance parameter.
	Size int
	// Runs is the number of sequential solves collected.
	Runs int
}

// String implements fmt.Stringer.
func (w Workload) String() string {
	return fmt.Sprintf("%s-%d", w.Benchmark, w.Size)
}

// PaperWorkloads returns the benchmark instances for the given scale,
// keyed by benchmark name, restricted to the four benchmarks of the
// paper's evaluation.
func PaperWorkloads(scale Scale) map[string]Workload {
	switch scale {
	case ScaleTiny:
		return map[string]Workload{
			"all-interval":   {"all-interval", 12, 60},
			"perfect-square": {"perfect-square", 9, 60},
			"magic-square":   {"magic-square", 6, 60},
			"costas":         {"costas", 10, 60},
		}
	case ScalePaper:
		return map[string]Workload{
			"all-interval":   {"all-interval", 700, 50},
			"perfect-square": {"perfect-square", 21, 50},
			"magic-square":   {"magic-square", 100, 50},
			"costas":         {"costas", 22, 50},
		}
	default: // ScaleSmall
		// Sample sizes are chosen so the order-statistics estimator
		// stays meaningful at the paper's 256-core points (n >> k) while
		// the whole collection finishes in minutes on one core.
		return map[string]Workload{
			"all-interval":   {"all-interval", 20, 1000},
			"perfect-square": {"perfect-square", 9, 1000},
			"magic-square":   {"magic-square", 10, 500},
			"costas":         {"costas", 14, 1000},
		}
	}
}

// paperSeqSeconds gives the order of magnitude of the paper's
// *sequential* solving times per benchmark (HA8000, paper-size
// instances): all-interval 700 and magic-square 100 run tens of minutes
// to hours, perfect-square finishes in a couple of minutes (the paper
// notes its parallel times drop under a second, where "other mechanisms
// interfere"), and Costas 22 "takes many hours" (≈256 cores x 1 minute
// under ideal speedup). The platform simulator dilates our scaled-down
// instances to these durations so launch overheads and jitter have the
// same relative weight they had in the paper — part of the hardware
// substitution documented in DESIGN.md §2.
var paperSeqSeconds = map[string]float64{
	"all-interval":   2000,
	"perfect-square": 120,
	"magic-square":   1500,
	"costas":         15000,
}

// PaperSeqSeconds returns the paper-scale sequential duration used to
// dilate simulated time for a benchmark, defaulting to 1000s for
// benchmarks outside the paper's evaluation.
func PaperSeqSeconds(benchmark string) float64 {
	if v, ok := paperSeqSeconds[benchmark]; ok {
		return v
	}
	return 1000
}

// Distribution is the measured sequential runtime distribution of a
// workload, the input to both speedup predictors.
type Distribution struct {
	Workload Workload
	// Iters is the distribution of iterations-to-solution (restarts
	// included), the machine-independent runtime.
	Iters *stats.Sample
	// Seconds is the matching wall-clock distribution on this machine.
	Seconds *stats.Sample
	// ItersPerSecond calibrates the platform simulator: measured
	// iteration throughput of one local core on this benchmark.
	ItersPerSecond float64
	// Model is the fitted shifted-exponential runtime model.
	Model stats.ShiftedExp
}

// SimItersPerSecond returns the iteration rate that makes the simulated
// sequential mean match the paper's reported duration scale for this
// benchmark (time dilation — see PaperSeqSeconds).
func (d *Distribution) SimItersPerSecond() float64 {
	return d.Iters.Mean() / PaperSeqSeconds(d.Workload.Benchmark)
}

// Collect runs w.Runs sequential solves and assembles the Distribution.
// Seeds are derived deterministically from seed. Unsolved runs (budget
// exhaustion cannot happen with unlimited restarts, but context
// cancellation can) abort the collection with an error.
func Collect(ctx context.Context, w Workload, seed uint64) (*Distribution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if w.Runs < 2 {
		return nil, fmt.Errorf("bench: workload %s needs >= 2 runs, got %d", w, w.Runs)
	}
	factory, err := problems.NewFactory(w.Benchmark, w.Size)
	if err != nil {
		return nil, err
	}
	iters := make([]int64, 0, w.Runs)
	secs := make([]float64, 0, w.Runs)
	var totalIters int64
	var totalSecs float64
	for run := 0; run < w.Runs; run++ {
		p, err := factory()
		if err != nil {
			return nil, err
		}
		opts := core.TunedOptions(p)
		opts.Seed = seed ^ (uint64(run)*0x9e3779b97f4a7c15 + 1)
		start := time.Now()
		res, err := core.Solve(ctx, p, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: %s run %d: %w", w, run, err)
		}
		if res.Interrupted {
			return nil, fmt.Errorf("bench: %s run %d interrupted: %w", w, run, ctx.Err())
		}
		if !res.Solved {
			return nil, fmt.Errorf("bench: %s run %d exhausted its budget unsolved", w, run)
		}
		el := time.Since(start).Seconds()
		iters = append(iters, res.Iterations)
		secs = append(secs, el)
		totalIters += res.Iterations
		totalSecs += el
	}
	is, err := stats.FromInts(iters)
	if err != nil {
		return nil, err
	}
	ss, err := stats.New(secs)
	if err != nil {
		return nil, err
	}
	ips := float64(totalIters) / totalSecs
	if totalSecs == 0 {
		ips = 1e9 // degenerate: instant solves
	}
	return &Distribution{
		Workload:       w,
		Iters:          is,
		Seconds:        ss,
		ItersPerSecond: ips,
		Model:          stats.FitShiftedExp(is),
	}, nil
}

// CollectVirtualSpeedup cross-validates the order-statistics predictor
// with actual multi-walk executions: it runs reps RunVirtual jobs at k
// walkers and returns the mean winner iterations. Used by the harness's
// validation table and by tests.
func CollectVirtualSpeedup(ctx context.Context, w Workload, k, reps int, seed uint64) (meanWinnerIters float64, err error) {
	return collectVirtual(ctx, w, k, reps, seed, nil)
}

// CollectVirtualPortfolio is CollectVirtualSpeedup for heterogeneous
// runs: the named strategies are layered over the benchmark's tuned
// engine options with weight 1 each, so the mean winner iterations of a
// mixed-strategy portfolio can be compared against the homogeneous
// baseline at the same walker count (see DESIGN.md §5). Every strategy
// needs at least one walker, so len(strategies) must not exceed k;
// walker shares are exactly equal when k is a multiple of the strategy
// count, otherwise the round-robin tail favors the earlier strategies.
func CollectVirtualPortfolio(ctx context.Context, w Workload, k, reps int, seed uint64, strategies []string) (meanWinnerIters float64, err error) {
	if len(strategies) == 0 {
		return 0, fmt.Errorf("bench: portfolio needs at least one strategy")
	}
	if len(strategies) > k {
		return 0, fmt.Errorf("bench: portfolio of %d strategies needs at least that many walkers, got %d", len(strategies), k)
	}
	return collectVirtual(ctx, w, k, reps, seed, strategies)
}

// collectVirtual runs reps RunVirtual jobs at k walkers, homogeneous
// when strategies is empty, and averages the winner iterations.
func collectVirtual(ctx context.Context, w Workload, k, reps int, seed uint64, strategies []string) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	factory, err := problems.NewFactory(w.Benchmark, w.Size)
	if err != nil {
		return 0, err
	}
	probe, err := factory()
	if err != nil {
		return 0, err
	}
	engine := core.TunedOptions(probe)
	var portfolio []multiwalk.PortfolioEntry
	for _, name := range strategies {
		eng := engine
		eng.Strategy = name
		portfolio = append(portfolio, multiwalk.PortfolioEntry{Weight: 1, Engine: eng})
	}
	var sum float64
	for rep := 0; rep < reps; rep++ {
		res, err := multiwalk.RunVirtual(ctx, factory, multiwalk.Options{
			Walkers:   k,
			Seed:      seed + uint64(rep)*7919,
			Engine:    engine,
			Portfolio: portfolio,
		})
		if err != nil {
			return 0, err
		}
		if !res.Solved {
			return 0, fmt.Errorf("bench: virtual %d-walk of %s unsolved", k, w)
		}
		sum += float64(res.WinnerIterations)
	}
	return sum / float64(reps), nil
}
