package bench

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/multiwalk"
)

// testFleet stands up n in-process dist workers and a coordinator.
func testFleet(t *testing.T, n, slotsEach int) *dist.Coordinator {
	t.Helper()
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		wk := dist.NewWorker(dist.WorkerConfig{Slots: slotsEach})
		srv := httptest.NewServer(wk.Handler())
		t.Cleanup(func() { srv.Close(); wk.Close() })
		urls = append(urls, srv.URL)
	}
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{Workers: urls, BoardSync: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord
}

func TestCollectExchangeDist(t *testing.T) {
	coord := testFleet(t, 2, 1)
	w := Workload{Benchmark: "costas", Size: 9}
	x := multiwalk.ExchangeOptions{Enabled: true, Period: 128, AdoptFactor: 1.5}
	solved, meanIters, meanAdoptions, err := CollectExchangeDist(context.Background(), coord, w, 2, 2, 1234, x)
	if err != nil {
		t.Fatal(err)
	}
	if solved != 2 {
		t.Fatalf("solved %d of 2 exchange reps on costas 9", solved)
	}
	if meanIters <= 0 {
		t.Fatalf("mean winner iterations = %v", meanIters)
	}
	if meanAdoptions < 0 {
		t.Fatalf("mean adoptions = %v", meanAdoptions)
	}

	// Misuse guards: nil coordinator, disabled exchange.
	if _, _, _, err := CollectExchangeDist(context.Background(), nil, w, 2, 1, 1, x); err == nil {
		t.Fatal("nil coordinator accepted")
	}
	if _, _, _, err := CollectExchangeDist(context.Background(), coord, w, 2, 1, 1, multiwalk.ExchangeOptions{}); err == nil {
		t.Fatal("disabled exchange accepted")
	}
}
