package bench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
)

// unsolvable shifts a problem's global cost up by one, uniformly. Every
// cost comparison the engine makes is relative, so the search dynamics
// (and the hot path exercised: bulk move evaluation, delta error
// maintenance, resets) are identical to the real problem's — but cost 0
// is unreachable, so a bounded run executes its full iteration budget.
// The allocation assertions need that: a run that solves early would
// trivially report zero marginal allocations without covering the loop.
type unsolvable struct {
	p core.Problem
}

func (u unsolvable) Size() int                           { return u.p.Size() }
func (u unsolvable) Cost(cfg []int) int                  { return u.p.Cost(cfg) + 1 }
func (u unsolvable) CostOnVariable(cfg []int, i int) int { return u.p.CostOnVariable(cfg, i) }
func (u unsolvable) CostIfSwap(cfg []int, cost, i, j int) int {
	return u.p.CostIfSwap(cfg, cost-1, i, j) + 1
}

func (u unsolvable) ExecutedSwap(cfg []int, i, j int) {
	if sw, ok := u.p.(core.SwapExecutor); ok {
		sw.ExecutedSwap(cfg, i, j)
	}
}

// unsolvableFast additionally forwards the bulk-evaluation and
// delta-maintained-error fast paths, so the engine drives the wrapped
// problem through exactly the interfaces it would use on the real one.
type unsolvableFast struct {
	unsolvable
	me  core.MoveEvaluator
	mev core.MaintainedErrorVector
}

func (u unsolvableFast) CostsIfSwapAll(cfg []int, cost, i int, out []int) {
	u.me.CostsIfSwapAll(cfg, cost-1, i, out)
	for k := range out {
		out[k]++
	}
}

func (u unsolvableFast) LiveErrors(cfg []int) []int { return u.mev.LiveErrors(cfg) }

func (u unsolvableFast) ErrorsOnVariables(cfg []int, out []int) {
	u.mev.ErrorsOnVariables(cfg, out)
}

// unsolvableFD is the finite-domain counterpart: it forwards the FD
// encoding interfaces (domains, assign moves, batched assign rows) so
// the engine keeps running the assign loop — hiding FDProblem would
// silently demote the benchmark to the permutation path, which feeds
// out-of-domain values to its cost function.
type unsolvableFD struct {
	unsolvable
	fd  core.FDProblem
	ae  core.AssignEvaluator
	ax  core.AssignExecutor
	mev core.MaintainedErrorVector
}

func (u unsolvableFD) Domain(i int) []int { return u.fd.Domain(i) }

func (u unsolvableFD) CostIfAssign(cfg []int, cost, i, v int) int {
	return u.fd.CostIfAssign(cfg, cost-1, i, v) + 1
}

func (u unsolvableFD) CostsIfAssignAll(cfg []int, cost, i int, out []int) {
	u.ae.CostsIfAssignAll(cfg, cost-1, i, out)
	for k := range out {
		out[k]++
	}
}

func (u unsolvableFD) ExecutedAssign(cfg []int, i, old int) { u.ax.ExecutedAssign(cfg, i, old) }

func (u unsolvableFD) LiveErrors(cfg []int) []int { return u.mev.LiveErrors(cfg) }

func (u unsolvableFD) ErrorsOnVariables(cfg []int, out []int) {
	u.mev.ErrorsOnVariables(cfg, out)
}

// wrapUnsolvable picks the wrapper matching p's capabilities: the fast
// wrappers only advertise interfaces the wrapped problem actually
// implements, so a future benchmark without the fast paths exercises
// the engine's per-call fallback instead of panicking on a type
// assertion.
func wrapUnsolvable(p core.Problem) core.Problem {
	if fd, ok := p.(core.FDProblem); ok {
		ae, okA := p.(core.AssignEvaluator)
		ax, okX := p.(core.AssignExecutor)
		mev, okE := p.(core.MaintainedErrorVector)
		if okA && okX && okE {
			return unsolvableFD{unsolvable{p}, fd, ae, ax, mev}
		}
	}
	me, okM := p.(core.MoveEvaluator)
	mev, okE := p.(core.MaintainedErrorVector)
	if okM && okE {
		return unsolvableFast{unsolvable{p}, me, mev}
	}
	return unsolvable{p}
}

// TestHotLoopZeroAllocs pins the engine's allocation discipline: once a
// run is set up, iterating must allocate nothing — growing a run's
// iteration budget 10x may not grow its allocation count at all. Every
// benchmark is driven through its real tuned configuration (bulk move
// evaluation, delta-maintained errors, partial resets included); the
// cost-shifted unsolvable wrapper keeps the run from ending early.
func TestHotLoopZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is redundant under -short")
	}
	for _, name := range problems.Names() {
		t.Run(name, func(t *testing.T) {
			p, err := problems.New(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			run := func(iters int64) float64 {
				return testing.AllocsPerRun(5, func() {
					opts := core.TunedOptions(p)
					opts.Seed = 12345
					opts.MaxIterations = iters
					opts.MaxRuns = 1
					res, err := core.Solve(context.Background(), wrapUnsolvable(p), opts)
					if err != nil {
						t.Fatal(err)
					}
					if res.Solved || res.Iterations != iters {
						t.Fatalf("unsolvable run ended early: %v", res)
					}
				})
			}
			short, long := run(2_000), run(20_000)
			if marginal := long - short; marginal > 0.5 {
				t.Errorf("18k extra iterations allocated %.1f extra objects (%.1f vs %.1f); the hot loop must not allocate",
					marginal, long, short)
			}
		})
	}
}

// TestCollectIterRates smoke-tests the measurement harness end to end
// at a tiny budget: every benchmark measured, rates positive, JSON
// round-trip and regression comparison wired.
func TestCollectIterRates(t *testing.T) {
	report, err := CollectIterRates(context.Background(), 2012, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != len(problems.Names()) {
		t.Fatalf("measured %d benchmarks, want %d", len(report.Results), len(problems.Names()))
	}
	for name, r := range report.Results {
		if r.Iterations < 2_000 || r.ItersPerSec <= 0 {
			t.Errorf("%s: implausible measurement %+v", name, r)
		}
	}
	path := t.TempDir() + "/rates.json"
	if err := report.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIterRateReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Results) != len(report.Results) {
		t.Fatalf("round-trip lost results: %d vs %d", len(loaded.Results), len(report.Results))
	}
	if regs := CompareIterRates(report, loaded, 0.25); len(regs) != 0 {
		t.Fatalf("self-comparison reported regressions: %v", regs)
	}
	// A baseline 10x above the measurement must trip the gate.
	inflated := *loaded
	inflated.Results = map[string]IterRate{}
	for name, r := range loaded.Results {
		r.ItersPerSec *= 10
		inflated.Results[name] = r
	}
	regs := CompareIterRates(report, &inflated, 0.25)
	if len(regs) != len(report.Results) {
		t.Fatalf("inflated baseline tripped %d of %d regressions: %v", len(regs), len(report.Results), regs)
	}
	// The relative comparator cancels machine speed: a uniformly 10x
	// faster baseline is a clean pass (median-normalized), while one
	// benchmark singled out 10x above the rest trips exactly one
	// regression.
	if regs, median := CompareIterRatesRelative(report, &inflated, 0.25); len(regs) != 0 {
		t.Fatalf("uniformly scaled baseline tripped relative regressions (median %.2f): %v", median, regs)
	}
	skewed := *loaded
	skewed.Results = map[string]IterRate{}
	for name, r := range loaded.Results {
		if name == "costas" {
			r.ItersPerSec *= 10
		}
		skewed.Results[name] = r
	}
	if regs, _ := CompareIterRatesRelative(report, &skewed, 0.25); len(regs) != 1 || !strings.Contains(regs[0], "costas") {
		t.Fatalf("skewed baseline should trip exactly the costas relative regression, got %v", regs)
	}

	var md strings.Builder
	if err := report.RenderMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| costas |") {
		t.Fatalf("markdown table missing costas row:\n%s", md.String())
	}
}

// BenchmarkIterationRate reports the engine's per-iteration cost for
// every benchmark at its default size (ns/op = one engine iteration;
// allocs/op must stay ~0). This is the `go test -bench` view of the
// numbers committed in BENCH_iter_rate.json.
func BenchmarkIterationRate(b *testing.B) {
	for _, name := range problems.Names() {
		b.Run(name, func(b *testing.B) {
			p, err := problems.New(name, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var total int64
			for seed := uint64(0); total < int64(b.N); seed++ {
				opts := core.TunedOptions(p)
				opts.Seed = 2012 + seed
				remaining := int64(b.N) - total
				opts.Monitor = func(iter int64, cost int, cfg []int) core.Directive {
					if iter >= remaining {
						return core.Directive{Stop: true}
					}
					return core.Directive{}
				}
				res, err := core.Solve(context.Background(), p, opts)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Iterations
				if res.Iterations == 0 {
					b.Fatal("engine made no progress")
				}
			}
		})
	}
}
