package bench

import (
	"context"
	"fmt"
)

// ExtendedWorkloads returns laptop-scale instances of the benchmarks in
// the original Adaptive Search distribution that the paper does not
// plot (queens, alpha, langford, partition). The extended table gives
// their runtime diagnostics and multi-walk predictions, rounding out
// the suite for downstream users.
func ExtendedWorkloads() []Workload {
	return []Workload{
		{Benchmark: "queens", Size: 128, Runs: 200},
		{Benchmark: "alpha", Size: 26, Runs: 100},
		{Benchmark: "langford", Size: 24, Runs: 200},
		{Benchmark: "partition", Size: 64, Runs: 100},
	}
}

// ExtendedTable is EXP-X1: distribution diagnostics and multi-walk
// speedup predictions for the non-paper benchmarks of the C
// distribution.
func ExtendedTable(ctx context.Context, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "extended",
		Title:  "extended benchmark suite: runtime diagnostics and multi-walk predictions",
		Header: []string{"benchmark", "runs", "mean-iters", "CV", "QQ-exp-R2", "speedup@16", "speedup@64", "speedup@256"},
	}
	for _, w := range ExtendedWorkloads() {
		d, err := Collect(ctx, w, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: extended %s: %w", w, err)
		}
		sp := func(k int) string {
			v, err := d.Iters.Speedup(k)
			if err != nil {
				return "-"
			}
			return fmt.Sprintf("%.1f", v)
		}
		t.Rows = append(t.Rows, []string{
			w.String(),
			fmt.Sprintf("%d", d.Iters.N()),
			fmt.Sprintf("%.0f", d.Iters.Mean()),
			fmt.Sprintf("%.2f", d.Iters.CV()),
			fmt.Sprintf("%.3f", d.Iters.QQExponentialR2()),
			sp(16), sp(64), sp(256),
		})
	}
	t.Notes = append(t.Notes,
		"speedups are order-statistics predictions E[T]/E[min_k] from the measured distributions",
		"queens is nearly deterministic for Adaptive Search (CV ~ 0): multi-walk gains little there — the interesting contrast with the paper's stochastic benchmarks",
	)
	return t, nil
}
