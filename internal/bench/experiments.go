package bench

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
	"repro/internal/stats"
)

// CoreCounts is the ladder of core counts of the paper's Figs. 1-2.
var CoreCounts = []int{1, 16, 32, 64, 128, 256}

// CostasCoreCounts is the ladder of Fig. 3 (speedups w.r.t. 32 cores).
var CostasCoreCounts = []int{32, 64, 128, 256}

// simReps is the number of simulated jobs per (benchmark, platform,
// core-count) point.
const simReps = 400

// Suite bundles everything the experiment commands need: collected
// distributions plus derived artifacts, so figures can share the
// expensive collection step.
type Suite struct {
	Scale Scale
	Seed  uint64
	Dists map[string]*Distribution
}

// NewSuite collects the runtime distributions of the paper's four
// benchmarks at the given scale. This is the expensive step — everything
// downstream is simulation and estimation.
func NewSuite(ctx context.Context, scale Scale, seed uint64) (*Suite, error) {
	s := &Suite{Scale: scale, Seed: seed, Dists: map[string]*Distribution{}}
	for name, w := range PaperWorkloads(scale) {
		d, err := Collect(ctx, w, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: collecting %s: %w", w, err)
		}
		s.Dists[name] = d
	}
	return s, nil
}

// csplibBenchmarks are the three CSPLib benchmarks of Figs. 1-2, in
// presentation order.
var csplibBenchmarks = []string{"all-interval", "perfect-square", "magic-square"}

// platformFor builds the platform model with the benchmark's
// time-dilated iteration rate: simulated jobs run at the paper's
// duration scale, so platform overheads keep their original relative
// weight (DESIGN.md §2).
func platformFor(base cluster.Platform, d *Distribution) cluster.Platform {
	base.IterationsPerSecond = d.SimItersPerSecond()
	return base
}

// speedupFigure builds one speedup-vs-cores figure (Fig. 1 or Fig. 2).
func (s *Suite) speedupFigure(id, title string, platform cluster.Platform, benchmarks []string, ks []int) (*Table, map[string][]float64, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"benchmark", "cores", "wall(s)", "speedup", "orderstat-pred", "model-pred"},
	}
	series := map[string][]float64{}
	for _, name := range benchmarks {
		d, ok := s.Dists[name]
		if !ok {
			return nil, nil, fmt.Errorf("bench: no distribution for %s", name)
		}
		src, err := cluster.NewEmpiricalSource(d.Iters)
		if err != nil {
			return nil, nil, err
		}
		sim, err := cluster.NewSim(platformFor(platform, d), src)
		if err != nil {
			return nil, nil, err
		}
		curve, err := sim.SpeedupCurve(ks, simReps, s.Seed+uint64(len(name)))
		if err != nil {
			return nil, nil, err
		}
		for i, pt := range curve.Points {
			pred, err := d.Iters.Speedup(pt.Cores)
			if err != nil {
				return nil, nil, err
			}
			model := d.Model.Speedup(pt.Cores)
			t.Rows = append(t.Rows, []string{
				d.Workload.String(),
				fmt.Sprintf("%d", pt.Cores),
				fmt.Sprintf("%.3f", pt.MeanWall),
				fmt.Sprintf("%.1f", pt.Speedup),
				fmt.Sprintf("%.1f", pred),
				fmt.Sprintf("%.1f", model),
			})
			series[name] = append(series[name], pt.Speedup)
			_ = i
		}
	}
	t.Notes = append(t.Notes,
		"speedup: simulated multi-walk jobs on the platform model, relative to the 1-core mean",
		"orderstat-pred: hardware-free E[T]/E[min_k] from the measured runtime distribution",
		"model-pred: fitted shifted-exponential model (saturation = mean/shift)",
		"simulated durations are dilated to the paper's sequential time scale (DESIGN.md §2)",
	)
	return t, series, nil
}

// Fig1 reproduces Figure 1: speedups on HA8000 for the CSPLib
// benchmarks.
func (s *Suite) Fig1() (*Table, map[string][]float64, error) {
	t, series, err := s.speedupFigure("fig1", "speedups on HA8000 (paper Fig. 1)", cluster.HA8000(), csplibBenchmarks, CoreCounts)
	if err != nil {
		return nil, nil, err
	}
	t.Notes = append(t.Notes, "paper shape: ~30x at 64 cores, ~40x at 128, >50x at 256, flattening away from linear")
	return t, series, nil
}

// Fig2 reproduces Figure 2: speedups on Grid'5000 (Suno).
func (s *Suite) Fig2() (*Table, map[string][]float64, error) {
	t, series, err := s.speedupFigure("fig2", "speedups on Grid'5000 Suno (paper Fig. 2)", cluster.Grid5000Suno(), csplibBenchmarks, CoreCounts)
	if err != nil {
		return nil, nil, err
	}
	t.Notes = append(t.Notes,
		"paper shape: nearly identical to HA8000; perfect-square diverges at 128-256 cores when runtimes drop under a second",
	)
	return t, series, nil
}

// Fig3 reproduces Figure 3: Costas array speedups w.r.t. 32 cores on a
// log-log scale, with the ideal line and the fitted slope.
func (s *Suite) Fig3() (*Table, error) {
	d, ok := s.Dists["costas"]
	if !ok {
		return nil, fmt.Errorf("bench: no costas distribution")
	}
	// Use the fitted shifted-exponential model as the simulation source:
	// at 256 cores E[min_k] drops below the resolution of any feasible
	// empirical sample (the estimator saturates at the sample minimum),
	// while the fit is justified by the measured memorylessness (CV ~ 1,
	// QQ-exponential R^2 ~ 1 — reported in the table notes).
	src := cluster.ModelSource{Model: d.Model}
	sim, err := cluster.NewSim(platformFor(cluster.HA8000(), d), src)
	if err != nil {
		return nil, err
	}
	curve, err := sim.SpeedupCurve(CostasCoreCounts, simReps, s.Seed+3)
	if err != nil {
		return nil, err
	}
	base := curve.Points[0] // 32 cores is the paper's reference
	t := &Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Costas (%s) speedup w.r.t. %d cores, log-log (paper Fig. 3)", d.Workload, base.Cores),
		Header: []string{"cores", "wall(s)", "speedup-vs-32", "ideal", "orderstat-pred"},
	}
	xs := make([]float64, 0, len(curve.Points))
	ys := make([]float64, 0, len(curve.Points))
	pred32, err := d.Iters.ExpectedMin(base.Cores)
	if err != nil {
		return nil, err
	}
	for _, pt := range curve.Points {
		rel := base.MeanWall / pt.MeanWall
		ideal := float64(pt.Cores) / float64(base.Cores)
		predK, err := d.Iters.ExpectedMin(pt.Cores)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.Cores),
			fmt.Sprintf("%.3f", pt.MeanWall),
			fmt.Sprintf("%.2f", rel),
			fmt.Sprintf("%.2f", ideal),
			fmt.Sprintf("%.2f", pred32/predK),
		})
		xs = append(xs, float64(pt.Cores))
		ys = append(ys, rel)
	}
	slope, _, err := stats.LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("log-log slope = %.3f (ideal linear speedup = 1.0; paper reports ideal)", slope),
		fmt.Sprintf("runtime distribution: CV = %.2f (exponential = 1.0), QQ-exp R^2 = %.3f — justifies the fitted-tail simulation source", d.Iters.CV(), d.Iters.QQExponentialR2()),
		"orderstat-pred saturates at the empirical sample's resolution for k >> n/10; the simulation uses the fitted tail",
	)
	return t, nil
}

// SummaryTable reproduces the paper's headline claims (§2-§3 text):
// CSPLib speedups of ~30/~40/>50 at 64/128/256 cores and ideal Costas
// speedup.
func (s *Suite) SummaryTable() (*Table, error) {
	t := &Table{
		ID:     "summary",
		Title:  "headline claims: paper vs this reproduction",
		Header: []string{"claim", "paper", "measured"},
	}
	claims := []struct {
		k     int
		paper string
	}{{64, "about 30"}, {128, "about 40"}, {256, "more than 50"}}
	for _, c := range claims {
		sum := 0.0
		for _, name := range csplibBenchmarks {
			sp, err := s.Dists[name].Iters.Speedup(c.k)
			if err != nil {
				return nil, err
			}
			sum += sp
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("CSPLib mean speedup @ %d cores", c.k),
			c.paper,
			fmt.Sprintf("%.1f", sum/float64(len(csplibBenchmarks))),
		})
	}
	d := s.Dists["costas"]
	xs := make([]float64, 0, len(CostasCoreCounts))
	ys := make([]float64, 0, len(CostasCoreCounts))
	for _, k := range CostasCoreCounts {
		xs = append(xs, float64(k))
		ys = append(ys, d.Model.Speedup(k)/d.Model.Speedup(32))
	}
	slope, _, err := stats.LogLogSlope(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Costas log-log slope (32..256 cores)", "1.0 (ideal)", fmt.Sprintf("%.3f", slope)})
	t.Rows = append(t.Rows, []string{"Costas runtime CV (exponential = 1)", "memoryless", fmt.Sprintf("%.2f", d.Iters.CV())})
	t.Notes = append(t.Notes,
		"measured speedups use the order-statistics estimator on this machine's runtime distributions",
		"instance sizes are scaled down from the paper's (see EXPERIMENTS.md); shapes, not absolute numbers, are the claim",
	)
	return t, nil
}

// TimesTable reproduces the EvoCOP'11-style execution-time tables
// behind Figs. 1-2: per benchmark and platform, the mean wall time and
// speedup at every core count.
func (s *Suite) TimesTable() (*Table, error) {
	t := &Table{
		ID:     "times",
		Title:  "execution times by platform (EvoCOP'11-style table behind Figs. 1-2)",
		Header: []string{"benchmark", "platform", "cores", "wall(s)", "speedup"},
	}
	platforms := []cluster.Platform{cluster.HA8000(), cluster.Grid5000Suno(), cluster.Grid5000Helios()}
	names := append([]string{}, csplibBenchmarks...)
	names = append(names, "costas")
	for _, name := range names {
		d := s.Dists[name]
		src, err := cluster.NewEmpiricalSource(d.Iters)
		if err != nil {
			return nil, err
		}
		for _, pf := range platforms {
			ks := make([]int, 0, len(CoreCounts))
			for _, k := range CoreCounts {
				if k <= pf.Cores() {
					ks = append(ks, k)
				}
			}
			sim, err := cluster.NewSim(platformFor(pf, d), src)
			if err != nil {
				return nil, err
			}
			curve, err := sim.SpeedupCurve(ks, simReps, s.Seed+uint64(pf.Cores()))
			if err != nil {
				return nil, err
			}
			for _, pt := range curve.Points {
				t.Rows = append(t.Rows, []string{
					d.Workload.String(), pf.Name,
					fmt.Sprintf("%d", pt.Cores),
					fmt.Sprintf("%.3f", pt.MeanWall),
					fmt.Sprintf("%.1f", pt.Speedup),
				})
			}
		}
	}
	t.Notes = append(t.Notes, "Helios capped at its 224 cores, as in the paper")
	return t, nil
}

// DistributionTable is EXP-D1: the runtime-distribution diagnostics
// explaining the two speedup regimes.
func (s *Suite) DistributionTable() (*Table, error) {
	t := &Table{
		ID:     "distrib",
		Title:  "sequential runtime distributions (the mechanism behind Figs. 1-3)",
		Header: []string{"benchmark", "runs", "mean-iters", "median", "CV", "QQ-exp-R2", "fit-shift", "fit-scale", "saturation"},
	}
	names := make([]string, 0, len(s.Dists))
	for n := range s.Dists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.Dists[name]
		sat := d.Model.SaturationSpeedup()
		satStr := "inf (ideal)"
		if sat < 1e6 {
			satStr = fmt.Sprintf("%.1f", sat)
		}
		t.Rows = append(t.Rows, []string{
			d.Workload.String(),
			fmt.Sprintf("%d", d.Iters.N()),
			fmt.Sprintf("%.0f", d.Iters.Mean()),
			fmt.Sprintf("%.0f", d.Iters.Median()),
			fmt.Sprintf("%.2f", d.Iters.CV()),
			fmt.Sprintf("%.3f", d.Iters.QQExponentialR2()),
			fmt.Sprintf("%.0f", d.Model.Shift),
			fmt.Sprintf("%.0f", d.Model.Scale),
			satStr,
		})
	}
	t.Notes = append(t.Notes,
		"CV ~ 1 and high QQ-R2: memoryless runtimes, multi-walk speedup stays linear (Costas/Fig. 3)",
		"CV < 1 with a positive fitted shift: a runtime floor saturates the speedup (Figs. 1-2 flattening)",
	)
	return t, nil
}

// ValidationTable cross-checks the order-statistics predictor against
// real RunVirtual executions at small k — the end-to-end consistency
// check tying the estimator to the actual parallel engine.
func (s *Suite) ValidationTable(ctx context.Context, ks []int, reps int) (*Table, error) {
	t := &Table{
		ID:     "validate",
		Title:  "order-statistics predictor vs real multi-walk runs (winner iterations)",
		Header: []string{"benchmark", "walkers", "E[min_k] predicted", "measured mean", "ratio"},
	}
	names := make([]string, 0, len(s.Dists))
	for n := range s.Dists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.Dists[name]
		for _, k := range ks {
			pred, err := d.Iters.ExpectedMin(k)
			if err != nil {
				return nil, err
			}
			meas, err := CollectVirtualSpeedup(ctx, d.Workload, k, reps, s.Seed+uint64(k))
			if err != nil {
				return nil, err
			}
			ratio := meas / pred
			t.Rows = append(t.Rows, []string{
				d.Workload.String(),
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%.0f", pred),
				fmt.Sprintf("%.0f", meas),
				fmt.Sprintf("%.2f", ratio),
			})
		}
	}
	t.Notes = append(t.Notes, "ratios near 1.0 validate using the estimator for core counts beyond this machine")
	return t, nil
}

// AblationComm is EXP-A1: dependent (communicating) vs independent
// multi-walk, the paper's future-work question.
func AblationComm(ctx context.Context, w Workload, ks []int, reps int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "ablation-comm",
		Title:  fmt.Sprintf("independent vs dependent multi-walk on %s (paper §3 future work)", w),
		Header: []string{"walkers", "scheme", "solved", "mean winner iters", "mean total iters"},
	}
	factory, err := problems.NewFactory(w.Benchmark, w.Size)
	if err != nil {
		return nil, err
	}
	probe, err := factory()
	if err != nil {
		return nil, err
	}
	engine := core.TunedOptions(probe)
	for _, k := range ks {
		for _, scheme := range []string{"independent", "dependent"} {
			var winSum, totSum float64
			solved := 0
			for rep := 0; rep < reps; rep++ {
				opts := multiwalk.Options{
					Walkers: k,
					Seed:    seed + uint64(rep)*104729 + uint64(k),
					Engine:  engine,
				}
				if scheme == "dependent" {
					opts.Exchange = multiwalk.ExchangeOptions{
						Enabled:     true,
						Period:      512,
						AdoptFactor: 1.5,
					}
				}
				res, err := multiwalk.Run(ctx, factory, opts)
				if err != nil {
					return nil, err
				}
				if res.Solved {
					solved++
					winSum += float64(res.WinnerIterations)
				}
				totSum += float64(res.TotalIterations)
			}
			row := []string{
				fmt.Sprintf("%d", k), scheme,
				fmt.Sprintf("%d/%d", solved, reps),
				"-", fmt.Sprintf("%.0f", totSum/float64(reps)),
			}
			if solved > 0 {
				row[3] = fmt.Sprintf("%.0f", winSum/float64(solved))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"the paper conjectures communication struggles to beat independent walks; lower winner iterations = better",
		"dependent scheme: best-cost board, elite adoption when lagging 1.5x, perturbation on adoption",
	)
	return t, nil
}

// AblationKnobs is EXP-A2: engine parameter sensitivity on one
// benchmark, covering the design choices DESIGN.md calls out (tabu
// tenure, reset fraction, plateau escape probability, move selection).
func AblationKnobs(ctx context.Context, w Workload, runsPer int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "ablation-knobs",
		Title:  fmt.Sprintf("engine knob ablation on %s (mean iterations to solve)", w),
		Header: []string{"variant", "solved", "mean iters", "mean resets"},
	}
	factory, err := problems.NewFactory(w.Benchmark, w.Size)
	if err != nil {
		return nil, err
	}
	probe, err := factory()
	if err != nil {
		return nil, err
	}
	base := core.TunedOptions(probe)
	variants := []struct {
		name string
		mod  func(o *core.Options)
	}{
		{"tuned (baseline)", func(o *core.Options) {}},
		{"freeze=1", func(o *core.Options) { o.FreezeLocMin = 1 }},
		{"freeze=10", func(o *core.Options) { o.FreezeLocMin = 10 }},
		{"no-plateau-escape", func(o *core.Options) { o.ProbSelectLocMin = 0 }},
		{"plateau-escape=0.5", func(o *core.Options) { o.ProbSelectLocMin = 0.5 }},
		{"reset-frac=0.02", func(o *core.Options) { o.ResetFraction = 0.02 }},
		{"reset-frac=0.5", func(o *core.Options) { o.ResetFraction = 0.5 }},
		{"first-best", func(o *core.Options) { o.FirstBest = true }},
	}
	for _, v := range variants {
		opts := base
		v.mod(&opts)
		var iterSum, resetSum float64
		solved := 0
		for run := 0; run < runsPer; run++ {
			p, err := factory()
			if err != nil {
				return nil, err
			}
			o := opts
			o.Seed = seed + uint64(run)*6151
			res, err := core.Solve(ctx, p, o)
			if err != nil {
				return nil, err
			}
			if res.Solved {
				solved++
				iterSum += float64(res.Iterations)
				resetSum += float64(res.Resets)
			}
		}
		row := []string{v.name, fmt.Sprintf("%d/%d", solved, runsPer), "-", "-"}
		if solved > 0 {
			row[2] = fmt.Sprintf("%.0f", iterSum/float64(solved))
			row[3] = fmt.Sprintf("%.0f", resetSum/float64(solved))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
