package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// CollectVirtualSpeedupDist is CollectVirtualSpeedup executed on a
// worker fleet: each rep's k-walker virtual job is sharded over the
// coordinator's workers instead of running in this process. Because
// walker identity is global (multiwalk.Shard), the reported mean is
// bit-for-bit the one the local collection computes for the same seed
// matrix — the fleet only buys wall-clock, never different numbers —
// so distributed collections slot into the §2 analysis unchanged.
func CollectVirtualSpeedupDist(ctx context.Context, c *dist.Coordinator, w Workload, k, reps int, seed uint64) (meanWinnerIters float64, err error) {
	return collectVirtualDist(ctx, c, w, k, reps, seed, nil)
}

// CollectVirtualPortfolioDist is CollectVirtualPortfolio on a worker
// fleet; see CollectVirtualSpeedupDist for the determinism contract.
func CollectVirtualPortfolioDist(ctx context.Context, c *dist.Coordinator, w Workload, k, reps int, seed uint64, strategies []string) (meanWinnerIters float64, err error) {
	if len(strategies) == 0 {
		return 0, fmt.Errorf("bench: portfolio needs at least one strategy")
	}
	if len(strategies) > k {
		return 0, fmt.Errorf("bench: portfolio of %d strategies needs at least that many walkers, got %d", len(strategies), k)
	}
	return collectVirtualDist(ctx, c, w, k, reps, seed, strategies)
}

// CollectExchangeDist characterizes the dependent (Exchange) scheme on
// a worker fleet: reps wall-clock k-walker jobs run with cross-worker
// cooperation through the coordinator-hosted board, and the collection
// reports how many solved, the mean winner iterations over the solved
// reps, and the mean adoption count per rep (the scheme's
// communication activity). Unlike the virtual collectors there is no
// bit-for-bit contract — dependent runs are timing-dependent by nature
// (DESIGN.md §10) — so these numbers describe the scheme's behavior on
// this fleet rather than reproduce machine-independent figures.
func CollectExchangeDist(ctx context.Context, c *dist.Coordinator, w Workload, k, reps int, seed uint64, x multiwalk.ExchangeOptions) (solved int, meanWinnerIters, meanAdoptions float64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil {
		return 0, 0, 0, fmt.Errorf("bench: nil coordinator")
	}
	if !x.Enabled {
		return 0, 0, 0, fmt.Errorf("bench: CollectExchangeDist needs Exchange.Enabled (use CollectVirtualSpeedupDist for independent runs)")
	}
	if k < 1 || reps < 1 {
		return 0, 0, 0, fmt.Errorf("bench: CollectExchangeDist needs k >= 1 and reps >= 1, got k=%d reps=%d", k, reps)
	}
	probe, err := problems.New(w.Benchmark, w.Size)
	if err != nil {
		return 0, 0, 0, err
	}
	engine := core.TunedOptions(probe)
	var winSum, adoptSum float64
	for rep := 0; rep < reps; rep++ {
		res, err := c.Run(ctx, dist.JobSpec{
			Problem:  w.Benchmark,
			Size:     w.Size,
			Walkers:  k,
			Seed:     seed + uint64(rep)*7919,
			Engine:   engine,
			Exchange: x,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		if res.Truncated {
			return 0, 0, 0, fmt.Errorf("bench: distributed exchange %d-walk of %s truncated (worker lost or cancelled)", k, w)
		}
		if res.Solved {
			solved++
			winSum += float64(res.WinnerIterations)
		}
		adoptSum += float64(res.Adoptions)
	}
	if solved > 0 {
		meanWinnerIters = winSum / float64(solved)
	}
	return solved, meanWinnerIters, adoptSum / float64(reps), nil
}

// collectVirtualDist mirrors collectVirtual with the coordinator as
// the executor. The job construction — tuned engine options, weight-1
// portfolio entries, the seed schedule — is kept identical so the two
// paths stay interchangeable.
func collectVirtualDist(ctx context.Context, c *dist.Coordinator, w Workload, k, reps int, seed uint64, strategies []string) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil {
		return 0, fmt.Errorf("bench: nil coordinator")
	}
	probe, err := problems.New(w.Benchmark, w.Size)
	if err != nil {
		return 0, err
	}
	engine := core.TunedOptions(probe)
	var portfolio []multiwalk.PortfolioEntry
	for _, name := range strategies {
		eng := engine
		eng.Strategy = name
		portfolio = append(portfolio, multiwalk.PortfolioEntry{Weight: 1, Engine: eng})
	}
	var sum float64
	for rep := 0; rep < reps; rep++ {
		res, err := c.RunVirtual(ctx, dist.JobSpec{
			Problem:   w.Benchmark,
			Size:      w.Size,
			Walkers:   k,
			Seed:      seed + uint64(rep)*7919,
			Engine:    engine,
			Portfolio: portfolio,
		})
		if err != nil {
			return 0, err
		}
		if res.Truncated {
			return 0, fmt.Errorf("bench: distributed virtual %d-walk of %s truncated (worker lost or cancelled)", k, w)
		}
		if !res.Solved {
			return 0, fmt.Errorf("bench: virtual %d-walk of %s unsolved", k, w)
		}
		sum += float64(res.WinnerIterations)
	}
	return sum / float64(reps), nil
}
