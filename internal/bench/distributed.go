package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// CollectVirtualSpeedupDist is CollectVirtualSpeedup executed on a
// worker fleet: each rep's k-walker virtual job is sharded over the
// coordinator's workers instead of running in this process. Because
// walker identity is global (multiwalk.Shard), the reported mean is
// bit-for-bit the one the local collection computes for the same seed
// matrix — the fleet only buys wall-clock, never different numbers —
// so distributed collections slot into the §2 analysis unchanged.
func CollectVirtualSpeedupDist(ctx context.Context, c *dist.Coordinator, w Workload, k, reps int, seed uint64) (meanWinnerIters float64, err error) {
	return collectVirtualDist(ctx, c, w, k, reps, seed, nil)
}

// CollectVirtualPortfolioDist is CollectVirtualPortfolio on a worker
// fleet; see CollectVirtualSpeedupDist for the determinism contract.
func CollectVirtualPortfolioDist(ctx context.Context, c *dist.Coordinator, w Workload, k, reps int, seed uint64, strategies []string) (meanWinnerIters float64, err error) {
	if len(strategies) == 0 {
		return 0, fmt.Errorf("bench: portfolio needs at least one strategy")
	}
	if len(strategies) > k {
		return 0, fmt.Errorf("bench: portfolio of %d strategies needs at least that many walkers, got %d", len(strategies), k)
	}
	return collectVirtualDist(ctx, c, w, k, reps, seed, strategies)
}

// collectVirtualDist mirrors collectVirtual with the coordinator as
// the executor. The job construction — tuned engine options, weight-1
// portfolio entries, the seed schedule — is kept identical so the two
// paths stay interchangeable.
func collectVirtualDist(ctx context.Context, c *dist.Coordinator, w Workload, k, reps int, seed uint64, strategies []string) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil {
		return 0, fmt.Errorf("bench: nil coordinator")
	}
	probe, err := problems.New(w.Benchmark, w.Size)
	if err != nil {
		return 0, err
	}
	engine := core.TunedOptions(probe)
	var portfolio []multiwalk.PortfolioEntry
	for _, name := range strategies {
		eng := engine
		eng.Strategy = name
		portfolio = append(portfolio, multiwalk.PortfolioEntry{Weight: 1, Engine: eng})
	}
	var sum float64
	for rep := 0; rep < reps; rep++ {
		res, err := c.RunVirtual(ctx, dist.JobSpec{
			Problem:   w.Benchmark,
			Size:      w.Size,
			Walkers:   k,
			Seed:      seed + uint64(rep)*7919,
			Engine:    engine,
			Portfolio: portfolio,
		})
		if err != nil {
			return 0, err
		}
		if res.Truncated {
			return 0, fmt.Errorf("bench: distributed virtual %d-walk of %s truncated (worker lost or cancelled)", k, w)
		}
		if !res.Solved {
			return 0, fmt.Errorf("bench: virtual %d-walk of %s unsolved", k, w)
		}
		sum += float64(res.WinnerIterations)
	}
	return sum / float64(reps), nil
}
