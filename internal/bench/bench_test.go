package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	cases := []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"tiny", ScaleTiny, true},
		{"small", ScaleSmall, true},
		{"", ScaleSmall, true},
		{"paper", ScalePaper, true},
		{"huge", 0, false},
	}
	for _, c := range cases {
		got, err := ParseScale(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseScale(%q) accepted", c.in)
		}
	}
	if ScaleTiny.String() != "tiny" || ScaleSmall.String() != "small" || ScalePaper.String() != "paper" {
		t.Error("Scale.String() wrong")
	}
	if Scale(42).String() == "" {
		t.Error("unknown scale should still stringify")
	}
}

func TestPaperWorkloadsCoverTheFourBenchmarks(t *testing.T) {
	for _, scale := range []Scale{ScaleTiny, ScaleSmall, ScalePaper} {
		ws := PaperWorkloads(scale)
		for _, name := range []string{"all-interval", "perfect-square", "magic-square", "costas"} {
			w, ok := ws[name]
			if !ok {
				t.Fatalf("scale %v: missing %s", scale, name)
			}
			if w.Benchmark != name || w.Size <= 0 || w.Runs <= 0 {
				t.Fatalf("scale %v: malformed workload %+v", scale, w)
			}
		}
	}
}

func TestCollectValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Collect(ctx, Workload{"costas", 8, 1}, 1); err == nil {
		t.Error("Runs=1 accepted")
	}
	if _, err := Collect(ctx, Workload{"bogus", 8, 5}, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCollectProducesUsableDistribution(t *testing.T) {
	d, err := Collect(context.Background(), Workload{"costas", 9, 30}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Iters.N() != 30 || d.Seconds.N() != 30 {
		t.Fatalf("sample sizes: %d iters, %d seconds", d.Iters.N(), d.Seconds.N())
	}
	if d.Iters.Mean() <= 0 {
		t.Fatal("zero mean iterations")
	}
	if d.ItersPerSecond <= 0 {
		t.Fatal("no calibration")
	}
	sp, err := d.Iters.Speedup(4)
	if err != nil || sp < 1 {
		t.Fatalf("speedup(4) = %v, %v", sp, err)
	}
}

func TestCollectDeterministicIterations(t *testing.T) {
	a, err := Collect(context.Background(), Workload{"costas", 9, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(context.Background(), Workload{"costas", 9, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iters.Mean() != b.Iters.Mean() || a.Iters.Max() != b.Iters.Max() {
		t.Fatal("iteration distributions differ across identical collections")
	}
}

func TestCollectVirtualSpeedup(t *testing.T) {
	w := Workload{"costas", 9, 0}
	mean1, err := CollectVirtualSpeedup(context.Background(), w, 1, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	mean8, err := CollectVirtualSpeedup(context.Background(), w, 8, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mean8 > mean1 {
		t.Fatalf("8 walkers mean winner %v > single walker %v", mean8, mean1)
	}
}

// TestTinySuiteEndToEnd runs the whole pipeline at tiny scale: collect
// all four paper benchmarks, generate every figure and table, render
// them. This is the integration test of stats + cluster + problems +
// core + multiwalk through the harness.
func TestTinySuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny suite takes a few seconds; skipped in -short")
	}
	suite, err := NewSuite(context.Background(), ScaleTiny, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Dists) != 4 {
		t.Fatalf("expected 4 distributions, got %d", len(suite.Dists))
	}

	f1, series1, err := suite.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Rows) != 3*len(CoreCounts) {
		t.Fatalf("fig1 rows = %d, want %d", len(f1.Rows), 3*len(CoreCounts))
	}
	if len(series1) != 3 {
		t.Fatalf("fig1 series = %d", len(series1))
	}

	f2, _, err := suite.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Rows) != 3*len(CoreCounts) {
		t.Fatalf("fig2 rows = %d", len(f2.Rows))
	}

	f3, err := suite.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Rows) != len(CostasCoreCounts) {
		t.Fatalf("fig3 rows = %d", len(f3.Rows))
	}

	sum, err := suite.SummaryTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Rows) < 5 {
		t.Fatalf("summary rows = %d", len(sum.Rows))
	}

	times, err := suite.TimesTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(times.Rows) == 0 {
		t.Fatal("empty times table")
	}

	dist, err := suite.DistributionTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Rows) != 4 {
		t.Fatalf("distrib rows = %d", len(dist.Rows))
	}

	var buf bytes.Buffer
	for _, tbl := range []*Table{f1, f2, f3, sum, times, dist} {
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tbl.CSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{"fig1", "fig2", "fig3", "summary", "times", "distrib", "cores"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
	if err := AsciiChart(&buf, "chart", CoreCounts, series1, 10); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "t",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") || !strings.Contains(out, "note: a note") {
		t.Fatalf("render output:\n%s", out)
	}
	buf.Reset()
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,bb\n1,2\n") {
		t.Fatalf("csv output: %q", buf.String())
	}
}

func TestCSVEscapesCommas(t *testing.T) {
	tbl := &Table{Header: []string{"x,y"}, Rows: [][]string{{"a,b"}}}
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "a,b") {
		t.Fatalf("comma not escaped: %q", buf.String())
	}
}

func TestAblationKnobsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short")
	}
	tbl, err := AblationKnobs(context.Background(), Workload{"costas", 10, 0}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("expected 8 variants, got %d", len(tbl.Rows))
	}
}

func TestAblationCommSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short")
	}
	tbl, err := AblationComm(context.Background(), Workload{"costas", 10, 0}, []int{2}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
}

func TestExtendedWorkloadsWellFormed(t *testing.T) {
	ws := ExtendedWorkloads()
	if len(ws) != 4 {
		t.Fatalf("expected 4 extended workloads, got %d", len(ws))
	}
	for _, w := range ws {
		if w.Size <= 0 || w.Runs < 2 {
			t.Fatalf("malformed workload %+v", w)
		}
	}
}

func TestExtendedTableTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("extended collection in -short")
	}
	// Shrink the run counts for test speed by collecting directly.
	tbl := &Table{Header: []string{"x"}}
	_ = tbl
	d, err := Collect(context.Background(), Workload{"queens", 64, 20}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Iters.N() != 20 {
		t.Fatalf("collected %d", d.Iters.N())
	}
}

func TestCollectVirtualPortfolio(t *testing.T) {
	w := Workload{"costas", 9, 0}
	strategies := []string{"adaptive", "metropolis"}
	mean, err := CollectVirtualPortfolio(context.Background(), w, 4, 3, 7, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Fatalf("portfolio mean winner iterations = %v", mean)
	}
	// Deterministic given identical inputs (RunVirtual underneath).
	again, err := CollectVirtualPortfolio(context.Background(), w, 4, 3, 7, strategies)
	if err != nil {
		t.Fatal(err)
	}
	if mean != again {
		t.Fatalf("portfolio collection not deterministic: %v vs %v", mean, again)
	}
	if _, err := CollectVirtualPortfolio(context.Background(), w, 4, 3, 7, nil); err == nil {
		t.Error("empty strategy list accepted")
	}
	if _, err := CollectVirtualPortfolio(context.Background(), w, 4, 3, 7, []string{"bogus"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestCollectVirtualPortfolioRejectsTooFewWalkers(t *testing.T) {
	w := Workload{"costas", 9, 0}
	_, err := CollectVirtualPortfolio(context.Background(), w, 2, 1, 7, []string{"adaptive", "metropolis", "random-walk"})
	if err == nil {
		t.Fatal("3 strategies on 2 walkers accepted")
	}
	if !strings.Contains(err.Error(), "walkers") {
		t.Fatalf("error does not explain the walker constraint: %v", err)
	}
}
