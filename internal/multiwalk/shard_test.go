package multiwalk

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
)

// shardRanges splits total walkers into the given shard sizes.
func shardRanges(sizes []int) []Shard {
	shards := make([]Shard, len(sizes))
	total := 0
	for _, s := range sizes {
		total += s
	}
	start := 0
	for i, s := range sizes {
		shards[i] = Shard{Start: start, Total: total}
		start += s
	}
	return shards
}

// TestShardedRunVirtualMatchesWhole is the package-level half of the
// distributed determinism contract: running a job's walkers as shards
// (in any partition) and merging with CombineShards must be bit-for-bit
// identical to the unsharded RunVirtual — same winner, same iteration
// counts, same per-walker identity and stats.
func TestShardedRunVirtualMatchesWhole(t *testing.T) {
	const k = 7
	engine := tunedEngine(t, "costas", 9)
	entryRW := engine
	entryRW.Strategy = core.StrategyRandomWalk
	base := Options{
		Walkers: k,
		Seed:    123,
		Engine:  engine,
		Portfolio: []PortfolioEntry{
			{Weight: 2, Engine: engine},
			{Weight: 1, Engine: entryRW},
		},
	}
	whole, err := RunVirtual(context.Background(), costasFactory(t, 9), base)
	if err != nil {
		t.Fatal(err)
	}

	for _, sizes := range [][]int{{3, 4}, {1, 1, 5}, {2, 2, 2, 1}, {7}} {
		shards := shardRanges(sizes)
		results := make([]Result, len(shards))
		for i, sh := range shards {
			opts := base
			opts.Walkers = sizes[i]
			shard := sh
			opts.Shard = &shard
			res, err := RunVirtual(context.Background(), costasFactory(t, 9), opts)
			if err != nil {
				t.Fatalf("shard %v: %v", sh, err)
			}
			results[i] = res
		}
		merged, err := CombineShards(k, results...)
		if err != nil {
			t.Fatalf("combine %v: %v", sizes, err)
		}
		if merged.Winner != whole.Winner || merged.WinnerIterations != whole.WinnerIterations ||
			merged.Solved != whole.Solved || merged.TotalIterations != whole.TotalIterations ||
			merged.Completed != whole.Completed || merged.Truncated != whole.Truncated {
			t.Fatalf("partition %v: merged %+v != whole %+v", sizes, merged, whole)
		}
		if !reflect.DeepEqual(merged.Solution, whole.Solution) {
			t.Fatalf("partition %v: solution diverged", sizes)
		}
		for w := range whole.Walkers {
			a, b := whole.Walkers[w], merged.Walkers[w]
			a.Result.Elapsed, b.Result.Elapsed = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("partition %v: walker %d diverged:\nwhole:  %+v\nmerged: %+v", sizes, w, a, b)
			}
		}
	}
}

func TestShardValidation(t *testing.T) {
	engine := tunedEngine(t, "costas", 8)
	cases := []struct {
		name string
		opts Options
	}{
		{"start negative", Options{Walkers: 2, Engine: engine, Shard: &Shard{Start: -1, Total: 4}}},
		{"beyond total", Options{Walkers: 3, Engine: engine, Shard: &Shard{Start: 2, Total: 4}}},
		{"overflowing walkers", Options{Walkers: math.MaxInt, Engine: engine, Shard: &Shard{Start: 2, Total: 4}}},
		{"zero total", Options{Walkers: 1, Engine: engine, Shard: &Shard{Start: 0, Total: 0}}},
		{"exchange sharded", Options{Walkers: 1, Engine: engine,
			Shard:    &Shard{Start: 0, Total: 2},
			Exchange: ExchangeOptions{Enabled: true}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(context.Background(), costasFactory(t, 8), tc.opts); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}

	// A portfolio entry reachable only from another shard's sub-range
	// must still validate: reachability is a whole-job property.
	opts := Options{
		Walkers: 1,
		Seed:    5,
		Engine:  engine,
		Shard:   &Shard{Start: 0, Total: 4},
		Portfolio: []PortfolioEntry{
			{Weight: 3, Engine: engine},
			{Weight: 1, Engine: engine},
		},
	}
	if _, err := RunVirtual(context.Background(), costasFactory(t, 8), opts); err != nil {
		t.Fatalf("whole-job-reachable portfolio rejected for shard: %v", err)
	}
}

func TestCombineShardsRejectsGapsAndOverlaps(t *testing.T) {
	stat := func(w int) WalkerStat {
		return WalkerStat{Walker: w, Entry: -1, Result: core.Result{Iterations: 1, Cost: 3}}
	}
	if _, err := CombineShards(3, Result{Walkers: []WalkerStat{stat(0), stat(1)}}); err == nil {
		t.Fatal("missing walker not rejected")
	}
	if _, err := CombineShards(2,
		Result{Walkers: []WalkerStat{stat(0), stat(1)}},
		Result{Walkers: []WalkerStat{stat(1)}}); err == nil {
		t.Fatal("duplicate walker not rejected")
	}
	if _, err := CombineShards(1, Result{Walkers: []WalkerStat{stat(4)}}); err == nil {
		t.Fatal("out-of-range walker not rejected")
	}
}

func TestCombineShardsWinnerAndTruncation(t *testing.T) {
	solved := func(w int, iters int64) WalkerStat {
		return WalkerStat{Walker: w, Entry: -1, Result: core.Result{Solved: true, Iterations: iters, Solution: []int{0}}}
	}
	lost := func(w int) WalkerStat {
		return WalkerStat{Walker: w, Entry: -1, Result: core.Result{Interrupted: true, Cost: math.MaxInt}}
	}
	res, err := CombineShards(4,
		Result{Walkers: []WalkerStat{solved(0, 90), solved(1, 40)}, Completed: 2},
		Result{Walkers: []WalkerStat{solved(2, 40), lost(3)}, Completed: 1, Truncated: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Winner != 1 || res.WinnerIterations != 40 {
		t.Fatalf("tie must break toward the lowest global index: %+v", res)
	}
	if !res.Truncated || res.Completed != 3 {
		t.Fatalf("truncation/completion not propagated: %+v", res)
	}
	if res.TotalIterations != 170 {
		t.Fatalf("TotalIterations = %d, want 170", res.TotalIterations)
	}
}
