package multiwalk

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/problems"
)

func costasFactory(t *testing.T, n int) Factory {
	t.Helper()
	f, err := problems.NewFactory("costas", n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func tunedEngine(t *testing.T, name string, n int) core.Options {
	t.Helper()
	p, err := problems.New(name, n)
	if err != nil {
		t.Fatal(err)
	}
	return core.TunedOptions(p)
}

func TestRunVirtualSolvesAndPicksMinIterations(t *testing.T) {
	opts := Options{
		Walkers: 6,
		Seed:    11,
		Engine:  tunedEngine(t, "costas", 10),
	}
	res, err := RunVirtual(context.Background(), costasFactory(t, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("not solved: %+v", res)
	}
	if res.Winner < 0 || res.Winner >= 6 {
		t.Fatalf("winner index %d out of range", res.Winner)
	}
	if len(res.Walkers) != 6 {
		t.Fatalf("expected 6 walker stats, got %d", len(res.Walkers))
	}
	var total int64
	for _, s := range res.Walkers {
		total += s.Result.Iterations
		if s.Result.Solved && s.Result.Iterations < res.WinnerIterations {
			t.Fatalf("walker %d solved in %d < winner's %d", s.Walker, s.Result.Iterations, res.WinnerIterations)
		}
	}
	if total != res.TotalIterations {
		t.Fatalf("TotalIterations = %d, sum = %d", res.TotalIterations, total)
	}
	if !perm.IsPermutation(res.Solution) {
		t.Fatalf("solution is not a permutation: %v", res.Solution)
	}
}

func TestRunVirtualDeterministic(t *testing.T) {
	opts := Options{Walkers: 4, Seed: 7, Engine: tunedEngine(t, "costas", 9)}
	a, err := RunVirtual(context.Background(), costasFactory(t, 9), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVirtual(context.Background(), costasFactory(t, 9), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Winner != b.Winner || a.WinnerIterations != b.WinnerIterations || a.TotalIterations != b.TotalIterations {
		t.Fatalf("RunVirtual not deterministic: %+v vs %+v", a, b)
	}
}

// TestRunVirtualParallelNeverSlower exploits prefix-stable walker seeds:
// walker 0 of a k-walk run is identical to the single walker of a k=1
// run, so min over k walkers can never exceed the k=1 iteration count.
// This is the algorithmic heart of the paper's speedup.
func TestRunVirtualParallelNeverSlower(t *testing.T) {
	f := costasFactory(t, 10)
	eng := tunedEngine(t, "costas", 10)
	for _, seed := range []uint64{1, 2, 3} {
		solo, err := RunVirtual(context.Background(), f, Options{Walkers: 1, Seed: seed, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		multi, err := RunVirtual(context.Background(), f, Options{Walkers: 8, Seed: seed, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if !solo.Solved || !multi.Solved {
			t.Fatalf("seed %d: solo solved=%v multi solved=%v", seed, solo.Solved, multi.Solved)
		}
		if multi.WinnerIterations > solo.WinnerIterations {
			t.Fatalf("seed %d: 8 walkers took %d iterations, single walker %d",
				seed, multi.WinnerIterations, solo.WinnerIterations)
		}
	}
}

func TestRunConcurrentSolves(t *testing.T) {
	opts := Options{
		Walkers: 4,
		Seed:    13,
		Engine:  tunedEngine(t, "costas", 10),
	}
	res, err := Run(context.Background(), costasFactory(t, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("not solved: %+v", res)
	}
	p, _ := problems.NewCostas(10)
	if !p.Verify(res.Solution) {
		t.Fatalf("invalid solution: %v", res.Solution)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

func TestRunHonorsContextTimeout(t *testing.T) {
	// magic-square side 3 is solvable, but give it an impossible budget:
	// a 1ms deadline must abort the run unsolved without error.
	f, err := problems.NewFactory("magic-square", 20)
	if err != nil {
		t.Fatal(err)
	}
	eng := tunedEngine(t, "magic-square", 20)
	eng.CheckEvery = 16
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := Run(ctx, f, Options{Walkers: 3, Seed: 1, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Skip("solved within 1ms — machine faster than expected")
	}
	if res.Winner != -1 || res.Solution != nil {
		t.Fatalf("unsolved result carries winner/solution: %+v", res)
	}
}

func TestOptionValidation(t *testing.T) {
	f := costasFactory(t, 8)
	if _, err := Run(context.Background(), f, Options{Walkers: 0}); err == nil {
		t.Error("Walkers=0 accepted")
	}
	if _, err := Run(context.Background(), nil, Options{Walkers: 1}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := RunVirtual(context.Background(), nil, Options{Walkers: 1}); err == nil {
		t.Error("RunVirtual nil factory accepted")
	}
	bad := Options{Walkers: 2, Exchange: ExchangeOptions{Enabled: true, AdoptFactor: 0.5}}
	if _, err := Run(context.Background(), f, bad); err == nil {
		t.Error("AdoptFactor < 1 accepted")
	}
	bad2 := Options{Walkers: 2, Exchange: ExchangeOptions{Enabled: true, PerturbSwaps: -1}}
	if _, err := Run(context.Background(), f, bad2); err == nil {
		t.Error("negative PerturbSwaps accepted")
	}
	bad3 := Options{Walkers: 2, Exchange: ExchangeOptions{Enabled: true, Period: -5}}
	if _, err := Run(context.Background(), f, bad3); err == nil {
		t.Error("negative Period accepted")
	}
	if _, err := RunVirtual(context.Background(), f, Options{Walkers: 2, Exchange: ExchangeOptions{Enabled: true}}); err == nil {
		t.Error("RunVirtual with Exchange accepted")
	}
}

func TestFactoryErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	f := func() (core.Problem, error) { return nil, boom }
	if _, err := Run(context.Background(), f, Options{Walkers: 2}); !errors.Is(err, boom) {
		t.Fatalf("factory error not propagated: %v", err)
	}
	if _, err := RunVirtual(context.Background(), f, Options{Walkers: 2}); !errors.Is(err, boom) {
		t.Fatalf("RunVirtual factory error not propagated: %v", err)
	}
}

func TestAllWalkersFailGivesNoWinner(t *testing.T) {
	// langford 9 does not exist (9 mod 4 == 1)... the factory rejects
	// it, so instead bound the budget so tightly nothing solves.
	f := costasFactory(t, 14)
	eng := tunedEngine(t, "costas", 14)
	eng.MaxIterations = 2
	eng.MaxRuns = 1
	res, err := RunVirtual(context.Background(), f, Options{Walkers: 3, Seed: 3, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved || res.Winner != -1 || res.Solution != nil {
		t.Fatalf("expected total failure, got %+v", res)
	}
	if res.TotalIterations == 0 {
		t.Fatal("walkers did no work")
	}
}

func TestExchangeRunSolves(t *testing.T) {
	opts := Options{
		Walkers: 4,
		Seed:    21,
		Engine:  tunedEngine(t, "costas", 10),
		Exchange: ExchangeOptions{
			Enabled:     true,
			Period:      256,
			AdoptFactor: 1.5,
		},
	}
	res, err := Run(context.Background(), costasFactory(t, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("dependent multi-walk failed to solve: %+v", res)
	}
	p, _ := problems.NewCostas(10)
	if !p.Verify(res.Solution) {
		t.Fatalf("invalid solution: %v", res.Solution)
	}
}

func TestWalkerSeedsPrefixStableAndDistinct(t *testing.T) {
	s8 := walkerSeeds(99, 8)
	s3 := walkerSeeds(99, 3)
	for i := range s3 {
		if s3[i] != s8[i] {
			t.Fatalf("walker seeds are not prefix-stable at %d", i)
		}
	}
	seen := map[uint64]bool{}
	for _, s := range s8 {
		if seen[s] {
			t.Fatal("duplicate walker seed")
		}
		seen[s] = true
	}
}

func TestBoardPublishSnapshot(t *testing.T) {
	b := NewLocalBoard()
	if _, _, ok := b.Snapshot(); ok {
		t.Fatal("empty board reported valid state")
	}
	b.Publish(10, []int{2, 0, 1})
	cost, cfg, ok := b.Snapshot()
	if !ok || cost != 10 || len(cfg) != 3 {
		t.Fatalf("snapshot = %d %v %v", cost, cfg, ok)
	}
	b.Publish(20, []int{0, 1, 2}) // worse: must not replace
	cost, cfg, _ = b.Snapshot()
	if cost != 10 || cfg[0] != 2 {
		t.Fatalf("worse publish replaced best: %d %v", cost, cfg)
	}
	b.Publish(5, []int{1, 2, 0})
	cost, cfg, _ = b.Snapshot()
	if cost != 5 || cfg[0] != 1 {
		t.Fatalf("better publish ignored: %d %v", cost, cfg)
	}
	// Snapshot must return a private copy.
	cfg[0] = 99
	_, cfg2, _ := b.Snapshot()
	if cfg2[0] == 99 {
		t.Fatal("snapshot aliases board state")
	}
}

func TestMonitorDirectives(t *testing.T) {
	b := NewLocalBoard()
	stat := &WalkerStat{}
	x := ExchangeOptions{Enabled: true, Period: 100, AdoptFactor: 2, PerturbSwaps: 2}
	mp, _ := problems.NewQueens(8)
	mon := boardMonitor(b, stat, x, mp, 42)

	cfg := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// First call publishes my state; board best = my cost: no directive.
	if d := mon(100, 10, cfg); d.Stop || d.Restart || d.SetConfig != nil {
		t.Fatalf("unexpected directive on first publish: %+v", d)
	}
	// Within the period: no work.
	if d := mon(150, 10, cfg); d.Stop || d.SetConfig != nil {
		t.Fatalf("period not honored: %+v", d)
	}
	// Another walker posts a much better cost; I should adopt.
	b.Publish(3, []int{7, 6, 5, 4, 3, 2, 1, 0})
	d := mon(250, 10, cfg)
	if d.SetConfig == nil {
		t.Fatalf("lagging walker did not adopt: %+v", d)
	}
	if !perm.IsPermutation(d.SetConfig) {
		t.Fatalf("adopted config is not a permutation: %v", d.SetConfig)
	}
	if stat.Adoptions != 1 {
		t.Fatalf("Adoptions = %d, want 1", stat.Adoptions)
	}
	// Someone solved: I should stop, and the stat must record the stop
	// as a yield (solved elsewhere), not look like an external cancel.
	b.Publish(0, []int{7, 6, 5, 4, 3, 2, 1, 0})
	if d := mon(400, 10, cfg); !d.Stop {
		t.Fatalf("walker did not stop after a solution was posted: %+v", d)
	}
	if !stat.Yielded {
		t.Fatal("solved-elsewhere stop did not mark the walker Yielded")
	}
}

func TestAggregateUnsolved(t *testing.T) {
	stats := []WalkerStat{
		{Walker: 0, Result: core.Result{Iterations: 10}},
		{Walker: 1, Result: core.Result{Iterations: 20}},
	}
	res := aggregate(stats, virtualWinner)
	if res.Solved || res.Winner != -1 || res.TotalIterations != 30 {
		t.Fatalf("bad aggregate: %+v", res)
	}
}
