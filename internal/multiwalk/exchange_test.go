package multiwalk

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/problems"
)

// TestExchangeCadenceNotQuantized is the regression test for the
// silent Period-quantization bug: the engine polls its Monitor every
// CheckEvery iterations (default 64), so an Exchange.Period below that
// used to degrade to CheckEvery with no diagnostic. runWalker now
// tightens the poll period for exchange-enabled walkers; the chained
// Progress hook observes the effective cadence.
func TestExchangeCadenceNotQuantized(t *testing.T) {
	factory := func() (core.Problem, error) { return inversionsProblem{n: 24}, nil }
	var mu sync.Mutex
	var polls []int64
	opts := Options{
		Walkers: 1,
		Seed:    7,
		Engine:  core.Options{MaxIterations: 64, MaxRuns: 1}, // CheckEvery 0 -> engine default 64
		Exchange: ExchangeOptions{
			Enabled: true,
			Period:  8,
		},
		Progress: func(_ int, iter int64, _ int) {
			mu.Lock()
			polls = append(polls, iter)
			mu.Unlock()
		},
	}
	if _, err := Run(context.Background(), factory, opts); err != nil {
		t.Fatal(err)
	}
	if len(polls) == 0 {
		t.Fatal("no monitor polls in 64 iterations")
	}
	if polls[0] != 8 {
		t.Fatalf("first poll at iteration %d, want 8 (Period=8 silently quantized to CheckEvery)", polls[0])
	}
	if len(polls) != 8 {
		t.Fatalf("got %d polls over 64 iterations with Period=8, want 8: %v", len(polls), polls)
	}

	// Independent walkers must keep the engine's own cadence: the clamp
	// applies only when a board is in play.
	polls = nil
	opts.Exchange = ExchangeOptions{}
	if _, err := Run(context.Background(), factory, opts); err != nil {
		t.Fatal(err)
	}
	if len(polls) != 1 || polls[0] != 64 {
		t.Fatalf("independent walker polls moved: %v, want [64]", polls)
	}
}

// TestBoardPublishLengthGuard pins the publish truncation fix: the
// board's stored configuration must always match the winning publish,
// even when callers disagree on n (the old code allocated at the first
// caller's length and silently truncated longer configurations).
func TestBoardPublishLengthGuard(t *testing.T) {
	b := NewLocalBoard()
	b.Publish(5, []int{3, 2, 1, 0})
	long := []int{7, 6, 5, 4, 3, 2, 1, 0}
	b.Publish(3, long)
	cost, cfg, ok := b.Snapshot()
	if !ok || cost != 3 {
		t.Fatalf("snapshot = %d %v %v, want cost 3", cost, cfg, ok)
	}
	if len(cfg) != len(long) {
		t.Fatalf("stored config truncated to %d values, want %d", len(cfg), len(long))
	}
	for i, v := range long {
		if cfg[i] != v {
			t.Fatalf("stored config corrupted at %d: %v", i, cfg)
		}
	}
	// Shrinking is symmetric: the cell re-fits, never aliases stale tail
	// values.
	b.Publish(1, []int{1, 0})
	if cost, cfg, _ := b.Snapshot(); cost != 1 || len(cfg) != 2 || cfg[0] != 1 || cfg[1] != 0 {
		t.Fatalf("shrinking publish mishandled: %d %v", cost, cfg)
	}
}

// TestYieldedWalkerDistinguishableFromCancelled drives the full engine
// path: a walker whose board already shows best cost 0 must stop as
// Yielded — reported Interrupted by the engine, but distinguishable
// from a context cancel in dependent-run accounting.
func TestYieldedWalkerDistinguishableFromCancelled(t *testing.T) {
	factory := func() (core.Problem, error) { return inversionsProblem{n: 24}, nil }
	board := NewLocalBoard()
	board.Publish(0, identityPerm(24)) // someone else already won
	eo := core.Options{MaxIterations: 1000, MaxRuns: 1, CheckEvery: 4}
	exch := ExchangeOptions{Enabled: true, Period: 4, AdoptFactor: 2}
	stat, err := runWalker(context.Background(), factory, eo, exch, 0, -1, 11, board, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stat.Yielded {
		t.Fatalf("walker did not yield to the posted win: %+v", stat)
	}
	if !stat.Result.Interrupted {
		t.Fatalf("yielded walker should surface as Interrupted at the engine level: %+v", stat.Result)
	}
	if stat.Result.Iterations >= 1000 {
		t.Fatalf("yielded walker burned its whole budget: %d iterations", stat.Result.Iterations)
	}

	// Contrast: a genuinely cancelled walker is Interrupted but NOT
	// Yielded.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	stat2, err := runWalker(cancelled, factory, eo, exch, 0, -1, 11, NewLocalBoard(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stat2.Result.Interrupted || stat2.Yielded {
		t.Fatalf("cancelled walker accounting wrong: %+v", stat2)
	}
}

// TestSolvedWalkerPublishesWin: a walker that solves must post (0,
// solution) to the board so siblings (and, through a distributed
// board, other workers) can stand down.
func TestSolvedWalkerPublishesWin(t *testing.T) {
	f := costasFactory(t, 8)
	eo := tunedEngine(t, "costas", 8)
	sol := solveOnce(t, f, eo, 5)

	board := NewLocalBoard()
	eo.InitialConfig = sol // solves on iteration zero
	exch := ExchangeOptions{Enabled: true, Period: 64, AdoptFactor: 2}
	stat, err := runWalker(context.Background(), f, eo, exch, 0, -1, 5, board, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stat.Result.Solved {
		t.Fatalf("walker did not solve from a solved initial config: %+v", stat.Result)
	}
	cost, cfg, ok := board.Snapshot()
	if !ok || cost != 0 || len(cfg) != 8 {
		t.Fatalf("win not published to board: cost=%d cfg=%v ok=%v", cost, cfg, ok)
	}
}

// TestShardedExchangeSharedBoard is the in-process model of the
// cross-worker scheme: two shards of one job executed separately
// against one shared Board cooperate — the laggard shard adopts elite
// configurations published by the leader shard, which a shard-private
// board could never provide. It also pins the validation rules around
// Options.Board.
func TestShardedExchangeSharedBoard(t *testing.T) {
	factory := func() (core.Problem, error) { return inversionsProblem{n: 24}, nil }
	engine := core.Options{MaxIterations: 600, MaxRuns: 1, CheckEvery: 4}
	laggard := engine
	laggard.Strategy = core.StrategyRandomWalk
	portfolio := []PortfolioEntry{
		{Weight: 1, Engine: engine},  // walker 0: adaptive leader
		{Weight: 1, Engine: laggard}, // walker 1: random-walk laggard
	}
	exch := ExchangeOptions{Enabled: true, Period: 4, AdoptFactor: 1.0}

	// Sharded exchange without a shared board stays rejected.
	noBoard := Options{Walkers: 1, Seed: 99, Portfolio: portfolio,
		Shard: &Shard{Start: 0, Total: 2}, Exchange: exch}
	if _, err := Run(context.Background(), factory, noBoard); err == nil {
		t.Fatal("sharded Exchange without a Board accepted")
	}
	// A board without the exchange scheme is a configuration error.
	if _, err := Run(context.Background(), factory, Options{Walkers: 1, Seed: 99,
		Engine: engine, Board: NewLocalBoard()}); err == nil {
		t.Fatal("Board without Exchange accepted")
	}

	board := NewLocalBoard()
	shardOpts := func(start int) Options {
		return Options{Walkers: 1, Seed: 99, Portfolio: portfolio,
			Shard: &Shard{Start: start, Total: 2}, Exchange: exch, Board: board}
	}
	// Leader shard runs first and seeds the board with its descent.
	s0, err := Run(context.Background(), factory, shardOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Run(context.Background(), factory, shardOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := s1.Walkers[0].Adoptions; got == 0 {
		t.Fatal("laggard shard never adopted the leader shard's elite: the board did not cross the shard boundary")
	}
	combined, err := CombineShards(2, s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Adoptions != s0.Adoptions+s1.Adoptions {
		t.Fatalf("combined Adoptions = %d, want %d", combined.Adoptions, s0.Adoptions+s1.Adoptions)
	}
	if combined.Walkers[1].Entry != 1 || combined.Walkers[1].Result.Strategy != core.StrategyRandomWalk {
		t.Fatalf("walker identity lost in combination: %+v", combined.Walkers[1])
	}
}

// identityPerm returns the identity permutation of n values.
func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// solveOnce solves the problem sequentially and returns the solution.
func solveOnce(t *testing.T, f Factory, eo core.Options, seed uint64) []int {
	t.Helper()
	p, err := f()
	if err != nil {
		t.Fatal(err)
	}
	eo.Seed = seed
	res, err := core.Solve(context.Background(), p, eo)
	if err != nil || !res.Solved {
		t.Fatalf("probe solve failed: %v %+v", err, res)
	}
	return res.Solution
}

// TestBoardMonitorFDPerturbation pins the encoding-aware teleport: on a
// finite-domain problem the perturbed elite must stay inside every
// variable's domain (a transposition-based perturbation would not),
// and the board's stored elite must be untouched.
func TestBoardMonitorFDPerturbation(t *testing.T) {
	p, err := problems.NewTimetable(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReduceDomains(); err != nil {
		t.Fatal(err)
	}
	n := p.Size()
	elite := make([]int, n)
	for i := range elite {
		elite[i] = p.Domain(i)[0]
	}
	b := NewLocalBoard()
	b.Publish(1, elite)

	stat := &WalkerStat{}
	x := ExchangeOptions{Enabled: true, Period: 10, AdoptFactor: 2, PerturbSwaps: 5}
	mon := boardMonitor(b, stat, x, p, 3)

	cfg := append([]int(nil), elite...)
	d := mon(10, 50, cfg) // cost 50 > 2*1: adopt
	if d.SetConfig == nil || stat.Adoptions != 1 {
		t.Fatalf("lagging FD walker did not adopt: %+v (adoptions %d)", d, stat.Adoptions)
	}
	if err := core.ValidateFDConfig(p, d.SetConfig); err != nil {
		t.Fatalf("FD perturbation left the domains: %v", err)
	}
	_, cur, _ := b.Snapshot()
	for i, v := range elite {
		if cur[i] != v {
			t.Fatalf("adoption perturbed the board's elite at %d: %v", i, cur)
		}
	}
}

// TestExchangeRunOnFDProblem runs a dependent multi-walk end to end on
// the finite-domain benchmark: teleports must pass the engine's FD
// config validation and the run must still solve.
func TestExchangeRunOnFDProblem(t *testing.T) {
	factory := func() (core.Problem, error) { return problems.NewTimetable(20, nil) }
	probe, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.TunedOptions(probe)
	eng.MaxIterations = 20000
	res, err := Run(context.Background(), factory, Options{
		Walkers:  4,
		Seed:     11,
		Engine:   eng,
		Exchange: ExchangeOptions{Enabled: true, Period: 16, AdoptFactor: 1.5, PerturbSwaps: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("dependent FD run unsolved: %+v", res)
	}
	if err := core.ValidateFDConfig(probe.(core.FDProblem), res.Solution); err != nil {
		t.Fatalf("solution outside domains: %v", err)
	}
}
