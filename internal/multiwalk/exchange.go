package multiwalk

import (
	"sync"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/rng"
)

// Board is the shared state of the dependent multiple-walk scheme: the
// best cost seen by any walker and the configuration that achieved it.
// Communication is intentionally minimal — the paper's design goals for
// the dependent scheme are (1) minimal data transfer and (2) reuse of
// interesting crossroads as restart points.
//
// Run creates a private in-process board per exchange-enabled run;
// Options.Board overrides it with an external implementation, which is
// how the scheme crosses process boundaries: internal/dist hands each
// worker a write-through cache of a coordinator-hosted global board, so
// walkers on different machines share one elite pool while the hot loop
// only ever touches process-local memory. Implementations must be safe
// for concurrent use by all walkers of a run.
type Board interface {
	// Publish offers a (cost, cfg) pair; the board keeps it if it
	// improves on the current best. The configuration is copied, so
	// callers may pass a live engine view.
	Publish(cost int, cfg []int)
	// Snapshot returns the best cost and a private copy of the best
	// configuration, or ok=false while nothing has been published.
	Snapshot() (cost int, cfg []int, ok bool)
}

// localBoard is the in-process Board: a mutex-guarded monotone-min
// (cost, cfg) cell.
type localBoard struct {
	mu       sync.Mutex
	bestCost int
	bestCfg  []int
	valid    bool
}

// NewLocalBoard returns the in-process Board implementation. Run
// creates one automatically for exchange-enabled runs; external
// executors reuse it as the coordinator-side global board.
func NewLocalBoard() Board {
	return &localBoard{}
}

// Publish implements Board. The stored configuration always has the
// length of the winning publish: a board shared by callers that
// disagree on n re-fits the buffer instead of silently truncating the
// copy (which would hand corrupt elite configurations to adopters).
func (b *localBoard) Publish(cost int, cfg []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.valid || cost < b.bestCost {
		b.bestCost = cost
		if len(b.bestCfg) != len(cfg) {
			b.bestCfg = make([]int, len(cfg))
		}
		copy(b.bestCfg, cfg)
		b.valid = true
	}
}

// Best returns the current best cost without copying the
// configuration — the cheap read the dist layer's dirty-flag sync uses
// to classify a Publish as an improvement before paying for a
// Snapshot. The second return is false while the board is empty.
func (b *localBoard) Best() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bestCost, b.valid
}

// Snapshot implements Board.
func (b *localBoard) Snapshot() (cost int, cfg []int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.valid {
		return 0, nil, false
	}
	out := make([]int, len(b.bestCfg))
	copy(out, b.bestCfg)
	return b.bestCost, out, true
}

// boardMonitor returns the engine Monitor implementing the exchange
// policy for one walker against b: every Period iterations, publish my
// state; if my cost is AdoptFactor times worse than the board's best,
// teleport to a perturbed copy of the elite configuration; if the board
// proves the job solved elsewhere (best cost 0), stop and mark the
// walker Yielded so accounting can tell it from an external cancel.
//
// The perturbation is encoding-aware: permutation problems scramble the
// elite with random transpositions (which preserve the permutation
// invariant), finite-domain problems reassign random variables to
// random in-domain values (a transposition could leave a variable
// holding a value outside its domain, which the engine's
// ValidateFDConfig teleport gate would reject). PerturbSwaps counts
// moves in both encodings.
func boardMonitor(b Board, stat *WalkerStat, x ExchangeOptions, p core.Problem, seed uint64) func(int64, int, []int) core.Directive {
	r := rng.New(seed ^ 0x9e3779b97f4a7c15) // walker-private perturbation stream
	n := p.Size()
	fd, isFD := p.(core.FDProblem)
	perturb := x.PerturbSwaps
	if perturb == 0 {
		perturb = n / 16
		if perturb < 2 {
			perturb = 2
		}
	}
	var lastCheck int64
	return func(iter int64, cost int, cfg []int) core.Directive {
		if iter-lastCheck < x.Period {
			return core.Directive{}
		}
		lastCheck = iter
		b.Publish(cost, cfg)
		best, elite, ok := b.Snapshot()
		if !ok || elite == nil {
			return core.Directive{}
		}
		// Adopt only when clearly lagging; cost==0 cannot be lagging.
		if best > 0 && float64(cost) > x.AdoptFactor*float64(best) {
			if isFD {
				for k := 0; k < perturb; k++ {
					i := r.Intn(n)
					d := fd.Domain(i)
					elite[i] = d[r.Intn(len(d))]
				}
			} else {
				perm.RandomSwaps(elite, perturb, r)
			}
			stat.Adoptions++
			return core.Directive{SetConfig: elite}
		}
		if best == 0 && cost > 0 {
			// Someone already solved; stop wasting work. This is faster
			// and more deterministic than waiting for the external
			// cancel, and Yielded records that the walker stopped
			// because the job was won — not because a caller cancelled.
			stat.Yielded = true
			return core.Directive{Stop: true}
		}
		return core.Directive{}
	}
}
