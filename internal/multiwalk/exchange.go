package multiwalk

import (
	"sync"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/rng"
)

// exchangeBoard is the shared state of the dependent multiple-walk
// scheme: the best cost seen by any walker and the configuration that
// achieved it. Communication is intentionally minimal — the paper's
// design goals for the dependent scheme are (1) minimal data transfer
// and (2) reuse of interesting crossroads as restart points.
type exchangeBoard struct {
	mu       sync.Mutex
	bestCost int
	bestCfg  []int
	valid    bool
}

func newExchangeBoard() *exchangeBoard {
	return &exchangeBoard{}
}

// publish offers a (cost, cfg) pair to the board; the board keeps it if
// it improves on the current best.
func (b *exchangeBoard) publish(cost int, cfg []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.valid || cost < b.bestCost {
		b.bestCost = cost
		if b.bestCfg == nil {
			b.bestCfg = make([]int, len(cfg))
		}
		copy(b.bestCfg, cfg)
		b.valid = true
	}
}

// snapshot returns the best cost and a copy of the best configuration.
func (b *exchangeBoard) snapshot() (cost int, cfg []int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.valid {
		return 0, nil, false
	}
	out := make([]int, len(b.bestCfg))
	copy(out, b.bestCfg)
	return b.bestCost, out, true
}

// monitor returns the engine Monitor implementing the exchange policy
// for one walker: every Period iterations, publish my state; if my cost
// is AdoptFactor times worse than the board's best, teleport to a
// perturbed copy of the elite configuration.
func (b *exchangeBoard) monitor(stat *WalkerStat, x ExchangeOptions, n int, seed uint64) func(int64, int, []int) core.Directive {
	r := rng.New(seed ^ 0x9e3779b97f4a7c15) // walker-private perturbation stream
	perturb := x.PerturbSwaps
	if perturb == 0 {
		perturb = n / 16
		if perturb < 2 {
			perturb = 2
		}
	}
	var lastCheck int64
	return func(iter int64, cost int, cfg []int) core.Directive {
		if iter-lastCheck < x.Period {
			return core.Directive{}
		}
		lastCheck = iter
		b.publish(cost, cfg)
		best, elite, ok := b.snapshot()
		if !ok || elite == nil {
			return core.Directive{}
		}
		// Adopt only when clearly lagging; cost==0 cannot be lagging.
		if best > 0 && float64(cost) > x.AdoptFactor*float64(best) {
			perm.RandomSwaps(elite, perturb, r)
			stat.Adoptions++
			return core.Directive{SetConfig: elite}
		}
		if best == 0 && cost > 0 {
			// Someone already solved; stop wasting work (Run's cancel
			// will also arrive, but this is faster and deterministic).
			return core.Directive{Stop: true}
		}
		return core.Directive{}
	}
}
