package multiwalk

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/problems"
)

// hardOptions returns engine options that cannot finish on their own:
// a huge iteration budget on a large magic square, with a tight
// cancellation poll so walkers react to the context quickly.
func hardOptions(t *testing.T, n int) core.Options {
	t.Helper()
	eng := tunedEngine(t, "magic-square", n)
	eng.MaxIterations = math.MaxInt64 / 4
	eng.CheckEvery = 16
	return eng
}

func hardFactory(t *testing.T, n int) Factory {
	t.Helper()
	f, err := problems.NewFactory("magic-square", n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunVirtualAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Walkers: 4, Seed: 1, Engine: tunedEngine(t, "costas", 9)}
	res, err := RunVirtual(ctx, costasFactory(t, 9), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved || res.Winner != -1 {
		t.Fatalf("pre-cancelled sweep reported a winner: %+v", res)
	}
	if !res.Truncated {
		t.Fatal("pre-cancelled sweep not marked Truncated")
	}
	if res.Completed != 0 {
		t.Fatalf("Completed = %d, want 0", res.Completed)
	}
	if len(res.Walkers) != 4 {
		t.Fatalf("expected 4 walker stats, got %d", len(res.Walkers))
	}
	for i, s := range res.Walkers {
		if s.Walker != i {
			t.Errorf("walker %d has index %d (pre-fix zero value)", i, s.Walker)
		}
		if s.Entry != -1 {
			t.Errorf("homogeneous walker %d has Entry %d, want -1", i, s.Entry)
		}
		if !s.Result.Interrupted {
			t.Errorf("unrun walker %d not marked Interrupted", i)
		}
		if s.Result.Iterations != 0 {
			t.Errorf("unrun walker %d reports %d iterations", i, s.Result.Iterations)
		}
	}
}

func TestRunVirtualAlreadyCancelledPortfolioEntries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := tunedEngine(t, "costas", 9)
	opts := Options{
		Walkers: 4,
		Seed:    1,
		Portfolio: []PortfolioEntry{
			{Weight: 1, Engine: eng},
			{Weight: 1, Engine: eng},
		},
	}
	res, err := RunVirtual(ctx, costasFactory(t, 9), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Walkers {
		if want := i % 2; s.Entry != want {
			t.Errorf("unrun walker %d has Entry %d, want %d", i, s.Entry, want)
		}
	}
}

func TestRunVirtualMidSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	opts := Options{Walkers: 4, Seed: 1, Engine: hardOptions(t, 20)}
	res, err := RunVirtual(ctx, hardFactory(t, 20), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Skip("solved within 30ms — machine faster than expected")
	}
	if !res.Truncated {
		t.Fatal("mid-sweep cancellation not marked Truncated")
	}
	if res.Completed < 1 || res.Completed >= 4 {
		t.Fatalf("Completed = %d, want in [1, 4)", res.Completed)
	}
	for i, s := range res.Walkers {
		if s.Walker != i || s.Entry != -1 {
			t.Errorf("walker %d carries zero-valued identity: %+v", i, s)
		}
		if i >= res.Completed {
			if !s.Result.Interrupted || s.Result.Iterations != 0 {
				t.Errorf("unrun walker %d: %+v", i, s.Result)
			}
		} else if s.Result.Iterations == 0 {
			t.Errorf("completed walker %d did no work", i)
		}
	}
}

func TestRunVirtualUntruncatedSweepIsComplete(t *testing.T) {
	opts := Options{Walkers: 3, Seed: 5, Engine: tunedEngine(t, "costas", 9)}
	res, err := RunVirtual(context.Background(), costasFactory(t, 9), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("uncancelled sweep marked Truncated: %+v", res)
	}
	if res.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", res.Completed)
	}
}

func TestRunAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Walkers: 4, Seed: 1, Engine: tunedEngine(t, "costas", 9)}
	res, err := Run(ctx, costasFactory(t, 9), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatalf("pre-cancelled run solved: %+v", res)
	}
	if !res.Truncated {
		t.Fatal("pre-cancelled run not marked Truncated")
	}
	if res.Completed != 4 {
		t.Fatalf("Completed = %d, want 4 (every goroutine starts)", res.Completed)
	}
	for i, s := range res.Walkers {
		if s.Walker != i {
			t.Errorf("walker %d has index %d", i, s.Walker)
		}
		if !s.Result.Interrupted {
			t.Errorf("walker %d not interrupted", i)
		}
		if s.Result.Iterations != 0 {
			t.Errorf("pre-cancelled walker %d ran %d iterations, want 0", i, s.Result.Iterations)
		}
	}
}

func TestRunMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	opts := Options{Walkers: 3, Seed: 1, Engine: hardOptions(t, 20)}
	res, err := Run(ctx, hardFactory(t, 20), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Skip("solved within 30ms — machine faster than expected")
	}
	if !res.Truncated {
		t.Fatal("deadline-cancelled run not marked Truncated")
	}
	for i, s := range res.Walkers {
		if !s.Result.Interrupted {
			t.Errorf("walker %d not interrupted by deadline", i)
		}
	}
}

func TestRunSolvedIsNotTruncated(t *testing.T) {
	opts := Options{Walkers: 4, Seed: 13, Engine: tunedEngine(t, "costas", 10)}
	res, err := Run(context.Background(), costasFactory(t, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("not solved: %+v", res)
	}
	if res.Truncated {
		t.Fatal("solved run marked Truncated (loser interruption is normal completion)")
	}
	if res.Completed != 4 {
		t.Fatalf("Completed = %d, want 4", res.Completed)
	}
}

// TestProgressHook checks that Options.Progress observes every walker
// with monotone per-walker iteration counts, in both execution modes.
func TestProgressHook(t *testing.T) {
	eng := tunedEngine(t, "costas", 9)
	eng.CheckEvery = 8
	var mu sync.Mutex
	last := map[int]int64{}
	progress := func(w int, iter int64, cost int) {
		mu.Lock()
		defer mu.Unlock()
		if iter < last[w] {
			t.Errorf("walker %d iteration count went backwards: %d -> %d", w, last[w], iter)
		}
		last[w] = iter
		if cost < 0 {
			t.Errorf("walker %d reported negative cost %d", w, cost)
		}
	}

	opts := Options{Walkers: 3, Seed: 2, Engine: eng, Progress: progress}
	if _, err := RunVirtual(context.Background(), costasFactory(t, 9), opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	seen := len(last)
	mu.Unlock()
	if seen == 0 {
		t.Fatal("Progress never invoked under RunVirtual")
	}
	for w := range last {
		if w < 0 || w >= 3 {
			t.Errorf("Progress saw out-of-range walker %d", w)
		}
	}

	mu.Lock()
	last = map[int]int64{}
	mu.Unlock()
	if _, err := Run(context.Background(), costasFactory(t, 9), opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(last) == 0 {
		t.Fatal("Progress never invoked under Run")
	}
}

// TestEngineMonitorChained checks that a caller-supplied Engine.Monitor
// survives the driver's monitor chaining and can steer the run.
func TestEngineMonitorChained(t *testing.T) {
	eng := hardOptions(t, 20)
	var calls int64
	var mu sync.Mutex
	eng.Monitor = func(iter int64, cost int, cfg []int) core.Directive {
		mu.Lock()
		calls++
		mu.Unlock()
		return core.Directive{Stop: true}
	}
	opts := Options{Walkers: 2, Seed: 3, Engine: eng}
	res, err := RunVirtual(context.Background(), hardFactory(t, 20), opts)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("caller Monitor was discarded by the multi-walk driver")
	}
	for i, s := range res.Walkers {
		if !s.Result.Interrupted {
			t.Errorf("walker %d ignored the Monitor Stop directive", i)
		}
	}
	// A Monitor-initiated stop is the sweep finishing on its own terms,
	// not a context cancellation: Truncated must stay false.
	if res.Truncated {
		t.Errorf("Monitor Stop marked the sweep Truncated: %+v", res)
	}
	if res.Completed != 2 {
		t.Errorf("Completed = %d, want 2", res.Completed)
	}
}
