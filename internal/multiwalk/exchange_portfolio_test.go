package multiwalk

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/problems"
)

// inversionsProblem is a synthetic engine problem built for exchange
// tests: the cost is the permutation's inversion count plus one. The
// +1 makes it unsolvable — no walker can ever post cost 0, so a run
// always burns its full budget and the exchange board stays busy for
// the whole run — while the inversion landscape gives the adaptive
// strategy a long, steady descent and leaves random-walk wandering
// near its starting cost: a reliable leader/laggard gap for adoption
// to act on, with zero reliance on timing.
type inversionsProblem struct{ n int }

func (p inversionsProblem) Size() int { return p.n }

func (p inversionsProblem) Cost(cfg []int) int {
	inv := 0
	for i := 0; i < len(cfg); i++ {
		for j := i + 1; j < len(cfg); j++ {
			if cfg[i] > cfg[j] {
				inv++
			}
		}
	}
	return inv + 1
}

func (p inversionsProblem) CostOnVariable(cfg []int, i int) int {
	e := 0
	for j := 0; j < len(cfg); j++ {
		if j < i && cfg[j] > cfg[i] {
			e++
		}
		if j > i && cfg[i] > cfg[j] {
			e++
		}
	}
	return e
}

func (p inversionsProblem) CostIfSwap(cfg []int, cost, i, j int) int {
	cfg[i], cfg[j] = cfg[j], cfg[i]
	c := p.Cost(cfg)
	cfg[i], cfg[j] = cfg[j], cfg[i]
	return c
}

// exchangePortfolioOptions is the shared setup: 2 adaptive leaders +
// 2 random-walk laggards over the inversions landscape, polling the
// board every few iterations.
func exchangePortfolioOptions(adoptFactor float64) Options {
	engine := core.Options{
		MaxIterations: 600,
		MaxRuns:       1,
		CheckEvery:    4,
	}
	laggard := engine
	laggard.Strategy = core.StrategyRandomWalk
	return Options{
		Walkers: 4,
		Seed:    424242,
		Portfolio: []PortfolioEntry{
			{Weight: 2, Engine: engine},
			{Weight: 2, Engine: laggard},
		},
		Exchange: ExchangeOptions{
			Enabled:     true,
			Period:      4,
			AdoptFactor: adoptFactor,
		},
	}
}

// TestExchangeAdoptionHeterogeneousPortfolio covers the interaction
// the exchange scheme was designed around but never tested under: a
// mixed-strategy portfolio where the weaker strategy's walkers lag far
// enough behind the board's best to trip the AdoptFactor threshold.
func TestExchangeAdoptionHeterogeneousPortfolio(t *testing.T) {
	factory := func() (core.Problem, error) { return inversionsProblem{n: 24}, nil }
	res, err := Run(context.Background(), factory, exchangePortfolioOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatalf("inversions+1 cannot be solved, got %+v", res)
	}
	if len(res.Walkers) != 4 {
		t.Fatalf("expected 4 walker stats, got %d", len(res.Walkers))
	}
	wantEntries := []int{0, 0, 1, 1}
	wantStrategies := []string{core.StrategyAdaptive, core.StrategyAdaptive, core.StrategyRandomWalk, core.StrategyRandomWalk}
	var laggardAdoptions, totalAdoptions int64
	for w, ws := range res.Walkers {
		if ws.Walker != w || ws.Entry != wantEntries[w] {
			t.Fatalf("walker %d: identity (walker=%d entry=%d), want entry %d", w, ws.Walker, ws.Entry, wantEntries[w])
		}
		if ws.Result.Strategy != wantStrategies[w] {
			t.Fatalf("walker %d ran %q, want %q", w, ws.Result.Strategy, wantStrategies[w])
		}
		totalAdoptions += ws.Adoptions
		if ws.Entry == 1 {
			laggardAdoptions += ws.Adoptions
		}
	}
	if totalAdoptions == 0 {
		t.Fatal("AdoptFactor=1.0 with a leader/laggard strategy mix produced no adoptions")
	}
	if laggardAdoptions == 0 {
		t.Fatal("random-walk laggards never adopted the adaptive elite")
	}
}

// TestExchangeAdoptFactorGatesAdoption: an unreachable AdoptFactor
// must yield exactly zero adoptions on the same workload — the
// threshold, not the strategy mix, is what licenses teleports.
func TestExchangeAdoptFactorGatesAdoption(t *testing.T) {
	factory := func() (core.Problem, error) { return inversionsProblem{n: 24}, nil }
	res, err := Run(context.Background(), factory, exchangePortfolioOptions(1e9))
	if err != nil {
		t.Fatal(err)
	}
	for w, ws := range res.Walkers {
		if ws.Adoptions != 0 {
			t.Fatalf("walker %d adopted %d times despite AdoptFactor=1e9", w, ws.Adoptions)
		}
	}
}

// TestExchangeAdoptThresholdBoundary pins the strictly-greater-than
// adoption rule at the boundary, deterministically, through the board
// monitor itself: cost == AdoptFactor*best must not adopt, one above
// must.
func TestExchangeAdoptThresholdBoundary(t *testing.T) {
	b := NewLocalBoard()
	elite := []int{7, 6, 5, 4, 3, 2, 1, 0}
	b.Publish(5, elite)

	stat := &WalkerStat{}
	x := ExchangeOptions{Enabled: true, Period: 10, AdoptFactor: 2, PerturbSwaps: 3}
	mp, _ := problems.NewQueens(8)
	mon := boardMonitor(b, stat, x, mp, 1)

	cfg := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// cost 10 == 2*5: on the boundary, not strictly lagging.
	if d := mon(10, 10, cfg); d.SetConfig != nil || stat.Adoptions != 0 {
		t.Fatalf("boundary cost adopted: %+v (adoptions %d)", d, stat.Adoptions)
	}
	// cost 11 > 2*5: adopt, with a perturbed copy of the elite.
	d := mon(20, 11, cfg)
	if d.SetConfig == nil || stat.Adoptions != 1 {
		t.Fatalf("lagging cost did not adopt: %+v (adoptions %d)", d, stat.Adoptions)
	}
	if !perm.IsPermutation(d.SetConfig) {
		t.Fatalf("adopted config is not a permutation: %v", d.SetConfig)
	}
	// The teleport hands out a perturbed *copy*; the board's elite must
	// be untouched by the perturbation.
	_, cur, _ := b.Snapshot()
	for i, v := range elite {
		if cur[i] != v {
			t.Fatalf("adoption perturbed the board's elite: %v", cur)
		}
	}
}
