package multiwalk

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/problems"
)

// TestVirtualWinnerTieBreak: equal-iteration solved walkers must
// resolve deterministically to the lowest index, so virtual runs stay
// reproducible when iteration counts collide.
func TestVirtualWinnerTieBreak(t *testing.T) {
	stats := []WalkerStat{
		{Walker: 0, Result: core.Result{Iterations: 50}},
		{Walker: 1, Result: core.Result{Solved: true, Iterations: 42}},
		{Walker: 2, Result: core.Result{Solved: true, Iterations: 42}},
		{Walker: 3, Result: core.Result{Solved: true, Iterations: 42}},
	}
	if w := virtualWinner(stats); w != 1 {
		t.Fatalf("virtualWinner = %d, want 1 (lowest index among equal-iteration walkers)", w)
	}
	// An unsolved walker with fewer iterations must not win.
	stats[0].Result.Iterations = 1
	if w := virtualWinner(stats); w != 1 {
		t.Fatalf("virtualWinner = %d, want 1 (unsolved walkers never win)", w)
	}
	// A strictly faster solved walker beats the tie pool.
	stats[3].Result.Iterations = 41
	if w := virtualWinner(stats); w != 3 {
		t.Fatalf("virtualWinner = %d, want 3", w)
	}
}

// portfolioOptions builds a two-strategy portfolio over the tuned
// engine options for a benchmark.
func portfolioOptions(t *testing.T, name string, size, walkers int, seed uint64) Options {
	t.Helper()
	eng := tunedEngine(t, name, size)
	adaptive := eng
	adaptive.Strategy = core.StrategyAdaptive
	metro := eng
	metro.Strategy = core.StrategyMetropolis
	return Options{
		Walkers: walkers,
		Seed:    seed,
		Portfolio: []PortfolioEntry{
			{Weight: 2, Engine: adaptive},
			{Weight: 1, Engine: metro},
		},
	}
}

// TestPortfolioPatternAssignment: weights expand into the documented
// repeating round-robin pattern.
func TestPortfolioPatternAssignment(t *testing.T) {
	entries := []PortfolioEntry{{Weight: 2}, {Weight: 1}, {Weight: 3}}
	pat := portfolioPattern(entries, 12)
	want := []int{0, 0, 1, 2, 2, 2}
	if len(pat) != len(want) {
		t.Fatalf("pattern = %v, want %v", pat, want)
	}
	for i := range want {
		if pat[i] != want[i] {
			t.Fatalf("pattern = %v, want %v", pat, want)
		}
	}
	o := &Options{Portfolio: entries}
	for w := 0; w < 12; w++ {
		_, entry := o.engineFor(pat, w)
		if entry != want[w%len(want)] {
			t.Fatalf("walker %d assigned entry %d, want %d", w, entry, want[w%len(want)])
		}
	}
	// Homogeneous runs resolve to Engine with entry -1.
	ho := &Options{Engine: core.Options{Seed: 9}}
	eo, entry := ho.engineFor(nil, 3)
	if entry != -1 || eo.Seed != 9 {
		t.Fatalf("homogeneous engineFor = (%+v, %d)", eo, entry)
	}
}

// TestPortfolioRunVirtualMixesStrategies: a heterogeneous virtual run
// must assign both strategies, solve, and be bit-for-bit reproducible
// for a fixed seed — the acceptance bar for portfolio support.
func TestPortfolioRunVirtualMixesStrategies(t *testing.T) {
	opts := portfolioOptions(t, "costas", 10, 6, 17)
	a, err := RunVirtual(context.Background(), costasFactory(t, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Solved {
		t.Fatalf("portfolio run unsolved: %+v", a)
	}
	seen := map[string]int{}
	for _, s := range a.Walkers {
		if s.Entry < 0 || s.Entry > 1 {
			t.Fatalf("walker %d has entry %d outside the portfolio", s.Walker, s.Entry)
		}
		seen[s.Result.Strategy]++
	}
	if seen[core.StrategyAdaptive] != 4 || seen[core.StrategyMetropolis] != 2 {
		t.Fatalf("strategy mix = %v, want 4 adaptive + 2 metropolis", seen)
	}
	b, err := RunVirtual(context.Background(), costasFactory(t, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Winner != b.Winner || a.WinnerIterations != b.WinnerIterations || a.TotalIterations != b.TotalIterations {
		t.Fatalf("portfolio RunVirtual not reproducible: %+v vs %+v", a, b)
	}
}

// TestPortfolioRunConcurrent: the wall-clock path must complete and
// verify with a mixed portfolio too.
func TestPortfolioRunConcurrent(t *testing.T) {
	opts := portfolioOptions(t, "costas", 10, 4, 23)
	res, err := Run(context.Background(), costasFactory(t, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("portfolio run unsolved: %+v", res)
	}
	p, _ := problems.NewCostas(10)
	if !p.Verify(res.Solution) {
		t.Fatalf("invalid solution: %v", res.Solution)
	}
}

// TestPortfolioHomogeneousEquivalence: a single-entry portfolio must
// reproduce the homogeneous run exactly (same seeds, same options).
func TestPortfolioHomogeneousEquivalence(t *testing.T) {
	eng := tunedEngine(t, "costas", 9)
	base := Options{Walkers: 4, Seed: 7, Engine: eng}
	port := Options{Walkers: 4, Seed: 7, Portfolio: []PortfolioEntry{{Weight: 1, Engine: eng}}}
	a, err := RunVirtual(context.Background(), costasFactory(t, 9), base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVirtual(context.Background(), costasFactory(t, 9), port)
	if err != nil {
		t.Fatal(err)
	}
	if a.Winner != b.Winner || a.WinnerIterations != b.WinnerIterations || a.TotalIterations != b.TotalIterations {
		t.Fatalf("single-entry portfolio diverges from homogeneous run: %+v vs %+v", a, b)
	}
}

// TestPortfolioValidation: negative weights and over-weight portfolios
// are rejected; zero weights count as 1; the caller's entries are
// never mutated.
func TestPortfolioValidation(t *testing.T) {
	f := costasFactory(t, 8)
	bad := Options{Walkers: 2, Portfolio: []PortfolioEntry{{Weight: -1}}}
	if _, err := Run(context.Background(), f, bad); err == nil {
		t.Error("negative portfolio weight accepted")
	}
	eng := tunedEngine(t, "costas", 8)
	over := Options{Walkers: 2, Seed: 3, Portfolio: []PortfolioEntry{
		{Weight: 2, Engine: eng},
		{Weight: 1, Engine: eng},
	}}
	if _, err := RunVirtual(context.Background(), f, over); err == nil {
		t.Error("portfolio with an unreachable tail entry accepted")
	}
	// Summed weights may exceed Walkers as long as every entry gets at
	// least one walker: walkers 0..3 land on pattern slots [0,0,0,1].
	partial := Options{Walkers: 4, Seed: 3, Portfolio: []PortfolioEntry{
		{Weight: 3, Engine: eng},
		{Weight: 2, Engine: eng},
	}}
	res4, err := RunVirtual(context.Background(), f, partial)
	if err != nil {
		t.Fatalf("reachable over-weight portfolio rejected: %v", err)
	}
	seen := map[int]int{}
	for _, s := range res4.Walkers {
		seen[s.Entry]++
	}
	if seen[0] != 3 || seen[1] != 1 {
		t.Fatalf("walker shares = %v, want entry0=3 entry1=1", seen)
	}
	zero := Options{Walkers: 2, Seed: 3, Portfolio: []PortfolioEntry{{Weight: 0, Engine: eng}}}
	res, err := RunVirtual(context.Background(), f, zero)
	if err != nil {
		t.Fatalf("zero weight (counts as 1) rejected: %v", err)
	}
	if !res.Solved {
		t.Fatalf("zero-weight portfolio run unsolved: %+v", res)
	}
	if zero.Portfolio[0].Weight != 0 {
		t.Fatalf("RunVirtual mutated the caller's PortfolioEntry.Weight to %d", zero.Portfolio[0].Weight)
	}
}

// TestPortfolioUnknownStrategyPropagates: a portfolio entry naming an
// unregistered strategy must surface core's validation error — and in
// the concurrent Run, a failing walker cancels its siblings instead of
// letting them burn the deadline first.
func TestPortfolioUnknownStrategyPropagates(t *testing.T) {
	eng := tunedEngine(t, "costas", 8)
	eng.Strategy = "no-such-strategy"
	opts := Options{Walkers: 2, Seed: 1, Portfolio: []PortfolioEntry{{Engine: eng}}}
	if _, err := RunVirtual(context.Background(), costasFactory(t, 8), opts); err == nil {
		t.Fatal("unknown strategy in portfolio accepted")
	}

	// Mixed portfolio: one healthy unsolvable walker (tiny budget would
	// end it, but give it a huge one), one broken entry. The broken
	// walker's error must cancel the healthy one promptly.
	healthy := tunedEngine(t, "costas", 8)
	healthy.MaxIterations = 1 << 40
	mixed := Options{Walkers: 2, Seed: 1, Portfolio: []PortfolioEntry{
		{Engine: healthy},
		{Engine: eng},
	}}
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), costasFactory(t, 8), mixed)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("unknown strategy in concurrent portfolio accepted")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("walker error did not cancel the surviving walkers")
	}
}

// TestPortfolioHugeWeightNoBlowup: validate accepts an arbitrarily
// large weight on the last reachable entry; the pattern expansion must
// stay bounded by the walker count instead of materializing the full
// weight sum.
func TestPortfolioHugeWeightNoBlowup(t *testing.T) {
	entries := []PortfolioEntry{{Weight: 1}, {Weight: 1 << 40}}
	pat := portfolioPattern(entries, 3)
	if len(pat) != 3 {
		t.Fatalf("pattern length = %d, want 3 (capped at walkers)", len(pat))
	}
	want := []int{0, 1, 1}
	for i := range want {
		if pat[i] != want[i] {
			t.Fatalf("pattern = %v, want %v", pat, want)
		}
	}
	o := &Options{Walkers: 3, Portfolio: entries}
	if err := o.validate(); err != nil {
		t.Fatalf("huge last-entry weight rejected: %v", err)
	}
}
