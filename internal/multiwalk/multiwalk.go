// Package multiwalk implements the paper's primary contribution: the
// parallel execution of Adaptive Search in a multiple independent-walk
// manner. k search engines start from different random configurations
// and run with no communication except completion detection — the first
// walker to find a solution cancels the rest.
//
// Two execution modes are provided:
//
//   - Run launches one goroutine per walker and measures real wall-clock
//     behaviour; it is the production API and matches the paper's MPI
//     deployment one-to-one (goroutine = MPI process, context
//     cancellation = the paper's termination detection).
//   - RunVirtual executes the same independent walks sequentially to
//     completion and determines the winner by iteration count. It is
//     deterministic and hardware-independent, and is what the experiment
//     harness uses to reproduce the paper's figures on any machine (see
//     DESIGN.md §2: walk durations in iterations feed the platform
//     simulator).
//
// The package also implements the paper's future-work section — the
// dependent multiple-walk scheme with inter-process communication — as
// an opt-in Exchange policy: walkers periodically publish their cost to
// a shared board and laggards teleport to a perturbed copy of the best
// configuration. The paper conjectures (and EXP-A1 confirms) that this
// is hard pressed to beat the independent scheme.
package multiwalk

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// Factory builds a fresh, independent core.Problem per walker. Problem
// encodings cache incremental state, so walkers must never share one
// instance. problems.NewFactory returns compatible values.
type Factory = func() (core.Problem, error)

// Options configures a multi-walk run.
type Options struct {
	// Walkers is the number of parallel walks k (the paper's core
	// count). Must be >= 1.
	Walkers int

	// Seed seeds the master stream from which every walker derives an
	// independent RNG stream; a run is reproducible given (problem,
	// options, seed) — exactly reproducible for RunVirtual, and up to
	// OS scheduling for the wall-clock winner of Run.
	Seed uint64

	// Engine holds the per-walker engine options (its Seed and Monitor
	// fields are overridden by the multi-walk driver).
	Engine core.Options

	// Exchange enables the dependent multi-walk scheme. The zero value
	// keeps walks fully independent, as in the paper's experiments.
	Exchange ExchangeOptions
}

// ExchangeOptions tunes the dependent multiple-walk communication
// scheme (the paper's §3). Communication is deliberately tiny — one
// best-cost integer and, on adoption, one configuration copy — honoring
// the paper's goal of minimizing data transfers.
type ExchangeOptions struct {
	// Enabled turns on communication.
	Enabled bool
	// Period is the number of engine iterations between board checks
	// (rounded up to the engine's CheckEvery granularity). 0 selects
	// 1024.
	Period int64
	// AdoptFactor: a walker whose cost exceeds AdoptFactor times the
	// board's best cost teleports to a perturbed elite configuration.
	// 0 selects 2.0.
	AdoptFactor float64
	// PerturbSwaps is the number of random transpositions applied to an
	// adopted elite configuration, keeping walkers diverse. 0 selects
	// max(2, n/16).
	PerturbSwaps int
}

// WalkerStat reports one walker's outcome.
type WalkerStat struct {
	// Walker is the walker index in [0, k).
	Walker int
	// Result is the walker's engine result. In Run, losers are usually
	// Interrupted; in RunVirtual every walker runs to completion.
	Result core.Result
	// Adoptions counts elite-configuration adoptions (dependent mode).
	Adoptions int64
}

// Result aggregates a multi-walk run.
type Result struct {
	// Solved reports whether any walker found a solution.
	Solved bool
	// Winner is the index of the winning walker, or -1.
	Winner int
	// Solution is the winning configuration (nil if unsolved).
	Solution []int
	// WinnerIterations is the winning walker's iteration count — the
	// machine-independent parallel cost of the run, min_k(iters) for
	// RunVirtual.
	WinnerIterations int64
	// TotalIterations sums iterations across all walkers (the parallel
	// work, as opposed to the parallel time).
	TotalIterations int64
	// Walkers holds per-walker statistics, indexed by walker.
	Walkers []WalkerStat
	// Elapsed is the wall-clock duration of the whole call.
	Elapsed time.Duration
}

// validate normalizes and checks options against a probe instance.
func (o *Options) validate() error {
	if o.Walkers < 1 {
		return fmt.Errorf("multiwalk: Walkers must be >= 1, got %d", o.Walkers)
	}
	if o.Exchange.Enabled {
		if o.Exchange.Period == 0 {
			o.Exchange.Period = 1024
		}
		if o.Exchange.Period < 0 {
			return errors.New("multiwalk: Exchange.Period must be >= 0")
		}
		if o.Exchange.AdoptFactor == 0 {
			o.Exchange.AdoptFactor = 2.0
		}
		if o.Exchange.AdoptFactor < 1 {
			return errors.New("multiwalk: Exchange.AdoptFactor must be >= 1")
		}
		if o.Exchange.PerturbSwaps < 0 {
			return errors.New("multiwalk: Exchange.PerturbSwaps must be >= 0")
		}
	}
	return nil
}

// Run executes k independent walks concurrently, one goroutine per
// walker, cancelling the others as soon as a solution is found ("no
// communication between the simultaneous computations except for
// completion"). The context bounds the whole run.
func Run(ctx context.Context, factory Factory, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, errors.New("multiwalk: nil factory")
	}

	seeds := walkerSeeds(opts.Seed, opts.Walkers)
	var board *exchangeBoard
	if opts.Exchange.Enabled {
		board = newExchangeBoard()
	}

	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	stats := make([]WalkerStat, opts.Walkers)
	errs := make([]error, opts.Walkers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Walkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stat, err := runWalker(runCtx, factory, opts, w, seeds[w], board)
			stats[w] = stat
			errs[w] = err
			if err == nil && stat.Result.Solved {
				cancel() // completion detection: first solution wins
			}
		}(w)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := aggregate(stats, wallClockWinner)
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunVirtual executes the same k independent walks sequentially, each to
// completion, and declares the walker with the fewest iterations the
// winner — the deterministic, hardware-independent view of the
// multi-walk execution used by the experiment harness. The context can
// abort the whole computation; per-walker budgets come from
// opts.Engine. Exchange (dependent mode) is not supported here, since
// communication is meaningful only under concurrent execution.
func RunVirtual(ctx context.Context, factory Factory, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Exchange.Enabled {
		return Result{}, errors.New("multiwalk: RunVirtual does not support Exchange; use Run")
	}
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, errors.New("multiwalk: nil factory")
	}

	seeds := walkerSeeds(opts.Seed, opts.Walkers)
	start := time.Now()
	stats := make([]WalkerStat, opts.Walkers)
	for w := 0; w < opts.Walkers; w++ {
		stat, err := runWalker(ctx, factory, opts, w, seeds[w], nil)
		if err != nil {
			return Result{}, err
		}
		stats[w] = stat
		if ctx.Err() != nil {
			break
		}
	}
	res := aggregate(stats, virtualWinner)
	res.Elapsed = time.Since(start)
	return res, nil
}

// walkerSeeds derives k independent engine seeds from the master seed.
func walkerSeeds(seed uint64, k int) []uint64 {
	master := rng.New(seed)
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	return seeds
}

// runWalker builds a fresh problem instance and runs one engine.
func runWalker(ctx context.Context, factory Factory, opts Options, w int, seed uint64, board *exchangeBoard) (WalkerStat, error) {
	p, err := factory()
	if err != nil {
		return WalkerStat{}, fmt.Errorf("multiwalk: walker %d factory: %w", w, err)
	}
	eo := opts.Engine
	eo.Seed = seed
	stat := WalkerStat{Walker: w}
	if board != nil {
		eo.Monitor = board.monitor(&stat, opts.Exchange, p.Size(), seed)
	} else {
		eo.Monitor = nil
	}
	res, err := core.Solve(ctx, p, eo)
	if err != nil {
		return WalkerStat{}, fmt.Errorf("multiwalk: walker %d: %w", w, err)
	}
	stat.Result = res
	return stat, nil
}

// aggregate folds per-walker stats into a Result using the given winner
// rule.
func aggregate(stats []WalkerStat, winner func([]WalkerStat) int) Result {
	res := Result{Winner: -1, Walkers: stats}
	for _, s := range stats {
		res.TotalIterations += s.Result.Iterations
	}
	if w := winner(stats); w >= 0 {
		res.Solved = true
		res.Winner = w
		res.Solution = stats[w].Result.Solution
		res.WinnerIterations = stats[w].Result.Iterations
	}
	return res
}

// wallClockWinner picks the solved walker (post-cancellation there is
// normally exactly one; ties broken by lowest iteration count, then
// index, for determinism).
func wallClockWinner(stats []WalkerStat) int {
	return virtualWinner(stats)
}

// virtualWinner picks the solved walker with the fewest iterations.
func virtualWinner(stats []WalkerStat) int {
	best := -1
	for i, s := range stats {
		if !s.Result.Solved {
			continue
		}
		if best < 0 || s.Result.Iterations < stats[best].Result.Iterations {
			best = i
		}
	}
	return best
}
