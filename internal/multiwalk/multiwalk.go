// Package multiwalk implements the paper's primary contribution: the
// parallel execution of Adaptive Search in a multiple independent-walk
// manner. k search engines start from different random configurations
// and run with no communication except completion detection — the first
// walker to find a solution cancels the rest.
//
// Two execution modes are provided:
//
//   - Run launches one goroutine per walker and measures real wall-clock
//     behaviour; it is the production API and matches the paper's MPI
//     deployment one-to-one (goroutine = MPI process, context
//     cancellation = the paper's termination detection).
//   - RunVirtual executes the same independent walks sequentially to
//     completion and determines the winner by iteration count. It is
//     deterministic and hardware-independent, and is what the experiment
//     harness uses to reproduce the paper's figures on any machine (see
//     DESIGN.md §2: walk durations in iterations feed the platform
//     simulator).
//
// The package also implements the paper's future-work section — the
// dependent multiple-walk scheme with inter-process communication — as
// an opt-in Exchange policy: walkers periodically publish their cost to
// a shared board and laggards teleport to a perturbed copy of the best
// configuration. The board is pluggable (Board), so the same scheme
// runs across process boundaries: internal/dist connects the walkers of
// every shard of a distributed job through a coordinator-hosted global
// board. The paper conjectures (and EXP-A1 confirms) that this is hard
// pressed to beat the independent scheme.
//
// Walks need not be identical: Options.Portfolio assigns weighted
// shares of the walkers to different engine options — typically
// different search strategies (core.Options.Strategy) — turning the
// run into a heterogeneous portfolio while preserving the independent
// scheme's reproducibility (see DESIGN.md §5).
package multiwalk

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// Factory builds a fresh, independent core.Problem per walker. Problem
// encodings cache incremental state, so walkers must never share one
// instance. problems.NewFactory returns compatible values.
type Factory = func() (core.Problem, error)

// Options configures a multi-walk run.
type Options struct {
	// Walkers is the number of parallel walks k (the paper's core
	// count). Must be >= 1.
	Walkers int

	// Seed seeds the master stream from which every walker derives an
	// independent RNG stream; a run is reproducible given (problem,
	// options, seed) — exactly reproducible for RunVirtual, and up to
	// OS scheduling for the wall-clock winner of Run.
	Seed uint64

	// Engine holds the per-walker engine options. Its Seed is
	// overridden by the multi-walk driver; its Monitor (if any) is
	// chained with the driver's own monitors (Progress, Exchange) and
	// must therefore be safe for concurrent use under Run, where every
	// walker invokes it.
	Engine core.Options

	// Portfolio, when non-empty, makes the run heterogeneous: walkers
	// are assigned to the entries in weighted round-robin order (entry
	// 0 repeated Weight(0) times, entry 1 Weight(1) times, ..., then
	// the pattern repeats), and each walker runs the entry's engine
	// options instead of Engine. Shares are exactly weight-proportional
	// when Walkers is a multiple of the summed weights; otherwise the
	// last partial pattern pass favors earlier entries. Assignment
	// depends only on the walker index, so a portfolio run is exactly
	// as reproducible as a homogeneous one: RunVirtual is deterministic
	// given (problem, options, seed). Engine is ignored when Portfolio
	// is set.
	Portfolio []PortfolioEntry

	// Shard, when non-nil, restricts the run to the global walkers
	// [Shard.Start, Shard.Start+Walkers) of a Shard.Total-walker job.
	// Seeds and portfolio entries are derived from the *global* walker
	// index, so executing the shards of one job in separate processes
	// and merging their stats with CombineShards is bit-for-bit
	// identical to a single-process run with Walkers = Shard.Total and
	// no Shard (see internal/dist). nil runs the whole job locally.
	Shard *Shard

	// Exchange enables the dependent multi-walk scheme. The zero value
	// keeps walks fully independent, as in the paper's experiments.
	// Exchange needs a shared elite board: a whole-job run gets a
	// private in-process one automatically, while a sharded run must be
	// handed the job-wide Board (the shards live in different processes
	// whose walkers would otherwise cooperate only within their shard).
	Exchange ExchangeOptions

	// Board, when non-nil, supplies the exchange scheme's shared elite
	// board in place of the run's private in-process one. This is the
	// seam that lifts the dependent scheme across process boundaries:
	// internal/dist passes each worker shard a write-through cache of
	// the coordinator-hosted global board, so publishes and snapshots
	// stay in-memory on the hot path and only the cache's background
	// sync touches the network. Setting Board requires Exchange.Enabled
	// and is mandatory for sharded exchange runs.
	Board Board

	// Progress, when non-nil, is invoked from each walker every
	// Engine.CheckEvery iterations with the walker index, the walker's
	// cumulative iteration count and its current cost. Walkers run
	// concurrently under Run, so the callback must be safe for
	// concurrent use; calls for one walker are always sequential. This
	// is the hook the solve service uses for live throughput metrics.
	// It composes with (does not replace) any Monitor set on the engine
	// options and with the Exchange scheme's internal monitor.
	Progress func(walker int, iter int64, cost int)
}

// PortfolioEntry assigns engine options — typically differing in
// Options.Strategy, but any tunable may vary — to a weighted share of
// the walkers. Heterogeneous portfolios are the natural extension of
// the paper's independent multi-walk scheme: diversity across walkers
// is what the min-of-k runtime distribution feeds on, and mixing
// strategies diversifies the distributions themselves.
type PortfolioEntry struct {
	// Weight is the entry's relative share of walkers. 0 counts as 1;
	// negative weights are rejected, as are entries made unreachable
	// because the weight slots before them already cover every walker.
	Weight int
	// Engine holds the entry's engine options (Seed is overridden and
	// Monitor chained by the multi-walk driver, as with
	// Options.Engine).
	Engine core.Options
}

// Shard identifies a contiguous slice of the walkers of a larger
// logical job. Walker identity — the seed stream, the portfolio entry,
// the WalkerStat.Walker index — is always derived from the global
// index Start+i, never from the shard-local position, which is what
// makes distributed execution reproduce the single-process run.
type Shard struct {
	// Start is the global index of the shard's first walker.
	Start int
	// Total is the whole job's walker count (across all shards).
	Total int
}

// ExchangeOptions tunes the dependent multiple-walk communication
// scheme (the paper's §3). Communication is deliberately tiny — one
// best-cost integer and, on adoption, one configuration copy — honoring
// the paper's goal of minimizing data transfers.
type ExchangeOptions struct {
	// Enabled turns on communication.
	Enabled bool
	// Period is the number of engine iterations between board checks
	// (rounded up to the engine's CheckEvery granularity). 0 selects
	// 1024.
	Period int64
	// AdoptFactor: a walker whose cost exceeds AdoptFactor times the
	// board's best cost teleports to a perturbed elite configuration.
	// 0 selects 2.0.
	AdoptFactor float64
	// PerturbSwaps is the number of random transpositions applied to an
	// adopted elite configuration, keeping walkers diverse. 0 selects
	// max(2, n/16).
	PerturbSwaps int
}

// Validate checks the exchange tuning invariants, treating 0 as "use
// the default" for every field: Period and PerturbSwaps must be
// non-negative, AdoptFactor must be 0 or >= 1 (NaN rejected). This is
// the single validator every admitting layer shares — the run options
// here, the dist wire protocol, the solve service — so the layers
// cannot drift on what is admissible.
func (x *ExchangeOptions) Validate() error {
	if x.Period < 0 {
		return errors.New("multiwalk: Exchange.Period must be >= 0")
	}
	if math.IsNaN(x.AdoptFactor) || (x.AdoptFactor != 0 && x.AdoptFactor < 1) {
		return errors.New("multiwalk: Exchange.AdoptFactor must be >= 1 (or 0 for the default)")
	}
	if x.PerturbSwaps < 0 {
		return errors.New("multiwalk: Exchange.PerturbSwaps must be >= 0")
	}
	return nil
}

// WalkerStat reports one walker's outcome.
type WalkerStat struct {
	// Walker is the walker index in [0, k).
	Walker int
	// Entry is the index of the portfolio entry this walker ran, or -1
	// for a homogeneous run.
	Entry int
	// Result is the walker's engine result. In Run, losers are usually
	// Interrupted; in RunVirtual every walker runs to completion unless
	// the context is cancelled mid-sweep, in which case walkers that
	// never ran carry an empty Result marked Interrupted (Cost
	// core.CostUnknown, zero iterations). Result.Strategy names the
	// strategy the walker used.
	Result core.Result
	// Adoptions counts elite-configuration adoptions offered by the
	// exchange board (dependent mode). A Stop or Restart issued by a
	// chained caller monitor on the same poll can suppress the engine
	// actually executing the teleport, so the count is an upper bound
	// in that (unusual) combination.
	Adoptions int64
	// Yielded reports that the walker stopped itself because the
	// exchange board showed the job solved elsewhere (best cost 0).
	// Such a walker also carries Result.Interrupted, but it was not
	// cancelled: dependent-run accounting uses Yielded to separate
	// "stood down after someone won" from "cut short by the caller".
	Yielded bool
}

// Result aggregates a multi-walk run.
type Result struct {
	// Solved reports whether any walker found a solution.
	Solved bool
	// Winner is the global index of the winning walker, or -1. For a
	// whole-job run (no Shard) it doubles as the index into Walkers;
	// for a shard result it is Walkers[i].Walker of the winning entry.
	Winner int
	// Solution is the winning configuration (nil if unsolved).
	Solution []int
	// WinnerIterations is the winning walker's iteration count — the
	// machine-independent parallel cost of the run, min_k(iters) for
	// RunVirtual.
	WinnerIterations int64
	// TotalIterations sums iterations across all walkers (the parallel
	// work, as opposed to the parallel time).
	TotalIterations int64
	// Adoptions sums elite-configuration adoptions across all walkers.
	// Zero for independent runs; for dependent (Exchange) runs it is
	// the communication scheme's activity measure.
	Adoptions int64
	// Walkers holds per-walker statistics in walker order. For a
	// whole-job run the slice index equals WalkerStat.Walker; a shard
	// result covers only its sub-range, with the global identity in
	// the Walker field.
	Walkers []WalkerStat
	// Completed counts walkers whose engines actually ran (possibly
	// interrupted mid-run). Run starts every walker, so there it always
	// equals len(Walkers); a cancelled RunVirtual sweep stops early and
	// leaves Completed < len(Walkers). The unrun tail keeps correct
	// Walker/Entry indices and an empty Result marked Interrupted.
	Completed int
	// Truncated reports that the caller's context was cancelled before
	// the sweep finished on its own terms. An unsolved Result with
	// Truncated set means "cancelled mid-sweep", not "unsolved after
	// all walks ran their budgets". In Run the losers' post-solution
	// interruption is the normal completion mechanism and does not
	// count as truncation.
	Truncated bool
	// Elapsed is the wall-clock duration of the whole call.
	Elapsed time.Duration
}

// total returns the whole job's walker count: Shard.Total for a
// sharded run, Walkers otherwise.
func (o *Options) total() int {
	if o.Shard != nil {
		return o.Shard.Total
	}
	return o.Walkers
}

// start returns the global index of the first walker this run executes.
func (o *Options) start() int {
	if o.Shard != nil {
		return o.Shard.Start
	}
	return 0
}

// validate normalizes and checks options against a probe instance.
func (o *Options) validate() error {
	if o.Walkers < 1 {
		return fmt.Errorf("multiwalk: Walkers must be >= 1, got %d", o.Walkers)
	}
	if o.Shard != nil {
		// Start > Total-Walkers is the overflow-safe spelling of
		// Start+Walkers > Total (Walkers >= 1 and Total >= 1 are
		// checked first, so the subtraction cannot wrap).
		if o.Shard.Start < 0 || o.Shard.Total < 1 || o.Shard.Start > o.Shard.Total-o.Walkers {
			return fmt.Errorf("multiwalk: shard start=%d walkers=%d outside job of %d walkers", o.Shard.Start, o.Walkers, o.Shard.Total)
		}
		if o.Exchange.Enabled && o.Board == nil {
			return errors.New("multiwalk: sharded Exchange needs the job-wide shared Board (Options.Board); a shard-private board would split the cooperative scheme at process boundaries")
		}
	}
	if o.Board != nil && !o.Exchange.Enabled {
		return errors.New("multiwalk: Board is set but Exchange is not enabled")
	}
	total := o.total()
	prefix := 0
	for i := range o.Portfolio {
		if o.Portfolio[i].Weight < 0 {
			return fmt.Errorf("multiwalk: Portfolio[%d].Weight must be >= 0, got %d", i, o.Portfolio[i].Weight)
		}
		// An entry is assigned at least one walker iff some global
		// walker index lands in its pattern slots, i.e. the weight
		// prefix before it is below the whole job's walker count;
		// reject unreachable entries rather than silently degenerating
		// the requested mix. A shard validates against the global
		// count: an entry may well be unreachable from this shard's
		// sub-range while other shards cover it.
		if prefix >= total {
			return fmt.Errorf("multiwalk: Portfolio[%d] is unreachable: the %d weight slots before it already cover all %d walkers", i, prefix, total)
		}
		prefix += weightOf(o.Portfolio[i])
		if prefix > total {
			// Only "covers all walkers" matters from here on; clamping
			// also guards the sum against integer overflow from huge
			// weights.
			prefix = total
		}
	}
	if o.Exchange.Enabled {
		if err := o.Exchange.Validate(); err != nil {
			return err
		}
		if o.Exchange.Period == 0 {
			o.Exchange.Period = 1024
		}
		if o.Exchange.AdoptFactor == 0 {
			o.Exchange.AdoptFactor = 2.0
		}
	}
	return nil
}

// Run executes k independent walks concurrently, one goroutine per
// walker, cancelling the others as soon as a solution is found ("no
// communication between the simultaneous computations except for
// completion"). The context bounds the whole run.
func Run(ctx context.Context, factory Factory, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, errors.New("multiwalk: nil factory")
	}

	seeds := walkerSeeds(opts.Seed, opts.total())
	pattern := portfolioPattern(opts.Portfolio, opts.total())
	board := opts.Board
	if board == nil && opts.Exchange.Enabled {
		board = NewLocalBoard()
	}

	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	stats := make([]WalkerStat, opts.Walkers)
	errs := make([]error, opts.Walkers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Walkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := opts.start() + w // global walker identity
			eo, entry := opts.engineFor(pattern, g)
			stat, err := runWalker(runCtx, factory, eo, opts.Exchange, g, entry, seeds[g], board, opts.Progress)
			stats[w] = stat
			errs[w] = err
			if err != nil || stat.Result.Solved {
				// Completion detection: the first solution wins. A
				// walker error (bad per-entry options, factory failure)
				// also cancels the run — the error is returned either
				// way, so letting the healthy walkers burn the deadline
				// first would only delay it.
				cancel()
			}
		}(w)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := aggregate(stats, wallClockWinner)
	res.Completed = opts.Walkers
	// Distinguish external cancellation from internal completion
	// detection: losers are interrupted by the winner's cancel on every
	// solved run, so only an unsolved run whose parent context died was
	// genuinely cut short.
	res.Truncated = ctx.Err() != nil && !res.Solved
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunVirtual executes the same k independent walks sequentially, each to
// completion, and declares the walker with the fewest iterations the
// winner — the deterministic, hardware-independent view of the
// multi-walk execution used by the experiment harness. The context can
// abort the whole computation; per-walker budgets come from
// opts.Engine. Exchange (dependent mode) is not supported here, since
// communication is meaningful only under concurrent execution.
func RunVirtual(ctx context.Context, factory Factory, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Exchange.Enabled {
		return Result{}, errors.New("multiwalk: RunVirtual does not support Exchange; use Run")
	}
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, errors.New("multiwalk: nil factory")
	}

	seeds := walkerSeeds(opts.Seed, opts.total())
	pattern := portfolioPattern(opts.Portfolio, opts.total())
	start := time.Now()
	stats := make([]WalkerStat, opts.Walkers)
	completed := 0
	truncated := false
	for w := 0; w < opts.Walkers; w++ {
		g := opts.start() + w // global walker identity
		eo, entry := opts.engineFor(pattern, g)
		if ctx.Err() != nil {
			// The sweep was cancelled before this walker's turn: keep
			// its identity (index, portfolio entry) intact and mark the
			// empty result Interrupted so callers can tell "never ran"
			// from "ran and failed".
			stats[w] = WalkerStat{Walker: g, Entry: entry, Result: core.Result{Interrupted: true, Cost: core.CostUnknown}}
			truncated = true
			continue
		}
		stat, err := runWalker(ctx, factory, eo, opts.Exchange, g, entry, seeds[g], nil, opts.Progress)
		if err != nil {
			return Result{}, err
		}
		stats[w] = stat
		completed++
		// Truncation is strictly a context property: a walker may also
		// report Interrupted because a caller Monitor issued Stop, and
		// that is the sweep finishing on its own terms.
		if ctx.Err() != nil && stat.Result.Interrupted {
			truncated = true
		}
	}
	res := aggregate(stats, virtualWinner)
	res.Completed = completed
	res.Truncated = truncated
	res.Elapsed = time.Since(start)
	return res, nil
}

// walkerSeeds derives k independent engine seeds from the master seed.
func walkerSeeds(seed uint64, k int) []uint64 {
	master := rng.New(seed)
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	return seeds
}

// weightOf is the single place the zero-counts-as-1 weight rule lives,
// shared by validate's reachability check and the pattern expansion so
// the two cannot drift apart.
func weightOf(e PortfolioEntry) int {
	if e.Weight == 0 {
		return 1
	}
	return e.Weight
}

// portfolioPattern expands the weighted portfolio entries into the
// repeating walker-assignment pattern (entry indices), or nil for a
// homogeneous run. The expansion is capped at walkers slots: engineFor
// only ever reads indices below walkers, so truncating the tail changes
// no assignment while keeping arbitrarily large weights (which validate
// accepts on the last reachable entry) from materializing huge slices.
func portfolioPattern(entries []PortfolioEntry, walkers int) []int {
	if len(entries) == 0 {
		return nil
	}
	pattern := make([]int, 0, walkers)
	for idx, e := range entries {
		for r := 0; r < weightOf(e); r++ {
			if len(pattern) == walkers {
				return pattern
			}
			pattern = append(pattern, idx)
		}
	}
	return pattern
}

// EntryFor returns the portfolio entry index assigned to global walker
// w of a total-walker job, or -1 for a homogeneous run. This is the
// single assignment rule — weighted round-robin over the expanded
// pattern — exposed so external executors (internal/dist) can label
// walkers they could not run (a lost worker's shard) with the same
// identity the run would have given them.
func EntryFor(portfolio []PortfolioEntry, total, w int) int {
	pattern := portfolioPattern(portfolio, total)
	if len(pattern) == 0 {
		return -1
	}
	return pattern[w%len(pattern)]
}

// engineFor resolves the engine options and portfolio entry index of
// walker w. Homogeneous runs (empty pattern) use Options.Engine and
// entry -1.
func (o *Options) engineFor(pattern []int, w int) (core.Options, int) {
	if len(pattern) == 0 {
		return o.Engine, -1
	}
	idx := pattern[w%len(pattern)]
	return o.Portfolio[idx].Engine, idx
}

// runWalker builds a fresh problem instance and runs one engine with
// the resolved per-walker options. The walker's effective Monitor is
// the chain of the exchange-board policy, the Progress hook and the
// caller's engine Monitor; every link runs each poll and the
// directives merge (any Stop stops, any Restart restarts, the first
// SetConfig wins).
func runWalker(ctx context.Context, factory Factory, eo core.Options, exch ExchangeOptions, w, entry int, seed uint64, board Board, progress func(int, int64, int)) (WalkerStat, error) {
	p, err := factory()
	if err != nil {
		return WalkerStat{}, fmt.Errorf("multiwalk: walker %d factory: %w", w, err)
	}
	eo.Seed = seed
	stat := WalkerStat{Walker: w, Entry: entry}
	// The board monitor goes first: its SetConfig directive carries
	// side effects (the Adoptions count, the perturbation RNG), so it
	// must win the first-SetConfig-wins merge over a caller monitor
	// that happens to teleport on the same poll.
	monitors := make([]func(int64, int, []int) core.Directive, 0, 3)
	if board != nil {
		// The engine polls its Monitor only every CheckEvery iterations,
		// so an Exchange.Period below that would silently degrade to
		// CheckEvery. Tighten the poll period to the exchange period so
		// the requested cadence is honored; independent walkers (no
		// board) keep their options untouched.
		if eo.CheckEvery == 0 {
			eo.CheckEvery = core.DefaultCheckEvery
		}
		if exch.Period < int64(eo.CheckEvery) {
			eo.CheckEvery = int(exch.Period)
		}
		monitors = append(monitors, boardMonitor(board, &stat, exch, p, seed))
	}
	if progress != nil {
		monitors = append(monitors, func(iter int64, cost int, _ []int) core.Directive {
			progress(w, iter, cost)
			return core.Directive{}
		})
	}
	if eo.Monitor != nil {
		monitors = append(monitors, eo.Monitor)
	}
	eo.Monitor = chainMonitors(monitors)
	res, err := core.Solve(ctx, p, eo)
	if err != nil {
		return WalkerStat{}, fmt.Errorf("multiwalk: walker %d: %w", w, err)
	}
	if board != nil && res.Solved {
		// Post the win to the board. The monitor only ever publishes
		// costs observed mid-search (all > 0, since a solved engine
		// exits its loop before the next poll), so without this the
		// board could never reach best 0 and the solved-elsewhere stop
		// path would stay dead; with it, sibling walkers — including
		// ones on other workers, via a distributed board — stand down
		// as soon as the win propagates.
		board.Publish(0, res.Solution)
	}
	stat.Result = res
	return stat, nil
}

// chainMonitors folds several engine monitors into one, merging their
// directives.
func chainMonitors(monitors []func(int64, int, []int) core.Directive) func(int64, int, []int) core.Directive {
	switch len(monitors) {
	case 0:
		return nil
	case 1:
		return monitors[0]
	}
	return func(iter int64, cost int, cfg []int) core.Directive {
		var out core.Directive
		for _, m := range monitors {
			d := m(iter, cost, cfg)
			out.Stop = out.Stop || d.Stop
			out.Restart = out.Restart || d.Restart
			if out.SetConfig == nil {
				out.SetConfig = d.SetConfig
			}
		}
		return out
	}
}

// aggregate folds per-walker stats into a Result using the given winner
// rule. Winner carries the *global* walker identity (stats[w].Walker),
// which coincides with the slice index for whole-job runs.
func aggregate(stats []WalkerStat, winner func([]WalkerStat) int) Result {
	res := Result{Winner: -1, Walkers: stats}
	for _, s := range stats {
		res.TotalIterations += s.Result.Iterations
		res.Adoptions += s.Adoptions
	}
	if w := winner(stats); w >= 0 {
		res.Solved = true
		res.Winner = stats[w].Walker
		res.Solution = stats[w].Result.Solution
		res.WinnerIterations = stats[w].Result.Iterations
	}
	return res
}

// CombineShards merges the shard results of one logical total-walker
// job into the whole-job Result, exactly as if the job had run
// unsharded: Walkers is reassembled in global order, the winner is
// recomputed by the virtual rule (fewest iterations among solved
// walkers, lowest global index on ties), Completed sums the shards and
// Truncated is sticky. Every global walker index in [0, total) must be
// covered exactly once — a lost shard must be represented explicitly
// (its walkers marked Interrupted, the shard marked Truncated) rather
// than omitted, so a coordinator can never fabricate a complete run
// out of partial data.
func CombineShards(total int, shards ...Result) (Result, error) {
	if total < 1 {
		return Result{}, fmt.Errorf("multiwalk: CombineShards total must be >= 1, got %d", total)
	}
	global := make([]WalkerStat, total)
	seen := make([]bool, total)
	completed := 0
	truncated := false
	var elapsed time.Duration
	for _, sh := range shards {
		for _, ws := range sh.Walkers {
			if ws.Walker < 0 || ws.Walker >= total {
				return Result{}, fmt.Errorf("multiwalk: CombineShards: walker index %d outside job of %d walkers", ws.Walker, total)
			}
			if seen[ws.Walker] {
				return Result{}, fmt.Errorf("multiwalk: CombineShards: walker %d reported by two shards", ws.Walker)
			}
			seen[ws.Walker] = true
			global[ws.Walker] = ws
		}
		completed += sh.Completed
		truncated = truncated || sh.Truncated
		if sh.Elapsed > elapsed {
			elapsed = sh.Elapsed
		}
	}
	for w, ok := range seen {
		if !ok {
			return Result{}, fmt.Errorf("multiwalk: CombineShards: walker %d missing from every shard", w)
		}
	}
	res := aggregate(global, virtualWinner)
	res.Completed = completed
	res.Truncated = truncated
	res.Elapsed = elapsed
	return res, nil
}

// wallClockWinner picks the solved walker (post-cancellation there is
// normally exactly one; ties broken by lowest iteration count, then
// index, for determinism).
func wallClockWinner(stats []WalkerStat) int {
	return virtualWinner(stats)
}

// virtualWinner picks the solved walker with the fewest iterations.
func virtualWinner(stats []WalkerStat) int {
	best := -1
	for i, s := range stats {
		if !s.Result.Solved {
			continue
		}
		if best < 0 || s.Result.Iterations < stats[best].Result.Iterations {
			best = i
		}
	}
	return best
}
