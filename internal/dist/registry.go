package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Worker lifecycle states. A worker joins healthy, moves to suspect on
// its first missed probe or transport failure, to dead on the next, and
// back to healthy on any successful probe or heartbeat. Draining is the
// graceful-leave state: no new shards are dispatched, in-flight shards
// finish, and the worker drops out of the capacity count immediately.
type workerState int

const (
	stateHealthy workerState = iota
	stateSuspect
	stateDead
	stateDraining
)

func (s workerState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateSuspect:
		return "suspect"
	case stateDead:
		return "dead"
	case stateDraining:
		return "draining"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// workerRef is one registered worker plus its slot accounting and
// health bookkeeping. All mutable fields are guarded by registry.mu.
type workerRef struct {
	index int
	base  string
	slots int
	wire  bool // healthz/register advertised wire-frame support
	busy  int  // coordinator-side slot reservations

	state    workerState
	lastSeen time.Time // last successful probe or push heartbeat
	fails    int       // consecutive failed probes
}

// WorkerInfo describes one registered worker.
type WorkerInfo struct {
	URL   string `json:"url"`
	Slots int    `json:"slots"`
	Busy  int    `json:"busy"`
	State string `json:"state"`
}

// registry is the coordinator's fleet membership table. Join order is
// stable (index) so planning stays deterministic for a fixed fleet; a
// worker that leaves and rejoins under the same URL keeps its row.
// Capacity-affecting transitions invoke onChange (outside the lock) so
// the serving layer can resize its admission pool.
type registry struct {
	mu      sync.Mutex
	workers []*workerRef
	byURL   map[string]*workerRef

	onChange atomic.Value // func()

	mJoins    atomic.Int64
	mLeaves   atomic.Int64
	mFailures atomic.Int64 // probe/transport failures observed
}

func newRegistry() *registry {
	return &registry{byURL: make(map[string]*workerRef)}
}

// notify invokes the capacity-change callback, if any. Never called
// with r.mu held: the callback may re-enter the registry (via
// Coordinator.Slots) or take scheduler locks.
func (r *registry) notify() {
	if f, ok := r.onChange.Load().(func()); ok && f != nil {
		f()
	}
}

// setOnChange installs the capacity-change callback.
func (r *registry) setOnChange(f func()) {
	r.onChange.Store(f)
}

// upsert registers a worker (or refreshes a returning one), marking it
// healthy. Returns true when the call changed membership or capacity.
func (r *registry) upsert(base string, slots int, wireOK bool, now time.Time) bool {
	r.mu.Lock()
	w, ok := r.byURL[base]
	changed := false
	if !ok {
		w = &workerRef{index: len(r.workers), base: base}
		r.workers = append(r.workers, w)
		r.byURL[base] = w
		r.mJoins.Add(1)
		changed = true
	}
	if w.slots != slots || w.state != stateHealthy {
		changed = true
	}
	w.slots = slots
	w.wire = wireOK
	w.state = stateHealthy
	w.fails = 0
	w.lastSeen = now
	r.mu.Unlock()
	if changed {
		r.notify()
	}
	return changed
}

// heartbeat refreshes a registered worker's liveness and capability.
// Returns false for unknown workers — the agent's cue to re-register.
func (r *registry) heartbeat(base string, slots int, draining bool, now time.Time) bool {
	r.mu.Lock()
	w, ok := r.byURL[base]
	if !ok {
		r.mu.Unlock()
		return false
	}
	changed := false
	if slots >= 1 && w.slots != slots {
		w.slots = slots
		changed = true
	}
	target := stateHealthy
	if draining {
		target = stateDraining
	}
	if w.state != target {
		if target == stateDraining {
			r.mLeaves.Add(1)
		}
		w.state = target
		changed = true
	}
	w.fails = 0
	w.lastSeen = now
	r.mu.Unlock()
	if changed {
		r.notify()
	}
	return true
}

// deregister marks a worker draining: no new dispatch, in-flight shards
// finish. Returns false for unknown workers.
func (r *registry) deregister(base string) bool {
	r.mu.Lock()
	w, ok := r.byURL[base]
	if ok && w.state != stateDraining {
		w.state = stateDraining
		r.mLeaves.Add(1)
	}
	r.mu.Unlock()
	if ok {
		r.notify()
	}
	return ok
}

// reportFailure records a transport-level failure against a worker (a
// shard dispatch that died mid-flight): the worker is immediately
// suspect, and dead on a repeat. The health monitor's next successful
// probe (or a push heartbeat) brings it back.
func (r *registry) reportFailure(w *workerRef) {
	r.mFailures.Add(1)
	r.mu.Lock()
	changed := false
	switch w.state {
	case stateHealthy:
		w.state = stateSuspect
		changed = true
	case stateSuspect:
		w.state = stateDead
		changed = true
	}
	w.fails++
	r.mu.Unlock()
	if changed {
		r.notify()
	}
}

// probeOK records a successful health probe.
func (r *registry) probeOK(w *workerRef, slots int, wireOK bool, now time.Time) {
	r.mu.Lock()
	changed := w.state == stateSuspect || w.state == stateDead || w.slots != slots
	if w.state != stateDraining {
		w.state = stateHealthy
	}
	w.slots = slots
	w.wire = wireOK
	w.fails = 0
	w.lastSeen = now
	r.mu.Unlock()
	if changed {
		r.notify()
	}
}

// stale returns the workers whose lastSeen is older than maxAge — the
// monitor's probe targets. Draining workers are skipped (they are
// leaving; their health no longer gates anything).
func (r *registry) stale(maxAge time.Duration, now time.Time) []*workerRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*workerRef
	for _, w := range r.workers {
		if w.state == stateDraining {
			continue
		}
		if now.Sub(w.lastSeen) >= maxAge {
			out = append(out, w)
		}
	}
	return out
}

// capacity is the fleet's dispatchable walker-slot total: healthy and
// suspect workers count (suspect is a transient, usually recoverable
// state), dead and draining do not.
func (r *registry) capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, w := range r.workers {
		if w.state == stateHealthy || w.state == stateSuspect {
			total += w.slots
		}
	}
	return total
}

// size returns the total number of registered workers (any state).
func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.workers)
}

// snapshot returns the fleet table for diagnostics.
func (r *registry) snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, len(r.workers))
	for i, w := range r.workers {
		out[i] = WorkerInfo{URL: w.base, Slots: w.slots, Busy: w.busy, State: w.state.String()}
	}
	return out
}

// counts tallies workers per state for the metrics map.
func (r *registry) counts() (healthy, suspect, dead, draining int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.workers {
		switch w.state {
		case stateHealthy:
			healthy++
		case stateSuspect:
			suspect++
		case stateDead:
			dead++
		case stateDraining:
			draining++
		}
	}
	return
}

// dispatchable re-validates a worker at dispatch time: its current
// health and wire capability, read fresh from the registry rather than
// from the plan-time snapshot. Suspect workers stay dispatchable — the
// in-flight failure that made them suspect may have been another job's
// — but dead and draining workers are not.
func (r *registry) dispatchable(w *workerRef) (wireOK, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return w.wire, w.state == stateHealthy || w.state == stateSuspect
}
