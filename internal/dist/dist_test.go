package dist

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// fleet is a test harness: n in-process workers behind httptest
// servers plus a coordinator over them.
type fleet struct {
	workers []*Worker
	servers []*httptest.Server
	coord   *Coordinator
}

func newFleet(t *testing.T, slots ...int) *fleet {
	t.Helper()
	f := &fleet{}
	urls := make([]string, 0, len(slots))
	for _, s := range slots {
		wk := NewWorker(WorkerConfig{Slots: s})
		srv := httptest.NewServer(wk.Handler())
		f.workers = append(f.workers, wk)
		f.servers = append(f.servers, srv)
		urls = append(urls, srv.URL)
	}
	coord, err := NewCoordinator(CoordinatorConfig{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	t.Cleanup(func() {
		f.coord.Close()
		for i := range f.servers {
			f.servers[i].Close()
			f.workers[i].Close()
		}
	})
	return f
}

func tunedEngine(t *testing.T, name string, size int) core.Options {
	t.Helper()
	p, err := problems.New(name, size)
	if err != nil {
		t.Fatal(err)
	}
	return core.TunedOptions(p)
}

// sameWalkers asserts per-walker bit-for-bit equality modulo wall
// clock.
func sameWalkers(t *testing.T, label string, local, distd []multiwalk.WalkerStat) {
	t.Helper()
	if len(local) != len(distd) {
		t.Fatalf("%s: %d local walkers vs %d distributed", label, len(local), len(distd))
	}
	for w := range local {
		a, b := local[w], distd[w]
		a.Result.Elapsed, b.Result.Elapsed = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: walker %d diverged:\nlocal: %+v\ndist:  %+v", label, w, a, b)
		}
	}
}

// TestDistributedVirtualMatrix is the acceptance matrix: for >= 3
// problems x 3 strategies, the distributed virtual run over a
// heterogeneous 3-worker fleet reproduces the single-process
// RunVirtual bit-for-bit — winner walker index, winner entry, winner
// iterations, and every per-walker statistic.
func TestDistributedVirtualMatrix(t *testing.T) {
	f := newFleet(t, 2, 2, 1)
	problemsUnderTest := []struct {
		name string
		size int
	}{
		{"magic-square", 5},
		{"costas", 9},
		{"all-interval", 10},
	}
	strategies := []string{core.StrategyAdaptive, core.StrategyRandomWalk, core.StrategyMetropolis}
	const k = 5
	for _, pt := range problemsUnderTest {
		for _, strat := range strategies {
			t.Run(pt.name+"/"+strat, func(t *testing.T) {
				engine := tunedEngine(t, pt.name, pt.size)
				engine.Strategy = strat
				engine.MaxIterations = 2000
				engine.MaxRuns = 1
				seed := uint64(0xC0FFEE) ^ uint64(len(pt.name))<<8 ^ uint64(len(strat))

				factory, err := problems.NewFactory(pt.name, pt.size)
				if err != nil {
					t.Fatal(err)
				}
				local, err := multiwalk.RunVirtual(context.Background(), multiwalk.Factory(factory), multiwalk.Options{
					Walkers: k, Seed: seed, Engine: engine,
				})
				if err != nil {
					t.Fatal(err)
				}
				distd, err := f.coord.RunVirtual(context.Background(), JobSpec{
					Problem: pt.name, Size: pt.size, Walkers: k, Seed: seed, Engine: engine,
				})
				if err != nil {
					t.Fatal(err)
				}
				if local.Winner != distd.Winner || local.WinnerIterations != distd.WinnerIterations ||
					local.Solved != distd.Solved || local.TotalIterations != distd.TotalIterations ||
					local.Completed != distd.Completed || local.Truncated != distd.Truncated {
					t.Fatalf("aggregate diverged:\nlocal: %+v\ndist:  %+v", local, distd)
				}
				if !reflect.DeepEqual(local.Solution, distd.Solution) {
					t.Fatalf("solution diverged")
				}
				sameWalkers(t, pt.name+"/"+strat, local.Walkers, distd.Walkers)
			})
		}
	}
}

// TestDistributedMixedPortfolio is the race-enabled integration test:
// a mixed-strategy portfolio job over coordinator + 3 in-process
// workers. It asserts zero dropped walkers, correct global walker
// indices and entry assignments, and a virtual winner identical to the
// single-process RunVirtual.
func TestDistributedMixedPortfolio(t *testing.T) {
	f := newFleet(t, 2, 2, 2)
	const k = 6
	engine := tunedEngine(t, "costas", 9)
	engine.MaxIterations = 3000
	engine.MaxRuns = 1
	entryMetro := engine
	entryMetro.Strategy = core.StrategyMetropolis
	entryRW := engine
	entryRW.Strategy = core.StrategyRandomWalk
	portfolio := []multiwalk.PortfolioEntry{
		{Weight: 3, Engine: engine},
		{Weight: 2, Engine: entryMetro},
		{Weight: 1, Engine: entryRW},
	}
	job := JobSpec{Problem: "costas", Size: 9, Walkers: k, Seed: 2012, Engine: engine, Portfolio: portfolio}

	// Virtual mode: deterministic equality against the local run.
	factory, err := problems.NewFactory("costas", 9)
	if err != nil {
		t.Fatal(err)
	}
	local, err := multiwalk.RunVirtual(context.Background(), multiwalk.Factory(factory), multiwalk.Options{
		Walkers: k, Seed: 2012, Engine: engine, Portfolio: portfolio,
	})
	if err != nil {
		t.Fatal(err)
	}
	distd, err := f.coord.RunVirtual(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if distd.Winner != local.Winner || distd.WinnerIterations != local.WinnerIterations || distd.Solved != local.Solved {
		t.Fatalf("virtual winner diverged: local %d/%d, dist %d/%d",
			local.Winner, local.WinnerIterations, distd.Winner, distd.WinnerIterations)
	}
	sameWalkers(t, "virtual portfolio", local.Walkers, distd.Walkers)

	// Wall-clock mode: every walker accounted for, with its global
	// identity and weighted round-robin entry, across whatever shard
	// boundaries the planner chose.
	res, err := f.coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Walkers) != k {
		t.Fatalf("dropped walkers: got %d of %d stats", len(res.Walkers), k)
	}
	wantEntries := []int{0, 0, 0, 1, 1, 2}
	for w, ws := range res.Walkers {
		if ws.Walker != w {
			t.Fatalf("walker %d carries global index %d", w, ws.Walker)
		}
		if ws.Entry != wantEntries[w] {
			t.Fatalf("walker %d assigned entry %d, want %d", w, ws.Entry, wantEntries[w])
		}
		if ws.Entry >= 0 && ws.Result.Strategy != "" && ws.Result.Strategy != portfolio[ws.Entry].Engine.Strategy {
			// Engines resolve "" to the default name; any named result
			// must match its entry's strategy.
			if !(portfolio[ws.Entry].Engine.Strategy == "" && ws.Result.Strategy == core.StrategyAdaptive) {
				t.Fatalf("walker %d ran strategy %q for entry %d (%q)", w, ws.Result.Strategy, ws.Entry, portfolio[ws.Entry].Engine.Strategy)
			}
		}
	}
	if res.Solved {
		if res.Winner < 0 || res.Winner >= k {
			t.Fatalf("winner index %d out of range", res.Winner)
		}
		if !res.Walkers[res.Winner].Result.Solved {
			t.Fatalf("winner %d is not a solved walker", res.Winner)
		}
		if res.Truncated {
			t.Fatalf("solved wall-clock run reported Truncated: %+v", res)
		}
	}
}

// lossyWorker pretends to be a worker (valid healthz) but drops the
// connection mid-run without a response — a worker crash as the
// coordinator observes it.
func lossyWorker(t *testing.T, slots int, started chan<- struct{}) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "slots": slots})
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		select {
		case started <- struct{}{}:
		default:
		}
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("test server does not support hijacking")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			return
		}
		conn.Close()
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestWorkerLossSurfacesAsTruncated covers the no-recovery contract
// (RecoverAttempts < 0, or no surviving capacity): losing a worker
// mid-run must yield a Truncated result whose lost walkers are
// explicitly Interrupted — never a fabricated complete run — while the
// surviving shard's stats are kept. Recovery-enabled fleets re-run the
// lost shard instead; see TestShardRecoveryDeterminism.
func TestWorkerLossSurfacesAsTruncated(t *testing.T) {
	healthy := NewWorker(WorkerConfig{Slots: 2})
	healthySrv := httptest.NewServer(healthy.Handler())
	t.Cleanup(func() { healthySrv.Close(); healthy.Close() })
	started := make(chan struct{}, 1)
	lossy := lossyWorker(t, 2, started)

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:         []string{healthySrv.URL, lossy.URL},
		RecoverAttempts: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	// An instance neither walker can solve inside its budget, so the
	// healthy shard always runs to completion unsolved.
	engine := tunedEngine(t, "costas", 16)
	engine.MaxIterations = 1500
	engine.MaxRuns = 1
	res, err := coord.Run(context.Background(), JobSpec{
		Problem: "costas", Size: 16, Walkers: 4, Seed: 99, Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatalf("worker loss did not surface as Truncated: %+v", res)
	}
	if res.Solved {
		t.Fatalf("lost run fabricated a solution: %+v", res)
	}
	if len(res.Walkers) != 4 {
		t.Fatalf("expected all 4 walker identities, got %d", len(res.Walkers))
	}
	if res.Completed != 2 {
		t.Fatalf("Completed = %d, want 2 (only the healthy shard ran)", res.Completed)
	}
	lost := 0
	for w, ws := range res.Walkers {
		if ws.Walker != w {
			t.Fatalf("walker %d carries global index %d", w, ws.Walker)
		}
		if ws.Result.Iterations == 0 {
			lost++
			if !ws.Result.Interrupted || ws.Result.Cost != core.CostUnknown {
				t.Fatalf("lost walker %d not marked empty+Interrupted: %+v", w, ws.Result)
			}
		}
	}
	if lost != 2 {
		t.Fatalf("expected 2 lost walkers, found %d", lost)
	}
}

// TestMidRunCancelSurfacesAsTruncated: cancelling the coordinator's
// context mid-run yields Truncated, not a fabricated result, and the
// workers' slots drain.
func TestMidRunCancelSurfacesAsTruncated(t *testing.T) {
	f := newFleet(t, 2, 2)
	engine := tunedEngine(t, "costas", 18)
	engine.MaxRuns = 0 // unlimited restarts: only the context ends it
	engine.CheckEvery = 16
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res, err := f.coord.Run(ctx, JobSpec{Problem: "costas", Size: 18, Walkers: 4, Seed: 5, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Solved {
		t.Fatalf("cancelled run: want Truncated unsolved, got %+v", res)
	}
	// The reservation release is synchronous with run() returning; the
	// worker side may need a beat for its handler to unwind.
	for _, wi := range f.coord.Workers() {
		if wi.Busy != 0 {
			t.Fatalf("coordinator slot leak: %+v", wi)
		}
	}
}

// TestFirstSolutionCancelsOtherWorkers: in wall-clock mode a solved
// shard triggers cancel RPCs, and the other workers' walkers come back
// interrupted rather than running out their budgets.
func TestFirstSolutionCancelsOtherWorkers(t *testing.T) {
	f := newFleet(t, 1, 1)
	// Walker 0 (worker A) solves a trivial instance immediately; walker
	// 1 (worker B) would burn an enormous budget if not cancelled.
	engine := tunedEngine(t, "queens", 30)
	engine.MaxRuns = 0
	engine.CheckEvery = 8
	start := time.Now()
	res, err := f.coord.Run(context.Background(), JobSpec{Problem: "queens", Size: 30, Walkers: 2, Seed: 1, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("queens-30 not solved: %+v", res)
	}
	if res.Truncated {
		t.Fatalf("normal first-solution completion flagged Truncated")
	}
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("cross-worker cancellation too slow: %v", el)
	}
}

// TestWorkerRejectsOverCapacityAndDuplicates covers the worker-side
// guards a well-behaved coordinator never trips.
func TestWorkerRejectsOverCapacityAndDuplicates(t *testing.T) {
	wk := NewWorker(WorkerConfig{Slots: 1})
	srv := httptest.NewServer(wk.Handler())
	t.Cleanup(func() { srv.Close(); wk.Close() })

	run := func(id string, count int) *http.Response {
		body, _ := json.Marshal(RunRequest{
			ID: id, Mode: ModeRun, Problem: "queens", Size: 16, Seed: 3,
			TotalWalkers: 4, Start: 0, Count: count,
			Engine: EngineSpec{MaxIterations: 500, MaxRuns: 1},
		})
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := run("over", 2); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity run: status %d, want 429", resp.StatusCode)
	}
	if resp := run("ok", 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("in-capacity run: status %d, want 200", resp.StatusCode)
	}
	// The first "ok" run has finished (the response arrived), so its id
	// is free again and a reuse is accepted; an *in-flight* duplicate is
	// exercised through the decode-level unit below instead, keeping
	// this test free of timing assumptions.
	resp := run("ok", 1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sequential id reuse: status %d, want 200", resp.StatusCode)
	}

	// Regression: a shard whose start+count overflows int must die in
	// validation (400), not reach the run path and panic the handler
	// on a giant stats allocation.
	overflow := `{"id":"ovf","mode":"virtual","problem":"queens","size":8,"total_walkers":4,` +
		`"start":4611686018427387904,"count":4611686018427387904,"engine":{"max_iterations":100}}`
	oresp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(overflow))
	if err != nil {
		t.Fatalf("overflow request killed the connection: %v", err)
	}
	if oresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("overflow shard: status %d, want 400", oresp.StatusCode)
	}
}

// TestDecodeRunRequestTypedErrors pins the decoder's typed-error
// contract (the fuzz target asserts the same property on arbitrary
// input).
func TestDecodeRunRequestTypedErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"id":"x","mode":"warp","problem":"queens","total_walkers":1,"count":1}`,
		`{"id":"x","mode":"run","problem":"no-such-problem","total_walkers":1,"count":1}`,
		`{"id":"x","mode":"run","problem":"queens","total_walkers":2,"start":1,"count":2}`,
		// start+count overflows int; the range check must not wrap.
		`{"id":"x","mode":"virtual","problem":"queens","total_walkers":4,"start":4611686018427387904,"count":4611686018427387904}`,
		`{"id":"","mode":"run","problem":"queens","total_walkers":1,"count":1}`,
		`{"id":"x","mode":"run","problem":"queens","total_walkers":1,"count":1,"engine":{"strategy":"nope"}}`,
		`{"id":"x","mode":"run","problem":"queens","total_walkers":1,"count":1,"engine":{"reset_fraction":2}}`,
		`{"id":"x","mode":"run","problem":"queens","total_walkers":1,"count":1,"portfolio":[{"weight":-1,"engine":{}}]}`,
	}
	for _, raw := range cases {
		if _, err := DecodeRunRequest(strings.NewReader(raw)); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("input %q: error %v does not wrap ErrBadRequest", raw, err)
		}
	}
	valid := `{"id":"x","mode":"virtual","problem":"queens","size":10,"total_walkers":3,"start":1,"count":2,"engine":{"max_iterations":100}}`
	if _, err := DecodeRunRequest(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

// TestCoordinatorRejectsUnplaceableJob: a job wider than the fleet's
// free capacity fails fast with ErrNoCapacity.
func TestCoordinatorRejectsUnplaceableJob(t *testing.T) {
	f := newFleet(t, 1, 1)
	engine := tunedEngine(t, "queens", 16)
	_, err := f.coord.Run(context.Background(), JobSpec{Problem: "queens", Size: 16, Walkers: 3, Seed: 1, Engine: engine})
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("got %v, want ErrNoCapacity", err)
	}
}

// TestCoordinatorRejectsMonitors: process-local hooks cannot ship.
func TestCoordinatorRejectsMonitors(t *testing.T) {
	f := newFleet(t, 2)
	engine := tunedEngine(t, "queens", 16)
	engine.Monitor = func(int64, int, []int) core.Directive { return core.Directive{} }
	if _, err := f.coord.Run(context.Background(), JobSpec{Problem: "queens", Size: 16, Walkers: 1, Seed: 1, Engine: engine}); err == nil {
		t.Fatal("Monitor-carrying job accepted")
	}
}

func TestServiceBackendContract(t *testing.T) {
	// Compile-time: *Coordinator satisfies service.Backend (asserted
	// here rather than in service to keep the packages decoupled).
	var _ interface {
		Name() string
		Slots() int
		Close()
	} = (*Coordinator)(nil)
}

// TestDistributedFDProblem is the finite-domain acceptance test: a
// sharded timetable job — with explicit problem params shipped in the
// run request — reproduces the single-process virtual run bit for bit,
// and a dependent (exchange) run cooperates across workers on the FD
// encoding without tripping the board's configuration verification.
func TestDistributedFDProblem(t *testing.T) {
	f := newFleet(t, 2, 2, 1)
	params := map[string]int{"slots": 6, "rooms": 4, "teachers": 4}
	const size, k = 20, 5
	engine := func() core.Options {
		p, err := problems.NewWithParams("timetable", size, params)
		if err != nil {
			t.Fatal(err)
		}
		eo := core.TunedOptions(p)
		eo.MaxIterations = 2000
		eo.MaxRuns = 1
		return eo
	}()
	seed := uint64(0xFD2012)

	factory, err := problems.NewFactoryParams("timetable", size, params)
	if err != nil {
		t.Fatal(err)
	}
	local, err := multiwalk.RunVirtual(context.Background(), multiwalk.Factory(factory), multiwalk.Options{
		Walkers: k, Seed: seed, Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	distd, err := f.coord.RunVirtual(context.Background(), JobSpec{
		Problem: "timetable", Size: size, Params: params, Walkers: k, Seed: seed, Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if local.Winner != distd.Winner || local.Solved != distd.Solved ||
		local.TotalIterations != distd.TotalIterations {
		t.Fatalf("FD aggregate diverged:\nlocal: %+v\ndist:  %+v", local, distd)
	}
	if !reflect.DeepEqual(local.Solution, distd.Solution) {
		t.Fatalf("FD solution diverged")
	}
	sameWalkers(t, "timetable", local.Walkers, distd.Walkers)

	// Unknown params are a typed protocol rejection at the worker.
	_, err = f.coord.RunVirtual(context.Background(), JobSpec{
		Problem: "timetable", Size: size, Params: map[string]int{"professors": 1}, Walkers: 1, Seed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "professors") {
		t.Fatalf("bad params accepted by fleet: %v", err)
	}

	// Dependent run: cross-worker cooperation on the FD encoding. The
	// board probe must verify FD configurations (not permutations) or
	// every publish would be rejected.
	exch, err := f.coord.Run(context.Background(), JobSpec{
		Problem: "timetable", Size: size, Params: params, Walkers: 4, Seed: seed,
		Engine:   engine,
		Exchange: multiwalk.ExchangeOptions{Enabled: true, Period: 16, AdoptFactor: 1.5, PerturbSwaps: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exch.Solved {
		t.Fatalf("dependent FD fleet run unsolved: %+v", exch)
	}
	probe, err := problems.NewWithParams("timetable", size, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateFDConfig(probe.(core.FDProblem), exch.Solution); err != nil {
		t.Fatalf("fleet solution outside domains: %v", err)
	}
}
