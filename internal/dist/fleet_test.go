package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
)

// TestRegistryStateMachine pins the worker lifecycle: healthy on join,
// suspect on the first failure, dead on the second, revived by a
// successful probe, draining on deregister — and the capacity /
// dispatchability consequences of each state.
func TestRegistryStateMachine(t *testing.T) {
	r := newRegistry()
	now := time.Now()
	if !r.upsert("http://a", 4, true, now) {
		t.Fatal("first upsert reported no change")
	}
	w := r.workers[0]
	if r.capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", r.capacity())
	}
	if _, ok := r.dispatchable(w); !ok {
		t.Fatal("healthy worker not dispatchable")
	}

	r.reportFailure(w)
	if w.state != stateSuspect {
		t.Fatalf("after one failure: %v, want suspect", w.state)
	}
	if r.capacity() != 4 {
		t.Fatal("suspect worker must still count toward capacity")
	}
	if _, ok := r.dispatchable(w); !ok {
		t.Fatal("suspect worker must stay dispatchable")
	}

	r.reportFailure(w)
	if w.state != stateDead {
		t.Fatalf("after two failures: %v, want dead", w.state)
	}
	if r.capacity() != 0 {
		t.Fatal("dead worker still counts toward capacity")
	}
	if _, ok := r.dispatchable(w); ok {
		t.Fatal("dead worker dispatchable")
	}

	r.probeOK(w, 4, true, now)
	if w.state != stateHealthy {
		t.Fatalf("probe did not revive: %v", w.state)
	}

	if r.heartbeat("http://unknown", 1, false, now) {
		t.Fatal("heartbeat for unknown worker accepted")
	}
	if !r.heartbeat("http://a", 8, false, now) {
		t.Fatal("heartbeat for known worker rejected")
	}
	if r.capacity() != 8 {
		t.Fatalf("heartbeat did not refresh slots: capacity %d", r.capacity())
	}

	if !r.deregister("http://a") {
		t.Fatal("deregister of known worker failed")
	}
	if w.state != stateDraining || r.capacity() != 0 {
		t.Fatalf("deregistered worker: state %v capacity %d", w.state, r.capacity())
	}
	if got := r.stale(0, now.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("draining worker probed by the monitor: %v", got)
	}
	// Rejoin under the same URL keeps the row (stable planning index).
	r.upsert("http://a", 4, true, now)
	if w.state != stateHealthy || r.size() != 1 {
		t.Fatalf("rejoin: state %v, %d rows", w.state, r.size())
	}
}

// TestFleetRegistrationLifecycle drives the coordinator's HTTP fleet
// endpoints end to end: register (with the probe-back), the membership
// table, heartbeats — including the 404 that cues re-registration —
// and graceful deregistration.
func TestFleetRegistrationLifecycle(t *testing.T) {
	wk := NewWorker(WorkerConfig{Slots: 3})
	wkSrv := httptest.NewServer(wk.Handler())
	t.Cleanup(func() { wkSrv.Close(); wk.Close() })

	coord, err := NewCoordinator(CoordinatorConfig{Dynamic: true, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	fleetSrv := httptest.NewServer(coord.FleetHandler())
	t.Cleanup(fleetSrv.Close)

	post := func(path string, body any) *http.Response {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(fleetSrv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if coord.Slots() != 0 {
		t.Fatalf("empty dynamic fleet reports %d slots", coord.Slots())
	}
	if resp := post("/v1/fleet/register", RegisterRequest{URL: wkSrv.URL}); resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	if coord.Slots() != 3 {
		t.Fatalf("after register: %d slots, want 3 (probed back)", coord.Slots())
	}

	var table struct {
		Workers []WorkerInfo `json:"workers"`
	}
	resp, err := http.Get(fleetSrv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&table); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(table.Workers) != 1 || table.Workers[0].State != "healthy" || table.Workers[0].Slots != 3 {
		t.Fatalf("fleet table: %+v", table.Workers)
	}

	if resp := post("/v1/fleet/heartbeat", HeartbeatRequest{URL: "http://nobody.invalid:1"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat: status %d, want 404 (re-register cue)", resp.StatusCode)
	}
	if resp := post("/v1/fleet/heartbeat", HeartbeatRequest{URL: wkSrv.URL, Slots: 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("known heartbeat: status %d", resp.StatusCode)
	}

	if resp := post("/v1/fleet/deregister", map[string]string{"url": wkSrv.URL}); resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", resp.StatusCode)
	}
	if coord.Slots() != 0 {
		t.Fatalf("draining worker still counted: %d slots", coord.Slots())
	}
	if ws := coord.Workers(); len(ws) != 1 || ws[0].State != "draining" {
		t.Fatalf("after deregister: %+v", ws)
	}
}

// TestFleetAgentLifecycle runs the worker-side agent against a real
// coordinator: enrollment (with retry until the heartbeat loop is up),
// capacity-change notification into the serving layer's callback, and
// drain-on-close.
func TestFleetAgentLifecycle(t *testing.T) {
	wk := NewWorker(WorkerConfig{Slots: 2})
	wkSrv := httptest.NewServer(wk.Handler())
	t.Cleanup(func() { wkSrv.Close(); wk.Close() })

	coord, err := NewCoordinator(CoordinatorConfig{Dynamic: true, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	fleetSrv := httptest.NewServer(coord.FleetHandler())
	t.Cleanup(fleetSrv.Close)

	notified := make(chan struct{}, 16)
	coord.NotifyCapacity(func() {
		select {
		case notified <- struct{}{}:
		default:
		}
	})

	agent, err := NewFleetAgent(AgentConfig{
		Coordinator: fleetSrv.URL,
		Advertise:   wkSrv.URL,
		Worker:      wk,
		Interval:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (fleet: %+v)", what, coord.Workers())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("enrollment", func() bool { return coord.Slots() == 2 })
	select {
	case <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("capacity callback never fired on join")
	}

	agent.Close()
	waitFor("drain", func() bool {
		ws := coord.Workers()
		return len(ws) == 1 && ws[0].State == "draining"
	})
	if coord.Slots() != 0 {
		t.Fatalf("drained worker still counted: %d slots", coord.Slots())
	}
}

// hungWorker answers nothing: every request stalls until the client
// gives up. It stands in for a worker wedged hard enough that even
// /healthz hangs.
func hungWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(30 * time.Second):
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestProbeTimeoutIsPerProbe: a hung worker's health probe must fail
// within ProbeTimeout — independent of any job deadline — both at
// static enrollment and on the dynamic registration path.
func TestProbeTimeoutIsPerProbe(t *testing.T) {
	hung := hungWorker(t)

	start := time.Now()
	if _, err := NewCoordinator(CoordinatorConfig{
		Workers:      []string{hung.URL},
		ProbeTimeout: 50 * time.Millisecond,
	}); err == nil {
		t.Fatal("hung worker enrolled")
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("static enrollment probe not bounded by ProbeTimeout: took %v", el)
	}

	coord, err := NewCoordinator(CoordinatorConfig{
		Dynamic:           true,
		ProbeTimeout:      50 * time.Millisecond,
		HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	fleetSrv := httptest.NewServer(coord.FleetHandler())
	t.Cleanup(fleetSrv.Close)

	raw, _ := json.Marshal(RegisterRequest{URL: hung.URL})
	start = time.Now()
	resp, err := http.Post(fleetSrv.URL+"/v1/fleet/register", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("register probe-back not bounded by ProbeTimeout: took %v", el)
	}
	if resp.StatusCode == http.StatusOK {
		t.Fatal("unreachable worker enrolled")
	}
	if coord.Slots() != 0 {
		t.Fatalf("hung worker counted: %d slots", coord.Slots())
	}
}

// TestDispatchRevalidatesWorker covers the stale-capability window: a
// worker that dies between plan time and dispatch time must be caught
// by the registry re-check — the shard reports lost (feeding recovery)
// without a doomed HTTP round trip, and the failover counter moves.
func TestDispatchRevalidatesWorker(t *testing.T) {
	runs := 0
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "slots": 2})
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		runs++
		http.Error(w, "should never be reached", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	coord, err := NewCoordinator(CoordinatorConfig{Workers: []string{srv.URL}, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	// The plan-time snapshot said healthy; the worker dies before the
	// shard goes out.
	w := coord.reg.workers[0]
	coord.reg.reportFailure(w)
	coord.reg.reportFailure(w)

	a := assignment{worker: w, start: 0, count: 1, reserved: 1, runID: "stale-1"}
	out := coord.runShard(context.Background(), &a, RunRequest{
		ID: a.runID, Mode: ModeRun, Problem: "queens", Size: 8,
		TotalWalkers: 1, Count: 1, Engine: EngineSpec{MaxIterations: 10, MaxRuns: 1},
	})
	if !out.lost || out.err != nil {
		t.Fatalf("dead-at-dispatch shard: %+v, want lost", out)
	}
	if runs != 0 {
		t.Fatalf("dispatch hit a dead worker %d times", runs)
	}
	if got := coord.BackendMetrics()["dispatch_failovers"]; got != 1 {
		t.Fatalf("dispatch_failovers = %d, want 1", got)
	}
}

// TestShardRecoveryDeterminism is the acceptance matrix for elastic
// recovery: for several problem x strategy combinations, a fleet that
// loses a worker mid-run re-executes the lost shard on the survivors
// and produces a result bit-for-bit identical to a fleet that never
// failed — global walker identity makes the re-run exact, so worker
// loss is invisible in the statistics (Truncated=false, no walker
// missing, no cost fabricated).
func TestShardRecoveryDeterminism(t *testing.T) {
	cases := []struct {
		problem string
		size    int
		strat   string
	}{
		{"costas", 16, core.StrategyAdaptive},
		{"costas", 16, core.StrategyMetropolis},
		{"costas", 16, core.StrategyRandomWalk},
		{"all-interval", 24, core.StrategyMetropolis},
	}
	for _, tc := range cases {
		t.Run(tc.problem+"/"+tc.strat, func(t *testing.T) {
			engine := tunedEngine(t, tc.problem, tc.size)
			engine.Strategy = tc.strat
			engine.MaxIterations = 1500
			engine.MaxRuns = 1
			job := JobSpec{Problem: tc.problem, Size: tc.size, Walkers: 4, Seed: 1234, Engine: engine}

			// Ground truth: a fleet that never fails.
			baseline := newFleet(t, 2, 2)
			want, err := baseline.coord.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if want.Solved {
				// First-solution cancellation interrupts the losers at
				// wall-clock-dependent points; the bit-for-bit contract
				// only holds for budget-bounded unsolved runs.
				t.Fatalf("precondition: instance solved within budget; pick a harder one")
			}

			// Lossy fleet: the first worker takes walkers [0,2) and
			// drops the connection mid-run.
			started := make(chan struct{}, 1)
			lossy := lossyWorker(t, 2, started)
			survivorA := NewWorker(WorkerConfig{Slots: 2})
			srvA := httptest.NewServer(survivorA.Handler())
			survivorB := NewWorker(WorkerConfig{Slots: 2})
			srvB := httptest.NewServer(survivorB.Handler())
			t.Cleanup(func() { srvA.Close(); survivorA.Close(); srvB.Close(); survivorB.Close() })

			coord, err := NewCoordinator(CoordinatorConfig{
				Workers:           []string{lossy.URL, srvA.URL, srvB.URL},
				HeartbeatInterval: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(coord.Close)

			got, err := coord.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if got.Truncated {
				t.Fatalf("recoverable worker loss still truncated: %+v", got)
			}
			if got.Completed != 4 || len(got.Walkers) != 4 {
				t.Fatalf("recovered run incomplete: %d completed of %d stats", got.Completed, len(got.Walkers))
			}
			sameWalkers(t, tc.problem+"/"+tc.strat, want.Walkers, got.Walkers)
			m := coord.BackendMetrics()
			if m["shards_lost"] < 1 || m["shards_recovered"] < 1 || m["walkers_recovered"] < 2 {
				t.Fatalf("recovery not visible in metrics: %v", m)
			}
			if m["jobs_truncated_by_loss"] != 0 {
				t.Fatalf("recovered job counted as truncated: %v", m)
			}
		})
	}
}

// TestShardRecoveryExchangeInvariants: recovery under the dependent
// (exchange) scheme cannot be bit-for-bit — adoptions depend on
// wall-clock interleaving — so the contract is invariant-pinned: the
// recovered run is un-truncated, every walker ran and reports a real
// cost, and the recovery is visible in the metrics.
func TestShardRecoveryExchangeInvariants(t *testing.T) {
	started := make(chan struct{}, 1)
	lossy := lossyWorker(t, 1, started)
	survivor := NewWorker(WorkerConfig{Slots: 2})
	srv := httptest.NewServer(survivor.Handler())
	t.Cleanup(func() { srv.Close(); survivor.Close() })

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           []string{lossy.URL, srv.URL},
		BoardSync:         2 * time.Millisecond,
		HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	engine := tunedEngine(t, "costas", 16)
	engine.MaxIterations = 2000
	engine.MaxRuns = 1
	engine.CheckEvery = 16
	res, err := coord.Run(context.Background(), JobSpec{
		Problem: "costas", Size: 16, Walkers: 3, Seed: 7, Engine: engine,
		Exchange: multiwalk.ExchangeOptions{Enabled: true, Period: 16, AdoptFactor: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("recoverable loss mid-exchange still truncated: %+v", res)
	}
	if res.Completed != 3 || len(res.Walkers) != 3 {
		t.Fatalf("recovered exchange run incomplete: %+v", res)
	}
	for _, ws := range res.Walkers {
		if ws.Result.Iterations == 0 || ws.Result.Cost == core.CostUnknown {
			t.Fatalf("walker %d carries no real work after recovery: %+v", ws.Walker, ws)
		}
	}
	if m := coord.BackendMetrics(); m["walkers_recovered"] < 1 {
		t.Fatalf("recovery not visible in metrics: %v", m)
	}
}
