package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// streamHandshakeTimeout bounds the wire handshake on both sides. A
// peer that cannot exchange two tiny Hello frames in this window is
// not going to carry board deltas either.
const streamHandshakeTimeout = 10 * time.Second

// ---------------------------------------------------------------------
// Hub side: the coordinator's streaming board listener.

// ensureStream starts the hub's stream listener on first use and
// returns the advertised host:port workers dial (RunRequest.
// BoardStream). Like the HTTP board server it is lazy: fleets that
// never negotiate streaming open no port.
func (h *boardHub) ensureStream() (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sln != nil {
		return h.streamBase, nil
	}
	addr := h.streamAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("dist: starting board stream listener on %s: %w", addr, err)
	}
	h.sln = ln
	h.streamBase = ln.Addr().String()
	go h.acceptStreams(ln)
	return h.streamBase, nil
}

// acceptStreams runs the stream listener's accept loop until the
// listener is closed (hub shutdown).
func (h *boardHub) acceptStreams(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := wire.NewConn(nc)
		h.mu.Lock()
		if h.sln == nil {
			// Shut down between Accept and registration.
			h.mu.Unlock()
			_ = c.Close()
			return
		}
		h.conns[c] = struct{}{}
		h.mu.Unlock()
		go h.serveStream(c)
	}
}

// serveStream drives one worker connection: handshake, then a frame
// loop multiplexing any number of job subscriptions and publishes.
// Publishes share the HTTP path's verification (boardEntry.merge) and
// improvements broadcast to every subscriber — including the
// publisher, whose echo carries the new generation.
func (h *boardHub) serveStream(c *wire.Conn) {
	defer h.dropStreamConn(c)
	if _, err := c.AcceptHandshake("board-hub", streamHandshakeTimeout); err != nil {
		return
	}
	for {
		typ, payload, err := c.ReadFrame()
		if err != nil {
			return
		}
		switch typ {
		case wire.TypeSubscribe:
			sub, err := wire.DecodeSubscribe(payload)
			if err != nil {
				return
			}
			entry := h.lookup(sub.Job)
			if entry == nil {
				// Unknown job: benign (the job may have just finished).
				// Nothing to subscribe to; the worker's cache simply
				// stays local.
				continue
			}
			entry.mu.Lock()
			entry.subs[c] = struct{}{}
			entry.mu.Unlock()
			// Seed the subscriber with the current global state so a
			// late-joining shard adopts the leaders' elite immediately.
			cost, cfg, ok, gen := entry.state()
			if err := c.WriteBoardSync(&wire.BoardSync{Job: sub.Job, Valid: ok, Cost: int64(cost), Gen: gen, Cfg: cfg}); err != nil {
				return
			}
		case wire.TypeBoardSync:
			m, err := wire.DecodeBoardSync(payload)
			if err != nil {
				return
			}
			entry := h.lookup(m.Job)
			if entry == nil {
				continue
			}
			improved, err := entry.merge(m.Valid, int(m.Cost), m.Cfg)
			if err != nil {
				// A rejected claim (failed verification) does not
				// poison the connection: other jobs multiplexed on it
				// are fine, and the publisher degrades to its own walk.
				continue
			}
			if improved {
				h.broadcast(m.Job, entry)
			}
		case wire.TypeShardProgress:
			sp, err := wire.DecodeShardProgress(payload)
			if err != nil {
				return
			}
			if cb := h.onShardProgress; cb != nil {
				cb(sp.Run, sp.Iters, sp.Walkers, sp.Best)
			}
		default:
			// Unknown frame types are skipped for forward compatibility.
		}
	}
}

// broadcast pushes the entry's current state to every stream
// subscriber of the job. Writes happen outside the entry lock (each
// wire.Conn serializes its own writes under a deadline); a subscriber
// that cannot be written to is dropped by closing its connection,
// which unwinds its serve loop.
func (h *boardHub) broadcast(jobID string, entry *boardEntry) {
	entry.mu.Lock()
	cost, cfg, ok := entry.board.Snapshot()
	gen := entry.gen
	subs := make([]*wire.Conn, 0, len(entry.subs))
	for c := range entry.subs {
		subs = append(subs, c)
	}
	entry.mu.Unlock()
	if !ok {
		return
	}
	msg := wire.BoardSync{Job: jobID, Valid: true, Cost: int64(cost), Gen: gen, Cfg: cfg}
	for _, c := range subs {
		if err := c.WriteBoardSync(&msg); err != nil {
			_ = c.Close()
		}
	}
}

// dropStreamConn unregisters a dead connection everywhere, folding its
// byte counters into the hub totals before it goes.
func (h *boardHub) dropStreamConn(c *wire.Conn) {
	_ = c.Close()
	h.mu.Lock()
	delete(h.conns, c)
	for _, entry := range h.boards {
		entry.mu.Lock()
		delete(entry.subs, c)
		entry.mu.Unlock()
	}
	h.mu.Unlock()
	h.mRxBytes.Add(c.BytesRead())
	h.mTxBytes.Add(c.BytesWritten())
}

// severStreams closes every live stream connection while keeping the
// listener up — the failure the reconnect/fallback test injects: a
// worker's session dies mid-run and must degrade to HTTP, then
// re-dial on its next run.
func (h *boardHub) severStreams() {
	h.mu.Lock()
	conns := make([]*wire.Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// ---------------------------------------------------------------------
// Worker side: one persistent multiplexed connection per hub address.

// streamPool maintains the worker's persistent board stream
// connections, one per coordinator hub address, shared by every
// concurrent shard run against that coordinator. A dead session is
// removed from the pool; the next run re-dials.
type streamPool struct {
	mu    sync.Mutex
	conns map[string]*streamSess
}

func newStreamPool() *streamPool {
	return &streamPool{conns: make(map[string]*streamSess)}
}

// sess returns the pool's live session to the hub at addr, dialing a
// fresh connection if none exists. Shared by the board join path and
// the shard progress reporter (which needs a session without any board
// subscription).
func (p *streamPool) sess(addr string) (*streamSess, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.conns[addr]; s != nil {
		return s, nil
	}
	conn, err := wire.Dial(addr, "worker", streamHandshakeTimeout)
	if err != nil {
		return nil, err
	}
	s := &streamSess{pool: p, addr: addr, conn: conn, boards: make(map[string]*remoteBoard), dead: make(chan struct{})}
	p.conns[addr] = s
	go s.readLoop()
	return s, nil
}

// join attaches a shard run's board cache to the hub at addr,
// subscribing it to the job's delta flow. The returned session is
// shared; the caller detaches with remoteBoard.stop -> sess.leave.
func (p *streamPool) join(addr, job string, b *remoteBoard) (*streamSess, error) {
	s, err := p.sess(addr)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return nil, fmt.Errorf("dist: board stream to %s is down", addr)
	}
	s.boards[job] = b
	s.mu.Unlock()
	if err := s.conn.WriteSubscribe(job); err != nil {
		s.fail()
		s.leave(job)
		return nil, err
	}
	return s, nil
}

// close tears down every session (worker shutdown).
func (p *streamPool) close() {
	p.mu.Lock()
	sessions := make([]*streamSess, 0, len(p.conns))
	for _, s := range p.conns {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()
	for _, s := range sessions {
		s.fail()
	}
}

// streamSess is one live multiplexed connection to a hub. Its reader
// goroutine routes incoming board deltas to the subscribed caches by
// job key; writers (the caches' flush paths) go through the wire
// connection's serialized writes.
type streamSess struct {
	pool *streamPool
	addr string
	conn *wire.Conn

	mu     sync.Mutex
	boards map[string]*remoteBoard
	failed bool

	dead     chan struct{}
	deadOnce sync.Once
}

// readLoop dispatches incoming frames until the connection dies.
func (s *streamSess) readLoop() {
	for {
		typ, payload, err := s.conn.ReadFrame()
		if err != nil {
			s.fail()
			return
		}
		if typ != wire.TypeBoardSync {
			continue
		}
		m, err := wire.DecodeBoardSync(payload)
		if err != nil {
			s.fail()
			return
		}
		s.mu.Lock()
		b := s.boards[m.Job]
		s.mu.Unlock()
		if b != nil {
			b.applyGlobal(m.Valid, int(m.Cost), m.Cfg, m.Gen)
		}
	}
}

// publish pushes one local improvement for job over the stream.
func (s *streamSess) publish(job string, cost int, cfg []int, gen uint64) error {
	err := s.conn.WriteBoardSync(&wire.BoardSync{Job: job, Valid: true, Cost: int64(cost), Gen: gen, Cfg: cfg})
	if err != nil {
		s.fail()
	}
	return err
}

// reportProgress pushes one shard progress frame over the stream.
func (s *streamSess) reportProgress(run string, iters, walkers, best int64) error {
	err := s.conn.WriteShardProgress(&wire.ShardProgress{Run: run, Iters: iters, Walkers: walkers, Best: best})
	if err != nil {
		s.fail()
	}
	return err
}

// alive reports whether the session is still usable.
func (s *streamSess) alive() bool {
	select {
	case <-s.dead:
		return false
	default:
		return true
	}
}

// leave detaches a job's cache from the session. The connection stays
// up for other jobs (and future ones); job keys are coordinator-unique
// so a finished job's straggler frames route nowhere.
func (s *streamSess) leave(job string) {
	s.mu.Lock()
	delete(s.boards, job)
	s.mu.Unlock()
}

// fail marks the session dead, closes the connection, wakes every
// attached cache (their runStream loops fall back to HTTP) and removes
// the session from the pool so the next run dials fresh.
func (s *streamSess) fail() {
	s.mu.Lock()
	s.failed = true
	s.mu.Unlock()
	s.deadOnce.Do(func() { close(s.dead) })
	_ = s.conn.Close()
	s.pool.mu.Lock()
	if s.pool.conns[s.addr] == s {
		delete(s.pool.conns, s.addr)
	}
	s.pool.mu.Unlock()
}

// traffic sums the pool's live connection byte counters.
func (p *streamPool) traffic() (rx, tx int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.conns {
		rx += s.conn.BytesRead()
		tx += s.conn.BytesWritten()
	}
	return rx, tx
}
