package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
	"repro/internal/wire"
)

// CoordinatorConfig configures a coordinator over a worker fleet.
type CoordinatorConfig struct {
	// Workers lists the worker base URLs (e.g. "http://10.0.0.7:9101").
	// At least one is required; each is probed for its slot capacity at
	// construction time.
	Workers []string
	// Client is the HTTP client used for all worker traffic. nil
	// selects a dedicated client with no global timeout (run requests
	// are long-polls bounded by their context).
	Client *http.Client
	// ProbeTimeout bounds the enrollment health probe per worker. 0
	// selects 5s.
	ProbeTimeout time.Duration
	// BoardAddr is the listen address of the coordinator's global
	// exchange-board server, which workers sync against during
	// dependent (Exchange) jobs. Empty selects 127.0.0.1:0 — correct
	// for single-host fleets and tests. The server starts lazily on the
	// first exchange-enabled job, so independent-only fleets never open
	// the port.
	BoardAddr string
	// BoardAdvertise is the base URL workers use to reach the board
	// server (e.g. "http://10.0.0.1:9190"). Empty derives it from the
	// listener address; set it explicitly when workers are on other
	// hosts or behind NAT.
	BoardAdvertise string
	// BoardSync is the period at which worker-side board caches
	// reconcile with the global board. 0 lets each worker apply its
	// default (50ms).
	BoardSync time.Duration
	// Stream enables the streaming control plane: shard dispatch as
	// binary RunSpec frames and, for exchange jobs, a persistent
	// multiplexed board stream in place of the periodic POST loop.
	// Both are negotiated per worker — a worker that does not
	// advertise wire support keeps the HTTP/JSON paths — so mixed
	// fleets work with no flag coordination.
	Stream bool
	// StreamAddr is the listen address of the board stream hub. Empty
	// selects 127.0.0.1:0; set it (with a routable host) when workers
	// are on other machines. Only used when Stream is set.
	StreamAddr string
}

// JobSpec describes one distributed multi-walk job. It is the
// transportable subset of (factory, multiwalk.Options): problems are
// named, not passed as closures, and engine options must not carry
// process-local hooks (Monitor) or the in-process Exchange scheme.
type JobSpec struct {
	// Problem and Size name the benchmark instance in the shared
	// registry.
	Problem string
	Size    int
	// Params carries benchmark-specific problem parameters, shipped
	// verbatim to every shard (finite-domain benchmarks' knobs).
	Params map[string]int
	// Walkers is the whole job's walker count k.
	Walkers int
	// Seed is the master seed; walker w of the job draws seed w of the
	// master stream no matter which worker runs it.
	Seed uint64
	// Engine holds the per-walker engine options (Portfolio overrides
	// it, exactly as in multiwalk.Options).
	Engine core.Options
	// Portfolio, when non-empty, runs a heterogeneous portfolio with
	// entries assigned by global walker index.
	Portfolio []multiwalk.PortfolioEntry
	// Exchange, when Enabled, runs the job in the dependent
	// (communicating) multi-walk scheme: the coordinator hosts a global
	// elite board and every worker shard cooperates through it, so
	// adoptions cross process boundaries. Run mode only; dependent runs
	// are timing-dependent by nature (see DESIGN.md §10), unlike the
	// bit-for-bit deterministic independent modes.
	Exchange multiwalk.ExchangeOptions
}

// workerRef is one enrolled worker plus its slot accounting.
type workerRef struct {
	index int
	base  string
	slots int
	wire  bool // healthz advertised wire-frame support
	busy  int  // guarded by Coordinator.mu
}

// WorkerInfo describes an enrolled worker.
type WorkerInfo struct {
	URL   string `json:"url"`
	Slots int    `json:"slots"`
	Busy  int    `json:"busy"`
}

// Coordinator shards multi-walk jobs over a fleet of workers. It
// implements the same contract as multiwalk.Run / RunVirtual — walker
// identity, portfolio assignment and the min-iterations virtual winner
// are bit-for-bit those of the single-process run — and satisfies
// service.Backend, so a Scheduler can serve its traffic from the fleet
// (cmd/serve -workers).
type Coordinator struct {
	client *http.Client

	mu      sync.Mutex
	workers []*workerRef

	seq atomic.Uint64

	boards    *boardHub
	boardSync time.Duration
	stream    bool
}

// newFleetClient is the coordinator's default HTTP client: one shared
// transport with keep-alives and an idle pool sized to the fleet, so
// shard dispatch, cancel RPCs and health probes reuse connections
// instead of opening a fresh one per call (the default zero-value
// Client churned through ephemeral ports under load).
func newFleetClient(workers int) *http.Client {
	if workers < 1 {
		workers = 1
	}
	return &http.Client{Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        8 * workers,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// NewCoordinator enrolls the configured workers, probing each for its
// slot capacity, and fails if any worker is unreachable — a fleet that
// starts degraded is a misconfiguration, while one that degrades later
// is handled at run time (lost shards surface as Truncated results).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker URL")
	}
	client := cfg.Client
	if client == nil {
		client = newFleetClient(len(cfg.Workers))
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 5 * time.Second
	}
	if cfg.BoardSync < 0 {
		return nil, errors.New("dist: CoordinatorConfig.BoardSync must be >= 0")
	}
	c := &Coordinator{
		client:    client,
		boards:    newBoardHub(cfg.BoardAddr, cfg.BoardAdvertise, cfg.StreamAddr),
		boardSync: cfg.BoardSync,
		stream:    cfg.Stream,
	}
	for i, base := range cfg.Workers {
		slots, wireOK, err := c.probe(base, probeTimeout)
		if err != nil {
			return nil, fmt.Errorf("dist: enrolling worker %s: %w", base, err)
		}
		c.workers = append(c.workers, &workerRef{index: i, base: base, slots: slots, wire: wireOK})
	}
	return c, nil
}

// probe reads a worker's slot capacity and wire capability from its
// health endpoint. Workers that predate the streaming control plane
// simply omit the field and stay on HTTP/JSON.
func (c *Coordinator) probe(base string, timeout time.Duration) (int, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var health struct {
		Slots int  `json:"slots"`
		Wire  bool `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, false, fmt.Errorf("decoding healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if health.Slots < 1 {
		return 0, false, fmt.Errorf("worker reports %d slots", health.Slots)
	}
	return health.Slots, health.Wire, nil
}

// BoardTraffic reports the cumulative exchange-board bytes moved each
// way (HTTP sync bodies plus stream frames) — the board-sync bytes
// metric the telemetry sampler records.
func (c *Coordinator) BoardTraffic() (rx, tx int64) {
	return c.boards.traffic()
}

// BoardHTTPSyncs reports how many per-tick board POSTs the hub has
// served. With streaming negotiated fleet-wide it stays zero — the
// invariant the streaming exchange test asserts.
func (c *Coordinator) BoardHTTPSyncs() int64 {
	return c.boards.mHTTPSyncs.Load()
}

// Name identifies the backend in service logs and metrics.
func (c *Coordinator) Name() string {
	return fmt.Sprintf("dist(%d workers)", len(c.workers))
}

// Slots returns the fleet's total walker-slot capacity.
func (c *Coordinator) Slots() int {
	total := 0
	for _, w := range c.workers {
		total += w.slots
	}
	return total
}

// Workers returns a snapshot of the enrolled fleet.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerInfo{URL: w.base, Slots: w.slots, Busy: w.busy}
	}
	return out
}

// Close releases the coordinator. Runs in flight keep their slot
// reservations until they unwind; the only coordinator-owned resource
// is the exchange-board server, which is shut down here (its absence
// degrades in-flight dependent runs to independent walks — the
// scheme's designed failure mode).
func (c *Coordinator) Close() {
	c.boards.close()
}

// Run executes the job in wall-clock mode: every shard's walkers run
// concurrently on their worker, and the first shard to report a
// solution triggers cancel RPCs to the rest ("no communication between
// the simultaneous computations except for completion").
func (c *Coordinator) Run(ctx context.Context, job JobSpec) (multiwalk.Result, error) {
	return c.run(ctx, ModeRun, job)
}

// RunVirtual executes the job in deterministic virtual mode: every
// walker runs to completion and the fewest-iterations walker wins.
// The merged result is bit-for-bit identical to a single-process
// multiwalk.RunVirtual with the same (problem, options, seed) — the
// property the experiment harness and the golden-trace suite pin.
func (c *Coordinator) RunVirtual(ctx context.Context, job JobSpec) (multiwalk.Result, error) {
	return c.run(ctx, ModeVirtual, job)
}

// RunJob adapts the coordinator to the service.Backend contract. The
// factory is ignored — workers build their own problem instances from
// the registry — and the options' Progress hook, which cannot stream
// across processes, is replayed from the final per-walker statistics
// so the scheduler's throughput counters stay truthful.
func (c *Coordinator) RunJob(ctx context.Context, problem string, size int, params map[string]int, factory problems.Factory, opts multiwalk.Options) (multiwalk.Result, error) {
	_ = factory
	res, err := c.Run(ctx, JobSpec{
		Problem:   problem,
		Size:      size,
		Params:    params,
		Walkers:   opts.Walkers,
		Seed:      opts.Seed,
		Engine:    opts.Engine,
		Portfolio: opts.Portfolio,
		Exchange:  opts.Exchange,
	})
	if err == nil && opts.Progress != nil {
		for _, ws := range res.Walkers {
			if ws.Result.Iterations > 0 {
				opts.Progress(ws.Walker, ws.Result.Iterations, ws.Result.Cost)
			}
		}
	}
	return res, err
}

// assignment is one shard placed on one worker.
type assignment struct {
	worker   *workerRef
	start    int
	count    int
	reserved int
	runID    string
}

// shardOutcome is the terminal state of one shard request.
type shardOutcome struct {
	res  multiwalk.Result
	lost bool  // transport-level loss: no stats came back
	err  error // application-level rejection (bad options)
}

func (c *Coordinator) run(ctx context.Context, mode string, job JobSpec) (multiwalk.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if job.Walkers < 1 {
		return multiwalk.Result{}, fmt.Errorf("dist: Walkers must be >= 1, got %d", job.Walkers)
	}
	if job.Engine.Monitor != nil {
		return multiwalk.Result{}, errors.New("dist: engine Monitor hooks cannot cross process boundaries")
	}
	for i := range job.Portfolio {
		if job.Portfolio[i].Engine.Monitor != nil {
			return multiwalk.Result{}, fmt.Errorf("dist: portfolio[%d] carries a Monitor hook, which cannot cross process boundaries", i)
		}
	}
	exchangeSpec := ExchangeSpecFor(job.Exchange)
	if job.Exchange.Enabled {
		if mode != ModeRun {
			return multiwalk.Result{}, errExchangeVirtual
		}
		// Stamp the fleet-wide sync cadence before validating, so a bad
		// CoordinatorConfig.BoardSync is caught here — before slots are
		// reserved — rather than by every worker's request validation.
		exchangeSpec.SyncMS = c.boardSync.Milliseconds()
		if err := exchangeSpec.validate("exchange"); err != nil {
			return multiwalk.Result{}, err
		}
	}

	plan, release, err := c.plan(mode, job.Walkers)
	if err != nil {
		return multiwalk.Result{}, err
	}
	defer release()

	// Worker-side deadline: the remaining context budget, so an
	// orphaned shard self-terminates even if the coordinator dies
	// without delivering a cancel.
	var deadlineMS int64
	if dl, ok := ctx.Deadline(); ok {
		deadlineMS = time.Until(dl).Milliseconds()
		if deadlineMS < 1 {
			deadlineMS = 1
		}
	}

	engineSpec := EngineSpecFor(job.Engine)
	portfolio := make([]PortfolioSpec, len(job.Portfolio))
	for i, e := range job.Portfolio {
		portfolio[i] = PortfolioSpec{Weight: e.Weight, Engine: EngineSpecFor(e.Engine)}
	}

	start := time.Now()
	jobID := c.seq.Add(1)
	outcomes := make([]shardOutcome, len(plan))
	var solvedOnce sync.Once
	var wg sync.WaitGroup
	for i := range plan {
		plan[i].runID = fmt.Sprintf("job%06d-s%d", jobID, i)
	}

	// Dependent jobs get a job-wide global board: every shard receives
	// the same sync URL, so elite configurations flow between workers.
	// The board lives exactly as long as the job — run() waits for all
	// shard responses before releasing it, so no shard ever syncs into
	// a reassigned board.
	var boardURL, boardStream, boardJob string
	if job.Exchange.Enabled {
		// The probe instance lets the board server verify every publish
		// against the actual problem (see boardHub.handleSync); building
		// it here also validates the job's problem/size coordinator-side.
		probe, err := problems.NewWithParams(job.Problem, job.Size, job.Params)
		if err != nil {
			return multiwalk.Result{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		boardJob = fmt.Sprintf("job%06d", jobID)
		url, _, releaseBoard, err := c.boards.open(boardJob, probe)
		if err != nil {
			return multiwalk.Result{}, err
		}
		defer releaseBoard()
		boardURL = url
		if c.stream {
			// Streaming fleets also get the hub's persistent-frame
			// address; wire-capable workers replace their POST loops
			// with it, others ignore the field. The HTTP URL stays in
			// the request as the in-run fallback path.
			boardStream, err = c.boards.ensureStream()
			if err != nil {
				return multiwalk.Result{}, err
			}
		} else {
			boardJob = ""
		}
	}

	// Pre-cancelled caller: don't contact the fleet at all — report
	// the walkers as never-run, exactly like a pre-cancelled RunVirtual
	// sweep reports its unrun tail.
	if ctx.Err() != nil {
		shards := make([]multiwalk.Result, len(plan))
		for i := range plan {
			shards[i] = lostShardResult(&plan[i], job)
		}
		res, err := multiwalk.CombineShards(job.Walkers, shards...)
		if err != nil {
			return multiwalk.Result{}, err
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Shard requests are detached from the caller's context:
	// cancellation is delivered as cancel RPCs, so the workers answer
	// with their partial statistics instead of losing them to an
	// aborted connection. If a worker sits on its response past the
	// grace period (or the cancel RPC raced the run registration), the
	// hard cancel severs the connection — and the worker-side DeadlineMS
	// bound reaps the run itself.
	reqCtx, hardCancel := context.WithCancel(context.WithoutCancel(ctx))
	defer hardCancel()
	stopNotify := context.AfterFunc(ctx, func() {
		c.cancelShards(plan, -1)
		time.AfterFunc(cancelGrace, hardCancel)
	})
	defer stopNotify()

	for i := range plan {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := &plan[i]
			req := RunRequest{
				ID:           a.runID,
				Mode:         mode,
				Problem:      job.Problem,
				Size:         job.Size,
				Params:       job.Params,
				Seed:         job.Seed,
				TotalWalkers: job.Walkers,
				Start:        a.start,
				Count:        a.count,
				Engine:       engineSpec,
				Portfolio:    portfolio,
				DeadlineMS:   deadlineMS,
				Exchange:     exchangeSpec,
				Board:        boardURL,
				BoardStream:  boardStream,
				BoardJob:     boardJob,
			}
			outcomes[i] = c.runShard(reqCtx, a, req)
			if mode == ModeRun && outcomes[i].err == nil && !outcomes[i].lost && outcomes[i].res.Solved {
				// First-solution termination: tell the other workers to
				// stop. Cancel RPCs — not aborted connections — so the
				// losers still deliver their partial statistics; the
				// same grace-then-hard-cancel backstop as external
				// cancellation keeps a stalled loser (or a cancel RPC
				// that raced the run registration) from blocking the
				// job forever.
				solvedOnce.Do(func() {
					c.cancelShards(plan, i)
					time.AfterFunc(cancelGrace, hardCancel)
				})
			}
		}(i)
	}
	wg.Wait()

	shards := make([]multiwalk.Result, 0, len(plan))
	anyLost := false
	for i, out := range outcomes {
		if out.err != nil {
			return multiwalk.Result{}, fmt.Errorf("dist: worker %s: %w", plan[i].worker.base, out.err)
		}
		if out.lost {
			anyLost = true
			shards = append(shards, lostShardResult(&plan[i], job))
			continue
		}
		shards = append(shards, out.res)
	}
	res, err := multiwalk.CombineShards(job.Walkers, shards...)
	if err != nil {
		// A worker violated the protocol (wrong or duplicate walker
		// indices). Surface it as an error, never as a fabricated run.
		return multiwalk.Result{}, fmt.Errorf("dist: inconsistent shard stats: %w", err)
	}
	if anyLost {
		res.Truncated = true
	}
	if mode == ModeRun && res.Solved {
		// Losers interrupted after the winner's cancel are the normal
		// completion mechanism, exactly as in multiwalk.Run: a solved
		// wall-clock run is never truncated (a lost loser leaves its
		// mark in Completed < Walkers instead). Virtual mode keeps
		// sticky truncation — a walker that never ran to completion
		// taints the deterministic winner even when another solved,
		// matching RunVirtual's mid-sweep cancellation semantics.
		res.Truncated = false
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// lostShardResult synthesizes the stats of a shard whose worker was
// lost: each walker keeps its global identity and portfolio entry and
// carries an empty Interrupted result — never fabricated work.
func lostShardResult(a *assignment, job JobSpec) multiwalk.Result {
	stats := make([]multiwalk.WalkerStat, a.count)
	for i := range stats {
		g := a.start + i
		stats[i] = multiwalk.WalkerStat{
			Walker: g,
			Entry:  multiwalk.EntryFor(job.Portfolio, job.Walkers, g),
			Result: core.Result{Interrupted: true, Cost: math.MaxInt},
		}
	}
	return multiwalk.Result{Winner: -1, Walkers: stats, Completed: 0, Truncated: true}
}

// plan partitions k walkers over the fleet's free capacity and
// reserves the slots it uses; release returns them. ModeRun places at
// most free-slot walkers per worker (they run concurrently); a job
// that fits the fleet's total free capacity always fits, because
// shards split at arbitrary boundaries. ModeVirtual reserves one slot
// per participating worker (shards run sequentially) and splits the
// walkers proportionally to worker capacity, so the slowest shard —
// the distributed collection's wall-clock — is balanced.
func (c *Coordinator) plan(mode string, k int) ([]assignment, func(), error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	var plan []assignment
	switch mode {
	case ModeVirtual:
		var eligible []*workerRef
		weight := 0
		for _, w := range c.workers {
			if w.slots-w.busy >= 1 {
				eligible = append(eligible, w)
				weight += w.slots
			}
		}
		if len(eligible) == 0 {
			return nil, nil, fmt.Errorf("%w: no worker has a free slot", ErrNoCapacity)
		}
		// Largest-remainder proportional split, ties to earlier
		// workers; zero-walker workers drop out of the plan.
		counts := make([]int, len(eligible))
		assigned := 0
		for i, w := range eligible {
			counts[i] = k * w.slots / weight
			assigned += counts[i]
		}
		for i := 0; assigned < k; i = (i + 1) % len(eligible) {
			counts[i]++
			assigned++
		}
		next := 0
		for i, w := range eligible {
			if counts[i] == 0 {
				continue
			}
			plan = append(plan, assignment{worker: w, start: next, count: counts[i], reserved: 1})
			next += counts[i]
		}
	default: // ModeRun
		free := 0
		for _, w := range c.workers {
			free += w.slots - w.busy
		}
		if free < k {
			return nil, nil, fmt.Errorf("%w: job needs %d walkers, fleet has %d free slots", ErrNoCapacity, k, free)
		}
		next := 0
		for _, w := range c.workers {
			if next == k {
				break
			}
			take := min(k-next, w.slots-w.busy)
			if take <= 0 {
				continue
			}
			plan = append(plan, assignment{worker: w, start: next, count: take, reserved: take})
			next += take
		}
	}

	for i := range plan {
		plan[i].worker.busy += plan[i].reserved
	}
	release := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i := range plan {
			plan[i].worker.busy -= plan[i].reserved
		}
	}
	return plan, release, nil
}

// runShard posts one shard run and waits for its statistics. Dispatch
// is a binary RunSpec frame when streaming is on and the worker
// advertised wire support, JSON otherwise; responses are JSON either
// way (one response per shard — framing buys nothing there).
func (c *Coordinator) runShard(ctx context.Context, a *assignment, reqBody RunRequest) shardOutcome {
	var payload []byte
	contentType := "application/json"
	if c.stream && a.worker.wire {
		var enc wire.Encoder
		spec := wireRunSpec(&reqBody)
		framed, err := enc.RunSpecFrame(nil, &spec)
		if err != nil {
			return shardOutcome{err: err}
		}
		payload, contentType = framed, ContentTypeWire
	} else {
		var err error
		payload, err = json.Marshal(reqBody)
		if err != nil {
			return shardOutcome{err: err}
		}
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, a.worker.base+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		return shardOutcome{err: err}
	}
	httpReq.Header.Set("Content-Type", contentType)
	resp, err := c.client.Do(httpReq)
	if err != nil {
		// Transport loss: connection refused, reset mid-run, context
		// cancelled. No stats came back — the shard is lost, and the
		// merged result must say so (Truncated), not guess.
		return shardOutcome{lost: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err != nil || e.Error == "" {
			return shardOutcome{lost: true}
		}
		if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusTooManyRequests {
			// The worker understood us and said no: an application
			// error the caller must see (bad options reject the whole
			// job; capacity conflicts mean a mis-shared fleet).
			return shardOutcome{err: errors.New(e.Error)}
		}
		return shardOutcome{lost: true}
	}
	var wire RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return shardOutcome{lost: true}
	}
	return shardOutcome{res: resultFromWire(wire)}
}

// cancelGrace is how long the coordinator waits, after delivering
// cancel RPCs, for workers to flush their partial statistics before it
// severs the connections.
const cancelGrace = 30 * time.Second

// cancelShards delivers best-effort cancel RPCs to every shard except
// skip (pass -1 to cancel all). A bounded background context — not the
// job context — carries them, so cancellation still reaches workers
// when the caller's context is the thing that expired.
func (c *Coordinator) cancelShards(plan []assignment, skip int) {
	for i := range plan {
		if i == skip {
			continue
		}
		go func(a *assignment) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.worker.base+"/v1/runs/"+a.runID+"/cancel", nil)
			if err != nil {
				return
			}
			if resp, err := c.client.Do(req); err == nil {
				resp.Body.Close()
			}
		}(&plan[i])
	}
}
