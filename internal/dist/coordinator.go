package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
	"repro/internal/wire"
)

// CoordinatorConfig configures a coordinator over a worker fleet.
type CoordinatorConfig struct {
	// Workers lists worker base URLs (e.g. "http://10.0.0.7:9101")
	// enrolled statically at construction time; each is probed for its
	// slot capacity. With Dynamic set the list may be empty — workers
	// join at runtime through the fleet registration endpoints.
	Workers []string
	// Dynamic allows an empty initial fleet and enables runtime
	// membership: workers register, heartbeat and drain through
	// FleetHandler. Static workers and dynamic joiners share one
	// registry, so mixing both is fine.
	Dynamic bool
	// Client is the HTTP client used for all worker traffic. nil
	// selects a dedicated client with no global timeout (run requests
	// are long-polls bounded by their context).
	Client *http.Client
	// ProbeTimeout bounds every health probe — enrollment, runtime
	// registration and the monitor's liveness sweeps. Each probe gets
	// its own independent context with this timeout, so one hung worker
	// can never eat a job deadline or stall the sweep. 0 selects 5s.
	ProbeTimeout time.Duration
	// HeartbeatInterval is the monitor's sweep period: workers not
	// heard from (push heartbeat or probe) within one interval are
	// re-probed; a failed probe makes them suspect, a second makes them
	// dead. 0 selects 2s; negative disables the monitor (tests).
	HeartbeatInterval time.Duration
	// RecoverAttempts bounds the lost-shard recovery rounds per job: a
	// shard whose worker is lost mid-run is re-planned onto healthy
	// workers and re-run — bit-for-bit identically, walker identity
	// being global — up to this many times before the job is truncated.
	// 0 selects 2; negative disables recovery (lost shards truncate
	// immediately, the pre-elastic behavior).
	RecoverAttempts int
	// BoardAddr is the listen address of the coordinator's global
	// exchange-board server, which workers sync against during
	// dependent (Exchange) jobs. Empty selects 127.0.0.1:0 — correct
	// for single-host fleets and tests. The server starts lazily on the
	// first exchange-enabled job, so independent-only fleets never open
	// the port.
	BoardAddr string
	// BoardAdvertise is the base URL workers use to reach the board
	// server (e.g. "http://10.0.0.1:9190"). Empty derives it from the
	// listener address; set it explicitly when workers are on other
	// hosts or behind NAT.
	BoardAdvertise string
	// BoardSync is the period at which worker-side board caches
	// reconcile with the global board. 0 lets each worker apply its
	// default (50ms).
	BoardSync time.Duration
	// Stream enables the streaming control plane: shard dispatch as
	// binary RunSpec frames and, for exchange jobs, a persistent
	// multiplexed board stream in place of the periodic POST loop.
	// Both are negotiated per worker — a worker that does not
	// advertise wire support keeps the HTTP/JSON paths — so mixed
	// fleets work with no flag coordination.
	Stream bool
	// StreamAddr is the listen address of the board stream hub. Empty
	// selects 127.0.0.1:0; set it (with a routable host) when workers
	// are on other machines. Only used when Stream is set.
	StreamAddr string
	// Speculate enables straggler speculation for wall-clock (Run mode)
	// jobs: workers report per-shard progress, a detector compares each
	// running shard against the job's median, and a shard lagging past
	// SpeculateThreshold is re-dispatched on a free healthy worker —
	// whichever copy finishes first wins, the loser is cancelled, and
	// its late result is dropped before shard merging. Global walker
	// identity makes the two copies bit-for-bit identical, so
	// speculation trades slots for tail latency with zero correctness
	// risk.
	Speculate bool
	// SpeculateThreshold is how far behind the job's median per-walker
	// iteration count a shard must lag before a backup launches: a
	// shard speculates when its progress × threshold < median. Must be
	// > 1; 0 selects 2 (lagging more than 2× behind).
	SpeculateThreshold float64
	// SpeculateAfter is the minimum job age before the detector acts —
	// short jobs finish before any backup could help, so they never
	// speculate. 0 selects 2s.
	SpeculateAfter time.Duration
	// SpeculateInterval is the detector's evaluation period. 0 selects
	// 500ms.
	SpeculateInterval time.Duration
	// ProgressInterval is the per-shard progress report cadence stamped
	// into speculation-enabled run requests. 0 lets each worker apply
	// its default (250ms).
	ProgressInterval time.Duration
}

// JobSpec describes one distributed multi-walk job. It is the
// transportable subset of (factory, multiwalk.Options): problems are
// named, not passed as closures, and engine options must not carry
// process-local hooks (Monitor) or the in-process Exchange scheme.
type JobSpec struct {
	// Problem and Size name the benchmark instance in the shared
	// registry.
	Problem string
	Size    int
	// Params carries benchmark-specific problem parameters, shipped
	// verbatim to every shard (finite-domain benchmarks' knobs).
	Params map[string]int
	// Walkers is the whole job's walker count k.
	Walkers int
	// Seed is the master seed; walker w of the job draws seed w of the
	// master stream no matter which worker runs it.
	Seed uint64
	// Engine holds the per-walker engine options (Portfolio overrides
	// it, exactly as in multiwalk.Options).
	Engine core.Options
	// Portfolio, when non-empty, runs a heterogeneous portfolio with
	// entries assigned by global walker index.
	Portfolio []multiwalk.PortfolioEntry
	// Exchange, when Enabled, runs the job in the dependent
	// (communicating) multi-walk scheme: the coordinator hosts a global
	// elite board and every worker shard cooperates through it, so
	// adoptions cross process boundaries. Run mode only; dependent runs
	// are timing-dependent by nature (see DESIGN.md §10), unlike the
	// bit-for-bit deterministic independent modes.
	Exchange multiwalk.ExchangeOptions
}

// Coordinator shards multi-walk jobs over a fleet of workers. It
// implements the same contract as multiwalk.Run / RunVirtual — walker
// identity, portfolio assignment and the min-iterations virtual winner
// are bit-for-bit those of the single-process run — and satisfies
// service.Backend, so a Scheduler can serve its traffic from the fleet
// (cmd/serve -workers / -fleet).
//
// Fleet membership is dynamic: workers join statically (config) or at
// runtime (FleetHandler registration), push heartbeats, and leave by
// draining. A background monitor probes workers it has not heard from,
// and a shard lost to a worker failure is re-planned onto surviving
// healthy workers and re-run — global walker identity makes the re-run
// bit-for-bit identical — before the job is ever truncated.
type Coordinator struct {
	client *http.Client
	reg    *registry

	probeTimeout    time.Duration
	hbInterval      time.Duration
	recoverAttempts int

	seq atomic.Uint64

	boards    *boardHub
	boardSync time.Duration
	stream    bool

	speculate     bool
	specThreshold float64
	specAfter     time.Duration
	specInterval  time.Duration
	progInterval  time.Duration

	// prog is the straggler detector's input: one entry per tracked
	// in-flight shard run, fed by worker progress reports (stream
	// frames or HTTP fallback) and finalized from the shard's own
	// outcome when it resolves.
	progMu sync.Mutex
	prog   map[string]*shardProg

	monitorStop    chan struct{}
	monitorDone    chan struct{}
	monitorOnce    sync.Once
	mLostShards    atomic.Int64
	mRecShards     atomic.Int64
	mRecWalkers    atomic.Int64
	mRecRounds     atomic.Int64
	mFailovers     atomic.Int64
	mTruncations   atomic.Int64
	mProbeFails    atomic.Int64
	mProbesDone    atomic.Int64
	mSpecLaunched  atomic.Int64
	mSpecWon       atomic.Int64
	mSpecLost      atomic.Int64
	mSpecCancelled atomic.Int64
}

// newFleetClient is the coordinator's default HTTP client: one shared
// transport with keep-alives and an idle pool sized to the fleet, so
// shard dispatch, cancel RPCs and health probes reuse connections
// instead of opening a fresh one per call (the default zero-value
// Client churned through ephemeral ports under load).
func newFleetClient(workers int) *http.Client {
	if workers < 1 {
		workers = 1
	}
	return &http.Client{Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        8 * workers,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// NewCoordinator enrolls the configured workers, probing each for its
// slot capacity, and fails if any static worker is unreachable — a
// fleet that starts degraded is a misconfiguration, while one that
// degrades later is handled at run time (lost shards are recovered on
// surviving workers, truncating only when capacity or the retry budget
// runs out).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Workers) == 0 && !cfg.Dynamic {
		return nil, errors.New("dist: coordinator needs at least one worker URL")
	}
	client := cfg.Client
	if client == nil {
		client = newFleetClient(len(cfg.Workers))
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 5 * time.Second
	}
	hbInterval := cfg.HeartbeatInterval
	if hbInterval == 0 {
		hbInterval = 2 * time.Second
	}
	recoverAttempts := cfg.RecoverAttempts
	if recoverAttempts == 0 {
		recoverAttempts = 2
	}
	if cfg.BoardSync < 0 {
		return nil, errors.New("dist: CoordinatorConfig.BoardSync must be >= 0")
	}
	specThreshold := cfg.SpeculateThreshold
	if specThreshold == 0 {
		specThreshold = 2
	}
	if specThreshold <= 1 {
		return nil, errors.New("dist: CoordinatorConfig.SpeculateThreshold must be > 1 (a shard speculates when progress x threshold < median)")
	}
	specAfter := cfg.SpeculateAfter
	if specAfter <= 0 {
		specAfter = 2 * time.Second
	}
	specInterval := cfg.SpeculateInterval
	if specInterval <= 0 {
		specInterval = 500 * time.Millisecond
	}
	c := &Coordinator{
		client:          client,
		reg:             newRegistry(),
		probeTimeout:    probeTimeout,
		hbInterval:      hbInterval,
		recoverAttempts: recoverAttempts,
		boards:          newBoardHub(cfg.BoardAddr, cfg.BoardAdvertise, cfg.StreamAddr),
		boardSync:       cfg.BoardSync,
		stream:          cfg.Stream,
		speculate:       cfg.Speculate,
		specThreshold:   specThreshold,
		specAfter:       specAfter,
		specInterval:    specInterval,
		progInterval:    cfg.ProgressInterval,
		prog:            make(map[string]*shardProg),
		monitorStop:     make(chan struct{}),
		monitorDone:     make(chan struct{}),
	}
	c.boards.onShardProgress = c.recordShardProgress
	now := time.Now()
	for _, base := range cfg.Workers {
		slots, wireOK, err := c.probe(base, probeTimeout)
		if err != nil {
			return nil, fmt.Errorf("dist: enrolling worker %s: %w", base, err)
		}
		c.reg.upsert(base, slots, wireOK, now)
	}
	if hbInterval > 0 {
		go c.monitor()
	} else {
		close(c.monitorDone)
	}
	return c, nil
}

// probe reads a worker's slot capacity and wire capability from its
// health endpoint. Every probe runs on its own short timeout context,
// independent of any job deadline — a hung worker costs one bounded
// probe, never the job. Workers that predate the streaming control
// plane simply omit the wire field and stay on HTTP/JSON.
func (c *Coordinator) probe(base string, timeout time.Duration) (int, bool, error) {
	c.mProbesDone.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var health struct {
		Slots int  `json:"slots"`
		Wire  bool `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, false, fmt.Errorf("decoding healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	if health.Slots < 1 {
		return 0, false, fmt.Errorf("worker reports %d slots", health.Slots)
	}
	return health.Slots, health.Wire, nil
}

// monitor is the fleet liveness loop: each tick it probes every worker
// it has not heard from within one heartbeat interval. Probes run
// concurrently, each on its own ProbeTimeout context, so one hung
// worker delays nothing but its own verdict.
func (c *Coordinator) monitor() {
	defer close(c.monitorDone)
	ticker := time.NewTicker(c.hbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.monitorStop:
			return
		case <-ticker.C:
			c.sweep()
		}
	}
}

// sweep probes stale workers concurrently and records the verdicts.
func (c *Coordinator) sweep() {
	now := time.Now()
	stale := c.reg.stale(c.hbInterval, now)
	if len(stale) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, w := range stale {
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			slots, wireOK, err := c.probe(w.base, c.probeTimeout)
			if err != nil {
				c.mProbeFails.Add(1)
				c.reg.reportFailure(w)
				return
			}
			c.reg.probeOK(w, slots, wireOK, time.Now())
		}(w)
	}
	wg.Wait()
}

// BoardTraffic reports the cumulative exchange-board bytes moved each
// way (HTTP sync bodies plus stream frames) — the board-sync bytes
// metric the telemetry sampler records.
func (c *Coordinator) BoardTraffic() (rx, tx int64) {
	return c.boards.traffic()
}

// BoardHTTPSyncs reports how many per-tick board POSTs the hub has
// served. With streaming negotiated fleet-wide it stays zero — the
// invariant the streaming exchange test asserts.
func (c *Coordinator) BoardHTTPSyncs() int64 {
	return c.boards.mHTTPSyncs.Load()
}

// Name identifies the backend in service logs and metrics.
func (c *Coordinator) Name() string {
	return fmt.Sprintf("dist(%d workers)", c.reg.size())
}

// Slots returns the fleet's dispatchable walker-slot capacity: healthy
// and suspect workers count, dead and draining do not. It moves as the
// fleet does; the serving layer tracks it through NotifyCapacity.
func (c *Coordinator) Slots() int {
	return c.reg.capacity()
}

// Workers returns a snapshot of the registered fleet.
func (c *Coordinator) Workers() []WorkerInfo {
	return c.reg.snapshot()
}

// NotifyCapacity installs a callback invoked (without locks held)
// whenever fleet membership or capacity changes — the serving layer's
// cue to resize its admission pool. One callback; later calls replace
// earlier ones.
func (c *Coordinator) NotifyCapacity(f func()) {
	c.reg.setOnChange(f)
}

// BackendMetrics exposes the fleet and recovery counters to the
// serving layer's Stats (structurally, like service.Backend itself).
func (c *Coordinator) BackendMetrics() map[string]int64 {
	healthy, suspect, dead, draining := c.reg.counts()
	tracked, maxAge := c.progressGauges(time.Now())
	return map[string]int64{
		"fleet_workers":          int64(c.reg.size()),
		"fleet_healthy":          int64(healthy),
		"fleet_suspect":          int64(suspect),
		"fleet_dead":             int64(dead),
		"fleet_draining":         int64(draining),
		"fleet_slots":            int64(c.reg.capacity()),
		"fleet_joins":            c.reg.mJoins.Load(),
		"fleet_leaves":           c.reg.mLeaves.Load(),
		"fleet_probe_failures":   c.mProbeFails.Load(),
		"fleet_probes":           c.mProbesDone.Load(),
		"shards_lost":            c.mLostShards.Load(),
		"shards_recovered":       c.mRecShards.Load(),
		"walkers_recovered":      c.mRecWalkers.Load(),
		"recovery_rounds":        c.mRecRounds.Load(),
		"dispatch_failovers":     c.mFailovers.Load(),
		"jobs_truncated_by_loss": c.mTruncations.Load(),
		"speculations_launched":  c.mSpecLaunched.Load(),
		"speculations_won":       c.mSpecWon.Load(),
		"speculations_lost":      c.mSpecLost.Load(),
		"speculations_cancelled": c.mSpecCancelled.Load(),
		"shards_tracked":         tracked,
		"shard_progress_age_ms":  maxAge,
	}
}

// Close releases the coordinator: the liveness monitor stops and the
// exchange-board server shuts down (its absence degrades in-flight
// dependent runs to independent walks — the scheme's designed failure
// mode). Runs in flight keep their slot reservations until they
// unwind.
func (c *Coordinator) Close() {
	c.monitorOnce.Do(func() { close(c.monitorStop) })
	<-c.monitorDone
	c.boards.close()
}

// Run executes the job in wall-clock mode: every shard's walkers run
// concurrently on their worker, and the first shard to report a
// solution triggers cancel RPCs to the rest ("no communication between
// the simultaneous computations except for completion").
func (c *Coordinator) Run(ctx context.Context, job JobSpec) (multiwalk.Result, error) {
	return c.run(ctx, ModeRun, job)
}

// RunVirtual executes the job in deterministic virtual mode: every
// walker runs to completion and the fewest-iterations walker wins.
// The merged result is bit-for-bit identical to a single-process
// multiwalk.RunVirtual with the same (problem, options, seed) — the
// property the experiment harness and the golden-trace suite pin.
func (c *Coordinator) RunVirtual(ctx context.Context, job JobSpec) (multiwalk.Result, error) {
	return c.run(ctx, ModeVirtual, job)
}

// RunJob adapts the coordinator to the service.Backend contract. The
// factory is ignored — workers build their own problem instances from
// the registry — and the options' Progress hook, which cannot stream
// across processes, is replayed from the final per-walker statistics
// so the scheduler's throughput counters stay truthful. Walkers that
// never ran (Iterations 0, Cost core.CostUnknown) are skipped — the
// sentinel is never replayed as a real cost.
func (c *Coordinator) RunJob(ctx context.Context, problem string, size int, params map[string]int, factory problems.Factory, opts multiwalk.Options) (multiwalk.Result, error) {
	_ = factory
	res, err := c.Run(ctx, JobSpec{
		Problem:   problem,
		Size:      size,
		Params:    params,
		Walkers:   opts.Walkers,
		Seed:      opts.Seed,
		Engine:    opts.Engine,
		Portfolio: opts.Portfolio,
		Exchange:  opts.Exchange,
	})
	if err == nil && opts.Progress != nil {
		for _, ws := range res.Walkers {
			if ws.Result.Iterations > 0 && ws.Result.Cost != core.CostUnknown {
				opts.Progress(ws.Walker, ws.Result.Iterations, ws.Result.Cost)
			}
		}
	}
	return res, err
}

// assignment is one shard placed on one worker.
type assignment struct {
	worker   *workerRef
	start    int
	count    int
	reserved int
	released bool // guarded by registry.mu
	runID    string
}

// shardOutcome is the terminal state of one shard request.
type shardOutcome struct {
	res  multiwalk.Result
	lost bool  // transport-level loss: no stats came back
	err  error // application-level rejection (bad options)
}

// lostRange is a run of global walker indices whose shard was lost.
type lostRange struct {
	start, count int
}

func (c *Coordinator) run(ctx context.Context, mode string, job JobSpec) (multiwalk.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if job.Walkers < 1 {
		return multiwalk.Result{}, fmt.Errorf("dist: Walkers must be >= 1, got %d", job.Walkers)
	}
	if job.Engine.Monitor != nil {
		return multiwalk.Result{}, errors.New("dist: engine Monitor hooks cannot cross process boundaries")
	}
	for i := range job.Portfolio {
		if job.Portfolio[i].Engine.Monitor != nil {
			return multiwalk.Result{}, fmt.Errorf("dist: portfolio[%d] carries a Monitor hook, which cannot cross process boundaries", i)
		}
	}
	exchangeSpec := ExchangeSpecFor(job.Exchange)
	if job.Exchange.Enabled {
		if mode != ModeRun {
			return multiwalk.Result{}, errExchangeVirtual
		}
		// Stamp the fleet-wide sync cadence before validating, so a bad
		// CoordinatorConfig.BoardSync is caught here — before slots are
		// reserved — rather than by every worker's request validation.
		exchangeSpec.SyncMS = c.boardSync.Milliseconds()
		if err := exchangeSpec.validate("exchange"); err != nil {
			return multiwalk.Result{}, err
		}
	}

	plan, err := c.plan(mode, job.Walkers)
	if err != nil {
		return multiwalk.Result{}, err
	}
	// Safety net for early returns; the normal path releases each
	// shard's reservation the moment its outcome is in (releases are
	// idempotent), so recovery rounds see the freed capacity.
	defer c.releaseAll(plan)

	engineSpec := EngineSpecFor(job.Engine)
	portfolio := make([]PortfolioSpec, len(job.Portfolio))
	for i, e := range job.Portfolio {
		portfolio[i] = PortfolioSpec{Weight: e.Weight, Engine: EngineSpecFor(e.Engine)}
	}

	start := time.Now()
	jobID := c.seq.Add(1)
	for i := range plan {
		plan[i].runID = fmt.Sprintf("job%06d-s%d", jobID, i)
	}

	// Dependent jobs get a job-wide global board: every shard receives
	// the same sync URL, so elite configurations flow between workers.
	// The board lives exactly as long as the job — run() waits for all
	// shard responses (including recovery rounds) before releasing it,
	// so no shard ever syncs into a reassigned board.
	var boardURL, boardStream, boardJob string
	if job.Exchange.Enabled {
		// The probe instance lets the board server verify every publish
		// against the actual problem (see boardHub.handleSync); building
		// it here also validates the job's problem/size coordinator-side.
		probe, err := problems.NewWithParams(job.Problem, job.Size, job.Params)
		if err != nil {
			return multiwalk.Result{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		boardJob = fmt.Sprintf("job%06d", jobID)
		url, _, releaseBoard, err := c.boards.open(boardJob, probe)
		if err != nil {
			return multiwalk.Result{}, err
		}
		defer releaseBoard()
		boardURL = url
		if c.stream {
			// Streaming fleets also get the hub's persistent-frame
			// address; wire-capable workers replace their POST loops
			// with it, others ignore the field. The HTTP URL stays in
			// the request as the in-run fallback path.
			boardStream, err = c.boards.ensureStream()
			if err != nil {
				return multiwalk.Result{}, err
			}
		} else {
			boardJob = ""
		}
	}

	// Pre-cancelled caller: don't contact the fleet at all — report
	// the walkers as never-run, exactly like a pre-cancelled RunVirtual
	// sweep reports its unrun tail.
	if ctx.Err() != nil {
		shards := make([]multiwalk.Result, len(plan))
		for i := range plan {
			shards[i] = lostShardResult(plan[i].start, plan[i].count, job)
		}
		res, err := multiwalk.CombineShards(job.Walkers, shards...)
		if err != nil {
			return multiwalk.Result{}, err
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Shard requests are detached from the caller's context:
	// cancellation is delivered as cancel RPCs, so the workers answer
	// with their partial statistics instead of losing them to an
	// aborted connection. If a worker sits on its response past the
	// grace period (or the cancel RPC raced the run registration), the
	// hard cancel severs the connection — and the worker-side DeadlineMS
	// bound reaps the run itself.
	reqCtx, hardCancel := context.WithCancel(context.WithoutCancel(ctx))
	defer hardCancel()
	// Recovery rounds add their own shards after dispatch starts, so
	// external cancellation targets a live list, not the initial plan.
	var plansMu sync.Mutex
	activePlans := [][]assignment{plan}
	addPlan := func(p []assignment) {
		plansMu.Lock()
		activePlans = append(activePlans, p)
		plansMu.Unlock()
	}
	stopNotify := context.AfterFunc(ctx, func() {
		plansMu.Lock()
		plans := make([][]assignment, len(activePlans))
		copy(plans, activePlans)
		plansMu.Unlock()
		for _, p := range plans {
			c.cancelShards(p, -1)
		}
		time.AfterFunc(cancelGrace, hardCancel)
	})
	defer stopNotify()

	params := shardParams{
		engine:      engineSpec,
		portfolio:   portfolio,
		exchange:    exchangeSpec,
		boardURL:    boardURL,
		boardStream: boardStream,
		boardJob:    boardJob,
		deadline:    deadlineMS(ctx),
	}

	// Straggler speculation needs the progress feed: stamp the report
	// endpoints into every shard request and track the shards. Virtual
	// mode is excluded (its shards are sequential sweeps whose runtimes
	// are the experiment itself), as are single-shard jobs (no median
	// to lag behind).
	speculating := c.speculate && mode == ModeRun && len(plan) >= 2
	if speculating {
		base, err := c.boards.ensureServer()
		if err != nil {
			return multiwalk.Result{}, err
		}
		params.progressBase = base
		params.progressMS = c.progInterval.Milliseconds()
		if c.stream {
			if params.progressStream, err = c.boards.ensureStream(); err != nil {
				return multiwalk.Result{}, err
			}
		}
		defer c.clearJobProgress(fmt.Sprintf("job%06d-", jobID))
	}

	var solvedOnce sync.Once
	var outcomes []shardOutcome
	if speculating {
		outcomes = c.dispatchSpeculative(reqCtx, job, plan, &solvedOnce, hardCancel, params, jobID, addPlan)
	} else {
		outcomes = c.dispatch(reqCtx, mode, job, plan, &solvedOnce, hardCancel, params)
	}

	shards := make([]multiwalk.Result, 0, len(plan))
	var lost []lostRange
	solved := false
	for i, out := range outcomes {
		if out.err != nil {
			return multiwalk.Result{}, fmt.Errorf("dist: worker %s: %w", plan[i].worker.base, out.err)
		}
		if out.lost {
			c.mLostShards.Add(1)
			lost = append(lost, lostRange{plan[i].start, plan[i].count})
			continue
		}
		if mode == ModeRun && out.res.Solved {
			solved = true
		}
		shards = append(shards, out.res)
	}

	// Recovery: re-run each lost shard's walkers on surviving healthy
	// workers. Global walker identity (Shard.Start/Total against the
	// whole job) makes the re-run bit-for-bit identical to the run the
	// lost worker would have produced, so the determinism contract
	// holds across failures. Recovery is skipped when the caller
	// cancelled (the "loss" is our own hard-cancel severing
	// connections) and when a wall-clock run already solved (losers are
	// stopped, not resurrected); it stops when the retry budget or the
	// fleet's healthy capacity runs out — only then does the job
	// truncate.
	for attempt := 1; len(lost) > 0 && attempt <= c.recoverAttempts && ctx.Err() == nil && !solved; attempt++ {
		rplan, uncovered, rerr := c.planRecovery(mode, lost)
		if rerr != nil {
			// Zero healthy free workers: there is nothing to dispatch
			// and nothing to learn from another round, so stop without
			// burning the remaining attempts (the attempt-accounting
			// regression test pins recovery_rounds here).
			break
		}
		if len(rplan) == 0 {
			break
		}
		c.mRecRounds.Add(1)
		for i := range rplan {
			rplan[i].runID = fmt.Sprintf("job%06d-r%d-s%d", jobID, attempt, i)
		}
		addPlan(rplan)
		// Recovery shards re-run a known range on a fresh worker; their
		// runtimes carry no straggler signal, so they skip the progress
		// feed — and they see the deadline budget that remains now, not
		// the one the job started with.
		rparams := params
		rparams.progressBase, rparams.progressStream, rparams.progressMS = "", "", 0
		rparams.deadline = deadlineMS(ctx)
		routs := c.dispatch(reqCtx, mode, job, rplan, &solvedOnce, hardCancel, rparams)
		lost = uncovered
		for i, out := range routs {
			if out.err != nil {
				return multiwalk.Result{}, fmt.Errorf("dist: worker %s: %w", rplan[i].worker.base, out.err)
			}
			if out.lost {
				lost = append(lost, lostRange{rplan[i].start, rplan[i].count})
				continue
			}
			if mode == ModeRun && out.res.Solved {
				solved = true
			}
			c.mRecShards.Add(1)
			c.mRecWalkers.Add(int64(rplan[i].count))
			shards = append(shards, out.res)
		}
	}

	anyLost := len(lost) > 0
	for _, lr := range lost {
		shards = append(shards, lostShardResult(lr.start, lr.count, job))
	}
	res, err := multiwalk.CombineShards(job.Walkers, shards...)
	if err != nil {
		// A worker violated the protocol (wrong or duplicate walker
		// indices). Surface it as an error, never as a fabricated run.
		return multiwalk.Result{}, fmt.Errorf("dist: inconsistent shard stats: %w", err)
	}
	if anyLost {
		res.Truncated = true
		c.mTruncations.Add(1)
	}
	if mode == ModeRun && res.Solved {
		// Losers interrupted after the winner's cancel are the normal
		// completion mechanism, exactly as in multiwalk.Run: a solved
		// wall-clock run is never truncated (a lost loser leaves its
		// mark in Completed < Walkers instead). Virtual mode keeps
		// sticky truncation — a walker that never ran to completion
		// taints the deterministic winner even when another solved,
		// matching RunVirtual's mid-sweep cancellation semantics.
		res.Truncated = false
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// shardParams bundles the per-job request fields shared by every shard
// dispatch (initial plan and recovery rounds alike).
type shardParams struct {
	engine      EngineSpec
	portfolio   []PortfolioSpec
	exchange    ExchangeSpec
	boardURL    string
	boardStream string
	boardJob    string
	deadline    int64
	// Progress feed endpoints for straggler speculation; empty when the
	// job does not speculate. progressBase is the hub's HTTP base URL
	// (each shard's report route is derived from its run id).
	progressBase   string
	progressStream string
	progressMS     int64
}

// shardRequest builds one shard's run request from the job, the
// assignment and the shared per-job parameters — the single place
// primary, backup and recovery dispatches derive their wire requests
// from.
func shardRequest(mode string, job *JobSpec, a *assignment, p *shardParams) RunRequest {
	req := RunRequest{
		ID:           a.runID,
		Mode:         mode,
		Problem:      job.Problem,
		Size:         job.Size,
		Params:       job.Params,
		Seed:         job.Seed,
		TotalWalkers: job.Walkers,
		Start:        a.start,
		Count:        a.count,
		Engine:       p.engine,
		Portfolio:    p.portfolio,
		DeadlineMS:   p.deadline,
		Exchange:     p.exchange,
		Board:        p.boardURL,
		BoardStream:  p.boardStream,
		BoardJob:     p.boardJob,
	}
	if p.progressBase != "" {
		req.ProgressURL = p.progressBase + "/v1/runs/" + a.runID + "/progress"
		req.ProgressStream = p.progressStream
		req.ProgressMS = p.progressMS
	}
	return req
}

// deadlineMS converts the context's remaining budget to the worker-side
// deadline field (0 = none), so an orphaned shard self-terminates even
// if the coordinator dies without delivering a cancel.
func deadlineMS(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// dispatch runs every assignment in plan concurrently and returns their
// outcomes. Each shard's slot reservation is released the moment its
// outcome is in, so later recovery rounds can plan into the freed
// capacity. The solvedOnce/hardCancel pair implements first-solution
// termination across all rounds of one job.
func (c *Coordinator) dispatch(ctx context.Context, mode string, job JobSpec, plan []assignment, solvedOnce *sync.Once, hardCancel context.CancelFunc, p shardParams) []shardOutcome {
	outcomes := make([]shardOutcome, len(plan))
	var wg sync.WaitGroup
	for i := range plan {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := &plan[i]
			outcomes[i] = c.runShard(ctx, a, shardRequest(mode, &job, a, &p))
			c.releaseOne(a)
			if mode == ModeRun && outcomes[i].err == nil && !outcomes[i].lost && outcomes[i].res.Solved {
				// First-solution termination: tell the other workers to
				// stop. Cancel RPCs — not aborted connections — so the
				// losers still deliver their partial statistics; the
				// same grace-then-hard-cancel backstop as external
				// cancellation keeps a stalled loser (or a cancel RPC
				// that raced the run registration) from blocking the
				// job forever.
				solvedOnce.Do(func() {
					c.cancelShards(plan, i)
					time.AfterFunc(cancelGrace, hardCancel)
				})
			}
		}(i)
	}
	wg.Wait()
	return outcomes
}

// lostShardResult synthesizes the stats of walkers [start, start+count)
// whose shard was lost past recovery: each walker keeps its global
// identity and portfolio entry and carries an empty Interrupted result
// stamped core.CostUnknown — never fabricated work, and never a cost a
// consumer may aggregate.
func lostShardResult(start, count int, job JobSpec) multiwalk.Result {
	stats := make([]multiwalk.WalkerStat, count)
	for i := range stats {
		g := start + i
		stats[i] = multiwalk.WalkerStat{
			Walker: g,
			Entry:  multiwalk.EntryFor(job.Portfolio, job.Walkers, g),
			Result: core.Result{Interrupted: true, Cost: core.CostUnknown},
		}
	}
	return multiwalk.Result{Winner: -1, Walkers: stats, Completed: 0, Truncated: true}
}

// plan partitions k walkers over the fleet's free capacity and
// reserves the slots it uses (healthy and suspect workers; dead and
// draining are excluded). ModeRun places at most free-slot walkers per
// worker (they run concurrently); a job that fits the fleet's total
// free capacity always fits, because shards split at arbitrary
// boundaries. ModeVirtual reserves one slot per participating worker
// (shards run sequentially) and splits the walkers proportionally to
// worker capacity, so the slowest shard — the distributed collection's
// wall-clock — is balanced.
func (c *Coordinator) plan(mode string, k int) ([]assignment, error) {
	r := c.reg
	r.mu.Lock()
	defer r.mu.Unlock()

	dispatchable := func(w *workerRef) bool {
		return w.state == stateHealthy || w.state == stateSuspect
	}

	var plan []assignment
	switch mode {
	case ModeVirtual:
		var eligible []*workerRef
		weight := 0
		for _, w := range r.workers {
			if dispatchable(w) && w.slots-w.busy >= 1 {
				eligible = append(eligible, w)
				weight += w.slots
			}
		}
		if len(eligible) == 0 {
			return nil, fmt.Errorf("%w: no worker has a free slot", ErrNoCapacity)
		}
		// Largest-remainder proportional split, ties to earlier
		// workers; zero-walker workers drop out of the plan.
		counts := make([]int, len(eligible))
		assigned := 0
		for i, w := range eligible {
			counts[i] = k * w.slots / weight
			assigned += counts[i]
		}
		for i := 0; assigned < k; i = (i + 1) % len(eligible) {
			counts[i]++
			assigned++
		}
		next := 0
		for i, w := range eligible {
			if counts[i] == 0 {
				continue
			}
			plan = append(plan, assignment{worker: w, start: next, count: counts[i], reserved: 1})
			next += counts[i]
		}
	default: // ModeRun
		free := 0
		for _, w := range r.workers {
			if dispatchable(w) {
				free += w.slots - w.busy
			}
		}
		if free < k {
			return nil, fmt.Errorf("%w: job needs %d walkers, fleet has %d free slots", ErrNoCapacity, k, free)
		}
		next := 0
		for _, w := range r.workers {
			if next == k {
				break
			}
			if !dispatchable(w) {
				continue
			}
			take := min(k-next, w.slots-w.busy)
			if take <= 0 {
				continue
			}
			plan = append(plan, assignment{worker: w, start: next, count: take, reserved: take})
			next += take
		}
	}

	for i := range plan {
		plan[i].worker.busy += plan[i].reserved
	}
	return plan, nil
}

// ErrNoRecoveryCapacity reports that shard recovery found zero healthy
// workers with any free slot: nothing can be dispatched, so the caller
// should stop retrying immediately instead of burning recovery
// attempts on empty plans.
var ErrNoRecoveryCapacity = errors.New("dist: no healthy worker has free capacity for shard recovery")

// planRecovery re-plans lost walker ranges onto healthy workers with
// free capacity, reserving the slots it takes. Suspect workers are
// excluded — the failure that made them suspect is usually the one
// being recovered from. Ranges (or range tails) that find no capacity
// come back as uncovered; the caller truncates them after the retry
// budget is spent. When no healthy worker has even one free slot the
// whole input comes back uncovered with ErrNoRecoveryCapacity.
func (c *Coordinator) planRecovery(mode string, lost []lostRange) (plan []assignment, uncovered []lostRange, err error) {
	r := c.reg
	r.mu.Lock()
	defer r.mu.Unlock()

	anyFree := false
	for _, w := range r.workers {
		if w.state == stateHealthy && w.slots-w.busy >= 1 {
			anyFree = true
			break
		}
	}
	if !anyFree {
		return nil, lost, ErrNoRecoveryCapacity
	}

	for _, lr := range lost {
		switch mode {
		case ModeVirtual:
			// One slot on the healthy worker with the most free
			// capacity; virtual shards run sequentially, so the whole
			// range stays on one worker.
			var best *workerRef
			for _, w := range r.workers {
				if w.state != stateHealthy || w.slots-w.busy < 1 {
					continue
				}
				if best == nil || w.slots-w.busy > best.slots-best.busy {
					best = w
				}
			}
			if best == nil {
				uncovered = append(uncovered, lr)
				continue
			}
			best.busy++
			plan = append(plan, assignment{worker: best, start: lr.start, count: lr.count, reserved: 1})
		default: // ModeRun
			next, end := lr.start, lr.start+lr.count
			for _, w := range r.workers {
				if next == end {
					break
				}
				if w.state != stateHealthy {
					continue
				}
				take := min(end-next, w.slots-w.busy)
				if take <= 0 {
					continue
				}
				w.busy += take
				plan = append(plan, assignment{worker: w, start: next, count: take, reserved: take})
				next += take
			}
			if next < end {
				uncovered = append(uncovered, lostRange{next, end - next})
			}
		}
	}
	return plan, uncovered, nil
}

// releaseOne returns one assignment's slot reservation; idempotent.
func (c *Coordinator) releaseOne(a *assignment) {
	r := c.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if !a.released {
		a.released = true
		a.worker.busy -= a.reserved
	}
}

// releaseAll returns every not-yet-released reservation in plan.
func (c *Coordinator) releaseAll(plan []assignment) {
	for i := range plan {
		c.releaseOne(&plan[i])
	}
}

// runShard posts one shard run and waits for its statistics. The
// worker's capability is re-validated against the registry at dispatch
// time — plan-time snapshots go stale in an elastic fleet — and a
// worker that went dead or draining in the gap is failed over (the
// shard reports lost, flowing into recovery) instead of erroring the
// job. Dispatch is a binary RunSpec frame when streaming is on and the
// worker currently advertises wire support, JSON otherwise; responses
// are JSON either way (one response per shard — framing buys nothing
// there).
func (c *Coordinator) runShard(ctx context.Context, a *assignment, reqBody RunRequest) shardOutcome {
	wireOK, ok := c.reg.dispatchable(a.worker)
	if !ok {
		c.mFailovers.Add(1)
		return shardOutcome{lost: true}
	}
	var payload []byte
	contentType := "application/json"
	if c.stream && wireOK {
		var enc wire.Encoder
		spec := wireRunSpec(&reqBody)
		framed, err := enc.RunSpecFrame(nil, &spec)
		if err != nil {
			return shardOutcome{err: err}
		}
		payload, contentType = framed, ContentTypeWire
	} else {
		var err error
		payload, err = json.Marshal(reqBody)
		if err != nil {
			return shardOutcome{err: err}
		}
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, a.worker.base+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		return shardOutcome{err: err}
	}
	httpReq.Header.Set("Content-Type", contentType)
	resp, err := c.client.Do(httpReq)
	if err != nil {
		// Transport loss: connection refused, reset mid-run, context
		// cancelled. No stats came back — the shard is lost. Mark the
		// worker so recovery plans around it; the next successful probe
		// or heartbeat restores it.
		c.reg.reportFailure(a.worker)
		return shardOutcome{lost: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err != nil || e.Error == "" {
			return shardOutcome{lost: true}
		}
		if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusTooManyRequests {
			// The worker understood us and said no: an application
			// error the caller must see (bad options reject the whole
			// job; capacity conflicts mean a mis-shared fleet).
			return shardOutcome{err: errors.New(e.Error)}
		}
		return shardOutcome{lost: true}
	}
	var wire RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return shardOutcome{lost: true}
	}
	return shardOutcome{res: resultFromWire(wire)}
}

// cancelGrace is how long the coordinator waits, after delivering
// cancel RPCs, for workers to flush their partial statistics before it
// severs the connections.
const cancelGrace = 30 * time.Second

// cancelShards delivers best-effort cancel RPCs to every shard except
// skip (pass -1 to cancel all). A bounded background context — not the
// job context — carries them, so cancellation still reaches workers
// when the caller's context is the thing that expired.
func (c *Coordinator) cancelShards(plan []assignment, skip int) {
	for i := range plan {
		if i == skip {
			continue
		}
		go c.cancelRun(&plan[i])
	}
}

// cancelRun delivers one best-effort cancel RPC on its own bounded
// background context, reporting whether the worker acknowledged it.
func (c *Coordinator) cancelRun(a *assignment) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.worker.base+"/v1/runs/"+a.runID+"/cancel", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
