package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
)

// exchangeFleet stands up n single-slot workers plus a coordinator
// with a fast board sync. One slot per worker means every walker of a
// k<=n job lands on its own worker process — so ANY adoption recorded
// anywhere is necessarily a cross-worker adoption.
func exchangeFleet(t *testing.T, n int) *Coordinator {
	t.Helper()
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		wk := NewWorker(WorkerConfig{Slots: 1})
		srv := httptest.NewServer(wk.Handler())
		t.Cleanup(func() { srv.Close(); wk.Close() })
		urls = append(urls, srv.URL)
	}
	coord, err := NewCoordinator(CoordinatorConfig{Workers: urls, BoardSync: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord
}

// TestDistExchangeCrossWorkerAdoption is the acceptance test for the
// cross-worker cooperative scheme: a 3-worker exchange run completes
// (no more "requires a single address space" rejection) with at least
// one adoption that provably crossed a worker boundary. The leader —
// the only adaptive walker, pinned to worker 0 by the greedy
// shard plan over single-slot workers — descends far below what the
// random-walk laggards on workers 1 and 2 reach, so the laggards can
// only adopt elites that traveled coordinator-board-wise from another
// process. It drives the service.Backend seam (RunJob), where the old
// rejection lived.
func TestDistExchangeCrossWorkerAdoption(t *testing.T) {
	coord := exchangeFleet(t, 3)

	engine := tunedEngine(t, "magic-square", 14)
	engine.MaxIterations = 300_000
	engine.MaxRuns = 1
	engine.CheckEvery = 64
	laggard := engine
	laggard.Strategy = core.StrategyRandomWalk

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := coord.RunJob(ctx, "magic-square", 14, nil, nil, multiwalk.Options{
		Walkers: 3,
		Seed:    20260729,
		Portfolio: []multiwalk.PortfolioEntry{
			{Weight: 1, Engine: engine},  // walker 0: adaptive leader on worker 0
			{Weight: 2, Engine: laggard}, // walkers 1, 2: laggards on workers 1, 2
		},
		Exchange: multiwalk.ExchangeOptions{Enabled: true, Period: 64, AdoptFactor: 1.0},
	})
	if err != nil {
		t.Fatalf("distributed exchange run errored: %v", err)
	}
	if res.Truncated {
		t.Fatalf("run truncated: %+v", res)
	}
	if len(res.Walkers) != 3 || res.Completed != 3 {
		t.Fatalf("want 3 completed walkers, got %d completed of %d", res.Completed, len(res.Walkers))
	}
	wantEntries := []int{0, 1, 1}
	for w, ws := range res.Walkers {
		if ws.Walker != w || ws.Entry != wantEntries[w] {
			t.Fatalf("walker %d identity lost: %+v (want entry %d)", w, ws, wantEntries[w])
		}
	}
	if res.Adoptions == 0 {
		t.Fatal("no cross-worker adoptions: the board did not connect the worker processes")
	}
	var laggardAdoptions int64
	for _, ws := range res.Walkers[1:] {
		laggardAdoptions += ws.Adoptions
	}
	if laggardAdoptions == 0 {
		t.Fatalf("all %d adoptions on the leader: laggard workers never received the elite", res.Adoptions)
	}
}

// TestDistExchangeVirtualRejected: the deterministic virtual mode has
// no concurrent peers to cooperate with; the coordinator must reject
// the combination before reserving slots, and the worker protocol
// enforces the same rule.
func TestDistExchangeVirtualRejected(t *testing.T) {
	coord := exchangeFleet(t, 1)
	_, err := coord.RunVirtual(context.Background(), JobSpec{
		Problem: "costas", Size: 8, Walkers: 1, Seed: 1,
		Engine:   tunedEngine(t, "costas", 8),
		Exchange: multiwalk.ExchangeOptions{Enabled: true},
	})
	if !errors.Is(err, errExchangeVirtual) {
		t.Fatalf("virtual exchange run not rejected: %v", err)
	}

	req := RunRequest{
		ID: "r1", Mode: ModeVirtual, Problem: "costas", Size: 8,
		TotalWalkers: 1, Count: 1,
		Exchange: ExchangeSpec{Enabled: true}, Board: "http://example.invalid/board",
	}
	if err := req.Validate(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("protocol accepted virtual exchange shard: %v", err)
	}
	req.Mode = ModeRun
	req.Board = ""
	if err := req.Validate(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("protocol accepted exchange shard without a board: %v", err)
	}
}

// TestDistExchangeWorkerLoss: losing a worker mid-exchange must
// surface as Truncated with the lost walkers explicitly empty and
// Interrupted — no fabricated statistics — while the surviving workers
// keep cooperating through the board and deliver their real stats.
func TestDistExchangeWorkerLoss(t *testing.T) {
	healthy := NewWorker(WorkerConfig{Slots: 2})
	healthySrv := httptest.NewServer(healthy.Handler())
	t.Cleanup(func() { healthySrv.Close(); healthy.Close() })
	started := make(chan struct{}, 1)
	lossy := lossyWorker(t, 1, started)

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:         []string{healthySrv.URL, lossy.URL},
		BoardSync:       2 * time.Millisecond,
		RecoverAttempts: -1, // pin the no-recovery truncation contract
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	// An instance no walker solves inside its budget, so the healthy
	// shard runs to completion while the lossy worker's shard vanishes.
	engine := tunedEngine(t, "costas", 16)
	engine.MaxIterations = 2000
	engine.MaxRuns = 1
	engine.CheckEvery = 16
	res, err := coord.Run(context.Background(), JobSpec{
		Problem: "costas", Size: 16, Walkers: 3, Seed: 7, Engine: engine,
		Exchange: multiwalk.ExchangeOptions{Enabled: true, Period: 16, AdoptFactor: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Solved {
		t.Fatalf("worker loss mid-exchange: want Truncated unsolved, got %+v", res)
	}
	if res.Completed != 2 {
		t.Fatalf("Completed = %d, want 2 (only the healthy shard ran)", res.Completed)
	}
	lost := res.Walkers[2]
	if lost.Result.Iterations != 0 || !lost.Result.Interrupted || lost.Result.Cost != core.CostUnknown ||
		lost.Adoptions != 0 || lost.Yielded {
		t.Fatalf("lost walker carries fabricated stats: %+v", lost)
	}
	for _, ws := range res.Walkers[:2] {
		if ws.Result.Iterations == 0 {
			t.Fatalf("healthy walker %d reported no work: %+v", ws.Walker, ws)
		}
	}
}

// hubProbe is a minimal core.Problem for board-hub tests: the cost is
// the permutation's inversion count, cheap to compute by hand.
type hubProbe struct{ n int }

func (p hubProbe) Size() int { return p.n }
func (p hubProbe) Cost(cfg []int) int {
	inv := 0
	for i := 0; i < len(cfg); i++ {
		for j := i + 1; j < len(cfg); j++ {
			if cfg[i] > cfg[j] {
				inv++
			}
		}
	}
	return inv
}
func (p hubProbe) CostOnVariable(cfg []int, i int) int {
	e := 0
	for j := 0; j < len(cfg); j++ {
		if (j < i && cfg[j] > cfg[i]) || (j > i && cfg[i] > cfg[j]) {
			e++
		}
	}
	return e
}
func (p hubProbe) CostIfSwap(cfg []int, cost, i, j int) int {
	cfg[i], cfg[j] = cfg[j], cfg[i]
	c := p.Cost(cfg)
	cfg[i], cfg[j] = cfg[j], cfg[i]
	return c
}

// TestBoardHubProtocol unit-tests the coordinator-side board endpoint:
// merge semantics, the monotone global best, and the verification of
// publishes — a corrupt claim (wrong length, non-permutation, or a
// cost that does not match the configuration) must never poison the
// job's elite pool or stand the fleet down.
func TestBoardHubProtocol(t *testing.T) {
	h := newBoardHub("", "", "")
	t.Cleanup(h.close)
	url, board, release, err := h.open("jobX", hubProbe{n: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(release)

	post := func(s BoardSync) (BoardSync, int) {
		t.Helper()
		payload, _ := json.Marshal(s)
		resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out BoardSync
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return out, resp.StatusCode
	}

	// Empty-handed fetch against an empty board.
	if out, code := post(BoardSync{}); code != http.StatusOK || out.Valid {
		t.Fatalf("empty fetch: %+v code %d", out, code)
	}
	// First honest publish becomes the global best ([1,0,2] has one
	// inversion).
	if out, code := post(BoardSync{Valid: true, Cost: 1, Cfg: []int{1, 0, 2}}); code != http.StatusOK || !out.Valid || out.Cost != 1 {
		t.Fatalf("first publish: %+v code %d", out, code)
	}
	// A worse honest publish merges to the existing best — monotone.
	out, _ := post(BoardSync{Valid: true, Cost: 3, Cfg: []int{2, 1, 0}})
	if out.Cost != 1 || out.Cfg[0] != 1 {
		t.Fatalf("worse publish displaced the best: %+v", out)
	}
	// Corrupt payloads claiming an improvement are rejected, not
	// merged (non-improving claims are skipped without verification —
	// the board keeps strict improvements only, so they are inert).
	if _, code := post(BoardSync{Valid: true, Cost: 0, Cfg: []int{3, 3, 3}}); code != http.StatusBadRequest {
		t.Fatalf("non-permutation accepted: code %d", code)
	}
	if _, code := post(BoardSync{Valid: true, Cost: 0, Cfg: []int{1, 0}}); code != http.StatusBadRequest {
		t.Fatalf("wrong-length configuration accepted: code %d", code)
	}
	// The poisoning vector: a fake cost-0 claim on a non-solution (its
	// actual cost is 1) would stand the whole fleet down; the hub must
	// recompute and reject.
	if _, code := post(BoardSync{Valid: true, Cost: 0, Cfg: []int{1, 0, 2}}); code != http.StatusBadRequest {
		t.Fatalf("fake solved claim accepted: code %d", code)
	}
	// Likewise a fake low cost that would monotonically block real
	// elites.
	if _, code := post(BoardSync{Valid: true, Cost: -1, Cfg: []int{0, 2, 1}}); code != http.StatusBadRequest {
		t.Fatalf("understated cost accepted: code %d", code)
	}
	// The coordinator-side handle sees only verified state.
	if cost, cfg, ok := board.Snapshot(); !ok || cost != 1 || cfg[0] != 1 {
		t.Fatalf("coordinator-side snapshot diverged: %d %v %v", cost, cfg, ok)
	}
	// Unknown boards 404 (a straggling sync racing job completion).
	release()
	if _, code := post(BoardSync{}); code != http.StatusNotFound {
		t.Fatalf("sync against a released board: code %d, want 404", code)
	}
}
