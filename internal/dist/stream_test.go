package dist

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
)

// streamFleet stands up n single-slot streaming workers plus a
// streaming coordinator — the exchangeFleet topology with the binary
// control plane negotiated everywhere. The workers are returned too so
// stream-lifecycle tests can observe their connection pools.
func streamFleet(t *testing.T, n int) (*Coordinator, []*Worker) {
	t.Helper()
	urls := make([]string, 0, n)
	workers := make([]*Worker, 0, n)
	for i := 0; i < n; i++ {
		wk := NewWorker(WorkerConfig{Slots: 1, Stream: true})
		srv := httptest.NewServer(wk.Handler())
		t.Cleanup(func() { srv.Close(); wk.Close() })
		urls = append(urls, srv.URL)
		workers = append(workers, wk)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:   urls,
		BoardSync: 2 * time.Millisecond,
		Stream:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord, workers
}

// exchangeJob is the PR 5 cross-worker adoption matrix: one adaptive
// leader pinned to worker 0 by the greedy shard plan, two random-walk
// laggards on workers 1 and 2 that can only adopt elites which
// traveled through the coordinator board.
func exchangeJob(t *testing.T) JobSpec {
	t.Helper()
	engine := tunedEngine(t, "magic-square", 14)
	engine.MaxIterations = 300_000
	engine.MaxRuns = 1
	engine.CheckEvery = 64
	laggard := engine
	laggard.Strategy = core.StrategyRandomWalk
	return JobSpec{
		Problem: "magic-square", Size: 14, Walkers: 3, Seed: 20260729,
		Portfolio: []multiwalk.PortfolioEntry{
			{Weight: 1, Engine: engine},
			{Weight: 2, Engine: laggard},
		},
		Exchange: multiwalk.ExchangeOptions{Enabled: true, Period: 64, AdoptFactor: 1.0},
	}
}

// TestDistStreamExchangeCrossWorkerAdoption is the streaming
// acceptance test: the 3-worker adoption matrix of
// TestDistExchangeCrossWorkerAdoption completes with cooperation
// crossing worker boundaries while the board moves exclusively over
// the persistent stream — zero per-tick HTTP board POSTs.
func TestDistStreamExchangeCrossWorkerAdoption(t *testing.T) {
	coord, _ := streamFleet(t, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := coord.Run(ctx, exchangeJob(t))
	if err != nil {
		t.Fatalf("streamed exchange run errored: %v", err)
	}
	if res.Truncated {
		t.Fatalf("run truncated: %+v", res)
	}
	if len(res.Walkers) != 3 || res.Completed != 3 {
		t.Fatalf("want 3 completed walkers, got %d completed of %d", res.Completed, len(res.Walkers))
	}
	if res.Adoptions == 0 {
		t.Fatal("no cross-worker adoptions: the streamed board did not connect the worker processes")
	}
	var laggardAdoptions int64
	for _, ws := range res.Walkers[1:] {
		laggardAdoptions += ws.Adoptions
	}
	if laggardAdoptions == 0 {
		t.Fatalf("all %d adoptions on the leader: laggard workers never received the elite", res.Adoptions)
	}
	if n := coord.BoardHTTPSyncs(); n != 0 {
		t.Fatalf("streaming run performed %d HTTP board syncs, want 0 (the POST loop should be fully replaced)", n)
	}
	if rx, tx := coord.BoardTraffic(); rx == 0 || tx == 0 {
		t.Fatalf("stream transport carried no board bytes (rx=%d tx=%d): cooperation happened some other way?", rx, tx)
	}
}

// streamConnCount reports the hub's live stream connection count.
func streamConnCount(h *boardHub) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// TestDistStreamFallbackToHTTP severs every board stream connection
// mid-run: the affected shard runs must degrade to the HTTP sync loop
// and complete normally — streaming is a transport optimization, never
// a correctness dependency. The next run re-dials fresh and is fully
// streamed again (no new HTTP syncs).
func TestDistStreamFallbackToHTTP(t *testing.T) {
	coord, workers := streamFleet(t, 2)

	engine := tunedEngine(t, "costas", 16)
	engine.MaxIterations = 60_000
	engine.MaxRuns = 1
	engine.CheckEvery = 16
	job := JobSpec{
		Problem: "costas", Size: 16, Walkers: 2, Seed: 7, Engine: engine,
		Exchange: multiwalk.ExchangeOptions{Enabled: true, Period: 16, AdoptFactor: 1.0},
	}

	done := make(chan struct{})
	var res multiwalk.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = coord.Run(context.Background(), job)
	}()

	// Wait for both workers to attach their streams, then cut them.
	deadline := time.Now().Add(10 * time.Second)
	for streamConnCount(coord.boards) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never attached board streams")
		}
		select {
		case <-done:
			t.Fatalf("run finished before streams attached: res=%+v err=%v", res, runErr)
		case <-time.After(time.Millisecond):
		}
	}
	coord.boards.severStreams()
	<-done

	if runErr != nil {
		t.Fatalf("run with severed streams errored: %v", runErr)
	}
	if res.Completed != 2 {
		t.Fatalf("Completed = %d, want 2 (fallback must keep the shards alive)", res.Completed)
	}

	// Wait for every worker to notice its severed connection and drop
	// the dead session from its pool. A run started before that races
	// the readLoop's failure detection: join can hand it the stale
	// session (the subscribe write lands in a kernel buffer that only
	// RSTs later) and the run would — correctly, by design — degrade
	// to HTTP sync, which is not the behavior this half of the test
	// pins.
	for _, wk := range workers {
		for {
			wk.streams.mu.Lock()
			live := len(wk.streams.conns)
			wk.streams.mu.Unlock()
			if live == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("worker never dropped its severed stream session")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Second run: the worker pools dropped the dead sessions, so the
	// fleet re-dials and streams again — no HTTP board syncs against
	// ITS board. The assertion is scoped per job because server-side
	// accounting lags client completion: a run-1 straggler POST (its
	// client long gone after the sever) can still be handled here, and
	// it says nothing about run 2's transport.
	res2, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("post-sever run errored: %v", err)
	}
	if res2.Completed != 2 {
		t.Fatalf("post-sever run Completed = %d, want 2", res2.Completed)
	}
	if n := coord.boards.syncsFor("job000002"); n != 0 {
		t.Fatalf("post-sever run performed %d HTTP board syncs, want 0 (workers should have re-dialed the stream)", n)
	}
}

// TestRemoteBoardDirtyFlagSkipsIdleSyncs pins the change-driven sync
// behavior: an idle cache must not POST every tick — only the bounded-
// staleness refresh probe, one tick in boardRefreshTicks — while a
// local improvement still flows out promptly.
func TestRemoteBoardDirtyFlagSkipsIdleSyncs(t *testing.T) {
	h := newBoardHub("", "", "")
	t.Cleanup(h.close)
	url, global, release, err := h.open("jobIdle", hubProbe{n: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(release)

	const period = 10 * time.Millisecond
	b := newRemoteBoard(url, newBoardClient(), period)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.start(ctx)

	// Idle phase: no publish ever happens. Over ~40 ticks an
	// every-tick syncer would POST ~40 times; the dirty-flag syncer
	// probes only every boardRefreshTicks ticks.
	const idleTicks = 40
	time.Sleep(idleTicks * period)
	idleSyncs := h.mHTTPSyncs.Load()
	if idleSyncs == 0 {
		t.Fatal("idle cache never probed the board: the staleness bound is gone and laggards would never adopt")
	}
	if max := int64(idleTicks/boardRefreshTicks + 3); idleSyncs > max {
		t.Fatalf("idle cache synced %d times over %d ticks (want <= %d): no-change ticks are not being skipped", idleSyncs, idleTicks, max)
	}

	// Improvement phase: a publish must reach the global board within
	// a couple of ticks, not after the staleness window.
	b.Publish(1, []int{1, 0, 2, 3}) // one inversion under hubProbe
	deadline := time.Now().Add(20 * period)
	for {
		if cost, _, ok := global.Snapshot(); ok && cost == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("published improvement never reached the global board")
		}
		time.Sleep(period / 4)
	}
	b.stop()
}
