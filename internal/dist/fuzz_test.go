package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDecodeRequest hammers the worker protocol decoder with arbitrary
// bytes. The contract: no panics, no unbounded allocation (the decoder
// caps body, walker and portfolio sizes), and every failure wraps the
// typed ErrBadRequest. A successfully decoded request must pass its
// own Validate — decode-then-revalidate is how the worker trusts the
// value for slot arithmetic.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"id":"a","mode":"run","problem":"queens","total_walkers":4,"start":1,"count":2,"engine":{"max_iterations":100}}`))
	f.Add([]byte(`{"id":"a","mode":"virtual","problem":"costas","size":9,"seed":7,"total_walkers":8,"count":8,"portfolio":[{"weight":2,"engine":{"strategy":"adaptive"}},{"engine":{"strategy":"metropolis"}}]}`))
	f.Add([]byte(`{"id":"a","mode":"run","problem":"queens","total_walkers":1,"count":1,"engine":{"reset_fraction":1e308}}`))
	f.Add([]byte(`{"id":"a","mode":"run","problem":"queens","total_walkers":9007199254740993,"count":1}`))
	f.Add([]byte(`{"id":"a","mode":"virtual","problem":"queens","total_walkers":4,"start":4611686018427387904,"count":4611686018427387904}`))
	if big, err := json.Marshal(RunRequest{ID: "b", Mode: ModeRun, Problem: "magic-square", TotalWalkers: 1 << 19, Start: 0, Count: 1 << 19}); err == nil {
		f.Add(big)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRunRequest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error %v does not wrap ErrBadRequest", err)
			}
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("decoded request fails its own Validate: %v", err)
		}
		// The invariants the worker's slot accounting relies on.
		if req.Count < 1 || req.Start < 0 || req.Start+req.Count > req.TotalWalkers {
			t.Fatalf("validated request with inconsistent shard: %+v", req)
		}
	})
}
