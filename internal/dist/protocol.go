// Package dist shards multi-walk jobs across worker processes: a
// Coordinator partitions a job's walkers into contiguous shards, ships
// each shard to a Worker over a small HTTP JSON protocol, and merges
// the per-walker statistics back into one multiwalk.Result.
//
// The paper's independent multi-walk scheme makes this split almost
// free: walkers exchange no data during the search, so the only
// messages are the shard assignment, the final per-walker statistics,
// and (in wall-clock mode) the first-solution cancellation — the same
// minimal-communication design as the paper's MPI deployment and the
// X10/Cell follow-ups.
//
// Determinism is the design center. A walker's identity — its seed
// stream, its portfolio entry, its index in the result — is derived
// from the *global* walker index (multiwalk.Shard), never from its
// position within a shard or the worker it landed on. A distributed
// virtual run therefore reproduces the single-process
// multiwalk.RunVirtual bit-for-bit for the same (problem, options,
// seed), regardless of how the walkers were partitioned, and the whole
// §2 performance analysis transfers unchanged. See DESIGN.md §8.
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/problems"
	"repro/internal/wire"
)

// ContentTypeWire marks an HTTP body carrying one internal/wire frame
// instead of JSON. The worker's run endpoint dispatches on it, so a
// stream-negotiated coordinator ships RunSpec frames while plain
// HTTP/JSON peers keep working against the same route.
const ContentTypeWire = "application/x-repro-wire"

// Typed protocol errors. The worker HTTP layer maps ErrBadRequest to
// 400 and ErrBusy to 429; the coordinator surfaces ErrNoCapacity when
// a job cannot be placed on the current fleet.
var (
	// ErrBadRequest marks a run request that failed structural
	// validation (malformed JSON, unknown problem or strategy,
	// inconsistent shard range). Every error returned by
	// DecodeRunRequest wraps it.
	ErrBadRequest = errors.New("dist: bad request")
	// ErrBusy reports a worker rejecting a shard that exceeds its free
	// slot capacity. The coordinator's own accounting makes this rare;
	// it exists so a worker shared by several coordinators fails fast
	// instead of oversubscribing.
	ErrBusy = errors.New("dist: worker at capacity")
	// ErrNoCapacity reports that the fleet's free slots cannot hold a
	// job's walkers.
	ErrNoCapacity = errors.New("dist: insufficient free worker capacity")
)

// Execution modes of a shard run.
const (
	// ModeRun executes the shard's walkers concurrently (multiwalk.Run):
	// the wall-clock production mode, cancelled by the coordinator as
	// soon as any shard reports a solution.
	ModeRun = "run"
	// ModeVirtual executes the shard's walkers sequentially to
	// completion (multiwalk.RunVirtual): the deterministic mode whose
	// merged result is bit-for-bit the single-process virtual run.
	ModeVirtual = "virtual"
)

// Structural caps applied at decode time, keeping an adversarial or
// corrupted request from ballooning worker memory before validation
// proper (the fuzz suite leans on these).
const (
	maxWalkers        = 1 << 20
	maxSize           = 1 << 20
	maxPortfolio      = 4096
	maxProblemParams  = 256
	maxInitialConfig  = 1 << 20
	maxRequestBodyLen = 8 << 20
	maxBoardURL       = 4096
	// maxBoardSyncLen must hold one configuration of any protocol-legal
	// instance (n up to maxSize, up to ~8 JSON bytes per value) —
	// otherwise large exchange jobs would silently degrade to
	// independent walks with every sync rejected at the cap.
	maxBoardSyncLen = 16 << 20
)

// RunRequest is the worker protocol's only command: run the global
// walkers [Start, Start+Count) of a TotalWalkers-walker job.
type RunRequest struct {
	// ID names the run for POST /v1/runs/{id}/cancel. The coordinator
	// makes it unique per (job, worker); workers reject duplicates.
	ID string `json:"id"`
	// Mode is ModeRun or ModeVirtual.
	Mode string `json:"mode"`
	// Problem and Size identify the benchmark instance; every worker
	// builds its own instances from the shared registry (configurations
	// never cross the wire, only names and statistics).
	Problem string `json:"problem"`
	Size    int    `json:"size,omitempty"`
	// Params carries benchmark-specific problem parameters (the
	// finite-domain benchmarks' knobs, e.g. timetable's slots/rooms/
	// teachers). The worker's factory construction validates them
	// semantically; the protocol layer caps their number only.
	Params map[string]int `json:"params,omitempty"`
	// Seed is the job's master seed. Workers derive the full
	// TotalWalkers-long seed sequence and use the slice their shard
	// covers, so seeds never depend on the partition.
	Seed uint64 `json:"seed"`
	// TotalWalkers, Start, Count describe the shard: global walkers
	// [Start, Start+Count) of a TotalWalkers-walker job.
	TotalWalkers int `json:"total_walkers"`
	Start        int `json:"start"`
	Count        int `json:"count"`
	// Engine carries the fully resolved engine options. The coordinator
	// resolves tuning once and ships numbers; workers apply them
	// verbatim, so coordinator and worker registries cannot drift.
	Engine EngineSpec `json:"engine"`
	// Portfolio, when non-empty, is the job's heterogeneous portfolio.
	// Entry assignment uses the global walker index.
	Portfolio []PortfolioSpec `json:"portfolio,omitempty"`
	// DeadlineMS bounds the shard run on the worker itself, so an
	// orphaned run (coordinator gone without cancelling) cannot hold
	// slots forever. 0 means no worker-side deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Exchange, when Enabled, runs the shard's walkers in the dependent
	// (communicating) multi-walk scheme against the job-wide global
	// board at Board. Requires ModeRun: the virtual mode's sequential
	// sweeps have no concurrent peers to cooperate with.
	Exchange ExchangeSpec `json:"exchange,omitzero"`
	// Board is the coordinator-hosted global board endpoint for the job
	// (combined publish-and-fetch, POST BoardSync). Required when
	// Exchange is enabled; every shard of one job receives the same URL.
	Board string `json:"board,omitempty"`
	// BoardStream is the TCP address of the coordinator's streaming
	// board hub (internal/wire frames). Optional: a stream-capable
	// worker replaces the periodic Board POST loop with a persistent
	// multiplexed connection carrying deltas both ways, and falls back
	// to Board over HTTP if the stream dies. Empty keeps the HTTP path.
	BoardStream string `json:"board_stream,omitempty"`
	// BoardJob is the hub-side job key BoardStream subscriptions and
	// publishes are tagged with (frames multiplex several jobs over one
	// worker connection). Required iff BoardStream is set.
	BoardJob string `json:"board_job,omitempty"`
	// ProgressURL, when set, asks the worker to report the shard's
	// progress (iteration counts) periodically so the coordinator's
	// straggler detector can compare shards. It is the HTTP fallback
	// endpoint (POST ShardProgressReport); a stream-capable worker
	// prefers ProgressStream, the coordinator's wire hub address, and
	// sends TypeShardProgress frames instead. ProgressMS is the report
	// period in milliseconds (0 selects the worker default, 250ms).
	// Reports are advisory: losing them only blinds the detector.
	ProgressURL    string `json:"progress_url,omitempty"`
	ProgressStream string `json:"progress_stream,omitempty"`
	ProgressMS     int64  `json:"progress_ms,omitempty"`
}

// ShardProgressReport is the HTTP JSON fallback body for one shard
// progress report (POST {ProgressURL}): the run's total iterations so
// far, how many walkers have started, and the best cost seen (-1 when
// no walker has completed an iteration yet). The wire-stream path
// carries the same fields in a TypeShardProgress frame.
type ShardProgressReport struct {
	Iters   int64 `json:"iters"`
	Walkers int64 `json:"walkers"`
	Best    int64 `json:"best"`
}

// ExchangeSpec is the wire form of multiwalk.ExchangeOptions plus the
// distribution-only sync cadence. Like EngineSpec, it carries resolved
// numbers only; the board connection itself is process-local state the
// worker builds from Board.
type ExchangeSpec struct {
	Enabled      bool    `json:"enabled,omitempty"`
	Period       int64   `json:"period,omitempty"`
	AdoptFactor  float64 `json:"adopt_factor,omitempty"`
	PerturbSwaps int     `json:"perturb_swaps,omitempty"`
	// SyncMS is the worker cache's board sync period in milliseconds —
	// how often the write-through cache reconciles with the global
	// board. 0 selects the worker's default (50ms). The hot loop never
	// waits on this: walkers always read and write the local cache.
	SyncMS int64 `json:"sync_ms,omitempty"`
}

// ExchangeSpecFor converts exchange options into their wire form.
func ExchangeSpecFor(x multiwalk.ExchangeOptions) ExchangeSpec {
	return ExchangeSpec{
		Enabled:      x.Enabled,
		Period:       x.Period,
		AdoptFactor:  x.AdoptFactor,
		PerturbSwaps: x.PerturbSwaps,
	}
}

// Options converts the wire form back into exchange options.
func (s ExchangeSpec) Options() multiwalk.ExchangeOptions {
	return multiwalk.ExchangeOptions{
		Enabled:      s.Enabled,
		Period:       s.Period,
		AdoptFactor:  s.AdoptFactor,
		PerturbSwaps: s.PerturbSwaps,
	}
}

// validate checks the wire-level invariants of an exchange spec —
// multiwalk's shared exchange validator plus the wire-only sync
// cadence — so a bad job is rejected at the protocol edge rather than
// after slots were reserved.
func (s *ExchangeSpec) validate(where string) error {
	if !s.Enabled {
		return nil
	}
	x := s.Options()
	if err := x.Validate(); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadRequest, where, err)
	}
	if s.SyncMS < 0 {
		return fmt.Errorf("%w: %s: negative sync_ms", ErrBadRequest, where)
	}
	return nil
}

// BoardSync is one combined publish-and-fetch exchange against a job's
// global board: the request carries the caller's current best (Valid
// false when it has none yet), the response the global best after the
// merge. One round trip per sync period is the scheme's entire network
// footprint — the paper's minimal-data-transfer goal, kept across
// process boundaries.
// Gen is the board's generation counter: the hub bumps it on every
// accepted improvement and stamps responses with it. A request whose
// Gen matches the hub's current generation receives a compact
// "unchanged" answer (Valid false, no Cfg, same Gen) instead of a
// re-sent configuration; peers that never set Gen (older workers)
// always get the full response, so the field is purely an
// optimization.
type BoardSync struct {
	Valid bool   `json:"valid"`
	Cost  int    `json:"cost,omitempty"`
	Gen   uint64 `json:"gen,omitempty"`
	Cfg   []int  `json:"cfg,omitempty"`
}

// EngineSpec is the wire form of core.Options: every numeric tunable,
// none of the process-local hooks (Monitor cannot cross a process
// boundary; the coordinator rejects jobs carrying one).
type EngineSpec struct {
	MaxIterations    int64   `json:"max_iterations,omitempty"`
	MaxRuns          int     `json:"max_runs,omitempty"`
	FreezeLocMin     int     `json:"freeze_loc_min,omitempty"`
	FreezeSwap       int     `json:"freeze_swap,omitempty"`
	ResetLimit       int     `json:"reset_limit,omitempty"`
	ResetFraction    float64 `json:"reset_fraction,omitempty"`
	ProbSelectLocMin float64 `json:"prob_select_loc_min,omitempty"`
	Strategy         string  `json:"strategy,omitempty"`
	FirstBest        bool    `json:"first_best,omitempty"`
	Exhaustive       bool    `json:"exhaustive,omitempty"`
	CheckEvery       int     `json:"check_every,omitempty"`
	InitialConfig    []int   `json:"initial_config,omitempty"`
}

// PortfolioSpec is the wire form of multiwalk.PortfolioEntry.
type PortfolioSpec struct {
	Weight int        `json:"weight,omitempty"`
	Engine EngineSpec `json:"engine"`
}

// WalkerStatWire is the wire form of multiwalk.WalkerStat. Walker is
// the global index; Elapsed travels as nanoseconds.
type WalkerStatWire struct {
	Walker         int    `json:"walker"`
	Entry          int    `json:"entry"`
	Solved         bool   `json:"solved"`
	Solution       []int  `json:"solution,omitempty"`
	Cost           int    `json:"cost"`
	Strategy       string `json:"strategy,omitempty"`
	Iterations     int64  `json:"iterations"`
	Swaps          int64  `json:"swaps"`
	Assigns        int64  `json:"assigns,omitempty"`
	Flips          int64  `json:"flips,omitempty"`
	LocalMinima    int64  `json:"local_minima"`
	PlateauEscapes int64  `json:"plateau_escapes"`
	Resets         int64  `json:"resets"`
	Restarts       int    `json:"restarts"`
	Interrupted    bool   `json:"interrupted"`
	ElapsedNS      int64  `json:"elapsed_ns"`
	Adoptions      int64  `json:"adoptions,omitempty"`
	Yielded        bool   `json:"yielded,omitempty"`
}

// RunResponse reports a finished shard run.
type RunResponse struct {
	Stats     []WalkerStatWire `json:"stats"`
	Completed int              `json:"completed"`
	Truncated bool             `json:"truncated"`
	ElapsedNS int64            `json:"elapsed_ns"`
}

// wireEngineSpec converts an engine spec to its binary form.
func wireEngineSpec(s *EngineSpec) wire.EngineSpec {
	return wire.EngineSpec{
		MaxIterations:    s.MaxIterations,
		MaxRuns:          int64(s.MaxRuns),
		FreezeLocMin:     int64(s.FreezeLocMin),
		FreezeSwap:       int64(s.FreezeSwap),
		ResetLimit:       int64(s.ResetLimit),
		ResetFraction:    s.ResetFraction,
		ProbSelectLocMin: s.ProbSelectLocMin,
		Strategy:         s.Strategy,
		FirstBest:        s.FirstBest,
		Exhaustive:       s.Exhaustive,
		CheckEvery:       int64(s.CheckEvery),
		InitialConfig:    s.InitialConfig,
	}
}

// engineSpecFromWire converts a binary engine spec back.
func engineSpecFromWire(s *wire.EngineSpec) EngineSpec {
	return EngineSpec{
		MaxIterations:    s.MaxIterations,
		MaxRuns:          int(s.MaxRuns),
		FreezeLocMin:     int(s.FreezeLocMin),
		FreezeSwap:       int(s.FreezeSwap),
		ResetLimit:       int(s.ResetLimit),
		ResetFraction:    s.ResetFraction,
		ProbSelectLocMin: s.ProbSelectLocMin,
		Strategy:         s.Strategy,
		FirstBest:        s.FirstBest,
		Exhaustive:       s.Exhaustive,
		CheckEvery:       int(s.CheckEvery),
		InitialConfig:    s.InitialConfig,
	}
}

// wireRunSpec converts a run request to its binary dispatch form.
func wireRunSpec(req *RunRequest) wire.RunSpec {
	spec := wire.RunSpec{
		ID:           req.ID,
		Mode:         req.Mode,
		Problem:      req.Problem,
		Size:         int64(req.Size),
		Seed:         req.Seed,
		TotalWalkers: int64(req.TotalWalkers),
		Start:        int64(req.Start),
		Count:        int64(req.Count),
		Engine:       wireEngineSpec(&req.Engine),
		DeadlineMS:   req.DeadlineMS,
		Exchange: wire.ExchangeSpec{
			Enabled:      req.Exchange.Enabled,
			Period:       req.Exchange.Period,
			AdoptFactor:  req.Exchange.AdoptFactor,
			PerturbSwaps: int64(req.Exchange.PerturbSwaps),
			SyncMS:       req.Exchange.SyncMS,
		},
		Board:          req.Board,
		BoardStream:    req.BoardStream,
		BoardJob:       req.BoardJob,
		ProgressURL:    req.ProgressURL,
		ProgressStream: req.ProgressStream,
		ProgressMS:     req.ProgressMS,
	}
	if len(req.Params) > 0 {
		spec.Params = make(map[string]int64, len(req.Params))
		for k, v := range req.Params {
			spec.Params[k] = int64(v)
		}
	}
	for i := range req.Portfolio {
		spec.Portfolio = append(spec.Portfolio, wire.PortfolioSpec{
			Weight: int64(req.Portfolio[i].Weight),
			Engine: wireEngineSpec(&req.Portfolio[i].Engine),
		})
	}
	return spec
}

// runRequestFromWire converts a binary run spec back into the JSON
// request struct, which carries all semantic validation.
func runRequestFromWire(spec *wire.RunSpec) RunRequest {
	req := RunRequest{
		ID:           spec.ID,
		Mode:         spec.Mode,
		Problem:      spec.Problem,
		Size:         int(spec.Size),
		Seed:         spec.Seed,
		TotalWalkers: int(spec.TotalWalkers),
		Start:        int(spec.Start),
		Count:        int(spec.Count),
		Engine:       engineSpecFromWire(&spec.Engine),
		DeadlineMS:   spec.DeadlineMS,
		Exchange: ExchangeSpec{
			Enabled:      spec.Exchange.Enabled,
			Period:       spec.Exchange.Period,
			AdoptFactor:  spec.Exchange.AdoptFactor,
			PerturbSwaps: int(spec.Exchange.PerturbSwaps),
			SyncMS:       spec.Exchange.SyncMS,
		},
		Board:          spec.Board,
		BoardStream:    spec.BoardStream,
		BoardJob:       spec.BoardJob,
		ProgressURL:    spec.ProgressURL,
		ProgressStream: spec.ProgressStream,
		ProgressMS:     spec.ProgressMS,
	}
	if len(spec.Params) > 0 {
		req.Params = make(map[string]int, len(spec.Params))
		for k, v := range spec.Params {
			req.Params[k] = int(v)
		}
	}
	for i := range spec.Portfolio {
		req.Portfolio = append(req.Portfolio, PortfolioSpec{
			Weight: int(spec.Portfolio[i].Weight),
			Engine: engineSpecFromWire(&spec.Portfolio[i].Engine),
		})
	}
	return req
}

// DecodeRunRequestWire reads and validates one binary run request (a
// single RunSpec frame). Structural wire errors and semantic failures
// both wrap ErrBadRequest, exactly like the JSON decoder.
func DecodeRunRequestWire(r io.Reader) (RunRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r, maxRequestBodyLen))
	if err != nil {
		return RunRequest{}, fmt.Errorf("%w: reading wire body: %v", ErrBadRequest, err)
	}
	typ, payload, rest, err := wire.DecodeFrame(body)
	if err != nil {
		return RunRequest{}, fmt.Errorf("%w: invalid wire frame: %v", ErrBadRequest, err)
	}
	if typ != wire.TypeRunSpec || len(rest) != 0 {
		return RunRequest{}, fmt.Errorf("%w: expected exactly one run spec frame", ErrBadRequest)
	}
	spec, err := wire.DecodeRunSpec(payload)
	if err != nil {
		return RunRequest{}, fmt.Errorf("%w: invalid run spec: %v", ErrBadRequest, err)
	}
	req := runRequestFromWire(&spec)
	if err := req.Validate(); err != nil {
		return RunRequest{}, err
	}
	return req, nil
}

// DecodeRunRequest reads and structurally validates one RunRequest.
// Every error wraps ErrBadRequest, so callers (and the fuzz suite) can
// separate client mistakes from worker faults with errors.Is. Deep
// option validation stays where it lives for local runs — core and
// multiwalk — and is mapped to the same typed error by the worker.
func DecodeRunRequest(r io.Reader) (RunRequest, error) {
	var req RunRequest
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBodyLen))
	if err := dec.Decode(&req); err != nil {
		return RunRequest{}, fmt.Errorf("%w: invalid JSON: %v", ErrBadRequest, err)
	}
	if err := req.Validate(); err != nil {
		return RunRequest{}, err
	}
	return req, nil
}

// Validate checks the request's structure against the registries and
// the shard arithmetic. Errors wrap ErrBadRequest.
func (req *RunRequest) Validate() error {
	if req.ID == "" {
		return fmt.Errorf("%w: missing run id", ErrBadRequest)
	}
	if req.Mode != ModeRun && req.Mode != ModeVirtual {
		return fmt.Errorf("%w: unknown mode %q (want %q or %q)", ErrBadRequest, req.Mode, ModeRun, ModeVirtual)
	}
	if _, err := problems.Describe(req.Problem); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.Size < 0 || req.Size > maxSize {
		return fmt.Errorf("%w: size %d outside [0, %d]", ErrBadRequest, req.Size, maxSize)
	}
	if len(req.Params) > maxProblemParams {
		return fmt.Errorf("%w: %d problem parameters exceed %d", ErrBadRequest, len(req.Params), maxProblemParams)
	}
	if req.TotalWalkers < 1 || req.TotalWalkers > maxWalkers {
		return fmt.Errorf("%w: total_walkers %d outside [1, %d]", ErrBadRequest, req.TotalWalkers, maxWalkers)
	}
	// Range-check Start and Count individually before relating them to
	// TotalWalkers: the naive Start+Count > TotalWalkers comparison
	// overflows for adversarial values and waves the shard through.
	if req.Count < 1 || req.Count > req.TotalWalkers ||
		req.Start < 0 || req.Start > req.TotalWalkers-req.Count {
		return fmt.Errorf("%w: shard start=%d count=%d outside job of %d walkers", ErrBadRequest, req.Start, req.Count, req.TotalWalkers)
	}
	if req.DeadlineMS < 0 {
		return fmt.Errorf("%w: negative deadline", ErrBadRequest)
	}
	if len(req.Portfolio) > maxPortfolio {
		return fmt.Errorf("%w: portfolio of %d entries exceeds %d", ErrBadRequest, len(req.Portfolio), maxPortfolio)
	}
	if err := req.Exchange.validate("exchange"); err != nil {
		return err
	}
	if req.Exchange.Enabled {
		if req.Mode != ModeRun {
			return fmt.Errorf("%w: exchange requires mode %q (virtual sweeps have no concurrent peers)", ErrBadRequest, ModeRun)
		}
		if req.Board == "" {
			return fmt.Errorf("%w: exchange enabled without a board URL", ErrBadRequest)
		}
	}
	if len(req.Board) > maxBoardURL {
		return fmt.Errorf("%w: board URL of %d bytes exceeds %d", ErrBadRequest, len(req.Board), maxBoardURL)
	}
	if len(req.BoardStream) > maxBoardURL || len(req.BoardJob) > maxBoardURL {
		return fmt.Errorf("%w: board stream address or job key exceeds %d bytes", ErrBadRequest, maxBoardURL)
	}
	if (req.BoardStream == "") != (req.BoardJob == "") {
		return fmt.Errorf("%w: board_stream and board_job must be set together", ErrBadRequest)
	}
	if len(req.ProgressURL) > maxBoardURL || len(req.ProgressStream) > maxBoardURL {
		return fmt.Errorf("%w: progress URL or stream address exceeds %d bytes", ErrBadRequest, maxBoardURL)
	}
	if req.ProgressMS < 0 {
		return fmt.Errorf("%w: negative progress_ms", ErrBadRequest)
	}
	if req.ProgressURL == "" && req.ProgressStream != "" {
		return fmt.Errorf("%w: progress_stream requires a progress_url fallback", ErrBadRequest)
	}
	if err := req.Engine.validate("engine"); err != nil {
		return err
	}
	for i := range req.Portfolio {
		if req.Portfolio[i].Weight < 0 {
			return fmt.Errorf("%w: portfolio[%d]: negative weight", ErrBadRequest, i)
		}
		if err := req.Portfolio[i].Engine.validate(fmt.Sprintf("portfolio[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

// validate checks the wire-level invariants of an engine spec.
func (s *EngineSpec) validate(where string) error {
	if s.Strategy != "" && !knownStrategy(s.Strategy) {
		return fmt.Errorf("%w: %s: unknown strategy %q (known: %v)", ErrBadRequest, where, s.Strategy, core.StrategyNames())
	}
	if s.MaxIterations < 0 || s.MaxRuns < 0 || s.FreezeLocMin < 0 || s.FreezeSwap < 0 ||
		s.ResetLimit < 0 || s.CheckEvery < 0 {
		return fmt.Errorf("%w: %s: negative engine budget", ErrBadRequest, where)
	}
	if s.ResetFraction < 0 || s.ResetFraction > 1 || math.IsNaN(s.ResetFraction) {
		return fmt.Errorf("%w: %s: reset_fraction %v outside [0, 1]", ErrBadRequest, where, s.ResetFraction)
	}
	if s.ProbSelectLocMin < 0 || s.ProbSelectLocMin > 1 || math.IsNaN(s.ProbSelectLocMin) {
		return fmt.Errorf("%w: %s: prob_select_loc_min %v outside [0, 1]", ErrBadRequest, where, s.ProbSelectLocMin)
	}
	if len(s.InitialConfig) > maxInitialConfig {
		return fmt.Errorf("%w: %s: initial_config of %d variables exceeds %d", ErrBadRequest, where, len(s.InitialConfig), maxInitialConfig)
	}
	return nil
}

// knownStrategy checks a name against the engine's strategy registry.
func knownStrategy(name string) bool {
	for _, n := range core.StrategyNames() {
		if n == name {
			return true
		}
	}
	return false
}

// EngineSpecFor converts resolved engine options into their wire form.
// The process-local hooks (Monitor) are not representable; callers
// must reject them before converting (see Coordinator).
func EngineSpecFor(o core.Options) EngineSpec {
	return EngineSpec{
		MaxIterations:    o.MaxIterations,
		MaxRuns:          o.MaxRuns,
		FreezeLocMin:     o.FreezeLocMin,
		FreezeSwap:       o.FreezeSwap,
		ResetLimit:       o.ResetLimit,
		ResetFraction:    o.ResetFraction,
		ProbSelectLocMin: o.ProbSelectLocMin,
		Strategy:         o.Strategy,
		FirstBest:        o.FirstBest,
		Exhaustive:       o.Exhaustive,
		CheckEvery:       o.CheckEvery,
		InitialConfig:    o.InitialConfig,
	}
}

// Options converts the wire form back into engine options.
func (s EngineSpec) Options() core.Options {
	return core.Options{
		MaxIterations:    s.MaxIterations,
		MaxRuns:          s.MaxRuns,
		FreezeLocMin:     s.FreezeLocMin,
		FreezeSwap:       s.FreezeSwap,
		ResetLimit:       s.ResetLimit,
		ResetFraction:    s.ResetFraction,
		ProbSelectLocMin: s.ProbSelectLocMin,
		Strategy:         s.Strategy,
		FirstBest:        s.FirstBest,
		Exhaustive:       s.Exhaustive,
		CheckEvery:       s.CheckEvery,
		InitialConfig:    s.InitialConfig,
	}
}

// wireStat converts one walker stat to its wire form.
func wireStat(ws multiwalk.WalkerStat) WalkerStatWire {
	r := ws.Result
	return WalkerStatWire{
		Walker:         ws.Walker,
		Entry:          ws.Entry,
		Solved:         r.Solved,
		Solution:       r.Solution,
		Cost:           r.Cost,
		Strategy:       r.Strategy,
		Iterations:     r.Iterations,
		Swaps:          r.Swaps,
		Assigns:        r.Assigns,
		Flips:          r.Flips,
		LocalMinima:    r.LocalMinima,
		PlateauEscapes: r.PlateauEscapes,
		Resets:         r.Resets,
		Restarts:       r.Restarts,
		Interrupted:    r.Interrupted,
		ElapsedNS:      int64(r.Elapsed),
		Adoptions:      ws.Adoptions,
		Yielded:        ws.Yielded,
	}
}

// statFromWire converts one wire stat back into a WalkerStat.
func statFromWire(w WalkerStatWire) multiwalk.WalkerStat {
	return multiwalk.WalkerStat{
		Walker: w.Walker,
		Entry:  w.Entry,
		Result: core.Result{
			Solved:         w.Solved,
			Solution:       w.Solution,
			Cost:           w.Cost,
			Strategy:       w.Strategy,
			Iterations:     w.Iterations,
			Swaps:          w.Swaps,
			Assigns:        w.Assigns,
			Flips:          w.Flips,
			LocalMinima:    w.LocalMinima,
			PlateauEscapes: w.PlateauEscapes,
			Resets:         w.Resets,
			Restarts:       w.Restarts,
			Interrupted:    w.Interrupted,
			Elapsed:        time.Duration(w.ElapsedNS),
		},
		Adoptions: w.Adoptions,
		Yielded:   w.Yielded,
	}
}

// wireResult converts a shard Result into a RunResponse.
func wireResult(res multiwalk.Result) RunResponse {
	out := RunResponse{
		Stats:     make([]WalkerStatWire, len(res.Walkers)),
		Completed: res.Completed,
		Truncated: res.Truncated,
		ElapsedNS: int64(res.Elapsed),
	}
	for i, ws := range res.Walkers {
		out.Stats[i] = wireStat(ws)
	}
	return out
}

// resultFromWire converts a RunResponse back into a shard Result. The
// aggregate fields (winner, totals) are recomputed by CombineShards on
// the merged stats, so only the per-walker data and the shard-level
// completion accounting cross the wire.
func resultFromWire(resp RunResponse) multiwalk.Result {
	res := multiwalk.Result{
		Winner:    -1,
		Walkers:   make([]multiwalk.WalkerStat, len(resp.Stats)),
		Completed: resp.Completed,
		Truncated: resp.Truncated,
		Elapsed:   time.Duration(resp.ElapsedNS),
	}
	for i, w := range resp.Stats {
		res.Walkers[i] = statFromWire(w)
	}
	return res
}
