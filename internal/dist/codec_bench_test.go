package dist

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// codecFixture builds the board-sync payload both codecs are measured
// on: a full n=196 configuration — one magic-square 14 elite, the
// largest message the PR 5 exchange matrix moves every improvement.
func codecFixture() (BoardSync, wire.BoardSync) {
	rng := rand.New(rand.NewSource(20260729))
	cfg := rng.Perm(196)
	j := BoardSync{Valid: true, Cost: 41, Gen: 17, Cfg: cfg}
	w := wire.BoardSync{Job: "job000001", Valid: true, Cost: 41, Gen: 17, Cfg: cfg}
	return j, w
}

// TestBoardSyncCodecCompact pins the headline codec win: the binary
// frame must stay at least 3x smaller than the JSON body it replaces.
func TestBoardSyncCodecCompact(t *testing.T) {
	jmsg, wmsg := codecFixture()
	jb, err := json.Marshal(&jmsg)
	if err != nil {
		t.Fatal(err)
	}
	var enc wire.Encoder
	wb, err := enc.BoardSyncFrame(nil, &wmsg)
	if err != nil {
		t.Fatal(err)
	}
	if len(wb)*3 > len(jb) {
		t.Fatalf("binary frame is %d bytes vs %d JSON (%.2fx): want >= 3x smaller", len(wb), len(jb), float64(len(jb))/float64(len(wb)))
	}
	t.Logf("n=196 board sync: %d bytes JSON, %d bytes binary (%.2fx)", len(jb), len(wb), float64(len(jb))/float64(len(wb)))

	// The frame must round-trip to the same logical message.
	typ, payload, rest, err := wire.DecodeFrame(wb)
	if err != nil || typ != wire.TypeBoardSync || len(rest) != 0 {
		t.Fatalf("DecodeFrame: typ=%#x rest=%d err=%v", typ, len(rest), err)
	}
	got, err := wire.DecodeBoardSync(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != wmsg.Cost || got.Gen != wmsg.Gen || len(got.Cfg) != len(wmsg.Cfg) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

// BenchmarkBoardSyncCodec compares the two board-sync codecs on the
// n=196 fixture. The binary encoder must be allocation-free: the sync
// loop runs every improvement on every walker, and the 50ms HTTP tick
// it replaces spent most of its non-network time in JSON garbage.
func BenchmarkBoardSyncCodec(b *testing.B) {
	jmsg, wmsg := codecFixture()

	b.Run("json-encode", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			buf, err := json.Marshal(&jmsg)
			if err != nil {
				b.Fatal(err)
			}
			n = len(buf)
		}
		b.ReportMetric(float64(n), "bytes/op")
	})
	b.Run("wire-encode", func(b *testing.B) {
		b.ReportAllocs()
		var enc wire.Encoder
		buf := make([]byte, 0, 1024)
		var n int
		for i := 0; i < b.N; i++ {
			out, err := enc.BoardSyncFrame(buf[:0], &wmsg)
			if err != nil {
				b.Fatal(err)
			}
			n = len(out)
		}
		b.ReportMetric(float64(n), "bytes/op")
	})

	jb, _ := json.Marshal(&jmsg)
	var enc wire.Encoder
	wb, _ := enc.BoardSyncFrame(nil, &wmsg)
	b.Run("json-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var m BoardSync
			if err := json.Unmarshal(jb, &m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wire-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, payload, _, err := wire.DecodeFrame(wb)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wire.DecodeBoardSync(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
