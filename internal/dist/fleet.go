package dist

// This file is the fleet membership protocol: the coordinator side
// (registration, heartbeat and drain endpoints over the shared
// registry) and the worker side (FleetAgent, the background
// register/heartbeat/drain loop cmd/worker runs against a
// coordinator).
//
// Like shard dispatch, every fleet message has two encodings selected
// by Content-Type: JSON (the fallback and debugging surface) and a
// binary wire frame (Register/Heartbeat, spoken by streaming fleets).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/wire"
)

// RegisterRequest is the JSON form of a worker's fleet announcement.
// The coordinator probes URL back before enrolling, so the Slots/Wire
// claims are advisory — the probe's answer wins.
type RegisterRequest struct {
	URL    string `json:"url"`
	Slots  int    `json:"slots"`
	Wire   bool   `json:"wire"`
	Stream bool   `json:"stream"`
}

// HeartbeatRequest is the JSON form of a worker's liveness refresh.
type HeartbeatRequest struct {
	URL      string `json:"url"`
	Slots    int    `json:"slots"`
	Busy     int    `json:"busy"`
	Draining bool   `json:"draining"`
}

// maxFleetBodyLen bounds fleet endpoint request bodies; membership
// messages are a few hundred bytes at most.
const maxFleetBodyLen = 1 << 16

// FleetHandler returns the coordinator's fleet membership surface,
// mounted by cmd/serve beside the service API:
//
//	POST /v1/fleet/register   join (or rejoin) the fleet
//	POST /v1/fleet/heartbeat  refresh liveness and capability
//	POST /v1/fleet/deregister graceful leave: drain, no new shards
//	GET  /v1/fleet            fleet table snapshot
func (c *Coordinator) FleetHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/register", c.handleRegister)
	mux.HandleFunc("POST /v1/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/fleet/deregister", c.handleDeregister)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	return mux
}

// decodeFleetFrame reads one wire frame of the wanted type from an
// HTTP body.
func decodeFleetFrame(r *http.Request, want byte) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFleetBodyLen+1))
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err)
	}
	if len(body) > maxFleetBodyLen {
		return nil, fmt.Errorf("%w: fleet message exceeds %d bytes", ErrBadRequest, maxFleetBodyLen)
	}
	typ, payload, rest, err := wire.DecodeFrame(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if typ != want || len(rest) != 0 {
		return nil, fmt.Errorf("%w: expected one frame of type %#x", ErrBadRequest, want)
	}
	return payload, nil
}

func decodeJSONBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxFleetBodyLen))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// validateWorkerURL rejects junk registrations before the coordinator
// dials anything.
func validateWorkerURL(raw string) error {
	if raw == "" {
		return fmt.Errorf("%w: worker url required", ErrBadRequest)
	}
	if len(raw) > maxBoardURL {
		return fmt.Errorf("%w: worker url exceeds %d bytes", ErrBadRequest, maxBoardURL)
	}
	u, err := url.Parse(raw)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("%w: worker url must be absolute http(s)", ErrBadRequest)
	}
	return nil
}

// handleRegister enrolls a worker at runtime. The coordinator probes
// the advertised URL back — on its own short timeout, never the
// caller's — so unreachable or misconfigured workers are rejected here
// instead of surfacing as lost shards later.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var reg RegisterRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeWire) {
		payload, err := decodeFleetFrame(r, wire.TypeRegister)
		if err != nil {
			writeError(w, err)
			return
		}
		m, err := wire.DecodeRegister(payload)
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		reg = RegisterRequest{URL: m.URL, Slots: int(m.Slots), Wire: m.Wire, Stream: m.Stream}
	} else if err := decodeJSONBody(r, &reg); err != nil {
		writeError(w, err)
		return
	}
	if err := validateWorkerURL(reg.URL); err != nil {
		writeError(w, err)
		return
	}
	base := strings.TrimSuffix(reg.URL, "/")
	slots, wireOK, err := c.probe(base, c.probeTimeout)
	if err != nil {
		writeError(w, fmt.Errorf("probing %s: %w", base, err))
		return
	}
	c.reg.upsert(base, slots, wireOK, time.Now())
	writeJSON(w, http.StatusOK, map[string]any{"enrolled": true, "slots": slots, "wire": wireOK})
}

// handleHeartbeat refreshes a worker's liveness. Unknown workers get a
// 404 — the agent's cue to re-register (a coordinator restart empties
// the registry; workers re-join on their next heartbeat cycle).
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb HeartbeatRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeWire) {
		payload, err := decodeFleetFrame(r, wire.TypeHeartbeat)
		if err != nil {
			writeError(w, err)
			return
		}
		m, err := wire.DecodeHeartbeat(payload)
		if err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		hb = HeartbeatRequest{URL: m.URL, Slots: int(m.Slots), Busy: int(m.Busy), Draining: m.Draining}
	} else if err := decodeJSONBody(r, &hb); err != nil {
		writeError(w, err)
		return
	}
	if err := validateWorkerURL(hb.URL); err != nil {
		writeError(w, err)
		return
	}
	base := strings.TrimSuffix(hb.URL, "/")
	if !c.reg.heartbeat(base, hb.Slots, hb.Draining, time.Now()) {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown worker; register first", "known": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"known": true})
}

// handleDeregister marks a worker draining: in-flight shards finish,
// nothing new is dispatched.
func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := decodeJSONBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateWorkerURL(req.URL); err != nil {
		writeError(w, err)
		return
	}
	known := c.reg.deregister(strings.TrimSuffix(req.URL, "/"))
	writeJSON(w, http.StatusOK, map[string]any{"known": known})
}

// handleFleet answers with the fleet table plus the tracked in-flight
// shards (progress and report age — the straggler hunter's view).
func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"workers": c.reg.snapshot(),
		"shards":  c.ProgressSnapshot(),
	})
}

// ---------------------------------------------------------------------
// Worker-side agent.

// AgentConfig configures a worker's fleet agent.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL (the serve process, e.g.
	// "http://10.0.0.1:8080").
	Coordinator string
	// Advertise is this worker's base URL as the coordinator should
	// dial it (e.g. "http://10.0.0.7:9101").
	Advertise string
	// Worker supplies live slot and busy counts for heartbeats.
	Worker *Worker
	// Interval is the heartbeat period. 0 selects 2s.
	Interval time.Duration
	// Client is the HTTP client for registry traffic. nil selects a
	// default with per-call timeouts.
	Client *http.Client
	// Wire sends binary Register/Heartbeat frames instead of JSON.
	Wire bool
	// Logf, when non-nil, receives agent lifecycle messages.
	Logf func(format string, args ...any)
}

// FleetAgent keeps one worker registered with a coordinator: it
// registers at startup (retrying until the coordinator is up),
// heartbeats on a fixed cadence, re-registers when the coordinator
// forgets it (restart), and announces a drain on Close.
type FleetAgent struct {
	cfg    AgentConfig
	client *http.Client
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// NewFleetAgent validates the config and starts the agent loop.
func NewFleetAgent(cfg AgentConfig) (*FleetAgent, error) {
	if err := validateWorkerURL(cfg.Coordinator); err != nil {
		return nil, fmt.Errorf("dist: agent coordinator: %w", err)
	}
	if err := validateWorkerURL(cfg.Advertise); err != nil {
		return nil, fmt.Errorf("dist: agent advertise: %w", err)
	}
	if cfg.Worker == nil {
		return nil, errors.New("dist: agent needs a Worker")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.Coordinator = strings.TrimSuffix(cfg.Coordinator, "/")
	cfg.Advertise = strings.TrimSuffix(cfg.Advertise, "/")
	ctx, cancel := context.WithCancel(context.Background())
	a := &FleetAgent{cfg: cfg, client: cfg.Client, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	go a.loop()
	return a, nil
}

// Close drains the worker out of the fleet (best-effort deregister)
// and stops the agent.
func (a *FleetAgent) Close() {
	a.cancel()
	<-a.done
	// The drain announcement runs after the loop stops, on its own
	// bounded context — the agent's context is already cancelled.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	body, _ := json.Marshal(map[string]string{"url": a.cfg.Advertise})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Coordinator+"/v1/fleet/deregister", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := a.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// loop registers, then heartbeats until cancelled. Registration
// failures back off and retry forever: the worker may simply have
// started before the coordinator.
func (a *FleetAgent) loop() {
	defer close(a.done)
	backoff := 500 * time.Millisecond
	for a.ctx.Err() == nil {
		if err := a.register(); err != nil {
			a.cfg.Logf("fleet: register with %s failed (retry in %v): %v", a.cfg.Coordinator, backoff, err)
			select {
			case <-a.ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 8*time.Second {
				backoff *= 2
			}
			continue
		}
		a.cfg.Logf("fleet: registered with %s as %s", a.cfg.Coordinator, a.cfg.Advertise)
		backoff = 500 * time.Millisecond
		if !a.heartbeats() {
			return
		}
		// heartbeats returned because the coordinator forgot us —
		// fall through and re-register.
	}
}

// register announces the worker once.
func (a *FleetAgent) register() error {
	var body []byte
	contentType := "application/json"
	if a.cfg.Wire {
		var enc wire.Encoder
		framed, err := enc.RegisterFrame(nil, &wire.Register{
			URL:    a.cfg.Advertise,
			Slots:  int64(a.cfg.Worker.Slots()),
			Wire:   true,
			Stream: a.cfg.Worker.streams != nil,
		})
		if err != nil {
			return err
		}
		body, contentType = framed, ContentTypeWire
	} else {
		var err error
		body, err = json.Marshal(RegisterRequest{
			URL:    a.cfg.Advertise,
			Slots:  a.cfg.Worker.Slots(),
			Wire:   true,
			Stream: a.cfg.Worker.streams != nil,
		})
		if err != nil {
			return err
		}
	}
	return a.post("/v1/fleet/register", body, contentType)
}

// heartbeats runs the heartbeat cadence. It returns false when the
// agent is closing, true when the coordinator answered 404 (unknown
// worker) and the caller should re-register.
func (a *FleetAgent) heartbeats() bool {
	tick := time.NewTicker(a.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-a.ctx.Done():
			return false
		case <-tick.C:
			var body []byte
			contentType := "application/json"
			if a.cfg.Wire {
				var enc wire.Encoder
				framed, err := enc.HeartbeatFrame(nil, &wire.Heartbeat{
					URL:   a.cfg.Advertise,
					Slots: int64(a.cfg.Worker.Slots()),
					Busy:  int64(a.cfg.Worker.Busy()),
				})
				if err != nil {
					continue
				}
				body, contentType = framed, ContentTypeWire
			} else {
				body, _ = json.Marshal(HeartbeatRequest{
					URL:   a.cfg.Advertise,
					Slots: a.cfg.Worker.Slots(),
					Busy:  a.cfg.Worker.Busy(),
				})
			}
			err := a.post("/v1/fleet/heartbeat", body, contentType)
			if errors.Is(err, errUnknownWorker) {
				a.cfg.Logf("fleet: coordinator forgot %s; re-registering", a.cfg.Advertise)
				return true
			}
			if err != nil {
				a.cfg.Logf("fleet: heartbeat to %s failed: %v", a.cfg.Coordinator, err)
			}
		}
	}
}

// errUnknownWorker reports a heartbeat 404: the coordinator does not
// know this worker (typically after a restart) and it must re-register.
var errUnknownWorker = errors.New("dist: coordinator does not know this worker")

func (a *FleetAgent) post(path string, body []byte, contentType string) error {
	ctx, cancel := context.WithTimeout(a.ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusNotFound:
		return errUnknownWorker
	default:
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e)
		if e.Error == "" {
			e.Error = fmt.Sprintf("status %d", resp.StatusCode)
		}
		return errors.New(e.Error)
	}
}
