package dist

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Straggler speculation. A wall-clock job finishes when its slowest
// shard does — min-order statistics, the same tail the paper's §2
// analysis is about, now over shards instead of walkers. PR 8 recovers
// shards whose worker *died*; a slow-but-alive worker (CPU-throttled
// box, paused VM, noisy neighbor) still holds the whole job hostage.
// The fix is classic speculative execution, made correctness-free by
// this system's determinism contract: a walker's identity is its
// global index, so a re-run of the same range is bit-for-bit the run
// the straggler would eventually produce, and "take whichever copy
// lands first" cannot change the result — only when it arrives.
//
// Three pieces:
//
//   - a progress feed: speculation-enabled shard requests carry report
//     endpoints, and workers push per-shard iteration counts every
//     ProgressMS (TypeShardProgress stream frames, HTTP POST fallback);
//   - a detector: per job, compare each unresolved shard's per-walker
//     iteration count against the job median; lagging more than
//     SpeculateThreshold behind (with a minimum job age, a
//     remaining-work guard, and at most one backup per shard) launches
//     a backup on a free healthy worker the primary is not on;
//   - first-wins resolution: each shard is a slot whose first delivered
//     outcome wins; the loser is cancelled (releasing its reservation
//     the moment the worker acks) and its late result is dropped before
//     CombineShards ever sees it, so walker stats are never
//     double-counted.

// specMinRemaining is the remaining-work guard: a shard past this
// close to its iteration budget finishes before any backup could help,
// so it never speculates. Expressed as the minimum remaining fraction
// of the per-walker budget.
const specMinRemaining = 0.25

// shardProg is one tracked shard run's live progress, fed by worker
// reports and finalized from the shard outcome when it resolves.
type shardProg struct {
	start, count int
	iters        int64
	walkers      int64
	best         int64
	since        time.Time // tracking start
	updated      time.Time // last report; zero until the first arrives
	resolved     bool
}

// trackShard registers a shard run with the progress table. Only
// tracked runs accept reports — everything else is dropped, so unknown
// or stale run ids cannot grow the table.
func (c *Coordinator) trackShard(runID string, start, count int) {
	c.progMu.Lock()
	c.prog[runID] = &shardProg{start: start, count: count, best: -1, since: time.Now()}
	c.progMu.Unlock()
}

// recordShardProgress is the hub's report callback (HTTP and stream
// paths both land here). Reports for unknown or already-resolved runs
// are dropped; iteration counts are monotone, so a report reordered
// behind a larger one is ignored.
func (c *Coordinator) recordShardProgress(runID string, iters, walkers, best int64) {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	e := c.prog[runID]
	if e == nil || e.resolved {
		return
	}
	if iters >= e.iters {
		e.iters, e.walkers, e.best = iters, walkers, best
	}
	e.updated = time.Now()
}

// progressDone finalizes a tracked run with its outcome's iteration
// total, so the job median keeps seeing finished shards — a lone
// laggard among finished peers must still look slow.
func (c *Coordinator) progressDone(runID string, finalIters int64) {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	if e := c.prog[runID]; e != nil {
		e.resolved = true
		if finalIters > e.iters {
			e.iters = finalIters
		}
		e.updated = time.Now()
	}
}

// clearJobProgress drops every tracked run whose id carries the job's
// prefix — run() cleanup, so the table holds in-flight jobs only.
func (c *Coordinator) clearJobProgress(prefix string) {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	for id := range c.prog {
		if strings.HasPrefix(id, prefix) {
			delete(c.prog, id)
		}
	}
}

// progressGauges folds the table into the two /metrics gauges: tracked
// unresolved shards and the oldest report age (milliseconds since the
// last report, or since tracking started for shards that never
// reported — exactly the shards a straggler hunt cares about).
func (c *Coordinator) progressGauges(now time.Time) (tracked, maxAgeMS int64) {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	for _, e := range c.prog {
		if e.resolved {
			continue
		}
		tracked++
		ref := e.updated
		if ref.IsZero() {
			ref = e.since
		}
		if age := now.Sub(ref).Milliseconds(); age > maxAgeMS {
			maxAgeMS = age
		}
	}
	return tracked, maxAgeMS
}

// ShardProgressInfo is one tracked in-flight shard in the fleet view
// (GET /v1/fleet): which walker range it covers, how far it has come,
// and how stale its last report is.
type ShardProgressInfo struct {
	Run     string `json:"run"`
	Start   int    `json:"start"`
	Count   int    `json:"count"`
	Iters   int64  `json:"iters"`
	Walkers int64  `json:"walkers"`
	Best    int64  `json:"best"`
	AgeMS   int64  `json:"age_ms"`
}

// ProgressSnapshot lists the tracked unresolved shard runs, sorted by
// run id for a stable fleet view.
func (c *Coordinator) ProgressSnapshot() []ShardProgressInfo {
	now := time.Now()
	c.progMu.Lock()
	out := make([]ShardProgressInfo, 0, len(c.prog))
	for id, e := range c.prog {
		if e.resolved {
			continue
		}
		ref := e.updated
		if ref.IsZero() {
			ref = e.since
		}
		out = append(out, ShardProgressInfo{
			Run: id, Start: e.start, Count: e.count,
			Iters: e.iters, Walkers: e.walkers, Best: e.best,
			AgeMS: now.Sub(ref).Milliseconds(),
		})
	}
	c.progMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out
}

// specSlot is one shard's first-wins state machine. A slot starts with
// the primary in flight, gains at most one backup, and resolves with
// the first delivered outcome; everything after resolution is a loser
// whose result is dropped. A failed copy (lost or rejected) does not
// resolve the slot while the other copy is still running — the whole
// point of the backup is outliving a bad primary.
type specSlot struct {
	mu       sync.Mutex
	primary  *assignment
	backup   *assignment // nil until a backup launches
	inflight int
	resolved bool
	outcome  shardOutcome
	pending  *shardOutcome // first failed delivery, held for the other copy
}

// deliverSpec delivers one copy's outcome to its slot. It returns
// whether this delivery resolved the slot, the resolved outcome, and
// the loser still in flight (to cancel), if any.
func (c *Coordinator) deliverSpec(s *specSlot, from *assignment, out shardOutcome) (resolvedNow bool, final shardOutcome, loser *assignment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if s.resolved {
		// Late loser: its duplicate stats are dropped here, before
		// CombineShards could ever double-count the walker range.
		return false, shardOutcome{}, nil
	}
	bad := out.lost || out.err != nil
	if bad && s.inflight > 0 {
		// The other copy may still succeed; hold the failure. An
		// application rejection outranks a transport loss — if both
		// copies fail, the caller must see the reject.
		if s.pending == nil || (s.pending.err == nil && out.err != nil) {
			held := out
			s.pending = &held
		}
		return false, shardOutcome{}, nil
	}
	if bad && s.pending != nil && s.pending.err != nil && out.err == nil {
		out = *s.pending
	}
	s.resolved = true
	s.outcome = out
	if s.backup != nil && !bad {
		if from == s.backup {
			c.mSpecWon.Add(1)
		} else {
			c.mSpecLost.Add(1)
		}
	}
	if s.inflight > 0 {
		if from == s.primary {
			loser = s.backup
		} else {
			loser = s.primary
		}
	}
	return true, out, loser
}

// cancelLoser stops a speculation loser and, once the worker acks the
// cancel, releases its slot reservation immediately — the loser's own
// dispatch goroutine is still draining the HTTP response, and waiting
// for that drain would hold capacity the planner could already reuse
// (releases are idempotent, so the eventual second release is a no-op).
func (c *Coordinator) cancelLoser(a *assignment) {
	if c.cancelRun(a) {
		c.mSpecCancelled.Add(1)
		c.releaseOne(a)
	}
}

// reserveBackup places a whole walker range on one healthy worker
// other than the primary's, reserving its slots. One worker, not a
// split: first-wins stays pairwise, and a range that fits nowhere
// simply does not speculate this tick. Returns nil when no worker
// qualifies.
func (c *Coordinator) reserveBackup(primary *workerRef, start, count int, runID string) []assignment {
	r := c.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *workerRef
	for _, w := range r.workers {
		if w == primary || w.state != stateHealthy || w.slots-w.busy < count {
			continue
		}
		if best == nil || w.slots-w.busy > best.slots-best.busy {
			best = w
		}
	}
	if best == nil {
		return nil
	}
	best.busy += count
	return []assignment{{worker: best, start: start, count: count, reserved: count, runID: runID}}
}

// specBudget is the job's per-walker iteration budget, or 0 when it is
// effectively unbounded (no limit set, or a heterogeneous portfolio
// whose entries budget independently) — unbounded budgets always pass
// the remaining-work guard.
func specBudget(job *JobSpec) float64 {
	if len(job.Portfolio) > 0 {
		return 0
	}
	if job.Engine.MaxIterations <= 0 || job.Engine.MaxRuns <= 0 {
		return 0
	}
	return float64(job.Engine.MaxIterations) * float64(job.Engine.MaxRuns)
}

// detectStragglers is the per-job detector loop: every tick it
// normalizes each slot's progress to per-walker iterations, takes the
// job median, and launches a backup for every unresolved, backup-less
// slot lagging more than the threshold behind — subject to the
// minimum-age and remaining-work guards. It exits when the job is done
// or the dispatch context dies.
func (c *Coordinator) detectStragglers(ctx context.Context, done <-chan struct{}, job *JobSpec, slots []*specSlot, launch func(i int)) {
	started := time.Now()
	budget := specBudget(job)
	tick := time.NewTicker(c.specInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-done:
			return
		case <-tick.C:
		}
		if time.Since(started) < c.specAfter {
			continue
		}
		norms := make([]float64, len(slots))
		type candidate struct{ i int }
		var cands []candidate
		for i, s := range slots {
			s.mu.Lock()
			resolved := s.resolved
			pID := s.primary.runID
			var bID string
			if s.backup != nil {
				bID = s.backup.runID
			}
			count := s.primary.count
			s.mu.Unlock()

			c.progMu.Lock()
			var iters int64
			if e := c.prog[pID]; e != nil {
				iters = e.iters
			}
			if bID != "" {
				if e := c.prog[bID]; e != nil && e.iters > iters {
					iters = e.iters
				}
			}
			c.progMu.Unlock()
			norms[i] = float64(iters) / float64(count)
			if resolved || bID != "" {
				continue
			}
			if budget > 0 && budget-norms[i] < specMinRemaining*budget {
				// Close enough to its budget to finish on its own.
				continue
			}
			cands = append(cands, candidate{i})
		}
		sorted := append([]float64(nil), norms...)
		sort.Float64s(sorted)
		median := sorted[len(sorted)/2]
		if median <= 0 {
			// Nothing has reported meaningful progress yet; there is no
			// signal to compare against.
			continue
		}
		for _, cd := range cands {
			if norms[cd.i]*c.specThreshold < median {
				launch(cd.i)
			}
		}
	}
}

// dispatchSpeculative runs the job's initial plan with straggler
// speculation: every shard is a first-wins slot, a detector goroutine
// watches the progress feed, and lagging shards gain one backup copy
// each. The returned outcomes parallel plan exactly as dispatch's do —
// each is the slot's winning outcome, so the caller's merge and
// recovery paths are unchanged. Loser goroutines are NOT waited for:
// the stalled worker is the very thing being routed around, and run()'s
// deferred hard-cancel severs their connections when the job returns.
func (c *Coordinator) dispatchSpeculative(ctx context.Context, job JobSpec, plan []assignment, solvedOnce *sync.Once, hardCancel context.CancelFunc, p shardParams, jobID uint64, addPlan func([]assignment)) []shardOutcome {
	slots := make([]*specSlot, len(plan))
	var resolvedWG sync.WaitGroup
	resolvedWG.Add(len(plan))

	// Every launched copy, for first-solution cancel fan-out.
	var runsMu sync.Mutex
	var runs []*assignment

	launchCopy := func(s *specSlot, a *assignment) {
		req := shardRequest(ModeRun, &job, a, &p)
		go func() {
			out := c.runShard(ctx, a, req)
			c.releaseOne(a)
			resolvedNow, final, loser := c.deliverSpec(s, a, out)
			if !resolvedNow {
				return
			}
			c.progressDone(a.runID, outcomeIters(&final))
			if loser != nil {
				go c.cancelLoser(loser)
			}
			if final.err == nil && !final.lost && final.res.Solved {
				// First-solution termination across all copies of all
				// slots, same contract as dispatch.
				solvedOnce.Do(func() {
					runsMu.Lock()
					all := append([]*assignment(nil), runs...)
					runsMu.Unlock()
					for _, o := range all {
						if o != a {
							go c.cancelRun(o)
						}
					}
					time.AfterFunc(cancelGrace, hardCancel)
				})
			}
			resolvedWG.Done()
		}()
	}

	for i := range plan {
		a := &plan[i]
		slots[i] = &specSlot{primary: a, inflight: 1}
		c.trackShard(a.runID, a.start, a.count)
		runsMu.Lock()
		runs = append(runs, a)
		runsMu.Unlock()
		launchCopy(slots[i], a)
	}

	launchBackup := func(i int) {
		s := slots[i]
		s.mu.Lock()
		if s.resolved || s.backup != nil {
			s.mu.Unlock()
			return
		}
		primary, start, count := s.primary.worker, s.primary.start, s.primary.count
		s.mu.Unlock()
		bp := c.reserveBackup(primary, start, count, fmt.Sprintf("job%06d-b1-s%d", jobID, i))
		if bp == nil {
			return
		}
		ba := &bp[0]
		s.mu.Lock()
		if s.resolved {
			// The primary landed while we were reserving.
			s.mu.Unlock()
			c.releaseOne(ba)
			return
		}
		s.backup = ba
		s.inflight++
		s.mu.Unlock()
		c.mSpecLaunched.Add(1)
		c.trackShard(ba.runID, ba.start, ba.count)
		// Registering the backup with the job's active plans routes
		// external cancellation to it too.
		addPlan(bp)
		runsMu.Lock()
		runs = append(runs, ba)
		runsMu.Unlock()
		launchCopy(s, ba)
	}

	detectDone := make(chan struct{})
	go c.detectStragglers(ctx, detectDone, &job, slots, launchBackup)
	resolvedWG.Wait()
	close(detectDone)

	outcomes := make([]shardOutcome, len(plan))
	for i, s := range slots {
		s.mu.Lock()
		outcomes[i] = s.outcome
		s.mu.Unlock()
	}
	return outcomes
}

// outcomeIters sums a resolved outcome's walker iteration counts (the
// final value the progress table records for the run).
func outcomeIters(out *shardOutcome) int64 {
	var n int64
	for i := range out.res.Walkers {
		n += out.res.Walkers[i].Result.Iterations
	}
	return n
}
