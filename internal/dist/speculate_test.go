package dist

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"testing"
	"time"

	"repro/internal/multiwalk"
)

// heldWorker fronts a real worker with a reverse proxy that holds
// every shard dispatch (POST /v1/run) for delay before forwarding —
// the straggler shape the detector hunts: a worker that answers health
// probes and cancels instantly but whose shards make no progress.
func heldWorker(t *testing.T, wk *Worker, delay time.Duration) *httptest.Server {
	t.Helper()
	inner := httptest.NewServer(wk.Handler())
	t.Cleanup(inner.Close)
	target, err := url.Parse(inner.URL)
	if err != nil {
		t.Fatal(err)
	}
	px := httputil.NewSingleHostReverseProxy(target)
	px.ErrorHandler = func(w http.ResponseWriter, _ *http.Request, _ error) {
		w.WriteHeader(http.StatusBadGateway)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/run" {
			// Drain the body before holding: the net/http server only
			// watches for client disconnects once the request body is
			// consumed, and the held dispatch must abort the moment the
			// coordinator severs it, not sleep out the full hold.
			body, err := io.ReadAll(r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
		}
		px.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// speculatingCoordinator builds a coordinator over the given worker
// URLs with speculation tuned for test cadence.
func speculatingCoordinator(t *testing.T, urls ...string) *Coordinator {
	t.Helper()
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		Dynamic:           len(urls) == 0,
		HeartbeatInterval: -1,
		BoardSync:         2 * time.Millisecond,
		Speculate:         true,
		SpeculateAfter:    50 * time.Millisecond,
		SpeculateInterval: 25 * time.Millisecond,
		ProgressInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord
}

// TestDeliverSpecFirstWins drives the slot state machine through both
// arrival orders and the failure-holding paths directly.
func TestDeliverSpecFirstWins(t *testing.T) {
	coord := speculatingCoordinator(t)
	good := shardOutcome{res: multiwalk.Result{Completed: 2}}

	newSlot := func() (*specSlot, *assignment, *assignment) {
		pa := &assignment{runID: "p"}
		ba := &assignment{runID: "b"}
		return &specSlot{primary: pa, backup: ba, inflight: 2}, pa, ba
	}

	// Primary lands first: it wins, the backup is the loser to cancel,
	// and the backup's later delivery is dropped.
	s, pa, ba := newSlot()
	resolved, final, loser := coord.deliverSpec(s, pa, good)
	if !resolved || loser != ba || final.res.Completed != 2 {
		t.Fatalf("primary-first: resolved=%v loser=%p final=%+v", resolved, loser, final)
	}
	if resolved, _, _ := coord.deliverSpec(s, ba, good); resolved {
		t.Fatal("late backup delivery resolved an already-resolved slot")
	}
	if coord.mSpecLost.Load() != 1 || coord.mSpecWon.Load() != 0 {
		t.Fatalf("primary-first counters: won=%d lost=%d", coord.mSpecWon.Load(), coord.mSpecLost.Load())
	}

	// Backup lands first: the speculation won, the primary is the
	// loser, and its later delivery is dropped.
	s, pa, ba = newSlot()
	resolved, _, loser = coord.deliverSpec(s, ba, good)
	if !resolved || loser != pa {
		t.Fatalf("backup-first: resolved=%v loser=%p", resolved, loser)
	}
	if resolved, _, _ := coord.deliverSpec(s, pa, good); resolved {
		t.Fatal("late primary delivery resolved an already-resolved slot")
	}
	if coord.mSpecWon.Load() != 1 {
		t.Fatalf("backup-first: won=%d", coord.mSpecWon.Load())
	}

	// A failed primary is held while the backup is still in flight; the
	// backup's success then resolves the slot.
	s, pa, ba = newSlot()
	if resolved, _, _ := coord.deliverSpec(s, pa, shardOutcome{lost: true}); resolved {
		t.Fatal("lost primary resolved the slot with a backup still in flight")
	}
	resolved, final, loser = coord.deliverSpec(s, ba, good)
	if !resolved || loser != nil || final.lost || final.res.Completed != 2 {
		t.Fatalf("backup-after-lost-primary: resolved=%v loser=%p final=%+v", resolved, loser, final)
	}

	// Both copies fail: an application rejection outranks a transport
	// loss regardless of arrival order.
	s, pa, ba = newSlot()
	if resolved, _, _ := coord.deliverSpec(s, ba, shardOutcome{err: errors.New("rejected")}); resolved {
		t.Fatal("rejected backup resolved the slot with the primary still in flight")
	}
	resolved, final, _ = coord.deliverSpec(s, pa, shardOutcome{lost: true})
	if !resolved || final.err == nil {
		t.Fatalf("both-failed: resolved=%v final=%+v, want the rejection surfaced", resolved, final)
	}
}

// TestSpeculativeRunMatchesUnperturbed is the end-to-end duplicate
// suppression matrix: a job whose first shard is dispatched to a held
// worker, with speculation on, must come back exactly as a
// never-straggled run — every walker reported once with its global
// identity, and (independent mode) bit-for-bit the clean fleet's
// stats even when the straggler's copy lands after the backup.
func TestSpeculativeRunMatchesUnperturbed(t *testing.T) {
	for _, tc := range []struct {
		name     string
		exchange bool
	}{
		{name: "independent"},
		{name: "exchange", exchange: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The budget must be far below costas 18's solve horizon: a
			// solving walker triggers first-solution cancellation, and the
			// interrupted walkers' stats then depend on cancel timing —
			// only a runs-to-budget job is bit-for-bit reproducible.
			engine := tunedEngine(t, "costas", 18)
			engine.MaxIterations = 4000
			engine.MaxRuns = 1
			job := JobSpec{Problem: "costas", Size: 18, Walkers: 4, Seed: 99, Engine: engine}
			if tc.exchange {
				job.Exchange = multiwalk.ExchangeOptions{Enabled: true, Period: 64, AdoptFactor: 1.5}
			}

			clean := newFleet(t, 2, 2, 2)
			ref, err := clean.coord.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Solved {
				t.Fatalf("reference run solved — budget %d too generous for the bit-for-bit comparison", engine.MaxIterations)
			}

			straggler := NewWorker(WorkerConfig{Slots: 2})
			t.Cleanup(func() { straggler.Close() })
			held := heldWorker(t, straggler, 150*time.Millisecond)
			var urls []string
			urls = append(urls, held.URL)
			for i := 0; i < 2; i++ {
				wk := NewWorker(WorkerConfig{Slots: 2})
				srv := httptest.NewServer(wk.Handler())
				t.Cleanup(func() { srv.Close(); wk.Close() })
				urls = append(urls, srv.URL)
			}
			coord := speculatingCoordinator(t, urls...)

			res, err := coord.Run(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatalf("speculated run truncated: %+v", res)
			}
			if len(res.Walkers) != 4 {
				t.Fatalf("want 4 walkers exactly once, got %d", len(res.Walkers))
			}
			for w, ws := range res.Walkers {
				if ws.Walker != w {
					t.Fatalf("walker %d carries global index %d", w, ws.Walker)
				}
			}
			m := coord.BackendMetrics()
			if m["speculations_launched"] < 1 {
				t.Fatalf("no speculation launched: %v", m)
			}
			if !tc.exchange {
				// Independent runs are bit-for-bit: whichever copy of
				// the straggler's shard won, its stats are the clean
				// fleet's stats, and the loser's are nowhere.
				sameWalkers(t, "speculated", ref.Walkers, res.Walkers)
				if res.Solved != ref.Solved || res.Winner != ref.Winner || res.Completed != ref.Completed {
					t.Fatalf("headline mismatch:\nclean: %+v\nspec:  %+v", ref, res)
				}
				return
			}
			// Dependent runs are timing-dependent; check the exchange
			// accounting invariants instead: adoption totals match the
			// per-walker sums and a yielded walker implies a solved job.
			var adoptions int64
			yielded := false
			for _, ws := range res.Walkers {
				adoptions += ws.Adoptions
				yielded = yielded || ws.Yielded
			}
			if res.Adoptions != adoptions {
				t.Fatalf("Adoptions %d != per-walker sum %d", res.Adoptions, adoptions)
			}
			if yielded && !res.Solved {
				t.Fatalf("yielded walker in an unsolved job: %+v", res)
			}
		})
	}
}

// TestSpeculationLoserReleasesSlotsPromptly: once the backup wins, the
// held primary's reservation must come back the moment the worker acks
// the cancel — not when its (still held) HTTP response finally drains.
func TestSpeculationLoserReleasesSlotsPromptly(t *testing.T) {
	straggler := NewWorker(WorkerConfig{Slots: 2})
	t.Cleanup(func() { straggler.Close() })
	held := heldWorker(t, straggler, 10*time.Minute)
	var urls []string
	urls = append(urls, held.URL)
	for i := 0; i < 2; i++ {
		wk := NewWorker(WorkerConfig{Slots: 2})
		srv := httptest.NewServer(wk.Handler())
		t.Cleanup(func() { srv.Close(); wk.Close() })
		urls = append(urls, srv.URL)
	}
	coord := speculatingCoordinator(t, urls...)

	// Walkers 0-1 (the held shard and its backup) finish fast; walkers
	// 2-3 churn a much larger budget so the job is still in flight when
	// the loser's slots must already be reusable.
	fast := tunedEngine(t, "costas", 16)
	fast.MaxIterations = 1500
	fast.MaxRuns = 1
	slow := fast
	slow.MaxIterations = 40000
	job := JobSpec{
		Problem: "costas", Size: 16, Walkers: 4, Seed: 99, Engine: fast,
		Portfolio: []multiwalk.PortfolioEntry{
			{Weight: 2, Engine: fast},
			{Weight: 2, Engine: slow},
		},
	}

	type runRes struct {
		res multiwalk.Result
		err error
	}
	done := make(chan runRes, 1)
	go func() {
		res, err := coord.Run(context.Background(), job)
		done <- runRes{res, err}
	}()

	// The held shard never starts, so the backup wins as soon as the
	// detector fires; its cancel is acked instantly through the proxy
	// and must release the straggler's two reserved slots while the job
	// (and the loser's held dispatch) is still running.
	deadline := time.After(15 * time.Second)
	released := false
	for !released {
		select {
		case <-deadline:
			t.Fatal("straggler slots not released while its response was still held")
		case <-time.After(5 * time.Millisecond):
		}
		m := coord.BackendMetrics()
		if m["speculations_cancelled"] < 1 {
			continue
		}
		for _, wi := range coord.Workers() {
			if wi.URL == held.URL && wi.Busy == 0 {
				released = true
			}
		}
	}

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.res.Truncated || len(r.res.Walkers) != 4 {
		t.Fatalf("speculated portfolio run: %+v", r.res)
	}
	m := coord.BackendMetrics()
	if m["speculations_won"] < 1 || m["speculations_cancelled"] < 1 {
		t.Fatalf("counters: %v", m)
	}
	for _, wi := range coord.Workers() {
		if wi.Busy != 0 {
			t.Fatalf("slot leak after run: %+v", wi)
		}
	}
}

// TestPlanRecoveryNoCapacityTypedError pins the zero-capacity recovery
// path: with no healthy free worker, planRecovery reports
// ErrNoRecoveryCapacity with the whole input uncovered, and run()
// stops retrying without burning recovery rounds.
func TestPlanRecoveryNoCapacityTypedError(t *testing.T) {
	started := make(chan struct{}, 1)
	lossy := lossyWorker(t, 2, started)
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           []string{lossy.URL},
		RecoverAttempts:   3,
		HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	engine := tunedEngine(t, "costas", 16)
	engine.MaxIterations = 1500
	engine.MaxRuns = 1
	res, err := coord.Run(context.Background(), JobSpec{
		Problem: "costas", Size: 16, Walkers: 2, Seed: 99, Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatalf("lost job with no recovery capacity not truncated: %+v", res)
	}
	// The only worker is suspect after the loss, so every recovery
	// round would have been futile: none may be burned.
	if rounds := coord.BackendMetrics()["recovery_rounds"]; rounds != 0 {
		t.Fatalf("burned %d recovery rounds with zero healthy capacity", rounds)
	}

	plan, uncovered, perr := coord.planRecovery(ModeRun, []lostRange{{start: 0, count: 2}})
	if !errors.Is(perr, ErrNoRecoveryCapacity) {
		t.Fatalf("planRecovery error = %v, want ErrNoRecoveryCapacity", perr)
	}
	if len(plan) != 0 {
		t.Fatalf("zero-capacity planRecovery produced a plan: %+v", plan)
	}
	if len(uncovered) != 1 || uncovered[0] != (lostRange{start: 0, count: 2}) {
		t.Fatalf("uncovered = %+v, want the full input range", uncovered)
	}
}
