package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/multiwalk"
	"repro/internal/problems"
	"repro/internal/telemetry"
)

// WorkerConfig sizes one worker process.
type WorkerConfig struct {
	// Slots is the walker-slot capacity — how many concurrent engine
	// goroutines this worker accepts across all shard runs (the
	// paper's one-walker-per-core model). 0 selects GOMAXPROCS.
	Slots int
	// BoardSync is the fallback board-cache sync period for dependent
	// (Exchange) shard runs whose request does not pin one
	// (ExchangeSpec.SyncMS). 0 selects 50ms.
	BoardSync time.Duration
	// BoardClient is the HTTP client for board sync traffic. nil
	// selects a shared keep-alive transport sized for the steady
	// per-tick sync cadence against one coordinator host (each sync is
	// bounded by its own timeout, so no global one is set).
	BoardClient *http.Client
	// Stream enables the worker side of the streaming control plane:
	// exchange runs whose request carries a BoardStream address attach
	// to the coordinator's persistent board stream instead of running
	// the periodic POST loop. Binary run dispatch needs no flag — the
	// run endpoint always accepts wire frames.
	Stream bool
	// Telemetry, when non-nil, receives periodic FTDC-style samples:
	// worker gauges plus per-walker iteration and cost series for
	// every active run. The caller owns the recorder's sink.
	Telemetry *telemetry.Recorder
	// TelemetryInterval is the sampling period. 0 selects 1s.
	TelemetryInterval time.Duration
}

// newBoardClient is the worker's default board sync client: board
// traffic goes to a single coordinator host at a steady cadence, so a
// few kept-alive connections replace the per-tick churn of the
// zero-value client.
func newBoardClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        8,
		MaxIdleConnsPerHost: 4,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// Worker executes shard runs on behalf of a coordinator. Expose it
// over HTTP with Handler (cmd/worker does exactly that):
//
//	POST /v1/run              run a walker shard, respond with its stats
//	POST /v1/runs/{id}/cancel cancel an in-flight shard run
//	GET  /healthz             liveness + slot capacity and usage
//
// A run request blocks until the shard finishes (or is cancelled) and
// answers with the per-walker statistics; cancellation arrives either
// through the cancel endpoint (first-solution termination — the shard
// still reports its partial stats) or by the coordinator dropping the
// connection (orphan protection — the request context aborts the run).
type Worker struct {
	slots       int
	boardSync   time.Duration
	boardClient *http.Client
	streams     *streamPool // nil unless WorkerConfig.Stream
	telem       *telemetry.Recorder
	telemEvery  time.Duration

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	busy      int
	runs      map[string]context.CancelFunc
	telemRuns map[string]*runTelem
	closed    bool
	wg        sync.WaitGroup

	mRuns      atomic.Int64
	mCancelled atomic.Int64
}

// runTelem is one active run's telemetry cells: an (iterations, cost)
// atomic pair per walker, written by the run's Progress hook and read
// by the sampler.
type runTelem struct {
	start int
	cells []atomic.Int64 // 2 per walker: iterations, cost
}

// NewWorker creates a worker with the given slot capacity.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.BoardSync <= 0 {
		cfg.BoardSync = defaultBoardSync
	}
	if cfg.BoardClient == nil {
		cfg.BoardClient = newBoardClient()
	}
	if cfg.TelemetryInterval <= 0 {
		cfg.TelemetryInterval = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	wk := &Worker{
		slots:       cfg.Slots,
		boardSync:   cfg.BoardSync,
		boardClient: cfg.BoardClient,
		telem:       cfg.Telemetry,
		telemEvery:  cfg.TelemetryInterval,
		ctx:         ctx,
		cancel:      cancel,
		runs:        make(map[string]context.CancelFunc),
		telemRuns:   make(map[string]*runTelem),
	}
	if cfg.Stream {
		wk.streams = newStreamPool()
	}
	if wk.telem != nil {
		go wk.sampleTelemetry()
	}
	return wk
}

// Slots returns the worker's walker-slot capacity.
func (wk *Worker) Slots() int { return wk.slots }

// Busy returns the worker's currently reserved slot count — the fleet
// agent reports it in heartbeats.
func (wk *Worker) Busy() int {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return wk.busy
}

// Close cancels every in-flight run and waits for them to unwind. New
// runs are rejected afterwards.
func (wk *Worker) Close() {
	wk.mu.Lock()
	wk.closed = true
	wk.mu.Unlock()
	wk.cancel()
	wk.wg.Wait()
	if wk.streams != nil {
		wk.streams.close()
	}
}

// sampleTelemetry is the worker's FTDC sampler: one row per interval
// carrying the worker gauges and every active run's per-walker
// iteration and cost series. Metric names are sorted, so the schema
// only changes when the active-run set does — the recorder's
// schema-delta encoding stays cheap between run boundaries.
func (wk *Worker) sampleTelemetry() {
	tick := time.NewTicker(wk.telemEvery)
	defer tick.Stop()
	for {
		select {
		case <-wk.ctx.Done():
			return
		case now := <-tick.C:
			wk.mu.Lock()
			busy := wk.busy
			metrics := make([]telemetry.Metric, 0, 4+8*len(wk.telemRuns))
			for id, rt := range wk.telemRuns {
				for i := 0; i < len(rt.cells)/2; i++ {
					g := rt.start + i
					metrics = append(metrics,
						telemetry.Metric{Name: fmt.Sprintf("%s_w%04d_iter", id, g), Value: rt.cells[2*i].Load()},
						telemetry.Metric{Name: fmt.Sprintf("%s_w%04d_cost", id, g), Value: rt.cells[2*i+1].Load()},
					)
				}
			}
			wk.mu.Unlock()
			metrics = append(metrics,
				telemetry.Metric{Name: "runs_total", Value: wk.mRuns.Load()},
				telemetry.Metric{Name: "slots_busy", Value: int64(busy)},
			)
			if wk.streams != nil {
				rx, tx := wk.streams.traffic()
				metrics = append(metrics,
					telemetry.Metric{Name: "board_stream_rx_bytes", Value: rx},
					telemetry.Metric{Name: "board_stream_tx_bytes", Value: tx},
				)
			}
			sort.Slice(metrics, func(i, j int) bool { return metrics[i].Name < metrics[j].Name })
			_ = wk.telem.Record(now, metrics)
		}
	}
}

// Handler returns the worker's HTTP protocol surface.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", wk.handleRun)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", wk.handleCancel)
	mux.HandleFunc("GET /healthz", wk.handleHealth)
	return mux
}

// reserve admits a shard run: slot accounting plus run registration.
// ModeRun shards occupy one slot per walker (they run concurrently);
// ModeVirtual shards occupy a single slot, because RunVirtual executes
// its walkers sequentially on one core regardless of the shard size.
func (wk *Worker) reserve(req *RunRequest, cancel context.CancelFunc) (release func(), err error) {
	need := req.Count
	if req.Mode == ModeVirtual {
		need = 1
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if wk.closed {
		return nil, errors.New("dist: worker shutting down")
	}
	if _, dup := wk.runs[req.ID]; dup {
		return nil, fmt.Errorf("%w: duplicate run id %q", ErrBadRequest, req.ID)
	}
	if wk.busy+need > wk.slots {
		return nil, fmt.Errorf("%w: %d slots requested, %d of %d free", ErrBusy, need, wk.slots-wk.busy, wk.slots)
	}
	wk.busy += need
	wk.runs[req.ID] = cancel
	wk.wg.Add(1)
	id := req.ID
	return func() {
		wk.mu.Lock()
		wk.busy -= need
		delete(wk.runs, id)
		wk.mu.Unlock()
		wk.wg.Done()
	}, nil
}

// handleRun executes one shard run and answers with its statistics.
// The request body is JSON or a binary RunSpec frame, dispatched on
// Content-Type; wire decoding is always available — it is stream
// *sync* that is opt-in, not the codec.
func (wk *Worker) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	var err error
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeWire) {
		req, err = DecodeRunRequestWire(r.Body)
	} else {
		req, err = DecodeRunRequest(r.Body)
	}
	if err != nil {
		writeError(w, err)
		return
	}

	// The run is bound to (a) the request context, so a vanished
	// coordinator aborts it, (b) the worker lifetime, so Close drains
	// it, and (c) the request's own deadline, so an orphan cannot hold
	// slots forever even while the connection lingers.
	runCtx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(wk.ctx, cancel)
	defer stop()
	if req.DeadlineMS > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(runCtx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer tcancel()
	}

	release, err := wk.reserve(&req, cancel)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()

	factory, err := problems.NewFactoryParams(req.Problem, req.Size, req.Params)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	opts := multiwalk.Options{
		Walkers: req.Count,
		Seed:    req.Seed,
		Engine:  req.Engine.Options(),
		Shard:   &multiwalk.Shard{Start: req.Start, Total: req.TotalWalkers},
	}
	for _, p := range req.Portfolio {
		opts.Portfolio = append(opts.Portfolio, multiwalk.PortfolioEntry{Weight: p.Weight, Engine: p.Engine.Options()})
	}
	// One set of per-walker (iteration, cost) cells feeds both consumers
	// that want live counters: the FTDC sampler and the coordinator's
	// straggler detector. The Progress hook costs nothing when neither
	// is on.
	var rt *runTelem
	if wk.telem != nil || req.ProgressURL != "" {
		rt = &runTelem{start: req.Start, cells: make([]atomic.Int64, 2*req.Count)}
		opts.Progress = func(walker int, iter int64, cost int) {
			i := walker - rt.start
			if i < 0 || 2*i >= len(rt.cells) {
				return
			}
			rt.cells[2*i].Store(iter)
			rt.cells[2*i+1].Store(int64(cost))
		}
	}
	if wk.telem != nil {
		wk.mu.Lock()
		wk.telemRuns[req.ID] = rt
		wk.mu.Unlock()
		defer func() {
			wk.mu.Lock()
			delete(wk.telemRuns, req.ID)
			wk.mu.Unlock()
		}()
	}
	if req.ProgressURL != "" {
		repCtx, repCancel := context.WithCancel(runCtx)
		var repWG sync.WaitGroup
		repWG.Add(1)
		go wk.reportProgress(repCtx, &repWG, &req, rt)
		defer func() {
			// Stop the reporter before answering: a report racing past
			// the shard's own response would feed the detector stale
			// numbers for a run it already resolved.
			repCancel()
			repWG.Wait()
		}()
	}

	// Dependent runs cooperate through a write-through cache of the
	// coordinator's global board: walkers touch only local memory, the
	// cache syncs in the background, and the final stop() flush pushes
	// a late win to the board before the shard answers — while the
	// coordinator still holds the board open (it waits for every shard
	// response before releasing it).
	var board *remoteBoard
	if req.Exchange.Enabled {
		opts.Exchange = req.Exchange.Options()
		period := time.Duration(req.Exchange.SyncMS) * time.Millisecond
		if period <= 0 {
			period = wk.boardSync
		}
		board = newRemoteBoard(req.Board, wk.boardClient, period)
		if wk.streams != nil && req.BoardStream != "" {
			// Streaming board sync, negotiated per run: attach the
			// cache to the persistent hub connection. A failed dial is
			// not an error — the run silently keeps the HTTP loop, the
			// scheme's designed degradation.
			if sess, serr := wk.streams.join(req.BoardStream, req.BoardJob, board); serr == nil {
				board.sess = sess
				board.job = req.BoardJob
			}
		}
		board.start(runCtx)
		defer board.stop() // idempotent backstop for early returns
		opts.Board = board
	}

	var res multiwalk.Result
	if req.Mode == ModeVirtual {
		res, err = multiwalk.RunVirtual(runCtx, multiwalk.Factory(factory), opts)
	} else {
		res, err = multiwalk.Run(runCtx, multiwalk.Factory(factory), opts)
	}
	if board != nil {
		board.stop()
	}
	if err != nil {
		// Deep option validation failed (multiwalk/core reject) — the
		// request was well-formed but unsatisfiable; a client error.
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	wk.mRuns.Add(1)
	writeJSON(w, http.StatusOK, wireResult(res))
}

// defaultProgressPeriod is the shard progress report cadence when the
// request does not pin one (RunRequest.ProgressMS). 250ms resolves
// stragglers an order of magnitude faster than typical shard runtimes
// while costing a few dozen bytes per tick.
const defaultProgressPeriod = 250 * time.Millisecond

// snapshot folds the run's per-walker cells into one progress report:
// total iterations, walkers that have iterated at least once, and the
// best (lowest) cost among them, or -1 before any walker reports.
func (rt *runTelem) snapshot() ShardProgressReport {
	rep := ShardProgressReport{Best: -1}
	for i := 0; i < len(rt.cells)/2; i++ {
		iter := rt.cells[2*i].Load()
		if iter <= 0 {
			continue
		}
		rep.Iters += iter
		rep.Walkers++
		if cost := rt.cells[2*i+1].Load(); rep.Best < 0 || cost < rep.Best {
			rep.Best = cost
		}
	}
	return rep
}

// reportProgress is the straggler detector's feed: a periodic loop
// pushing the run's progress snapshot to the coordinator, over the
// persistent wire stream when one is negotiated (ProgressStream) and
// the HTTP fallback endpoint otherwise. Reports are advisory —
// failures are dropped, never retried, and never slow the run; losing
// the feed only makes this shard look like a straggler, which costs
// the fleet one redundant backup run at worst.
func (wk *Worker) reportProgress(ctx context.Context, wg *sync.WaitGroup, req *RunRequest, rt *runTelem) {
	defer wg.Done()
	period := time.Duration(req.ProgressMS) * time.Millisecond
	if period <= 0 {
		period = defaultProgressPeriod
	}
	var sess *streamSess
	if wk.streams != nil && req.ProgressStream != "" {
		if s, err := wk.streams.sess(req.ProgressStream); err == nil {
			sess = s
		}
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		rep := rt.snapshot()
		if sess != nil && sess.alive() {
			if sess.reportProgress(req.ID, rep.Iters, rep.Walkers, rep.Best) == nil {
				continue
			}
			sess = nil // stream died: fall back to HTTP for the rest
		}
		wk.postProgress(ctx, req.ProgressURL, &rep)
	}
}

// postProgress sends one report over the HTTP fallback route.
func (wk *Worker) postProgress(ctx context.Context, url string, rep *ShardProgressReport) {
	payload, err := json.Marshal(rep)
	if err != nil {
		return
	}
	reqCtx, cancel := context.WithTimeout(ctx, boardSyncTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(reqCtx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := wk.boardClient.Do(hreq)
	if err != nil {
		return
	}
	_ = resp.Body.Close()
}

// handleCancel cancels an in-flight run. Cancelling an unknown (or
// already finished) run is a no-op, reported in the response body —
// the races are benign, so the call is idempotent by design.
func (wk *Worker) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wk.mu.Lock()
	cancel, ok := wk.runs[id]
	wk.mu.Unlock()
	if ok {
		cancel()
		wk.mCancelled.Add(1)
	}
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": ok})
}

// handleHealth reports liveness and slot headroom; the coordinator
// reads Slots from here when it enrolls the worker.
func (wk *Worker) handleHealth(w http.ResponseWriter, r *http.Request) {
	wk.mu.Lock()
	busy := wk.busy
	active := len(wk.runs)
	closed := wk.closed
	wk.mu.Unlock()
	status, code := "ok", http.StatusOK
	if closed {
		status, code = "shutting down", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":        status,
		"slots":         wk.slots,
		"slots_busy":    busy,
		"active_runs":   active,
		"runs_total":    wk.mRuns.Load(),
		"cancels_total": wk.mCancelled.Load(),
		// Capability advertisement for the coordinator's probe: wire is
		// unconditional (the run endpoint always decodes binary
		// frames); stream reports whether this worker will attach to a
		// board stream when offered one.
		"wire":   true,
		"stream": wk.streams != nil,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrBusy):
		code = http.StatusTooManyRequests
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusRequestTimeout
	default:
		// Shutdown and other availability failures.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
