package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/multiwalk"
	"repro/internal/problems"
)

// WorkerConfig sizes one worker process.
type WorkerConfig struct {
	// Slots is the walker-slot capacity — how many concurrent engine
	// goroutines this worker accepts across all shard runs (the
	// paper's one-walker-per-core model). 0 selects GOMAXPROCS.
	Slots int
	// BoardSync is the fallback board-cache sync period for dependent
	// (Exchange) shard runs whose request does not pin one
	// (ExchangeSpec.SyncMS). 0 selects 50ms.
	BoardSync time.Duration
	// BoardClient is the HTTP client for board sync traffic. nil
	// selects a dedicated client (each sync is bounded by its own
	// timeout, so no global one is set).
	BoardClient *http.Client
}

// Worker executes shard runs on behalf of a coordinator. Expose it
// over HTTP with Handler (cmd/worker does exactly that):
//
//	POST /v1/run              run a walker shard, respond with its stats
//	POST /v1/runs/{id}/cancel cancel an in-flight shard run
//	GET  /healthz             liveness + slot capacity and usage
//
// A run request blocks until the shard finishes (or is cancelled) and
// answers with the per-walker statistics; cancellation arrives either
// through the cancel endpoint (first-solution termination — the shard
// still reports its partial stats) or by the coordinator dropping the
// connection (orphan protection — the request context aborts the run).
type Worker struct {
	slots       int
	boardSync   time.Duration
	boardClient *http.Client

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	busy   int
	runs   map[string]context.CancelFunc
	closed bool
	wg     sync.WaitGroup

	mRuns      atomic.Int64
	mCancelled atomic.Int64
}

// NewWorker creates a worker with the given slot capacity.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.BoardSync <= 0 {
		cfg.BoardSync = defaultBoardSync
	}
	if cfg.BoardClient == nil {
		cfg.BoardClient = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		slots:       cfg.Slots,
		boardSync:   cfg.BoardSync,
		boardClient: cfg.BoardClient,
		ctx:         ctx,
		cancel:      cancel,
		runs:        make(map[string]context.CancelFunc),
	}
}

// Slots returns the worker's walker-slot capacity.
func (wk *Worker) Slots() int { return wk.slots }

// Close cancels every in-flight run and waits for them to unwind. New
// runs are rejected afterwards.
func (wk *Worker) Close() {
	wk.mu.Lock()
	wk.closed = true
	wk.mu.Unlock()
	wk.cancel()
	wk.wg.Wait()
}

// Handler returns the worker's HTTP protocol surface.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", wk.handleRun)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", wk.handleCancel)
	mux.HandleFunc("GET /healthz", wk.handleHealth)
	return mux
}

// reserve admits a shard run: slot accounting plus run registration.
// ModeRun shards occupy one slot per walker (they run concurrently);
// ModeVirtual shards occupy a single slot, because RunVirtual executes
// its walkers sequentially on one core regardless of the shard size.
func (wk *Worker) reserve(req *RunRequest, cancel context.CancelFunc) (release func(), err error) {
	need := req.Count
	if req.Mode == ModeVirtual {
		need = 1
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if wk.closed {
		return nil, errors.New("dist: worker shutting down")
	}
	if _, dup := wk.runs[req.ID]; dup {
		return nil, fmt.Errorf("%w: duplicate run id %q", ErrBadRequest, req.ID)
	}
	if wk.busy+need > wk.slots {
		return nil, fmt.Errorf("%w: %d slots requested, %d of %d free", ErrBusy, need, wk.slots-wk.busy, wk.slots)
	}
	wk.busy += need
	wk.runs[req.ID] = cancel
	wk.wg.Add(1)
	id := req.ID
	return func() {
		wk.mu.Lock()
		wk.busy -= need
		delete(wk.runs, id)
		wk.mu.Unlock()
		wk.wg.Done()
	}, nil
}

// handleRun executes one shard run and answers with its statistics.
func (wk *Worker) handleRun(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeRunRequest(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}

	// The run is bound to (a) the request context, so a vanished
	// coordinator aborts it, (b) the worker lifetime, so Close drains
	// it, and (c) the request's own deadline, so an orphan cannot hold
	// slots forever even while the connection lingers.
	runCtx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(wk.ctx, cancel)
	defer stop()
	if req.DeadlineMS > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(runCtx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer tcancel()
	}

	release, err := wk.reserve(&req, cancel)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()

	factory, err := problems.NewFactory(req.Problem, req.Size)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	opts := multiwalk.Options{
		Walkers: req.Count,
		Seed:    req.Seed,
		Engine:  req.Engine.Options(),
		Shard:   &multiwalk.Shard{Start: req.Start, Total: req.TotalWalkers},
	}
	for _, p := range req.Portfolio {
		opts.Portfolio = append(opts.Portfolio, multiwalk.PortfolioEntry{Weight: p.Weight, Engine: p.Engine.Options()})
	}

	// Dependent runs cooperate through a write-through cache of the
	// coordinator's global board: walkers touch only local memory, the
	// cache syncs in the background, and the final stop() flush pushes
	// a late win to the board before the shard answers — while the
	// coordinator still holds the board open (it waits for every shard
	// response before releasing it).
	var board *remoteBoard
	if req.Exchange.Enabled {
		opts.Exchange = req.Exchange.Options()
		period := time.Duration(req.Exchange.SyncMS) * time.Millisecond
		if period <= 0 {
			period = wk.boardSync
		}
		board = newRemoteBoard(req.Board, wk.boardClient, period)
		board.start(runCtx)
		defer board.stop() // idempotent backstop for early returns
		opts.Board = board
	}

	var res multiwalk.Result
	if req.Mode == ModeVirtual {
		res, err = multiwalk.RunVirtual(runCtx, multiwalk.Factory(factory), opts)
	} else {
		res, err = multiwalk.Run(runCtx, multiwalk.Factory(factory), opts)
	}
	if board != nil {
		board.stop()
	}
	if err != nil {
		// Deep option validation failed (multiwalk/core reject) — the
		// request was well-formed but unsatisfiable; a client error.
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	wk.mRuns.Add(1)
	writeJSON(w, http.StatusOK, wireResult(res))
}

// handleCancel cancels an in-flight run. Cancelling an unknown (or
// already finished) run is a no-op, reported in the response body —
// the races are benign, so the call is idempotent by design.
func (wk *Worker) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wk.mu.Lock()
	cancel, ok := wk.runs[id]
	wk.mu.Unlock()
	if ok {
		cancel()
		wk.mCancelled.Add(1)
	}
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": ok})
}

// handleHealth reports liveness and slot headroom; the coordinator
// reads Slots from here when it enrolls the worker.
func (wk *Worker) handleHealth(w http.ResponseWriter, r *http.Request) {
	wk.mu.Lock()
	busy := wk.busy
	active := len(wk.runs)
	closed := wk.closed
	wk.mu.Unlock()
	status, code := "ok", http.StatusOK
	if closed {
		status, code = "shutting down", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":        status,
		"slots":         wk.slots,
		"slots_busy":    busy,
		"active_runs":   active,
		"runs_total":    wk.mRuns.Load(),
		"cancels_total": wk.mCancelled.Load(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrBusy):
		code = http.StatusTooManyRequests
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusRequestTimeout
	default:
		// Shutdown and other availability failures.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
