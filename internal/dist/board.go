package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/perm"
	"repro/internal/wire"
)

// defaultBoardSync is the worker cache's board reconciliation period
// when neither the coordinator (ExchangeSpec.SyncMS) nor the worker
// configuration picks one. 50ms keeps cooperation latency well under a
// typical exchange period's wall-clock while staying negligible
// against the protocol's other traffic.
const defaultBoardSync = 50 * time.Millisecond

// boardSyncTimeout bounds one publish-and-fetch round trip. A sync
// that misses its window is simply retried at the next tick — the
// scheme is best-effort by design, so a slow board must never back up
// into the worker.
const boardSyncTimeout = 5 * time.Second

// boardHub is the coordinator side of the cross-worker exchange
// scheme: one global multiwalk.Board per exchange-enabled job, served
// over a lazily started HTTP listener that workers sync their local
// caches against (POST /v1/runs/{id}/board, combined publish-and-
// fetch). The hub is lazy so fleets that never run dependent jobs pay
// nothing — no port, no goroutine.
type boardHub struct {
	addr       string // listen address; "" selects 127.0.0.1:0
	advertise  string // advertised base URL; "" derives from the listener
	streamAddr string // stream listen address; "" selects 127.0.0.1:0

	mu         sync.Mutex
	ln         net.Listener
	srv        *http.Server
	base       string
	sln        net.Listener // stream listener (lazy, like the HTTP one)
	streamBase string       // advertised stream host:port
	conns      map[*wire.Conn]struct{}
	boards     map[string]*boardEntry

	// Traffic accounting sampled by telemetry: HTTP sync round trips
	// and total board bytes each way (HTTP bodies + stream frames of
	// closed connections; live connections are added in traffic()).
	mHTTPSyncs atomic.Int64
	mRxBytes   atomic.Int64
	mTxBytes   atomic.Int64

	// onShardProgress, when set, receives every shard progress report
	// the hub hears — over HTTP (POST /v1/runs/{id}/progress) or as
	// TypeShardProgress stream frames. Set once by the owning
	// Coordinator before any server starts; the callback must be
	// cheap and concurrency-safe.
	onShardProgress func(runID string, iters, walkers, best int64)

	// Per-job HTTP sync counts, keyed by board job id. Server-side
	// accounting lags client completion — a straggler POST from a
	// finished run can be handled after its coordinator Run returned —
	// so tests that pin "this run never fell back to HTTP" must scope
	// the assertion to the run's own job rather than the global total.
	syncMu     sync.Mutex
	syncsByJob map[string]int64
}

// countJobSync records one HTTP sync against a board job id.
func (h *boardHub) countJobSync(jobID string) {
	h.syncMu.Lock()
	if h.syncsByJob == nil {
		h.syncsByJob = make(map[string]int64)
	}
	h.syncsByJob[jobID]++
	h.syncMu.Unlock()
}

// syncsFor reports the HTTP sync count recorded for one board job id.
func (h *boardHub) syncsFor(jobID string) int64 {
	h.syncMu.Lock()
	defer h.syncMu.Unlock()
	return h.syncsByJob[jobID]
}

// boardEntry is one job's global board plus the probe instance the hub
// uses to verify publishes and the stream subscribers to notify on
// improvements. The probe is a live problem encoding whose Cost call
// may mutate cached internal state; mu serializes it, and also guards
// the generation counter and subscriber set so "verify, publish, bump
// gen" is atomic against concurrent syncs.
type boardEntry struct {
	board multiwalk.Board
	probe core.Problem

	mu   sync.Mutex
	gen  uint64
	subs map[*wire.Conn]struct{}
}

// merge verifies and applies one publish claim, returning whether the
// board improved (callers broadcast on true) and a rejection reason
// for claims that failed verification. A claim that does not improve
// the current best is a benign no-op, not an error.
//
// The board crosses trust boundaries between processes, and its
// contents steer every walker of the job, so the claim is verified
// rather than trusted: the configuration must be a permutation of the
// job's instance size, and the cost must be the probe-recomputed cost
// of that configuration. Without the recomputation one corrupt
// publisher could post a fake cost 0 and stand the whole fleet down,
// or a fake low cost that monotonically blocks every real elite.
// Honest publishes always match: the engine's incrementally maintained
// cost equals the recomputed one (pinned by the core equivalence
// suites).
func (e *boardEntry) merge(valid bool, cost int, cfg []int) (improved bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, _, curOK := e.board.Snapshot()
	if !valid || (curOK && cost >= cur) {
		// Only a claim that would improve the board is worth verifying:
		// the board keeps strict improvements only, so skipping the rest
		// (the steady-state case) is behavior-identical and saves a full
		// cost recomputation per sync.
		return false, nil
	}
	// Structural verification is encoding-aware: permutation problems
	// demand a permutation of the instance size, finite-domain problems
	// a configuration inside every variable's domain.
	if fd, ok := e.probe.(core.FDProblem); ok {
		if err := core.ValidateFDConfig(fd, cfg); err != nil {
			return false, fmt.Errorf("board sync configuration rejected: %v", err)
		}
	} else if len(cfg) != e.probe.Size() || perm.Validate(cfg) != nil {
		return false, errors.New("board sync configuration is not a permutation of the job's instance size")
	}
	actual := e.probe.Cost(cfg)
	if actual != cost {
		return false, fmt.Errorf("board sync cost %d does not match the configuration's actual cost %d", cost, actual)
	}
	e.board.Publish(actual, cfg)
	e.gen++
	return true, nil
}

// state snapshots the entry's global best and generation together.
func (e *boardEntry) state() (cost int, cfg []int, ok bool, gen uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cost, cfg, ok = e.board.Snapshot()
	return cost, cfg, ok, e.gen
}

func newBoardHub(addr, advertise, streamAddr string) *boardHub {
	return &boardHub{
		addr:       addr,
		advertise:  advertise,
		streamAddr: streamAddr,
		conns:      make(map[*wire.Conn]struct{}),
		boards:     make(map[string]*boardEntry),
	}
}

// open registers a fresh global board for a job, starting the board
// server if this is the fleet's first exchange-enabled job. probe is a
// private instance of the job's problem, used to verify every publish
// (see handleSync). It returns the board's sync URL (for
// RunRequest.Board), the board handle (for inspecting the merged
// global state — job results flow back through shard responses, not
// the board, so the coordinator itself discards it), and a release
// function dropping the board once every shard has unwound.
func (h *boardHub) open(jobID string, probe core.Problem) (url string, board multiwalk.Board, release func(), err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.ensureServerLocked(); err != nil {
		return "", nil, nil, err
	}
	if _, dup := h.boards[jobID]; dup {
		return "", nil, nil, fmt.Errorf("dist: board for job %q already open", jobID)
	}
	board = multiwalk.NewLocalBoard()
	h.boards[jobID] = &boardEntry{board: board, probe: probe, subs: make(map[*wire.Conn]struct{})}
	release = func() {
		h.mu.Lock()
		delete(h.boards, jobID)
		h.mu.Unlock()
	}
	return h.base + "/v1/runs/" + jobID + "/board", board, release, nil
}

// lookup resolves a job's board entry, or nil.
func (h *boardHub) lookup(jobID string) *boardEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.boards[jobID]
}

// ensureServerLocked starts the board listener and server on first
// use. Callers hold h.mu.
func (h *boardHub) ensureServerLocked() error {
	if h.ln != nil {
		return nil
	}
	addr := h.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: starting board server on %s: %w", addr, err)
	}
	h.ln = ln
	if h.advertise != "" {
		h.base = strings.TrimRight(h.advertise, "/")
	} else {
		h.base = "http://" + ln.Addr().String()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs/{id}/board", h.handleSync)
	mux.HandleFunc("POST /v1/runs/{id}/progress", h.handleProgress)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	h.srv = srv
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// ensureServer starts the hub's HTTP server if needed and returns its
// base URL — the straggler detector reuses the board listener for the
// progress fallback route, so speculation-enabled fleets pay for one
// listener, not two.
func (h *boardHub) ensureServer() (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.ensureServerLocked(); err != nil {
		return "", err
	}
	return h.base, nil
}

// maxProgressBodyLen caps one progress report body: three integers.
const maxProgressBodyLen = 4096

// handleProgress records one shard progress report (the HTTP fallback
// for stream-less workers). Reports are advisory — unknown run ids are
// acknowledged and dropped, since a straggling report racing the
// shard's own completion is benign.
func (h *boardHub) handleProgress(w http.ResponseWriter, r *http.Request) {
	var rep ShardProgressReport
	if err := json.NewDecoder(io.LimitReader(r.Body, maxProgressBodyLen)).Decode(&rep); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid progress report: " + err.Error()})
		return
	}
	if cb := h.onShardProgress; cb != nil {
		cb(r.PathValue("id"), rep.Iters, rep.Walkers, rep.Best)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSync merges a worker cache's best into the job's global board
// and answers with the global best — one round trip carrying at most
// one configuration each way. A request whose Gen matches the board's
// current generation gets a compact "unchanged" answer instead of the
// configuration it already holds.
func (h *boardHub) handleSync(w http.ResponseWriter, r *http.Request) {
	h.mHTTPSyncs.Add(1)
	h.countJobSync(r.PathValue("id"))
	if r.ContentLength > 0 {
		h.mRxBytes.Add(r.ContentLength)
	}
	id := r.PathValue("id")
	entry := h.lookup(id)
	if entry == nil {
		// The job finished (or never existed): benign for a straggling
		// sync racing the shard responses, but the worker has nothing to
		// gain from retrying against this board.
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown board " + id})
		return
	}
	var msg BoardSync
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBoardSyncLen)).Decode(&msg); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid board sync: " + err.Error()})
		return
	}
	improved, err := entry.merge(msg.Valid, msg.Cost, msg.Cfg)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if improved {
		h.broadcast(id, entry)
	}
	cost, cfg, ok, gen := entry.state()
	resp := BoardSync{Valid: ok, Cost: cost, Gen: gen, Cfg: cfg}
	if msg.Gen != 0 && msg.Gen == gen {
		// The requester already holds this generation: answer without
		// re-sending the configuration. Valid false + matching Gen is
		// the "unchanged" shape; the worker keeps its cache as is.
		resp = BoardSync{Gen: gen}
	}
	payload, merr := json.Marshal(resp)
	if merr != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": merr.Error()})
		return
	}
	h.mTxBytes.Add(int64(len(payload)))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// traffic reports cumulative board bytes each way: HTTP sync bodies
// plus the frames of every stream connection, live and closed.
func (h *boardHub) traffic() (rx, tx int64) {
	rx, tx = h.mRxBytes.Load(), h.mTxBytes.Load()
	h.mu.Lock()
	defer h.mu.Unlock()
	for c := range h.conns {
		rx += c.BytesRead()
		tx += c.BytesWritten()
	}
	return rx, tx
}

// close shuts the board server down; in-flight syncs and stream
// connections are severed (the scheme is best-effort, and the owning
// coordinator is going away).
func (h *boardHub) close() {
	h.mu.Lock()
	srv := h.srv
	sln := h.sln
	conns := make([]*wire.Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.srv, h.ln, h.sln = nil, nil, nil
	h.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
	if sln != nil {
		_ = sln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
}

// boardRefreshTicks bounds staleness under the dirty-flag sync: a
// clean cache still reconciles every boardRefreshTicks ticks (with a
// cheap gen-only request), so a laggard whose own publishes never
// improve the board keeps learning about the leaders' elites. 1 tick
// dirty-or-due latency for improvements, <= 4 ticks for adoptions.
const boardRefreshTicks = 4

// remoteBoard is the worker side of the cross-worker exchange scheme:
// a multiwalk.Board whose Publish/Snapshot operate purely on a local
// in-memory cache — the hot loop never blocks on the network — while a
// background syncer reconciles the cache with the coordinator-hosted
// global board. Cooperation latency is therefore bounded by the sync
// period plus one round trip, and a partitioned worker degrades to an
// independent walk instead of stalling.
//
// Sync is change-driven, not unconditional: Publish marks the cache
// dirty only when it actually improves the local best, a dirty tick
// does the full publish-and-fetch, and a clean tick is skipped
// entirely until the boardRefreshTicks staleness bound forces a
// gen-only refresh probe. With a stream session attached (sess) the
// ticker is bypassed altogether — improvements push over the
// persistent connection the moment they happen and global deltas
// arrive as frames — and the HTTP loop is the fallback when the
// stream dies mid-run.
type remoteBoard struct {
	cache  multiwalk.Board
	url    string
	client *http.Client
	period time.Duration

	job  string      // hub-side job key (stream frames are tagged with it)
	sess *streamSess // non-nil when a stream session is attached

	mu        sync.Mutex
	dirty     bool
	lastGen   uint64
	idleTicks int

	notify chan struct{} // cap 1; poked by markDirty for the stream loop

	stopSync context.CancelFunc
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newRemoteBoard(url string, client *http.Client, period time.Duration) *remoteBoard {
	if period <= 0 {
		period = defaultBoardSync
	}
	return &remoteBoard{
		cache:  multiwalk.NewLocalBoard(),
		url:    url,
		client: client,
		period: period,
		notify: make(chan struct{}, 1),
	}
}

// boardBest is the cheap best-cost read localBoard provides; the
// interface assertion keeps the multiwalk.Board contract minimal.
type boardBest interface {
	Best() (int, bool)
}

// Publish implements multiwalk.Board against the local cache, marking
// the cache dirty when the publish improves the local best — the
// signal the syncer keys off instead of re-sending unconditionally.
func (b *remoteBoard) Publish(cost int, cfg []int) {
	improved := true
	if lb, ok := b.cache.(boardBest); ok {
		cur, valid := lb.Best()
		improved = !valid || cost < cur
	}
	b.cache.Publish(cost, cfg)
	if improved {
		b.markDirty()
	}
}

// Snapshot implements multiwalk.Board against the local cache.
func (b *remoteBoard) Snapshot() (int, []int, bool) { return b.cache.Snapshot() }

// applyGlobal merges a board delta received from the hub (stream frame
// or HTTP response body) into the cache. Hub-originated publishes keep
// the dirty flag untouched: only local improvements need pushing.
func (b *remoteBoard) applyGlobal(valid bool, cost int, cfg []int, gen uint64) {
	if valid && len(cfg) > 0 {
		b.cache.Publish(cost, cfg)
	}
	b.mu.Lock()
	if gen > b.lastGen {
		b.lastGen = gen
	}
	b.mu.Unlock()
}

// markDirty flags the cache for the next sync and pokes the stream
// loop (non-blocking; a pending poke already covers this change).
func (b *remoteBoard) markDirty() {
	b.mu.Lock()
	b.dirty = true
	b.idleTicks = 0
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// takeDirty consumes the dirty flag, reporting whether a sync is due:
// always when dirty, every boardRefreshTicks ticks otherwise (the
// bounded-staleness refresh). The second return is the gen to stamp
// the request with.
func (b *remoteBoard) takeDirty() (due, dirty bool, gen uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dirty {
		b.dirty = false
		b.idleTicks = 0
		return true, true, b.lastGen
	}
	b.idleTicks++
	if b.idleTicks >= boardRefreshTicks {
		b.idleTicks = 0
		return true, false, b.lastGen
	}
	return false, false, b.lastGen
}

// start launches the background syncer. It runs until stop is called
// or ctx is cancelled, whichever comes first. With a stream session
// the syncer is push-driven; if the stream dies mid-run it degrades to
// the HTTP ticker for the rest of the run.
func (b *remoteBoard) start(ctx context.Context) {
	syncCtx, cancel := context.WithCancel(ctx)
	b.stopSync = cancel
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		if b.sess != nil {
			b.runStream(syncCtx)
			if syncCtx.Err() != nil {
				return
			}
			// Stream died mid-run: fall back to the HTTP ticker. A
			// best published while the stream was wedged is still
			// flagged dirty, so the first tick pushes it.
		}
		tick := time.NewTicker(b.period)
		defer tick.Stop()
		for {
			select {
			case <-syncCtx.Done():
				return
			case <-tick.C:
				b.sync(syncCtx)
			}
		}
	}()
}

// runStream is the push-driven sync loop: wait for a local
// improvement, flush it as one frame. Global deltas arrive through the
// session's reader (applyGlobal), not here. Returns when the context
// or the session dies.
func (b *remoteBoard) runStream(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-b.sess.dead:
			return
		case <-b.notify:
			b.flushStream()
		}
	}
}

// flushStream pushes the cache's current best over the stream if the
// dirty flag is set. On failure the flag is restored — the session is
// dying, and the HTTP fallback picks the improvement up.
func (b *remoteBoard) flushStream() {
	b.mu.Lock()
	if !b.dirty {
		b.mu.Unlock()
		return
	}
	b.dirty = false
	gen := b.lastGen
	b.mu.Unlock()
	cost, cfg, ok := b.cache.Snapshot()
	if !ok {
		return
	}
	if err := b.sess.publish(b.job, cost, cfg, gen); err != nil {
		b.markDirty()
	}
}

// stop halts the syncer and performs one final flush, so a win
// published after the last tick (or after the run context was
// cancelled) still reaches the global board before the shard answers
// the coordinator. The flush goes over the stream when one is alive
// (keeping streamed runs POST-free), over HTTP otherwise — and only
// when there is something unsynced to push. Idempotent: later calls
// are no-ops.
func (b *remoteBoard) stop() {
	if b.stopSync == nil {
		return
	}
	b.stopOnce.Do(func() {
		b.stopSync()
		b.wg.Wait()
		b.mu.Lock()
		dirty := b.dirty
		b.dirty = false
		b.mu.Unlock()
		defer func() {
			if b.sess != nil {
				b.sess.leave(b.job)
			}
		}()
		if !dirty {
			return
		}
		if b.sess != nil && b.sess.alive() {
			cost, cfg, ok := b.cache.Snapshot()
			if ok && b.sess.publish(b.job, cost, cfg, 0) == nil {
				return
			}
		}
		flushCtx, cancel := context.WithTimeout(context.Background(), boardSyncTimeout)
		defer cancel()
		b.mu.Lock()
		b.dirty = true
		b.mu.Unlock()
		b.sync(flushCtx)
	})
}

// sync performs one publish-and-fetch round trip when one is due —
// immediately for a dirty cache, every boardRefreshTicks ticks (as a
// compact gen-only probe) otherwise. Failures restore the dirty flag
// so the improvement is retried at the next tick; a missed sync only
// delays cooperation.
func (b *remoteBoard) sync(ctx context.Context) {
	due, dirty, gen := b.takeDirty()
	if !due {
		return
	}
	msg := BoardSync{Gen: gen}
	if dirty {
		cost, cfg, ok := b.cache.Snapshot()
		msg = BoardSync{Valid: ok, Cost: cost, Gen: gen, Cfg: cfg}
	}
	payload, err := json.Marshal(msg)
	if err != nil {
		return
	}
	reqCtx, cancel := context.WithTimeout(ctx, boardSyncTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, b.url, bytes.NewReader(payload))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		if dirty {
			b.markDirty()
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if dirty && resp.StatusCode >= http.StatusInternalServerError {
			// Transient server failure: keep the improvement pending.
			// 4xx rejections are final — retrying an invalid claim
			// every tick would re-create the churn this flag removes.
			b.markDirty()
		}
		return
	}
	var global BoardSync
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBoardSyncLen)).Decode(&global); err != nil {
		return
	}
	b.applyGlobal(global.Valid, global.Cost, global.Cfg, global.Gen)
}

// errExchangeVirtual rejects dependent virtual runs at the coordinator
// before any slot is reserved; the protocol validator enforces the
// same rule worker-side.
var errExchangeVirtual = errors.New("dist: the exchange scheme requires wall-clock Run mode; virtual sweeps have no concurrent peers to cooperate with")
