package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/multiwalk"
	"repro/internal/perm"
)

// defaultBoardSync is the worker cache's board reconciliation period
// when neither the coordinator (ExchangeSpec.SyncMS) nor the worker
// configuration picks one. 50ms keeps cooperation latency well under a
// typical exchange period's wall-clock while staying negligible
// against the protocol's other traffic.
const defaultBoardSync = 50 * time.Millisecond

// boardSyncTimeout bounds one publish-and-fetch round trip. A sync
// that misses its window is simply retried at the next tick — the
// scheme is best-effort by design, so a slow board must never back up
// into the worker.
const boardSyncTimeout = 5 * time.Second

// boardHub is the coordinator side of the cross-worker exchange
// scheme: one global multiwalk.Board per exchange-enabled job, served
// over a lazily started HTTP listener that workers sync their local
// caches against (POST /v1/runs/{id}/board, combined publish-and-
// fetch). The hub is lazy so fleets that never run dependent jobs pay
// nothing — no port, no goroutine.
type boardHub struct {
	addr      string // listen address; "" selects 127.0.0.1:0
	advertise string // advertised base URL; "" derives from the listener

	mu     sync.Mutex
	ln     net.Listener
	srv    *http.Server
	base   string
	boards map[string]*boardEntry
}

// boardEntry is one job's global board plus the probe instance the hub
// uses to verify publishes. The probe is a live problem encoding whose
// Cost call may mutate cached internal state, so probeMu serializes it
// across concurrent syncs.
type boardEntry struct {
	board   multiwalk.Board
	probe   core.Problem
	probeMu sync.Mutex
}

func newBoardHub(addr, advertise string) *boardHub {
	return &boardHub{
		addr:      addr,
		advertise: advertise,
		boards:    make(map[string]*boardEntry),
	}
}

// open registers a fresh global board for a job, starting the board
// server if this is the fleet's first exchange-enabled job. probe is a
// private instance of the job's problem, used to verify every publish
// (see handleSync). It returns the board's sync URL (for
// RunRequest.Board), the board handle (for inspecting the merged
// global state — job results flow back through shard responses, not
// the board, so the coordinator itself discards it), and a release
// function dropping the board once every shard has unwound.
func (h *boardHub) open(jobID string, probe core.Problem) (url string, board multiwalk.Board, release func(), err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.ensureServerLocked(); err != nil {
		return "", nil, nil, err
	}
	if _, dup := h.boards[jobID]; dup {
		return "", nil, nil, fmt.Errorf("dist: board for job %q already open", jobID)
	}
	board = multiwalk.NewLocalBoard()
	h.boards[jobID] = &boardEntry{board: board, probe: probe}
	release = func() {
		h.mu.Lock()
		delete(h.boards, jobID)
		h.mu.Unlock()
	}
	return h.base + "/v1/runs/" + jobID + "/board", board, release, nil
}

// ensureServerLocked starts the board listener and server on first
// use. Callers hold h.mu.
func (h *boardHub) ensureServerLocked() error {
	if h.ln != nil {
		return nil
	}
	addr := h.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: starting board server on %s: %w", addr, err)
	}
	h.ln = ln
	if h.advertise != "" {
		h.base = strings.TrimRight(h.advertise, "/")
	} else {
		h.base = "http://" + ln.Addr().String()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs/{id}/board", h.handleSync)
	h.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = h.srv.Serve(ln) }()
	return nil
}

// handleSync merges a worker cache's best into the job's global board
// and answers with the global best — one round trip carrying at most
// one configuration each way.
func (h *boardHub) handleSync(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	h.mu.Lock()
	entry := h.boards[id]
	h.mu.Unlock()
	if entry == nil {
		// The job finished (or never existed): benign for a straggling
		// sync racing the shard responses, but the worker has nothing to
		// gain from retrying against this board.
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown board " + id})
		return
	}
	var msg BoardSync
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBoardSyncLen)).Decode(&msg); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid board sync: " + err.Error()})
		return
	}
	cur, _, curOK := entry.board.Snapshot()
	if msg.Valid && (!curOK || msg.Cost < cur) {
		// Only a claim that would improve the board is worth verifying:
		// the board keeps strict improvements only, so skipping the rest
		// (the steady-state case — caches re-send their unchanged best
		// every period) is behavior-identical and saves a full cost
		// recomputation per sync.
		//
		// The board crosses trust boundaries between processes, and its
		// contents steer every walker of the job, so the claim is
		// verified rather than trusted: the configuration must be a
		// permutation of the job's instance size, and the cost must be
		// the probe-recomputed cost of that configuration. Without the
		// recomputation one corrupt publisher could post a fake cost 0
		// and stand the whole fleet down, or a fake low cost that
		// monotonically blocks every real elite. Honest publishes always
		// match: the engine's incrementally maintained cost equals the
		// recomputed one (pinned by the core equivalence suites).
		if len(msg.Cfg) != entry.probe.Size() || perm.Validate(msg.Cfg) != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "board sync configuration is not a permutation of the job's instance size"})
			return
		}
		entry.probeMu.Lock()
		actual := entry.probe.Cost(msg.Cfg)
		entry.probeMu.Unlock()
		if actual != msg.Cost {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("board sync cost %d does not match the configuration's actual cost %d", msg.Cost, actual)})
			return
		}
		entry.board.Publish(actual, msg.Cfg)
	}
	cost, cfg, ok := entry.board.Snapshot()
	writeJSON(w, http.StatusOK, BoardSync{Valid: ok, Cost: cost, Cfg: cfg})
}

// close shuts the board server down; in-flight syncs are severed (the
// scheme is best-effort, and the owning coordinator is going away).
func (h *boardHub) close() {
	h.mu.Lock()
	srv := h.srv
	h.srv, h.ln = nil, nil
	h.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// remoteBoard is the worker side of the cross-worker exchange scheme:
// a multiwalk.Board whose Publish/Snapshot operate purely on a local
// in-memory cache — the hot loop never blocks on the network — while a
// background syncer periodically reconciles the cache with the
// coordinator-hosted global board (publish my best, merge back the
// global best). Cooperation latency is therefore bounded by the sync
// period plus one round trip, and a partitioned worker degrades to an
// independent walk instead of stalling.
type remoteBoard struct {
	cache  multiwalk.Board
	url    string
	client *http.Client
	period time.Duration

	stopSync context.CancelFunc
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newRemoteBoard(url string, client *http.Client, period time.Duration) *remoteBoard {
	if period <= 0 {
		period = defaultBoardSync
	}
	return &remoteBoard{
		cache:  multiwalk.NewLocalBoard(),
		url:    url,
		client: client,
		period: period,
	}
}

// Publish implements multiwalk.Board against the local cache.
func (b *remoteBoard) Publish(cost int, cfg []int) { b.cache.Publish(cost, cfg) }

// Snapshot implements multiwalk.Board against the local cache.
func (b *remoteBoard) Snapshot() (int, []int, bool) { return b.cache.Snapshot() }

// start launches the background syncer. It runs until stop is called
// or ctx is cancelled, whichever comes first.
func (b *remoteBoard) start(ctx context.Context) {
	syncCtx, cancel := context.WithCancel(ctx)
	b.stopSync = cancel
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		tick := time.NewTicker(b.period)
		defer tick.Stop()
		for {
			select {
			case <-syncCtx.Done():
				return
			case <-tick.C:
				b.sync(syncCtx)
			}
		}
	}()
}

// stop halts the syncer and performs one final flush on a fresh
// context, so a win published after the last tick (or after the run
// context was cancelled) still reaches the global board before the
// shard answers the coordinator. Idempotent: later calls are no-ops.
func (b *remoteBoard) stop() {
	if b.stopSync == nil {
		return
	}
	b.stopOnce.Do(func() {
		b.stopSync()
		b.wg.Wait()
		flushCtx, cancel := context.WithTimeout(context.Background(), boardSyncTimeout)
		defer cancel()
		b.sync(flushCtx)
	})
}

// sync performs one combined publish-and-fetch round trip. Failures
// are swallowed: a missed sync only delays cooperation, and the next
// tick retries.
func (b *remoteBoard) sync(ctx context.Context) {
	cost, cfg, ok := b.cache.Snapshot()
	payload, err := json.Marshal(BoardSync{Valid: ok, Cost: cost, Cfg: cfg})
	if err != nil {
		return
	}
	reqCtx, cancel := context.WithTimeout(ctx, boardSyncTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, b.url, bytes.NewReader(payload))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var global BoardSync
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBoardSyncLen)).Decode(&global); err != nil {
		return
	}
	if global.Valid && len(global.Cfg) > 0 {
		b.cache.Publish(global.Cost, global.Cfg)
	}
}

// errExchangeVirtual rejects dependent virtual runs at the coordinator
// before any slot is reserved; the protocol validator enforces the
// same rule worker-side.
var errExchangeVirtual = errors.New("dist: the exchange scheme requires wall-clock Run mode; virtual sweeps have no concurrent peers to cooperate with")
