package perm

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	for i, v := range p {
		if v != i {
			t.Fatalf("Identity(5)[%d] = %d", i, v)
		}
	}
	if len(Identity(0)) != 0 {
		t.Fatal("Identity(0) not empty")
	}
}

func TestIsPermutation(t *testing.T) {
	cases := []struct {
		p    []int
		want bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1, 0, 2}, true},
		{[]int{0, 0}, false},
		{[]int{0, 2}, false},
		{[]int{-1, 0}, false},
		{[]int{3, 1, 2, 0}, true},
	}
	for _, c := range cases {
		if got := IsPermutation(c.p); got != c.want {
			t.Errorf("IsPermutation(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if err := Validate([]int{0, 1, 2}); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	if err := Validate([]int{0, 0, 1}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := Validate([]int{0, 5}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := Validate([]int{-1, 0}); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestSwap(t *testing.T) {
	p := []int{0, 1, 2, 3}
	Swap(p, 1, 3)
	if p[1] != 3 || p[3] != 1 {
		t.Fatalf("Swap failed: %v", p)
	}
	Swap(p, 2, 2)
	if p[2] != 2 {
		t.Fatalf("self-swap changed value: %v", p)
	}
}

func TestCopyIndependent(t *testing.T) {
	p := []int{2, 0, 1}
	q := Copy(p)
	q[0] = 99
	if p[0] != 2 {
		t.Fatal("Copy aliases the original")
	}
}

func TestPartialShufflePreservesPermutation(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		p := Random(20, r)
		PartialShuffle(p, 5, r)
		if !IsPermutation(p) {
			t.Fatalf("PartialShuffle broke permutation: %v", p)
		}
	}
}

func TestPartialShuffleClampAndNoop(t *testing.T) {
	r := rng.New(2)
	p := Identity(5)
	PartialShuffle(p, 100, r) // clamped to 5, still a permutation
	if !IsPermutation(p) {
		t.Fatalf("clamped shuffle broke permutation: %v", p)
	}
	q := Identity(5)
	PartialShuffle(q, 1, r) // k<2 is a no-op
	for i, v := range q {
		if v != i {
			t.Fatalf("k=1 shuffle changed the permutation: %v", q)
		}
	}
	PartialShuffle(q, 0, r)
	PartialShuffle(nil, 3, r) // must not panic
}

func TestPartialShuffleTouchesOnlyKPositions(t *testing.T) {
	// With k=3 out of n=100, at most 3 positions may change.
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		p := Random(100, r)
		before := Copy(p)
		PartialShuffle(p, 3, r)
		changed := 0
		for i := range p {
			if p[i] != before[i] {
				changed++
			}
		}
		if changed > 3 {
			t.Fatalf("PartialShuffle(k=3) changed %d positions", changed)
		}
	}
}

func TestRandomSwapsPreservesPermutation(t *testing.T) {
	r := rng.New(4)
	p := Random(30, r)
	RandomSwaps(p, 10, r)
	if !IsPermutation(p) {
		t.Fatalf("RandomSwaps broke permutation: %v", p)
	}
	q := []int{0}
	RandomSwaps(q, 5, r) // n<2 no-op, must not panic
	if q[0] != 0 {
		t.Fatal("RandomSwaps modified singleton")
	}
}

func TestInversions(t *testing.T) {
	cases := []struct {
		p    []int
		want int
	}{
		{[]int{}, 0},
		{[]int{0}, 0},
		{[]int{0, 1, 2}, 0},
		{[]int{2, 1, 0}, 3},
		{[]int{1, 0, 3, 2}, 2},
		{[]int{3, 2, 1, 0}, 6},
	}
	for _, c := range cases {
		if got := Inversions(c.p); got != c.want {
			t.Errorf("Inversions(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestInversionsMatchesBruteForce(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		p := Random(40, r)
		brute := 0
		for i := 0; i < len(p); i++ {
			for j := i + 1; j < len(p); j++ {
				if p[i] > p[j] {
					brute++
				}
			}
		}
		if got := Inversions(p); got != brute {
			t.Fatalf("Inversions(%v) = %d, brute force = %d", p, got, brute)
		}
	}
}

func TestDistanceBasics(t *testing.T) {
	id := Identity(6)
	if d := Distance(id, id); d != 0 {
		t.Fatalf("Distance(id,id) = %d", d)
	}
	oneSwap := Copy(id)
	Swap(oneSwap, 0, 5)
	if d := Distance(id, oneSwap); d != 1 {
		t.Fatalf("Distance after one transposition = %d, want 1", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 50; trial++ {
		p := Random(15, r)
		q := Random(15, r)
		if Distance(p, q) != Distance(q, p) {
			t.Fatalf("Distance not symmetric for %v, %v", p, q)
		}
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		a := Random(12, r)
		b := Random(12, r)
		c := Random(12, r)
		if Distance(a, c) > Distance(a, b)+Distance(b, c) {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestDistancePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	Distance([]int{0, 1}, []int{0})
}

func TestDistanceCountsMinTranspositions(t *testing.T) {
	// Applying k random transpositions gives distance <= k.
	r := rng.New(8)
	for trial := 0; trial < 50; trial++ {
		p := Random(20, r)
		q := Copy(p)
		k := 1 + r.Intn(5)
		RandomSwaps(q, k, r)
		if d := Distance(p, q); d > k {
			t.Fatalf("distance %d after only %d transpositions", d, k)
		}
	}
}

func TestRandomIsPermutationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		return IsPermutation(Random(25, r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
