// Package perm provides small permutation utilities shared by the Adaptive
// Search engine and the benchmark problem encodings. Every benchmark in the
// paper (all-interval, perfect-square, magic-square, Costas arrays) is
// modelled as a permutation problem, so these helpers are the common
// substrate underneath internal/problems.
package perm

import (
	"fmt"

	"repro/internal/rng"
)

// Identity returns the identity permutation [0, 1, ..., n-1].
func Identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Random returns a uniformly random permutation of [0, n) drawn from r.
func Random(n int, r *rng.Rand) []int {
	return r.Perm(n)
}

// IsPermutation reports whether p contains each value in [0, len(p))
// exactly once.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Validate returns a descriptive error if p is not a permutation of
// [0, len(p)). It is used at API boundaries where a caller-supplied
// configuration enters the engine.
func Validate(p []int) error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("perm: value %d at index %d out of range [0,%d)", v, i, len(p))
		}
		if seen[v] {
			return fmt.Errorf("perm: duplicate value %d at index %d", v, i)
		}
		seen[v] = true
	}
	return nil
}

// Swap exchanges positions i and j of p.
func Swap(p []int, i, j int) {
	p[i], p[j] = p[j], p[i]
}

// Copy returns a fresh copy of p.
func Copy(p []int) []int {
	q := make([]int, len(p))
	copy(q, p)
	return q
}

// PartialShuffle re-randomizes k positions of p chosen uniformly at random,
// preserving the permutation property: the values at the chosen positions
// are shuffled among themselves. This implements the Adaptive Search
// partial reset. k is clamped to [0, len(p)]. With k < 2 it is a no-op.
func PartialShuffle(p []int, k int, r *rng.Rand) {
	n := len(p)
	PartialShuffleScratch(p, k, r, make([]int, n), make([]int, n))
}

// PartialShuffleScratch is PartialShuffle with caller-provided scratch,
// for hot paths that reset repeatedly and must not allocate: idx and
// vals must each have length >= len(p) and are overwritten. The RNG
// consumption is identical to PartialShuffle's.
func PartialShuffleScratch(p []int, k int, r *rng.Rand, idx, vals []int) {
	n := len(p)
	if k > n {
		k = n
	}
	if k < 2 {
		return
	}
	// Choose k distinct positions by a partial Fisher-Yates over an index
	// slice, then cyclically shuffle the values at those positions.
	idx = idx[:n]
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	chosen := idx[:k]
	// Shuffle values at the chosen positions among themselves.
	vals = vals[:k]
	for i, pos := range chosen {
		vals[i] = p[pos]
	}
	r.Shuffle(vals)
	for i, pos := range chosen {
		p[pos] = vals[i]
	}
}

// RandomSwaps applies k uniformly random transpositions to p. It is an
// alternative perturbation operator used by the dependent multi-walk
// engine to diversify around an elite configuration.
func RandomSwaps(p []int, k int, r *rng.Rand) {
	n := len(p)
	if n < 2 {
		return
	}
	for s := 0; s < k; s++ {
		i := r.Intn(n)
		j := r.Intn(n - 1)
		if j >= i {
			j++
		}
		p[i], p[j] = p[j], p[i]
	}
}

// Inversions returns the number of inversions of p (pairs i<j with
// p[i] > p[j]) counted with a merge-sort, O(n log n). Used by tests and
// by the diversity metric of the dependent multi-walk scheme.
func Inversions(p []int) int {
	buf := make([]int, len(p))
	work := Copy(p)
	return mergeCount(work, buf)
}

func mergeCount(a, buf []int) int {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], buf) + mergeCount(a[mid:], buf)
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			inv += mid - i
			j++
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < n {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:n])
	return inv
}

// Distance returns the Cayley distance between permutations p and q: the
// minimum number of transpositions transforming p into q. It equals
// n minus the number of cycles of q∘p⁻¹. Panics if lengths differ.
// The dependent multi-walk scheme uses it to measure walker diversity.
func Distance(p, q []int) int {
	if len(p) != len(q) {
		panic("perm: Distance on permutations of different lengths")
	}
	n := len(p)
	inv := make([]int, n)
	for i, v := range p {
		inv[v] = i
	}
	visited := make([]bool, n)
	cycles := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		cycles++
		for j := i; !visited[j]; {
			visited[j] = true
			j = inv[q[j]]
		}
	}
	return n - cycles
}
