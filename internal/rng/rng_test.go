package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; threshold is the 99.9% quantile
	// of chi2 with 9 dof (27.88). A correct generator fails this with
	// probability 0.001; the seed is fixed so the test is deterministic.
	r := New(12345)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("chi-squared = %.2f exceeds 27.88; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %.4f, want ~1.0", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance = %.4f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermPropertyBased(t *testing.T) {
	// Property: for any seed, Perm(n) is a permutation of [0, n).
	f := func(seed uint64) bool {
		p := New(seed).Perm(20)
		var mask uint32
		for _, v := range p {
			if v < 0 || v >= 20 {
				return false
			}
			mask |= 1 << uint(v)
		}
		return mask == 1<<20-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	// Each value should land in position 0 about 1/4 of the time for n=4.
	r := New(77)
	const trials = 40000
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		p := []int{0, 1, 2, 3}
		r.Shuffle(p)
		counts[p[0]]++
	}
	for v, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("value %d in position 0 with frequency %.3f, want ~0.25", v, frac)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(101)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams produced %d identical draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(55).Split()
	b := New(55).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split is not deterministic at draw %d", i)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned a negative value")
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(19)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	frac := float64(trues) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool true-fraction = %.4f, want ~0.5", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}
