// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in this repository.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 so that any 64-bit seed — including 0 — yields a well-mixed
// state. Determinism matters here: the experiment harness must regenerate
// the paper's figures bit-for-bit across runs, and the multi-walk engine
// must give every walker an independent stream derived from one master
// seed.
package rng

import (
	"math"
	"math/bits"
)

// Rand is a xoshiro256** generator. The zero value is NOT ready for use;
// construct one with New or Split. Rand is not safe for concurrent use;
// give each goroutine its own Rand (see Split).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given 64-bit seed via SplitMix64.
// Distinct seeds give statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state from seed, as if freshly constructed.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro256** is undefined on the all-zero state; SplitMix64 cannot
	// produce four zero words from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit integer. It makes Rand usable as a
// drop-in source where math/rand semantics are expected.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased and
// needs no division in the common case.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// via inversion sampling. Used by the platform simulator's synthetic
// distributions and by tests.
func (r *Rand) ExpFloat64() float64 {
	// -log(1-U) with U in [0,1); 1-U is in (0,1] so the log is finite.
	u := r.Float64()
	return -math.Log(1 - u)
}

// NormFloat64 returns a standard normal float64 via the polar
// (Marsaglia) method. Used for clock-jitter models in the platform
// simulator.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) as a fresh slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place with a Fisher-Yates shuffle.
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Split derives a statistically independent child generator. The child's
// seed is drawn from the parent's stream and re-expanded through
// SplitMix64, so sibling streams do not overlap in practice. This is how
// the multi-walk engine gives each of its k walkers its own stream.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Bool returns an unbiased random boolean.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}
