package core

import (
	"context"
	"testing"
)

// TestExhaustiveSolves: the pair-scan mode must solve the toy problem
// like the worst-variable mode does.
func TestExhaustiveSolves(t *testing.T) {
	res, err := Solve(context.Background(), sortProblem{30}, Options{Seed: 1, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("exhaustive mode failed: %v", res)
	}
}

// TestExhaustiveFewerIterations: on the sort problem the exhaustive
// scan fixes at least one misplaced element per move, so it needs at
// most as many iterations as elements (a structural property, not a
// statistical one).
func TestExhaustiveFewerIterations(t *testing.T) {
	n := 40
	res, err := Solve(context.Background(), sortProblem{n}, Options{Seed: 9, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %v", res)
	}
	if res.Iterations > int64(n) {
		t.Fatalf("exhaustive took %d iterations on sort-%d, want <= %d", res.Iterations, n, n)
	}
}

// TestExhaustiveLocalMinimum: on pitProblem every pair is worse, so the
// engine must count local minima and reset rather than move.
func TestExhaustiveLocalMinimum(t *testing.T) {
	res, err := Solve(context.Background(), pitProblem{8}, Options{
		Seed:          2,
		Exhaustive:    true,
		MaxIterations: 100,
		MaxRuns:       1,
		ResetLimit:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("pitProblem cannot be solved")
	}
	if res.LocalMinima != 100 {
		t.Fatalf("LocalMinima = %d, want 100 (every iteration)", res.LocalMinima)
	}
	if res.Resets == 0 {
		t.Fatal("no resets despite constant local minima")
	}
	if res.Swaps != 0 {
		t.Fatalf("engine executed %d strictly-worse swaps", res.Swaps)
	}
}

// TestExhaustiveProbEscape: with ProbSelectLocMin = 1, every local
// minimum is escaped by a forced random move, never by freezing.
// (pitProblem's CostIfSwap is deliberately inconsistent with Cost, so
// after the first uphill escape the engine sees plateaus — the
// invariant is escapes == local minima and no resets, not a fixed
// escape count.)
func TestExhaustiveProbEscape(t *testing.T) {
	res, err := Solve(context.Background(), pitProblem{8}, Options{
		Seed:             3,
		Exhaustive:       true,
		MaxIterations:    50,
		MaxRuns:          1,
		ProbSelectLocMin: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlateauEscapes == 0 {
		t.Fatalf("no plateau escapes: %v", res)
	}
	if res.PlateauEscapes != res.LocalMinima {
		t.Fatalf("escapes %d != local minima %d with ProbSelectLocMin=1", res.PlateauEscapes, res.LocalMinima)
	}
	if res.Resets != 0 {
		t.Fatalf("resets fired despite forced escapes: %v", res)
	}
}

// TestExhaustiveFirstBest: first-best short-circuiting must still solve.
func TestExhaustiveFirstBest(t *testing.T) {
	res, err := Solve(context.Background(), sortProblem{25}, Options{
		Seed:       4,
		Exhaustive: true,
		FirstBest:  true,
	})
	if err != nil || !res.Solved {
		t.Fatalf("exhaustive first-best failed: %v %v", res, err)
	}
}

// TestExhaustiveDeterministic: same seed, same trace.
func TestExhaustiveDeterministic(t *testing.T) {
	opts := Options{Seed: 11, Exhaustive: true}
	a, err := Solve(context.Background(), sortProblem{20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), sortProblem{20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || a.Swaps != b.Swaps {
		t.Fatalf("exhaustive mode not deterministic: %v vs %v", a, b)
	}
}
