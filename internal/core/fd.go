package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/domain"
)

// This file defines the finite-domain (FD) encoding layer: the
// interfaces a non-permutation problem implements, the State accessors
// FD move selectors use, and the FD implementations of the built-in
// selectors. The permutation encoding remains the engine's fast path —
// a problem that does not implement FDProblem is driven exactly as
// before, byte for byte — and FD problems get the analogous structure:
// assign moves instead of swaps, batched assign evaluation instead of
// CostsIfSwapAll, and a pre-search domain-reduction pass instead of
// permutation validation.

// FDProblem is a CSP over finite domains: variable i takes values from
// Domain(i) instead of the permutation invariant, and the engine's move
// is an assignment cfg[i] = v rather than a swap. Implementing this
// interface switches Solve onto the FD loop; the embedded Problem
// contract (Cost, CostOnVariable, CostIfSwap) is unchanged, with
// CostIfSwap retained because harnesses and exchange probes still
// evaluate swap perturbations on any encoding.
//
// Contract:
//   - Domain returns the current domain of variable i: sorted ascending,
//     distinct, non-empty (after reduction), owned by the problem.
//     Callers must not mutate or retain it. Domains never grow during a
//     Solve call.
//   - CostIfAssign returns the global cost Cost would report after
//     setting cfg[i] = v, given the current cost; v == cfg[i] must
//     return cost unchanged. Like CostIfSwap it must not mutate
//     observable state.
type FDProblem interface {
	Problem
	Domain(i int) []int
	CostIfAssign(cfg []int, cost, i, v int) int
}

// AssignExecutor is the FD counterpart of SwapExecutor: problems with
// incremental state implement it, and the engine invokes ExecutedAssign
// after writing cfg[i] (old is the previous value) so caches update in
// O(delta) instead of a full Cost rebuild. A problem maintaining a live
// error vector (MaintainedErrorVector) must keep it current here, just
// as ExecutedSwap does on the perm path.
type AssignExecutor interface {
	ExecutedAssign(cfg []int, i, old int)
}

// AssignEvaluator is the batched companion of CostIfAssign, mirroring
// MoveEvaluator: one call fills the cost of every candidate value of
// variable i, letting move selection scan a dense row instead of
// issuing len(Domain(i)) interface-dispatched calls.
//
// Contract:
//   - CostsIfAssignAll fills out[k], for every k, with exactly the value
//     CostIfAssign(cfg, cost, i, Domain(i)[k]) would return (so the
//     entry of the current value holds cost). len(out) ==
//     len(Domain(i)).
//   - It must not change observable state, and search traces must not
//     depend on which path served the costs.
type AssignEvaluator interface {
	CostsIfAssignAll(cfg []int, cost, i int, out []int)
}

// DomainReducer is implemented by FD problems that support the
// pre-search domain-reduction pass. Solve calls ReduceDomains once,
// before any iteration; an error wrapping domain.ErrUnsatisfiable
// proves the instance has no solution and aborts the search with that
// typed error. Reduction must be sound (never remove a value some
// solution uses) and idempotent.
type DomainReducer interface {
	ReduceDomains() error
}

// AssignSelector is the FD counterpart of MoveSelector: given the
// selected variable it picks the value to assign. Strategies whose
// MoveSelector also implements AssignSelector work on both encodings;
// Solve rejects FD problems under a strategy without one.
type AssignSelector interface {
	// SelectAssign returns the value v to assign to variable i and the
	// global cost the assignment would produce. Returning v == s.Cfg[i]
	// reports that no acceptable move exists (a local minimum).
	SelectAssign(s *State, i int) (v, cost int)
}

// AssignRestartPolicy is the optional FD hook on a RestartPolicy:
// OnAssign is invoked after an executed assignment on variable i, the
// counterpart of OnSwap's post-swap freezes. Policies without it get
// OnSwap(s, i, i) instead.
type AssignRestartPolicy interface {
	OnAssign(s *State, i int)
}

// ValidateFDConfig reports whether cfg is a well-formed configuration
// of p: one value per variable, each inside the variable's current
// domain. It is the FD counterpart of perm.Validate, used for
// InitialConfig, Monitor teleports and exchange-board probes.
func ValidateFDConfig(p FDProblem, cfg []int) error {
	if len(cfg) != p.Size() {
		return errFDLength(len(cfg), p.Size())
	}
	for i, v := range cfg {
		d := p.Domain(i)
		k := sort.SearchInts(d, v)
		if k >= len(d) || d[k] != v {
			return errFDValue(i, v)
		}
	}
	return nil
}

// validateFDDomains checks every domain is non-empty, returning the
// typed unsatisfiable error otherwise. Solve runs it after reduction so
// problems without a DomainReducer still fail loudly on an empty
// domain instead of panicking in the init draw.
func validateFDDomains(p FDProblem) error {
	n := p.Size()
	for i := 0; i < n; i++ {
		if len(p.Domain(i)) == 0 {
			return errFDEmptyDomain(i)
		}
	}
	return nil
}

// DomainOf returns the current domain of variable i, or nil when the
// problem is not finite-domain. Owned by the problem; read-only.
func (s *State) DomainOf(i int) []int {
	if s.fd == nil {
		return nil
	}
	return s.fd.Domain(i)
}

// CostIfAssign returns the global cost after a hypothetical assignment
// cfg[i] = v under the current configuration.
func (s *State) CostIfAssign(i, v int) int {
	return s.fd.CostIfAssign(s.Cfg, s.Cost, i, v)
}

// AssignCosts returns the cost row for variable i — entry k holds the
// global cost assigning Domain(i)[k] would produce — or nil when the
// problem does not implement AssignEvaluator. Like SwapCosts the slice
// is a reused buffer: consume before the next call, do not retain.
func (s *State) AssignCosts(i int) []int {
	if s.assignEval == nil {
		return nil
	}
	buf := s.assignBuf[:len(s.fd.Domain(i))]
	s.assignEval.CostsIfAssignAll(s.Cfg, s.Cost, i, buf)
	return buf
}

// bindFD wires the FD fast-path interfaces of p into the state; no-op
// for permutation problems.
func (s *State) bindFD(p Problem, n int) {
	fd, ok := p.(FDProblem)
	if !ok {
		return
	}
	s.fd = fd
	if ae, ok := p.(AssignEvaluator); ok {
		s.assignEval = ae
		maxd := 0
		for i := 0; i < n; i++ {
			if l := len(fd.Domain(i)); l > maxd {
				maxd = l
			}
		}
		s.assignBuf = make([]int, maxd)
	}
}

// SelectAssign implements AssignSelector for MinConflictMove: scan the
// variable's domain, keep the value minimizing the global cost, ties
// broken uniformly, with the current value seeding the pool so sideways
// moves compete on equal footing and strictly-worse values are never
// taken. The batched AssignEvaluator path and the per-call path scan in
// the same order with the same acceptance rules and RNG consumption, so
// FD traces do not depend on which path served the costs. FirstBest
// keeps the per-call path for the same reason SelectMove does: its
// point is to stop at the first improvement.
func (MinConflictMove) SelectAssign(s *State, i int) (v, cost int) {
	d := s.DomainOf(i)
	cur := s.Cfg[i]
	bestV := cur
	bestCost := s.Cost
	ties := 1
	if costs := s.AssignCosts(i); costs != nil && !s.Opts.FirstBest {
		for k, c := range costs {
			if d[k] == cur {
				continue
			}
			switch {
			case c < bestCost:
				bestCost = c
				bestV = d[k]
				ties = 1
			case c == bestCost:
				ties++
				if s.Rand.Intn(ties) == 0 {
					bestV = d[k]
				}
			}
		}
		return bestV, bestCost
	}
	for _, cand := range d {
		if cand == cur {
			continue
		}
		c := s.CostIfAssign(i, cand)
		switch {
		case c < bestCost:
			bestCost = c
			bestV = cand
			ties = 1
			if s.Opts.FirstBest {
				return bestV, bestCost
			}
		case c == bestCost:
			ties++
			if s.Rand.Intn(ties) == 0 {
				bestV = cand
			}
		}
	}
	return bestV, bestCost
}

// SelectAssign implements AssignSelector for MetropolisMove: sample
// Tries random candidate values (excluding the current one), keep the
// cheapest, and apply the Metropolis acceptance rule. A singleton
// domain has no candidate to sample and reports a local minimum.
func (m *MetropolisMove) SelectAssign(s *State, i int) (v, cost int) {
	d := s.DomainOf(i)
	cur := s.Cfg[i]
	if len(d) < 2 {
		return cur, s.Cost
	}
	temp := m.Temperature
	if temp <= 0 {
		temp = 0.5
	}
	tries := m.Tries
	if tries <= 0 {
		tries = 8
	}
	curIdx := sort.SearchInts(d, cur)
	bestV, bestCost := cur, math.MaxInt
	for t := 0; t < tries; t++ {
		k := s.Rand.Intn(len(d) - 1)
		if k >= curIdx {
			k++
		}
		c := s.CostIfAssign(i, d[k])
		if c < bestCost {
			bestV, bestCost = d[k], c
		}
	}
	if bestCost <= s.Cost {
		return bestV, bestCost
	}
	if s.Rand.Float64() < math.Exp(-float64(bestCost-s.Cost)/temp) {
		return bestV, bestCost
	}
	return cur, s.Cost
}

// OnAssign implements AssignRestartPolicy for AdaptiveRestart: the
// assigned variable is frozen for FreezeSwap iterations, the FD
// counterpart of the post-swap double freeze.
func (p *AdaptiveRestart) OnAssign(s *State, i int) {
	if f := s.Opts.FreezeSwap; f > 0 {
		s.Marks[i] = s.Iter + int64(f)
		p.marked++
	}
}

// The FD error constructors keep the messages in one place; the
// empty-domain case wraps domain.ErrUnsatisfiable so callers (the
// service API among them) can match it with errors.Is.
func errFDEmptyDomain(i int) error {
	return fmt.Errorf("core: variable %d has an empty domain: %w", i, domain.ErrUnsatisfiable)
}

func errFDLength(got, want int) error {
	return fmt.Errorf("core: configuration has %d variables, problem has %d", got, want)
}

func errFDValue(i, v int) error {
	return fmt.Errorf("core: value %d is outside the domain of variable %d", v, i)
}
