package core

import "math"

// This file is the finite-domain twin of the engine loop in engine.go.
// Solve dispatches here when the problem implements FDProblem; the
// permutation loop is untouched so its traces (and the golden files
// pinning them) cannot move. The structure mirrors runOnce exactly —
// poll block, worst-variable selection, move, local-minimum handling —
// with assignments in place of swaps:
//
//   - init draws each variable uniformly from its (reduced) domain
//     instead of shuffling a permutation;
//   - the move is cfg[i] = v, selected by AssignSelector;
//   - the probabilistic escape forces a uniformly random domain value
//     on the policy's chosen variable instead of a random swap;
//   - the generic partial reset re-draws a ResetFraction of the
//     variables from their domains;
//   - Monitor teleports validate domain membership instead of the
//     permutation invariant.

// solveFD is the FD counterpart of solve.
func (e *engine) solveFD() Result {
	n := e.p.Size()
	e.res = Result{Cost: CostUnknown, Strategy: e.strat.Name}
	e.bestCost = math.MaxInt

	// A 0-variable problem has a single (empty) configuration; report
	// its cost directly. n == 1 is NOT short-circuited: unlike a
	// 1-variable permutation, the single FD variable still ranges over
	// its domain, so the loop below has real work.
	if n == 0 {
		cfg := []int{}
		c := e.p.Cost(cfg)
		e.noteBest(c, cfg)
		e.res.Solved = c == 0
		e.finishResult()
		return e.res
	}

	if e.cancelled() {
		e.res.Interrupted = true
		e.finishResult()
		return e.res
	}

	e.st.Rand = e.rand
	e.st.Opts = &e.opts
	e.st.Marks = make([]int64, n)
	e.st.Cfg = make([]int, n)
	e.st.bindProblem(e.p, n)
	e.checkLeft = int64(e.opts.CheckEvery)

	runs := 0
	for {
		runs++
		solved, interrupted := e.runOnceFD(runs == 1)
		if solved || interrupted {
			e.res.Solved = solved
			e.res.Interrupted = interrupted
			break
		}
		if e.opts.MaxRuns > 0 && runs >= e.opts.MaxRuns {
			break
		}
	}
	e.res.Restarts = runs - 1
	e.finishResult()
	return e.res
}

// runOnceFD is the FD counterpart of runOnce.
func (e *engine) runOnceFD(first bool) (solved, interrupted bool) {
	o := &e.opts
	n := len(e.st.Cfg)

	if first && o.InitialConfig != nil {
		copy(e.st.Cfg, o.InitialConfig)
	} else {
		// Fresh random configuration: each variable drawn uniformly
		// from its domain.
		for i := range e.st.Cfg {
			d := e.fd.Domain(i)
			e.st.Cfg[i] = d[e.rand.Intn(len(d))]
		}
	}
	e.st.Cost = e.p.Cost(e.st.Cfg)
	e.st.InvalidateErrors()
	clear(e.st.Marks)
	e.st.Iter = 0
	e.strat.Restart.NewRun(&e.st)
	e.noteBest(e.st.Cost, e.st.Cfg)

	checkEvery := int64(o.CheckEvery)
	for e.st.Cost > 0 && e.st.Iter < o.MaxIterations {
		e.st.Iter++
		e.res.Iterations++
		e.checkLeft--
		if e.checkLeft == 0 {
			e.checkLeft = checkEvery
			if e.cancelled() {
				return false, true
			}
			if o.Monitor != nil {
				d := o.Monitor(e.res.Iterations, e.st.Cost, e.st.Cfg)
				if d.Stop {
					return false, true
				}
				if d.Restart {
					return false, false
				}
				if d.SetConfig != nil && e.adoptConfigFD(d.SetConfig) {
					e.strat.Restart.NewRun(&e.st)
					continue
				}
			}
		}

		var worst, bestV, bestCost int
		if o.Exhaustive {
			worst, bestV, bestCost = e.selectBestAssign()
		} else {
			worst = e.strat.Variable.SelectVariable(&e.st)
			bestV, bestCost = e.assignSel.SelectAssign(&e.st, worst)
		}

		if bestV != e.st.Cfg[worst] {
			e.doAssign(worst, bestV, bestCost)
			if e.assignRestart != nil {
				e.assignRestart.OnAssign(&e.st, worst)
			} else {
				e.strat.Restart.OnSwap(&e.st, worst, worst)
			}
			continue
		}

		// Local minimum: no acceptable value for the selected variable.
		e.res.LocalMinima++
		if n < 2 {
			// The restart policies reason about a second variable that
			// does not exist here; re-draw the sole variable instead.
			e.escapeAssign(0)
			continue
		}
		vi, vj, reset := e.strat.Restart.OnLocalMinimum(&e.st, worst)
		if vj >= 0 {
			// Forced escape: the perm engine would swap (vi, vj); the FD
			// counterpart forces a uniformly random domain value on vi
			// (possibly uphill, possibly a no-op on a singleton domain).
			e.escapeAssign(vi)
			continue
		}
		if reset {
			e.partialResetFD()
			clear(e.st.Marks)
		}
	}
	if e.st.Cost == 0 {
		e.noteBest(0, e.st.Cfg)
		return true, false
	}
	return false, e.cancelled()
}

// doAssign executes cfg[i] = v, records statistics, updates the
// problem's incremental state and the best-seen configuration.
func (e *engine) doAssign(i, v, newCost int) {
	old := e.st.Cfg[i]
	e.st.Cfg[i] = v
	if e.assigner != nil {
		e.assigner.ExecutedAssign(e.st.Cfg, i, old)
	}
	e.st.Cost = newCost
	e.st.InvalidateErrors()
	e.res.Assigns++
	if len(e.fd.Domain(i)) == 2 {
		e.res.Flips++
	}
	e.noteBest(newCost, e.st.Cfg)
}

// escapeAssign forces a uniformly random domain value onto variable i,
// the FD counterpart of the forced escape swap.
func (e *engine) escapeAssign(i int) {
	d := e.fd.Domain(i)
	v := d[e.rand.Intn(len(d))]
	c := e.fd.CostIfAssign(e.st.Cfg, e.st.Cost, i, v)
	e.doAssign(i, v, c)
	e.res.PlateauEscapes++
}

// adoptConfigFD teleports the walker to cfg (from a Monitor directive),
// validating domain membership instead of the permutation invariant.
func (e *engine) adoptConfigFD(cfg []int) bool {
	if ValidateFDConfig(e.fd, cfg) != nil {
		return false
	}
	copy(e.st.Cfg, cfg)
	e.st.Cost = e.p.Cost(e.st.Cfg)
	e.st.InvalidateErrors()
	clear(e.st.Marks)
	e.noteBest(e.st.Cost, e.st.Cfg)
	return true
}

// partialResetFD perturbs the configuration: a ResetHandler controls
// its own reset; otherwise a ResetFraction of the variables (drawn with
// replacement) is re-drawn from their domains and the cost recomputed.
func (e *engine) partialResetFD() {
	e.res.Resets++
	if e.resetter != nil {
		e.st.Cost = e.resetter.Reset(e.st.Cfg, e.rand)
	} else {
		n := len(e.st.Cfg)
		k := int(e.opts.ResetFraction * float64(n))
		if k < 2 {
			k = 2
		}
		if k > n {
			k = n
		}
		for t := 0; t < k; t++ {
			i := e.rand.Intn(n)
			d := e.fd.Domain(i)
			e.st.Cfg[i] = d[e.rand.Intn(len(d))]
		}
		e.st.Cost = e.p.Cost(e.st.Cfg)
	}
	e.st.InvalidateErrors()
	e.noteBest(e.st.Cost, e.st.Cfg)
}

// selectBestAssign scans every (variable, value) pair and returns the
// assignment minimizing the resulting cost — Exhaustive mode on the FD
// encoding, the counterpart of selectBestPair. "Staying put" seeds the
// tie pool; v == cfg[i] on return signals a strict local minimum. Tabu
// marks are ignored, as on the perm path. Batched AssignEvaluator rows
// serve whole domains when available; FirstBest keeps the per-call path
// and returns the first strict improvement.
func (e *engine) selectBestAssign() (i, v, cost int) {
	st := &e.st
	bestI, bestV := 0, st.Cfg[0]
	bestCost := st.Cost
	ties := 1
	for a := range st.Cfg {
		d := e.fd.Domain(a)
		cur := st.Cfg[a]
		var costs []int
		if !e.opts.FirstBest {
			costs = st.AssignCosts(a)
		}
		for k, val := range d {
			if val == cur {
				continue
			}
			var c int
			if costs != nil {
				c = costs[k]
			} else {
				c = e.fd.CostIfAssign(st.Cfg, st.Cost, a, val)
			}
			switch {
			case c < bestCost:
				bestCost = c
				bestI, bestV = a, val
				ties = 1
				if e.opts.FirstBest {
					return bestI, bestV, bestCost
				}
			case c == bestCost:
				ties++
				if e.rand.Intn(ties) == 0 {
					bestI, bestV = a, val
				}
			}
		}
	}
	return bestI, bestV, bestCost
}
