package core

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/perm"
	"repro/internal/rng"
)

// sortProblem is a toy CSP: the solution is the identity permutation.
// Cost counts misplaced variables. Its landscape is trivially funnel-
// shaped, so the engine must solve it quickly; the tests use it to
// exercise the engine mechanics in isolation from benchmark encodings.
type sortProblem struct{ n int }

func (s sortProblem) Size() int { return s.n }

func (s sortProblem) Cost(cfg []int) int {
	c := 0
	for i, v := range cfg {
		if v != i {
			c++
		}
	}
	return c
}

func (s sortProblem) CostOnVariable(cfg []int, i int) int {
	if cfg[i] != i {
		return 1
	}
	return 0
}

func (s sortProblem) CostIfSwap(cfg []int, cost, i, j int) int {
	before := b2i(cfg[i] != i) + b2i(cfg[j] != j)
	after := b2i(cfg[j] != i) + b2i(cfg[i] != j)
	return cost - before + after
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// stuckProblem has a constant positive cost: it can never be solved, and
// every swap looks cost-neutral (an endless plateau). Used to test
// budgets, restarts and cancellation.
type stuckProblem struct{ n int }

func (s stuckProblem) Size() int                           { return s.n }
func (s stuckProblem) Cost([]int) int                      { return 1 }
func (s stuckProblem) CostOnVariable([]int, int) int       { return 1 }
func (s stuckProblem) CostIfSwap([]int, int, int, int) int { return 1 }

// pitProblem is a strict local minimum everywhere: every swap is worse.
// Used to test the freeze/reset machinery, which only engages when no
// sideways move exists.
type pitProblem struct{ n int }

func (p pitProblem) Size() int                           { return p.n }
func (p pitProblem) Cost([]int) int                      { return 1 }
func (p pitProblem) CostOnVariable([]int, int) int       { return 1 }
func (p pitProblem) CostIfSwap([]int, int, int, int) int { return 2 }

// floorProblem has minimum cost 1 (cost = misplaced count + 1): tests
// that the best-seen cost is reported for unsolved runs.
type floorProblem struct{ sortProblem }

func (f floorProblem) Cost(cfg []int) int { return f.sortProblem.Cost(cfg) + 1 }
func (f floorProblem) CostIfSwap(cfg []int, cost, i, j int) int {
	return f.sortProblem.CostIfSwap(cfg, cost-1, i, j) + 1
}

// hookedProblem wraps sortProblem and records engine hook invocations to
// verify the incremental-state contract.
type hookedProblem struct {
	sortProblem
	swaps      int
	resets     int
	lastSwapOK bool
}

func (h *hookedProblem) ExecutedSwap(cfg []int, i, j int) {
	h.swaps++
	// By contract cfg has already been swapped when the hook fires.
	h.lastSwapOK = perm.IsPermutation(cfg)
}

func (h *hookedProblem) Reset(cfg []int, r *rng.Rand) int {
	h.resets++
	perm.RandomSwaps(cfg, 2, r)
	return h.Cost(cfg)
}

// tunedProblem verifies TunedOptions plumbing.
type tunedProblem struct{ sortProblem }

func (tunedProblem) Tune(o *Options) { o.FreezeLocMin = 42 }

func TestSolveSortProblem(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 50, 200} {
		res, err := Solve(context.Background(), sortProblem{n}, Options{Seed: 1})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Solved {
			t.Fatalf("n=%d: not solved: %v", n, res)
		}
		if res.Cost != 0 {
			t.Fatalf("n=%d: solved but cost=%d", n, res.Cost)
		}
		for i, v := range res.Solution {
			if v != i {
				t.Fatalf("n=%d: solution is not identity: %v", n, res.Solution)
			}
		}
	}
}

func TestSolveDeterministicForSeed(t *testing.T) {
	a, err := Solve(context.Background(), sortProblem{30}, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), sortProblem{30}, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || a.Swaps != b.Swaps || a.Resets != b.Resets {
		t.Fatalf("same seed gave different traces: %v vs %v", a, b)
	}
}

func TestSolveSeedsDiffer(t *testing.T) {
	// Different seeds should (almost surely) take different trajectories
	// on a size-50 instance.
	a, _ := Solve(context.Background(), sortProblem{50}, Options{Seed: 1})
	b, _ := Solve(context.Background(), sortProblem{50}, Options{Seed: 2})
	if a.Iterations == b.Iterations && a.Swaps == b.Swaps {
		t.Skip("seeds coincided; astronomically unlikely but not an error")
	}
}

func TestInitialConfigSolution(t *testing.T) {
	n := 10
	res, err := Solve(context.Background(), sortProblem{n}, Options{
		Seed:          3,
		InitialConfig: perm.Identity(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved || res.Iterations != 0 {
		t.Fatalf("starting at the solution should solve in 0 iterations: %v", res)
	}
}

func TestInitialConfigInvalid(t *testing.T) {
	_, err := Solve(context.Background(), sortProblem{3}, Options{InitialConfig: []int{0, 0, 1}})
	if err == nil {
		t.Fatal("invalid InitialConfig accepted")
	}
	_, err = Solve(context.Background(), sortProblem{3}, Options{InitialConfig: []int{0, 1}})
	if err == nil {
		t.Fatal("wrong-length InitialConfig accepted")
	}
}

func TestInvalidOptions(t *testing.T) {
	bad := []Options{
		{ProbSelectLocMin: -0.5},
		{ProbSelectLocMin: 1.5},
		{ResetFraction: 2},
		{MaxIterations: -1},
		{FreezeLocMin: -2},
		{MaxRuns: -1},
	}
	for i, o := range bad {
		if _, err := Solve(context.Background(), sortProblem{5}, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

func TestBudgetExhaustionAndRestarts(t *testing.T) {
	res, err := Solve(context.Background(), stuckProblem{8}, Options{
		Seed:          1,
		MaxIterations: 50,
		MaxRuns:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("stuckProblem cannot be solved")
	}
	if res.Restarts != 3 {
		t.Fatalf("Restarts = %d, want 3", res.Restarts)
	}
	if res.Iterations != 4*50 {
		t.Fatalf("Iterations = %d, want 200 (4 runs x 50)", res.Iterations)
	}
	if res.Cost != 1 {
		t.Fatalf("unsolved Cost = %d, want best-seen 1", res.Cost)
	}
	if res.Solution != nil {
		t.Fatal("unsolved result must not carry a solution")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must not start at all
	res, err := Solve(ctx, stuckProblem{8}, Options{Seed: 1, CheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatalf("cancelled context did not interrupt: %v", res)
	}
	if res.Iterations != 0 {
		t.Fatalf("pre-cancelled run took %d iterations, want 0", res.Iterations)
	}
}

func TestContextTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Solve(ctx, stuckProblem{16}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("timeout did not interrupt unlimited-restart run")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("run overshot its deadline grossly")
	}
}

func TestNilContext(t *testing.T) {
	res, err := Solve(nil, sortProblem{5}, Options{Seed: 1}) //nolint:staticcheck // nil ctx is part of the API contract
	if err != nil || !res.Solved {
		t.Fatalf("nil context should behave as Background: %v %v", res, err)
	}
}

func TestHooksInvoked(t *testing.T) {
	h := &hookedProblem{sortProblem: sortProblem{40}}
	res, err := Solve(context.Background(), h, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("not solved: %v", res)
	}
	if int64(h.swaps) != res.Swaps {
		t.Fatalf("ExecutedSwap fired %d times, engine reports %d swaps", h.swaps, res.Swaps)
	}
	if h.swaps > 0 && !h.lastSwapOK {
		t.Fatal("cfg was not a permutation inside ExecutedSwap")
	}
}

func TestResetHandlerInvoked(t *testing.T) {
	// pitProblem forces constant strict local minima, so resets must
	// occur.
	rh := &resetCounter{inner: pitProblem{10}}
	res, err := Solve(context.Background(), rh, Options{
		Seed:          2,
		MaxIterations: 500,
		MaxRuns:       1,
		ResetLimit:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resets == 0 {
		t.Fatalf("no resets on a problem that is all local minima: %v", res)
	}
	if int64(rh.resets) != res.Resets {
		t.Fatalf("ResetHandler fired %d times, engine reports %d", rh.resets, res.Resets)
	}
}

// resetCounter decorates a Problem with a counting ResetHandler.
type resetCounter struct {
	inner  Problem
	resets int
}

func (r *resetCounter) Size() int                           { return r.inner.Size() }
func (r *resetCounter) Cost(cfg []int) int                  { return r.inner.Cost(cfg) }
func (r *resetCounter) CostOnVariable(cfg []int, i int) int { return r.inner.CostOnVariable(cfg, i) }
func (r *resetCounter) CostIfSwap(cfg []int, c, i, j int) int {
	return r.inner.CostIfSwap(cfg, c, i, j)
}
func (r *resetCounter) Reset(cfg []int, rnd *rng.Rand) int {
	r.resets++
	perm.PartialShuffle(cfg, 4, rnd)
	return r.inner.Cost(cfg)
}

func TestDegenerateSizes(t *testing.T) {
	res, err := Solve(context.Background(), sortProblem{0}, Options{})
	if err != nil || !res.Solved {
		t.Fatalf("n=0: %v %v", res, err)
	}
	res, err = Solve(context.Background(), sortProblem{1}, Options{})
	if err != nil || !res.Solved {
		t.Fatalf("n=1: %v %v", res, err)
	}
	res, err = Solve(context.Background(), stuckProblem{1}, Options{})
	if err != nil || res.Solved || res.Cost != 1 {
		t.Fatalf("unsolvable n=1: %v %v", res, err)
	}
}

func TestTunedOptions(t *testing.T) {
	o := TunedOptions(tunedProblem{sortProblem{10}})
	if o.FreezeLocMin != 42 {
		t.Fatalf("Tune not applied: FreezeLocMin = %d", o.FreezeLocMin)
	}
	if o.MaxIterations == 0 {
		t.Fatal("defaults not applied before Tune")
	}
	// A problem without Tune gets plain defaults.
	o2 := TunedOptions(sortProblem{10})
	if o2.FreezeLocMin != 5 {
		t.Fatalf("default FreezeLocMin = %d, want 5", o2.FreezeLocMin)
	}
}

func TestFirstBestStillSolves(t *testing.T) {
	res, err := Solve(context.Background(), sortProblem{60}, Options{Seed: 9, FirstBest: true})
	if err != nil || !res.Solved {
		t.Fatalf("FirstBest run failed: %v %v", res, err)
	}
}

func TestProbSelectLocMinEscapes(t *testing.T) {
	// On the floor problem every iteration is a local minimum once the
	// permutation is sorted; with ProbSelectLocMin = 1 the engine must
	// take forced moves instead of freezing, so PlateauEscapes > 0 and
	// Resets == 0.
	res, err := Solve(context.Background(), floorProblem{sortProblem{12}}, Options{
		Seed:             4,
		MaxIterations:    300,
		MaxRuns:          1,
		ProbSelectLocMin: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlateauEscapes == 0 {
		t.Fatalf("no plateau escapes with ProbSelectLocMin=1: %v", res)
	}
	if res.Resets != 0 {
		t.Fatalf("resets happened despite ProbSelectLocMin=1: %v", res)
	}
}

func TestUnsolvedReportsBestSeenCost(t *testing.T) {
	res, err := Solve(context.Background(), floorProblem{sortProblem{10}}, Options{
		Seed:          6,
		MaxIterations: 2_000,
		MaxRuns:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Fatal("floorProblem cannot reach cost 0")
	}
	if res.Cost != 1 {
		t.Fatalf("best-seen cost = %d, want 1 (the floor)", res.Cost)
	}
}

func TestResultString(t *testing.T) {
	res, _ := Solve(context.Background(), sortProblem{5}, Options{Seed: 1})
	s := res.String()
	if s == "" {
		t.Fatal("empty Result.String()")
	}
}

func TestSolvePropertySolvesAnySeed(t *testing.T) {
	f := func(seed uint64) bool {
		res, err := Solve(context.Background(), sortProblem{12}, Options{Seed: seed})
		return err == nil && res.Solved && perm.IsPermutation(res.Solution)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionIsPrivateCopy(t *testing.T) {
	res, _ := Solve(context.Background(), sortProblem{8}, Options{Seed: 1})
	res.Solution[0] = 99
	res2, _ := Solve(context.Background(), sortProblem{8}, Options{Seed: 1})
	if res2.Solution[0] == 99 {
		t.Fatal("Solution aliases engine state across calls")
	}
}

func BenchmarkSolveSort100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Solve(context.Background(), sortProblem{100}, Options{Seed: uint64(i)})
		if err != nil || !res.Solved {
			b.Fatalf("%v %v", res, err)
		}
	}
}
