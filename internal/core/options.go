package core

import (
	"errors"
	"fmt"
)

// Options configures one Adaptive Search engine. The zero value is not
// usable directly; call DefaultOptions (or Normalize) to fill defaults.
// The field set mirrors the tunables of the original C library
// (ad_solver's AdData): freeze tenures, reset thresholds, the
// probabilistic local-minimum escape, first-best move selection, and
// restart budgets.
type Options struct {
	// MaxIterations is the iteration budget of a single run; exhausting
	// it triggers a full restart. 0 selects a per-problem default of
	// max(10_000, 200*n).
	MaxIterations int64

	// MaxRuns bounds the total number of runs: the first run plus
	// restarts. 0 selects the default — unlimited, matching the paper's
	// experiments which always run to the first solution (bound the
	// search with a context in that case). 1 disables restarts.
	MaxRuns int

	// FreezeLocMin is the number of iterations a variable stays frozen
	// (tabu) after being identified as a local minimum. 0 selects the
	// default of 5, the most common setting of the C benchmarks.
	FreezeLocMin int

	// FreezeSwap is the number of iterations both variables of an
	// executed swap stay frozen. 0 means no post-swap freezing (the C
	// default for the benchmarks used in the paper).
	FreezeSwap int

	// ResetLimit is the number of simultaneously frozen variables that
	// triggers a partial reset. 0 selects the default of max(2, n/10).
	ResetLimit int

	// ResetFraction is the fraction of variables perturbed by a generic
	// partial reset (ignored when the problem implements ResetHandler).
	// 0 selects the default of 0.1 (the C library's 10%).
	ResetFraction float64

	// ProbSelectLocMin is the probability, upon hitting a local minimum,
	// of forcing a move on a random second variable instead of freezing
	// the worst one. This is the C library's prob_select_loc_min (there
	// expressed in percent). Must be in [0, 1].
	ProbSelectLocMin float64

	// Strategy names the search strategy, resolved through the strategy
	// registry at Solve time ("" selects StrategyAdaptive, classic
	// Adaptive Search). Built-ins: "adaptive", "random-walk",
	// "metropolis"; custom strategies plug in via RegisterStrategy.
	// Because the field is a plain name, Options stays copyable and
	// each Solve call gets a fresh, race-free strategy instance — the
	// property multi-walk portfolios rely on.
	Strategy string

	// FirstBest, when true, stops scanning swap candidates at the first
	// strictly improving move instead of the best one.
	FirstBest bool

	// Exhaustive, when true, scans every variable pair each iteration
	// and takes the best swap overall, instead of projecting errors and
	// swapping only the worst variable (the C library's ad.exhaustive).
	// O(n^2) per iteration, but the stronger moves pay off on small,
	// densely-constrained problems (e.g. the alpha cipher). Tabu marks
	// are ignored in this mode. The pair scan replaces the strategy's
	// variable/move plug points wholesale, so a non-default Strategy
	// takes precedence: setting one disables Exhaustive (this is what
	// lets -strategy/-portfolio run on exhaustive-tuned benchmarks).
	Exhaustive bool

	// Seed seeds the engine's private RNG stream. Two runs with the same
	// problem, options and seed are bit-for-bit identical.
	Seed uint64

	// InitialConfig, when non-nil, is used (copied) as the starting
	// configuration of the first run instead of a random permutation.
	// It must be a permutation of [0, n).
	InitialConfig []int

	// CheckEvery is the cancellation-poll period in iterations. The
	// engine checks the context every CheckEvery iterations; 0 selects
	// the default of 64. Smaller values react faster to first-solution
	// cancellation in multi-walk runs at a small cost in the hot loop.
	CheckEvery int

	// Monitor, when non-nil, is invoked every CheckEvery iterations
	// with the cumulative iteration count, the current cost and the
	// current configuration (a live view — callers must not retain or
	// mutate it). Its Directive can steer the run; the zero Directive
	// continues unchanged. This is the hook the dependent multi-walk
	// scheme (the paper's future-work section) uses to exchange elite
	// configurations between walkers.
	Monitor func(iter int64, cost int, cfg []int) Directive
}

// DefaultCheckEvery is the cancellation/Monitor poll period selected
// when Options.CheckEvery is 0. Exported so drivers that tighten the
// poll period (the multi-walk exchange scheme clamps it to the exchange
// period) resolve the default exactly once, here.
const DefaultCheckEvery = 64

// Directive steers a running search from a Monitor callback.
type Directive struct {
	// Stop aborts the Solve call; the result reports Interrupted.
	Stop bool
	// Restart abandons the current run and starts the next one from a
	// fresh random configuration (counted against MaxRuns).
	Restart bool
	// SetConfig, when non-nil, teleports the walker to the given
	// configuration (copied; must be a permutation of [0, n) — invalid
	// values are ignored). Tabu marks are cleared.
	SetConfig []int
}

// DefaultOptions returns the engine defaults for a problem of n
// variables. These are the baseline settings on top of which
// problem-specific Tune hooks and caller overrides are applied.
func DefaultOptions(n int) Options {
	o := Options{}
	o.normalize(n)
	return o
}

// normalize fills zero fields with defaults for an n-variable problem
// and applies the Strategy-over-Exhaustive precedence (the pair scan
// bypasses the strategy plug points, so an explicitly selected
// non-default strategy wins).
func (o *Options) normalize(n int) {
	if o.Strategy != "" && o.Strategy != StrategyAdaptive {
		o.Exhaustive = false
	}
	if o.MaxIterations == 0 {
		it := int64(200 * n)
		if it < 10_000 {
			it = 10_000
		}
		o.MaxIterations = it
	}
	if o.FreezeLocMin == 0 {
		o.FreezeLocMin = 5
	}
	if o.ResetLimit == 0 {
		o.ResetLimit = n / 10
		if o.ResetLimit < 2 {
			o.ResetLimit = 2
		}
	}
	if o.ResetFraction == 0 {
		o.ResetFraction = 0.1
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = DefaultCheckEvery
	}
}

// Validate reports configuration errors that normalize cannot repair.
func (o *Options) Validate(n int) error {
	if o.ProbSelectLocMin < 0 || o.ProbSelectLocMin > 1 {
		return fmt.Errorf("core: ProbSelectLocMin = %v outside [0,1]", o.ProbSelectLocMin)
	}
	if o.ResetFraction < 0 || o.ResetFraction > 1 {
		return fmt.Errorf("core: ResetFraction = %v outside [0,1]", o.ResetFraction)
	}
	if o.MaxIterations < 0 {
		return errors.New("core: MaxIterations must be >= 0")
	}
	if o.MaxRuns < 0 {
		return errors.New("core: MaxRuns must be >= 0 (0 means unlimited)")
	}
	if o.FreezeLocMin < 0 || o.FreezeSwap < 0 || o.ResetLimit < 0 || o.CheckEvery < 0 {
		return errors.New("core: freeze/reset/check options must be >= 0")
	}
	if o.Strategy != "" && !strategyKnown(o.Strategy) {
		return unknownStrategyError(o.Strategy)
	}
	if o.InitialConfig != nil && len(o.InitialConfig) != n {
		return fmt.Errorf("core: InitialConfig has %d variables, problem has %d", len(o.InitialConfig), n)
	}
	return nil
}
